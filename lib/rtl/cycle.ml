(* Brent-style cycle finding over a cheap state fingerprint, with exact
   confirmation of every candidate.

   The detector keeps one *anchor* — a fingerprint plus an exact state
   capture — refreshed on a doubling schedule, exactly the classic
   teleporting-tortoise structure: once the trajectory has entered a
   loop of period [p], some refresh lands the anchor inside the loop,
   and from then on the live fingerprint matches the anchor's within
   [p] checked steps (stride permitting).  A fingerprint match alone is
   not a proof — hashes collide — so every candidate is confirmed
   against the anchor's exact capture before a period is reported; a
   rejected candidate counts as a collision and detection simply
   continues. *)

type 'snap t = {
  hash : unit -> int;
  capture : unit -> 'snap;
  confirm : 'snap -> bool;
  stride : int;
  mutable anchor : 'snap option;
  mutable anchor_hash : int;
  mutable anchor_cycle : int;
  mutable next_refresh : int;
  mutable checks : int;
  mutable candidates : int;
  mutable collisions : int;
}

let create ?(first = 256) ?(stride = 4) ~hash ~capture ~confirm () =
  if first < 0 then invalid_arg "Cycle.create: first must be >= 0";
  if stride < 1 then invalid_arg "Cycle.create: stride must be >= 1";
  { hash;
    capture;
    confirm;
    stride;
    anchor = None;
    anchor_hash = 0;
    anchor_cycle = -1;
    next_refresh = first;
    checks = 0;
    candidates = 0;
    collisions = 0 }

let observe t ~cycle =
  if cycle mod t.stride <> 0 then None
  else begin
    t.checks <- t.checks + 1;
    let h = t.hash () in
    let proven =
      match t.anchor with
      | Some snap when cycle > t.anchor_cycle && h = t.anchor_hash ->
          t.candidates <- t.candidates + 1;
          if t.confirm snap then Some (cycle - t.anchor_cycle)
          else begin
            t.collisions <- t.collisions + 1;
            None
          end
      | Some _ | None -> None
    in
    match proven with
    | Some _ as r -> r
    | None ->
        if cycle >= t.next_refresh then begin
          t.anchor <- Some (t.capture ());
          t.anchor_hash <- h;
          t.anchor_cycle <- cycle;
          (* doubling schedule, robust to a detector created mid-run
             (a resumed trajectory anchors at its first check) *)
          t.next_refresh <- (max cycle 1) * 2
        end;
        None
  end

let checks t = t.checks

let candidates t = t.candidates

let collisions t = t.collisions
