(** Brent-style cycle finding with exact confirmation.

    Proves that a deterministic trajectory has entered a closed state
    cycle: a cheap fingerprint ([hash]) is compared every [stride]
    steps against a stored {e anchor} refreshed on a doubling schedule,
    and every fingerprint match is confirmed against the anchor's exact
    state capture before a period is reported — a hash collision is
    counted and skipped, never reported as a cycle.  Once the anchor
    sits inside a loop of period [p], {!observe} returns within at most
    [stride * p] further steps (the anchor lands inside the loop after
    at most one refresh past loop entry, by the doubling schedule).

    The caller owns the state: [hash]/[capture]/[confirm] must all
    describe the {e complete} state that determines the future of the
    trajectory (for an RTL machine: every node value, every memory
    word, and any environment state such as bus-driver counters and
    pending writes — anything less and a reported "cycle" might not be
    closed). *)

type 'snap t

val create :
  ?first:int ->
  ?stride:int ->
  hash:(unit -> int) ->
  capture:(unit -> 'snap) ->
  confirm:('snap -> bool) ->
  unit ->
  'snap t
(** [create ~hash ~capture ~confirm ()] — [hash] fingerprints the live
    state, [capture] copies it exactly, [confirm snap] decides exact
    equality of the live state against a capture.  [first] (default
    256) is the earliest cycle at which an anchor is stored; [stride]
    (default 4) checks only cycles divisible by it.  A detector created
    mid-run anchors at its first check ≥ [first] — resuming deep into a
    trajectory costs nothing. *)

val observe : 'snap t -> cycle:int -> int option
(** [observe t ~cycle] — call at every settled step with the current
    cycle number (monotonically increasing).  Returns [Some period] the
    first time the live state is {e proven} equal to the anchor state
    ([cycle - anchor_cycle] is then a true period of the trajectory,
    possibly a multiple of the minimal one); [None] otherwise. *)

val checks : 'snap t -> int
(** Fingerprints computed so far. *)

val candidates : 'snap t -> int
(** Fingerprint matches submitted for exact confirmation. *)

val collisions : 'snap t -> int
(** Candidates rejected by exact confirmation (hash collisions). *)
