(** Structural RTL simulation kernel.

    A circuit is a netlist of named, width-annotated nodes — external
    inputs, constants, combinational functions and clocked registers —
    plus word-organised memories with combinational read ports and
    clocked write ports.  After {!elaborate} the combinational nodes
    are scheduled in dependency order and the circuit is stepped with
    [settle]/[clock] pairs, exactly like an HDL simulator with a single
    clock domain.

    Every node is a {e fault-injection point}: a single permanent fault
    (stuck-at-0, stuck-at-1 or open-line) can be armed on any bit of
    any node or memory cell from a given cycle onwards, reproducing the
    simulator-command injection technique of Jenn et al. (MEFISTO) that
    the paper uses.  Open line is modelled as charge retention: the bit
    keeps its previous settled value (for cells: writes to the bit are
    lost).

    The kernel is deliberately cycle-based rather than event-driven —
    fault-injection campaigns run thousands of full-program
    simulations, so the per-cycle cost is a flat sweep over a
    precomputed schedule. *)

type t

type signal = private int
(** Node handle.  The representation is exposed read-only ([:> int])
    so analysis passes can index dense per-node arrays; handles are
    the 0-based creation order, which is also why they are portable
    across circuits built by the same deterministic construction. *)

type memory = private int
(** Memory handle; same creation-order representation as {!signal}. *)

exception Combinational_cycle of string
(** Raised by {!elaborate}; the payload names a node on the cycle. *)

exception Not_elaborated
exception Already_elaborated

val create : string -> t
(** [create name] makes an empty circuit. *)

val name : t -> string

(** {2 Construction}

    All constructors must be called before {!elaborate}.  Node names
    are prefixed by the current scope path, ["iu.ex.alu_result"]. *)

val scoped : t -> string -> (unit -> 'a) -> 'a
(** [scoped c scope f] runs [f] with [scope] pushed on the name
    prefix stack. *)

val input : t -> string -> int -> signal
(** [input c name width] declares an externally driven port. *)

val const : t -> string -> int -> int -> signal
(** [const c name width value]. *)

val comb1 : t -> string -> int -> signal -> (int -> int) -> signal
val comb2 : t -> string -> int -> signal -> signal -> (int -> int -> int) -> signal
val comb3 :
  t -> string -> int -> signal -> signal -> signal -> (int -> int -> int -> int) -> signal
val comb4 :
  t -> string -> int -> signal -> signal -> signal -> signal ->
  (int -> int -> int -> int -> int) -> signal
val combn : t -> string -> int -> signal array -> (int array -> int) -> signal
(** [combn c name width deps f] — [f] receives the dependency values
    {e positionally}: element [i] of its argument is the value of
    [deps.(i)].  The argument array is reused between evaluations, so
    [f] must not retain it.  Results are truncated to [width] bits by
    the kernel (as are all comb results). *)

(** {2 Gate primitives}

    One-bit NAND / NOR / NOT / MUX cells (plus an identity buffer) —
    the cell library of the gate-level elaboration.  Each is an
    ordinary comb node, so every fault model, the coverage prefilter,
    probing, and the batch engine apply per gate output with no
    special cases.  All operands must be 1 bit wide ([Invalid_argument]
    otherwise). *)

val gate_not : t -> string -> signal -> signal
val gate_buf : t -> string -> signal -> signal
val gate_nand : t -> string -> signal -> signal -> signal
val gate_nor : t -> string -> signal -> signal -> signal

val gate_mux : t -> string -> sel:signal -> signal -> signal -> signal
(** [gate_mux c name ~sel a b] is [a] when [sel] is 1, else [b]. *)

val reg : t -> string -> width:int -> ?init:int -> unit -> signal
(** Declare a clocked register; its data input is attached later with
    {!connect} (registers may sit on feedback paths). *)

val connect : t -> signal -> ?en:signal -> d:signal -> unit -> unit
(** [connect c r ~en ~d ()] attaches register [r]'s next-value input; when
    the optional enable is 0 the register holds.  Each register must be
    connected exactly once. *)

val memory : t -> string -> words:int -> width:int -> memory
(** Word-organised storage (register file, cache tag/data arrays). *)

val read_port : t -> string -> memory -> signal -> signal
(** Combinational (asynchronous) read port: output follows the
    addressed cell.  Out-of-range addresses read zero. *)

val write_port : t -> memory -> we:signal -> addr:signal -> data:signal -> unit
(** Clocked write port, committed on {!clock} when [we] is non-zero.
    Out-of-range addresses are discarded. *)

(** {2 Elaboration and simulation} *)

val elaborate : t -> unit
(** Freeze the netlist and schedule combinational nodes.  Checks that
    every register is connected and that the combinational graph is
    acyclic. *)

val reset : t -> unit
(** Restore registers to their init values, clear memories, inputs and
    the cycle counter (the armed fault, if any, is kept). *)

val set_input : t -> signal -> int -> unit

val settle : t -> unit
(** Propagate combinational values from the current register/input
    state. *)

val clock : t -> unit
(** Commit register next-values and memory writes from the settled
    values, then advance the cycle counter.  Call {!settle} again
    before reading outputs. *)

val value : t -> signal -> int
(** Settled value of a node. *)

val cycle : t -> int
(** Number of {!clock} calls since reset. *)

val mem_read : t -> memory -> int -> int
(** Direct backdoor read (testing and environment models). *)

val mem_write : t -> memory -> int -> int -> unit
(** Direct backdoor write; still subject to an armed cell fault. *)

(** {2 State snapshots}

    A snapshot captures the complete sequential state of the circuit —
    every node value, every memory word and the cycle counter — so a
    run can be resumed from an intermediate point.  Snapshots taken on
    one circuit are valid on any other circuit built by the same
    deterministic construction (same netlist ⇒ same node numbering),
    which is what lets parallel campaign domains share golden
    checkpoints. *)

type snapshot

val snapshot : t -> snapshot
(** Copy the current settled state. *)

val restore : t -> snapshot -> unit
(** Overwrite node values, memory contents and the cycle counter from
    a snapshot.  The armed fault (if any) is left untouched. *)

val state_equal : t -> snapshot -> bool
(** Exact equality of the live state against a snapshot (stronger than
    comparing {!state_hash}es: no collision risk, and it short-circuits
    on the first differing word). *)

val same_state : t -> snapshot -> bool
(** Like {!state_equal} but ignoring the cycle counter: true when the
    machine has re-entered a state it passed through earlier.  This is
    what hang-loop detection compares — a state revisited with
    identical future inputs proves the trajectory is periodic.  When an
    observed cone is set ({!set_observed_cone}), the comparison is
    restricted to it. *)

val set_observed_cone : t -> signal list -> unit
(** Declare the signals the environment reads and restrict recurrence
    comparison to their backward closure: every node some root depends
    on (combinationally or through registers), every memory one of the
    cone's read ports reads — plus, transitively, those memories'
    write-port drivers.  State outside the cone is pure accounting
    (e.g. a retired-instruction counter): it can keep evolving without
    ever influencing an observable signal, a relevant memory, or its
    own feed-back into the cone, so a cone-state recurrence still
    proves the observable trajectory is periodic.  Affects
    {!same_state}, {!content_hash}, {!batch_lane_same_state} and
    {!batch_lane_hash}; {!state_equal}, {!snapshot}/{!restore} and
    {!state_hash} stay full-state. *)

val enable_observed_cone : t -> bool -> unit
(** Toggle the cone restriction without recomputing the closure
    (default on once {!set_observed_cone} has run).  Off, recurrence
    comparison reverts to full state — on a core with free-running
    accounting state that makes the hang detector provably inert,
    which is exactly the legacy behaviour the tail A/B measures
    against. *)

val state_hash : t -> int
(** Deterministic hash of the full sequential state; cheap fingerprint
    for logging and cross-checking checkpoints. *)

val content_hash : t -> int
(** Like {!state_hash} but ignoring the cycle counter — the fingerprint
    that pairs with {!same_state} for cycle-proof hang detection, where
    states at different cycles must fingerprint equal. *)

(** {2 Fault injection} *)

type fault_model =
  | Stuck_at_0
  | Stuck_at_1
  | Open_line
  | Bit_flip
      (** inversion of the bit while active; combined with
          [duration = Some 1] this is a single-event upset (a register
          or cell keeps the corrupted value after the window closes) *)

type fault_site =
  | Node of signal * int  (** node, bit *)
  | Cell of memory * int * int  (** memory, word index, bit *)

val inject : t -> ?from_cycle:int -> ?duration:int -> fault_site -> fault_model -> unit
(** Arm the (single) fault: active from [from_cycle] for [duration]
    cycles ([None] = permanent).  Replaces any previous fault. *)

val clear_fault : t -> unit

val fault_model_name : fault_model -> string

(** {2 Value coverage (activation prefilter)}

    While recording, the kernel accumulates per-node and per-cell
    bitmasks of values observed at every settled state (and, for
    cells, at every content change).  A permanent fault whose forced
    value was always the observed value provably never activates: the
    faulty run's trajectory is identical to the recorded one, so a
    campaign can classify it silent without simulating it. *)

type coverage

val coverage_start : t -> unit
(** Begin recording (clears any previous recording).  Recording adds
    one sweep over the node array per {!settle}; enable it only for
    the golden run. *)

val coverage_stop : t -> coverage
(** Stop recording and return the accumulated coverage. *)

val never_activates : coverage -> fault_site -> fault_model -> bool
(** [never_activates cov site model] is [true] when the fault is
    provably inactive over any run whose observed values are covered
    by [cov]: stuck-at-0 on a bit never seen 1, stuck-at-1 on a bit
    never seen 0, open-line on a bit that never toggled.  [Bit_flip]
    always activates. *)

(** {2 Golden value traces (differential simulation)}

    A golden run can additionally record its complete per-cycle settled
    state as a {e trace}: per-cycle value deltas (only nodes that
    changed), periodic full keyframes, and the stream of memory writes.
    A faulty run on the same netlist then {e replays} against the trace
    in differential mode — only the fanout cone of {e dirty} nodes
    (nodes whose value differs from golden) is re-evaluated each cycle,
    clean nodes take their golden values for free, and memories track a
    sparse diff map.  An empty dirty set plus an empty memory diff is
    exact re-convergence with the golden run, making the campaign's
    convergence check O(dirty) instead of O(n). *)

type trace
(** Delta-compressed golden value trace.  Immutable once built; safe to
    share read-only across parallel campaign domains. *)

val trace_start : t -> unit
(** Begin recording a trace of every subsequent settled state.  Adds
    one compare sweep per {!settle} (same order of cost as coverage
    recording); enable it only for the golden run.  Fails if a replay
    is armed. *)

val trace_stop : t -> trace
(** Stop recording and freeze the trace. *)

val trace_cycles : trace -> int
(** Number of settled cycles recorded (cycles [0 .. n-1]). *)

val trace_evals : trace -> int
(** Combinational evaluations performed while the trace was recorded
    (the golden run's dense-sweep cost, for reporting). *)

type replay_plan = {
  rp_fanout : int array array;
      (** per node: deduplicated combinational sink ids *)
  rp_level : int array;  (** per node: combinational level (sources = 0) *)
  rp_max_level : int;
  rp_mem_readers : int array array;  (** per memory: its read-port node ids *)
}
(** The levelized schedule a replay evaluates dirty cones with.  Built
    once per netlist from the elaborated circuit by
    [Analysis.Graph.replay_plan] (the same edge extraction that powers
    cone pruning); {!replay_start} only validates its shape. *)

val replay_start : t -> replay_plan -> trace -> unit
(** Switch the circuit into differential replay against [trace], from
    the current cycle onwards.  The current state should be a state the
    trace's golden run actually passed through (a restored golden
    checkpoint or a fresh golden [load]) — any residual difference is
    picked up as initial dirt, but golden-identical positioning is what
    makes the dirty set start empty.  While a replay is armed,
    {!reset} and {!restore} are rejected.  Past the end of the trace
    (watchdog territory: the faulty run outlives the golden program)
    the engine falls back to dense sweeps and {!replay_converged}
    reports [None]. *)

val replay_active : t -> bool

val replay_converged : t -> bool option
(** [Some true] iff the faulty state is {e exactly} the golden state at
    the current cycle — empty dirty set and empty memory diff — which
    is sound only against checkpoints taken from the same golden run
    the armed trace records.  [None] when no replay is armed or the
    trace is exhausted (callers must fall back to {!state_equal}). *)

type replay_stats = {
  rs_evals : int;
      (** comb evaluations the differential engine actually performed *)
  rs_dense_evals : int;
      (** evaluations a full per-cycle sweep would have performed over
          the same cycles — the denominator of the saving ratio *)
  rs_dirty_peak : int;  (** largest dirty-node count at any settle *)
  rs_divergence_cycles : int;
      (** settled states at which the run differed from golden *)
}

val replay_stop : t -> replay_stats
(** Disarm the replay and return its accumulated statistics. *)

val compiled_plan : t -> replay_plan
(** The levelized schedule the kernel lowered from the netlist at
    {!elaborate} — field-for-field identical to what
    [Analysis.Graph.replay_plan] builds from the structural views, but
    available without constructing the dependency graph.  Built once
    per elaboration; do not mutate. *)

(** {2 Bit-parallel fault batching (PPSFP)}

    The batch engine packs up to {!max_lanes} faulty machines next to
    the golden machine and advances them all against one golden trace:
    the golden state lives in the circuit's own values (advanced
    wholesale from the trace deltas, never re-evaluated), and each
    {e lane} stores only the nodes on which it currently diverges — a
    per-node 63-bit divergence mask plus a dense lane-value store.  A
    batch settle propagates lane sets through the levelized schedule
    with bitwise ORs, so a clean (node, lane) pair costs nothing and a
    campaign of thousands of mostly-convergent faulty runs becomes
    dozens of passes.  Memory divergence is tracked per lane with
    sparse overlays above the golden (base) arrays.

    While a batch is armed the scalar entry points ([reset], [settle],
    [clock], [set_input], [inject], [restore], [mem_write], trace and
    replay control) are rejected; use the [batch_*] variants.  The
    circuit must sit at cycle 0 in the trace's initial settled state
    when the batch starts (a fresh golden [load]). *)

val max_lanes : int
(** 63: one native [int] keeps 63 usable lane bits next to the
    implicit golden machine. *)

type batch_stats = {
  bs_evals : int;  (** per-lane comb evaluations actually performed *)
  bs_dense_evals : int;
      (** evaluations [lanes] independent dense sweeps would have cost
          over the same cycles *)
}

val batch_start : t -> trace -> unit
(** Arm the batch engine against a golden trace.  No lanes are active
    until {!batch_arm}. *)

val batch_arm :
  t -> int -> ?from_cycle:int -> ?duration:int -> fault_site -> fault_model -> unit
(** [batch_arm c lane site model] puts one faulty machine into [lane]
    (0 .. [max_lanes - 1]); same fault semantics as {!inject}.  The
    lane starts as an exact copy of the golden machine. *)

val batch_settle : t -> unit
(** Propagate every active lane's divergence cone (the golden values
    are already settled, straight from the trace). *)

val batch_clock : t -> unit
(** Commit registers and memory writes for every active lane, then
    advance the golden machine one cycle from the trace.  Check
    {!batch_exhausted} afterwards: past the end of the trace the
    remaining lanes must be ejected to scalar runs. *)

val batch_value : t -> signal -> int -> int
(** [batch_value c s lane]: lane's settled view of a node. *)

val batch_set_input : t -> signal -> int -> int -> unit
(** [batch_set_input c s lane v]: drive an input as seen by one lane
    (the golden input value arrives via the trace delta). *)

val batch_mem_read : t -> memory -> int -> int -> int
(** [batch_mem_read c m idx lane]: lane's view of a memory cell. *)

val batch_retire : t -> int -> unit
(** Drop a lane from the batch (terminal verdict reached): clears its
    divergence bits and memory overlays so the remaining lanes' settles
    no longer pay for it. *)

val batch_active : t -> int
(** Mask of live lanes (0 when no batch is armed). *)

val batch_armed : t -> bool

val batch_exhausted : t -> bool
(** The golden trace ended while lanes were still live; their batch
    state is no longer advanced. *)

val batch_stop : t -> batch_stats
(** Disarm the batch and return its accumulated statistics.  The
    circuit is left mid-trace (golden values at the current cycle);
    callers re-[load] before the next use. *)

(** {2 Dense tail batching}

    When the golden trace ends ({!batch_exhausted}) with lanes still
    live, the batch can switch into {e tail mode}: the golden machine
    stays frozen at the trace's last settled state while the live lanes
    keep advancing together, bit-parallel but dense — every comb node
    evaluates for every live lane (there is no golden trajectory left
    to diff against).  Each lane retires individually (exit, abort, or
    a proven state cycle via {!batch_lane_hash}/{!batch_lane_same_state});
    a lone survivor is cheaper ejected to a scalar run
    ({!batch_eject}/{!transplant}). *)

val batch_tail_start : t -> unit
(** Enter tail mode.  Requires {!batch_exhausted}.  Completes the
    exhausting clock's skipped register commit (every slot, every live
    lane, from the lane's settled pre-clock view) so the batch stands
    at a clean cycle boundary; the caller then drives lane inputs
    ({!batch_set_input}) and calls {!batch_tail_settle}. *)

val batch_tail_active : t -> bool

val batch_tail_settle : t -> unit
(** Dense settle of every live lane (replaces {!batch_settle}, which
    rejects tail mode). *)

val batch_tail_clock : t -> unit
(** Clock every live lane: sample all register slots, commit lane
    memory writes to the overlays (the golden base is frozen), advance
    the cycle counter, commit registers. *)

val batch_lane_state : t -> int -> snapshot
(** One lane's complete settled state as an ordinary snapshot. *)

val batch_lane_same_state : t -> int -> snapshot -> bool
(** Exact equality of a lane's live state against a snapshot, ignoring
    the cycle counter (the batch analogue of {!same_state}). *)

val batch_lane_hash : t -> int -> int
(** Cycle-independent fingerprint of one lane's state (the batch
    analogue of {!content_hash}). *)

(** {2 Lane → scalar transplant} *)

type transplant
(** A lane's extracted state — node values, memory contents (base plus
    overlay), cycle counter — together with a private copy of its armed
    fault (so transient-window bookkeeping such as an applied SEU or a
    captured open-line bit carries over instead of re-triggering). *)

val batch_eject : t -> int -> transplant
(** Extract a live lane's state for scalar continuation.  The lane is
    not retired; callers typically {!batch_retire} or {!batch_stop}
    afterwards. *)

val transplant : t -> transplant -> unit
(** Overwrite a scalar circuit's state and armed fault from a
    transplant.  The circuit must come from the same deterministic
    construction (same netlist) as the batch it was ejected from; the
    resulting state is already settled — do not re-[settle]. *)

val transplant_cycle : transplant -> int
(** The cycle counter captured at ejection. *)

(** {2 Introspection} *)

val signals : t -> (string * signal * int) list
(** All nodes: [(hierarchical name, signal, width)], in creation
    order.  Includes inputs, constants, combs and registers. *)

val memories : t -> (string * memory * int * int) list
(** [(name, memory, words, width)]. *)

val signal_width : t -> signal -> int
val signal_name : t -> signal -> string
val find_signal : t -> string -> signal option
val node_count : t -> int
(** Total number of signal nodes (netlist size proxy for area). *)

val injection_bits : t -> prefix:string -> (fault_site * string) list
(** Every (node, bit) site whose hierarchical name starts with
    [prefix]; the string is ["name[bit]"].  Memory cells are not
    included (enumerate them explicitly if wanted). *)

(** {2 Structural views (static analysis)}

    The functions below expose the elaborated netlist as data — node
    kinds with their dependencies, register data/enable inputs, and
    both directions of every memory port — so an external pass can
    rebuild the exact dependency graph the simulator executes.  All of
    them require an elaborated circuit ({!Not_elaborated} otherwise). *)

type node_view =
  | V_input
  | V_const of int
  | V_comb of signal array
      (** positional dependencies, exactly the values the evaluator
          reads (a read port additionally reads its memory — see
          {!read_port_memory}) *)
  | V_register of { d : signal; en : signal option; init : int }

val node_view : t -> signal -> node_view

val read_port_memory : t -> signal -> memory option
(** [Some m] when the node is a read port of memory [m].  Read-port
    evaluators close over the memory content, so this edge is {e not}
    in their [V_comb] dependency array — graph builders must add it. *)

val write_ports : t -> memory -> (signal * signal * signal) list
(** The [(we, addr, data)] triples of a memory's write ports, in
    creation order. *)

val probe_comb : t -> signal -> int array -> int
(** [probe_comb c s values] applies node [s]'s combinational evaluator
    to [values] (indexed by [(signal :> int)]; only the node's
    dependency slots are read) and returns the {e unmasked} result —
    callers see any bits a width-truncating function would drop.  The
    simulator state is not touched.  Rejects read ports (their result
    depends on memory content, not just [values]) and non-comb nodes
    with [Invalid_argument].  Every other evaluator is a pure function
    of its dependency values, which is what makes exhaustive probing
    (truth tables for fault collapsing, constant detection for lint)
    exact. *)
