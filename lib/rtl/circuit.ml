type signal = int

type memory = int

exception Combinational_cycle of string
exception Not_elaborated
exception Already_elaborated

type fault_model = Stuck_at_0 | Stuck_at_1 | Open_line | Bit_flip

type fault_site = Node of signal * int | Cell of memory * int * int

type reg_info = { init : int; mutable d : int; mutable en : int }

type kind =
  | Input
  | Const of int
  | Comb of { deps : int array; eval : int array -> int }
  | Register of reg_info

type node = { nm : string; width : int; kind : kind }

type write_port_info = { wp_we : int; wp_addr : int; wp_data : int }

type mem_info = {
  m_name : string;
  words : int;
  m_width : int;
  data : int array;
  mutable write_ports : write_port_info list;  (* reversed during construction *)
  mutable wp_arr : write_port_info array;  (* frozen at elaboration, creation order *)
}

type fault = {
  site : fault_site;
  model : fault_model;
  from_cycle : int;
  duration : int option;  (** [None] = permanent *)
  mutable frozen : int option;
      (** open-line: captured bit value; bit-flip cells: applied marker *)
}

(* Value coverage of one run: for every node (and memory cell) a mask
   of bits observed at 0 and a mask of bits observed at 1, sampled at
   every settled state (nodes) / content change (cells).  A stuck-at
   fault on a bit whose "wrong" value was never observed is provably
   inactive for the whole run — the campaign prefilter builds on this. *)
type coverage = {
  cov_seen0 : int array;  (* per node *)
  cov_seen1 : int array;
  cov_cell_seen0 : int array array;  (* per memory, per word *)
  cov_cell_seen1 : int array array;
}

(* Growable array: the construction-side store (so [connect] and
   [mem_info] are O(1) instead of List.nth over a reversed list) and
   the delta buffers of the golden value trace. *)
module Vec = struct
  type 'a t = { mutable a : 'a array; mutable n : int; dummy : 'a }

  let create dummy = { a = Array.make 16 dummy; n = 0; dummy }

  let length v = v.n

  let get v i = v.a.(i)

  let set v i x = v.a.(i) <- x

  let push v x =
    if v.n = Array.length v.a then begin
      let a' = Array.make (2 * v.n) v.dummy in
      Array.blit v.a 0 a' 0 v.n;
      v.a <- a'
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let clear v = v.n <- 0

  (* Remove element [i] by swapping the last element into its place. *)
  let swap_pop v i =
    v.n <- v.n - 1;
    v.a.(i) <- v.a.(v.n)

  let to_array v = Array.sub v.a 0 v.n
end

(* --- golden value trace (differential simulation) --- *)

(* A trace is the golden run's complete per-cycle settled state,
   delta-compressed: for every cycle the set of nodes whose value
   changed (packed [(id << 32) | value]), periodic full keyframes so a
   replay can position at any cycle, and the stream of memory writes
   (packed [(mem << 52) | (word << 32) | value]) bucketed by the cycle
   from which they are visible. *)
type trace = {
  tr_len : int;  (* settled cycles recorded: 0 .. tr_len-1 *)
  tr_delta : int array;
  tr_dend : int array;  (* per cycle: end offset of its delta run *)
  tr_keys : (int * int array) array;  (* (cycle, full values), ascending *)
  tr_wmem : int array;
  tr_wend : int array;  (* per cycle: writes visible by that cycle (cumulative) *)
  tr_evals : int;  (* comb evaluations performed while recording *)
}

type trace_builder = {
  tb_prev : int array;
  tb_delta : int Vec.t;
  tb_dend : int Vec.t;
  mutable tb_upto : int;  (* highest cycle recorded, -1 before the first settle *)
  mutable tb_keys : (int * int array) list;  (* newest first *)
  tb_wmem : int Vec.t;
  tb_wbucket : int Vec.t;  (* visibility cycle per write, nondecreasing *)
  mutable tb_evals : int;
}

let key_every = 1024

let pack_delta id v = (id lsl 32) lor v

let delta_id p = p lsr 32

let delta_val p = p land 0xFFFFFFFF

let pack_write m idx v = (m lsl 52) lor (idx lsl 32) lor v

let write_mem p = p lsr 52

let write_idx p = (p lsr 32) land 0xFFFFF

let write_val p = p land 0xFFFFFFFF

(* --- differential replay (event-driven faulty simulation) --- *)

(* The levelized evaluation schedule a replay needs: per-node
   combinational fanout (deduplicated comb sink ids), per-node comb
   level, and each memory's read-port nodes.  Built from the elaborated
   netlist by [Analysis.Graph.replay_plan] (the same edge extraction
   that powers cone pruning); the circuit only validates shapes. *)
type replay_plan = {
  rp_fanout : int array array;
  rp_level : int array;
  rp_max_level : int;
  rp_mem_readers : int array array;
}

type replay_stats = {
  rs_evals : int;  (* comb evaluations the differential engine performed *)
  rs_dense_evals : int;  (* evaluations a full per-cycle sweep would have performed *)
  rs_dirty_peak : int;  (* largest dirty-node count at any settled state *)
  rs_divergence_cycles : int;  (* settled states with a non-empty dirty set / mem diff *)
}

type replay = {
  rp : replay_plan;
  tr : trace;
  g_values : int array;  (* golden settled values at the current cycle *)
  g_mem : int array array;  (* golden memory contents at the current cycle *)
  dirty : bool array;  (* node differs from golden *)
  mutable ndirty : int;
  mdiff : (int, unit) Hashtbl.t array;  (* per memory: differing word indexes *)
  mutable nmdiff : int;
  mutable dcomb : int Vec.t;  (* comb nodes dirty after the last settle *)
  mutable dnext : int Vec.t;  (* scratch, swapped with [dcomb] per settle *)
  dsrc : int Vec.t;  (* dirty registers, rebuilt at every clock *)
  input_ids : int array;
  buckets : int Vec.t array;  (* worklist, one bucket per comb level *)
  wl_stamp : int array;  (* membership stamp per node *)
  mutable stamp : int;
  mutable exhausted : bool;  (* ran past the end of the golden trace *)
  mutable evals : int;
  mutable dense : int;
  mutable dirty_peak : int;
  mutable div_cycles : int;
}

let dummy_node = { nm = ""; width = 1; kind = Input }

let dummy_mem =
  { m_name = ""; words = 0; m_width = 1; data = [||]; write_ports = []; wp_arr = [||] }

(* --- bit-parallel fault batching (PPSFP) --- *)

(* One native int per node packs up to 63 faulty machines: bit [l] of
   [bt_diff.(id)] says lane [l]'s value of node [id] differs from the
   golden machine (whose values live in [t.values], advanced from the
   golden trace).  Lane values are stored densely at
   [(id lsl lane_shift) lor l] and are only meaningful where the diff
   bit is set, so a batch settle propagates "needs evaluation" lane
   sets with bitwise ORs and every clean (node, lane) pair costs
   nothing. *)

let lane_shift = 6

let max_lanes = 63  (* a native int keeps 63 usable bits: the golden
                       machine is implicit, lanes 0..62 are faulty *)

type batch_stats = {
  bs_evals : int;  (* per-lane comb evaluations performed *)
  bs_dense_evals : int;  (* evaluations [lanes] dense sweeps would have cost *)
}

(* Sparse per-memory lane overlay: a cell has an entry only while some
   lane's content differs from the golden (base) content. *)
type batch = {
  bt_tr : trace;
  mutable bt_active : int;  (* mask of live lanes *)
  bt_diff : int array;  (* per node: diverged-lane mask *)
  bt_lane : int array;  (* (id lsl lane_shift) lor lane -> lane value *)
  bt_faults : fault option array;  (* per lane *)
  bt_fnode : int array;  (* per lane: faulted node id (Node sites), -1 *)
  bt_fsrc : bool array;  (* per lane: faulted node is a source (non-comb) *)
  bt_ov : int array array;  (* per memory: lane values, [(idx lsl lane_shift) lor l] *)
  bt_ovl : int array array;  (* per memory: per-cell diverged-lane mask *)
  bt_mem_lanes : int array;  (* per memory: lanes with >= 1 overlay entry *)
  bt_mem_cnt : int array array;  (* per memory, per lane: entry count *)
  bt_cellf : int array;  (* per memory: lanes with an armed cell fault *)
  bt_buckets : int Vec.t array;  (* worklist, one bucket per comb level *)
  bt_pend : int array;  (* per node: lanes awaiting evaluation this settle *)
  bt_wl_stamp : int array;
  mutable bt_stamp : int;
  bt_stamped : int Vec.t;
      (* nodes whose effective value moved since the last settle: trace
         deltas, clock-committed lane registers and lane input changes.
         This is the entire seed set — a divergence cone none of whose
         members moved contributes nothing to the next settle. *)
  bt_mem_dirty : int array;
      (* per memory: lanes whose view of some cell moved since the last
         settle (overlay set/drop, golden base write, forced cell
         fault) — the only lanes whose read ports must re-derive when
         their address input is quiet *)
  bt_views : int array;  (* write-commit scratch, per lane *)
  bt_regnext : int array;  (* (k lsl lane_shift) lor lane *)
  bt_regpend : int array;  (* per register slot: lanes sampled this clock *)
  bt_ov_ids : int array;  (* eval scratch: overridden dependency ids *)
  bt_ov_vals : int array;  (* eval scratch: saved golden values *)
  bt_sc_fire : int array;  (* write-commit scratch, per lane *)
  bt_sc_idx : int array;
  bt_sc_val : int array;
  bt_nstamp : int array;
      (* per node: cycle of the last effective-value change (a golden
         trace delta, or a lane value / diff-bit change).  A pending
         node none of whose dependencies carry the current cycle's
         stamp would recompute exactly what it computed last settle, so
         the evaluator skips it — the change-driven pruning that makes
         a quiescent divergence cone cost nothing per cycle. *)
  bt_fsite : int array;
      (* per node: lanes with a combinational fault site here — exempt
         from stamp skipping (the fault window opens and closes on the
         cycle counter, not on any dependency) *)
  bt_regof : int array array;
      (* per node: register slots watching it as q, d or enable *)
  bt_regset : int Vec.t;  (* slots with any divergence on q/d/en *)
  bt_regmem : bool array;  (* per slot: member of [bt_regset] *)
  bt_regactive : int Vec.t;  (* slots sampled by this clock's phase 1 *)
  mutable bt_exhausted : bool;  (* ran past the end of the golden trace *)
  mutable bt_tail : bool;
      (* dense (non-differential) tail mode: the golden machine is
         frozen at the trace's last settled state and the live lanes
         advance together past trace end — every comb node evaluates
         for every live lane each settle, every register slot commits
         per lane each clock *)
  mutable bt_evals : int;
  mutable bt_dense : int;
}

type t = {
  c_name : string;
  building : node Vec.t;
  mutable scopes : string list;
  mems : mem_info Vec.t;
  mutable rports : (int * int) list;  (* read-port node id -> memory id *)
  mutable node_cnt : int;
  mutable mem_cnt : int;
  (* elaboration products *)
  mutable nodes : node array;
  mutable mem_arr : mem_info array;
  mutable values : int array;
  mutable masks : int array;
  mutable order : int array;  (* comb schedule *)
  mutable evals : (int array -> int) array;  (* parallel to order *)
  mutable eval_by_id : (int array -> int) array;  (* indexed by node id *)
  mutable deps_by_id : int array array;  (* comb dependencies, [||] otherwise *)
  mutable rport_of : int array;  (* node id -> memory id for read ports, -1 *)
  mutable max_deps : int;
  mutable reg_ids : int array;
  mutable reg_next : int array;
  mutable reg_d : int array;  (* parallel to reg_ids: data input id *)
  mutable reg_en : int array;  (* parallel to reg_ids: enable id or -1 *)
  mutable input_ids : int array;
  mutable compiled : replay_plan option;  (* levelized schedule, per elaboration *)
  mutable by_name : (string, int) Hashtbl.t;
  mutable elaborated : bool;
  mutable cyc : int;
  mutable fault : fault option;
  mutable recording : coverage option;
  mutable tracing : trace_builder option;
  mutable replay : replay option;
  mutable batch : batch option;
  (* observed-cone restriction for recurrence comparison: [||] = no
     cone set, every node and memory compared; [cone_on] gates the
     restriction so an A/B can fall back to full-state comparison
     without recomputing the closure *)
  mutable cone : bool array;
  mutable cone_mems : bool array;
  mutable cone_on : bool;
}

let create c_name =
  { c_name; building = Vec.create dummy_node; scopes = []; mems = Vec.create dummy_mem;
    rports = []; node_cnt = 0; mem_cnt = 0; nodes = [||]; mem_arr = [||]; values = [||];
    masks = [||]; order = [||]; evals = [||]; eval_by_id = [||]; deps_by_id = [||];
    rport_of = [||]; max_deps = 0; reg_ids = [||]; reg_next = [||]; reg_d = [||];
    reg_en = [||]; input_ids = [||]; compiled = None; by_name = Hashtbl.create 16;
    elaborated = false; cyc = 0; fault = None; recording = None; tracing = None;
    replay = None; batch = None; cone = [||]; cone_mems = [||]; cone_on = true }

let name t = t.c_name

let scoped t scope f =
  t.scopes <- scope :: t.scopes;
  let finish () = t.scopes <- List.tl t.scopes in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let full_name t nm = String.concat "." (List.rev (nm :: t.scopes))

let add_node t nm width kind =
  if t.elaborated then raise Already_elaborated;
  if width < 1 || width > 32 then invalid_arg "Circuit: width must be 1..32";
  let id = t.node_cnt in
  Vec.push t.building { nm = full_name t nm; width; kind };
  t.node_cnt <- t.node_cnt + 1;
  id

let input t nm width = add_node t nm width Input

let const t nm width v = add_node t nm width (Const (v land ((1 lsl width) - 1)))

(* [combn] presents dependency values positionally; the scratch buffer
   is reused across evaluations to keep the hot loop allocation-free. *)
let combn t nm width deps f =
  let n = Array.length deps in
  let scratch = Array.make (max n 1) 0 in
  let eval values =
    for i = 0 to n - 1 do
      Array.unsafe_set scratch i (Array.unsafe_get values (Array.unsafe_get deps i))
    done;
    f scratch
  in
  add_node t nm width (Comb { deps; eval })

let comb1 t nm width a f =
  add_node t nm width (Comb { deps = [| a |]; eval = (fun vs -> f vs.(a)) })

let comb2 t nm width a b f =
  add_node t nm width (Comb { deps = [| a; b |]; eval = (fun vs -> f vs.(a) vs.(b)) })

let comb3 t nm width a b c f =
  add_node t nm width
    (Comb { deps = [| a; b; c |]; eval = (fun vs -> f vs.(a) vs.(b) vs.(c)) })

let comb4 t nm width a b c d f =
  add_node t nm width
    (Comb { deps = [| a; b; c; d |]; eval = (fun vs -> f vs.(a) vs.(b) vs.(c) vs.(d)) })

(* ---- gate primitives ----
   One-bit NAND/NOR/NOT/MUX (plus an identity buffer), the cell
   library of the gate-level elaboration.  Each is an ordinary comb
   node, so the full fault machinery (stuck-at, open-line, bit-flip,
   probing, batching) applies per gate output with no special cases. *)

let check_bit t nm s =
  if (Vec.get t.building s).width <> 1 then
    invalid_arg (Printf.sprintf "Circuit.gate %s: dependency %s is not 1 bit wide"
                   nm (Vec.get t.building s).nm)

let gate_not t nm a =
  check_bit t nm a;
  comb1 t nm 1 a (fun x -> x lxor 1)

let gate_buf t nm a =
  check_bit t nm a;
  comb1 t nm 1 a (fun x -> x)

let gate_nand t nm a b =
  check_bit t nm a;
  check_bit t nm b;
  comb2 t nm 1 a b (fun x y -> x land y lxor 1)

let gate_nor t nm a b =
  check_bit t nm a;
  check_bit t nm b;
  comb2 t nm 1 a b (fun x y -> x lor y lxor 1)

let gate_mux t nm ~sel a b =
  check_bit t nm sel;
  check_bit t nm a;
  check_bit t nm b;
  comb3 t nm 1 sel a b (fun s x y -> if s <> 0 then x else y)

let reg t nm ~width ?(init = 0) () =
  add_node t nm width (Register { init; d = -1; en = -1 })

let connect t r ?en ~d () =
  let node = Vec.get t.building r in
  match node.kind with
  | Register info ->
      if info.d >= 0 then invalid_arg ("Circuit.connect: already connected: " ^ node.nm);
      info.d <- d;
      (match en with Some e -> info.en <- e | None -> ())
  | Input | Const _ | Comb _ ->
      invalid_arg ("Circuit.connect: not a register: " ^ node.nm)

let memory t nm ~words ~width =
  if t.elaborated then raise Already_elaborated;
  if words < 1 || words > 1 lsl 20 then invalid_arg "Circuit.memory: words must be 1..2^20";
  let id = t.mem_cnt in
  Vec.push t.mems
    { m_name = full_name t nm; words; m_width = width; data = Array.make words 0;
      write_ports = []; wp_arr = [||] };
  t.mem_cnt <- t.mem_cnt + 1;
  id

let mem_info t m = if t.elaborated then t.mem_arr.(m) else Vec.get t.mems m

let read_port t nm m addr =
  let info = mem_info t m in
  let data = info.data in
  let words = info.words in
  let id =
    combn t nm info.m_width [| addr |] (fun vs ->
        let a = vs.(0) in
        if a < words then data.(a) else 0)
  in
  t.rports <- (id, m) :: t.rports;
  id

let write_port t m ~we ~addr ~data =
  let info = mem_info t m in
  info.write_ports <- { wp_we = we; wp_addr = addr; wp_data = data } :: info.write_ports

(* --- elaboration --- *)

let elaborate t =
  if t.elaborated then raise Already_elaborated;
  let nodes = Vec.to_array t.building in
  let n = Array.length nodes in
  let masks = Array.map (fun nd -> (1 lsl nd.width) - 1) nodes in
  (* check registers are connected *)
  Array.iter
    (fun nd ->
      match nd.kind with
      | Register info when info.d < 0 ->
          invalid_arg ("Circuit.elaborate: unconnected register: " ^ nd.nm)
      | Register _ | Input | Const _ | Comb _ -> ())
    nodes;
  (* topological order over combinational dependencies *)
  let color = Array.make n 0 in
  (* 0 unvisited, 1 in progress, 2 done *)
  let order = ref [] in
  let rec visit id =
    match color.(id) with
    | 2 -> ()
    | 1 -> raise (Combinational_cycle nodes.(id).nm)
    | _ -> (
        color.(id) <- 1;
        (match nodes.(id).kind with
        | Comb { deps; _ } ->
            Array.iter visit deps;
            order := id :: !order
        | Input | Const _ | Register _ -> ());
        color.(id) <- 2)
  in
  for id = 0 to n - 1 do
    visit id
  done;
  let reg_ids =
    Array.of_seq
      (Seq.filter_map
         (fun id ->
           match nodes.(id).kind with
           | Register _ -> Some id
           | Input | Const _ | Comb _ -> None)
         (Seq.init n Fun.id))
  in
  t.nodes <- nodes;
  t.mem_arr <- Vec.to_array t.mems;
  (* freeze write ports into creation-order arrays: the per-cycle
     commit loop must not re-reverse a list per memory *)
  Array.iter
    (fun info -> info.wp_arr <- Array.of_list (List.rev info.write_ports))
    t.mem_arr;
  t.values <- Array.make n 0;
  t.masks <- masks;
  t.order <- Array.of_list (List.rev !order);
  t.evals <-
    Array.map
      (fun id ->
        match nodes.(id).kind with
        | Comb { eval; _ } -> eval
        | Input | Const _ | Register _ -> assert false)
      t.order;
  t.eval_by_id <-
    Array.map
      (fun nd ->
        match nd.kind with Comb { eval; _ } -> eval | Input | Const _ | Register _ -> (fun _ -> 0))
      nodes;
  t.reg_ids <- reg_ids;
  t.reg_next <- Array.make (Array.length reg_ids) 0;
  t.reg_d <-
    Array.map
      (fun id ->
        match nodes.(id).kind with
        | Register { d; _ } -> d
        | Input | Const _ | Comb _ -> assert false)
      reg_ids;
  t.reg_en <-
    Array.map
      (fun id ->
        match nodes.(id).kind with
        | Register { en; _ } -> en
        | Input | Const _ | Comb _ -> assert false)
      reg_ids;
  t.input_ids <-
    Array.of_seq
      (Seq.filter_map
         (fun id ->
           match nodes.(id).kind with
           | Input -> Some id
           | Register _ | Const _ | Comb _ -> None)
         (Seq.init n Fun.id));
  let by_name = Hashtbl.create (2 * n) in
  Array.iteri (fun id nd -> if not (Hashtbl.mem by_name nd.nm) then Hashtbl.add by_name nd.nm id) nodes;
  t.by_name <- by_name;
  (* Compiled levelized evaluator: lower the netlist once, at
     elaboration, into the dense per-node arrays every event-driven or
     batched settle wants — positional dependency arrays, read-port
     memory ids, deduplicated combinational fanout, comb levels and
     per-memory reader lists.  [compiled_plan] exposes the result in
     the same shape (and with the same field semantics) as
     [Analysis.Graph.replay_plan], so campaigns no longer rebuild the
     dependency graph just to replay. *)
  t.deps_by_id <-
    Array.map
      (fun nd ->
        match nd.kind with Comb { deps; _ } -> deps | Input | Const _ | Register _ -> [||])
      nodes;
  t.max_deps <-
    Array.fold_left (fun acc deps -> max acc (Array.length deps)) 1 t.deps_by_id;
  t.rport_of <- Array.make n (-1);
  List.iter (fun (id, m) -> t.rport_of.(id) <- m) t.rports;
  let sinks = Array.make n [] in
  Array.iteri
    (fun id deps -> Array.iter (fun d -> sinks.(d) <- id :: sinks.(d)) deps)
    t.deps_by_id;
  let fanout = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) sinks in
  let levels = Array.make n 0 in
  let max_level = ref 0 in
  Array.iteri
    (fun id deps ->
      match nodes.(id).kind with
      | Comb _ ->
          let deepest = Array.fold_left (fun acc d -> max acc levels.(d)) 0 deps in
          levels.(id) <- deepest + 1;
          if levels.(id) > !max_level then max_level := levels.(id)
      | Input | Const _ | Register _ -> ())
    t.deps_by_id;
  let readers = Array.make (Array.length t.mem_arr) [] in
  List.iter (fun (id, m) -> readers.(m) <- id :: readers.(m)) t.rports;
  t.compiled <-
    Some
      { rp_fanout = fanout;
        rp_level = levels;
        rp_max_level = !max_level;
        rp_mem_readers =
          Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) readers };
  t.elaborated <- true

let check_elab t = if not t.elaborated then raise Not_elaborated

(* --- value-coverage recording --- *)

let record_nodes t cov =
  let n = Array.length t.values in
  for id = 0 to n - 1 do
    let v = Array.unsafe_get t.values id in
    Array.unsafe_set cov.cov_seen1 id (Array.unsafe_get cov.cov_seen1 id lor v);
    Array.unsafe_set cov.cov_seen0 id
      (Array.unsafe_get cov.cov_seen0 id lor (Array.unsafe_get t.masks id land lnot v))
  done

let record_cell cov m idx ~mask v =
  cov.cov_cell_seen1.(m).(idx) <- cov.cov_cell_seen1.(m).(idx) lor v;
  cov.cov_cell_seen0.(m).(idx) <- cov.cov_cell_seen0.(m).(idx) lor (mask land lnot v)

let coverage_start t =
  check_elab t;
  let n = Array.length t.values in
  let cov =
    { cov_seen0 = Array.make n 0;
      cov_seen1 = Array.make n 0;
      cov_cell_seen0 = Array.map (fun m -> Array.make m.words 0) t.mem_arr;
      cov_cell_seen1 = Array.map (fun m -> Array.make m.words 0) t.mem_arr }
  in
  t.recording <- Some cov

let coverage_stop t =
  check_elab t;
  match t.recording with
  | Some cov ->
      t.recording <- None;
      cov
  | None -> invalid_arg "Circuit.coverage_stop: not recording"

let never_activates cov site model =
  let seen0, seen1 =
    match site with
    | Node (s, bit) ->
        (Bitops.bit bit cov.cov_seen0.(s) <> 0, Bitops.bit bit cov.cov_seen1.(s) <> 0)
    | Cell (m, idx, bit) ->
        ( Bitops.bit bit cov.cov_cell_seen0.(m).(idx) <> 0,
          Bitops.bit bit cov.cov_cell_seen1.(m).(idx) <> 0 )
  in
  match model with
  | Stuck_at_0 -> not seen1  (* forcing 0 onto a bit that is always 0 *)
  | Stuck_at_1 -> not seen0
  | Open_line -> not (seen0 && seen1)  (* bit never changes: frozen = current *)
  | Bit_flip -> false  (* an inversion always perturbs the value *)

let reset t =
  check_elab t;
  if t.replay <> None then invalid_arg "Circuit.reset: replay armed";
  if t.batch <> None then invalid_arg "Circuit.reset: batch armed";
  Array.iteri
    (fun id nd ->
      t.values.(id) <-
        (match nd.kind with
        | Const v -> v
        | Register { init; _ } -> init land t.masks.(id)
        | Input | Comb _ -> 0))
    t.nodes;
  Array.iter (fun m -> Array.fill m.data 0 m.words 0) t.mem_arr;
  t.cyc <- 0;
  (match t.fault with Some f -> f.frozen <- None | None -> ());
  match t.recording with
  | Some cov ->
      record_nodes t cov;
      Array.iteri
        (fun m info ->
          let mask = (1 lsl info.m_width) - 1 in
          for idx = 0 to info.words - 1 do
            record_cell cov m idx ~mask 0
          done)
        t.mem_arr
  | None -> ()

(* --- replay bookkeeping helpers --- *)

let set_dirty r id d =
  if r.dirty.(id) <> d then begin
    r.dirty.(id) <- d;
    r.ndirty <- r.ndirty + (if d then 1 else -1)
  end

let mark_mem_diff t r m idx =
  let differs = t.mem_arr.(m).data.(idx) <> r.g_mem.(m).(idx) in
  let h = r.mdiff.(m) in
  if differs then begin
    if not (Hashtbl.mem h idx) then begin
      Hashtbl.add h idx ();
      r.nmdiff <- r.nmdiff + 1
    end
  end
  else if Hashtbl.mem h idx then begin
    Hashtbl.remove h idx;
    r.nmdiff <- r.nmdiff - 1
  end

let set_input t s v =
  check_elab t;
  if t.batch <> None then invalid_arg "Circuit.set_input: batch armed";
  (match t.nodes.(s).kind with
  | Input -> ()
  | Const _ | Comb _ | Register _ -> invalid_arg "Circuit.set_input: not an input");
  t.values.(s) <- v land t.masks.(s);
  match t.replay with
  | Some r when not r.exhausted -> set_dirty r s (t.values.(s) <> r.g_values.(s))
  | Some _ | None -> ()

(* --- fault machinery --- *)

let fault_active t f =
  t.cyc >= f.from_cycle
  && match f.duration with None -> true | Some d -> t.cyc < f.from_cycle + d

let transform_bit f ~bit v =
  match f.model with
  | Stuck_at_0 -> Bitops.clear_bit bit v
  | Stuck_at_1 -> Bitops.set_bit bit v
  | Bit_flip -> v lxor (1 lsl bit)
  | Open_line -> (
      match f.frozen with
      | Some frozen -> Bitops.update_bit bit (frozen <> 0) v
      | None ->
          (* Capture the floating value at activation. *)
          let b = Bitops.bit bit v in
          f.frozen <- Some b;
          v)

let apply_node_fault t id v =
  match t.fault with
  | Some ({ site = Node (s, bit); _ } as f) when s = id && fault_active t f ->
      transform_bit f ~bit v
  | Some _ | None -> v

(* The single mutation path for memory content: faulty-side replay
   accounting and the golden trace's write stream both hook here. *)
let commit_cell t m idx v =
  t.mem_arr.(m).data.(idx) <- v;
  (match t.replay with
  | Some r when not r.exhausted -> mark_mem_diff t r m idx
  | Some _ | None -> ());
  match t.tracing with
  | Some tb ->
      Vec.push tb.tb_wmem (pack_write m idx v);
      Vec.push tb.tb_wbucket (t.cyc + 1)
  | None -> ()

let write_cell t m idx v =
  let info = t.mem_arr.(m) in
  let v =
    match t.fault with
    | Some ({ site = Cell (fm, fidx, bit); _ } as f)
      when fm = m && fidx = idx && fault_active t f -> (
        match f.model with
        | Stuck_at_0 -> Bitops.clear_bit bit v
        | Stuck_at_1 -> Bitops.set_bit bit v
        | Bit_flip -> v
        (* an SEU corrupts content once, not the write path *)
        | Open_line ->
            (* The cell bit is disconnected: the write does not change it. *)
            Bitops.update_bit bit (Bitops.bit bit info.data.(idx) <> 0) v)
    | Some _ | None -> v
  in
  let mask = (1 lsl info.m_width) - 1 in
  let v = v land mask in
  commit_cell t m idx v;
  match t.recording with
  | Some cov -> record_cell cov m idx ~mask v
  | None -> ()

(* Force stuck-at cell faults into the stored content when they become
   active, so reads observe them even without an intervening write. *)
let refresh_cell_fault t =
  match t.fault with
  | Some ({ site = Cell (m, idx, bit); _ } as f) when fault_active t f -> (
      let info = t.mem_arr.(m) in
      if idx < info.words then
        match f.model with
        | Stuck_at_0 -> commit_cell t m idx (Bitops.clear_bit bit info.data.(idx))
        | Stuck_at_1 -> commit_cell t m idx (Bitops.set_bit bit info.data.(idx))
        | Bit_flip ->
            (* single-event upset: invert the cell content exactly once *)
            if f.frozen = None then begin
              commit_cell t m idx (info.data.(idx) lxor (1 lsl bit));
              f.frozen <- Some 1
            end
        | Open_line -> ())
  | Some _ | None -> ()

let inject t ?(from_cycle = 0) ?duration site model =
  if t.batch <> None then invalid_arg "Circuit.inject: batch armed (use batch_arm)";
  t.fault <- Some { site; model; from_cycle; duration; frozen = None }

let clear_fault t = t.fault <- None

let fault_model_name = function
  | Stuck_at_0 -> "stuck-at-0"
  | Stuck_at_1 -> "stuck-at-1"
  | Open_line -> "open-line"
  | Bit_flip -> "bit-flip"

(* --- golden trace recording --- *)

let trace_start t =
  check_elab t;
  if t.replay <> None then invalid_arg "Circuit.trace_start: replay armed";
  if t.batch <> None then invalid_arg "Circuit.trace_start: batch armed";
  t.tracing <-
    Some
      { tb_prev = Array.copy t.values;
        tb_delta = Vec.create 0;
        tb_dend = Vec.create 0;
        tb_upto = -1;
        tb_keys = [];
        tb_wmem = Vec.create 0;
        tb_wbucket = Vec.create 0;
        tb_evals = 0 }

let trace_record t tb =
  tb.tb_evals <- tb.tb_evals + Array.length t.order;
  let c = t.cyc in
  if c < tb.tb_upto then
    invalid_arg "Circuit.trace: cycle counter went backwards while recording";
  if c > tb.tb_upto then begin
    for _ = tb.tb_upto + 1 to c do
      Vec.push tb.tb_dend (Vec.length tb.tb_delta)
    done;
    tb.tb_upto <- c
  end;
  let values = t.values and prev = tb.tb_prev in
  for id = 0 to Array.length values - 1 do
    let v = Array.unsafe_get values id in
    if v <> Array.unsafe_get prev id then begin
      Vec.push tb.tb_delta (pack_delta id v);
      Array.unsafe_set prev id v
    end
  done;
  Vec.set tb.tb_dend c (Vec.length tb.tb_delta);
  if c mod key_every = 0 then
    match tb.tb_keys with
    | (kc, _) :: rest when kc = c -> tb.tb_keys <- (c, Array.copy values) :: rest
    | _ -> tb.tb_keys <- (c, Array.copy values) :: tb.tb_keys

let trace_stop t =
  check_elab t;
  match t.tracing with
  | None -> invalid_arg "Circuit.trace_stop: not recording"
  | Some tb ->
      t.tracing <- None;
      let len = tb.tb_upto + 1 in
      (* writes arrive in nondecreasing visibility order; cumulative
         counts per cycle make "all writes visible by c" one slice *)
      let nw = Vec.length tb.tb_wmem in
      let visible = ref 0 in
      while !visible < nw && Vec.get tb.tb_wbucket !visible < len do
        incr visible
      done;
      let wend = Array.make len 0 in
      let j = ref 0 in
      for c = 0 to len - 1 do
        while !j < !visible && Vec.get tb.tb_wbucket !j <= c do
          incr j
        done;
        wend.(c) <- !j
      done;
      { tr_len = len;
        tr_delta = Vec.to_array tb.tb_delta;
        tr_dend = Vec.to_array tb.tb_dend;
        tr_keys = Array.of_list (List.rev tb.tb_keys);
        tr_wmem = Array.sub (Vec.to_array tb.tb_wmem) 0 !visible;
        tr_wend = wend;
        tr_evals = tb.tb_evals }

let trace_cycles tr = tr.tr_len

let trace_evals tr = tr.tr_evals

(* --- simulation --- *)

let dense_settle t =
  refresh_cell_fault t;
  (* A fault on a source node (input/const/register) is applied to its
     stored value before combinational propagation. *)
  (match t.fault with
  | Some ({ site = Node (s, bit); _ } as f) when fault_active t f -> (
      match t.nodes.(s).kind with
      | Input | Const _ | Register _ -> t.values.(s) <- transform_bit f ~bit t.values.(s)
      | Comb _ -> ())
  | Some _ | None -> ());
  let order = t.order in
  let evals = t.evals in
  let values = t.values in
  let masks = t.masks in
  (* Single compare per node in the hot loop: the armed comb fault id,
     or -1 when no comb-node fault is active this cycle. *)
  let fnode =
    match t.fault with
    | Some ({ site = Node (s, _); _ } as f) when fault_active t f -> (
        match t.nodes.(s).kind with Comb _ -> s | Input | Const _ | Register _ -> -1)
    | Some _ | None -> -1
  in
  if fnode < 0 then
    for k = 0 to Array.length order - 1 do
      let id = Array.unsafe_get order k in
      Array.unsafe_set values id
        ((Array.unsafe_get evals k) values land Array.unsafe_get masks id)
    done
  else
    for k = 0 to Array.length order - 1 do
      let id = Array.unsafe_get order k in
      let v = (Array.unsafe_get evals k) values land Array.unsafe_get masks id in
      Array.unsafe_set values id (if id = fnode then apply_node_fault t id v else v)
    done;
  (match t.tracing with Some tb -> trace_record t tb | None -> ());
  match t.recording with Some cov -> record_nodes t cov | None -> ()

(* Differential settle: re-evaluate only the fanout cone of nodes that
   differ from the golden trace; every clean node already holds its
   golden value (installed when the shadow advanced at [clock]). *)
let replay_settle t r =
  r.dense <- r.dense + Array.length t.order;
  refresh_cell_fault t;
  (* source-node fault, exactly as in [dense_settle] — plus residual
     dirt: a faulted const keeps its last transformed value after the
     window closes, so it must keep seeding while it differs *)
  let fsrc = ref (-1) in
  let fnode = ref (-1) in
  (match t.fault with
  | Some ({ site = Node (s, bit); _ } as f) -> (
      match t.nodes.(s).kind with
      | Comb _ -> if fault_active t f then fnode := s
      | Input | Const _ | Register _ ->
          fsrc := s;
          if fault_active t f then t.values.(s) <- transform_bit f ~bit t.values.(s))
  | Some { site = Cell _; _ } | None -> ());
  if !fsrc >= 0 then set_dirty r !fsrc (t.values.(!fsrc) <> r.g_values.(!fsrc));
  (* seed the levelized worklist *)
  r.stamp <- r.stamp + 1;
  let stamp = r.stamp in
  for l = 0 to r.rp.rp_max_level do
    Vec.clear r.buckets.(l)
  done;
  let push_node id =
    if r.wl_stamp.(id) <> stamp then begin
      r.wl_stamp.(id) <- stamp;
      Vec.push r.buckets.(r.rp.rp_level.(id)) id
    end
  in
  let push_fanout id = Array.iter push_node r.rp.rp_fanout.(id) in
  for i = 0 to Vec.length r.dcomb - 1 do
    push_node (Vec.get r.dcomb i)
  done;
  for i = 0 to Vec.length r.dsrc - 1 do
    let id = Vec.get r.dsrc i in
    if r.dirty.(id) then push_fanout id
  done;
  Array.iter (fun id -> if r.dirty.(id) then push_fanout id) r.input_ids;
  if !fsrc >= 0 && r.dirty.(!fsrc) then push_fanout !fsrc;
  if !fnode >= 0 then push_node !fnode;
  Array.iteri
    (fun m h -> if Hashtbl.length h > 0 then Array.iter push_node r.rp.rp_mem_readers.(m))
    r.mdiff;
  (* evaluate the affected cone in level order: an evaluation can only
     push strictly deeper nodes, so each bucket is complete on arrival *)
  Vec.clear r.dnext;
  let values = t.values and g = r.g_values and masks = t.masks in
  let nev = ref 0 in
  for l = 1 to r.rp.rp_max_level do
    let b = r.buckets.(l) in
    for i = 0 to Vec.length b - 1 do
      let id = Vec.get b i in
      let v0 = t.eval_by_id.(id) values land masks.(id) in
      let v = if id = !fnode then apply_node_fault t id v0 else v0 in
      incr nev;
      values.(id) <- v;
      let d = v <> g.(id) in
      set_dirty r id d;
      if d then begin
        Vec.push r.dnext id;
        push_fanout id
      end
    done
  done;
  r.evals <- r.evals + !nev;
  let tmp = r.dcomb in
  r.dcomb <- r.dnext;
  r.dnext <- tmp;
  if r.ndirty > r.dirty_peak then r.dirty_peak <- r.ndirty;
  if r.ndirty > 0 || r.nmdiff > 0 then r.div_cycles <- r.div_cycles + 1

let settle t =
  check_elab t;
  if t.batch <> None then invalid_arg "Circuit.settle: batch armed (use batch_settle)";
  match t.replay with
  | Some r when not r.exhausted -> replay_settle t r
  | Some r ->
      (* past the end of the golden trace (watchdog territory): the
         dense sweep is exactly what a full engine would do, so both
         counters advance together *)
      r.evals <- r.evals + Array.length t.order;
      r.dense <- r.dense + Array.length t.order;
      dense_settle t
  | None -> dense_settle t

let clock_core t =
  let values = t.values in
  (* Phase 1: sample every register input and write port (data/enable
     ids were lowered into flat arrays at elaboration, so the per-cycle
     sweep has no per-node tag dispatch). *)
  Array.iteri
    (fun k id ->
      let en = t.reg_en.(k) in
      t.reg_next.(k) <-
        (if en >= 0 && values.(en) = 0 then values.(id)
         else values.(t.reg_d.(k)) land t.masks.(id)))
    t.reg_ids;
  Array.iteri
    (fun m info ->
      let wps = info.wp_arr in
      for i = 0 to Array.length wps - 1 do
        let { wp_we; wp_addr; wp_data } = wps.(i) in
        if values.(wp_we) <> 0 then begin
          let idx = values.(wp_addr) in
          if idx < info.words then write_cell t m idx values.(wp_data)
        end
      done)
    t.mem_arr;
  (* Phase 2: commit. *)
  Array.iteri (fun k id -> values.(id) <- t.reg_next.(k)) t.reg_ids;
  t.cyc <- t.cyc + 1

(* Advance the golden shadow to the new cycle: apply the value delta,
   re-derive register dirtiness against it, install golden values into
   every clean node, and commit the golden memory writes. *)
let advance_shadow t r =
  let c = t.cyc in
  if c >= r.tr.tr_len then r.exhausted <- true
  else begin
    let dend = r.tr.tr_dend and delta = r.tr.tr_delta in
    let d0 = if c = 0 then 0 else dend.(c - 1) in
    for i = d0 to dend.(c) - 1 do
      let p = Array.unsafe_get delta i in
      r.g_values.(delta_id p) <- delta_val p
    done;
    Vec.clear r.dsrc;
    Array.iter
      (fun id ->
        let d = t.values.(id) <> r.g_values.(id) in
        set_dirty r id d;
        if d then Vec.push r.dsrc id)
      t.reg_ids;
    (* non-dirty nodes take their golden values for free *)
    for i = d0 to dend.(c) - 1 do
      let p = Array.unsafe_get delta i in
      let id = delta_id p in
      if not r.dirty.(id) then t.values.(id) <- delta_val p
    done;
    let w0 = if c = 0 then 0 else r.tr.tr_wend.(c - 1) in
    for i = w0 to r.tr.tr_wend.(c) - 1 do
      let p = r.tr.tr_wmem.(i) in
      let m = write_mem p and idx = write_idx p in
      r.g_mem.(m).(idx) <- write_val p;
      mark_mem_diff t r m idx
    done
  end

let clock t =
  check_elab t;
  if t.batch <> None then invalid_arg "Circuit.clock: batch armed (use batch_clock)";
  clock_core t;
  match t.replay with
  | Some r when not r.exhausted -> advance_shadow t r
  | Some _ | None -> ()

let value t s =
  check_elab t;
  t.values.(s)

let cycle t = t.cyc

let mem_read t m idx =
  check_elab t;
  let info = t.mem_arr.(m) in
  if idx < info.words then info.data.(idx) else 0

let mem_write t m idx v =
  check_elab t;
  if t.batch <> None then invalid_arg "Circuit.mem_write: batch armed";
  let info = t.mem_arr.(m) in
  if idx < info.words then write_cell t m idx v

(* --- differential replay control --- *)

let replay_start t plan tr =
  check_elab t;
  if t.replay <> None then invalid_arg "Circuit.replay_start: already replaying";
  if t.tracing <> None then invalid_arg "Circuit.replay_start: recording a trace";
  if t.batch <> None then invalid_arg "Circuit.replay_start: batch armed";
  let n = Array.length t.values in
  if
    Array.length plan.rp_fanout <> n
    || Array.length plan.rp_level <> n
    || Array.length plan.rp_mem_readers <> Array.length t.mem_arr
  then invalid_arg "Circuit.replay_start: plan does not match this circuit";
  let c = t.cyc in
  let exhausted = c >= tr.tr_len in
  let g_values = Array.make n 0 in
  let g_mem = Array.map (fun m -> Array.make m.words 0) t.mem_arr in
  if not exhausted then begin
    (* position the node shadow: nearest keyframe at or before [c] *)
    let kc = ref (-1) and kv = ref [||] in
    Array.iter (fun (key_c, vals) -> if key_c <= c && key_c > !kc then begin kc := key_c; kv := vals end) tr.tr_keys;
    if !kc < 0 then invalid_arg "Circuit.replay_start: trace has no keyframe before this cycle";
    Array.blit !kv 0 g_values 0 n;
    for cc = !kc + 1 to c do
      let d0 = if cc = 0 then 0 else tr.tr_dend.(cc - 1) in
      for i = d0 to tr.tr_dend.(cc) - 1 do
        let p = tr.tr_delta.(i) in
        g_values.(delta_id p) <- delta_val p
      done
    done;
    (* memory shadow: every golden write visible by [c] *)
    for i = 0 to tr.tr_wend.(c) - 1 do
      let p = tr.tr_wmem.(i) in
      g_mem.(write_mem p).(write_idx p) <- write_val p
    done
  end;
  let max_level = plan.rp_max_level in
  let r =
    { rp = plan;
      tr;
      g_values;
      g_mem;
      dirty = Array.make n false;
      ndirty = 0;
      mdiff = Array.map (fun _ -> Hashtbl.create 8) t.mem_arr;
      nmdiff = 0;
      dcomb = Vec.create 0;
      dnext = Vec.create 0;
      dsrc = Vec.create 0;
      input_ids = t.input_ids;
      buckets = Array.init (max_level + 1) (fun _ -> Vec.create 0);
      wl_stamp = Array.make n 0;
      stamp = 0;
      exhausted;
      evals = 0;
      dense = 0;
      dirty_peak = 0;
      div_cycles = 0 }
  in
  if not exhausted then begin
    (* initial dirtiness — empty when resumed from a golden state *)
    Array.iteri
      (fun id v ->
        if v <> g_values.(id) then begin
          r.dirty.(id) <- true;
          r.ndirty <- r.ndirty + 1;
          match t.nodes.(id).kind with
          | Comb _ -> Vec.push r.dcomb id
          | Register _ -> Vec.push r.dsrc id
          | Input | Const _ -> ()
        end)
      t.values;
    Array.iteri
      (fun m info ->
        for idx = 0 to info.words - 1 do
          if info.data.(idx) <> g_mem.(m).(idx) then begin
            Hashtbl.add r.mdiff.(m) idx ();
            r.nmdiff <- r.nmdiff + 1
          end
        done)
      t.mem_arr
  end;
  t.replay <- Some r

let replay_stop t =
  match t.replay with
  | None -> invalid_arg "Circuit.replay_stop: not replaying"
  | Some r ->
      t.replay <- None;
      { rs_evals = r.evals;
        rs_dense_evals = r.dense;
        rs_dirty_peak = r.dirty_peak;
        rs_divergence_cycles = r.div_cycles }

let replay_active t = t.replay <> None

let replay_converged t =
  match t.replay with
  | Some r when not r.exhausted -> Some (r.ndirty = 0 && r.nmdiff = 0)
  | Some _ | None -> None

let compiled_plan t =
  check_elab t;
  match t.compiled with Some p -> p | None -> raise Not_elaborated

(* --- bit-parallel batch control --- *)

let lane_popcount m =
  let rec go acc m = if m = 0 then acc else go (acc + 1) (m land (m - 1)) in
  go 0 m

(* Call [f] on every set lane index of [lanes], lowest first.  Lane
   masks are up to 63 bits, so [Bitops] (32-bit) helpers do not apply. *)
let iter_lanes lanes f =
  let m = ref lanes in
  let l = ref 0 in
  while !m <> 0 do
    if !m land 0xFF = 0 then begin
      m := !m lsr 8;
      l := !l + 8
    end
    else begin
      if !m land 1 <> 0 then f !l;
      m := !m lsr 1;
      incr l
    end
  done

let get_batch t op =
  match t.batch with
  | Some bt -> bt
  | None -> invalid_arg ("Circuit." ^ op ^ ": no batch armed")

let lane_view t bt id l =
  if bt.bt_diff.(id) land (1 lsl l) <> 0 then bt.bt_lane.((id lsl lane_shift) lor l)
  else t.values.(id)

let set_lane t bt id l v =
  let bit = 1 lsl l in
  let d0 = bt.bt_diff.(id) in
  let old = if d0 land bit <> 0 then bt.bt_lane.((id lsl lane_shift) lor l) else t.values.(id) in
  if v = t.values.(id) then bt.bt_diff.(id) <- d0 land lnot bit
  else begin
    bt.bt_diff.(id) <- d0 lor bit;
    bt.bt_lane.((id lsl lane_shift) lor l) <- v;
    if d0 = 0 then begin
      (* first divergence on this node: wake the register slots that
         sample it, so the clock's phase 1 starts visiting them *)
      let ws = bt.bt_regof.(id) in
      for i = 0 to Array.length ws - 1 do
        let k = Array.unsafe_get ws i in
        if not bt.bt_regmem.(k) then begin
          bt.bt_regmem.(k) <- true;
          Vec.push bt.bt_regset k
        end
      done
    end
  end;
  let changed = old <> v in
  if changed then begin
    bt.bt_nstamp.(id) <- t.cyc;
    Vec.push bt.bt_stamped id
  end;
  changed

(* Lane [l]'s view of memory cell [(m, idx)]: its overlay entry while
   the content diverges from the golden (base) array, the base content
   otherwise. *)
let ov_get t bt m idx l =
  if Array.unsafe_get bt.bt_ovl.(m) idx land (1 lsl l) <> 0 then
    Array.unsafe_get bt.bt_ov.(m) ((idx lsl lane_shift) lor l)
  else Array.unsafe_get t.mem_arr.(m).data idx

let ov_drop_bit bt m idx l =
  bt.bt_mem_dirty.(m) <- bt.bt_mem_dirty.(m) lor (1 lsl l);
  bt.bt_ovl.(m).(idx) <- bt.bt_ovl.(m).(idx) land lnot (1 lsl l);
  let c = bt.bt_mem_cnt.(m).(l) - 1 in
  bt.bt_mem_cnt.(m).(l) <- c;
  if c = 0 then bt.bt_mem_lanes.(m) <- bt.bt_mem_lanes.(m) land lnot (1 lsl l)

let ov_set t bt m idx l v =
  let lm = bt.bt_ovl.(m).(idx) in
  if v = t.mem_arr.(m).data.(idx) then begin
    if lm land (1 lsl l) <> 0 then ov_drop_bit bt m idx l
  end
  else begin
    if lm land (1 lsl l) = 0 then begin
      bt.bt_ovl.(m).(idx) <- lm lor (1 lsl l);
      bt.bt_mem_cnt.(m).(l) <- bt.bt_mem_cnt.(m).(l) + 1;
      bt.bt_mem_lanes.(m) <- bt.bt_mem_lanes.(m) lor (1 lsl l);
      bt.bt_mem_dirty.(m) <- bt.bt_mem_dirty.(m) lor (1 lsl l)
    end
    else if bt.bt_ov.(m).((idx lsl lane_shift) lor l) <> v then
      bt.bt_mem_dirty.(m) <- bt.bt_mem_dirty.(m) lor (1 lsl l);
    bt.bt_ov.(m).((idx lsl lane_shift) lor l) <- v
  end

let batch_start t tr =
  check_elab t;
  if t.batch <> None then invalid_arg "Circuit.batch_start: already batching";
  if t.replay <> None then invalid_arg "Circuit.batch_start: replay armed";
  if t.tracing <> None then invalid_arg "Circuit.batch_start: recording a trace";
  if t.fault <> None then invalid_arg "Circuit.batch_start: scalar fault armed";
  if t.cyc <> 0 then invalid_arg "Circuit.batch_start: not at cycle 0";
  if tr.tr_len = 0 then invalid_arg "Circuit.batch_start: empty trace";
  let rp = match t.compiled with Some p -> p | None -> raise Not_elaborated in
  let n = Array.length t.values in
  let nmems = Array.length t.mem_arr in
  let nregs = Array.length t.reg_ids in
  let regof =
    let ls = Array.make n [] in
    let watch id k = if id >= 0 then ls.(id) <- k :: ls.(id) in
    for k = 0 to nregs - 1 do
      watch t.reg_ids.(k) k;
      watch t.reg_d.(k) k;
      watch t.reg_en.(k) k
    done;
    let empty = [||] in
    Array.map (function [] -> empty | l -> Array.of_list l) ls
  in
  t.batch <-
    Some
      { bt_tr = tr;
        bt_active = 0;
        bt_diff = Array.make n 0;
        bt_lane = Array.make (n lsl lane_shift) 0;
        bt_faults = Array.make max_lanes None;
        bt_fnode = Array.make max_lanes (-1);
        bt_fsrc = Array.make max_lanes false;
        bt_ov =
          Array.init nmems (fun m -> Array.make (t.mem_arr.(m).words lsl lane_shift) 0);
        bt_ovl = Array.init nmems (fun m -> Array.make t.mem_arr.(m).words 0);
        bt_mem_lanes = Array.make nmems 0;
        bt_mem_cnt = Array.init nmems (fun _ -> Array.make max_lanes 0);
        bt_cellf = Array.make nmems 0;
        bt_buckets = Array.init (rp.rp_max_level + 1) (fun _ -> Vec.create 0);
        bt_pend = Array.make n 0;
        bt_wl_stamp = Array.make n 0;
        bt_stamp = 0;
        bt_stamped = Vec.create 0;
        bt_mem_dirty = Array.make nmems 0;
        bt_views = Array.make max_lanes 0;
        bt_regnext = Array.make (max nregs 1 lsl lane_shift) 0;
        bt_regpend = Array.make (max nregs 1) 0;
        bt_ov_ids = Array.make t.max_deps 0;
        bt_ov_vals = Array.make t.max_deps 0;
        bt_sc_fire = Array.make max_lanes 0;
        bt_sc_idx = Array.make max_lanes 0;
        bt_sc_val = Array.make max_lanes 0;
        bt_nstamp = Array.make n 0;
        bt_fsite = Array.make n 0;
        bt_regof = regof;
        bt_regset = Vec.create 0;
        bt_regmem = Array.make (max nregs 1) false;
        bt_regactive = Vec.create 0;
        bt_exhausted = false;
        bt_tail = false;
        bt_evals = 0;
        bt_dense = 0 }

let batch_arm t lane ?(from_cycle = 0) ?duration site model =
  let bt = get_batch t "batch_arm" in
  if lane < 0 || lane >= max_lanes then invalid_arg "Circuit.batch_arm: bad lane";
  if bt.bt_active land (1 lsl lane) <> 0 then invalid_arg "Circuit.batch_arm: lane in use";
  bt.bt_faults.(lane) <- Some { site; model; from_cycle; duration; frozen = None };
  bt.bt_active <- bt.bt_active lor (1 lsl lane);
  match site with
  | Node (s, _) ->
      bt.bt_fnode.(lane) <- s;
      let src =
        match t.nodes.(s).kind with
        | Comb _ -> false
        | Input | Const _ | Register _ -> true
      in
      bt.bt_fsrc.(lane) <- src;
      if not src then bt.bt_fsite.(s) <- bt.bt_fsite.(s) lor (1 lsl lane)
  | Cell (m, _, _) ->
      bt.bt_fnode.(lane) <- -1;
      bt.bt_fsrc.(lane) <- false;
      bt.bt_cellf.(m) <- bt.bt_cellf.(m) lor (1 lsl lane)

let batch_retire t lane =
  let bt = get_batch t "batch_retire" in
  let bit = 1 lsl lane in
  if bt.bt_active land bit = 0 then invalid_arg "Circuit.batch_retire: lane not active";
  bt.bt_active <- bt.bt_active land lnot bit;
  bt.bt_faults.(lane) <- None;
  (if bt.bt_fnode.(lane) >= 0 && not bt.bt_fsrc.(lane) then
     let s = bt.bt_fnode.(lane) in
     bt.bt_fsite.(s) <- bt.bt_fsite.(s) land lnot bit);
  bt.bt_fnode.(lane) <- -1;
  bt.bt_fsrc.(lane) <- false;
  let diff = bt.bt_diff in
  for id = 0 to Array.length diff - 1 do
    diff.(id) <- diff.(id) land lnot bit
  done;
  Array.iteri
    (fun m _ ->
      bt.bt_cellf.(m) <- bt.bt_cellf.(m) land lnot bit;
      if bt.bt_mem_cnt.(m).(lane) > 0 then begin
        let ovl = bt.bt_ovl.(m) in
        for idx = 0 to Array.length ovl - 1 do
          if ovl.(idx) land bit <> 0 then ov_drop_bit bt m idx lane
        done
      end)
    t.mem_arr

let batch_set_input t s lane v =
  let bt = get_batch t "batch_set_input" in
  (match t.nodes.(s).kind with
  | Input -> ()
  | Const _ | Comb _ | Register _ -> invalid_arg "Circuit.batch_set_input: not an input");
  ignore (set_lane t bt s lane (v land t.masks.(s)))

let batch_value t s lane =
  let bt = get_batch t "batch_value" in
  lane_view t bt s lane

let batch_mem_read t m idx lane =
  let bt = get_batch t "batch_mem_read" in
  if idx < t.mem_arr.(m).words then ov_get t bt m idx lane else 0

let batch_settle t =
  check_elab t;
  let bt = get_batch t "batch_settle" in
  if bt.bt_tail then invalid_arg "Circuit.batch_settle: tail mode (use batch_tail_settle)";
  let rp = match t.compiled with Some p -> p | None -> assert false in
  let active = bt.bt_active in
  if active <> 0 then begin
    bt.bt_dense <- bt.bt_dense + (lane_popcount active * Array.length t.order);
    (* forced cell faults, per lane (mirrors [refresh_cell_fault]) *)
    iter_lanes active (fun l ->
        match bt.bt_faults.(l) with
        | Some ({ site = Cell (m, idx, bit); _ } as f) when fault_active t f ->
            if idx < t.mem_arr.(m).words then begin
              match f.model with
              | Stuck_at_0 -> ov_set t bt m idx l (Bitops.clear_bit bit (ov_get t bt m idx l))
              | Stuck_at_1 -> ov_set t bt m idx l (Bitops.set_bit bit (ov_get t bt m idx l))
              | Bit_flip ->
                  if f.frozen = None then begin
                    ov_set t bt m idx l (ov_get t bt m idx l lxor (1 lsl bit));
                    f.frozen <- Some 1
                  end
              | Open_line -> ()
            end
        | Some _ | None -> ());
    (* transform faulted sources before seeding: the resulting value
       changes (divergence, toggle or heal) land in [bt_stamped] and
       seed the sweep exactly like any other change *)
    iter_lanes active (fun l ->
        match bt.bt_faults.(l) with
        | Some ({ site = Node (s, bit); _ } as f) when bt.bt_fsrc.(l) ->
            if fault_active t f then
              ignore (set_lane t bt s l (transform_bit f ~bit (lane_view t bt s l)))
        | Some _ | None -> ());
    (* seed the levelized worklist with per-node lane masks *)
    bt.bt_stamp <- bt.bt_stamp + 1;
    let stamp = bt.bt_stamp in
    for l = 0 to rp.rp_max_level do
      Vec.clear bt.bt_buckets.(l)
    done;
    let push_node id lanes =
      if lanes <> 0 then begin
        if bt.bt_wl_stamp.(id) <> stamp then begin
          bt.bt_wl_stamp.(id) <- stamp;
          bt.bt_pend.(id) <- 0;
          Vec.push bt.bt_buckets.(rp.rp_level.(id)) id
        end;
        bt.bt_pend.(id) <- bt.bt_pend.(id) lor lanes
      end
    in
    let push_fanout id lanes =
      if lanes <> 0 then Array.iter (fun s -> push_node s lanes) rp.rp_fanout.(id)
    in
    let cyc = t.cyc in
    let nstamp = bt.bt_nstamp in
    (* Change-driven seeding: between two settles a lane's view of a
       node can only move through a node in [bt_stamped] (a golden
       trace delta, a clock-committed lane register, a lane input
       change) or through memory content, tracked per memory in
       [bt_mem_dirty].  A divergence cone none of whose members moved
       seeds nothing and costs nothing this cycle. *)
    let nseed = Vec.length bt.bt_stamped in
    for i = 0 to nseed - 1 do
      let id = Vec.get bt.bt_stamped i in
      if Array.unsafe_get nstamp id = cyc then push_fanout id active
    done;
    (* combinational fault sites evaluate every settle while armed —
       the injection window tracks the cycle counter, not the inputs,
       and a closed window heals its residual on the next evaluation *)
    iter_lanes active (fun l ->
        match bt.bt_faults.(l) with
        | Some { site = Node (s, _); _ } when not bt.bt_fsrc.(l) ->
            push_node s (1 lsl l)
        | Some _ | None -> ());
    Array.iteri
      (fun m _ ->
        let lanes = (bt.bt_mem_dirty.(m) lor bt.bt_cellf.(m)) land active in
        if lanes <> 0 then Array.iter (fun id -> push_node id lanes) rp.rp_mem_readers.(m))
      t.mem_arr;
    (* evaluate the affected (node, lane) pairs in level order: an
       evaluation can only push strictly deeper nodes *)
    let nev = ref 0 in
    let diff = bt.bt_diff in
    for lvl = 1 to rp.rp_max_level do
      let b = bt.bt_buckets.(lvl) in
      for i = 0 to Vec.length b - 1 do
        let id = Vec.get b i in
        let need =
          let rm = t.rport_of.(id) in
          if rm >= 0 then begin
            (* a read port re-derives when its address input moved
               (golden delta or lane change) or when some lane's view
               of the array content did; a port with a diverged but
               quiet address over quiet content is exact as stored *)
            let dirty = bt.bt_mem_dirty.(rm) lor bt.bt_cellf.(rm) in
            let addr = t.deps_by_id.(id).(0) in
            (if Array.unsafe_get nstamp addr = cyc then
               bt.bt_pend.(id)
               land (diff.(id) lor diff.(addr) lor bt.bt_mem_lanes.(rm) lor dirty)
             else bt.bt_pend.(id) land dirty)
            (* a faulted read port transforms on the cycle counter, not
               on its inputs: evaluate its lane unconditionally *)
            lor (bt.bt_pend.(id) land bt.bt_fsite.(id))
          end
          else begin
            (* change-driven pruning: with no dependency stamped this
               cycle the node would recompute last settle's values;
               the relevance mask restricts evaluation to lanes that
               diverge somewhere across the node's cut (clean lanes
               track the golden trace for free) *)
            let deps = t.deps_by_id.(id) in
            let fresh = ref false in
            let rel = ref (Array.unsafe_get diff id) in
            for j = 0 to Array.length deps - 1 do
              let d = Array.unsafe_get deps j in
              if Array.unsafe_get nstamp d = cyc then fresh := true;
              rel := !rel lor Array.unsafe_get diff d
            done;
            (if !fresh then bt.bt_pend.(id) land !rel else 0)
            lor (bt.bt_pend.(id) land bt.bt_fsite.(id))
          end
        in
        let need = need land active in
        if need <> 0 then begin
          let rm = t.rport_of.(id) in
          let values = t.values in
          let deps = t.deps_by_id.(id) in
          (* group the lanes of one node: deps diverged in any needed
             lane are saved once, written per lane, restored once *)
          let nov = ref 0 in
          if rm < 0 then
            for i = 0 to Array.length deps - 1 do
              let d = Array.unsafe_get deps i in
              if Array.unsafe_get diff d land need <> 0 then begin
                bt.bt_ov_ids.(!nov) <- d;
                bt.bt_ov_vals.(!nov) <- Array.unsafe_get values d;
                incr nov
              end
            done;
          let m = ref need in
          let l = ref 0 in
          while !m <> 0 do
            if !m land 0xFF = 0 then begin
              m := !m lsr 8;
              l := !l + 8
            end
            else begin
              (if !m land 1 <> 0 then begin
                 let l = !l in
                 let v0 =
                   if rm >= 0 then begin
                     let a = lane_view t bt (Array.unsafe_get deps 0) l in
                     (if a < t.mem_arr.(rm).words then ov_get t bt rm a l else 0)
                     land t.masks.(id)
                   end
                   else begin
                     let bitl = 1 lsl l in
                     for j = 0 to !nov - 1 do
                       let d = Array.unsafe_get bt.bt_ov_ids j in
                       Array.unsafe_set values d
                         (if Array.unsafe_get diff d land bitl <> 0 then
                            Array.unsafe_get bt.bt_lane ((d lsl lane_shift) lor l)
                          else Array.unsafe_get bt.bt_ov_vals j)
                     done;
                     t.eval_by_id.(id) values land t.masks.(id)
                   end
                 in
                 let v =
                   if bt.bt_fnode.(l) = id && not bt.bt_fsrc.(l) then
                     match bt.bt_faults.(l) with
                     | Some ({ site = Node (_, bit); _ } as f) when fault_active t f ->
                         transform_bit f ~bit v0
                     | Some _ | None -> v0
                   else v0
                 in
                 incr nev;
                 if set_lane t bt id l v then push_fanout id (1 lsl l)
               end);
              m := !m lsr 1;
              incr l
            end
          done;
          for j = !nov - 1 downto 0 do
            Array.unsafe_set values bt.bt_ov_ids.(j) bt.bt_ov_vals.(j)
          done
        end
      done
    done;
    bt.bt_evals <- bt.bt_evals + !nev;
    Array.iteri (fun m _ -> bt.bt_mem_dirty.(m) <- 0) t.mem_arr
  end

let batch_clock t =
  check_elab t;
  let bt = get_batch t "batch_clock" in
  if bt.bt_exhausted then invalid_arg "Circuit.batch_clock: trace exhausted";
  let active = bt.bt_active in
  let values = t.values in
  (* Phase 1: sample lane register inputs.  Lanes clean on d/en/q
     follow the golden commit for free via the trace delta.  Only the
     slots in [bt_regset] — woken by [set_lane] on a node's first
     divergence — can have work; slots whose divergence has fully
     healed are pruned on the way. *)
  Vec.clear bt.bt_regactive;
  let i = ref 0 in
  while !i < Vec.length bt.bt_regset do
    let k = Vec.get bt.bt_regset !i in
    let id = t.reg_ids.(k) in
    let d = t.reg_d.(k) and en = t.reg_en.(k) in
    let union =
      bt.bt_diff.(id) lor bt.bt_diff.(d) lor if en >= 0 then bt.bt_diff.(en) else 0
    in
    if union = 0 then begin
      bt.bt_regmem.(k) <- false;
      Vec.swap_pop bt.bt_regset !i
    end
    else begin
      let lanes = union land active in
      if lanes <> 0 then begin
        bt.bt_regpend.(k) <- lanes;
        Vec.push bt.bt_regactive k;
        iter_lanes lanes (fun l ->
            bt.bt_regnext.((k lsl lane_shift) lor l) <-
              (if en >= 0 && lane_view t bt en l = 0 then lane_view t bt id l
               else lane_view t bt d l land t.masks.(id)))
      end;
      incr i
    end
  done;
  (* Phase 2: commit memory writes — the golden action goes to the
     base arrays, diverged-lane actions go to the overlays, processed
     in write-port order exactly like [clock_core]. *)
  Array.iteri
    (fun m info ->
      let mask = (1 lsl info.m_width) - 1 in
      let wps = info.wp_arr in
      for p = 0 to Array.length wps - 1 do
        let { wp_we; wp_addr; wp_data } = wps.(p) in
        let special =
          (bt.bt_diff.(wp_we) lor bt.bt_diff.(wp_addr) lor bt.bt_diff.(wp_data)
          lor bt.bt_cellf.(m))
          land active
        in
        (* lane write actions; value transforms (cell faults on the
           write path) read the pre-write view, like [write_cell] *)
        let wrl = ref 0 in
        iter_lanes special (fun l ->
            bt.bt_sc_fire.(l) <- 0;
            if lane_view t bt wp_we l <> 0 then begin
              let idx = lane_view t bt wp_addr l in
              if idx < info.words then begin
                let v = lane_view t bt wp_data l in
                let v =
                  match bt.bt_faults.(l) with
                  | Some ({ site = Cell (fm, fidx, bit); _ } as f)
                    when fm = m && fidx = idx && fault_active t f -> (
                      match f.model with
                      | Stuck_at_0 -> Bitops.clear_bit bit v
                      | Stuck_at_1 -> Bitops.set_bit bit v
                      | Bit_flip -> v
                      | Open_line ->
                          Bitops.update_bit bit
                            (Bitops.bit bit (ov_get t bt m idx l) <> 0)
                            v)
                  | Some _ | None -> v
                in
                bt.bt_sc_fire.(l) <- 1;
                bt.bt_sc_idx.(l) <- idx;
                bt.bt_sc_val.(l) <- v land mask;
                wrl := !wrl lor (1 lsl l)
              end
            end);
        if values.(wp_we) <> 0 then begin
          let gidx = values.(wp_addr) in
          if gidx < info.words then begin
            let gv = values.(wp_data) land mask in
            (* diverged lanes not writing this cell keep their view
               across the base change; clean lanes wrote [gv] to it
               themselves, so any stale overlay they held here heals *)
            let preserve = ref 0 in
            let views = bt.bt_views in
            iter_lanes special (fun l ->
                if not (bt.bt_sc_fire.(l) = 1 && bt.bt_sc_idx.(l) = gidx) then begin
                  views.(l) <- ov_get t bt m gidx l;
                  preserve := !preserve lor (1 lsl l)
                end);
            (if info.data.(gidx) <> gv then begin
               (* base content moved: lanes that bypass the golden
                  read-port value — overlay holders and lanes reading
                  through a diverged address — must re-derive *)
               let d = ref bt.bt_mem_lanes.(m) in
               (match t.compiled with
               | Some rp ->
                   Array.iter
                     (fun rid -> d := !d lor bt.bt_diff.(t.deps_by_id.(rid).(0)))
                     rp.rp_mem_readers.(m)
               | None -> ());
               bt.bt_mem_dirty.(m) <- bt.bt_mem_dirty.(m) lor !d
             end);
            info.data.(gidx) <- gv;
            (let drop = bt.bt_ovl.(m).(gidx) land active land lnot special in
             if drop <> 0 then iter_lanes drop (fun l -> ov_drop_bit bt m gidx l));
            iter_lanes !preserve (fun l -> ov_set t bt m gidx l views.(l))
          end
        end;
        iter_lanes !wrl (fun l -> ov_set t bt m bt.bt_sc_idx.(l) l bt.bt_sc_val.(l))
      done)
    t.mem_arr;
  (* Phase 3: advance the golden machine wholesale from the trace *)
  t.cyc <- t.cyc + 1;
  let c = t.cyc in
  if c >= bt.bt_tr.tr_len then bt.bt_exhausted <- true
  else begin
    let dend = bt.bt_tr.tr_dend and delta = bt.bt_tr.tr_delta in
    let nstamp = bt.bt_nstamp in
    (* the seed set restarts here: stale entries from the settle that
       just ran describe changes its sweep already propagated *)
    Vec.clear bt.bt_stamped;
    for i = dend.(c - 1) to dend.(c) - 1 do
      let p = Array.unsafe_get delta i in
      let id = delta_id p in
      Array.unsafe_set values id (delta_val p);
      (* a delta is by definition an effective-value change for every
         lane that is clean on this node *)
      Array.unsafe_set nstamp id c;
      Vec.push bt.bt_stamped id
    done;
    (* Phase 4: commit sampled lane registers against the new golden *)
    for i = 0 to Vec.length bt.bt_regactive - 1 do
      let k = Vec.get bt.bt_regactive i in
      let id = t.reg_ids.(k) in
      iter_lanes bt.bt_regpend.(k) (fun l ->
          ignore (set_lane t bt id l bt.bt_regnext.((k lsl lane_shift) lor l)))
    done;
  end

let batch_stop t =
  match t.batch with
  | None -> invalid_arg "Circuit.batch_stop: no batch armed"
  | Some bt ->
      t.batch <- None;
      { bs_evals = bt.bt_evals; bs_dense_evals = bt.bt_dense }

let batch_armed t = t.batch <> None

let batch_active t = match t.batch with Some bt -> bt.bt_active | None -> 0

let batch_exhausted t = (get_batch t "batch_exhausted").bt_exhausted

(* --- state snapshots (campaign checkpointing) --- *)

type snapshot = {
  snap_values : int array;
  snap_mems : int array array;
  snap_cycle : int;
}

let snapshot t =
  check_elab t;
  { snap_values = Array.copy t.values;
    snap_mems = Array.map (fun m -> Array.copy m.data) t.mem_arr;
    snap_cycle = t.cyc }

let restore t snap =
  check_elab t;
  if t.replay <> None then invalid_arg "Circuit.restore: replay armed";
  if t.batch <> None then invalid_arg "Circuit.restore: batch armed";
  Array.blit snap.snap_values 0 t.values 0 (Array.length t.values);
  Array.iteri
    (fun m info -> Array.blit snap.snap_mems.(m) 0 info.data 0 info.words)
    t.mem_arr;
  t.cyc <- snap.snap_cycle

let int_arrays_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

(* Backward closure of the signals the environment reads: a node is in
   the cone if some observed root depends on it (combinationally or
   through registers), a memory if one of its read ports is — and then
   its write-port drivers are too.  State outside the cone (pure
   accounting such as a retired-instruction counter) can keep evolving
   without ever influencing an observable, so recurrence comparison
   ({!same_state}/{!content_hash} and the batch-lane analogues)
   restricts itself to the cone once one is set.  Exact-state equality
   ({!state_equal}), snapshots and restores stay full-state. *)
let set_observed_cone t roots =
  check_elab t;
  let n = Array.length t.nodes in
  let inc = Array.make n false in
  let incm = Array.make (Array.length t.mem_arr) false in
  let regk = Array.make n (-1) in
  Array.iteri (fun k id -> regk.(id) <- k) t.reg_ids;
  let stack = ref [] in
  let add id =
    if id >= 0 && not inc.(id) then begin
      inc.(id) <- true;
      stack := id :: !stack
    end
  in
  let add_mem m =
    if not incm.(m) then begin
      incm.(m) <- true;
      Array.iter
        (fun { wp_we; wp_addr; wp_data } ->
          add wp_we;
          add wp_addr;
          add wp_data)
        t.mem_arr.(m).wp_arr
    end
  in
  List.iter add roots;
  while !stack <> [] do
    let id = List.hd !stack in
    stack := List.tl !stack;
    (match t.nodes.(id).kind with
    | Comb _ ->
        Array.iter add t.deps_by_id.(id);
        let m = t.rport_of.(id) in
        if m >= 0 then add_mem m
    | Register _ ->
        let k = regk.(id) in
        add t.reg_d.(k);
        if t.reg_en.(k) >= 0 then add t.reg_en.(k)
    | Input | Const _ -> ())
  done;
  (* Comparisons restrict to the closure's sequential elements:
     between clock cycles every comb value is a pure function of
     registers, memories and primary inputs, and the hang detectors
     mix the inputs' driver state (bus countdowns, ready flags, write
     counts) into their fingerprints separately — so register+memory
     recurrence already implies recurrence of every node in the
     closure, at a fraction of the per-observation cost. *)
  Array.iteri
    (fun id nd ->
      match nd.kind with
      | Register _ -> ()
      | Input | Const _ | Comb _ -> inc.(id) <- false)
    t.nodes;
  t.cone <- inc;
  t.cone_mems <- incm

let enable_observed_cone t on =
  check_elab t;
  t.cone_on <- on

let coned t = t.cone_on && Array.length t.cone > 0

let same_state t snap =
  check_elab t;
  if not (coned t) then
    int_arrays_equal t.values snap.snap_values
    && Array.for_all Fun.id
         (Array.mapi (fun m info -> int_arrays_equal info.data snap.snap_mems.(m)) t.mem_arr)
  else
    (* the cone holds registers only, so walking [reg_ids] visits every
       compared node without scanning the full node table *)
    Array.for_all
      (fun id ->
        (not (Array.unsafe_get t.cone id))
        || Array.unsafe_get t.values id = Array.unsafe_get snap.snap_values id)
      t.reg_ids
    && Array.for_all Fun.id
         (Array.mapi
            (fun m info ->
              (not t.cone_mems.(m)) || int_arrays_equal info.data snap.snap_mems.(m))
            t.mem_arr)

let state_equal t snap =
  t.cyc = snap.snap_cycle
  && int_arrays_equal t.values snap.snap_values
  && Array.for_all Fun.id
       (Array.mapi (fun m info -> int_arrays_equal info.data snap.snap_mems.(m)) t.mem_arr)

let mix h x =
  let h = (h lxor x) * 0x100000001B3 in
  h lxor (h lsr 31)

let state_hash t =
  check_elab t;
  let h = ref (mix 0x27D4EB2F165667C5 t.cyc) in
  Array.iter (fun v -> h := mix !h v) t.values;
  Array.iter (fun info -> Array.iter (fun v -> h := mix !h v) info.data) t.mem_arr;
  !h

(* Like [state_hash] but ignoring the cycle counter: the fingerprint
   that pairs with [same_state] the way [state_hash] pairs with
   [state_equal].  Cycle-proof hang detection compares states at
   different cycles, so the counter must stay out of the mix. *)
let content_hash t =
  check_elab t;
  let h = ref 0x27D4EB2F165667C5 in
  if not (coned t) then begin
    Array.iter (fun v -> h := mix !h v) t.values;
    Array.iter (fun info -> Array.iter (fun v -> h := mix !h v) info.data) t.mem_arr
  end
  else
    (* Cone registers only — memories stay out of the fingerprint.  The
       hash is a candidate filter, never a proof: every match is
       confirmed by exact comparison ([same_state]) which does include
       the cone memories, so skipping them here can only produce extra
       rejected candidates (counted as collisions), never a wrong or a
       missed proof.  It cuts the per-observation cost from the full
       cache/regfile image (~800 words) to the register file of the
       cone (~a few hundred), which is what the watchdog continuation
       pays every stride. *)
    Array.iter
      (fun id ->
        if Array.unsafe_get t.cone id then h := mix !h (Array.unsafe_get t.values id))
      t.reg_ids;
  !h

(* --- dense tail batching and lane-state extraction --- *)

(* Apply the armed comb-node fault of lane [l] to a freshly evaluated
   value, exactly as [batch_settle] does. *)
let tail_apply_fault t bt id l v0 =
  if bt.bt_fnode.(l) = id && not bt.bt_fsrc.(l) then
    match bt.bt_faults.(l) with
    | Some ({ site = Node (_, bit); _ } as f) when fault_active t f ->
        transform_bit f ~bit v0
    | Some _ | None -> v0
  else v0

let batch_tail_active t = (get_batch t "batch_tail_active").bt_tail

let batch_tail_start t =
  check_elab t;
  let bt = get_batch t "batch_tail_start" in
  if not bt.bt_exhausted then invalid_arg "Circuit.batch_tail_start: trace not exhausted";
  if bt.bt_tail then invalid_arg "Circuit.batch_tail_start: already in tail mode";
  bt.bt_tail <- true;
  (* Complete the exhausting clock's register commit: its phase 4 was
     skipped (there is no golden delta to commit against), and past the
     trace clean lanes can no longer follow the golden machine for
     free, so every slot commits from the lane's settled pre-clock
     view.  Two passes, like the scalar clock: all slots sample before
     any commits (registers may feed each other directly). *)
  let active = bt.bt_active in
  if active <> 0 then begin
    let nregs = Array.length t.reg_ids in
    for k = 0 to nregs - 1 do
      let id = t.reg_ids.(k) in
      let d = t.reg_d.(k) and en = t.reg_en.(k) in
      iter_lanes active (fun l ->
          bt.bt_regnext.((k lsl lane_shift) lor l) <-
            (if en >= 0 && lane_view t bt en l = 0 then lane_view t bt id l
             else lane_view t bt d l land t.masks.(id)))
    done;
    for k = 0 to nregs - 1 do
      let id = t.reg_ids.(k) in
      iter_lanes active (fun l ->
          ignore (set_lane t bt id l bt.bt_regnext.((k lsl lane_shift) lor l)))
    done
  end

(* Forced cell faults per lane, shared by both settle variants
   (mirrors the scalar [refresh_cell_fault]). *)
let tail_refresh_cell_faults t bt active =
  iter_lanes active (fun l ->
      match bt.bt_faults.(l) with
      | Some ({ site = Cell (m, idx, bit); _ } as f) when fault_active t f ->
          if idx < t.mem_arr.(m).words then begin
            match f.model with
            | Stuck_at_0 -> ov_set t bt m idx l (Bitops.clear_bit bit (ov_get t bt m idx l))
            | Stuck_at_1 -> ov_set t bt m idx l (Bitops.set_bit bit (ov_get t bt m idx l))
            | Bit_flip ->
                if f.frozen = None then begin
                  ov_set t bt m idx l (ov_get t bt m idx l lxor (1 lsl bit));
                  f.frozen <- Some 1
                end
            | Open_line -> ()
          end
      | Some _ | None -> ())

let batch_tail_settle t =
  check_elab t;
  let bt = get_batch t "batch_tail_settle" in
  if not bt.bt_tail then invalid_arg "Circuit.batch_tail_settle: not in tail mode";
  let active = bt.bt_active in
  if active <> 0 then begin
    bt.bt_dense <- bt.bt_dense + (lane_popcount active * Array.length t.order);
    tail_refresh_cell_faults t bt active;
    (* faulted sources transform before the sweep, as in [batch_settle] *)
    iter_lanes active (fun l ->
        match bt.bt_faults.(l) with
        | Some ({ site = Node (s, bit); _ } as f) when bt.bt_fsrc.(l) ->
            if fault_active t f then
              ignore (set_lane t bt s l (transform_bit f ~bit (lane_view t bt s l)))
        | Some _ | None -> ());
    (* Dense sweep: every comb node evaluates for every live lane, in
       topological order — there is no golden trace to diff against, so
       nothing can be skipped.  The golden values stay frozen at the
       trace's last settled state and keep serving as the base the
       divergence masks compare to. *)
    let values = t.values in
    let order = t.order in
    let nev = ref 0 in
    for k = 0 to Array.length order - 1 do
      let id = Array.unsafe_get order k in
      let rm = t.rport_of.(id) in
      let deps = t.deps_by_id.(id) in
      if rm >= 0 then
        iter_lanes active (fun l ->
            let a = lane_view t bt (Array.unsafe_get deps 0) l in
            let v0 =
              (if a < t.mem_arr.(rm).words then ov_get t bt rm a l else 0)
              land t.masks.(id)
            in
            incr nev;
            ignore (set_lane t bt id l (tail_apply_fault t bt id l v0)))
      else begin
        (* deps diverged in any live lane are saved once, written per
           lane, restored once — same grouping as [batch_settle] *)
        let nov = ref 0 in
        for i = 0 to Array.length deps - 1 do
          let d = Array.unsafe_get deps i in
          if bt.bt_diff.(d) land active <> 0 then begin
            bt.bt_ov_ids.(!nov) <- d;
            bt.bt_ov_vals.(!nov) <- Array.unsafe_get values d;
            incr nov
          end
        done;
        iter_lanes active (fun l ->
            let bitl = 1 lsl l in
            for j = 0 to !nov - 1 do
              let d = Array.unsafe_get bt.bt_ov_ids j in
              Array.unsafe_set values d
                (if Array.unsafe_get bt.bt_diff d land bitl <> 0 then
                   Array.unsafe_get bt.bt_lane ((d lsl lane_shift) lor l)
                 else Array.unsafe_get bt.bt_ov_vals j)
            done;
            let v0 = t.eval_by_id.(id) values land t.masks.(id) in
            incr nev;
            ignore (set_lane t bt id l (tail_apply_fault t bt id l v0)));
        for j = !nov - 1 downto 0 do
          Array.unsafe_set values bt.bt_ov_ids.(j) bt.bt_ov_vals.(j)
        done
      end
    done;
    bt.bt_evals <- bt.bt_evals + !nev;
    Array.iteri (fun m _ -> bt.bt_mem_dirty.(m) <- 0) t.mem_arr
  end

let batch_tail_clock t =
  check_elab t;
  let bt = get_batch t "batch_tail_clock" in
  if not bt.bt_tail then invalid_arg "Circuit.batch_tail_clock: not in tail mode";
  let active = bt.bt_active in
  let nregs = Array.length t.reg_ids in
  (* Phase 1: sample every register slot for every live lane. *)
  for k = 0 to nregs - 1 do
    let id = t.reg_ids.(k) in
    let d = t.reg_d.(k) and en = t.reg_en.(k) in
    iter_lanes active (fun l ->
        bt.bt_regnext.((k lsl lane_shift) lor l) <-
          (if en >= 0 && lane_view t bt en l = 0 then lane_view t bt id l
           else lane_view t bt d l land t.masks.(id)))
  done;
  (* Phase 2: lane memory writes to the overlays, in write-port order;
     the golden base is frozen (the golden machine ended with its
     trace).  Cell faults on the write path read the pre-write view,
     like [write_cell]. *)
  Array.iteri
    (fun m info ->
      let mask = (1 lsl info.m_width) - 1 in
      let wps = info.wp_arr in
      for p = 0 to Array.length wps - 1 do
        let { wp_we; wp_addr; wp_data } = wps.(p) in
        iter_lanes active (fun l ->
            if lane_view t bt wp_we l <> 0 then begin
              let idx = lane_view t bt wp_addr l in
              if idx < info.words then begin
                let v = lane_view t bt wp_data l in
                let v =
                  match bt.bt_faults.(l) with
                  | Some ({ site = Cell (fm, fidx, bit); _ } as f)
                    when fm = m && fidx = idx && fault_active t f -> (
                      match f.model with
                      | Stuck_at_0 -> Bitops.clear_bit bit v
                      | Stuck_at_1 -> Bitops.set_bit bit v
                      | Bit_flip -> v
                      | Open_line ->
                          Bitops.update_bit bit
                            (Bitops.bit bit (ov_get t bt m idx l) <> 0)
                            v)
                  | Some _ | None -> v
                in
                ov_set t bt m idx l (v land mask)
              end
            end)
      done)
    t.mem_arr;
  (* Phase 3: advance the cycle counter (no golden delta exists). *)
  t.cyc <- t.cyc + 1;
  Vec.clear bt.bt_stamped;
  (* Phase 4: commit the sampled registers. *)
  for k = 0 to nregs - 1 do
    let id = t.reg_ids.(k) in
    iter_lanes active (fun l ->
        ignore (set_lane t bt id l bt.bt_regnext.((k lsl lane_shift) lor l)))
  done

let batch_lane_state t lane =
  check_elab t;
  let bt = get_batch t "batch_lane_state" in
  let n = Array.length t.values in
  { snap_values = Array.init n (fun id -> lane_view t bt id lane);
    snap_mems =
      Array.init (Array.length t.mem_arr) (fun m ->
          Array.init t.mem_arr.(m).words (fun idx -> ov_get t bt m idx lane));
    snap_cycle = t.cyc }

let batch_lane_same_state t lane snap =
  check_elab t;
  let bt = get_batch t "batch_lane_same_state" in
  let n = Array.length t.values in
  let coned = coned t in
  let nodes_full () =
    let rec go id =
      id >= n
      || lane_view t bt id lane = Array.unsafe_get snap.snap_values id && go (id + 1)
    in
    go 0
  in
  (if coned then
     Array.for_all
       (fun id ->
         (not (Array.unsafe_get t.cone id))
         || lane_view t bt id lane = Array.unsafe_get snap.snap_values id)
       t.reg_ids
   else nodes_full ())
  && Array.for_all Fun.id
       (Array.mapi
          (fun m info ->
            (coned && not t.cone_mems.(m))
            ||
            let sm = snap.snap_mems.(m) in
            let rec cells idx =
              idx >= info.words
              || (ov_get t bt m idx lane = Array.unsafe_get sm idx && cells (idx + 1))
            in
            cells 0)
          t.mem_arr)

let batch_lane_hash t lane =
  check_elab t;
  let bt = get_batch t "batch_lane_hash" in
  let n = Array.length t.values in
  let coned = coned t in
  let h = ref 0x27D4EB2F165667C5 in
  if coned then
    (* registers-only candidate filter, exactly as [content_hash]:
       collisions are resolved by [batch_lane_same_state], which does
       compare the cone memories *)
    Array.iter
      (fun id ->
        if Array.unsafe_get t.cone id then h := mix !h (lane_view t bt id lane))
      t.reg_ids
  else begin
    for id = 0 to n - 1 do
      h := mix !h (lane_view t bt id lane)
    done;
    Array.iteri
      (fun m info ->
        for idx = 0 to info.words - 1 do
          h := mix !h (ov_get t bt m idx lane)
        done)
      t.mem_arr
  end;
  !h

(* --- lane -> scalar transplant --- *)

type transplant = { tp_snap : snapshot; tp_fault : fault option }

let copy_fault f = { f with frozen = f.frozen }

let batch_eject t lane =
  let bt = get_batch t "batch_eject" in
  if bt.bt_active land (1 lsl lane) = 0 then
    invalid_arg "Circuit.batch_eject: lane not active";
  { tp_snap = batch_lane_state t lane;
    tp_fault = Option.map copy_fault bt.bt_faults.(lane) }

let transplant t tp =
  restore t tp.tp_snap;
  (* the fault is copied again so a transplant value stays reusable;
     the open-line frozen bit (and the SEU applied marker) carry over —
     re-capturing them on the scalar engine would fork the trajectory *)
  t.fault <- Option.map copy_fault tp.tp_fault

let transplant_cycle tp = tp.tp_snap.snap_cycle

(* --- introspection --- *)

let all_nodes t = if t.elaborated then t.nodes else Vec.to_array t.building

let signals t =
  Array.to_list (Array.mapi (fun id nd -> (nd.nm, id, nd.width)) (all_nodes t))

let memories t =
  let arr = if t.elaborated then t.mem_arr else Vec.to_array t.mems in
  Array.to_list (Array.mapi (fun m info -> (info.m_name, m, info.words, info.m_width)) arr)

let signal_width t s = (all_nodes t).(s).width

let signal_name t s = (all_nodes t).(s).nm

let find_signal t nm =
  if t.elaborated then Hashtbl.find_opt t.by_name nm
  else
    (* pre-elaboration fallback: first match in creation order *)
    let rec go id =
      if id >= t.node_cnt then None
      else if (Vec.get t.building id).nm = nm then Some id
      else go (id + 1)
    in
    go 0

let node_count t = if t.elaborated then Array.length t.nodes else t.node_cnt

let injection_bits t ~prefix =
  let sites = ref [] in
  Array.iteri
    (fun id nd ->
      if String.starts_with ~prefix nd.nm then
        for bit = nd.width - 1 downto 0 do
          sites := (Node (id, bit), Printf.sprintf "%s[%d]" nd.nm bit) :: !sites
        done)
    (all_nodes t);
  !sites

(* Structural views *)

type node_view =
  | V_input
  | V_const of int
  | V_comb of signal array
  | V_register of { d : signal; en : signal option; init : int }

let node_view t s =
  check_elab t;
  match t.nodes.(s).kind with
  | Input -> V_input
  | Const v -> V_const v
  | Comb { deps; _ } -> V_comb (Array.copy deps)
  | Register { d; en; init } ->
      V_register { d; en = (if en >= 0 then Some en else None); init }

let read_port_memory t s =
  check_elab t;
  List.assoc_opt s t.rports

let write_ports t m =
  check_elab t;
  Array.to_list
    (Array.map
       (fun { wp_we; wp_addr; wp_data } -> (wp_we, wp_addr, wp_data))
       t.mem_arr.(m).wp_arr)

let probe_comb t s args =
  check_elab t;
  if List.mem_assoc s t.rports then invalid_arg "Circuit.probe_comb: read port";
  match t.nodes.(s).kind with
  | Comb { eval; _ } -> eval args
  | Input | Const _ | Register _ -> invalid_arg "Circuit.probe_comb: not combinational"
