type signal = int

type memory = int

exception Combinational_cycle of string
exception Not_elaborated
exception Already_elaborated

type fault_model = Stuck_at_0 | Stuck_at_1 | Open_line | Bit_flip

type fault_site = Node of signal * int | Cell of memory * int * int

type reg_info = { init : int; mutable d : int; mutable en : int }

type kind =
  | Input
  | Const of int
  | Comb of { deps : int array; eval : int array -> int }
  | Register of reg_info

type node = { nm : string; width : int; kind : kind }

type write_port_info = { wp_we : int; wp_addr : int; wp_data : int }

type mem_info = {
  m_name : string;
  words : int;
  m_width : int;
  data : int array;
  mutable write_ports : write_port_info list;
}

type fault = {
  site : fault_site;
  model : fault_model;
  from_cycle : int;
  duration : int option;  (** [None] = permanent *)
  mutable frozen : int option;
      (** open-line: captured bit value; bit-flip cells: applied marker *)
}

(* Value coverage of one run: for every node (and memory cell) a mask
   of bits observed at 0 and a mask of bits observed at 1, sampled at
   every settled state (nodes) / content change (cells).  A stuck-at
   fault on a bit whose "wrong" value was never observed is provably
   inactive for the whole run — the campaign prefilter builds on this. *)
type coverage = {
  cov_seen0 : int array;  (* per node *)
  cov_seen1 : int array;
  cov_cell_seen0 : int array array;  (* per memory, per word *)
  cov_cell_seen1 : int array array;
}

type t = {
  c_name : string;
  mutable building : node list;  (* reversed during construction *)
  mutable scopes : string list;
  mutable mems : mem_info list;  (* reversed *)
  mutable rports : (int * int) list;  (* read-port node id -> memory id *)
  mutable node_cnt : int;
  mutable mem_cnt : int;
  (* elaboration products *)
  mutable nodes : node array;
  mutable mem_arr : mem_info array;
  mutable values : int array;
  mutable masks : int array;
  mutable order : int array;  (* comb schedule *)
  mutable evals : (int array -> int) array;  (* parallel to order *)
  mutable reg_ids : int array;
  mutable reg_next : int array;
  mutable elaborated : bool;
  mutable cyc : int;
  mutable fault : fault option;
  mutable recording : coverage option;
}

let create c_name =
  { c_name; building = []; scopes = []; mems = []; rports = []; node_cnt = 0; mem_cnt = 0;
    nodes = [||]; mem_arr = [||]; values = [||]; masks = [||]; order = [||]; evals = [||];
    reg_ids = [||]; reg_next = [||]; elaborated = false; cyc = 0; fault = None;
    recording = None }

let name t = t.c_name

let scoped t scope f =
  t.scopes <- scope :: t.scopes;
  let finish () = t.scopes <- List.tl t.scopes in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let full_name t nm = String.concat "." (List.rev (nm :: t.scopes))

let add_node t nm width kind =
  if t.elaborated then raise Already_elaborated;
  if width < 1 || width > 32 then invalid_arg "Circuit: width must be 1..32";
  let id = t.node_cnt in
  t.building <- { nm = full_name t nm; width; kind } :: t.building;
  t.node_cnt <- t.node_cnt + 1;
  id

let input t nm width = add_node t nm width Input

let const t nm width v = add_node t nm width (Const (v land ((1 lsl width) - 1)))

(* [combn] presents dependency values positionally; the scratch buffer
   is reused across evaluations to keep the hot loop allocation-free. *)
let combn t nm width deps f =
  let n = Array.length deps in
  let scratch = Array.make (max n 1) 0 in
  let eval values =
    for i = 0 to n - 1 do
      Array.unsafe_set scratch i (Array.unsafe_get values (Array.unsafe_get deps i))
    done;
    f scratch
  in
  add_node t nm width (Comb { deps; eval })

let comb1 t nm width a f =
  add_node t nm width (Comb { deps = [| a |]; eval = (fun vs -> f vs.(a)) })

let comb2 t nm width a b f =
  add_node t nm width (Comb { deps = [| a; b |]; eval = (fun vs -> f vs.(a) vs.(b)) })

let comb3 t nm width a b c f =
  add_node t nm width
    (Comb { deps = [| a; b; c |]; eval = (fun vs -> f vs.(a) vs.(b) vs.(c)) })

let comb4 t nm width a b c d f =
  add_node t nm width
    (Comb { deps = [| a; b; c; d |]; eval = (fun vs -> f vs.(a) vs.(b) vs.(c) vs.(d)) })

let reg t nm ~width ?(init = 0) () =
  add_node t nm width (Register { init; d = -1; en = -1 })

let connect t r ?en ~d () =
  let node = List.nth t.building (t.node_cnt - 1 - r) in
  match node.kind with
  | Register info ->
      if info.d >= 0 then invalid_arg ("Circuit.connect: already connected: " ^ node.nm);
      info.d <- d;
      (match en with Some e -> info.en <- e | None -> ())
  | Input | Const _ | Comb _ ->
      invalid_arg ("Circuit.connect: not a register: " ^ node.nm)

let memory t nm ~words ~width =
  if t.elaborated then raise Already_elaborated;
  let id = t.mem_cnt in
  t.mems <-
    { m_name = full_name t nm; words; m_width = width; data = Array.make words 0;
      write_ports = [] }
    :: t.mems;
  t.mem_cnt <- t.mem_cnt + 1;
  id

let mem_info t m = if t.elaborated then t.mem_arr.(m) else List.nth t.mems (t.mem_cnt - 1 - m)

let read_port t nm m addr =
  let info = mem_info t m in
  let data = info.data in
  let words = info.words in
  let id =
    combn t nm info.m_width [| addr |] (fun vs ->
        let a = vs.(0) in
        if a < words then data.(a) else 0)
  in
  t.rports <- (id, m) :: t.rports;
  id

let write_port t m ~we ~addr ~data =
  let info = mem_info t m in
  info.write_ports <- { wp_we = we; wp_addr = addr; wp_data = data } :: info.write_ports

(* --- elaboration --- *)

let elaborate t =
  if t.elaborated then raise Already_elaborated;
  let nodes = Array.of_list (List.rev t.building) in
  let n = Array.length nodes in
  let masks = Array.map (fun nd -> (1 lsl nd.width) - 1) nodes in
  (* check registers are connected *)
  Array.iter
    (fun nd ->
      match nd.kind with
      | Register info when info.d < 0 ->
          invalid_arg ("Circuit.elaborate: unconnected register: " ^ nd.nm)
      | Register _ | Input | Const _ | Comb _ -> ())
    nodes;
  (* topological order over combinational dependencies *)
  let color = Array.make n 0 in
  (* 0 unvisited, 1 in progress, 2 done *)
  let order = ref [] in
  let rec visit id =
    match color.(id) with
    | 2 -> ()
    | 1 -> raise (Combinational_cycle nodes.(id).nm)
    | _ -> (
        color.(id) <- 1;
        (match nodes.(id).kind with
        | Comb { deps; _ } ->
            Array.iter visit deps;
            order := id :: !order
        | Input | Const _ | Register _ -> ());
        color.(id) <- 2)
  in
  for id = 0 to n - 1 do
    visit id
  done;
  let reg_ids =
    Array.of_seq
      (Seq.filter_map
         (fun id ->
           match nodes.(id).kind with
           | Register _ -> Some id
           | Input | Const _ | Comb _ -> None)
         (Seq.init n Fun.id))
  in
  t.nodes <- nodes;
  t.mem_arr <- Array.of_list (List.rev t.mems);
  t.values <- Array.make n 0;
  t.masks <- masks;
  t.order <- Array.of_list (List.rev !order);
  t.evals <-
    Array.map
      (fun id ->
        match nodes.(id).kind with
        | Comb { eval; _ } -> eval
        | Input | Const _ | Register _ -> assert false)
      t.order;
  t.reg_ids <- reg_ids;
  t.reg_next <- Array.make (Array.length reg_ids) 0;
  t.elaborated <- true

let check_elab t = if not t.elaborated then raise Not_elaborated

(* --- value-coverage recording --- *)

let record_nodes t cov =
  let n = Array.length t.values in
  for id = 0 to n - 1 do
    let v = Array.unsafe_get t.values id in
    Array.unsafe_set cov.cov_seen1 id (Array.unsafe_get cov.cov_seen1 id lor v);
    Array.unsafe_set cov.cov_seen0 id
      (Array.unsafe_get cov.cov_seen0 id lor (Array.unsafe_get t.masks id land lnot v))
  done

let record_cell cov m idx ~mask v =
  cov.cov_cell_seen1.(m).(idx) <- cov.cov_cell_seen1.(m).(idx) lor v;
  cov.cov_cell_seen0.(m).(idx) <- cov.cov_cell_seen0.(m).(idx) lor (mask land lnot v)

let coverage_start t =
  check_elab t;
  let n = Array.length t.values in
  let cov =
    { cov_seen0 = Array.make n 0;
      cov_seen1 = Array.make n 0;
      cov_cell_seen0 = Array.map (fun m -> Array.make m.words 0) t.mem_arr;
      cov_cell_seen1 = Array.map (fun m -> Array.make m.words 0) t.mem_arr }
  in
  t.recording <- Some cov

let coverage_stop t =
  check_elab t;
  match t.recording with
  | Some cov ->
      t.recording <- None;
      cov
  | None -> invalid_arg "Circuit.coverage_stop: not recording"

let never_activates cov site model =
  let seen0, seen1 =
    match site with
    | Node (s, bit) ->
        (Bitops.bit bit cov.cov_seen0.(s) <> 0, Bitops.bit bit cov.cov_seen1.(s) <> 0)
    | Cell (m, idx, bit) ->
        ( Bitops.bit bit cov.cov_cell_seen0.(m).(idx) <> 0,
          Bitops.bit bit cov.cov_cell_seen1.(m).(idx) <> 0 )
  in
  match model with
  | Stuck_at_0 -> not seen1  (* forcing 0 onto a bit that is always 0 *)
  | Stuck_at_1 -> not seen0
  | Open_line -> not (seen0 && seen1)  (* bit never changes: frozen = current *)
  | Bit_flip -> false  (* an inversion always perturbs the value *)

let reset t =
  check_elab t;
  Array.iteri
    (fun id nd ->
      t.values.(id) <-
        (match nd.kind with
        | Const v -> v
        | Register { init; _ } -> init land t.masks.(id)
        | Input | Comb _ -> 0))
    t.nodes;
  Array.iter (fun m -> Array.fill m.data 0 m.words 0) t.mem_arr;
  t.cyc <- 0;
  (match t.fault with Some f -> f.frozen <- None | None -> ());
  match t.recording with
  | Some cov ->
      record_nodes t cov;
      Array.iteri
        (fun m info ->
          let mask = (1 lsl info.m_width) - 1 in
          for idx = 0 to info.words - 1 do
            record_cell cov m idx ~mask 0
          done)
        t.mem_arr
  | None -> ()

let set_input t s v =
  check_elab t;
  (match t.nodes.(s).kind with
  | Input -> ()
  | Const _ | Comb _ | Register _ -> invalid_arg "Circuit.set_input: not an input");
  t.values.(s) <- v land t.masks.(s)

(* --- fault machinery --- *)

let fault_active t f =
  t.cyc >= f.from_cycle
  && match f.duration with None -> true | Some d -> t.cyc < f.from_cycle + d

let transform_bit f ~bit v =
  match f.model with
  | Stuck_at_0 -> Bitops.clear_bit bit v
  | Stuck_at_1 -> Bitops.set_bit bit v
  | Bit_flip -> v lxor (1 lsl bit)
  | Open_line -> (
      match f.frozen with
      | Some frozen -> Bitops.update_bit bit (frozen <> 0) v
      | None ->
          (* Capture the floating value at activation. *)
          let b = Bitops.bit bit v in
          f.frozen <- Some b;
          v)

let apply_node_fault t id v =
  match t.fault with
  | Some ({ site = Node (s, bit); _ } as f) when s = id && fault_active t f ->
      transform_bit f ~bit v
  | Some _ | None -> v

let write_cell t m idx v =
  let info = t.mem_arr.(m) in
  let v =
    match t.fault with
    | Some ({ site = Cell (fm, fidx, bit); _ } as f)
      when fm = m && fidx = idx && fault_active t f -> (
        match f.model with
        | Stuck_at_0 -> Bitops.clear_bit bit v
        | Stuck_at_1 -> Bitops.set_bit bit v
        | Bit_flip -> v
        (* an SEU corrupts content once, not the write path *)
        | Open_line ->
            (* The cell bit is disconnected: the write does not change it. *)
            Bitops.update_bit bit (Bitops.bit bit info.data.(idx) <> 0) v)
    | Some _ | None -> v
  in
  let mask = (1 lsl info.m_width) - 1 in
  let v = v land mask in
  info.data.(idx) <- v;
  match t.recording with
  | Some cov -> record_cell cov m idx ~mask v
  | None -> ()

(* Force stuck-at cell faults into the stored content when they become
   active, so reads observe them even without an intervening write. *)
let refresh_cell_fault t =
  match t.fault with
  | Some ({ site = Cell (m, idx, bit); _ } as f) when fault_active t f -> (
      let info = t.mem_arr.(m) in
      if idx < info.words then
        match f.model with
        | Stuck_at_0 -> info.data.(idx) <- Bitops.clear_bit bit info.data.(idx)
        | Stuck_at_1 -> info.data.(idx) <- Bitops.set_bit bit info.data.(idx)
        | Bit_flip ->
            (* single-event upset: invert the cell content exactly once *)
            if f.frozen = None then begin
              info.data.(idx) <- info.data.(idx) lxor (1 lsl bit);
              f.frozen <- Some 1
            end
        | Open_line -> ())
  | Some _ | None -> ()

let inject t ?(from_cycle = 0) ?duration site model =
  t.fault <- Some { site; model; from_cycle; duration; frozen = None }

let clear_fault t = t.fault <- None

let fault_model_name = function
  | Stuck_at_0 -> "stuck-at-0"
  | Stuck_at_1 -> "stuck-at-1"
  | Open_line -> "open-line"
  | Bit_flip -> "bit-flip"

(* --- simulation --- *)

let settle t =
  check_elab t;
  refresh_cell_fault t;
  (* A fault on a source node (input/const/register) is applied to its
     stored value before combinational propagation. *)
  (match t.fault with
  | Some ({ site = Node (s, bit); _ } as f) when fault_active t f -> (
      match t.nodes.(s).kind with
      | Input | Const _ | Register _ -> t.values.(s) <- transform_bit f ~bit t.values.(s)
      | Comb _ -> ())
  | Some _ | None -> ());
  let order = t.order in
  let evals = t.evals in
  let values = t.values in
  let masks = t.masks in
  (* Single compare per node in the hot loop: the armed comb fault id,
     or -1 when no comb-node fault is active this cycle. *)
  let fnode =
    match t.fault with
    | Some ({ site = Node (s, _); _ } as f) when fault_active t f -> (
        match t.nodes.(s).kind with Comb _ -> s | Input | Const _ | Register _ -> -1)
    | Some _ | None -> -1
  in
  if fnode < 0 then
    for k = 0 to Array.length order - 1 do
      let id = Array.unsafe_get order k in
      Array.unsafe_set values id
        ((Array.unsafe_get evals k) values land Array.unsafe_get masks id)
    done
  else
    for k = 0 to Array.length order - 1 do
      let id = Array.unsafe_get order k in
      let v = (Array.unsafe_get evals k) values land Array.unsafe_get masks id in
      Array.unsafe_set values id (if id = fnode then apply_node_fault t id v else v)
    done;
  match t.recording with Some cov -> record_nodes t cov | None -> ()

let clock t =
  check_elab t;
  let values = t.values in
  (* Phase 1: sample every register input and write port. *)
  Array.iteri
    (fun k id ->
      match t.nodes.(id).kind with
      | Register { d; en; _ } ->
          t.reg_next.(k) <-
            (if en >= 0 && values.(en) = 0 then values.(id)
             else values.(d) land t.masks.(id))
      | Input | Const _ | Comb _ -> assert false)
    t.reg_ids;
  Array.iteri
    (fun m info ->
      List.iter
        (fun { wp_we; wp_addr; wp_data } ->
          if values.(wp_we) <> 0 then begin
            let idx = values.(wp_addr) in
            if idx < info.words then write_cell t m idx values.(wp_data)
          end)
        (List.rev info.write_ports))
    t.mem_arr;
  (* Phase 2: commit. *)
  Array.iteri (fun k id -> values.(id) <- t.reg_next.(k)) t.reg_ids;
  t.cyc <- t.cyc + 1

let value t s =
  check_elab t;
  t.values.(s)

let cycle t = t.cyc

let mem_read t m idx =
  check_elab t;
  let info = t.mem_arr.(m) in
  if idx < info.words then info.data.(idx) else 0

let mem_write t m idx v =
  check_elab t;
  let info = t.mem_arr.(m) in
  if idx < info.words then write_cell t m idx v

(* --- state snapshots (campaign checkpointing) --- *)

type snapshot = {
  snap_values : int array;
  snap_mems : int array array;
  snap_cycle : int;
}

let snapshot t =
  check_elab t;
  { snap_values = Array.copy t.values;
    snap_mems = Array.map (fun m -> Array.copy m.data) t.mem_arr;
    snap_cycle = t.cyc }

let restore t snap =
  check_elab t;
  Array.blit snap.snap_values 0 t.values 0 (Array.length t.values);
  Array.iteri
    (fun m info -> Array.blit snap.snap_mems.(m) 0 info.data 0 info.words)
    t.mem_arr;
  t.cyc <- snap.snap_cycle

let int_arrays_equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

let state_equal t snap =
  check_elab t;
  t.cyc = snap.snap_cycle
  && int_arrays_equal t.values snap.snap_values
  && Array.for_all Fun.id
       (Array.mapi (fun m info -> int_arrays_equal info.data snap.snap_mems.(m)) t.mem_arr)

let mix h x =
  let h = (h lxor x) * 0x100000001B3 in
  h lxor (h lsr 31)

let state_hash t =
  check_elab t;
  let h = ref (mix 0x27D4EB2F165667C5 t.cyc) in
  Array.iter (fun v -> h := mix !h v) t.values;
  Array.iter (fun info -> Array.iter (fun v -> h := mix !h v) info.data) t.mem_arr;
  !h

(* --- introspection --- *)

let all_nodes t = if t.elaborated then t.nodes else Array.of_list (List.rev t.building)

let signals t =
  Array.to_list (Array.mapi (fun id nd -> (nd.nm, id, nd.width)) (all_nodes t))

let memories t =
  let arr = if t.elaborated then t.mem_arr else Array.of_list (List.rev t.mems) in
  Array.to_list (Array.mapi (fun m info -> (info.m_name, m, info.words, info.m_width)) arr)

let signal_width t s = (all_nodes t).(s).width

let signal_name t s = (all_nodes t).(s).nm

let find_signal t nm =
  let nodes = all_nodes t in
  let rec go id =
    if id >= Array.length nodes then None
    else if nodes.(id).nm = nm then Some id
    else go (id + 1)
  in
  go 0

let node_count t = Array.length (all_nodes t)

let injection_bits t ~prefix =
  let sites = ref [] in
  Array.iteri
    (fun id nd ->
      if String.starts_with ~prefix nd.nm then
        for bit = nd.width - 1 downto 0 do
          sites := (Node (id, bit), Printf.sprintf "%s[%d]" nd.nm bit) :: !sites
        done)
    (all_nodes t);
  !sites

(* Structural views *)

type node_view =
  | V_input
  | V_const of int
  | V_comb of signal array
  | V_register of { d : signal; en : signal option }

let node_view t s =
  check_elab t;
  match t.nodes.(s).kind with
  | Input -> V_input
  | Const v -> V_const v
  | Comb { deps; _ } -> V_comb (Array.copy deps)
  | Register { d; en; _ } -> V_register { d; en = (if en >= 0 then Some en else None) }

let read_port_memory t s =
  check_elab t;
  List.assoc_opt s t.rports

let write_ports t m =
  check_elab t;
  (* the builder prepends, so the stored list is reversed *)
  List.rev_map
    (fun { wp_we; wp_addr; wp_data } -> (wp_we, wp_addr, wp_data))
    t.mem_arr.(m).write_ports

let probe_comb t s args =
  check_elab t;
  if List.mem_assoc s t.rports then invalid_arg "Circuit.probe_comb: read port";
  match t.nodes.(s).kind with
  | Comb { eval; _ } -> eval args
  | Input | Const _ | Register _ -> invalid_arg "Circuit.probe_comb: not combinational"
