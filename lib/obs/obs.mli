(** Zero-dependency telemetry: span timers, named counters and
    histograms, and a pluggable sink for JSONL trace events.

    A collector is either {!null} — every operation is a no-op costing
    one branch, the default everywhere — or a live aggregator created
    with {!create}.  Live collectors keep running totals (counter sums,
    span counts/durations, histogram moments) that can be read back at
    any time, and optionally stream one JSON object per span (and, at
    {!flush}, per counter/histogram) to a sink such as a JSONL trace
    file.

    Parallel workers use {!fork} to obtain private child collectors
    (no sink, no contention on the hot path) and {!merge} them back in
    a fixed order at join, so aggregate totals are deterministic for
    any domain count. *)

(** {1 JSON} *)

(** Minimal JSON values — enough to write and validate trace lines
    without an external dependency. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering (no newlines — one value per trace line). *)

  val of_string : string -> (t, string) result
  (** Strict parse of a complete JSON value (used by trace
      validation; numbers with a ['.'], exponent, or too wide for an
      [int] become [Float]). *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)

  val to_int : t -> int option
  (** [Some i] exactly for [Int i] — no coercion from [Float]. *)

  val to_str : t -> string option

  val to_bool : t -> bool option

  val to_list : t -> t list option
end

(** {1 Collectors} *)

type t

val null : t
(** The disabled collector: all operations are no-ops. *)

val create : ?clock:(unit -> float) -> ?sink:(string -> unit) -> unit -> t
(** A live collector.  [clock] supplies timestamps in seconds
    (default [Unix.gettimeofday]; negative deltas are clamped to zero
    so spans behave monotonically).  [sink] receives one rendered JSON
    object per emitted event, without the trailing newline. *)

val enabled : t -> bool
(** [false] exactly for {!null} (and its forks). *)

val now : t -> float
(** Seconds since the collector was created ([0.] for {!null}). *)

(** {1 Spans} *)

val span : t -> ?emit:bool -> string -> (unit -> 'a) -> 'a
(** [span t name f] times [f ()], adds the duration to [name]'s
    aggregate, and (with [emit], the default, and a sink) writes a
    [{"type":"span","name":...,"start":...,"dur":...}] event.
    Exceptions propagate; the span is still recorded. *)

val add_time : t -> string -> float -> unit
(** Aggregate-only: add [dur] seconds to [name]'s span total without
    emitting an event — the per-injection hot path. *)

val span_count : t -> string -> int

val span_total : t -> string -> float
(** Accumulated seconds under [name] ([0.] if never recorded). *)

val spans : t -> (string * (int * float)) list
(** All span aggregates as [(name, (count, total_seconds))], sorted by
    name. *)

(** {1 Counters} *)

val incr : t -> ?by:int -> string -> unit

val counter : t -> string -> int
(** Current total ([0] if never incremented). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Histograms} *)

type hist = { count : int; sum : float; min : float; max : float }

val observe : t -> string -> float -> unit

val histogram : t -> string -> hist option

val histograms : t -> (string * hist) list

(** {1 Fan-out} *)

val fork : t -> t
(** A private child aggregator sharing the parent's clock but with no
    sink; {!fork}[ null = null].  Children are independent — safe to
    use from another domain. *)

val merge : into:t -> t -> unit
(** Add a child's aggregates into [into].  Merging children in a fixed
    order makes parallel totals deterministic. *)

(** {1 Flush} *)

val flush : t -> unit
(** Write one [{"type":"counter",...}] event per counter and one
    [{"type":"histogram",...}] event per histogram to the sink (spans
    emit at completion).  No-op without a sink. *)

val report : Format.formatter -> t -> unit
(** Human-readable dump of all aggregates (the [--metrics] output). *)

(** {1 File sinks} *)

val file_sink : string -> (string -> unit) * (unit -> unit)
(** [file_sink path] opens [path] for writing and returns the sink
    (appends a newline per event) and a close function. *)
