(* Telemetry collector: aggregate span/counter/histogram totals plus
   an optional JSONL event sink.  The null collector makes every
   operation a single-branch no-op, so instrumented hot paths cost
   nothing when telemetry is off. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else Buffer.add_string buf (Printf.sprintf "%.9g" f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            write buf (Str k);
            Buffer.add_char buf ':';
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 128 in
    write buf v;
    Buffer.contents buf

  (* Strict recursive-descent parser, used to validate trace lines. *)
  exception Bad of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | Some _ | None -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | Some _ | None -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
            | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
            | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
            | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
            | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
            | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
            | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                (match int_of_string_opt ("0x" ^ hex) with
                | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
                | Some _ -> Buffer.add_char buf '?' (* non-ASCII: lossy but valid *)
                | None -> fail "bad \\u escape");
                pos := !pos + 4;
                go ()
            | Some c -> fail (Printf.sprintf "bad escape %C" c)
            | None -> fail "unterminated escape")
        | Some c when Char.code c < 0x20 -> fail "raw control character in string"
        | Some c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      let rec go () =
        match peek () with
        | Some ('0' .. '9' | '-' | '+') ->
            advance ();
            go ()
        | Some ('.' | 'e' | 'E') ->
            is_float := true;
            advance ();
            go ()
        | Some _ | None -> ()
      in
      go ();
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail "bad number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | Some _ | None -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elems (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | Some _ | None -> fail "expected ',' or ']'"
            in
            List (elems [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected %C" c)
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    with Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

  (* Shape accessors for consumers of parsed values (trace validation,
     the campaign journal): total, no coercions. *)
  let to_int = function Int i -> Some i | _ -> None

  let to_str = function Str s -> Some s | _ -> None

  let to_bool = function Bool b -> Some b | _ -> None

  let to_list = function List xs -> Some xs | _ -> None
end

type hist = { count : int; sum : float; min : float; max : float }

type live = {
  clock : unit -> float;
  t0 : float;
  sink : (string -> unit) option;
  counters_tbl : (string, int ref) Hashtbl.t;
  spans_tbl : (string, (int * float) ref) Hashtbl.t;  (* count, total seconds *)
  hists_tbl : (string, hist ref) Hashtbl.t;
}

type t = Off | On of live

let null = Off

let create ?(clock = Unix.gettimeofday) ?sink () =
  On
    { clock;
      t0 = clock ();
      sink;
      counters_tbl = Hashtbl.create 32;
      spans_tbl = Hashtbl.create 16;
      hists_tbl = Hashtbl.create 16 }

let enabled = function Off -> false | On _ -> true

let now = function Off -> 0. | On l -> Float.max 0. (l.clock () -. l.t0)

let emit_line l json =
  match l.sink with Some write -> write (Json.to_string json) | None -> ()

(* ---- spans ---- *)

let add_time_live l name dur =
  let dur = Float.max 0. dur in
  match Hashtbl.find_opt l.spans_tbl name with
  | Some r ->
      let c, total = !r in
      r := (c + 1, total +. dur)
  | None -> Hashtbl.add l.spans_tbl name (ref (1, dur))

let add_time t name dur = match t with Off -> () | On l -> add_time_live l name dur

let span t ?(emit = true) name f =
  match t with
  | Off -> f ()
  | On l ->
      let start = Float.max 0. (l.clock () -. l.t0) in
      let finish () =
        let dur = Float.max 0. (l.clock () -. l.t0 -. start) in
        add_time_live l name dur;
        if emit && l.sink <> None then
          emit_line l
            (Json.Obj
               [ ("type", Json.Str "span");
                 ("name", Json.Str name);
                 ("start", Json.Float start);
                 ("dur", Json.Float dur) ])
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let span_count t name =
  match t with
  | Off -> 0
  | On l -> (
      match Hashtbl.find_opt l.spans_tbl name with Some r -> fst !r | None -> 0)

let span_total t name =
  match t with
  | Off -> 0.
  | On l -> (
      match Hashtbl.find_opt l.spans_tbl name with Some r -> snd !r | None -> 0.)

let sorted_bindings tbl read =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, read v) :: acc) tbl [])

let spans = function
  | Off -> []
  | On l -> sorted_bindings l.spans_tbl (fun r -> !r)

(* ---- counters ---- *)

let incr t ?(by = 1) name =
  match t with
  | Off -> ()
  | On l -> (
      match Hashtbl.find_opt l.counters_tbl name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add l.counters_tbl name (ref by))

let counter t name =
  match t with
  | Off -> 0
  | On l -> (
      match Hashtbl.find_opt l.counters_tbl name with Some r -> !r | None -> 0)

let counters = function
  | Off -> []
  | On l -> sorted_bindings l.counters_tbl (fun r -> !r)

(* ---- histograms ---- *)

let observe t name x =
  match t with
  | Off -> ()
  | On l -> (
      match Hashtbl.find_opt l.hists_tbl name with
      | Some r ->
          let h = !r in
          r :=
            { count = h.count + 1;
              sum = h.sum +. x;
              min = Float.min h.min x;
              max = Float.max h.max x }
      | None -> Hashtbl.add l.hists_tbl name (ref { count = 1; sum = x; min = x; max = x }))

let histogram t name =
  match t with
  | Off -> None
  | On l -> Option.map (fun r -> !r) (Hashtbl.find_opt l.hists_tbl name)

let histograms = function
  | Off -> []
  | On l -> sorted_bindings l.hists_tbl (fun r -> !r)

(* ---- fan-out ---- *)

let fork = function
  | Off -> Off
  | On l ->
      On
        { clock = l.clock;
          t0 = l.t0;
          sink = None;
          counters_tbl = Hashtbl.create 32;
          spans_tbl = Hashtbl.create 16;
          hists_tbl = Hashtbl.create 16 }

let merge ~into child =
  match (into, child) with
  | Off, _ | _, Off -> ()
  | On dst, On src ->
      Hashtbl.iter (fun name r -> incr (On dst) ~by:!r name) src.counters_tbl;
      Hashtbl.iter
        (fun name r ->
          let c, total = !r in
          match Hashtbl.find_opt dst.spans_tbl name with
          | Some r' ->
              let c', total' = !r' in
              r' := (c' + c, total' +. total)
          | None -> Hashtbl.add dst.spans_tbl name (ref (c, total)))
        src.spans_tbl;
      Hashtbl.iter
        (fun name r ->
          let h = !r in
          match Hashtbl.find_opt dst.hists_tbl name with
          | Some r' ->
              let h' = !r' in
              r' :=
                { count = h'.count + h.count;
                  sum = h'.sum +. h.sum;
                  min = Float.min h'.min h.min;
                  max = Float.max h'.max h.max }
          | None -> Hashtbl.add dst.hists_tbl name (ref h))
        src.hists_tbl

(* ---- flush / report ---- *)

let flush t =
  match t with
  | Off -> ()
  | On l when l.sink = None -> ()
  | On l ->
      List.iter
        (fun (name, v) ->
          emit_line l
            (Json.Obj
               [ ("type", Json.Str "counter"); ("name", Json.Str name);
                 ("value", Json.Int v) ]))
        (counters t);
      List.iter
        (fun (name, h) ->
          emit_line l
            (Json.Obj
               [ ("type", Json.Str "histogram"); ("name", Json.Str name);
                 ("count", Json.Int h.count); ("sum", Json.Float h.sum);
                 ("min", Json.Float h.min); ("max", Json.Float h.max) ]))
        (histograms t)

let report fmt t =
  match t with
  | Off -> Format.fprintf fmt "telemetry disabled@."
  | On _ ->
      let c = counters t and s = spans t and h = histograms t in
      if s <> [] then begin
        Format.fprintf fmt "spans:@.";
        List.iter
          (fun (name, (count, total)) ->
            Format.fprintf fmt "  %-28s %8d calls  %10.3fs@." name count total)
          s
      end;
      if c <> [] then begin
        Format.fprintf fmt "counters:@.";
        List.iter (fun (name, v) -> Format.fprintf fmt "  %-28s %12d@." name v) c
      end;
      if h <> [] then begin
        Format.fprintf fmt "histograms:@.";
        List.iter
          (fun (name, hist) ->
            Format.fprintf fmt "  %-28s n=%d mean=%.1f min=%.0f max=%.0f@." name
              hist.count
              (if hist.count = 0 then 0. else hist.sum /. float_of_int hist.count)
              hist.min hist.max)
          h
      end;
      if c = [] && s = [] && h = [] then Format.fprintf fmt "no telemetry recorded@."

let file_sink path =
  let oc = open_out path in
  let write line =
    output_string oc line;
    output_char oc '\n'
  in
  (write, fun () -> close_out oc)
