(** Bit-parallel fault batching at the system level (PPSFP).

    [run] packs up to {!Rtl.Circuit.max_lanes} single-fault machines
    into the lanes of one {!Leon3.System} circuit and advances them all
    against one golden trace: the golden machine's values come straight
    from the trace deltas, each lane pays only for its divergence cone,
    and the off-core world (bus drivers, main memory) is replicated per
    lane as cheap sparse overlays above the golden image.

    Verdict-relevant behaviour — write streams, stop reasons, stop and
    mismatch cycles — is identical to running each fault through
    {!Leon3.System.run} on its own machine.  Lanes whose run outlives
    the golden trace (hang candidates) enter the {e dense tail}: the
    golden machine freezes at trace end and the survivors keep
    advancing bit-parallel, each retired individually by exit, trap,
    budget, or a cycle-proof of periodicity; a lone survivor is
    ejected with its complete state for scalar continuation from trace
    end.  With [tail:false] ejection reverts to the pre-tail contract:
    the caller re-runs ejected faults on the scalar engine from
    cycle 0. *)

module C = Rtl.Circuit

type spec = {
  site : C.fault_site;
  model : C.fault_model;
  from_cycle : int;
  duration : int option;  (** [None] = permanent *)
}

type result = {
  stop : Leon3.System.stop_reason;
  matched : int;  (** reference writes matched before the first mismatch *)
  stop_cycle : int;
  mismatch_cycle : int option;
  events : Sparc.Bus_event.t list;  (** data-side bus events, in order *)
}

type ejected = {
  e_tp : C.transplant;  (** circuit state + armed fault *)
  e_mem : Sparc.Memory.t;  (** the lane's full main-memory image *)
  e_iport : int * bool;  (** bus-driver countdown, ready_out *)
  e_dport : int * bool;
  e_matched : int;  (** reference writes matched so far *)
  e_mismatch : int option;
  e_events_rev : Sparc.Bus_event.t list;  (** newest first *)
  e_writes : int;  (** write events among them *)
}
(** Everything {!Leon3.System.transplant} needs to continue an ejected
    lane from trace end instead of restarting from cycle 0. *)

type outcome =
  | Done of result
  | Ejected of ejected option
      (** still running when the golden trace ended; [Some] carries
          the lane's state for scalar continuation ([None] only with
          the tail engine disabled — re-run scalar from cycle 0) *)

val run :
  ?obs:Obs.t ->
  ?tail:bool ->
  sys:Leon3.System.t ->
  prog:Sparc.Asm.program ->
  trace:C.trace ->
  reference:Sparc.Bus_event.t array ->
  max_cycles:int ->
  spec array ->
  outcome array * C.batch_stats
(** [run ~sys ~prog ~trace ~reference ~max_cycles specs] loads [prog]
    (fresh golden image at cycle 0 — the state [trace] was recorded
    from), arms one lane per spec and advances the batch until every
    lane retires or the trace is exhausted.  [reference] is the golden
    run's {e write} stream, compared in order against each lane's
    writes exactly as the scalar comparator does (a read is recorded
    but never compared).  At most [C.max_lanes] specs.

    [tail] (default [true]) keeps trace-outliving lanes advancing in
    dense bit-parallel mode past trace end (see the module overview);
    [obs] receives the [tail.*] counters, histograms and the
    [tail.dense] span. *)
