module C = Rtl.Circuit
module System = Leon3.System
module Core = Leon3.Core
module Cache_block = Leon3.Cache_block
module Memory = Sparc.Memory
module Layout = Sparc.Layout
module Bus_event = Sparc.Bus_event

type spec = {
  site : C.fault_site;
  model : C.fault_model;
  from_cycle : int;
  duration : int option;
}

type result = {
  stop : System.stop_reason;
  matched : int;
  stop_cycle : int;
  mismatch_cycle : int option;
  events : Bus_event.t list;
}

(* A lane the dense tail could not retire, extracted for scalar
   continuation: circuit state + fault (the transplant), the lane's
   main-memory image (golden base + overlay, materialised), bus-driver
   states, and the comparator/event bookkeeping a resumed run needs. *)
type ejected = {
  e_tp : C.transplant;
  e_mem : Memory.t;
  e_iport : int * bool;  (* countdown, ready_out *)
  e_dport : int * bool;
  e_matched : int;
  e_mismatch : int option;
  e_events_rev : Bus_event.t list;
  e_writes : int;
}

type outcome = Done of result | Ejected of ejected option

(* Per-lane off-core state.  The main-memory image is the golden base
   plus a sparse word-addressed overlay; bus-port drivers mirror
   [System.drive_port]'s countdown/ready machine per lane. *)
type lane = {
  idx : int;
  cd : int array;  (* countdown per port: [|iport; dport|] *)
  rdy : bool array;  (* ready_out per port *)
  mem : (int, int) Hashtbl.t;  (* aligned word addr -> lane's word *)
  mutable matched : int;
  mutable mismatch : int option;
  mutable stopped : System.stop_reason option;
  mutable abort : bool;
  mutable events_rev : Bus_event.t list;
  mutable nw : int;  (* write events among events_rev *)
  mutable finished : bool;
  mutable pw : int;  (* this cycle's pending dport write: word addr, -1 none *)
  mutable pwv : int;  (* ... and the lane's merged word value *)
  mutable sv : int;  (* preserve scratch around a golden base write *)
  mutable sv_set : bool;
  mutable in_ir : int;  (* next-cycle bus inputs: iport/dport ready/rdata *)
  mutable in_ird : int;
  mutable in_dr : int;
  mutable in_drd : int;
}

let mk_lane idx =
  { idx;
    cd = [| -1; -1 |];
    rdy = [| false; false |];
    mem = Hashtbl.create 16;
    matched = 0;
    mismatch = None;
    stopped = None;
    abort = false;
    events_rev = [];
    nw = 0;
    finished = false;
    pw = -1;
    pwv = 0;
    sv = 0;
    sv_set = false;
    in_ir = 0;
    in_ird = 0;
    in_dr = 0;
    in_drd = 0 }

(* Lane view of a main-memory word ([wa] pre-aligned). *)
let lv_load base ln wa =
  match Hashtbl.find_opt ln.mem wa with
  | Some v -> v
  | None -> Memory.load_word base wa

(* Set a lane's word, healing the overlay when it re-converges with the
   (current) base image. *)
let lv_set base ln wa v =
  if Memory.load_word base wa = v then Hashtbl.remove ln.mem wa
  else Hashtbl.replace ln.mem wa v

let size_of_code = function 0 -> Bus_event.Byte | 1 -> Bus_event.Half | _ -> Bus_event.Word

let run ?(obs = Obs.null) ?(tail = true) ~sys ~prog ~trace ~reference ~max_cycles specs
    =
  let n = Array.length specs in
  if n > C.max_lanes then invalid_arg "Batch.run: more specs than lanes";
  let core = System.core sys in
  let circuit = core.Core.circuit in
  let ic = core.Core.icache and dc = core.Core.dcache in
  let latency = System.mem_latency sys in
  let nref = Array.length reference in
  System.load sys prog;
  let base = System.memory sys in
  C.batch_start circuit trace;
  Array.iteri
    (fun i sp ->
      C.batch_arm circuit i ~from_cycle:sp.from_cycle ?duration:sp.duration sp.site
        sp.model)
    specs;
  let lanes = Array.init n mk_lane in
  let outcomes = Array.make n (Ejected None) in
  let live = ref n in
  let record ln ev =
    ln.events_rev <- ev :: ln.events_rev;
    if Bus_event.is_write ev then begin
      ln.nw <- ln.nw + 1;
      if ln.matched < nref && Bus_event.equal ev reference.(ln.matched) then
        ln.matched <- ln.matched + 1
      else begin
        (match ln.mismatch with
        | None -> ln.mismatch <- Some (C.cycle circuit)
        | Some _ -> ());
        ln.abort <- true
      end
    end
  in
  let finish ln stop =
    outcomes.(ln.idx) <-
      Done
        { stop;
          matched = ln.matched;
          stop_cycle = C.cycle circuit;
          mismatch_cycle = ln.mismatch;
          events = List.rev ln.events_rev };
    C.batch_retire circuit ln.idx;
    ln.finished <- true;
    decr live
  in
  let eject ln =
    (* outcome stays Ejected None: the caller re-runs scalar from 0 *)
    C.batch_retire circuit ln.idx;
    ln.finished <- true;
    decr live
  in
  (* Materialise a lane's full state for scalar continuation (tail
     mode only: requires the exhausting clock completed by
     [batch_tail_start], so the lane stands at a settled post-step
     state). *)
  let eject_transplant ln =
    let mem = Memory.copy base in
    Hashtbl.iter (fun wa v -> Memory.store_word mem wa v) ln.mem;
    outcomes.(ln.idx) <-
      Ejected
        (Some
           { e_tp = C.batch_eject circuit ln.idx;
             e_mem = mem;
             e_iport = (ln.cd.(0), ln.rdy.(0));
             e_dport = (ln.cd.(1), ln.rdy.(1));
             e_matched = ln.matched;
             e_mismatch = ln.mismatch;
             e_events_rev = ln.events_rev;
             e_writes = ln.nw });
    C.batch_retire circuit ln.idx;
    ln.finished <- true;
    decr live
  in
  (* One bus-port driver step for one lane, against the lane's settled
     view of the request signals; mirrors [System.drive_port].  Writes
     are not applied here — the merged word is parked in [ln.pw]/[pwv]
     (computed from the lane's pre-write view) and committed after the
     golden base write so the preserve step can see who writes what. *)
  let drive_lane ln pi =
    let ports = if pi = 0 then ic else dc in
    let read_only = pi = 0 in
    let get s = C.batch_value circuit s ln.idx in
    if ln.rdy.(pi) then begin
      ln.rdy.(pi) <- false;
      ln.cd.(pi) <- -1;
      (0, 0)
    end
    else if get ports.Cache_block.bus_req = 0 then begin
      ln.cd.(pi) <- -1;
      (0, 0)
    end
    else begin
      if ln.cd.(pi) < 0 then ln.cd.(pi) <- latency;
      ln.cd.(pi) <- ln.cd.(pi) - 1;
      if ln.cd.(pi) > 0 then (0, 0)
      else begin
        let addr = get ports.Cache_block.bus_addr in
        let we = get ports.Cache_block.bus_we in
        ln.rdy.(pi) <- true;
        if we <> 0 && not read_only then begin
          let size = size_of_code (get ports.Cache_block.bus_size) in
          let value = get ports.Cache_block.bus_wdata in
          record ln (Bus_event.Write { addr; size; value });
          if Layout.is_exit_store addr then ln.stopped <- Some (System.Exited value)
          else begin
            (* Merge into the lane's current word now (read-modify-write
               against the pre-write view), apply after the golden
               commit.  Misaligned addresses truncate like the scalar
               memory controller. *)
            let a = addr land 0xFFFF_FFFF in
            let wa = a land lnot 3 in
            let old = lv_load base ln wa in
            let wv =
              match size with
              | Bus_event.Byte ->
                  let sh = 8 * (3 - (a land 3)) in
                  (old land lnot (0xFF lsl sh)) lor ((value land 0xFF) lsl sh)
              | Bus_event.Half ->
                  let a = a land lnot 1 in
                  let sh = 8 * (2 - (a land 2)) in
                  (old land lnot (0xFFFF lsl sh)) lor ((value land 0xFFFF) lsl sh)
              | Bus_event.Word -> value
            in
            ln.pw <- wa;
            ln.pwv <- wv land 0xFFFF_FFFF
          end;
          (1, 0)
        end
        else begin
          let word = lv_load base ln ((addr land 0xFFFF_FFFF) land lnot 3) in
          if not read_only then record ln (Bus_event.Read { addr; size = Bus_event.Word });
          (1, word)
        end
      end
    end
  in
  (* The golden machine's data-port driver, replicated so base-memory
     writes land on the same cycles the golden run produced them.  The
     golden request signals are the circuit's own settled values; the
     (ready, rdata) answers are not needed — golden inputs arrive via
     the trace deltas. *)
  let g_cd = ref (-1) and g_rdy = ref false in
  let golden_drive () =
    if !g_rdy then begin
      g_rdy := false;
      g_cd := -1
    end
    else if C.value circuit dc.Cache_block.bus_req = 0 then g_cd := -1
    else begin
      if !g_cd < 0 then g_cd := latency;
      decr g_cd;
      if !g_cd <= 0 then begin
        g_rdy := true;
        let we = C.value circuit dc.Cache_block.bus_we in
        if we <> 0 then begin
          let addr = C.value circuit dc.Cache_block.bus_addr in
          if not (Layout.is_exit_store addr) then begin
            let size = size_of_code (C.value circuit dc.Cache_block.bus_size) in
            let value = C.value circuit dc.Cache_block.bus_wdata in
            let wa = (addr land 0xFFFF_FFFF) land lnot 3 in
            (* Preserve each live lane's view of the word the golden
               write is about to change — except lanes overwriting that
               same word themselves this cycle. *)
            Array.iter
              (fun ln ->
                if (not ln.finished) && ln.pw <> wa then begin
                  ln.sv <- lv_load base ln wa;
                  ln.sv_set <- true
                end
                else ln.sv_set <- false)
              lanes;
            (match size with
            | Bus_event.Byte -> Memory.store_byte base addr value
            | Bus_event.Half -> Memory.store_half base (addr land lnot 1) value
            | Bus_event.Word -> Memory.store_word base (addr land lnot 3) value);
            Array.iter
              (fun ln -> if ln.sv_set then lv_set base ln wa ln.sv)
              lanes
          end
        end
      end
    end
  in
  let apply_inputs () =
    Array.iter
      (fun ln ->
        if not ln.finished then begin
          C.batch_set_input circuit ic.Cache_block.bus_ready ln.idx ln.in_ir;
          C.batch_set_input circuit ic.Cache_block.bus_rdata ln.idx ln.in_ird;
          C.batch_set_input circuit dc.Cache_block.bus_ready ln.idx ln.in_dr;
          C.batch_set_input circuit dc.Cache_block.bus_rdata ln.idx ln.in_drd
        end)
      lanes
  in
  (* Per-lane cycle-proof detectors, armed at tail entry for lanes
     whose fault is permanent and already active — then the armed
     fault is a pure function of the circuit state and a confirmed
     state recurrence with equal write count and bus-driver state is a
     proof of periodicity, exactly as in the scalar detector
     ([System.run_segment]'s correctness argument carries over lane by
     lane: the golden base memory is frozen in tail mode, so a lane's
     main-memory image can only change through its own writes). *)
  let dets = Array.make n None in
  let in_tail = ref false in
  let tail_entry = ref 0.0 in
  (* Dense advance is a full per-lane sweep of the netlist each cycle —
     several times the scalar engine's per-cycle cost — so it only
     earns its keep while cycle proofs are retiring lanes.  The window
     below catches the common wedge (a loop of a few dozen cycles
     proves within stride × period of the entry anchor); survivors are
     handed to the scalar engine as transplants, which still skips the
     whole trace prefix and runs its own detector for longer periods. *)
  let dense_tail_budget = 256 in
  let tail_deadline = ref max_int in
  let arm_detectors () =
    let cyc = C.cycle circuit in
    Array.iter
      (fun ln ->
        if (not ln.finished) && specs.(ln.idx).duration = None
           && specs.(ln.idx).from_cycle <= cyc
        then
          let mix h x = ((h lxor x) * 0x100000001B3) lxor (h lsr 17) in
          dets.(ln.idx) <-
            Some
              (Rtl.Cycle.create ~first:cyc ~stride:4
                 ~hash:(fun () ->
                   mix
                     (mix
                        (mix
                           (mix
                              (mix (C.batch_lane_hash circuit ln.idx) ln.nw)
                              ln.cd.(0))
                           (Bool.to_int ln.rdy.(0)))
                        ln.cd.(1))
                     (Bool.to_int ln.rdy.(1)))
                 ~capture:(fun () ->
                   ( C.batch_lane_state circuit ln.idx, ln.nw, ln.cd.(0), ln.rdy.(0),
                     ln.cd.(1), ln.rdy.(1) ))
                 ~confirm:(fun (s, wr, icd, iro, dcd, dro) ->
                   ln.nw = wr && ln.cd.(0) = icd && ln.rdy.(0) = iro
                   && ln.cd.(1) = dcd && ln.rdy.(1) = dro
                   && C.batch_lane_same_state circuit ln.idx s)
                 ()))
      lanes
  in
  (* Enter dense tail mode: complete the exhausting clock's register
     commit, then apply the bus inputs this cycle's drive computed and
     settle — the live lanes now stand at the same settled state a
     scalar run reaches one step past the trace. *)
  let enter_tail () =
    C.batch_tail_start circuit;
    in_tail := true;
    tail_entry := Obs.now obs;
    tail_deadline := C.cycle circuit + dense_tail_budget;
    Obs.observe obs "tail.occupancy" (float_of_int !live);
    apply_inputs ();
    C.batch_tail_settle circuit;
    arm_detectors ()
  in
  let step () =
    (* Port drives read the settled cycle; lane writes are parked. *)
    Array.iter
      (fun ln ->
        if not ln.finished then begin
          ln.pw <- -1;
          let ir, ird = drive_lane ln 0 in
          let dr, drd = drive_lane ln 1 in
          ln.in_ir <- ir;
          ln.in_ird <- ird;
          ln.in_dr <- dr;
          ln.in_drd <- drd
        end)
      lanes;
    golden_drive ();
    Array.iter
      (fun ln -> if (not ln.finished) && ln.pw >= 0 then lv_set base ln ln.pw ln.pwv)
      lanes;
    C.batch_clock circuit;
    if C.batch_exhausted circuit then begin
      (* Past the trace the golden machine stops advancing, but a stop
         latched during this cycle's drive is already a verdict (and
         the cycle counter did advance, so stop cycles match the
         scalar run). *)
      Array.iter
        (fun ln ->
          if not ln.finished then
            match ln.stopped with
            | Some r -> finish ln r
            | None -> if ln.abort then finish ln System.Aborted else if not tail then eject ln)
        lanes;
      (* Unresolved lanes: with the tail engine they keep advancing
         bit-parallel past trace end; without it they were ejected
         above for a scalar re-run from cycle 0. *)
      if tail && !live > 0 then enter_tail ()
    end
    else begin
      apply_inputs ();
      C.batch_settle circuit
    end
  in
  let tail_step () =
    Array.iter
      (fun ln ->
        if not ln.finished then begin
          ln.pw <- -1;
          let ir, ird = drive_lane ln 0 in
          let dr, drd = drive_lane ln 1 in
          ln.in_ir <- ir;
          ln.in_ird <- ird;
          ln.in_dr <- dr;
          ln.in_drd <- drd
        end)
      lanes;
    (* no golden_drive: the golden machine ended with its trace, the
       base image is frozen *)
    Array.iter
      (fun ln -> if (not ln.finished) && ln.pw >= 0 then lv_set base ln ln.pw ln.pwv)
      lanes;
    C.batch_tail_clock circuit;
    apply_inputs ();
    C.batch_tail_settle circuit
  in
  let rec loop () =
    (* Terminal checks in the scalar run loop's order (the cycle-proof
       check sits where the scalar detector's does: after the budget
       check, at a settled loop top). *)
    Array.iter
      (fun ln ->
        if not ln.finished then
          match ln.stopped with
          | Some r -> finish ln r
          | None ->
              if ln.abort then finish ln System.Aborted
              else if C.batch_value circuit core.Core.halted ln.idx <> 0 then
                finish ln
                  (System.Trapped (C.batch_value circuit core.Core.trap_code ln.idx))
              else if C.cycle circuit >= max_cycles then finish ln System.Cycle_limit
              else
                match dets.(ln.idx) with
                | Some d -> (
                    match Rtl.Cycle.observe d ~cycle:(C.cycle circuit) with
                    | Some period ->
                        Obs.incr obs "tail.cycle_proofs";
                        Obs.observe obs "tail.cycle_length" (float_of_int period);
                        Obs.incr obs
                          ~by:(max_cycles - C.cycle circuit)
                          "tail.cycles_saved";
                        finish ln System.Cycle_limit
                    | None -> ())
                | None -> ())
      lanes;
    if !in_tail && (!live = 1 || C.cycle circuit >= !tail_deadline) then
      (* A lone survivor, or the dense window closing: the scalar
         engine is cheaper per lane-cycle (no lane bookkeeping) and
         runs its own cycle-proof detector — hand the survivors over
         at the current settled state. *)
      Array.iter (fun ln -> if not ln.finished then eject_transplant ln) lanes
    else if !live > 0 then begin
      if !in_tail then tail_step () else step ();
      loop ()
    end
  in
  loop ();
  if !in_tail then Obs.add_time obs "tail.dense" (Obs.now obs -. !tail_entry);
  let stats = C.batch_stop circuit in
  (outcomes, stats)
