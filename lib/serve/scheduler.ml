(* Shard scheduler: a pool of forked worker processes executing
   campaign shards, with requeue-on-crash.

   Each shard of each job runs in its own forked child against the
   parent's prepared (cached) golden trace + static analysis — fork
   gives the child the preparation by copy-on-write, and gives the
   parent a kill-safe unit of work: a worker death (crash, OOM kill,
   kill -9) only ever loses the unsynced tail of that shard's journal,
   and the requeued shard resumes from the journal byte-identically
   ({!Fault_injection.Journal} fingerprints make replay exact).  A
   worker that exits with the journal-rejected code fails the whole
   job instead — its journal belongs to a different campaign, and
   retrying cannot fix that.

   The scheduler is single-threaded: {!pump} fills free worker slots,
   polls worker pipes for progress, reaps exited children and returns
   the resulting events.  On shard-cover completion it loads the shard
   journals, {!Fault_injection.Journal.merge}s them and renders the
   verdict table through {!Render} — the same code path as `ricv
   merge`, which is what makes the served table byte-identical to the
   direct run's. *)

module Json = Obs.Json
module Campaign = Fault_injection.Campaign
module Iss_campaign = Fault_injection.Iss_campaign
module Journal = Fault_injection.Journal
module Injection = Fault_injection.Injection

type engine_job =
  | Ej_rtl of {
      params : Leon3.Core.params;
      config : Campaign.config;  (* shard-normalised; per-child shard spliced in *)
      prog : Sparc.Asm.program;
      target : Injection.target;
      prepared : Campaign.prepared;
    }
  | Ej_iss of {
      config : Iss_campaign.config;
      prog : Sparc.Asm.program;
      prepared : Iss_campaign.prepared;
    }

type shard_state =
  | S_pending
  | S_running of { pid : int; pipe : Unix.file_descr; buf : Buffer.t }
  | S_done

type finished = F_running | F_done of string list | F_failed of string

type job = {
  id : int;
  spec : Protocol.spec;
  mutable ej : engine_job option;  (* None once terminal (frees the golden trace) *)
  shards : int;
  state : shard_state array;  (* index k-1 = shard k *)
  attempts : int array;
  done_ : int array;  (* last progress report per shard *)
  total : int array;
  mutable requeues : int;
  cache_hit : bool;
  mutable finished : finished;
}

type event =
  | Progress of { job : int; shard : int; done_ : int; total : int }
  | Requeued of { job : int; shard : int; attempt : int }
  | Job_done of { job : int; table : string list; requeues : int }
  | Job_failed of { job : int; reason : string }

type t = {
  queue : Jobqueue.t;
  cache : Cache.t;
  obs : Obs.t;
  workers : int;
  max_retries : int;
  on_fork_child : unit -> unit;
  jobs : (int, job) Hashtbl.t;
  mutable order : int list;  (* submission order, oldest first *)
  mutable pending : (int * int) list;  (* (job, shard) FIFO, oldest first *)
  events : event Queue.t;
}

(* ---- spec -> engine ---- *)

let build_program (spec : Protocol.spec) =
  match
    List.find_opt (fun e -> e.Workloads.Suite.name = spec.workload) Workloads.Suite.all
  with
  | None -> Error (Printf.sprintf "unknown workload %S" spec.workload)
  | Some e ->
      let iterations =
        match spec.iterations with
        | Some n -> n
        | None -> e.Workloads.Suite.default_iterations
      in
      Ok (e.Workloads.Suite.build ~iterations ~dataset:spec.dataset)

let rtl_config (spec : Protocol.spec) =
  { Campaign.default_config with
    Campaign.sample_size = Some spec.samples;
    hang_factor = spec.hang_factor;
    seed = spec.seed }

let iss_config (spec : Protocol.spec) =
  { Iss_campaign.default_config with
    Iss_campaign.samples_per_model = spec.samples;
    hang_factor = spec.hang_factor;
    seed = spec.seed }

let target_of_spec (spec : Protocol.spec) =
  match spec.target with "cmem" -> Injection.Cmem | _ -> Injection.Iu

(* Build (or fetch from the golden-trace cache) the engine job for a
   spec.  The preparation is the expensive part — golden simulation
   plus static analysis — and is exactly what the cache stores. *)
let build_engine t (spec : Protocol.spec) =
  match build_program spec with
  | Error _ as e -> e
  | Ok prog -> (
      let key = Cache.key ~prog_hash:(Journal.hash_program prog) spec in
      match spec.engine with
      | Protocol.Rtl ->
          let params =
            { Leon3.Core.default_params with Leon3.Core.gate_level = spec.gate }
          in
          let config = rtl_config spec in
          let target = target_of_spec spec in
          let v, hit =
            Cache.find_or_build t.cache ~key ~build:(fun () ->
                let sys = Leon3.System.create ~params () in
                Cache.Rtl_prepared (Campaign.prepare ~config ~obs:t.obs sys prog target))
          in
          let prepared =
            match v with
            | Cache.Rtl_prepared p -> p
            | Cache.Iss_prepared _ -> assert false  (* engine is part of the key *)
          in
          Ok (Ej_rtl { params; config; prog; target; prepared }, hit)
      | Protocol.Iss ->
          let config = iss_config spec in
          let v, hit =
            Cache.find_or_build t.cache ~key ~build:(fun () ->
                Cache.Iss_prepared (Iss_campaign.prepare ~config ~obs:t.obs prog))
          in
          let prepared =
            match v with
            | Cache.Iss_prepared p -> p
            | Cache.Rtl_prepared _ -> assert false
          in
          Ok (Ej_iss { config; prog; prepared }, hit))

(* ---- worker processes ---- *)

let write_line fd s =
  let s = s ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> ()  (* parent gone: keep working *)

let child_report pipe ~job ~shard ~done_ ~total =
  if done_ mod 25 = 0 || done_ = total then
    write_line pipe (Printf.sprintf "P %d %d %d %d" job shard done_ total)

(* The child's whole life.  Never returns: [Unix._exit] skips at_exit
   and buffered-channel flushing (the parent owns those).  Exit codes:
   0 = shard complete, 3 = journal rejected (fatal for the job), any
   other exit or a signal = crash, requeued by the parent. *)
let child_body t job k pipe =
  t.on_fork_child ();
  let journal = Jobqueue.shard_journal t.queue ~job:job.id ~shard:k in
  let on_progress ~done_ ~total =
    child_report pipe ~job:job.id ~shard:k ~done_ ~total
  in
  match
    match job.ej with
    | None -> Unix._exit 2
    | Some (Ej_rtl e) ->
        let sys = Leon3.System.create ~params:e.params () in
        let config = { e.config with Campaign.shard = (k, job.shards) } in
        ignore
          (Campaign.run ~config ~on_progress ~journal ~resume:true
             ~prepared:e.prepared sys e.prog e.target)
    | Some (Ej_iss e) ->
        let config = { e.config with Iss_campaign.shard = (k, job.shards) } in
        ignore
          (Iss_campaign.run ~config ~on_progress ~journal ~resume:true
             ~prepared:e.prepared e.prog)
  with
  | () -> Unix._exit 0
  | exception Journal.Rejected _ -> Unix._exit 3
  | exception _ -> Unix._exit 2

let spawn t job k =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      child_body t job k w
  | pid ->
      Unix.close w;
      job.state.(k - 1) <- S_running { pid; pipe = r; buf = Buffer.create 64 };
      Obs.incr t.obs "serve.shards_started"

let running_count t =
  Hashtbl.fold
    (fun _ job acc ->
      Array.fold_left
        (fun acc -> function S_running _ -> acc + 1 | _ -> acc)
        acc job.state)
    t.jobs 0

let fill_slots t =
  let rec go () =
    if running_count t < t.workers then
      match t.pending with
      | [] -> ()
      | (id, k) :: rest ->
          t.pending <- rest;
          (match Hashtbl.find_opt t.jobs id with
          | Some job when job.finished = F_running && job.state.(k - 1) = S_pending ->
              spawn t job k
          | _ -> ());
          go ()
  in
  go ()

(* ---- completion ---- *)

let kill_running t job =
  Array.iteri
    (fun i st ->
      match st with
      | S_running { pid; pipe; _ } ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          (try Unix.close pipe with Unix.Unix_error _ -> ());
          job.state.(i) <- S_pending
      | _ -> ())
    job.state;
  t.pending <- List.filter (fun (id, _) -> id <> job.id) t.pending

let fail_job t job reason =
  kill_running t job;
  job.ej <- None;
  job.finished <- F_failed reason;
  Jobqueue.mark_job_failed t.queue job.id ~reason;
  Obs.incr t.obs "serve.jobs_failed";
  Queue.add (Job_failed { job = job.id; reason }) t.events

let write_summary t job lines =
  let path = Jobqueue.summary_path t.queue job.id in
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) lines);
  Sys.rename tmp path;
  Journal.fsync_dir (Filename.dirname path)

let finalize t job =
  let rec load acc k =
    if k > job.shards then Ok (List.rev acc)
    else
      match Journal.load (Jobqueue.shard_journal t.queue ~job:job.id ~shard:k) with
      | Ok j -> load (j :: acc) (k + 1)
      | Error e -> Error (Printf.sprintf "shard %d: %s" k e)
  in
  match
    match load [] 1 with
    | Error _ as e -> e
    | Ok journals -> (
        match Journal.merge journals with
        | Error _ as e -> e
        | Ok (fp, results) -> Render.merged_lines fp results)
  with
  | Error reason -> fail_job t job (Printf.sprintf "merge failed: %s" reason)
  | Ok lines ->
      write_summary t job lines;
      job.ej <- None;
      job.finished <- F_done lines;
      Jobqueue.mark_job_done t.queue job.id;
      Obs.incr t.obs "serve.jobs_done";
      Queue.add
        (Job_done { job = job.id; table = lines; requeues = job.requeues })
        t.events

let check_complete t job =
  if
    job.finished = F_running
    && Array.for_all (fun st -> st = S_done) job.state
  then finalize t job

(* ---- progress and reaping ---- *)

let handle_progress t job k line =
  match String.split_on_char ' ' line with
  | [ "P"; _; _; d; tot ] -> (
      match (int_of_string_opt d, int_of_string_opt tot) with
      | Some d, Some tot ->
          job.done_.(k - 1) <- d;
          job.total.(k - 1) <- tot;
          Queue.add (Progress { job = job.id; shard = k; done_ = d; total = tot })
            t.events
      | _ -> ())
  | _ -> ()

let drain_buffer t job k buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)
      |> List.iter (fun line -> if line <> "" then handle_progress t job k line)

let read_chunk fd buf =
  let bytes = Bytes.create 4096 in
  match Unix.read fd bytes 0 4096 with
  | 0 -> `Eof
  | n ->
      Buffer.add_subbytes buf bytes 0 n;
      `More
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `More

let read_to_eof fd buf =
  let rec go () = match read_chunk fd buf with `Eof -> () | `More -> go () in
  go ()

let reap_shard t job k ~pid ~pipe ~buf status =
  read_to_eof pipe buf;
  drain_buffer t job k buf;
  (try Unix.close pipe with Unix.Unix_error _ -> ());
  ignore pid;
  (* drop the S_running entry first so a fail path cannot re-kill the
     already-reaped pid or re-close the pipe *)
  job.state.(k - 1) <- S_pending;
  match status with
  | Unix.WEXITED 0 ->
      job.state.(k - 1) <- S_done;
      Jobqueue.mark_shard_done t.queue ~job:job.id ~shard:k;
      check_complete t job
  | Unix.WEXITED 3 ->
      fail_job t job
        (Printf.sprintf "shard %d: journal rejected (stale journal on disk?)" k)
  | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
      job.attempts.(k - 1) <- job.attempts.(k - 1) + 1;
      if job.attempts.(k - 1) > t.max_retries then
        fail_job t job
          (Printf.sprintf "shard %d crashed %d times" k job.attempts.(k - 1))
      else begin
        job.requeues <- job.requeues + 1;
        Obs.incr t.obs "serve.requeues";
        t.pending <- t.pending @ [ (job.id, k) ];
        Queue.add
          (Requeued { job = job.id; shard = k; attempt = job.attempts.(k - 1) })
          t.events
      end

let reap t =
  Hashtbl.iter
    (fun _ job ->
      Array.iteri
        (fun i st ->
          match st with
          | S_running { pid; pipe; buf } -> (
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> ()
              | _, status -> reap_shard t job (i + 1) ~pid ~pipe ~buf status
              | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                  (* someone else reaped it: treat as a crash *)
                  reap_shard t job (i + 1) ~pid ~pipe ~buf (Unix.WEXITED 2))
          | _ -> ())
        job.state)
    (Hashtbl.copy t.jobs)

(* ---- public API ---- *)

let pipe_fds t =
  Hashtbl.fold
    (fun _ job acc ->
      Array.fold_left
        (fun acc -> function S_running { pipe; _ } -> pipe :: acc | _ -> acc)
        acc job.state)
    t.jobs []

let pump t ~timeout =
  fill_slots t;
  let fds = pipe_fds t in
  (if fds <> [] || timeout > 0. then
     match Unix.select fds [] [] timeout with
     | readable, _, _ ->
         List.iter
           (fun fd ->
             Hashtbl.iter
               (fun _ job ->
                 Array.iteri
                   (fun i st ->
                     match st with
                     | S_running { pipe; buf; _ } when pipe = fd -> (
                         match read_chunk fd buf with
                         | `More | `Eof -> drain_buffer t job (i + 1) buf)
                     | _ -> ())
                   job.state)
               t.jobs)
           readable
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  reap t;
  fill_slots t;
  let evs = List.of_seq (Queue.to_seq t.events) in
  Queue.clear t.events;
  evs

let enqueue_job t job =
  Hashtbl.replace t.jobs job.id job;
  t.order <- t.order @ [ job.id ];
  let todo = ref [] in
  Array.iteri
    (fun i st -> if st = S_pending then todo := (job.id, i + 1) :: !todo)
    job.state;
  t.pending <- t.pending @ List.rev !todo;
  check_complete t job

let submit t spec =
  match Protocol.validate_spec spec with
  | Error _ as e -> e
  | Ok () -> (
      match try build_engine t spec with e -> Error (Printexc.to_string e) with
      | Error _ as e -> e
      | Ok (ej, cache_hit) ->
          let id = Jobqueue.next_id t.queue in
          Jobqueue.append_job t.queue id spec;
          let shards = spec.Protocol.shards in
          enqueue_job t
            { id; spec; ej = Some ej; shards;
              state = Array.make shards S_pending;
              attempts = Array.make shards 0;
              done_ = Array.make shards 0;
              total = Array.make shards 0;
              requeues = 0; cache_hit; finished = F_running };
          Obs.incr t.obs "serve.submissions";
          Ok (id, cache_hit))

(* Recovery: re-enqueue every unfinished shard of every unfinished
   job.  The preparation is rebuilt (a restart empties the in-memory
   cache) but the shard journals on disk replay byte-identically, so
   no completed verdict is ever re-simulated. *)
let recover t (r : Jobqueue.job_record) =
  match r.finished with
  | `Done ->
      let lines =
        let path = Jobqueue.summary_path t.queue r.id in
        if Sys.file_exists path then
          String.split_on_char '\n'
            (In_channel.with_open_bin path In_channel.input_all)
          |> List.filter (fun l -> l <> "")
        else []
      in
      Hashtbl.replace t.jobs r.id
        { id = r.id; spec = r.spec; ej = None; shards = r.spec.Protocol.shards;
          state = Array.make r.spec.Protocol.shards S_done;
          attempts = Array.make r.spec.Protocol.shards 0;
          done_ = Array.make r.spec.Protocol.shards 0;
          total = Array.make r.spec.Protocol.shards 0;
          requeues = 0; cache_hit = false; finished = F_done lines };
      t.order <- t.order @ [ r.id ]
  | `Failed reason ->
      Hashtbl.replace t.jobs r.id
        { id = r.id; spec = r.spec; ej = None; shards = r.spec.Protocol.shards;
          state = Array.make r.spec.Protocol.shards S_done;
          attempts = Array.make r.spec.Protocol.shards 0;
          done_ = Array.make r.spec.Protocol.shards 0;
          total = Array.make r.spec.Protocol.shards 0;
          requeues = 0; cache_hit = false; finished = F_failed reason };
      t.order <- t.order @ [ r.id ]
  | `Open -> (
      match try build_engine t r.spec with e -> Error (Printexc.to_string e) with
      | Error reason ->
          let job =
            { id = r.id; spec = r.spec; ej = None; shards = r.spec.Protocol.shards;
              state = Array.make r.spec.Protocol.shards S_done;
              attempts = Array.make r.spec.Protocol.shards 0;
              done_ = Array.make r.spec.Protocol.shards 0;
              total = Array.make r.spec.Protocol.shards 0;
              requeues = 0; cache_hit = false; finished = F_running }
          in
          Hashtbl.replace t.jobs r.id job;
          t.order <- t.order @ [ r.id ];
          fail_job t job (Printf.sprintf "recovery: %s" reason)
      | Ok (ej, cache_hit) ->
          let shards = r.spec.Protocol.shards in
          let state =
            Array.init shards (fun i ->
                if List.mem (i + 1) r.done_shards then S_done else S_pending)
          in
          enqueue_job t
            { id = r.id; spec = r.spec; ej = Some ej; shards; state;
              attempts = Array.make shards 0;
              done_ = Array.make shards 0;
              total = Array.make shards 0;
              requeues = 0; cache_hit; finished = F_running })

let create ?(obs = Obs.null) ?(workers = 2) ?(max_retries = 2) ?cache_capacity
    ?(on_fork_child = fun () -> ()) ~dir () =
  if workers < 1 then invalid_arg "Scheduler.create: workers must be positive";
  (* the service always keeps a live collector so the golden-run count
     behind the cache-hit guarantee is observable even when the caller
     passed no obs *)
  let obs = if Obs.enabled obs then obs else Obs.create () in
  match Jobqueue.open_ dir with
  | Error _ as e -> e
  | Ok (queue, records) ->
      let t =
        { queue;
          cache = Cache.create ~obs ?capacity:cache_capacity ();
          obs; workers; max_retries; on_fork_child;
          jobs = Hashtbl.create 16;
          order = [];
          pending = [];
          events = Queue.create () }
      in
      List.iter (recover t) records;
      Ok t

let job_result t id =
  match Hashtbl.find_opt t.jobs id with
  | None -> `Unknown
  | Some j -> (
      match j.finished with
      | F_running -> `Running
      | F_done table -> `Done (table, j.requeues)
      | F_failed reason -> `Failed reason)

let idle t =
  t.pending = []
  && Hashtbl.fold
       (fun _ job acc ->
         acc
         && Array.for_all (fun st -> match st with S_running _ -> false | _ -> true)
              job.state)
       t.jobs true

let golden_runs t = Obs.span_count t.obs "golden"

let cache_stats t = (Cache.hits t.cache, Cache.misses t.cache)

let obs t = t.obs

let status_json t =
  let job_json id =
    let j = Hashtbl.find t.jobs id in
    let state, extra =
      match j.finished with
      | F_done _ -> ("done", [])
      | F_failed reason -> ("failed", [ ("reason", Json.Str reason) ])
      | F_running ->
          ( (if Array.exists (function S_running _ -> true | _ -> false) j.state
             then "running"
             else "queued"),
            [] )
    in
    let shards_json =
      Array.to_list
        (Array.mapi
           (fun i st ->
             let base =
               [ ("shard", Json.Int (i + 1));
                 ("done", Json.Int j.done_.(i));
                 ("total", Json.Int j.total.(i)) ]
             in
             match st with
             | S_running { pid; _ } ->
                 Json.Obj (("state", Json.Str "running") :: ("pid", Json.Int pid) :: base)
             | S_done -> Json.Obj (("state", Json.Str "done") :: base)
             | S_pending -> Json.Obj (("state", Json.Str "pending") :: base))
           j.state)
    in
    Json.Obj
      ([ ("id", Json.Int j.id);
         ("workload", Json.Str j.spec.Protocol.workload);
         ("engine", Json.Str (Protocol.engine_name j.spec.Protocol.engine));
         ("state", Json.Str state);
         ("shards", Json.Int j.shards);
         ("requeues", Json.Int j.requeues);
         ("cache", Json.Str (if j.cache_hit then "hit" else "miss")) ]
      @ extra
      @ [ ("progress", Json.List shards_json) ])
  in
  let hits, misses = cache_stats t in
  Json.Obj
    [ ("ok", Json.Bool true);
      ("jobs", Json.List (List.map job_json t.order));
      ("cache_hits", Json.Int hits);
      ("cache_misses", Json.Int misses);
      ("golden_runs", Json.Int (golden_runs t));
      ("requeues", Json.Int (Obs.counter t.obs "serve.requeues")) ]

let shutdown t =
  Hashtbl.iter (fun _ job -> kill_running t job) (Hashtbl.copy t.jobs);
  t.pending <- [];
  Jobqueue.close t.queue
