(** Shard scheduler: forked worker processes with requeue-on-crash.

    Every shard of every accepted job runs in its own forked child
    process, which inherits the cached campaign preparation (golden
    trace + static analysis) by copy-on-write and journals its
    verdicts to [DIR/job-N/shard-K.jsonl].  A child that dies — crash,
    OOM, [kill -9] — is re-enqueued up to [max_retries] times; the
    requeued shard resumes from its journal, whose fingerprint makes
    the replay byte-identical, so a crash can change scheduling but
    never a verdict.  When a job's shard cover completes, the shard
    journals are {!Fault_injection.Journal.merge}d and rendered
    through {!Render} (the `ricv merge` code path) into
    [DIR/job-N/summary.txt].

    Single-threaded and poll-driven: the owner calls {!pump}
    repeatedly (the daemon does so from its select loop). *)

type t

type event =
  | Progress of { job : int; shard : int; done_ : int; total : int }
  | Requeued of { job : int; shard : int; attempt : int }
  | Job_done of { job : int; table : string list; requeues : int }
  | Job_failed of { job : int; reason : string }

val create :
  ?obs:Obs.t ->
  ?workers:int ->
  ?max_retries:int ->
  ?cache_capacity:int ->
  ?on_fork_child:(unit -> unit) ->
  dir:string ->
  unit ->
  (t, string) result
(** Open (or recover) the queue at [dir] and build the scheduler.
    [workers] (default 2) bounds concurrent shard processes;
    [max_retries] (default 2) bounds per-shard crash requeues before
    the job fails; [on_fork_child] runs first in every forked worker
    (the daemon closes its sockets there).  Recovery re-enqueues the
    unfinished shards of unfinished jobs; their on-disk journals
    resume byte-identically.  If [obs] is {!Obs.null} a private live
    collector is created anyway, so cache and golden-run counters are
    always observable. *)

val submit : t -> Protocol.spec -> (int * bool, string) result
(** Validate, prepare (through the golden-trace cache) and enqueue a
    campaign.  Returns the job id and whether the preparation was a
    cache hit.  Errors (unknown workload, invalid numerics, a golden
    run that itself fails) leave the scheduler unchanged. *)

val pump : t -> timeout:float -> event list
(** One scheduling step: start pending shards while worker slots are
    free, wait up to [timeout] seconds for worker progress, reap
    exited workers (completing, failing or requeuing their shards) and
    return the events that occurred. *)

val pipe_fds : t -> Unix.file_descr list
(** The live worker progress pipes — for the daemon's [select]. *)

val job_result :
  t -> int -> [ `Unknown | `Running | `Done of string list * int | `Failed of string ]
(** A job's terminal state: [`Done (table, requeues)] carries the
    rendered verdict table. *)

val idle : t -> bool
(** No shard pending or running. *)

val status_json : t -> Obs.Json.t
(** Service status: every job with per-shard progress (and worker
    pids), cache hit/miss totals, the golden-run count and the requeue
    count. *)

val golden_runs : t -> int
(** Number of golden simulations performed since start (the counter
    behind the "a cache hit runs no golden cycles" guarantee). *)

val cache_stats : t -> int * int
(** (hits, misses) of the golden-trace cache. *)

val obs : t -> Obs.t
(** The live collector (the caller's, or the private one). *)

val shutdown : t -> unit
(** Kill running workers (their journals resume on restart) and close
    the queue. *)
