(** Canonical text rendering of campaign verdict tables.

    Every consumer — `ricv campaign`, `ricv iss-campaign`, `ricv
    merge` and the daemon's shard-merge — formats through this module,
    so a served campaign's table is byte-identical to the direct run's
    by construction.  Lines carry no trailing newline. *)

val rtl_summary_lines :
  (Rtl.Circuit.fault_model * Fault_injection.Campaign.summary) list -> string list
(** One row per fault model, latency in cycles. *)

val iss_summary_lines :
  (Fault_injection.Iss_campaign.model * Fault_injection.Campaign.summary) list ->
  string list
(** One row per ISS model, latency in dynamic instructions. *)

val merged_lines :
  Fault_injection.Journal.fingerprint ->
  Fault_injection.Journal.run_result list ->
  (string list, string) result
(** The table for a merged journal set ({!Fault_injection.Journal.merge}
    output): ISS journals ([target = "iss"]) partition by site-name
    prefix and drop empty models; RTL journals take their model list
    from the fingerprint header ([Error] on an unknown model name). *)
