(* Wire protocol of the campaign service: newline-delimited JSON over
   a Unix or TCP socket, every value rendered/parsed with {!Obs.Json}
   so the daemon and client share the repo's single JSON codec. *)

module Json = Obs.Json

let max_request_bytes = 65536

type engine = Rtl | Iss

let engine_name = function Rtl -> "rtl" | Iss -> "iss"

let engine_of_name = function
  | "rtl" -> Some Rtl
  | "iss" -> Some Iss
  | _ -> None

type spec = {
  engine : engine;
  workload : string;
  iterations : int option;
  dataset : int;
  gate : bool;
  target : string;  (* "iu" | "cmem"; ignored by the ISS engine *)
  samples : int;
  seed : int;
  hang_factor : int;
  shards : int;
}

(* Defaults mirror the direct commands (`ricv campaign` samples 250,
   `ricv iss-campaign` samples 400) so a served run with no overrides
   prints the same table a flagless direct run prints. *)
let default_spec ~engine ~workload =
  { engine;
    workload;
    iterations = None;
    dataset = 0;
    gate = false;
    target = "iu";
    samples = (match engine with Rtl -> 250 | Iss -> 400);
    seed = 7;
    hang_factor = 4;
    shards = 1 }

let spec_to_json s =
  Json.Obj
    [ ("engine", Json.Str (engine_name s.engine));
      ("workload", Json.Str s.workload);
      ("iterations", match s.iterations with Some n -> Json.Int n | None -> Json.Null);
      ("dataset", Json.Int s.dataset);
      ("gate", Json.Bool s.gate);
      ("target", Json.Str s.target);
      ("samples", Json.Int s.samples);
      ("seed", Json.Int s.seed);
      ("hang_factor", Json.Int s.hang_factor);
      ("shards", Json.Int s.shards) ]

let ( let* ) = Result.bind

let field_int j name default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_int v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "field %S must be an integer" name))

let field_bool j name default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "field %S must be a boolean" name))

let field_str j name default =
  match Json.member name j with
  | None | Some Json.Null -> Ok default
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "field %S must be a string" name))

let spec_of_json j =
  let* engine =
    match Json.member "engine" j with
    | None -> Error "missing field \"engine\""
    | Some v -> (
        match Option.bind (Json.to_str v) engine_of_name with
        | Some e -> Ok e
        | None -> Error "field \"engine\" must be \"rtl\" or \"iss\"")
  in
  let* workload =
    match Option.bind (Json.member "workload" j) Json.to_str with
    | Some w -> Ok w
    | None -> Error "missing field \"workload\""
  in
  let d = default_spec ~engine ~workload in
  let* iterations =
    match Json.member "iterations" j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
        match Json.to_int v with
        | Some n -> Ok (Some n)
        | None -> Error "field \"iterations\" must be an integer")
  in
  let* dataset = field_int j "dataset" d.dataset in
  let* gate = field_bool j "gate" d.gate in
  let* target = field_str j "target" d.target in
  let* samples = field_int j "samples" d.samples in
  let* seed = field_int j "seed" d.seed in
  let* hang_factor = field_int j "hang_factor" d.hang_factor in
  let* shards = field_int j "shards" d.shards in
  Ok { engine; workload; iterations; dataset; gate; target; samples; seed;
       hang_factor; shards }

let max_shards = 64

let validate_spec s =
  if not (List.exists (fun e -> e.Workloads.Suite.name = s.workload) Workloads.Suite.all)
  then Error (Printf.sprintf "unknown workload %S" s.workload)
  else if (match s.iterations with Some n -> n < 1 | None -> false) then
    Error "iterations must be positive"
  else if s.dataset < 0 then Error "dataset must be non-negative"
  else if s.target <> "iu" && s.target <> "cmem" then
    Error (Printf.sprintf "unknown target %S (expected \"iu\" or \"cmem\")" s.target)
  else if s.samples < 1 then Error "samples must be positive"
  else if s.hang_factor < 1 then Error "hang_factor must be positive"
  else if s.shards < 1 || s.shards > max_shards then
    Error (Printf.sprintf "shards must be in 1..%d" max_shards)
  else Ok ()

type request =
  | Submit of { spec : spec; wait : bool }
  | Status of int option
  | Watch of int
  | Shutdown

let request_to_json = function
  | Submit { spec; wait } ->
      Json.Obj
        [ ("op", Json.Str "submit"); ("spec", spec_to_json spec);
          ("wait", Json.Bool wait) ]
  | Status None -> Json.Obj [ ("op", Json.Str "status") ]
  | Status (Some id) -> Json.Obj [ ("op", Json.Str "status"); ("job", Json.Int id) ]
  | Watch id -> Json.Obj [ ("op", Json.Str "watch"); ("job", Json.Int id) ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

let request_to_string r = Json.to_string (request_to_json r)

let parse_request line =
  if String.length line > max_request_bytes then
    Error
      (Printf.sprintf "request exceeds %d bytes (%d)" max_request_bytes
         (String.length line))
  else
    let* j = Json.of_string line in
    match Option.bind (Json.member "op" j) Json.to_str with
    | None -> Error "missing field \"op\""
    | Some "submit" -> (
        match Json.member "spec" j with
        | None -> Error "submit: missing field \"spec\""
        | Some sj ->
            let* spec = spec_of_json sj in
            let* wait = field_bool j "wait" true in
            Ok (Submit { spec; wait }))
    | Some "status" -> (
        match Json.member "job" j with
        | None | Some Json.Null -> Ok (Status None)
        | Some v -> (
            match Json.to_int v with
            | Some id -> Ok (Status (Some id))
            | None -> Error "field \"job\" must be an integer"))
    | Some "watch" -> (
        match Option.bind (Json.member "job" j) Json.to_int with
        | Some id -> Ok (Watch id)
        | None -> Error "watch: missing integer field \"job\"")
    | Some "shutdown" -> Ok Shutdown
    | Some op -> Error (Printf.sprintf "unknown op %S" op)

let error_json msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
