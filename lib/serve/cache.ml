(* Content-addressed cache of campaign preparations (golden run +
   static analysis + replay plan).  The key is the canonical JSON of
   every spec field that reaches the preparation — the program hash
   stands in for (workload, iterations, dataset), and the shard count
   is excluded because preparations are shard-independent — so a
   repeat or concurrent submission of the same campaign never re-runs
   the golden simulation or [build_static]. *)

module Json = Obs.Json

type value =
  | Rtl_prepared of Fault_injection.Campaign.prepared
  | Iss_prepared of Fault_injection.Iss_campaign.prepared

type t = {
  capacity : int;
  obs : Obs.t;
  mutable entries : (string * value) list;  (* most recently used first *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(obs = Obs.null) ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  { capacity; obs; entries = []; hits = 0; misses = 0 }

let key ~prog_hash (spec : Protocol.spec) =
  Json.to_string
    (Json.Obj
       [ ("engine", Json.Str (Protocol.engine_name spec.Protocol.engine));
         ("prog_hash", Json.Int prog_hash);
         ("gate", Json.Bool spec.Protocol.gate);
         ("target", Json.Str spec.Protocol.target);
         ("samples", Json.Int spec.Protocol.samples);
         ("seed", Json.Int spec.Protocol.seed);
         ("hang_factor", Json.Int spec.Protocol.hang_factor) ])

let rec take n = function
  | [] -> []
  | _ when n = 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let find_or_build t ~key ~build =
  match List.assoc_opt key t.entries with
  | Some v ->
      t.hits <- t.hits + 1;
      Obs.incr t.obs "serve.cache.hits";
      t.entries <- (key, v) :: List.remove_assoc key t.entries;
      (v, true)
  | None ->
      t.misses <- t.misses + 1;
      Obs.incr t.obs "serve.cache.misses";
      let v = build () in
      t.entries <- take t.capacity ((key, v) :: t.entries);
      (v, false)

let hits t = t.hits

let misses t = t.misses
