(** Persistent on-disk job queue for the campaign service.

    One append-only JSONL file, [DIR/queue.jsonl], records the queue's
    history: a header, one [job] record per submission, one
    [shard-done] record per completed shard, and a terminal
    [job-done]/[job-failed] record per job.  Every append is fsync'd;
    opening the queue replays the log (tolerating a torn final line
    from a crash mid-append), compacts it with an atomic rewrite
    ([.tmp] + rename + directory fsync — the {!Fault_injection.Journal}
    durability discipline) and returns every job with its completion
    state, so a daemon restart resumes exactly the unfinished shards.

    Shard verdicts themselves live in per-job campaign journals,
    [DIR/job-N/shard-K.jsonl]; the queue only tracks their
    completion. *)

type job_record = {
  id : int;
  spec : Protocol.spec;
  done_shards : int list;  (** ascending shard indices *)
  finished : [ `Open | `Done | `Failed of string ];
}

type t

val open_ : string -> (t * job_record list, string) result
(** Open (creating the directory and file if needed) and replay the
    queue at [DIR].  Stale [queue.jsonl.tmp] debris is removed; a torn
    final record is dropped; any other malformed record is an
    [Error].  Jobs are returned in submission order. *)

val next_id : t -> int
(** Allocate the next job id (monotonic across restarts). *)

val job_dir : t -> int -> string

val shard_journal : t -> job:int -> shard:int -> string

val summary_path : t -> int -> string

val append_job : t -> int -> Protocol.spec -> unit
(** Record a submission (creating its job directory) and fsync. *)

val mark_shard_done : t -> job:int -> shard:int -> unit

val mark_job_done : t -> int -> unit

val mark_job_failed : t -> int -> reason:string -> unit

val close : t -> unit
