(* The one source of truth for campaign verdict tables.  `ricv
   campaign`, `ricv iss-campaign`, `ricv merge` and the daemon's
   shard-merge all format through these functions, which is what makes
   "served output is byte-identical to the direct run's" a property of
   the code rather than of parallel printf discipline. *)

module Campaign = Fault_injection.Campaign
module Iss_campaign = Fault_injection.Iss_campaign
module Journal = Fault_injection.Journal

(* One verdict row; [unit_] is "cycles" (RTL) or "instructions" (ISS —
   campaign mode has no cycle-accurate clock). *)
let summary_line ~unit_ name (s : Campaign.summary) =
  Printf.sprintf
    "%-11s Pf=%5.1f%%  (%d/%d: wrong-writes %d, missing %d, traps %d, hangs %d)  \
     max latency %d %s"
    name (Campaign.pf_percent s) s.Campaign.failures s.Campaign.injections
    s.Campaign.wrong_writes s.Campaign.missing_writes s.Campaign.traps
    s.Campaign.hangs s.Campaign.max_latency unit_

let rtl_summary_lines summaries =
  List.map
    (fun (model, s) -> summary_line ~unit_:"cycles" (Rtl.Circuit.fault_model_name model) s)
    summaries

let iss_summary_lines summaries =
  List.map
    (fun (model, s) ->
      summary_line ~unit_:"instructions" (Iss_campaign.model_name model) s)
    summaries

let merged_lines (fp : Journal.fingerprint) results =
  (* ISS journals record every verdict under the RTL bit-flip model
     and carry the ISS model class in the site-name prefix; partition
     them back rather than printing one opaque row. *)
  if fp.Journal.target = Iss_campaign.target_name then
    Ok
      (iss_summary_lines
         (List.filter
            (fun (_, (s : Campaign.summary)) -> s.Campaign.injections > 0)
            (Iss_campaign.summaries_by_model Iss_campaign.all_models results)))
  else
    let rec models acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match Journal.model_of_name name with
          | Some m -> models (m :: acc) rest
          | None -> Error (Printf.sprintf "unknown fault model %S in journal header" name))
    in
    match models [] fp.Journal.models with
    | Error _ as e -> e
    | Ok models ->
        Ok
          (rtl_summary_lines
             (List.map
                (fun model ->
                  ( model,
                    Campaign.summarize
                      (List.filter
                         (fun (r : Journal.run_result) -> r.Journal.model = model)
                         results) ))
                models))
