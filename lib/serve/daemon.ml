(* The `ricv serve` daemon: a single-threaded select loop over one
   listening socket, any number of newline-delimited-JSON clients, and
   the scheduler's worker pipes.  All campaign work happens in forked
   worker processes ({!Scheduler}); the loop itself only parses
   requests, routes progress events to watching clients and logs. *)

module Json = Obs.Json

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let addr_of_string s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (Unix_sock (after "unix:"))
  else if prefixed "tcp:" then
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "invalid tcp address %S: expected tcp:HOST:PORT" s)
    | Some k -> (
        let host = String.sub rest 0 k in
        let port = String.sub rest (k + 1) (String.length rest - k - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "invalid port in %S" s))
  else Ok (Unix_sock s)  (* a bare path is a unix socket *)

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> raise Not_found
          | h -> h.Unix.h_addr_list.(0))
      in
      Unix.ADDR_INET (ip, port)

(* ---- clients ---- *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable alive : bool;
}

let send_line c line =
  if c.alive then
    let s = line ^ "\n" in
    let n = String.length s in
    let rec go off =
      if off < n then go (off + Unix.write_substring c.fd s off (n - off))
    in
    try go 0 with Unix.Unix_error _ -> c.alive <- false

let send_json c j = send_line c (Json.to_string j)

(* ---- events -> wire ---- *)

let event_json = function
  | Scheduler.Progress { job; shard; done_; total } ->
      Json.Obj
        [ ("event", Json.Str "progress"); ("job", Json.Int job);
          ("shard", Json.Int shard); ("done", Json.Int done_);
          ("total", Json.Int total) ]
  | Scheduler.Requeued { job; shard; attempt } ->
      Json.Obj
        [ ("event", Json.Str "requeued"); ("job", Json.Int job);
          ("shard", Json.Int shard); ("attempt", Json.Int attempt) ]
  | Scheduler.Job_done { job; table; requeues } ->
      Json.Obj
        [ ("event", Json.Str "done"); ("job", Json.Int job);
          ("table", Json.List (List.map (fun l -> Json.Str l) table));
          ("requeues", Json.Int requeues) ]
  | Scheduler.Job_failed { job; reason } ->
      Json.Obj
        [ ("event", Json.Str "failed"); ("job", Json.Int job);
          ("reason", Json.Str reason) ]

let done_event table requeues job =
  Scheduler.Job_done { job; table; requeues }

(* ---- the loop ---- *)

let serve ?obs ?workers ?max_retries ?cache_capacity ?(log = prerr_endline) ~dir addr =
  (* a worker or client death mid-write must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener =
    match addr with
    | Unix_sock path ->
        if Sys.file_exists path then Sys.remove path;
        Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Tcp _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        fd
  in
  let clients = ref [] in
  let on_fork_child () =
    (* workers must not hold the service's sockets open *)
    (try Unix.close listener with Unix.Unix_error _ -> ());
    List.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      !clients
  in
  match
    Scheduler.create ?obs ?workers ?max_retries ?cache_capacity ~on_fork_child ~dir ()
  with
  | Error e ->
      Unix.close listener;
      Error e
  | Ok sched -> (
      match Unix.bind listener (sockaddr_of addr) with
      | exception e ->
          Unix.close listener;
          Error (Printf.sprintf "bind %s: %s" (addr_to_string addr) (Printexc.to_string e))
      | () ->
          Unix.listen listener 16;
          log (Printf.sprintf "ricv-serve: listening on %s (dir %s)"
                 (addr_to_string addr) dir);
          let watchers : (int, client list ref) Hashtbl.t = Hashtbl.create 8 in
          let watch job c =
            match Hashtbl.find_opt watchers job with
            | Some l -> l := c :: !l
            | None -> Hashtbl.replace watchers job (ref [ c ])
          in
          let notify job ev =
            match Hashtbl.find_opt watchers job with
            | None -> ()
            | Some l ->
                List.iter (fun c -> send_json c (event_json ev)) !l;
                (match ev with
                | Scheduler.Job_done _ | Scheduler.Job_failed _ ->
                    Hashtbl.remove watchers job
                | _ -> ())
          in
          let stop = ref false in
          let handle_request c = function
            | Protocol.Submit { spec; wait } -> (
                match Scheduler.submit sched spec with
                | Error e -> send_json c (Protocol.error_json e)
                | Ok (id, hit) ->
                    log
                      (Printf.sprintf
                         "ricv-serve: job %d submitted (%s on %s, %d shard%s, golden \
                          cache %s)"
                         id
                         (Protocol.engine_name spec.Protocol.engine)
                         spec.Protocol.workload spec.Protocol.shards
                         (if spec.Protocol.shards = 1 then "" else "s")
                         (if hit then "hit" else "miss"));
                    send_json c
                      (Json.Obj
                         [ ("ok", Json.Bool true); ("job", Json.Int id);
                           ("cache", Json.Str (if hit then "hit" else "miss")) ]);
                    if wait then watch id c)
            | Protocol.Status which -> (
                let status = Scheduler.status_json sched in
                match which with
                | None -> send_json c status
                | Some id -> (
                    let entry =
                      match Json.member "jobs" status with
                      | Some (Json.List jobs) ->
                          List.find_opt
                            (fun j ->
                              Option.bind (Json.member "id" j) Json.to_int = Some id)
                            jobs
                      | _ -> None
                    in
                    match entry with
                    | Some j -> send_json c (Json.Obj [ ("ok", Json.Bool true); ("job", j) ])
                    | None ->
                        send_json c
                          (Protocol.error_json (Printf.sprintf "unknown job %d" id))))
            | Protocol.Watch id -> (
                match Scheduler.job_result sched id with
                | `Unknown ->
                    send_json c (Protocol.error_json (Printf.sprintf "unknown job %d" id))
                | `Running -> watch id c
                | `Done (table, requeues) ->
                    send_json c (event_json (done_event table requeues id))
                | `Failed reason ->
                    send_json c
                      (event_json (Scheduler.Job_failed { job = id; reason })))
            | Protocol.Shutdown ->
                send_json c (Json.Obj [ ("ok", Json.Bool true) ]);
                log "ricv-serve: shutdown requested";
                stop := true
          in
          let handle_line c line =
            match Protocol.parse_request line with
            | Error e -> send_json c (Protocol.error_json e)
            | Ok req -> handle_request c req
          in
          let read_client c =
            let bytes = Bytes.create 4096 in
            match Unix.read c.fd bytes 0 4096 with
            | 0 -> c.alive <- false
            | n -> (
                Buffer.add_subbytes c.buf bytes 0 n;
                let s = Buffer.contents c.buf in
                match String.rindex_opt s '\n' with
                | None ->
                    if Buffer.length c.buf > Protocol.max_request_bytes then begin
                      send_json c
                        (Protocol.error_json
                           (Printf.sprintf "request exceeds %d bytes"
                              Protocol.max_request_bytes));
                      c.alive <- false
                    end
                | Some last ->
                    Buffer.clear c.buf;
                    Buffer.add_string c.buf
                      (String.sub s (last + 1) (String.length s - last - 1));
                    List.iter
                      (fun line -> if line <> "" && c.alive then handle_line c line)
                      (String.split_on_char '\n' (String.sub s 0 last)))
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error _ -> c.alive <- false
          in
          while not !stop do
            let cfds = List.map (fun c -> c.fd) !clients in
            let wfds = Scheduler.pipe_fds sched in
            (match Unix.select ((listener :: cfds) @ wfds) [] [] 0.2 with
            | readable, _, _ ->
                if List.mem listener readable then begin
                  let fd, _ = Unix.accept listener in
                  clients := { fd; buf = Buffer.create 256; alive = true } :: !clients
                end;
                List.iter
                  (fun c -> if List.mem c.fd readable then read_client c)
                  !clients
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            List.iter
              (fun ev ->
                (match ev with
                | Scheduler.Progress _ -> ()
                | Scheduler.Requeued { job; shard; attempt } ->
                    log
                      (Printf.sprintf
                         "ricv-serve: job %d shard %d requeued after worker death \
                          (attempt %d)"
                         job shard attempt)
                | Scheduler.Job_done { job; requeues; _ } ->
                    log
                      (Printf.sprintf "ricv-serve: job %d done (%d requeue%s)" job
                         requeues
                         (if requeues = 1 then "" else "s"))
                | Scheduler.Job_failed { job; reason } ->
                    log (Printf.sprintf "ricv-serve: job %d failed: %s" job reason));
                match ev with
                | Scheduler.Progress { job; _ }
                | Scheduler.Requeued { job; _ }
                | Scheduler.Job_done { job; _ }
                | Scheduler.Job_failed { job; _ } ->
                    notify job ev)
              (Scheduler.pump sched ~timeout:0.);
            (* drop dead clients and their watch registrations *)
            let dead, live = List.partition (fun c -> not c.alive) !clients in
            if dead <> [] then begin
              clients := live;
              List.iter
                (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
                dead;
              Hashtbl.iter
                (fun _ l -> l := List.filter (fun c -> c.alive) !l)
                watchers
            end
          done;
          Scheduler.shutdown sched;
          List.iter
            (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
            !clients;
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (match addr with
          | Unix_sock path -> if Sys.file_exists path then Sys.remove path
          | Tcp _ -> ());
          log "ricv-serve: stopped (running shards killed; their journals resume \
               on restart)";
          Ok ())
