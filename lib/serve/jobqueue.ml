(* Persistent on-disk job queue: one JSONL file under the service
   directory, written with the same discipline as the campaign
   journals ({!Fault_injection.Journal}) — append + fsync per record,
   torn-tail-tolerant load, atomic rewrite on open, stale [.tmp]
   debris removed, parent directory fsync'd after renames. *)

module Json = Obs.Json
module Journal = Fault_injection.Journal

type record =
  | R_job of int * Protocol.spec
  | R_shard_done of int * int
  | R_job_done of int
  | R_job_failed of int * string

type job_record = {
  id : int;
  spec : Protocol.spec;
  done_shards : int list;  (* ascending *)
  finished : [ `Open | `Done | `Failed of string ];
}

type t = {
  dir : string;
  path : string;
  mutable fd : Unix.file_descr option;
  mutable next_id : int;
}

let header_line = {|{"type":"queue-header","version":1}|}

let record_to_json = function
  | R_job (id, spec) ->
      Json.Obj
        [ ("type", Json.Str "job"); ("id", Json.Int id);
          ("spec", Protocol.spec_to_json spec) ]
  | R_shard_done (job, shard) ->
      Json.Obj
        [ ("type", Json.Str "shard-done"); ("job", Json.Int job);
          ("shard", Json.Int shard) ]
  | R_job_done job -> Json.Obj [ ("type", Json.Str "job-done"); ("job", Json.Int job) ]
  | R_job_failed (job, reason) ->
      Json.Obj
        [ ("type", Json.Str "job-failed"); ("job", Json.Int job);
          ("reason", Json.Str reason) ]

let record_of_json j =
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "missing integer field %S" name)
  in
  let ( let* ) = Result.bind in
  match Option.bind (Json.member "type" j) Json.to_str with
  | Some "job" ->
      let* id = int_field "id" in
      let* spec =
        match Json.member "spec" j with
        | Some sj -> Protocol.spec_of_json sj
        | None -> Error "job record: missing field \"spec\""
      in
      Ok (R_job (id, spec))
  | Some "shard-done" ->
      let* job = int_field "job" in
      let* shard = int_field "shard" in
      Ok (R_shard_done (job, shard))
  | Some "job-done" ->
      let* job = int_field "job" in
      Ok (R_job_done job)
  | Some "job-failed" ->
      let* job = int_field "job" in
      let reason =
        match Option.bind (Json.member "reason" j) Json.to_str with
        | Some r -> r
        | None -> "unknown"
      in
      Ok (R_job_failed (job, reason))
  | Some other -> Error (Printf.sprintf "unknown queue record type %S" other)
  | None -> Error "queue record: missing field \"type\""

(* ---- load ---- *)

let split_lines s =
  (* keep a trailing fragment (no '\n') separate: it is the torn tail *)
  let n = String.length s in
  let rec go acc start =
    match String.index_from_opt s start '\n' with
    | Some k -> go (String.sub s start (k - start) :: acc) (k + 1)
    | None ->
        let tail = if start >= n then None else Some (String.sub s start (n - start)) in
        (List.rev acc, tail)
  in
  go [] 0

let parse_contents contents =
  let lines, _torn = split_lines contents in
  match lines with
  | [] -> Error "empty queue file"
  | header :: rest ->
      if
        (match Json.of_string header with
        | Ok j -> Option.bind (Json.member "type" j) Json.to_str <> Some "queue-header"
        | Error _ -> true)
      then Error "queue file: bad header"
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              match Json.of_string line with
              | Error _ when rest = [] -> Ok (List.rev acc)  (* torn final line *)
              | Error e -> Error (Printf.sprintf "queue file: %s" e)
              | Ok j -> (
                  match record_of_json j with
                  | Ok r -> go (r :: acc) rest
                  | Error _ when rest = [] -> Ok (List.rev acc)
                  | Error e -> Error (Printf.sprintf "queue file: %s" e)))
        in
        go [] rest

let fold_records records =
  (* job table in submission order *)
  let jobs = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (function
      | R_job (id, spec) ->
          if not (Hashtbl.mem jobs id) then begin
            Hashtbl.replace jobs id
              { id; spec; done_shards = []; finished = `Open };
            order := id :: !order
          end
      | R_shard_done (id, k) -> (
          match Hashtbl.find_opt jobs id with
          | Some r when not (List.mem k r.done_shards) ->
              Hashtbl.replace jobs id { r with done_shards = r.done_shards @ [ k ] }
          | _ -> ())
      | R_job_done id -> (
          match Hashtbl.find_opt jobs id with
          | Some r -> Hashtbl.replace jobs id { r with finished = `Done }
          | None -> ())
      | R_job_failed (id, reason) -> (
          match Hashtbl.find_opt jobs id with
          | Some r -> Hashtbl.replace jobs id { r with finished = `Failed reason }
          | None -> ()))
    records;
  List.rev_map (fun id -> Hashtbl.find jobs id) !order

(* ---- writing ---- *)

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let append t record =
  match t.fd with
  | None -> invalid_arg "Jobqueue: closed"
  | Some fd ->
      write_all fd (Json.to_string (record_to_json record) ^ "\n");
      (try Unix.fsync fd with Unix.Unix_error _ -> ())

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ dir =
  mkdir_p dir;
  let path = Filename.concat dir "queue.jsonl" in
  let tmp = path ^ ".tmp" in
  (* debris from a kill mid-rewrite: incomplete by construction, the
     real file still has the pre-rewrite contents *)
  if Sys.file_exists tmp then Sys.remove tmp;
  let finish records =
    (* atomic compacting rewrite: well-formed records only, torn tail
       dropped, then rename over the old file and fsync the dir *)
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    write_all fd (header_line ^ "\n");
    List.iter (fun r -> write_all fd (Json.to_string (record_to_json r) ^ "\n")) records;
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd;
    Sys.rename tmp path;
    Journal.fsync_dir dir;
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
    let jobs = fold_records records in
    let next_id = List.fold_left (fun acc r -> max acc (r.id + 1)) 1 jobs in
    Ok ({ dir; path; fd = Some fd; next_id }, jobs)
  in
  if not (Sys.file_exists path) then finish []
  else
    let contents = In_channel.with_open_bin path In_channel.input_all in
    match parse_contents contents with
    | Error _ as e -> e
    | Ok records -> finish records

let next_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let job_dir t id = Filename.concat t.dir (Printf.sprintf "job-%d" id)

let shard_journal t ~job ~shard =
  Filename.concat (job_dir t job) (Printf.sprintf "shard-%d.jsonl" shard)

let summary_path t id = Filename.concat (job_dir t id) "summary.txt"

let append_job t id spec =
  mkdir_p (job_dir t id);
  append t (R_job (id, spec))

let mark_shard_done t ~job ~shard = append t (R_shard_done (job, shard))

let mark_job_done t id = append t (R_job_done id)

let mark_job_failed t id ~reason = append t (R_job_failed (id, reason))

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd;
      t.fd <- None
