(** Content-addressed golden-trace + static-analysis cache.

    Stores {!Fault_injection.Campaign.prepared} /
    {!Fault_injection.Iss_campaign.prepared} values under a canonical
    key derived from every spec field the preparation depends on.  A
    hit means a repeat (or concurrent shard of a) submission runs no
    golden simulation and no static analysis; the consuming campaign
    still validates the preparation's fingerprint against its own, so
    a key collision cannot splice a foreign golden trace in.  LRU
    bounded; single-threaded (the daemon's event loop owns it). *)

type value =
  | Rtl_prepared of Fault_injection.Campaign.prepared
  | Iss_prepared of Fault_injection.Iss_campaign.prepared

type t

val create : ?obs:Obs.t -> ?capacity:int -> unit -> t
(** [capacity] (default 8) bounds retained preparations, evicting the
    least recently used.  Hits and misses are counted on [obs] as
    [serve.cache.hits] / [serve.cache.misses]. *)

val key : prog_hash:int -> Protocol.spec -> string
(** The content address: engine, program hash (which binds workload,
    iterations and dataset), gate-level flag, target, sample size,
    seed and hang factor.  The shard count is deliberately absent —
    preparations are shard-independent. *)

val find_or_build : t -> key:string -> build:(unit -> value) -> value * bool
(** Return the cached value and [true], or [build ()], remember it
    and return [false].  [build]'s exceptions propagate and cache
    nothing. *)

val hits : t -> int

val misses : t -> int
