(** The `ricv serve` daemon.

    One single-threaded select loop over a listening socket (Unix or
    TCP), the connected clients and the scheduler's worker pipes.
    Requests and replies are newline-delimited JSON ({!Protocol});
    campaign execution happens in forked worker processes
    ({!Scheduler}), so a worker crash never takes the service down —
    the shard is requeued and resumes from its journal. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_to_string : addr -> string
(** ["unix:PATH"] / ["tcp:HOST:PORT"]. *)

val addr_of_string : string -> (addr, string) result
(** Inverse of {!addr_to_string}; a bare path is a Unix socket. *)

val sockaddr_of : addr -> Unix.sockaddr
(** Resolve for bind/connect (may raise on an unresolvable host). *)

val serve :
  ?obs:Obs.t ->
  ?workers:int ->
  ?max_retries:int ->
  ?cache_capacity:int ->
  ?log:(string -> unit) ->
  dir:string ->
  addr ->
  (unit, string) result
(** Run the service until a [shutdown] request: bind [addr] (a stale
    Unix socket file is replaced), recover the queue at [dir], then
    loop.  [log] (default stderr) receives one line per lifecycle
    event — listening, submission, requeue, completion, failure,
    shutdown.  On shutdown, running workers are killed; their journals
    resume byte-identically when the service restarts on the same
    [dir]. *)
