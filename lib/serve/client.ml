(* Blocking client for the campaign service — what `ricv submit` and
   `ricv status` are built on, and what the tests drive the daemon
   with. *)

module Json = Obs.Json

type t = { fd : Unix.file_descr; buf : Buffer.t }

let connect addr =
  match
    let fd =
      match addr with
      | Daemon.Unix_sock _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
      | Daemon.Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
    in
    match Unix.connect fd (Daemon.sockaddr_of addr) with
    | () -> Ok { fd; buf = Buffer.create 256 }
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  with
  | v -> v
  | exception e ->
      Error
        (Printf.sprintf "cannot connect to %s: %s" (Daemon.addr_to_string addr)
           (Printexc.to_string e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring t.fd s off (n - off))
  in
  match go 0 with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

let rec recv_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | Some k ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub s (k + 1) (String.length s - k - 1));
      Ok (String.sub s 0 k)
  | None -> (
      let bytes = Bytes.create 4096 in
      match Unix.read t.fd bytes 0 4096 with
      | 0 -> Error "connection closed by server"
      | n ->
          Buffer.add_subbytes t.buf bytes 0 n;
          recv_line t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_line t
      | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "recv failed: %s" (Unix.error_message e)))

let ( let* ) = Result.bind

let recv_json t =
  let* line = recv_line t in
  Json.of_string line

(* One request, one reply line.  A reply carrying ["ok": false] is
   surfaced as its ["error"] field. *)
let request t req =
  let* () = send t (Protocol.request_to_string req) in
  let* j = recv_json t in
  match Json.member "ok" j with
  | Some (Json.Bool false) -> (
      match Option.bind (Json.member "error" j) Json.to_str with
      | Some e -> Error e
      | None -> Error "server error")
  | _ -> Ok j

let submit t ?(wait = true) spec =
  let* j = request t (Protocol.Submit { spec; wait }) in
  match
    ( Option.bind (Json.member "job" j) Json.to_int,
      Option.bind (Json.member "cache" j) Json.to_str )
  with
  | Some id, Some cache -> Ok (id, cache = "hit")
  | _ -> Error "malformed submit reply"

(* Stream events until the watched job finishes.  Returns the rendered
   verdict table and the requeue count; a failed job is an [Error]. *)
let wait_done ?(on_progress = fun ~shard:_ ~done_:_ ~total:_ -> ())
    ?(on_requeued = fun ~shard:_ ~attempt:_ -> ()) t =
  let rec loop () =
    let* j = recv_json t in
    match Option.bind (Json.member "event" j) Json.to_str with
    | Some "progress" ->
        (match
           ( Option.bind (Json.member "shard" j) Json.to_int,
             Option.bind (Json.member "done" j) Json.to_int,
             Option.bind (Json.member "total" j) Json.to_int )
         with
        | Some shard, Some done_, Some total -> on_progress ~shard ~done_ ~total
        | _ -> ());
        loop ()
    | Some "requeued" ->
        (match
           ( Option.bind (Json.member "shard" j) Json.to_int,
             Option.bind (Json.member "attempt" j) Json.to_int )
         with
        | Some shard, Some attempt -> on_requeued ~shard ~attempt
        | _ -> ());
        loop ()
    | Some "done" -> (
        let requeues =
          match Option.bind (Json.member "requeues" j) Json.to_int with
          | Some n -> n
          | None -> 0
        in
        match Json.member "table" j with
        | Some (Json.List lines) ->
            let table = List.filter_map Json.to_str lines in
            Ok (table, requeues)
        | _ -> Error "malformed done event")
    | Some "failed" -> (
        match Option.bind (Json.member "reason" j) Json.to_str with
        | Some r -> Error (Printf.sprintf "job failed: %s" r)
        | None -> Error "job failed")
    | _ -> (
        (* an error reply instead of an event *)
        match Option.bind (Json.member "error" j) Json.to_str with
        | Some e -> Error e
        | None -> loop ())
  in
  loop ()

let watch t id =
  let* () = send t (Protocol.request_to_string (Protocol.Watch id)) in
  Ok ()

let status ?job t = request t (Protocol.Status job)

let shutdown t =
  let* _ = request t Protocol.Shutdown in
  Ok ()
