(** Wire protocol of the campaign service: newline-delimited JSON
    (one value per line, {!Obs.Json} as the codec) over a Unix or TCP
    socket.  Every request is one line; every reply is one line; a
    watched job additionally streams one event object per line until
    its terminal [done]/[failed] event. *)

module Json = Obs.Json

val max_request_bytes : int
(** Upper bound on one request line; longer lines are rejected before
    parsing (and the daemon drops clients that exceed it mid-line). *)

type engine = Rtl | Iss

val engine_name : engine -> string

val engine_of_name : string -> engine option

(** A campaign specification — the serialisable subset of
    {!Fault_injection.Campaign.config} / {!Fault_injection.Iss_campaign.config}
    plus the workload coordinates, exactly what `ricv campaign` /
    `ricv iss-campaign` take on the command line. *)
type spec = {
  engine : engine;
  workload : string;
  iterations : int option;  (** [None] = the workload's default *)
  dataset : int;
  gate : bool;  (** RTL only: gate-level IU elaboration *)
  target : string;  (** RTL only: ["iu"] or ["cmem"] *)
  samples : int;  (** RTL: total sites; ISS: sites per model *)
  seed : int;
  hang_factor : int;
  shards : int;  (** shard count; the daemon schedules all of 1..N *)
}

val default_spec : engine:engine -> workload:string -> spec
(** The flagless direct run: samples 250 (RTL) / 400 (ISS), seed 7,
    hang factor 4, dataset 0, behavioural elaboration, target [iu],
    one shard. *)

val spec_to_json : spec -> Json.t

val spec_of_json : Json.t -> (spec, string) result
(** Missing optional fields take their {!default_spec} values;
    [engine] and [workload] are required. *)

val max_shards : int

val validate_spec : spec -> (unit, string) result
(** Reject unknown workloads/targets and out-of-range numerics before
    any simulation is attempted. *)

type request =
  | Submit of { spec : spec; wait : bool }
      (** enqueue a campaign; with [wait], stream its events on this
          connection after the acknowledgement *)
  | Status of int option  (** service status, or one job's *)
  | Watch of int  (** stream a job's events until it finishes *)
  | Shutdown  (** stop the daemon (running shards are killed; their
                  journals resume on restart) *)

val request_to_json : request -> Json.t

val request_to_string : request -> string

val parse_request : string -> (request, string) result
(** Parse one request line; oversized or malformed input is an
    [Error] (the daemon replies with {!error_json} and keeps the
    connection). *)

val error_json : string -> Json.t
(** [{"ok":false,"error":msg}]. *)
