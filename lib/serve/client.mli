(** Blocking client for the campaign service (`ricv submit` / `ricv
    status` / tests). *)

type t

val connect : Daemon.addr -> (t, string) result

val close : t -> unit

val request : t -> Protocol.request -> (Obs.Json.t, string) result
(** One request, one reply line; an ["ok": false] reply surfaces as
    [Error] with its ["error"] text. *)

val submit : t -> ?wait:bool -> Protocol.spec -> (int * bool, string) result
(** Returns (job id, golden-cache hit).  With [wait] (the default) the
    connection then streams the job's events — consume them with
    {!wait_done}. *)

val wait_done :
  ?on_progress:(shard:int -> done_:int -> total:int -> unit) ->
  ?on_requeued:(shard:int -> attempt:int -> unit) ->
  t ->
  (string list * int, string) result
(** Read events until the watched job finishes; returns the rendered
    verdict table and the requeue count.  A failed job is an
    [Error]. *)

val watch : t -> int -> (unit, string) result
(** Ask the daemon to stream an existing job's events on this
    connection (follow with {!wait_done}). *)

val status : ?job:int -> t -> (Obs.Json.t, string) result

val shutdown : t -> (unit, string) result
