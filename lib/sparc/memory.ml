(* Pages of 1024 words (4 KiB), allocated on first touch. *)

let page_words = 1024
let page_shift = 10

type t = { pages : (int, int array) Hashtbl.t }

exception Misaligned of int

let create () = { pages = Hashtbl.create 64 }

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.add pages k (Array.copy v)) t.pages;
  { pages }

let page_of t widx =
  let key = widx lsr page_shift in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
      let p = Array.make page_words 0 in
      Hashtbl.add t.pages key p;
      p

let load_word t addr =
  let addr = addr land 0xFFFF_FFFF in
  if addr land 3 <> 0 then raise (Misaligned addr);
  let widx = addr lsr 2 in
  let key = widx lsr page_shift in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p.(widx land (page_words - 1))
  | None -> 0

let store_word t addr v =
  let addr = addr land 0xFFFF_FFFF in
  if addr land 3 <> 0 then raise (Misaligned addr);
  let widx = addr lsr 2 in
  (page_of t widx).(widx land (page_words - 1)) <- v land 0xFFFF_FFFF

(* Big-endian byte numbering: byte 0 of a word is its most significant. *)
let byte_shift addr = 8 * (3 - (addr land 3))

let load_byte t addr =
  let addr = addr land 0xFFFF_FFFF in
  let w = load_word t (addr land lnot 3) in
  (w lsr byte_shift addr) land 0xFF

let store_byte t addr v =
  let addr = addr land 0xFFFF_FFFF in
  let word_addr = addr land lnot 3 in
  let sh = byte_shift addr in
  let w = load_word t word_addr in
  store_word t word_addr ((w land lnot (0xFF lsl sh)) lor ((v land 0xFF) lsl sh))

let half_shift addr = 8 * (2 - (addr land 2))

let load_half t addr =
  let addr = addr land 0xFFFF_FFFF in
  if addr land 1 <> 0 then raise (Misaligned addr);
  let w = load_word t (addr land lnot 3) in
  (w lsr half_shift addr) land 0xFFFF

let store_half t addr v =
  let addr = addr land 0xFFFF_FFFF in
  if addr land 1 <> 0 then raise (Misaligned addr);
  let word_addr = addr land lnot 3 in
  let sh = half_shift addr in
  let w = load_word t word_addr in
  store_word t word_addr ((w land lnot (0xFFFF lsl sh)) lor ((v land 0xFFFF) lsl sh))

let blit_words t base words =
  Array.iteri (fun i w -> store_word t (base + (4 * i)) w) words

let read_words t base n = Array.init n (fun i -> load_word t (base + (4 * i)))

(* Pages are allocated on first touch, so two images with the same
   words can differ in page population — an all-zero page equals an
   absent one. *)
let zero_page = Array.make page_words 0

let page_equal a b =
  let rec go i = i >= page_words || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let equal a b =
  let covers x y =
    Hashtbl.fold
      (fun key page acc ->
        acc
        && page_equal page
             (match Hashtbl.find_opt y.pages key with Some p -> p | None -> zero_page))
      x.pages true
  in
  covers a b && covers b a

let iter_nonzero t f =
  Hashtbl.iter
    (fun key page ->
      Array.iteri
        (fun i v -> if v <> 0 then f (((key lsl page_shift) lor i) lsl 2) v)
        page)
    t.pages

(* splitmix-style finaliser: every input bit reaches every output bit,
   so structured (address, value) pairs don't cancel under addition.
   Multipliers are the splitmix64 constants truncated to OCaml's 63-bit
   int range (still odd, so still bijective). *)
let mix x =
  let x = x * 0x1E3779B97F4A7C15 in
  let x = (x lxor (x lsr 29)) * 0x3F58476D1CE4E5B9 in
  let x = (x lxor (x lsr 32)) * 0x14D049BB133111EB in
  x lxor (x lsr 30)

let hash t =
  (* Hashtbl iteration order depends on insertion history, so equal
     contents must combine commutatively: each page folds its nonzero
     words in index order (deterministic) into a per-page hash keyed by
     the page index, and pages combine by modular addition.  An
     all-zero page contributes nothing — the same blindness to
     first-touch allocation that [equal] has. *)
  let h = ref 0 in
  Hashtbl.iter
    (fun key page ->
      let ph = ref 0 in
      Array.iteri
        (fun i v -> if v <> 0 then ph := mix (!ph lxor mix ((i lsl 32) lor v)))
        page;
      if !ph <> 0 then h := !h + mix (!ph lxor mix key))
    t.pages;
  !h land max_int
