(** Sparse byte-addressed 32-bit memory, big-endian (SPARC byte order).

    This is the off-core main memory behind the bus: both the ISS and
    the RTL system read and write through it.  It is not a fault-
    injection target (faults live in the core and the caches). *)

type t

exception Misaligned of int
(** Raised when a word access is not 4-byte aligned or a halfword
    access is not 2-byte aligned. *)

val create : unit -> t
(** An empty memory; unwritten locations read as zero. *)

val copy : t -> t
(** Deep copy, so a faulty run cannot disturb the golden image. *)

val equal : t -> t -> bool
(** Word-for-word equality of the stored images (an all-zero page
    equals an absent one); used by the campaign engine to detect a
    faulty run re-converging with the golden run. *)

val hash : t -> int
(** Deterministic, page-order-independent fingerprint of the image. *)

val load_word : t -> int -> int
val store_word : t -> int -> int -> unit

val load_byte : t -> int -> int
(** Unsigned byte. *)

val store_byte : t -> int -> int -> unit

val load_half : t -> int -> int
(** Unsigned halfword; checks 2-byte alignment. *)

val store_half : t -> int -> int -> unit

val blit_words : t -> int -> int array -> unit
(** [blit_words mem base words] stores [words] at consecutive word
    addresses starting at [base]. *)

val read_words : t -> int -> int -> int array
(** [read_words mem base n] reads [n] consecutive words. *)

val iter_nonzero : t -> (int -> int -> unit) -> unit
(** [iter_nonzero mem f] calls [f word_addr value] for every word that
    was ever written (in unspecified order); used to diff final
    memory images. *)
