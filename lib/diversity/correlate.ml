module Binomial = Stats.Binomial
module Regression = Stats.Regression

type sample = { label : string; x : float; k : int; n : int }

type row = {
  label : string;
  x : float;
  measured : Binomial.interval;
  predicted : Binomial.interval;
  residual : float;
  fit_break : bool;
}

type analysis = {
  rows : row list;
  fit : Regression.fit;
  loo_r_squared : float;
  rmse : float;
  broken : string list;
}

let analyze ?z ?(log = false) samples =
  if List.length samples < 3 then
    invalid_arg "Correlate.analyze: need at least three samples";
  List.iter
    (fun (s : sample) ->
      if s.n <= 0 || s.k < 0 || s.k > s.n then
        invalid_arg
          (Printf.sprintf "Correlate.analyze: bad counts for %S (k=%d n=%d)"
             s.label s.k s.n))
    samples;
  let points =
    List.map (fun (s : sample) -> (s.x, float_of_int s.k /. float_of_int s.n)) samples
  in
  let fit = if log then Regression.log_fit points else Regression.linear points in
  let loo = Regression.leave_one_out ~log points in
  let rows =
    List.mapi
      (fun i (s : sample) ->
        let measured = Binomial.wilson ?z ~k:s.k ~n:s.n () in
        (* The prediction comes from the fit excluding this workload
           (leave-one-out), banded as if it had been observed over the
           same n — so both intervals carry comparable sampling noise
           and "disjoint" is an honest residual test, not an artifact
           of a zero-width prediction. *)
        let predicted = Binomial.of_rate ?z ~p:loo.Regression.predictions.(i) ~n:s.n () in
        { label = s.label;
          x = s.x;
          measured;
          predicted;
          residual = loo.Regression.residuals.(i);
          fit_break = Binomial.disjoint measured predicted })
      samples
  in
  { rows;
    fit;
    loo_r_squared = loo.Regression.r_squared;
    rmse = loo.Regression.rmse;
    broken = List.filter_map (fun r -> if r.fit_break then Some r.label else None) rows }
