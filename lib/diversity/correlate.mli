(** Statistically hardened Pf correlation (extended figure 7).

    The paper fits [Pf = a·ln(D) + b] and reports one in-sample R²; a
    new workload that breaks the fit would be silently absorbed into
    the next refit.  This module makes the correlation falsifiable:
    every measured Pf carries a Wilson confidence interval
    ({!Stats.Binomial}), every prediction is out-of-sample
    (leave-one-workload-out, {!Stats.Regression.leave_one_out}), and a
    workload whose measured and predicted intervals are disjoint trips
    an explicit fit-break flag instead of just inflating the
    residuals.  Pure data-in/data-out — the campaign side supplies
    [(k, n)] failure counts. *)

type sample = {
  label : string;  (** workload name *)
  x : float;  (** the regressor (diversity D, or an ISS-predicted Pf) *)
  k : int;  (** observed failures *)
  n : int;  (** observed injections *)
}

type row = {
  label : string;
  x : float;
  measured : Stats.Binomial.interval;  (** Wilson CI on [k/n] *)
  predicted : Stats.Binomial.interval;
      (** leave-one-out prediction, Wilson-banded at the same [n] *)
  residual : float;  (** measured rate minus held-out prediction *)
  fit_break : bool;  (** the two intervals are disjoint *)
}

type analysis = {
  rows : row list;  (** in input order *)
  fit : Stats.Regression.fit;  (** the all-points fit, for reporting *)
  loo_r_squared : float;  (** out-of-sample R² (can be negative) *)
  rmse : float;  (** held-out RMSE *)
  broken : string list;  (** labels of fit-break rows, in input order *)
}

val analyze : ?z:float -> ?log:bool -> sample list -> analysis
(** [analyze samples] runs the full procedure; [log] (default false)
    fits against [ln x] as figure 7 does, [z] (default 1.96) sets the
    CI coverage.  Raises [Invalid_argument] with fewer than three
    samples, on degenerate regressors, or on impossible counts. *)
