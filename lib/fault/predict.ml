module C = Rtl.Circuit

type ranked = {
  site : Injection.site;
  model : C.fault_model;
  score : int;  (** SCOAP detectability — lower predicts easier detection *)
}

type validation = {
  samples : int;
  detected : int;
  rank_correlation : float;
  mean_score_detected : float;
  mean_score_silent : float;
}

let rank ?(models = [ C.Stuck_at_0; C.Stuck_at_1 ]) (core : Leon3.Core.t) target =
  let g = Analysis.Graph.build core.Leon3.Core.circuit in
  let scoap = Analysis.Scoap.build g ~obs:(Leon3.Core.observation_points core) in
  let scored =
    List.concat_map
      (fun (site : Injection.site) ->
        List.filter_map
          (fun model ->
            match Analysis.Scoap.detectability scoap site.Injection.fault_site model with
            | Some score ->
                (* A degenerate SCOAP fallback (negative, or blowing past
                   the saturation sentinel) would silently reorder the
                   validated ranking; fail loudly instead. *)
                if score < 0 || score > Analysis.Scoap.inf then
                  invalid_arg
                    (Printf.sprintf "Predict.rank: degenerate SCOAP score %d for %s"
                       score site.Injection.site_name);
                Some { site; model; score }
            | None -> None)
          models)
      (Injection.sites core target)
  in
  (* ascending score: the predictor's "most detectable first" order;
     ties broken by (site name, model name) with typed comparisons so
     the ranking is total and deterministic *)
  List.sort
    (fun a b ->
      match Int.compare a.score b.score with
      | 0 -> (
          match String.compare a.site.Injection.site_name b.site.Injection.site_name with
          | 0 -> String.compare (C.fault_model_name a.model) (C.fault_model_name b.model)
          | c -> c)
      | c -> c)
    scored

let validate ?(obs = Obs.null) ?(samples = 120) ?(seed = 7)
    ?(models = [ C.Stuck_at_0; C.Stuck_at_1 ]) sys prog target =
  let core = Leon3.System.core sys in
  let ranked = Array.of_list (rank ~models core target) in
  let n = Array.length ranked in
  if n = 0 then invalid_arg "Predict.validate: no scorable sites";
  let take = min samples n in
  (* deterministic sample without replacement over the ranked pool *)
  let rng = Stats.Rng.create seed in
  let idx = Array.init n (fun i -> i) in
  for i = 0 to take - 1 do
    let j = i + Stats.Rng.int rng (n - i) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  let golden =
    Campaign.golden_run ~obs ~coverage:true sys prog ~max_cycles:5_000_000
  in
  let points = ref [] in
  let detected = ref 0 in
  let sum_det = ref 0. and sum_sil = ref 0. in
  for i = 0 to take - 1 do
    let r = ranked.(idx.(i)) in
    let result = Campaign.run_one ~obs sys prog golden r.site r.model in
    let hit =
      match result.Campaign.outcome with Campaign.Failure _ -> true | Campaign.Silent -> false
    in
    if hit then begin incr detected; sum_det := !sum_det +. float_of_int r.score end
    else sum_sil := !sum_sil +. float_of_int r.score;
    points := (float_of_int r.score, if hit then 1. else 0.) :: !points
  done;
  { samples = take;
    detected = !detected;
    (* a good predictor scores detected faults LOWER, so a working
       ranking shows up as a negative correlation *)
    rank_correlation = Stats.Regression.spearman !points;
    mean_score_detected =
      (if !detected = 0 then nan else !sum_det /. float_of_int !detected);
    mean_score_silent =
      (if take = !detected then nan else !sum_sil /. float_of_int (take - !detected)) }
