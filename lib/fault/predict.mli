(** Static detectability prediction.

    The static half of the campaign: rank every injection site by its
    SCOAP detectability cost ({!Analysis.Scoap.detectability}) without
    running anything, then validate the ranking against real
    fault-injection verdicts.  The paper's premise is that structure
    predicts robustness; this module is the cheapest version of that
    claim, and {!validate} measures how far it carries. *)

module C = Rtl.Circuit

type ranked = {
  site : Injection.site;
  model : C.fault_model;
  score : int;  (** SCOAP detectability — lower predicts easier detection *)
}

type validation = {
  samples : int;  (** (site, model) pairs actually injected *)
  detected : int;  (** of which failed (were detected) *)
  rank_correlation : float;
      (** Spearman between static score and the detected/silent
          outcome.  A working predictor is {e negative} (low score =
          easy to detect); 0 means the ranking carries no signal. *)
  mean_score_detected : float;  (** [nan] when no fault was detected *)
  mean_score_silent : float;  (** [nan] when every fault was detected *)
}

val rank :
  ?models:C.fault_model list -> Leon3.Core.t -> Injection.target -> ranked list
(** Score every (site, model) pair of the target block, ascending
    (predicted most-detectable first), ties broken by site name.
    Memory [Cell] sites carry no SCOAP metric and are omitted.
    Default models: stuck-at-0 and stuck-at-1. *)

val validate :
  ?obs:Obs.t ->
  ?samples:int ->
  ?seed:int ->
  ?models:C.fault_model list ->
  Leon3.System.t ->
  Sparc.Asm.program ->
  Injection.target ->
  validation
(** Sample [samples] (default 120) scored pairs without replacement
    (deterministic in [seed]), run each through {!Campaign.run_one}
    against a fresh golden run of [prog], and correlate the static
    scores with the observed verdicts. *)
