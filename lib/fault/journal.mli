(** Persistent campaign journal (crash-safe verdict store).

    A journal is a JSONL file: a header record fingerprinting the
    campaign — workload name, program hash, hash of the sampled site
    names (which binds netlist, target, seed and sample size at once),
    the config flags that affect verdicts, and the shard spec —
    followed by one verdict record per classified fault site.  Verdict
    records are appended as classification finishes and fsync'd in
    batches, so a crash, OOM or pre-empted machine loses at most the
    last unsynced batch, never finished work.

    {!Campaign.run}/{!Campaign.run_parallel} write and replay journals
    through this module; {!merge} combines the disjoint shard journals
    of one campaign into the verdict list the unsharded run would have
    produced, rejecting journals whose fingerprints disagree. *)

module C = Rtl.Circuit

exception Rejected of string
(** A journal exists but belongs to a different campaign (or is
    corrupt); raised by the campaign engine when [~resume] meets a
    stale journal.  Never merged silently. *)

(** {1 Verdict vocabulary}

    Defined here so verdicts can be serialised without depending on
    {!Campaign}; Campaign re-exports these types under the same
    names. *)

type failure_kind = Wrong_write of int | Missing_writes of int | Trap of int | Hang

type outcome = Silent | Failure of failure_kind

type sim_status =
  | Simulated
  | Prefiltered
  | Converged of int
  | Pruned
  | Collapsed of string

type run_result = {
  site_name : string;
  model : C.fault_model;
  outcome : outcome;
  detect_cycle : int option;
  inject_cycle : int;
  sim : sim_status;
}

val model_of_name : string -> C.fault_model option
(** Inverse of {!Rtl.Circuit.fault_model_name}. *)

(** {1 Fingerprints} *)

type fingerprint = {
  workload : string;  (** program name *)
  prog_hash : int;  (** {!hash_program} of the workload *)
  netlist_hash : int;
      (** {!hash_names} over the sampled site names — binds netlist,
          target, seed, sample size and cell inclusion *)
  target : string;  (** {!Injection.target_name} *)
  models : string list;  (** fault-model names, in campaign order *)
  sample_size : int option;
  include_cells : bool;
  inject_cycle : int;
  hang_factor : int;
  compare_reads : bool;
  seed : int;
  total_sites : int;  (** sampled sites across all shards *)
  shard : int * int;  (** 1-based shard index, shard count *)
}

val hash_program : Sparc.Asm.program -> int
(** FNV-1a over name, layout, code words and data segments. *)

val hash_names : string array -> int
(** FNV-1a over a name sequence (order-sensitive). *)

val base_mismatch : fingerprint -> fingerprint -> string option
(** First differing field, ignoring the shard spec — shards of one
    campaign are base-equal.  [None] = same campaign. *)

val full_mismatch : fingerprint -> fingerprint -> string option
(** Like {!base_mismatch} but also comparing the shard spec — resume
    requires an exact match. *)

(** {1 Writing} *)

type writer

val create : ?fsync_every:int -> string -> fingerprint -> writer
(** Create/truncate the journal, write and fsync the header.
    [fsync_every] (default 64) bounds the verdicts lost to a crash.
    The writer is domain-safe: {!append} takes an internal lock. *)

val append : writer -> index:int -> run_result -> unit
(** Append one verdict for the site at [index] in the campaign's
    sampled site list. *)

val close : writer -> unit
(** Flush, fsync and close.  Idempotent. *)

val fsync_dir : string -> unit
(** Fsync a directory, making renames/creates inside it power-loss
    durable.  Best-effort: filesystems that reject directory fsync are
    silently tolerated.  Shared with the serve layer's queue files. *)

(** {1 Reading} *)

type entry = { index : int; result : run_result }

val load : string -> (fingerprint * entry list, string) result
(** Parse a journal.  A torn final line (crash mid-append) is dropped;
    malformed records anywhere else reject the file. *)

val open_resume :
  ?fsync_every:int -> string -> fingerprint -> (writer * entry list, string) result
(** Resume journaling at a path: absent file — fresh {!create}; an
    existing journal whose fingerprint matches exactly is rewritten
    atomically without its torn tail (if any) and reopened for append,
    returning the verdicts already on disk; a fingerprint mismatch is
    an [Error] naming the differing field.  Stale [.tmp] debris from a
    kill mid-rewrite is removed, and the parent directory is fsync'd
    after the rename so the rewrite is power-loss durable. *)

val merge :
  (fingerprint * entry list) list ->
  (fingerprint * run_result list, string) result
(** Combine shard journals: base fingerprints must agree, shard specs
    must cover [1..N] exactly once, and the union must contain every
    (model, site) verdict exactly once.  Returns the merged fingerprint
    (shard [1/1]) and the verdicts in the unsharded engine's order
    (model-major, then site index). *)
