(** Fault-injection campaign engine.

    A campaign repeats, for every sampled injection site and every
    fault model: reset the RTL system, arm one permanent fault, run the
    workload, and classify the outcome against a fault-free golden run.
    As in the paper, a fault {e becomes a failure} when the off-core
    write stream diverges from the golden one (light-lockstep
    observation): a wrong/extra write, a missing write at program end,
    a trap, or a hang (watchdog).  Runs stop at the first divergent
    write, so failures are cheap and only silent runs pay full cost.

    {b Trimmed execution.}  Most injections are redundant work: a
    permanent fault whose forced value the golden run never
    contradicts can never activate, and a 1-cycle transient whose
    state re-converges with the golden state has a provably golden
    future.  With [config.trim] (on by default) the engine records
    value coverage and checkpoints during the golden run and uses them
    to (a) classify never-activating permanent faults silent without
    simulating, (b) start each bounded-fault run at the last
    checkpoint before its injection instant, and (c) stop a
    bounded-fault run at the first checkpoint where its state equals
    the golden state.  All three are exact — trimmed and untrimmed
    campaigns produce identical verdicts, failure breakdowns and
    latencies; {!summary} reports how much simulation was avoided.

    {b Telemetry.}  Every entry point accepts an [?obs] collector
    (default {!Obs.null}, no cost).  A live collector receives
    per-phase spans ([golden], [site_sampling], [prefilter],
    [simulate], [converge]), per-injection outcome counters
    ([injections], [outcome.*], [prefiltered], [early_exits],
    [simulated], [cycles.saved], plus [rtl.cycles] /
    [rtl.instructions] from the attached system) and a
    [detect_latency] histogram.  {!run_parallel} gives each domain a
    private {!Obs.fork} and merges them in spawn order, so counter
    totals are identical for any domain count. *)

module C = Rtl.Circuit
module Bus_event = Sparc.Bus_event

type golden = {
  writes : Bus_event.t array;  (** off-core write stream, in order *)
  events : Bus_event.t array;  (** writes and reads *)
  cycles : int;
  instructions : int;
  stop : Leon3.System.stop_reason;
  coverage : C.coverage option;
      (** value coverage, when recorded — powers the activation
          prefilter *)
  checkpoints : Leon3.System.checkpoint array;
      (** golden state at increasing cycles, when captured — powers
          checkpointed starts and early exits *)
  trace : C.trace option;
      (** delta-compressed per-cycle value trace, when recorded —
          powers differential replay of the faulty runs *)
}

val golden_run :
  ?obs:Obs.t ->
  ?coverage:bool ->
  ?trace:bool ->
  ?checkpoint_every:int ->
  Leon3.System.t ->
  Sparc.Asm.program ->
  max_cycles:int ->
  golden
(** Run fault-free and capture the reference behaviour.  [coverage]
    (default false) records per-bit value coverage for the activation
    prefilter; [trace] (default false) records the per-cycle value
    trace for differential replay; [checkpoint_every] captures a state
    checkpoint at that cycle interval (the set is thinned to a bounded
    count on long runs).  Raises [Failure] if the golden run itself
    traps or hits the cycle limit (the workload is broken, not the
    hardware). *)

(** Verdict types live in {!Journal} (the persistence layer cannot
    depend on this module); they are re-exported here so existing
    [Campaign.Silent]-style code keeps compiling. *)

type failure_kind = Journal.failure_kind =
  | Wrong_write of int  (** index of the first divergent write *)
  | Missing_writes of int  (** clean exit but only this many writes matched *)
  | Trap of int  (** core trapped; payload is the trap code *)
  | Hang  (** watchdog: cycle budget exhausted *)

type outcome = Journal.outcome = Silent | Failure of failure_kind

type sim_status = Journal.sim_status =
  | Simulated  (** the faulty run was executed (possibly from a checkpoint) *)
  | Prefiltered  (** provably never activates; no simulation at all *)
  | Converged of int
      (** simulated until state equality with the golden checkpoint at
          this cycle proved the rest *)
  | Pruned
      (** outside the backward cone of the observation points —
          statically silent, no simulation *)
  | Collapsed of string
      (** structurally equivalent to the named leader site's fault;
          verdict replicated from its run, no simulation *)

type run_result = Journal.run_result = {
  site_name : string;
  model : C.fault_model;
  outcome : outcome;
  detect_cycle : int option;
      (** cycle of first divergence/trap, when the run failed *)
  inject_cycle : int;
  sim : sim_status;  (** how much of the run was actually simulated *)
}

val run_one :
  ?obs:Obs.t ->
  ?plan:C.replay_plan ->
  ?detect_loops:bool ->
  Leon3.System.t ->
  Sparc.Asm.program ->
  golden ->
  ?inject_cycle:int ->
  ?duration:int ->
  ?hang_factor:int ->
  ?compare_reads:bool ->
  Injection.site ->
  C.fault_model ->
  run_result
(** Execute one faulty run.  [duration] bounds the fault's active
    window (default permanent).  [hang_factor] scales the golden cycle
    count into the watchdog budget (default 4 — cache-degrading faults
    can legitimately run slower without failing).  [compare_reads]
    extends the lockstep comparison to read addresses (default false,
    the paper compares writes only).  Trimming follows what [golden]
    carries: coverage enables the prefilter, checkpoints enable
    resumed starts and (for bounded faults) convergence early-exit.
    When [plan] is given {e and} [golden] carries a trace, the run
    executes in differential replay — only the fanout cone of nodes
    diverging from golden is re-evaluated each cycle, and convergence
    checks are O(dirty); verdicts are identical either way.
    [detect_loops] (default false) arms {!Leon3.System.run}'s
    hang-loop detection, which short-circuits watchdog runs whose
    state provably became periodic; the batch engine enables it for
    ejected lanes.  Replay
    statistics land on [obs] as [diff.nodes_evaluated] /
    [diff.golden_evaluated] counters and [diff.dirty_peak] /
    [diff.divergence_cycles] histograms. *)

type summary = {
  injections : int;
  failures : int;
  pf : float;  (** failures / injections *)
  wrong_writes : int;
  missing_writes : int;
  traps : int;
  hangs : int;
  max_latency : int;  (** cycles, over detected failures *)
  mean_latency : float;
  skipped : int;  (** injections classified by the prefilter, unsimulated *)
  early_exits : int;  (** simulated runs cut short by checkpoint convergence *)
  pruned : int;  (** injections outside the observation cone, unsimulated *)
  collapsed : int;  (** injections replicated from a collapse-class leader *)
}

val summarize : run_result list -> summary

type config = {
  models : C.fault_model list;
  sample_size : int option;  (** [None] = exhaustive *)
  include_cells : bool;
  inject_cycle : int;
  hang_factor : int;
  compare_reads : bool;
  seed : int;
  trim : bool;
      (** trimmed execution (activation prefilter + checkpointing);
          [false] forces every injection through a full simulation *)
  checkpoint_every : int option;
      (** golden checkpoint interval in cycles; [None] = default *)
  static : bool;
      (** netlist static analysis: cone-of-influence pruning and
          structural fault collapsing ({!Analysis}); verdicts are
          byte-identical with it on or off — classification order puts
          the dynamic prefilter first, so even [skipped] matches *)
  event : bool;
      (** event-driven differential simulation: the golden run records
          a value trace and every simulated fault replays against it,
          re-evaluating only the dirty fanout cone (classification
          order: prefilter → cone prune → collapse → differential
          simulate).  Exact — verdicts, summaries and latencies are
          byte-identical with it on or off *)
  batch : bool;
      (** bit-parallel fault batching (PPSFP): permanent-fault
          injections that survive prefilter, cone prune and collapse
          run up to {!Rtl.Circuit.max_lanes} at a time as bit-lanes of
          one machine, against the golden trace.  Exact — verdicts,
          summaries and latencies are byte-identical with it on or
          off; lanes the trace cannot decide (hang candidates) fall
          back to the scalar engine automatically *)
  tail : bool;
      (** watchdog-tail machinery for the hang candidates the batch
          ejects: dense bit-parallel advance past trace end with
          per-lane cycle-proof hang classification, and lane→scalar
          state transplant so the last survivor resumes at trace end
          instead of cycle 0.  Exact — verdicts, summaries and
          latencies are byte-identical with it on or off (a proven
          state cycle can only ever end in the watchdog verdict the
          budget would have returned, with the same recorded latency).
          Only reachable when [batch] is on *)
  shard : int * int;
      (** [(i, n)]: execute only the sites whose sample index is
          congruent to [i-1 mod n] (1-based, default [(1, 1)] = all).
          Shards of the same seeded campaign are disjoint and
          covering, and — because collapse leaders are chosen over the
          global task list — the union of the [n] shards' verdicts is
          byte-identical to the unsharded run's.  Out-of-range values
          raise [Invalid_argument]. *)
}

val default_config : config
(** Stuck-at-0/1 + open-line, 400-site sample, cells included,
    injection at cycle 0, watchdog 4x, writes-only compare, seed 7,
    trimming, static analysis, differential simulation, bit-parallel
    batching and the watchdog tail on, shard 1/1. *)

val fingerprint :
  config:config ->
  Sparc.Asm.program ->
  Injection.target ->
  Injection.site array ->
  Journal.fingerprint
(** The identity a journal is bound to: workload + program hash,
    sampled-site-name hash (which pins netlist, target, seed, sample
    size and cell inclusion), the classification-relevant config flags
    and the shard.  Exposed for merge tooling and tests. *)

type static_info = {
  cone : Analysis.Graph.cone;  (** backward cone of the observation points *)
  collapse : Analysis.Collapse.t;  (** structural fault equivalences *)
}

val build_static : ?obs:Obs.t -> ?graph:Analysis.Graph.t -> Leon3.Core.t -> static_info
(** The per-campaign static analysis (also usable standalone): graph
    extraction, observation cone from {!Leon3.Core.observation_points},
    the post-dominator tree toward those points and the collapse table
    (classic rules plus dominance) keeping those points
    un-collapsible.  [graph] reuses an already-extracted dependency
    graph (the campaign shares one extraction between this and the
    replay plan).  Recorded under an [Obs] span named
    ["static_analysis"], with per-phase child spans ["static.graph"],
    ["static.dominator"] and ["static.collapse"]. *)

type prepared
(** Everything shard-independent and expensive about a campaign —
    golden run (with coverage, checkpoints, trace), static analysis,
    compiled replay plan, per-task classification — packaged for
    reuse.  This is the value the serve layer's content-addressed
    golden-trace cache stores: any number of {!run}/{!run_parallel}
    invocations (any shard of the same campaign) may consume one
    preparation instead of recomputing it.  Immutable after
    construction; safe to share across domains and across forked
    worker processes. *)

val prepare :
  ?config:config ->
  ?obs:Obs.t ->
  Leon3.System.t ->
  Sparc.Asm.program ->
  Injection.target ->
  prepared
(** Run the golden simulation and static analysis up front.  The
    [config.shard] field is ignored (the preparation is
    shard-normalised).  [obs] receives the usual [golden] /
    [static_analysis] / [site_sampling] spans. *)

val prepared_fingerprint : prepared -> Journal.fingerprint
(** The campaign identity the preparation was built for, shard
    normalised to [(1, 1)] — the serve layer's cache key material. *)

val run :
  ?config:config ->
  ?obs:Obs.t ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  ?journal:string ->
  ?resume:bool ->
  ?prepared:prepared ->
  Leon3.System.t ->
  Sparc.Asm.program ->
  Injection.target ->
  (C.fault_model * summary) list * run_result list
(** Full campaign for one workload and one target block: golden run,
    site sampling, every model over the same sampled sites (restricted
    to [config.shard]).  Returns per-model summaries plus every
    individual result, in model-major task order.

    [journal] appends every classified verdict to a crash-safe JSONL
    file ({!Journal}), fsync'd in batches, headed by the campaign
    fingerprint.  With [resume] (requires [journal]) an existing
    journal is validated against the fingerprint — mismatch raises
    {!Journal.Rejected} — and its verdicts are replayed byte-identically
    into the results instead of being re-simulated (counted on [obs] as
    [journal.replayed]); only the remainder is executed and appended.
    If every verdict is already journaled, the golden run and static
    analysis are skipped entirely.

    [prepared] supplies a {!prepare}d golden run + static analysis
    instead of recomputing them.  The preparation's fingerprint is
    validated against this campaign's own (cheaply recomputed) one —
    any field but the shard differing raises [Invalid_argument], so a
    cache cannot splice a foreign golden trace into a campaign. *)

val pf_percent : summary -> float
(** [100 * pf], as the paper's figures report. *)

val run_parallel :
  ?config:config ->
  ?obs:Obs.t ->
  ?domains:int ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  ?journal:string ->
  ?resume:bool ->
  ?prepared:prepared ->
  (unit -> Leon3.System.t) ->
  Sparc.Asm.program ->
  Injection.target ->
  (C.fault_model * summary) list * run_result list
(** Like {!run}, sharded over [domains] OCaml domains (default 4).
    The factory is called once per domain to build a private RTL
    system; golden coverage and checkpoints are shared read-only, and
    results are bit-identical to the sequential engine's — including
    under [config.shard], [journal] and [resume], which behave exactly
    as in {!run}.  [on_progress] is invoked after every completed
    injection with an atomically increasing [done_] (callers must
    tolerate concurrent invocation from worker domains); the final
    call reports [done_ = total], the shard's task count.  A worker
    domain that raises aborts its peers at the next task boundary and,
    after every domain has joined and its telemetry fork merged, the
    original exception is re-raised with the worker's backtrace;
    verdicts classified before the abort are already journaled. *)

val run_transient :
  ?sample:int ->
  ?seed:int ->
  ?trim:bool ->
  ?event:bool ->
  ?checkpoint_every:int ->
  ?obs:Obs.t ->
  Leon3.System.t ->
  Sparc.Asm.program ->
  Injection.target ->
  summary
(** Single-event-upset campaign (the paper's stated future work):
    one-cycle bit inversions at uniformly random instants, one instant
    per sampled site.  With [trim] (default true) each run starts at
    the last golden checkpoint before its instant and early-exits on
    state re-convergence; with [event] (default true) each run replays
    differentially against the golden trace — for a 1-cycle upset the
    dirty set typically collapses to empty within a few cycles, which
    is also what makes the convergence check O(dirty).  Verdicts are
    unchanged by either. *)
