(** Injection-point enumeration over the Leon3 model.

    Following the paper, faults target "VHDL signals, ports and
    variables" of the IU and CMEM blocks: here that is every bit of
    every netlist node under the block's hierarchical prefix, plus the
    storage cells of the block's memories (register file for the IU;
    tag and data arrays for the CMEM).  Cell sites make the pools
    heterogeneous in exactly the way the paper's [alpha_m] weighting
    discusses — a RAM bit is an injection point just like a control
    line, but contributes differently to failure probability. *)

module C = Rtl.Circuit

type site = { fault_site : C.fault_site; site_name : string }

type target =
  | Iu  (** integer unit: all [iu.*] nodes + register-file cells *)
  | Cmem  (** cache block: all [cmem.*] nodes + tag/data cells *)
  | Unit_of of Sparc.Units.t  (** a single functional unit's nodes *)
  | Prefix of string  (** raw hierarchical prefix, signals only *)

val target_name : target -> string
(** Stable textual key for a target ("iu", "cmem", "unit:<name>",
    "prefix:<p>") — used in campaign fingerprints and memo keys. *)

val prefix_of_unit : Sparc.Units.t -> string
(** Hierarchical prefix of a functional unit in the Leon3 netlist. *)

val prefix_table : (string * Sparc.Units.t) list
(** Every registered scope prefix with its owning unit, longest
    first — the table {!unit_of_site_name} matches against. *)

val unit_of_site_name : string -> Sparc.Units.t option
(** Attribute a site to its unit by longest registered prefix.  Robust
    to nested scopes ("iu.ex.adder.gates.c17[0]" is the adder's) and
    to names that {e are} a registered scope (memory cells such as
    "iu.regfile.regs[5][31]"). *)

val signal_sites : Leon3.Core.t -> prefix:string -> site list

val cell_sites : Leon3.Core.t -> C.memory -> name:string -> site list
(** Every (word, bit) cell of a memory. *)

val sites : ?include_cells:bool -> Leon3.Core.t -> target -> site list
(** The full pool for a target ([include_cells] defaults to [true];
    it only affects {!Iu} and {!Cmem}). *)

val pool_sizes : Leon3.Core.t -> (Sparc.Units.t * int) list
(** Injectable bit count per functional unit (signals + owned cells) —
    the area proxy behind the paper's [alpha_m] weights. *)
