module C = Rtl.Circuit
module Bus_event = Sparc.Bus_event

type golden = {
  writes : Bus_event.t array;
  events : Bus_event.t array;
  cycles : int;
  instructions : int;
  stop : Leon3.System.stop_reason;
  coverage : C.coverage option;
  checkpoints : Leon3.System.checkpoint array;
  trace : C.trace option;
}

(* Checkpoint-memory budget: when a golden run outgrows it, every
   other checkpoint is dropped and the interval doubles, so long runs
   keep a bounded, evenly spaced set. *)
let checkpoint_budget = 96

let default_checkpoint_interval = 512

let golden_run ?(obs = Obs.null) ?(coverage = false) ?(trace = false) ?checkpoint_every
    sys prog ~max_cycles =
  Obs.span obs "golden" @@ fun () ->
  let circuit = (Leon3.System.core sys).Leon3.Core.circuit in
  C.clear_fault circuit;
  if coverage then C.coverage_start circuit;
  (* armed before [load] so the cycle-0 settled state (and its
     keyframe) is part of the trace — replays can start from reset *)
  if trace then C.trace_start circuit;
  Leon3.System.load sys prog;
  let checkpoints = ref [] in
  (* newest first *)
  let count = ref 0 in
  let stop =
    match checkpoint_every with
    | None -> Leon3.System.run sys ~max_cycles
    | Some every ->
        let interval = ref (max 1 every) in
        let rec go () =
          let until = Leon3.System.cycles sys + !interval in
          match Leon3.System.run_segment sys ~until_cycle:until ~max_cycles with
          | Some r -> r
          | None ->
              checkpoints := Leon3.System.checkpoint sys :: !checkpoints;
              incr count;
              if !count >= checkpoint_budget then begin
                (* The newest checkpoint sits at an even multiple of
                   the doubled interval, so keeping alternate entries
                   preserves alignment. *)
                checkpoints := List.filteri (fun i _ -> i mod 2 = 0) !checkpoints;
                count := List.length !checkpoints;
                interval := !interval * 2
              end;
              go ()
        in
        go ()
  in
  let cov = if coverage then Some (C.coverage_stop circuit) else None in
  let tr = if trace then Some (C.trace_stop circuit) else None in
  (match stop with
  | Leon3.System.Exited _ -> ()
  | Leon3.System.Trapped code ->
      failwith (Printf.sprintf "golden run trapped (code %d): broken workload" code)
  | Leon3.System.Cycle_limit -> failwith "golden run hit the cycle limit"
  | Leon3.System.Aborted -> failwith "golden run aborted");
  { writes = Array.of_list (Leon3.System.writes sys);
    events = Array.of_list (Leon3.System.events sys);
    cycles = Leon3.System.cycles sys;
    instructions = Leon3.System.instructions sys;
    stop;
    coverage = cov;
    checkpoints = Array.of_list (List.rev !checkpoints);
    trace = tr }

(* The verdict vocabulary is owned by {!Journal} (which serialises it);
   re-exported here under its historical names. *)
type failure_kind = Journal.failure_kind =
  | Wrong_write of int
  | Missing_writes of int
  | Trap of int
  | Hang

type outcome = Journal.outcome = Silent | Failure of failure_kind

type sim_status = Journal.sim_status =
  | Simulated
  | Prefiltered
  | Converged of int
  | Pruned
  | Collapsed of string

type run_result = Journal.run_result = {
  site_name : string;
  model : C.fault_model;
  outcome : outcome;
  detect_cycle : int option;
  inject_cycle : int;
  sim : sim_status;
}

(* Telemetry epilogue for one faulty run: outcome/sim counters, the
   detection-latency histogram, time attribution per phase
   (prefilter / simulate / converge) and the cycles the trimming
   machinery avoided ([start_cycle] for a checkpointed start, the
   remaining suffix for a convergence exit, the whole golden run for a
   prefiltered injection). *)
let record_run obs golden ~dt ~start_cycle r =
  Obs.incr obs "injections";
  (match r.outcome with
  | Silent -> Obs.incr obs "outcome.silent"
  | Failure (Wrong_write _) -> Obs.incr obs "outcome.wrong_write"
  | Failure (Missing_writes _) -> Obs.incr obs "outcome.missing_writes"
  | Failure (Trap _) -> Obs.incr obs "outcome.trap"
  | Failure Hang -> Obs.incr obs "outcome.hang");
  (match (r.outcome, r.detect_cycle) with
  | Failure (Wrong_write _ | Missing_writes _ | Trap _), Some cyc ->
      Obs.observe obs "detect_latency" (float_of_int (cyc - r.inject_cycle))
  | (Failure _ | Silent), _ -> ());
  match r.sim with
  | Prefiltered ->
      Obs.incr obs "prefiltered";
      Obs.add_time obs "prefilter" dt;
      Obs.incr obs ~by:golden.cycles "cycles.saved"
  | Converged cyc ->
      Obs.incr obs "early_exits";
      Obs.add_time obs "converge" dt;
      Obs.incr obs ~by:(start_cycle + max 0 (golden.cycles - cyc)) "cycles.saved"
  | Simulated ->
      Obs.incr obs "simulated";
      Obs.add_time obs "simulate" dt;
      Obs.incr obs ~by:start_cycle "cycles.saved"
  | Pruned ->
      Obs.incr obs "static.pruned";
      Obs.incr obs ~by:golden.cycles "cycles.saved"
  | Collapsed _ ->
      Obs.incr obs "static.collapsed";
      Obs.incr obs ~by:golden.cycles "cycles.saved"

(* Statically classified injections (cone-pruned or replicated from a
   collapse-class leader) never touch the simulator; they still count
   as injections with a full verdict. *)
let record_static obs golden r =
  if Obs.enabled obs then record_run obs golden ~dt:0. ~start_cycle:0 r

let run_one ?(obs = Obs.null) ?plan ?detect_loops sys prog golden ?(inject_cycle = 0)
    ?duration ?(hang_factor = 4) ?(compare_reads = false) (site : Injection.site) model =
  let t_start = if Obs.enabled obs then Obs.now obs else 0. in
  let start_cycle = ref 0 in
  let circuit = (Leon3.System.core sys).Leon3.Core.circuit in
  let mk outcome detect_cycle sim =
    { site_name = site.Injection.site_name; model; outcome; detect_cycle; inject_cycle;
      sim }
  in
  let finish r =
    if Obs.enabled obs then
      record_run obs golden ~dt:(Obs.now obs -. t_start) ~start_cycle:!start_cycle r;
    r
  in
  let prefiltered =
    match golden.coverage with
    | Some cov -> C.never_activates cov site.Injection.fault_site model
    | None -> false
  in
  if prefiltered then finish (mk Silent None Prefiltered)
  else begin
    let reference = if compare_reads then golden.events else golden.writes in
    let ck_progress ck =
      if compare_reads then Leon3.System.checkpoint_events ck
      else Leon3.System.checkpoint_writes ck
    in
    (* Trimmed start: the run is fault-free strictly before
       [inject_cycle], so resume from the last golden checkpoint
       before it (strictly: the settle AT the injection instant is
       already faulty and must be re-executed). *)
    let start_ck =
      Array.fold_left
        (fun acc ck ->
          if Leon3.System.checkpoint_cycle ck < inject_cycle then Some ck else acc)
        None golden.checkpoints
    in
    let matched = ref 0 in
    (match start_ck with
    | Some ck ->
        Leon3.System.restore_checkpoint sys ck;
        matched := ck_progress ck
    | None -> Leon3.System.load sys prog);
    start_cycle := Leon3.System.cycles sys;
    (* Differential replay: the state just positioned is a state the
       golden run passed through, so the dirty set starts empty and
       every settle from here is O(divergence) instead of O(n). *)
    let replaying =
      match (plan, golden.trace) with
      | Some pl, Some tr ->
          C.replay_start circuit pl tr;
          true
      | (Some _ | None), _ -> false
    in
    let replay_epilogue () =
      if replaying then begin
        let st = C.replay_stop circuit in
        if Obs.enabled obs then begin
          Obs.incr obs ~by:st.C.rs_evals "diff.nodes_evaluated";
          Obs.incr obs ~by:st.C.rs_dense_evals "diff.golden_evaluated";
          Obs.observe obs "diff.dirty_peak" (float_of_int st.C.rs_dirty_peak);
          Obs.observe obs "diff.divergence_cycles"
            (float_of_int st.C.rs_divergence_cycles)
        end
      end
    in
    C.inject circuit ~from_cycle:inject_cycle ?duration site.Injection.fault_site model;
    let mismatch_cycle = ref None in
    let on_event ev =
      let relevant = compare_reads || Bus_event.is_write ev in
      if not relevant then true
      else if !matched < Array.length reference
              && Bus_event.equal ev reference.(!matched)
      then begin
        incr matched;
        true
      end
      else begin
        mismatch_cycle := Some (Leon3.System.cycles sys);
        false
      end
    in
    let max_cycles = (hang_factor * golden.cycles) + 2000 in
    (* Early exit: once a bounded fault has expired, exact state
       equality with a golden checkpoint proves the remaining
       trajectory is golden — classify silent without simulating the
       rest. *)
    let expiry = match duration with Some d -> inject_cycle + d | None -> max_int in
    let converged = ref None in
    let stop =
      let n = Array.length golden.checkpoints in
      let rec from_boundary i =
        if i >= n then Leon3.System.run ~on_event ?detect_loops sys ~max_cycles
        else begin
          let ck = golden.checkpoints.(i) in
          let bc = Leon3.System.checkpoint_cycle ck in
          if bc < expiry || bc <= Leon3.System.cycles sys then from_boundary (i + 1)
          else
            match
              Leon3.System.run_segment ~on_event ?detect_loops sys ~until_cycle:bc
                ~max_cycles
            with
            | Some r -> r
            | None ->
                if !matched = ck_progress ck && Leon3.System.matches_checkpoint sys ck
                then begin
                  converged := Some bc;
                  golden.stop
                end
                else from_boundary (i + 1)
        end
      in
      from_boundary 0
    in
    C.clear_fault circuit;
    replay_epilogue ();
    match !converged with
    | Some cyc -> finish (mk Silent None (Converged cyc))
    | None ->
        let outcome, detect_cycle =
          match stop with
          | Leon3.System.Aborted -> (Failure (Wrong_write !matched), !mismatch_cycle)
          | Leon3.System.Trapped code ->
              (Failure (Trap code), Some (Leon3.System.cycles sys))
          | Leon3.System.Cycle_limit -> (Failure Hang, Some max_cycles)
          | Leon3.System.Exited _ ->
              if !matched = Array.length reference then (Silent, None)
              else (Failure (Missing_writes !matched), Some (Leon3.System.cycles sys))
        in
        finish (mk outcome detect_cycle Simulated)
  end

type summary = {
  injections : int;
  failures : int;
  pf : float;
  wrong_writes : int;
  missing_writes : int;
  traps : int;
  hangs : int;
  max_latency : int;
  mean_latency : float;
  skipped : int;
  early_exits : int;
  pruned : int;
  collapsed : int;
}

let summarize results =
  let injections = List.length results in
  let count f = List.length (List.filter f results) in
  let failures = count (fun r -> r.outcome <> Silent) in
  (* Hangs are detected by the watchdog, whose budget scales with the
     golden run; including them would measure the watchdog, not the
     fault.  Latency is therefore over write/trap detections only. *)
  let latencies =
    List.filter_map
      (fun r ->
        match (r.outcome, r.detect_cycle) with
        | Failure Hang, _ -> None
        | Failure (Wrong_write _ | Missing_writes _ | Trap _), Some cyc ->
            Some (cyc - r.inject_cycle)
        | Failure _, None | Silent, _ -> None)
      results
  in
  { injections;
    failures;
    pf = Stats.Summary.ratio ~num:failures ~den:injections;
    wrong_writes = count (fun r -> match r.outcome with Failure (Wrong_write _) -> true | Failure (Missing_writes _ | Trap _ | Hang) | Silent -> false);
    missing_writes = count (fun r -> match r.outcome with Failure (Missing_writes _) -> true | Failure (Wrong_write _ | Trap _ | Hang) | Silent -> false);
    traps = count (fun r -> match r.outcome with Failure (Trap _) -> true | Failure (Wrong_write _ | Missing_writes _ | Hang) | Silent -> false);
    hangs = count (fun r -> match r.outcome with Failure Hang -> true | Failure (Wrong_write _ | Missing_writes _ | Trap _) | Silent -> false);
    max_latency = List.fold_left max 0 latencies;
    mean_latency =
      (if latencies = [] then 0.
       else
         float_of_int (List.fold_left ( + ) 0 latencies)
         /. float_of_int (List.length latencies));
    skipped = count (fun r -> r.sim = Prefiltered);
    early_exits =
      count (fun r ->
          match r.sim with
          | Converged _ -> true
          | Simulated | Prefiltered | Pruned | Collapsed _ -> false);
    pruned = count (fun r -> r.sim = Pruned);
    collapsed =
      count (fun r ->
          match r.sim with
          | Collapsed _ -> true
          | Simulated | Prefiltered | Pruned | Converged _ -> false) }

type config = {
  models : C.fault_model list;
  sample_size : int option;
  include_cells : bool;
  inject_cycle : int;
  hang_factor : int;
  compare_reads : bool;
  seed : int;
  trim : bool;
  checkpoint_every : int option;
  static : bool;
  event : bool;
  batch : bool;
  tail : bool;
  shard : int * int;
}

let default_config =
  { models = [ C.Stuck_at_1; C.Stuck_at_0; C.Open_line ];
    sample_size = Some 400;
    include_cells = true;
    inject_cycle = 0;
    hang_factor = 4;
    compare_reads = false;
    seed = 7;
    trim = true;
    checkpoint_every = None;
    static = true;
    event = true;
    batch = true;
    tail = true;
    shard = (1, 1) }

(* Static analysis of the netlist, shared by every injection of a
   campaign: the observation cone decides which sites are silent by
   construction, the collapse table which (site, model) pairs share a
   verdict with a representative fault. *)
type static_info = { cone : Analysis.Graph.cone; collapse : Analysis.Collapse.t }

let build_static ?(obs = Obs.null) ?graph core =
  Obs.span obs "static_analysis" @@ fun () ->
  let g =
    match graph with
    | Some g -> g
    | None ->
        Obs.span obs "static.graph" @@ fun () ->
        Analysis.Graph.build core.Leon3.Core.circuit
  in
  let obs_points = Leon3.Core.observation_points core in
  let keep =
    let set = Array.make (Analysis.Graph.signal_count g) false in
    List.iter (fun s -> set.((s : C.signal :> int)) <- true) obs_points;
    fun s -> set.((s : C.signal :> int))
  in
  let dom =
    Obs.span obs "static.dominator" @@ fun () ->
    Analysis.Dominator.build g ~exits:obs_points
  in
  { cone = Analysis.Graph.backward_cone g obs_points;
    collapse =
      (Obs.span obs "static.collapse" @@ fun () ->
       Analysis.Collapse.build ~dom g ~keep) }

(* Per-injection classification.  Order matters for byte-identical
   summaries: the dynamic prefilter is consulted first (so [skipped]
   is identical with static analysis on or off), then the cone, then
   the collapse table. *)
type plan =
  | P_direct
  | P_pruned
  | P_class of (C.fault_site * C.fault_model)

let classify static golden (site : Injection.site) model =
  let prefiltered =
    match golden.coverage with
    | Some cov -> C.never_activates cov site.Injection.fault_site model
    | None -> false
  in
  if prefiltered then P_direct
  else
    match static with
    | None -> P_direct
    | Some st ->
        if not (Analysis.Graph.cone_site st.cone site.Injection.fault_site) then P_pruned
        else
          let rsite, rmodel =
            Analysis.Collapse.resolve st.collapse site.Injection.fault_site model
          in
          if rsite = site.Injection.fault_site && rmodel = model then P_direct
          else P_class (rsite, rmodel)

let pruned_result ~inject_cycle (site : Injection.site) model =
  { site_name = site.Injection.site_name; model; outcome = Silent; detect_cycle = None;
    inject_cycle; sim = Pruned }

let follower_result ~inject_cycle (site : Injection.site) model lead =
  { site_name = site.Injection.site_name; model; outcome = lead.outcome;
    detect_cycle = lead.detect_cycle; inject_cycle; sim = Collapsed lead.site_name }

(* Golden-run options for a campaign: value coverage powers the
   permanent-fault prefilter (useless for bit-flips, which always
   activate); checkpoints only pay off when runs start after cycle 0
   or can exit early (bounded faults). *)
let golden_options config ~bounded_faults =
  if not config.trim then (false, None)
  else
    let coverage = List.exists (fun m -> m <> C.Bit_flip) config.models in
    let want_checkpoints = bounded_faults || config.inject_cycle > 0 in
    ( coverage,
      if want_checkpoints then
        Some (Option.value config.checkpoint_every ~default:default_checkpoint_interval)
      else None )

(* Site enumeration and sampling, under its own span so campaign time
   decomposes into golden / site_sampling / prefilter / simulate /
   converge. *)
let sample_sites ~obs ~config core target =
  Obs.span obs "site_sampling" @@ fun () ->
  let pool =
    Array.of_list (Injection.sites ~include_cells:config.include_cells core target)
  in
  let rng = Stats.Rng.create config.seed in
  match config.sample_size with
  | Some k when k < Array.length pool -> Stats.Rng.sample_without_replacement rng k pool
  | Some _ | None -> pool

(* ---- sharding, fingerprints and journal plumbing ----

   A campaign is a fixed global task list: model-major over the full
   sampled site array, exactly the sequential engine's historical
   order.  Shard I/N executes the sites whose sample index is
   congruent to I-1 mod N — same seed therefore gives disjoint,
   covering shards — and a journal records each finished verdict under
   its global site index, so kill/resume and shard/merge both
   reassemble the unsharded run byte-identically. *)

let validate_shard config =
  let i, n = config.shard in
  if n < 1 || i < 1 || i > n then
    invalid_arg (Printf.sprintf "Campaign: shard index out of range: %d/%d" i n);
  (i, n)

let fingerprint ~config prog target sample =
  { Journal.workload = prog.Sparc.Asm.name;
    prog_hash = Journal.hash_program prog;
    netlist_hash =
      Journal.hash_names (Array.map (fun s -> s.Injection.site_name) sample);
    target = Injection.target_name target;
    models = List.map C.fault_model_name config.models;
    sample_size = config.sample_size;
    include_cells = config.include_cells;
    inject_cycle = config.inject_cycle;
    hang_factor = config.hang_factor;
    compare_reads = config.compare_reads;
    seed = config.seed;
    total_sites = Array.length sample;
    shard = config.shard }

(* Returns the (optional) writer, a replay lookup keyed by
   (model, global site index), and an idempotent close. *)
let open_journal ~journal ~resume fp =
  match journal with
  | None -> (None, (fun _ ~index:_ -> None), fun () -> ())
  | Some path ->
      let w, entries =
        if resume then
          match Journal.open_resume path fp with
          | Ok (w, entries) -> (w, entries)
          | Error msg -> raise (Journal.Rejected msg)
        else (Journal.create path fp, [])
      in
      let tbl = Hashtbl.create ((2 * List.length entries) + 1) in
      List.iter
        (fun e ->
          Hashtbl.replace tbl (e.Journal.result.model, e.Journal.index) e.Journal.result)
        entries;
      ( Some w,
        (fun model ~index -> Hashtbl.find_opt tbl (model, index)),
        fun () -> Journal.close w )

let replay_check ~index (site : Injection.site) r =
  if r.site_name <> site.Injection.site_name then
    raise
      (Journal.Rejected
         (Printf.sprintf "journal verdict at site %d names %S, campaign expects %S"
            index r.site_name site.Injection.site_name))

let build_tasks config sample =
  Array.concat
    (List.map (fun model -> Array.map (fun site -> (model, site)) sample) config.models)

(* Per-task classification with globally chosen collapse leaders:
   leaders are the first class member in global task order exactly as
   the sequential engine always chose them, so the assignment is
   identical for every shard and every domain count. *)
type task_plan =
  | T_direct
  | T_pruned
  | T_lead of Injection.site * C.fault_model
  | T_follow of int  (* global task index of the class leader *)

(* Everything that only exists to classify and simulate: built lazily
   so a resume whose journal already covers the whole shard skips the
   golden run and the static analysis entirely. *)
type machinery = {
  m_golden : golden;
  m_golden_lead : golden;
      (* prefilter bypassed for collapse-class leaders: the member
         reached simulation, so its representative must simulate too *)
  m_plan : C.replay_plan option;
  m_plans : task_plan array;
}

let build_machinery ~obs ~config sys prog tasks =
  let core = Leon3.System.core sys in
  let coverage, checkpoint_every = golden_options config ~bounded_faults:false in
  let golden =
    golden_run ~obs ~coverage
      ~trace:(config.event || config.batch)
      ?checkpoint_every sys prog ~max_cycles:5_000_000
  in
  let graph =
    if config.static then
      Some
        (Obs.span obs "static.graph" (fun () ->
             Analysis.Graph.build core.Leon3.Core.circuit))
    else None
  in
  let static = if config.static then Some (build_static ~obs ?graph core) else None in
  (* the kernel lowers the levelized schedule at elaboration; no graph
     extraction is needed just to replay *)
  let plan =
    if config.event then Some (C.compiled_plan core.Leon3.Core.circuit) else None
  in
  let plans =
    let class_leader = Hashtbl.create 64 in
    Array.mapi
      (fun i (model, site) ->
        match classify static golden site model with
        | P_direct -> T_direct
        | P_pruned -> T_pruned
        | P_class ((rsite, rmodel) as key) -> (
            match Hashtbl.find_opt class_leader key with
            | Some j -> T_follow j
            | None ->
                Hashtbl.add class_leader key i;
                T_lead ({ site with Injection.fault_site = rsite }, rmodel)))
      tasks
  in
  { m_golden = golden;
    m_golden_lead = { golden with coverage = None };
    m_plan = plan;
    m_plans = plans }

(* ---- reusable campaign preparation (the serve layer's golden-trace
   + static-analysis cache) ----

   Everything shard-independent and expensive — golden run, static
   analysis, replay plan, per-task classification — packaged so repeat
   or concurrent campaigns over the same (program, netlist, config)
   never recompute it.  The fingerprint is shard-normalised to (1,1):
   any shard of the same campaign may consume the same preparation. *)
type prepared = {
  p_fingerprint : Journal.fingerprint;
  p_machinery : machinery;
}

let prepare ?(config = default_config) ?(obs = Obs.null) sys prog target =
  ignore (validate_shard config);
  Leon3.System.set_obs sys obs;
  Leon3.System.set_hang_cone sys config.tail;
  let sample = sample_sites ~obs ~config (Leon3.System.core sys) target in
  let tasks = build_tasks config sample in
  let m = build_machinery ~obs ~config sys prog tasks in
  Leon3.System.set_obs sys Obs.null;
  Leon3.System.set_hang_cone sys true;
  { p_fingerprint =
      { (fingerprint ~config prog target sample) with Journal.shard = (1, 1) };
    p_machinery = m }

let prepared_fingerprint p = p.p_fingerprint

(* A consumer recomputes its own (cheap) sample and fingerprint, so a
   preparation from a different campaign — other netlist, seed, config
   or program — cannot be spliced in silently: the site-name hash and
   config fields are all compared.  The shard spec is exempt by
   construction. *)
let check_prepared ~who fp = function
  | None -> None
  | Some p -> (
      match Journal.base_mismatch p.p_fingerprint fp with
      | Some f ->
          invalid_arg
            (Printf.sprintf "%s: prepared machinery mismatch: %s differs from this \
                             campaign" who f)
      | None -> Some p.p_machinery)

let simulate_lead ~obs ~config ?detect_loops m sys prog tasks j =
  match m.m_plans.(j) with
  | T_lead (rep, rmodel) ->
      let model, _ = tasks.(j) in
      let r0 =
        run_one ~obs ?plan:m.m_plan ?detect_loops sys prog m.m_golden_lead
          ~inject_cycle:config.inject_cycle ~hang_factor:config.hang_factor
          ~compare_reads:config.compare_reads rep rmodel
      in
      { r0 with model }
  | T_direct | T_pruned | T_follow _ ->
      failwith "Campaign: collapse leader reclassified (internal error)"

(* ---- bit-parallel batching (PPSFP) ----

   A batchable task is a direct or collapse-leader simulation of a
   permanent fault that survived the activation prefilter: up to
   [C.max_lanes] of them advance against the golden trace in one
   bitwise pass, with verdicts identical to [run_one]'s.  Lanes the
   trace cannot decide (watchdog candidates outliving the golden run)
   are ejected and decided on the scalar engine. *)

let task_prefiltered m tasks ti =
  let model, site = tasks.(ti) in
  match m.m_golden.coverage with
  | Some cov -> C.never_activates cov site.Injection.fault_site model
  | None -> false

let batchable ~config m tasks ti =
  config.batch
  && (not config.compare_reads)
  && m.m_golden.trace <> None
  &&
  match m.m_plans.(ti) with
  | T_direct -> not (task_prefiltered m tasks ti)
  | T_lead _ -> true
  | T_pruned | T_follow _ -> false

let chunk_list k l =
  let rec take n acc = function
    | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
    | tl -> (List.rev acc, tl)
  in
  let rec go = function
    | [] -> []
    | l ->
        let c, rest = take k [] l in
        c :: go rest
  in
  go l

(* Continue an ejected lane from its transplanted trace-end state
   instead of re-running the whole prefix: the batch already carried
   the fault to the end of the golden trace and handed over the lane's
   complete state (circuit, memory image, bus drivers, comparator
   counters), so only the genuinely undecided suffix — trace end to
   verdict — is simulated, with cycle-proof hang detection armed.
   Verdicts match a from-zero re-run because the transplanted state is
   state-for-state equal to the re-run's state at trace end
   (qcheck-tested) and the comparator resumes at the same counters. *)
let continue_ejected ~obs ~config golden sys e (site : Injection.site) model =
  let t_start = if Obs.enabled obs then Obs.now obs else 0. in
  let circuit = (Leon3.System.core sys).Leon3.Core.circuit in
  Leon3.System.transplant sys e.Batch.e_tp ~mem:e.Batch.e_mem ~iport:e.Batch.e_iport
    ~dport:e.Batch.e_dport ~events_rev:e.Batch.e_events_rev
    ~n_events:(List.length e.Batch.e_events_rev)
    ~n_writes:e.Batch.e_writes;
  let start_cycle = C.transplant_cycle e.Batch.e_tp in
  let reference = golden.writes in
  let matched = ref e.Batch.e_matched in
  let mismatch_cycle = ref e.Batch.e_mismatch in
  let on_event ev =
    if not (Bus_event.is_write ev) then true
    else if !matched < Array.length reference && Bus_event.equal ev reference.(!matched)
    then begin
      incr matched;
      true
    end
    else begin
      mismatch_cycle := Some (Leon3.System.cycles sys);
      false
    end
  in
  let max_cycles = (config.hang_factor * golden.cycles) + 2000 in
  let stop = Leon3.System.run ~on_event ~detect_loops:true sys ~max_cycles in
  C.clear_fault circuit;
  let outcome, detect_cycle =
    match stop with
    | Leon3.System.Aborted -> (Failure (Wrong_write !matched), !mismatch_cycle)
    | Leon3.System.Trapped code -> (Failure (Trap code), Some (Leon3.System.cycles sys))
    | Leon3.System.Cycle_limit -> (Failure Hang, Some max_cycles)
    | Leon3.System.Exited _ ->
        if !matched = Array.length reference then (Silent, None)
        else (Failure (Missing_writes !matched), Some (Leon3.System.cycles sys))
  in
  let r =
    { site_name = site.Injection.site_name; model; outcome; detect_cycle;
      inject_cycle = config.inject_cycle; sim = Simulated }
  in
  if Obs.enabled obs then begin
    Obs.incr obs "tail.transplants";
    Obs.incr obs ~by:start_cycle "tail.prefix_saved";
    record_run obs golden ~dt:(Obs.now obs -. t_start) ~start_cycle r
  end;
  r

(* Simulate one chunk of batchable tasks (≤ [C.max_lanes]) in a single
   bit-parallel pass; returns verdicts aligned with [tis]. *)
let run_batch_chunk ~obs ~config m sys prog tasks tis =
  let t_start = if Obs.enabled obs then Obs.now obs else 0. in
  let golden = m.m_golden in
  let trace = Option.get golden.trace in
  let max_cycles = (config.hang_factor * golden.cycles) + 2000 in
  let specs =
    Array.map
      (fun ti ->
        let model, site = tasks.(ti) in
        let fsite, fmodel =
          match m.m_plans.(ti) with
          | T_lead (rep, rmodel) -> (rep.Injection.fault_site, rmodel)
          | T_direct -> (site.Injection.fault_site, model)
          | T_pruned | T_follow _ -> assert false
        in
        { Batch.site = fsite; model = fmodel; from_cycle = config.inject_cycle;
          duration = None })
      tis
  in
  let outcomes, stats =
    Batch.run ~obs ~tail:config.tail ~sys ~prog ~trace ~reference:golden.writes
      ~max_cycles specs
  in
  let n = Array.length tis in
  let dt =
    if Obs.enabled obs then (Obs.now obs -. t_start) /. float_of_int (max 1 n) else 0.
  in
  if Obs.enabled obs then begin
    Obs.incr obs "batch.passes";
    Obs.incr obs ~by:n "batch.lanes";
    Obs.observe obs "batch.occupancy" (float_of_int n);
    (* the replay counters CI and the bench track: lane evaluations
       actually performed vs what dense per-lane sweeps would cost *)
    Obs.incr obs ~by:stats.C.bs_evals "diff.nodes_evaluated";
    Obs.incr obs ~by:stats.C.bs_dense_evals "diff.golden_evaluated"
  end;
  Array.mapi
    (fun k ti ->
      let model, site = tasks.(ti) in
      match outcomes.(k) with
      | Batch.Done br ->
          Obs.incr obs "batch.lanes_retired";
          let outcome, detect_cycle =
            match br.Batch.stop with
            | Leon3.System.Aborted ->
                (Failure (Wrong_write br.Batch.matched), br.Batch.mismatch_cycle)
            | Leon3.System.Trapped code ->
                (Failure (Trap code), Some br.Batch.stop_cycle)
            | Leon3.System.Cycle_limit -> (Failure Hang, Some max_cycles)
            | Leon3.System.Exited _ ->
                if br.Batch.matched = Array.length golden.writes then (Silent, None)
                else
                  (Failure (Missing_writes br.Batch.matched), Some br.Batch.stop_cycle)
          in
          let r =
            { site_name = site.Injection.site_name; model; outcome; detect_cycle;
              inject_cycle = config.inject_cycle; sim = Simulated }
          in
          if Obs.enabled obs then record_run obs golden ~dt ~start_cycle:0 r;
          r
      | Batch.Ejected eo ->
          Obs.incr obs "batch.ejected";
          let tw_start = if Obs.enabled obs then Obs.now obs else 0. in
          let r =
            match eo with
            | Some e ->
                (* the dense tail already carried this lane to its
                   settled trace-end state: continue scalar from there.
                   T_direct and T_lead lanes were both armed with the
                   fault the plan resolved to, and the verdict is
                   recorded under the member's site/model either way,
                   exactly as [simulate_lead] does. *)
                continue_ejected ~obs ~config m.m_golden sys e site model
            | None -> (
                (* tail engine disabled: ejected lanes are
                   overwhelmingly watchdog candidates — rerun them
                   scalar from cycle 0 with hang-loop detection armed,
                   and without the replay plan (a lane that outlived
                   the trace is densely diverged, where plain
                   simulation is cheaper than differential replay) *)
                match m.m_plans.(ti) with
                | T_direct ->
                    run_one ~obs ~detect_loops:true sys prog m.m_golden
                      ~inject_cycle:config.inject_cycle
                      ~hang_factor:config.hang_factor
                      ~compare_reads:config.compare_reads site model
                | T_lead _ ->
                    simulate_lead ~obs ~config ~detect_loops:true m sys prog tasks ti
                | T_pruned | T_follow _ -> assert false)
          in
          if Obs.enabled obs then
            Obs.add_time obs "tail.watchdog" (Obs.now obs -. tw_start);
          r)
    tis

let shard_summaries config all =
  List.map
    (fun model -> (model, summarize (List.filter (fun r -> r.model = model) all)))
    config.models

let collect_results tasks exec_ids results =
  Array.to_list
    (Array.map
       (fun ti ->
         match results.(ti) with
         | Some r -> r
         | None ->
             let model, site = tasks.(ti) in
             failwith
               (Printf.sprintf "Campaign: missing result for task %d (site %s, model %s)"
                  ti site.Injection.site_name (C.fault_model_name model)))
       exec_ids)

let run ?(config = default_config) ?(obs = Obs.null) ?on_progress ?journal
    ?(resume = false) ?prepared sys prog target =
  let shard_i, shard_n = validate_shard config in
  Leon3.System.set_obs sys obs;
  (* the observed-cone hang detector is part of the watchdog-tail
     machinery: with [tail] off the A/B reverts to the legacy
     full-state (inert) comparison *)
  Leon3.System.set_hang_cone sys config.tail;
  let core = Leon3.System.core sys in
  let sample = sample_sites ~obs ~config core target in
  let fp = fingerprint ~config prog target sample in
  let supplied = check_prepared ~who:"Campaign.run" fp prepared in
  let writer, lookup, close_journal = open_journal ~journal ~resume fp in
  Fun.protect ~finally:close_journal @@ fun () ->
  let nsites = Array.length sample in
  let tasks = build_tasks config sample in
  let exec_ids =
    let ids = ref [] in
    Array.iteri
      (fun ti _ -> if ti mod nsites mod shard_n = shard_i - 1 then ids := ti :: !ids)
      tasks;
    Array.of_list (List.rev !ids)
  in
  let machinery =
    match supplied with
    | Some m -> Lazy.from_val m
    | None -> lazy (build_machinery ~obs ~config sys prog tasks)
  in
  let results = Array.make (Array.length tasks) None in
  (* Bit-parallel pre-pass: the batchable remainder of the shard runs
     in ≤ max_lanes-wide PPSFP passes up front; the walk below emits
     (and journals) the stashed verdicts in its usual order, so
     journal layout and result order are unchanged. *)
  let batch_stash = Hashtbl.create 64 in
  (if config.batch then begin
     let pending =
       List.filter
         (fun ti ->
           let model, _ = tasks.(ti) in
           lookup model ~index:(ti mod nsites) = None)
         (Array.to_list exec_ids)
     in
     if pending <> [] then begin
       let m = Lazy.force machinery in
       List.iter
         (fun chunk ->
           let tis = Array.of_list chunk in
           let rs = run_batch_chunk ~obs ~config m sys prog tasks tis in
           Array.iteri (fun k r -> Hashtbl.replace batch_stash tis.(k) r) rs)
         (chunk_list C.max_lanes (List.filter (batchable ~config m tasks) pending))
     end
   end);
  let orphans = Hashtbl.create 8 in
  let total = Array.length exec_ids in
  let done_ = ref 0 in
  let progress () =
    incr done_;
    match on_progress with Some f -> f ~done_:!done_ ~total | None -> ()
  in
  Array.iter
    (fun ti ->
      let model, site = tasks.(ti) in
      let index = ti mod nsites in
      let r =
        match lookup model ~index with
        | Some r ->
            replay_check ~index site r;
            Obs.incr obs "journal.replayed";
            r
        | None ->
            let m = Lazy.force machinery in
            let r =
              match Hashtbl.find_opt batch_stash ti with
              | Some r -> r
              | None -> (
              match m.m_plans.(ti) with
              | T_direct ->
                  run_one ~obs ?plan:m.m_plan sys prog m.m_golden
                    ~inject_cycle:config.inject_cycle ~hang_factor:config.hang_factor
                    ~compare_reads:config.compare_reads site model
              | T_pruned ->
                  let r = pruned_result ~inject_cycle:config.inject_cycle site model in
                  record_static obs m.m_golden r;
                  r
              | T_lead _ -> simulate_lead ~obs ~config m sys prog tasks ti
              | T_follow j ->
                  let lead =
                    match results.(j) with
                    | Some lead -> lead
                    | None -> (
                        (* the leader's member belongs to another shard:
                           simulate its representative once, locally *)
                        match Hashtbl.find_opt orphans j with
                        | Some lead -> lead
                        | None ->
                            let lead = simulate_lead ~obs ~config m sys prog tasks j in
                            Hashtbl.add orphans j lead;
                            lead)
                  in
                  let r =
                    follower_result ~inject_cycle:config.inject_cycle site model lead
                  in
                  record_static obs m.m_golden r;
                  r)
            in
            (match writer with Some w -> Journal.append w ~index r | None -> ());
            r
      in
      results.(ti) <- Some r;
      progress ())
    exec_ids;
  Leon3.System.set_obs sys Obs.null;
  Leon3.System.set_hang_cone sys true;
  let all = collect_results tasks exec_ids results in
  (shard_summaries config all, all)

let pf_percent s = 100. *. s.pf

(* Parallel campaigns: the runs are independent, so they shard across
   domains.  Each domain owns a private RTL system; injection sites
   carry node ids, which are valid across systems because circuit
   construction is deterministic (same build ⇒ same numbering) — the
   same property lets every domain share the golden coverage and
   checkpoints captured on the scratch system.  The task order is
   fixed up front, so results are identical to the sequential
   engine's. *)
let run_parallel ?(config = default_config) ?(obs = Obs.null) ?(domains = 4)
    ?on_progress ?journal ?(resume = false) ?prepared sys_factory prog target =
  let shard_i, shard_n = validate_shard config in
  let domains = max 1 domains in
  let scratch = sys_factory () in
  Leon3.System.set_obs scratch obs;
  Leon3.System.set_hang_cone scratch config.tail;
  let sample = sample_sites ~obs ~config (Leon3.System.core scratch) target in
  let fp = fingerprint ~config prog target sample in
  let supplied = check_prepared ~who:"Campaign.run_parallel" fp prepared in
  let writer, lookup, close_journal = open_journal ~journal ~resume fp in
  Fun.protect ~finally:close_journal @@ fun () ->
  let nsites = Array.length sample in
  let tasks = build_tasks config sample in
  let exec_ids =
    let ids = ref [] in
    Array.iteri
      (fun ti _ -> if ti mod nsites mod shard_n = shard_i - 1 then ids := ti :: !ids)
      tasks;
    Array.of_list (List.rev !ids)
  in
  let results = Array.make (Array.length tasks) None in
  let total = Array.length exec_ids in
  let completed = Atomic.make 0 in
  let progress () =
    match on_progress with
    | Some f -> f ~done_:(Atomic.fetch_and_add completed 1 + 1) ~total
    | None -> ()
  in
  let journal_append ~index r =
    match writer with Some w -> Journal.append w ~index r | None -> ()
  in
  (* Journaled verdicts replay before any domain spawns, so their
     result slots are read-only by the time workers run. *)
  Array.iter
    (fun ti ->
      let model, site = tasks.(ti) in
      let index = ti mod nsites in
      match lookup model ~index with
      | Some r ->
          replay_check ~index site r;
          Obs.incr obs "journal.replayed";
          results.(ti) <- Some r;
          progress ()
      | None -> ())
    exec_ids;
  let needs_sim = Array.exists (fun ti -> results.(ti) = None) exec_ids in
  (if needs_sim then begin
     (* graph, plan and trace are immutable after construction, so all
        domains share them read-only *)
     let m =
       match supplied with
       | Some m -> m
       | None -> build_machinery ~obs ~config scratch prog tasks
     in
     let todo =
       List.filter
         (fun ti ->
           results.(ti) = None
           && match m.m_plans.(ti) with T_follow _ -> false | _ -> true)
         (Array.to_list exec_ids)
     in
     (* Work units: batchable tasks fold into ≤ max_lanes-wide PPSFP
        passes, the rest stay single-task; one unit is one queue
        claim, so a whole batch runs on one domain's system. *)
     let units =
       let batched, scalar = List.partition (batchable ~config m tasks) todo in
       Array.of_list
         (List.map
            (fun c -> `Batch (Array.of_list c))
            (chunk_list C.max_lanes batched)
         @ List.map (fun ti -> `One ti) scalar)
     in
     let next = Atomic.make 0 in
     let aborted = Atomic.make false in
     let errors = Array.make domains None in
     let process sys fork ti =
       let model, site = tasks.(ti) in
       let r =
         match m.m_plans.(ti) with
         | T_pruned ->
             let r = pruned_result ~inject_cycle:config.inject_cycle site model in
             record_static fork m.m_golden r;
             r
         | T_direct ->
             run_one ~obs:fork ?plan:m.m_plan sys prog m.m_golden
               ~inject_cycle:config.inject_cycle ~hang_factor:config.hang_factor
               ~compare_reads:config.compare_reads site model
         | T_lead _ -> simulate_lead ~obs:fork ~config m sys prog tasks ti
         | T_follow _ -> assert false (* filtered out of [todo] *)
       in
       journal_append ~index:(ti mod nsites) r;
       results.(ti) <- Some r;
       progress ()
     in
     let process_unit sys fork = function
       | `One ti -> process sys fork ti
       | `Batch tis ->
           let rs = run_batch_chunk ~obs:fork ~config m sys prog tasks tis in
           Array.iteri
             (fun k r ->
               let ti = tis.(k) in
               journal_append ~index:(ti mod nsites) r;
               results.(ti) <- Some r;
               progress ())
             rs
     in
     (* Every worker (the scratch domain included) aggregates into a
        private fork, so the hot path never contends; the forks merge
        into [obs] in spawn order at join, which keeps totals
        deterministic for any domain count.  A worker that raises
        records the exception and flips [aborted] so its peers stop at
        the next task boundary instead of burning through the queue. *)
     let worker wi sys fork =
       Leon3.System.set_obs sys fork;
       Leon3.System.set_hang_cone sys config.tail;
       let rec go () =
         if not (Atomic.get aborted) then begin
           let k = Atomic.fetch_and_add next 1 in
           if k < Array.length units then begin
             process_unit sys fork units.(k);
             go ()
           end
         end
       in
       try go ()
       with e ->
         errors.(wi) <- Some (e, Printexc.get_raw_backtrace ());
         Atomic.set aborted true
     in
     let forks = Array.init domains (fun _ -> Obs.fork obs) in
     let spawned =
       List.init (domains - 1) (fun i ->
           Domain.spawn (fun () -> worker (i + 1) (sys_factory ()) forks.(i + 1)))
     in
     worker 0 scratch forks.(0);
     List.iter Domain.join spawned;
     Array.iter (fun fork -> Obs.merge ~into:obs fork) forks;
     (* A failed worker re-raises its original exception, with its
        backtrace, after every domain has joined and its fork has been
        merged — nothing is masked behind a missing-result failure, and
        every verdict classified before the abort is already
        journaled. *)
     Array.iter
       (function
         | Some (e, bt) -> Printexc.raise_with_backtrace e bt
         | None -> ())
       errors;
     (* Collapse followers copy their leader's verdict; leaders always
        precede followers in task order, so in-shard leaders are
        already filled, and a leader whose member sits in another
        shard is simulated once here, on the scratch system. *)
     Leon3.System.set_obs scratch obs;
     let orphans = Hashtbl.create 8 in
     Array.iter
       (fun ti ->
         match m.m_plans.(ti) with
         | T_follow j when results.(ti) = None ->
             let lead =
               match results.(j) with
               | Some lead -> lead
               | None -> (
                   match Hashtbl.find_opt orphans j with
                   | Some lead -> lead
                   | None ->
                       (match m.m_plans.(j) with
                       | T_lead _ -> ()
                       | T_direct | T_pruned | T_follow _ ->
                           let lmodel, lsite = tasks.(j) in
                           failwith
                             (Printf.sprintf
                                "run_parallel: missing leader result for task %d \
                                 (site %s, model %s)"
                                j lsite.Injection.site_name
                                (C.fault_model_name lmodel)));
                       let lead = simulate_lead ~obs ~config m scratch prog tasks j in
                       Hashtbl.add orphans j lead;
                       lead)
             in
             let model, site = tasks.(ti) in
             let r = follower_result ~inject_cycle:config.inject_cycle site model lead in
             record_static obs m.m_golden r;
             journal_append ~index:(ti mod nsites) r;
             results.(ti) <- Some r;
             progress ()
         | T_follow _ | T_direct | T_pruned | T_lead _ -> ())
       exec_ids
   end);
  Leon3.System.set_obs scratch Obs.null;
  let all = collect_results tasks exec_ids results in
  (shard_summaries config all, all)

(* Transient study (the paper's stated future work): single-event
   upsets — one-cycle bit inversions at uniformly random instants of
   the run.  Unlike permanent faults the outcome depends on *when* the
   fault hits, so each sampled site gets its own random instant.  The
   1-cycle window is where checkpoint trimming shines: each injection
   resumes from the checkpoint before its instant and stops at the
   first checkpoint where its state has re-converged with the golden
   run. *)
let run_transient ?(sample = 400) ?(seed = 7) ?(trim = true) ?(event = true)
    ?checkpoint_every ?(obs = Obs.null) sys prog target =
  Leon3.System.set_obs sys obs;
  let core = Leon3.System.core sys in
  let checkpoint_every =
    if trim then Some (Option.value checkpoint_every ~default:default_checkpoint_interval)
    else None
  in
  let golden =
    golden_run ~obs ~trace:event ?checkpoint_every sys prog ~max_cycles:5_000_000
  in
  let plan =
    if event then
      Some (Analysis.Graph.replay_plan (Analysis.Graph.build core.Leon3.Core.circuit))
    else None
  in
  let chosen =
    Obs.span obs "site_sampling" @@ fun () ->
    let pool = Array.of_list (Injection.sites core target) in
    let rng = Stats.Rng.create seed in
    let chosen =
      if sample < Array.length pool then
        Stats.Rng.sample_without_replacement rng sample pool
      else pool
    in
    Array.map (fun site -> (site, Stats.Rng.int rng (max 1 golden.cycles))) chosen
  in
  let results =
    Array.to_list
      (Array.map
         (fun (site, inject_cycle) ->
           run_one ~obs ?plan sys prog golden ~inject_cycle ~duration:1 site C.Bit_flip)
         chosen)
  in
  Leon3.System.set_obs sys Obs.null;
  summarize results
