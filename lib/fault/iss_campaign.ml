module Emulator = Iss.Emulator
module Bus_event = Sparc.Bus_event
module Asm = Sparc.Asm
module C = Rtl.Circuit

type failure_kind = Journal.failure_kind =
  | Wrong_write of int
  | Missing_writes of int
  | Trap of int
  | Hang

type outcome = Journal.outcome = Silent | Failure of failure_kind

type run_result = Journal.run_result = {
  site_name : string;
  model : C.fault_model;
  outcome : outcome;
  detect_cycle : int option;
  inject_cycle : int;
  sim : Journal.sim_status;
}

type model = Reg_flip | Mem_flip | Op_flip

let all_models = [ Reg_flip; Mem_flip; Op_flip ]

let model_name = function
  | Reg_flip -> "reg-flip"
  | Mem_flip -> "mem-flip"
  | Op_flip -> "op-flip"

let model_of_name = function
  | "reg-flip" -> Some Reg_flip
  | "mem-flip" -> Some Mem_flip
  | "op-flip" -> Some Op_flip
  | _ -> None

type site = {
  smodel : model;
  index : int;  (* dynamic instruction index of the injection *)
  loc : int;  (* register-file slot / memory word address / unused *)
  bit : int;
  site_name : string;
}

(* The site name carries the ISS model class: the journal layer only
   knows RTL fault models (every ISS verdict is recorded as a
   bit-flip), so the name prefix is what partitions a journal's
   verdicts back into reg/mem/op summaries. *)
let site_name_of ~model ~index ~loc ~bit =
  match model with
  | Reg_flip -> Printf.sprintf "iss.reg[%d.%d]@%d" loc bit index
  | Mem_flip -> Printf.sprintf "iss.mem[0x%08x.%d]@%d" loc bit index
  | Op_flip -> Printf.sprintf "iss.op[%d]@%d" bit index

let model_of_site_name name =
  if String.starts_with ~prefix:"iss.reg[" name then Some Reg_flip
  else if String.starts_with ~prefix:"iss.mem[" name then Some Mem_flip
  else if String.starts_with ~prefix:"iss.op[" name then Some Op_flip
  else None

type config = {
  models : model list;
  samples_per_model : int;
  hang_factor : int;
  seed : int;
  shard : int * int;
}

let default_config =
  { models = all_models; samples_per_model = 400; hang_factor = 4; seed = 7;
    shard = (1, 1) }

let target_name = "iss"

(* Campaign runs need functional verdicts only: caches charge cycles
   without changing results, and read events are never compared, so
   both are off.  Latencies are therefore reported in {e instructions},
   not cycles. *)
let emulator_config =
  { Emulator.default_config with
    Emulator.icache = None;
    dcache = None;
    record_reads = false }

type golden = {
  writes : Bus_event.t array;
  instructions : int;
  exit_code : int;
}

let golden_run ?(obs = Obs.null) prog =
  Obs.span obs "golden" @@ fun () ->
  let r = Emulator.execute ~config:emulator_config prog in
  match r.Emulator.stop with
  | Emulator.Exited code ->
      Obs.incr obs ~by:r.Emulator.instructions "iss.golden_instructions";
      { writes = Array.of_list r.Emulator.writes;
        instructions = r.Emulator.instructions;
        exit_code = code }
  | stop ->
      failwith
        (Format.asprintf "Iss_campaign: golden run did not exit cleanly: %a"
           Emulator.pp_stop stop)

(* ---- site sampling ---- *)

(* Memory faults land in the workload's data segments (or, for a
   data-less workload, the result region): corrupting code words would
   alias the opcode model through the decode cache, and corrupting
   untouched address space is trivially silent. *)
let memory_words prog =
  let words =
    List.concat_map
      (fun (base, data) -> List.init (Array.length data) (fun i -> base + (4 * i)))
      prog.Asm.data
  in
  match words with
  | [] -> List.init 16 (fun i -> Sparc.Layout.result_base + (4 * i))
  | ws -> ws

let regfile_slots = 8 + (16 * emulator_config.Emulator.nwindows)

let sample_sites ~config golden prog =
  if config.samples_per_model < 1 then
    invalid_arg "Iss_campaign: samples_per_model must be positive";
  if golden.instructions < 1 then failwith "Iss_campaign: empty golden run";
  let rng = Stats.Rng.create config.seed in
  let mem_words = Array.of_list (memory_words prog) in
  let draw model =
    let index = Stats.Rng.int rng golden.instructions in
    let loc, bit =
      match model with
      | Reg_flip -> (Stats.Rng.int rng regfile_slots, Stats.Rng.int rng 32)
      | Mem_flip ->
          ( mem_words.(Stats.Rng.int rng (Array.length mem_words)),
            Stats.Rng.int rng 32 )
      | Op_flip -> (0, Stats.Rng.int rng 32)
    in
    { smodel = model; index; loc; bit;
      site_name = site_name_of ~model ~index ~loc ~bit }
  in
  Array.concat
    (List.map
       (fun m -> Array.init config.samples_per_model (fun _ -> draw m))
       config.models)

(* The journal fingerprint: the site-name hash binds the seed, sample
   size, model list and the golden run's instruction count at once
   (injection instants are drawn from it), so a stale journal cannot
   replay against a different campaign.  [models] is the single RTL
   model every ISS verdict is recorded as; the ISS model class lives in
   the site names (see {!site_name_of}), which keeps {!Journal.merge}'s
   (model, site-index) uniqueness valid with a flat task list. *)
let fingerprint ~config prog (sample : site array) =
  { Journal.workload = prog.Asm.name;
    prog_hash = Journal.hash_program prog;
    netlist_hash = Journal.hash_names (Array.map (fun s -> s.site_name) sample);
    target = target_name;
    models = [ C.fault_model_name C.Bit_flip ];
    sample_size = Some config.samples_per_model;
    include_cells = false;
    inject_cycle = 0;
    hang_factor = config.hang_factor;
    compare_reads = false;
    seed = config.seed;
    total_sites = Array.length sample;
    shard = config.shard }

(* ---- reusable campaign preparation ----

   The ISS analogue of {!Campaign.prepare}: golden run + site sample,
   shard-normalised.  The fingerprint alone cannot bind the ISS model
   list (every verdict is journaled as bit-flip), so the whole config
   is kept and compared structurally at consumption time. *)
type prepared = {
  p_fingerprint : Journal.fingerprint;
  p_config : config;
  p_golden : golden;
  p_sample : site array;
}

let validate_shard config =
  let i, n = config.shard in
  if n < 1 || i < 1 || i > n then
    invalid_arg (Printf.sprintf "Iss_campaign: shard index out of range: %d/%d" i n);
  (i, n)

let prepare ?(config = default_config) ?(obs = Obs.null) prog =
  ignore (validate_shard config);
  let golden = golden_run ~obs prog in
  let sample =
    Obs.span obs "site_sampling" (fun () -> sample_sites ~config golden prog)
  in
  { p_fingerprint = { (fingerprint ~config prog sample) with Journal.shard = (1, 1) };
    p_config = { config with shard = (1, 1) };
    p_golden = golden;
    p_sample = sample }

let prepared_fingerprint p = p.p_fingerprint

(* Returns the (golden, sample) to run with; raises on any mismatch a
   silent reuse could hide — the program hash and every config field
   except the shard. *)
let use_prepared ~who ~config prog = function
  | None -> None
  | Some p ->
      if { config with shard = (1, 1) } <> p.p_config then
        invalid_arg
          (Printf.sprintf "%s: prepared run was built for a different config" who);
      if Journal.hash_program prog <> p.p_fingerprint.Journal.prog_hash then
        invalid_arg
          (Printf.sprintf "%s: prepared run was built for a different program" who);
      Some (p.p_golden, p.p_sample)

(* ---- one faulty run ---- *)

exception Diverged of failure_kind

let trap_code = function
  | Emulator.Illegal_instruction _ -> Leon3.Core.trap_illegal
  | Emulator.Misaligned_access _ -> Leon3.Core.trap_misaligned
  | Emulator.Division_by_zero -> Leon3.Core.trap_div0

let record_run obs ~dt r =
  Obs.incr obs "injections";
  Obs.incr obs "iss.injections";
  Obs.incr obs "simulated";
  Obs.add_time obs "simulate" dt;
  (match r.outcome with
  | Silent -> Obs.incr obs "outcome.silent"
  | Failure (Wrong_write _) -> Obs.incr obs "outcome.wrong_write"
  | Failure (Missing_writes _) -> Obs.incr obs "outcome.missing_writes"
  | Failure (Trap _) -> Obs.incr obs "outcome.trap"
  | Failure Hang -> Obs.incr obs "outcome.hang");
  match (r.outcome, r.detect_cycle) with
  | Failure (Wrong_write _ | Missing_writes _ | Trap _), Some d ->
      Obs.observe obs "detect_latency" (float_of_int (d - r.inject_cycle))
  | (Failure _ | Silent), _ -> ()

let run_one ?(obs = Obs.null) prog golden ~hang_factor (site : site) =
  let t_start = if Obs.enabled obs then Obs.now obs else 0. in
  let budget = max (golden.instructions + 1) (hang_factor * golden.instructions) in
  let config = { emulator_config with Emulator.max_instructions = budget } in
  let t = Emulator.create ~config prog in
  let matched = ref 0 in
  let nwrites = Array.length golden.writes in
  Emulator.set_event_hook t
    (Some
       (fun ev ->
         if Bus_event.is_write ev then
           if !matched >= nwrites || not (Bus_event.equal ev golden.writes.(!matched))
           then raise (Diverged (Wrong_write !matched))
           else incr matched));
  (* fault-free prefix up to the injection instant *)
  let rec advance () =
    if Emulator.instructions t < site.index then
      match Emulator.step t with
      | Emulator.Running -> advance ()
      | Emulator.Stopped _ ->
          failwith "Iss_campaign: golden prefix stopped before the injection instant"
  in
  advance ();
  (match site.smodel with
  | Reg_flip -> Emulator.flip_regfile_bit t ~slot:site.loc ~bit:site.bit
  | Mem_flip -> Emulator.flip_memory_bit t ~addr:site.loc ~bit:site.bit
  | Op_flip -> Emulator.corrupt_next_fetch t ~bit:site.bit);
  let outcome, detect_cycle =
    match Emulator.run t with
    | exception Diverged f -> (Failure f, Some (Emulator.instructions t))
    | Emulator.Exited _ ->
        (* a wrong exit value is caught by the hook: the exit-port
           store is itself a compared write *)
        if !matched < nwrites then
          (Failure (Missing_writes !matched), Some (Emulator.instructions t))
        else (Silent, None)
    | Emulator.Trapped tr ->
        (Failure (Trap (trap_code tr)), Some (Emulator.instructions t))
    | Emulator.Instruction_limit -> (Failure Hang, None)
  in
  Obs.incr obs ~by:(Emulator.instructions t) "iss.instructions";
  let r =
    { site_name = site.site_name; model = C.Bit_flip; outcome; detect_cycle;
      inject_cycle = site.index; sim = Journal.Simulated }
  in
  if Obs.enabled obs then record_run obs ~dt:(Obs.now obs -. t_start) r;
  r

(* ---- campaign engines ---- *)

let summaries_by_model models results =
  List.map
    (fun m ->
      ( m,
        Campaign.summarize
          (List.filter
             (fun (r : run_result) -> model_of_site_name r.site_name = Some m)
             results) ))
    models

(* Same journal plumbing as {!Campaign.run}, with the flat task list:
   the journal index {e is} the site index, and every verdict's model
   is bit-flip, so the replay lookup is keyed by index alone. *)
let open_journal ~journal ~resume fp =
  match journal with
  | None -> (None, (fun ~index:_ -> None), fun () -> ())
  | Some path ->
      let w, entries =
        if resume then
          match Journal.open_resume path fp with
          | Ok (w, entries) -> (w, entries)
          | Error msg -> raise (Journal.Rejected msg)
        else (Journal.create path fp, [])
      in
      let tbl = Hashtbl.create ((2 * List.length entries) + 1) in
      List.iter
        (fun e -> Hashtbl.replace tbl e.Journal.index e.Journal.result)
        entries;
      (Some w, (fun ~index -> Hashtbl.find_opt tbl index), fun () -> Journal.close w)

let replay_check ~index (site : site) (r : run_result) =
  if r.site_name <> site.site_name then
    raise
      (Journal.Rejected
         (Printf.sprintf "journal verdict at site %d names %S, campaign expects %S"
            index r.site_name site.site_name))

let exec_ids_of ~shard_i ~shard_n sample =
  let ids = ref [] in
  Array.iteri
    (fun ti _ -> if ti mod shard_n = shard_i - 1 then ids := ti :: !ids)
    sample;
  Array.of_list (List.rev !ids)

let collect sample results exec_ids =
  Array.to_list
    (Array.map
       (fun ti ->
         match results.(ti) with
         | Some r -> r
         | None ->
             failwith
               (Printf.sprintf "Iss_campaign: missing result for site %d (%s)" ti
                  sample.(ti).site_name))
       exec_ids)

let run ?(config = default_config) ?(obs = Obs.null) ?on_progress ?journal
    ?(resume = false) ?prepared prog =
  let shard_i, shard_n = validate_shard config in
  let golden, sample =
    match use_prepared ~who:"Iss_campaign.run" ~config prog prepared with
    | Some gs -> gs
    | None ->
        let golden = golden_run ~obs prog in
        ( golden,
          Obs.span obs "site_sampling" (fun () -> sample_sites ~config golden prog) )
  in
  let fp = fingerprint ~config prog sample in
  let writer, lookup, close_journal = open_journal ~journal ~resume fp in
  Fun.protect ~finally:close_journal @@ fun () ->
  let exec_ids = exec_ids_of ~shard_i ~shard_n sample in
  let results = Array.make (Array.length sample) None in
  let total = Array.length exec_ids in
  let done_ = ref 0 in
  let progress () =
    incr done_;
    match on_progress with Some f -> f ~done_:!done_ ~total | None -> ()
  in
  Array.iter
    (fun ti ->
      let site = sample.(ti) in
      let r =
        match lookup ~index:ti with
        | Some r ->
            replay_check ~index:ti site r;
            Obs.incr obs "journal.replayed";
            r
        | None ->
            let r = run_one ~obs prog golden ~hang_factor:config.hang_factor site in
            (match writer with Some w -> Journal.append w ~index:ti r | None -> ());
            r
      in
      results.(ti) <- Some r;
      progress ())
    exec_ids;
  let all = collect sample results exec_ids in
  (summaries_by_model config.models all, all)

(* Faulty ISS runs are independent and each builds a private emulator,
   so the parallel engine is a plain atomic work queue; per-domain
   telemetry forks merge in spawn order, which keeps counter totals
   identical for any domain count, and verdict order is fixed by the
   site list, so results are byte-identical to {!run}'s. *)
let run_parallel ?(config = default_config) ?(obs = Obs.null) ?(domains = 4)
    ?on_progress ?journal ?(resume = false) ?prepared prog =
  let shard_i, shard_n = validate_shard config in
  let domains = max 1 domains in
  let golden, sample =
    match use_prepared ~who:"Iss_campaign.run_parallel" ~config prog prepared with
    | Some gs -> gs
    | None ->
        let golden = golden_run ~obs prog in
        ( golden,
          Obs.span obs "site_sampling" (fun () -> sample_sites ~config golden prog) )
  in
  let fp = fingerprint ~config prog sample in
  let writer, lookup, close_journal = open_journal ~journal ~resume fp in
  Fun.protect ~finally:close_journal @@ fun () ->
  let exec_ids = exec_ids_of ~shard_i ~shard_n sample in
  let results = Array.make (Array.length sample) None in
  let total = Array.length exec_ids in
  let completed = Atomic.make 0 in
  let progress () =
    match on_progress with
    | Some f -> f ~done_:(Atomic.fetch_and_add completed 1 + 1) ~total
    | None -> ()
  in
  (* Journaled verdicts replay before any domain spawns, so their
     result slots are read-only by the time workers run. *)
  Array.iter
    (fun ti ->
      match lookup ~index:ti with
      | Some r ->
          replay_check ~index:ti sample.(ti) r;
          Obs.incr obs "journal.replayed";
          results.(ti) <- Some r;
          progress ()
      | None -> ())
    exec_ids;
  let todo =
    Array.of_list (List.filter (fun ti -> results.(ti) = None) (Array.to_list exec_ids))
  in
  (if Array.length todo > 0 then begin
     let next = Atomic.make 0 in
     let aborted = Atomic.make false in
     let errors = Array.make domains None in
     let worker wi fork =
       let rec go () =
         if not (Atomic.get aborted) then begin
           let k = Atomic.fetch_and_add next 1 in
           if k < Array.length todo then begin
             let ti = todo.(k) in
             let r =
               run_one ~obs:fork prog golden ~hang_factor:config.hang_factor
                 sample.(ti)
             in
             (match writer with Some w -> Journal.append w ~index:ti r | None -> ());
             results.(ti) <- Some r;
             progress ();
             go ()
           end
         end
       in
       try go ()
       with e ->
         errors.(wi) <- Some (e, Printexc.get_raw_backtrace ());
         Atomic.set aborted true
     in
     let forks = Array.init domains (fun _ -> Obs.fork obs) in
     let spawned =
       List.init (domains - 1) (fun i ->
           Domain.spawn (fun () -> worker (i + 1) forks.(i + 1)))
     in
     worker 0 forks.(0);
     List.iter Domain.join spawned;
     Array.iter (fun fork -> Obs.merge ~into:obs fork) forks;
     Array.iter
       (function
         | Some (e, bt) -> Printexc.raise_with_backtrace e bt
         | None -> ())
       errors
   end);
  let all = collect sample results exec_ids in
  (summaries_by_model config.models all, all)
