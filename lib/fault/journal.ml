(* Persistent campaign journal: one JSONL record per classified fault
   site, preceded by a header that fingerprints the campaign (workload,
   code hash, sampled netlist, config flags, shard).  A killed campaign
   restarted with the same arguments replays journaled verdicts instead
   of re-simulating them; disjoint shard journals of one campaign merge
   into the summary the unsharded run would have produced. *)

module C = Rtl.Circuit
module Json = Obs.Json

exception Rejected of string

(* The verdict vocabulary lives here (not in Campaign) so the journal
   can serialise it without a dependency cycle; Campaign re-exports
   these types under their historical names. *)

type failure_kind = Wrong_write of int | Missing_writes of int | Trap of int | Hang

type outcome = Silent | Failure of failure_kind

type sim_status =
  | Simulated
  | Prefiltered
  | Converged of int
  | Pruned
  | Collapsed of string

type run_result = {
  site_name : string;
  model : C.fault_model;
  outcome : outcome;
  detect_cycle : int option;
  inject_cycle : int;
  sim : sim_status;
}

let model_of_name = function
  | "stuck-at-0" -> Some C.Stuck_at_0
  | "stuck-at-1" -> Some C.Stuck_at_1
  | "open-line" -> Some C.Open_line
  | "bit-flip" -> Some C.Bit_flip
  | _ -> None

(* ---- hashing (FNV-1a, 32-bit, masked positive) ---- *)

let fnv_prime = 0x01000193

let fnv_mask = 0xFFFFFFFF

let fnv_seed = 0x811c9dc5

let fnv_byte h b = (h lxor b) * fnv_prime land fnv_mask

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  (* a terminator so ["ab";"c"] and ["a";"bc"] hash differently *)
  fnv_byte !h 0xFF

let fnv_int h i =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv_byte !h ((i lsr (shift * 8)) land 0xFF)
  done;
  !h

let hash_program (p : Sparc.Asm.program) =
  let h = ref (fnv_string fnv_seed p.Sparc.Asm.name) in
  h := fnv_int !h p.Sparc.Asm.text_base;
  h := fnv_int !h p.Sparc.Asm.entry;
  Array.iter (fun w -> h := fnv_int !h w) p.Sparc.Asm.code;
  List.iter
    (fun (base, words) ->
      h := fnv_int !h base;
      Array.iter (fun w -> h := fnv_int !h w) words)
    p.Sparc.Asm.data;
  !h

let hash_names names =
  let h = ref fnv_seed in
  Array.iter (fun s -> h := fnv_string !h s) names;
  !h

(* ---- fingerprint ---- *)

let version = 1

type fingerprint = {
  workload : string;
  prog_hash : int;
  netlist_hash : int;
  target : string;
  models : string list;
  sample_size : int option;
  include_cells : bool;
  inject_cycle : int;
  hang_factor : int;
  compare_reads : bool;
  seed : int;
  total_sites : int;
  shard : int * int;  (* 1-based index, shard count *)
}

(* First differing field between two fingerprints, for reject
   messages; [None] when they describe the same campaign partition. *)
let mismatch a b =
  let fields =
    [ ("workload", a.workload = b.workload);
      ("program hash", a.prog_hash = b.prog_hash);
      ("netlist hash", a.netlist_hash = b.netlist_hash);
      ("target", a.target = b.target);
      ("models", a.models = b.models);
      ("sample size", a.sample_size = b.sample_size);
      ("include_cells", a.include_cells = b.include_cells);
      ("inject cycle", a.inject_cycle = b.inject_cycle);
      ("hang factor", a.hang_factor = b.hang_factor);
      ("compare_reads", a.compare_reads = b.compare_reads);
      ("seed", a.seed = b.seed);
      ("total sites", a.total_sites = b.total_sites) ]
  in
  List.find_opt (fun (_, eq) -> not eq) fields |> Option.map fst

let base_mismatch = mismatch

let full_mismatch a b =
  match mismatch a b with
  | Some f -> Some f
  | None -> if a.shard = b.shard then None else Some "shard"

let fingerprint_to_json fp =
  Json.Obj
    [ ("type", Json.Str "header");
      ("version", Json.Int version);
      ("workload", Json.Str fp.workload);
      ("prog_hash", Json.Int fp.prog_hash);
      ("netlist_hash", Json.Int fp.netlist_hash);
      ("target", Json.Str fp.target);
      ("models", Json.List (List.map (fun m -> Json.Str m) fp.models));
      ( "sample_size",
        match fp.sample_size with Some n -> Json.Int n | None -> Json.Null );
      ("include_cells", Json.Bool fp.include_cells);
      ("inject_cycle", Json.Int fp.inject_cycle);
      ("hang_factor", Json.Int fp.hang_factor);
      ("compare_reads", Json.Bool fp.compare_reads);
      ("seed", Json.Int fp.seed);
      ("total_sites", Json.Int fp.total_sites);
      ("shard_index", Json.Int (fst fp.shard));
      ("shard_count", Json.Int (snd fp.shard)) ]

(* Field accessors that thread a parse error instead of raising. *)
let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let ( let* ) = Result.bind

let fingerprint_of_json j =
  let* v = field "version" Json.to_int j in
  if v <> version then Error (Printf.sprintf "unsupported journal version %d" v)
  else
    let* workload = field "workload" Json.to_str j in
    let* prog_hash = field "prog_hash" Json.to_int j in
    let* netlist_hash = field "netlist_hash" Json.to_int j in
    let* target = field "target" Json.to_str j in
    let* models =
      field "models"
        (fun v ->
          Option.bind (Json.to_list v) (fun xs ->
              let names = List.filter_map Json.to_str xs in
              if List.length names = List.length xs then Some names else None))
        j
    in
    let* sample_size =
      match Json.member "sample_size" j with
      | Some Json.Null -> Ok None
      | Some (Json.Int n) -> Ok (Some n)
      | Some _ | None -> Error "missing or malformed field \"sample_size\""
    in
    let* include_cells = field "include_cells" Json.to_bool j in
    let* inject_cycle = field "inject_cycle" Json.to_int j in
    let* hang_factor = field "hang_factor" Json.to_int j in
    let* compare_reads = field "compare_reads" Json.to_bool j in
    let* seed = field "seed" Json.to_int j in
    let* total_sites = field "total_sites" Json.to_int j in
    let* si = field "shard_index" Json.to_int j in
    let* sn = field "shard_count" Json.to_int j in
    if sn < 1 || si < 1 || si > sn then
      Error (Printf.sprintf "bad shard %d/%d in header" si sn)
    else
      Ok
        { workload; prog_hash; netlist_hash; target; models; sample_size;
          include_cells; inject_cycle; hang_factor; compare_reads; seed;
          total_sites; shard = (si, sn) }

(* ---- verdict records ---- *)

type entry = { index : int; result : run_result }

let result_to_json ~index r =
  let outcome_fields =
    match r.outcome with
    | Silent -> [ ("outcome", Json.Str "silent") ]
    | Failure (Wrong_write n) ->
        [ ("outcome", Json.Str "wrong-write"); ("arg", Json.Int n) ]
    | Failure (Missing_writes n) ->
        [ ("outcome", Json.Str "missing-writes"); ("arg", Json.Int n) ]
    | Failure (Trap n) -> [ ("outcome", Json.Str "trap"); ("arg", Json.Int n) ]
    | Failure Hang -> [ ("outcome", Json.Str "hang") ]
  in
  let sim_fields =
    match r.sim with
    | Simulated -> [ ("sim", Json.Str "simulated") ]
    | Prefiltered -> [ ("sim", Json.Str "prefiltered") ]
    | Converged c -> [ ("sim", Json.Str "converged"); ("sim_arg", Json.Int c) ]
    | Pruned -> [ ("sim", Json.Str "pruned") ]
    | Collapsed s -> [ ("sim", Json.Str "collapsed"); ("sim_arg", Json.Str s) ]
  in
  Json.Obj
    ([ ("type", Json.Str "verdict");
       ("i", Json.Int index);
       ("site", Json.Str r.site_name);
       ("model", Json.Str (C.fault_model_name r.model)) ]
    @ outcome_fields
    @ [ ( "detect",
          match r.detect_cycle with Some c -> Json.Int c | None -> Json.Null );
        ("inject", Json.Int r.inject_cycle) ]
    @ sim_fields)

let entry_of_json j =
  let* index = field "i" Json.to_int j in
  let* site_name = field "site" Json.to_str j in
  let* model_name = field "model" Json.to_str j in
  let* model =
    match model_of_name model_name with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown fault model %S" model_name)
  in
  let arg what =
    match field "arg" Json.to_int j with
    | Ok n -> Ok n
    | Error _ -> Error (Printf.sprintf "outcome %S needs an \"arg\" field" what)
  in
  let* outcome =
    let* o = field "outcome" Json.to_str j in
    match o with
    | "silent" -> Ok Silent
    | "wrong-write" ->
        let* n = arg o in
        Ok (Failure (Wrong_write n))
    | "missing-writes" ->
        let* n = arg o in
        Ok (Failure (Missing_writes n))
    | "trap" ->
        let* n = arg o in
        Ok (Failure (Trap n))
    | "hang" -> Ok (Failure Hang)
    | o -> Error (Printf.sprintf "unknown outcome %S" o)
  in
  let* detect_cycle =
    match Json.member "detect" j with
    | Some Json.Null -> Ok None
    | Some (Json.Int c) -> Ok (Some c)
    | Some _ | None -> Error "missing or malformed field \"detect\""
  in
  let* inject_cycle = field "inject" Json.to_int j in
  let* sim =
    let* s = field "sim" Json.to_str j in
    match s with
    | "simulated" -> Ok Simulated
    | "prefiltered" -> Ok Prefiltered
    | "converged" ->
        let* c = field "sim_arg" Json.to_int j in
        Ok (Converged c)
    | "pruned" -> Ok Pruned
    | "collapsed" ->
        let* l = field "sim_arg" Json.to_str j in
        Ok (Collapsed l)
    | s -> Error (Printf.sprintf "unknown sim status %S" s)
  in
  Ok { index; result = { site_name; model; outcome; detect_cycle; inject_cycle; sim } }

(* ---- writer ---- *)

(* Verdicts are cheap relative to the simulations that produce them,
   so the writer fsyncs every [fsync_every] appends (and at close):
   a crash loses at most one batch of already-finished work. *)
type writer = {
  mutable oc : out_channel;
  mutable pending : int;
  fsync_every : int;
  mutable closed : bool;
  lock : Mutex.t;
}

let sync w =
  flush w.oc;
  Unix.fsync (Unix.descr_of_out_channel w.oc)

(* Fsyncing a file makes its {e contents} durable; making a rename or
   create durable needs an fsync of the containing directory.  Some
   filesystems reject directory fsync — durability is then whatever
   the mount gives, so failures are deliberately swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_line oc json =
  output_string oc (Json.to_string json);
  output_char oc '\n'

let create ?(fsync_every = 64) path fp =
  let oc = open_out path in
  write_line oc (fingerprint_to_json fp);
  let w = { oc; pending = 0; fsync_every = max 1 fsync_every; closed = false;
            lock = Mutex.create () }
  in
  sync w;
  w

let append w ~index result =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) @@ fun () ->
  if w.closed then invalid_arg "Journal.append: writer closed";
  write_line w.oc (result_to_json ~index result);
  w.pending <- w.pending + 1;
  if w.pending >= w.fsync_every then begin
    sync w;
    w.pending <- 0
  end

let close w =
  Mutex.lock w.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock w.lock) @@ fun () ->
  if not w.closed then begin
    sync w;
    close_out w.oc;
    w.closed <- true
  end

(* ---- reader ---- *)

let read_lines path =
  In_channel.with_open_text path @@ fun ic ->
  let rec go acc =
    match In_channel.input_line ic with
    | Some line -> go (line :: acc)
    | None -> List.rev acc
  in
  go []

(* A crash can leave a torn final line; it is dropped silently (that
   verdict was never fsync'd as complete).  Anything malformed before
   the last line is corruption and rejects the journal. *)
let load path =
  match read_lines path with
  | [] | [ "" ] -> Error (Printf.sprintf "%s: empty journal" path)
  | header :: rest -> (
      let parse_header =
        let* j =
          Result.map_error (Printf.sprintf "%s: header: %s" path) (Json.of_string header)
        in
        Result.map_error (Printf.sprintf "%s: header: %s" path) (fingerprint_of_json j)
      in
      match parse_header with
      | Error _ as e -> e
      | Ok fp ->
          let n = List.length rest in
          let rec entries i acc = function
            | [] -> Ok (List.rev acc)
            | line :: tl -> (
                let last = i = n - 1 in
                let parsed =
                  let* j = Json.of_string line in
                  let* t = field "type" Json.to_str j in
                  if t <> "verdict" then Error (Printf.sprintf "unexpected record type %S" t)
                  else entry_of_json j
                in
                match parsed with
                | Ok e -> entries (i + 1) (e :: acc) tl
                | Error _ when last && tl = [] ->
                    (* torn tail from a crash mid-append *)
                    Ok (List.rev acc)
                | Error msg -> Error (Printf.sprintf "%s: line %d: %s" path (i + 2) msg))
          in
          let* es = entries 0 [] (match List.rev rest with "" :: tl -> List.rev tl | _ -> rest) in
          Ok (fp, es))

(* ---- resume ---- *)

(* Reopening for append after a crash must not leave a torn line in the
   middle of the file, so resume rewrites the journal from its parsed
   contents (header + complete entries) into a temp file, atomically
   renames it over the original, and keeps appending to the same
   descriptor — the rename preserves the open channel. *)
let open_resume ?fsync_every path fp =
  let tmp = path ^ ".tmp" in
  (* Debris from a kill between [create tmp] and the rename below: the
     data it holds is a prefix of what [path] still holds, never the
     only copy, so it is safe — and clearer than letting it rot — to
     remove it up front. *)
  if Sys.file_exists tmp then Sys.remove tmp;
  if not (Sys.file_exists path) then begin
    let w = create ?fsync_every path fp in
    fsync_dir (Filename.dirname path);
    Ok (w, [])
  end
  else
    let* existing, entries = load path in
    match full_mismatch existing fp with
    | Some f ->
        Error
          (Printf.sprintf
             "%s: stale journal: %s differs from this campaign (was workload %S, \
              shard %d/%d)"
             path f existing.workload (fst existing.shard) (snd existing.shard))
    | None ->
        let w = create ?fsync_every tmp fp in
        List.iter (fun e -> append w ~index:e.index e.result) entries;
        sync w;
        Sys.rename tmp path;
        (* without this the rename itself is not power-loss durable:
           the directory entry may still point at the old inode after
           a crash even though the tmp contents were fsync'd *)
        fsync_dir (Filename.dirname path);
        Ok (w, entries)

(* ---- merge ---- *)

(* Validate that the journals are shards of one campaign — identical
   base fingerprints, shard specs exactly covering 1..N, every
   (model, site) verdict present exactly once — and return the
   verdicts in the unsharded engine's order (model-major, then site
   index), so summaries computed from them are byte-identical to a
   direct run's. *)
let merge journals =
  match journals with
  | [] -> Error "no journals to merge"
  | (fp0, _) :: _ -> (
      let* () =
        List.fold_left
          (fun acc (fp, _) ->
            let* () = acc in
            match base_mismatch fp0 fp with
            | Some f -> Error (Printf.sprintf "fingerprint mismatch between journals: %s" f)
            | None -> Ok ())
          (Ok ()) journals
      in
      let n = snd fp0.shard in
      let* () =
        if List.exists (fun (fp, _) -> snd fp.shard <> n) journals then
          Error "journals use different shard counts"
        else Ok ()
      in
      let indices = List.sort compare (List.map (fun (fp, _) -> fst fp.shard) journals) in
      let* () =
        if indices <> List.init n (fun i -> i + 1) then
          Error
            (Printf.sprintf "shards [%s] do not cover 1..%d exactly once"
               (String.concat ";" (List.map string_of_int indices))
               n)
        else Ok ()
      in
      let nmodels = List.length fp0.models in
      let model_pos =
        let tbl = Hashtbl.create 8 in
        List.iteri (fun i m -> Hashtbl.replace tbl m i) fp0.models;
        fun name -> Hashtbl.find_opt tbl name
      in
      let slots = Array.make (nmodels * fp0.total_sites) None in
      let place (fp, entries) =
        List.fold_left
          (fun acc e ->
            let* () = acc in
            let* mi =
              match model_pos (C.fault_model_name e.result.model) with
              | Some mi -> Ok mi
              | None ->
                  Error
                    (Printf.sprintf "shard %d/%d: model %s not in the campaign's list"
                       (fst fp.shard) n
                       (C.fault_model_name e.result.model))
            in
            if e.index < 0 || e.index >= fp0.total_sites then
              Error
                (Printf.sprintf "shard %d/%d: site index %d out of range [0,%d)"
                   (fst fp.shard) n e.index fp0.total_sites)
            else
              let k = (mi * fp0.total_sites) + e.index in
              match slots.(k) with
              | Some _ ->
                  Error
                    (Printf.sprintf "duplicate verdict for site %d, model %s" e.index
                       (C.fault_model_name e.result.model))
              | None ->
                  slots.(k) <- Some e.result;
                  Ok ())
          (Ok ()) entries
      in
      let* () =
        List.fold_left (fun acc j -> let* () = acc in place j) (Ok ()) journals
      in
      let missing = ref None in
      Array.iteri
        (fun k slot ->
          if slot = None && !missing = None then
            missing :=
              Some
                (Printf.sprintf "missing verdict for site %d, model %s"
                   (k mod fp0.total_sites)
                   (List.nth fp0.models (k / fp0.total_sites))))
        slots;
      match !missing with
      | Some msg -> Error msg
      | None ->
          Ok
            ( { fp0 with shard = (1, 1) },
              Array.to_list (Array.map Option.get slots) ))
