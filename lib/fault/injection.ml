module C = Rtl.Circuit
module Units = Sparc.Units

type site = { fault_site : C.fault_site; site_name : string }

type target = Iu | Cmem | Unit_of of Units.t | Prefix of string

let target_name = function
  | Iu -> "iu"
  | Cmem -> "cmem"
  | Unit_of u -> "unit:" ^ Units.name u
  | Prefix p -> "prefix:" ^ p

let prefix_of_unit : Units.t -> string = function
  | Fetch -> "iu.fe."
  | Decode -> "iu.de."
  | Regfile -> "iu.regfile."
  | Adder -> "iu.ex.adder."
  | Logic_unit -> "iu.ex.logic."
  | Shifter -> "iu.ex.shift."
  | Multiplier -> "iu.ex.mul."
  | Divider -> "iu.ex.div."
  | Branch_unit -> "iu.ex.branch."
  | Load_store -> "iu.me."
  | Writeback -> "iu.wb."
  | Exception_unit -> "iu.xc."
  | Icache -> "cmem.icache."
  | Dcache -> "cmem.dcache."

(* Netlist scopes that have no unit of their own are attributed to the
   nearest architectural unit: the sequencer and supervisor state to
   Decode (control), the EX top-level muxes to Writeback's result
   path... keep it simple and explicit. *)
let extra_prefixes : (string * Units.t) list =
  [ ("iu.ctrl.", Units.Decode);
    ("iu.state.", Units.Decode);
    ("iu.ra.", Units.Regfile);
    ("iu.ex.", Units.Adder);
    (* cross-unit scopes of the gate-level elaboration: the operand
       select fabric belongs to the register-file read path, the
       shared ALU taps / result muxes / condition-code gates to the
       adder, like their behavioural counterparts *)
    ("iu.gates.operand.", Units.Regfile);
    ("iu.gates.alu.", Units.Adder) ]

(* All registered scope prefixes, most specific (longest) first, so a
   nested scope like "iu.ex.adder.gates." attributes to the adder and
   not to the EX catch-all. *)
let prefix_table : (string * Units.t) list =
  List.sort
    (fun (a, _) (b, _) -> compare (String.length b) (String.length a))
    (List.map (fun u -> (prefix_of_unit u, u)) Units.all @ extra_prefixes)

let unit_of_site_name name =
  (* Normalise "scope.sig[4]" and "mem[word][bit]" to the dotted scope
     path, so a site named exactly like a registered scope (a memory
     cell, say "iu.regfile.regs[5][31]") still attributes. *)
  let stem =
    match String.index_opt name '[' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  let path = stem ^ "." in
  Option.map snd
    (List.find_opt (fun (p, _) -> String.starts_with ~prefix:p path) prefix_table)

let signal_sites (core : Leon3.Core.t) ~prefix =
  List.map
    (fun (fault_site, site_name) -> { fault_site; site_name })
    (C.injection_bits core.Leon3.Core.circuit ~prefix)

let cell_sites (core : Leon3.Core.t) mem ~name =
  ignore name;
  let mem_name, _, words, width =
    List.find (fun (_, m, _, _) -> m = mem) (C.memories core.Leon3.Core.circuit)
  in
  let sites = ref [] in
  for w = words - 1 downto 0 do
    for b = width - 1 downto 0 do
      sites :=
        { fault_site = C.Cell (mem, w, b);
          site_name = Printf.sprintf "%s[%d][%d]" mem_name w b }
        :: !sites
    done
  done;
  !sites

(* The cross-unit gate scopes a unit owns besides its own subtree —
   enumerable per unit because no other unit's scope nests inside
   them (unlike the "iu.ex." catch-all). *)
let gate_prefixes_of_unit u =
  List.filter_map
    (fun (p, u') ->
      if u' = u && String.starts_with ~prefix:"iu.gates." p then Some p else None)
    extra_prefixes

let sites ?(include_cells = true) (core : Leon3.Core.t) target =
  match target with
  | Prefix prefix -> signal_sites core ~prefix
  | Unit_of u ->
      signal_sites core ~prefix:(prefix_of_unit u)
      @ List.concat_map
          (fun prefix -> signal_sites core ~prefix)
          (gate_prefixes_of_unit u)
  | Iu ->
      let signals = signal_sites core ~prefix:"iu." in
      if include_cells then
        signals @ cell_sites core core.Leon3.Core.regfile ~name:"regfile"
      else signals
  | Cmem ->
      let signals = signal_sites core ~prefix:"cmem." in
      if include_cells then
        signals
        @ cell_sites core core.Leon3.Core.icache.tag_mem ~name:"icache.tags"
        @ cell_sites core core.Leon3.Core.icache.data_mem ~name:"icache.data"
        @ cell_sites core core.Leon3.Core.dcache.tag_mem ~name:"dcache.tags"
        @ cell_sites core core.Leon3.Core.dcache.data_mem ~name:"dcache.data"
      else signals

let pool_sizes core =
  let tally = Hashtbl.create 16 in
  let add site =
    match unit_of_site_name site.site_name with
    | Some u ->
        Hashtbl.replace tally u (1 + Option.value ~default:0 (Hashtbl.find_opt tally u))
    | None -> ()
  in
  List.iter add (sites core Iu);
  List.iter add (sites core Cmem);
  List.map (fun u -> (u, Option.value ~default:0 (Hashtbl.find_opt tally u))) Units.all
