(** ISS-level fault-injection campaigns.

    The cheap half of the paper's 85x cost argument: instruction-grain
    fault models applied to the functional SPARC ISS ({!Iss.Emulator})
    instead of RTL signals.  A campaign samples dynamic instruction
    indices from a fault-free golden ISS run, corrupts one bit of
    architectural state at each, and classifies the outcome with the
    same light-lockstep observation and verdict taxonomy as the RTL
    engine ({!Journal.outcome}): the off-core write stream is compared
    write-for-write against the golden one, traps map to the Leon3 trap
    codes, and an instruction budget of [hang_factor] times the golden
    run is the watchdog.

    Journaling, sharding and resume reuse {!Journal} unchanged: the
    task list is flat (the journal site index {e is} the task index),
    every verdict is recorded under the RTL [bit-flip] model, and the
    ISS model class is carried by the site-name prefix ([iss.reg[…]],
    [iss.mem[…]], [iss.op[…]]) — {!model_of_site_name} partitions
    merged or replayed verdicts back into per-model summaries.

    {b Units.}  The ISS has no cycle-accurate clock in campaign mode
    (caches are off; they never affect verdicts): [inject_cycle] and
    [detect_cycle] in results, and the latency fields of summaries, are
    measured in {e dynamic instructions}, not cycles. *)

(** Verdict types, re-exported from {!Journal} as in {!Campaign}. *)

type failure_kind = Journal.failure_kind =
  | Wrong_write of int  (** index of the first divergent write *)
  | Missing_writes of int  (** clean exit but only this many writes matched *)
  | Trap of int  (** trapped; payload is the Leon3 trap code *)
  | Hang  (** instruction budget exhausted *)

type outcome = Journal.outcome = Silent | Failure of failure_kind

type run_result = Journal.run_result = {
  site_name : string;
  model : Rtl.Circuit.fault_model;  (** always [Bit_flip] for ISS verdicts *)
  outcome : outcome;
  detect_cycle : int option;  (** dynamic instruction index of detection *)
  inject_cycle : int;  (** dynamic instruction index of injection *)
  sim : Journal.sim_status;  (** always [Simulated] — no trimming layer *)
}

(** {1 Fault models} *)

type model =
  | Reg_flip  (** invert one bit of one physical register-file slot *)
  | Mem_flip  (** invert one bit of one data-memory word *)
  | Op_flip
      (** invert one bit of the next fetched instruction word (one
          dynamic instruction, decode-cache-bypassing) *)

val all_models : model list

val model_name : model -> string

val model_of_name : string -> model option

type site = {
  smodel : model;
  index : int;  (** dynamic instruction index of the injection *)
  loc : int;  (** register-file slot / memory word address / unused *)
  bit : int;
  site_name : string;
}

val model_of_site_name : string -> model option
(** Recover the ISS model class from a verdict's site name ([None] for
    RTL site names — the test an ISS-aware [merge] uses). *)

val target_name : string
(** The {!Journal.fingerprint.target} of every ISS campaign journal:
    ["iss"]. *)

(** {1 Configuration} *)

type config = {
  models : model list;
  samples_per_model : int;
  hang_factor : int;  (** instruction-budget multiplier over the golden run *)
  seed : int;
  shard : int * int;  (** 1-based shard index, shard count — as {!Campaign} *)
}

val default_config : config
(** All three models, 400 sites per model, watchdog 4x, seed 7,
    shard 1/1. *)

(** {1 Golden run and sampling} *)

type golden = {
  writes : Sparc.Bus_event.t array;  (** off-core write stream, in order *)
  instructions : int;
  exit_code : int;
}

val golden_run : ?obs:Obs.t -> Sparc.Asm.program -> golden
(** Fault-free reference run (caches off, reads unrecorded).  Raises
    [Failure] if the workload itself traps or hits the instruction
    limit. *)

val sample_sites : config:config -> golden -> Sparc.Asm.program -> site array
(** Deterministic model-major site sample: injection instants uniform
    over the golden run's dynamic instructions; register faults uniform
    over the physical slot space; memory faults uniform over the data
    segments' words (the result region for data-less workloads); opcode
    faults uniform over the 32 instruction-word bits. *)

val fingerprint :
  config:config -> Sparc.Asm.program -> site array -> Journal.fingerprint
(** The identity an ISS journal is bound to ([target = "iss"]); the
    site-name hash pins seed, sample size, model list and golden
    length. *)

(** {1 Reusable preparation}

    The ISS analogue of {!Campaign.prepare}: the golden run and site
    sample bundled for reuse across shards and repeat submissions of
    the same campaign (the serve layer's golden-trace cache). *)

type prepared

val prepare : ?config:config -> ?obs:Obs.t -> Sparc.Asm.program -> prepared
(** Golden run + site sample, shard-normalised to 1/1.  Raises
    [Invalid_argument] on an out-of-range shard spec. *)

val prepared_fingerprint : prepared -> Journal.fingerprint
(** The shard-1/1 fingerprint of the prepared campaign. *)

(** {1 Execution} *)

val run_one :
  ?obs:Obs.t -> Sparc.Asm.program -> golden -> hang_factor:int -> site -> run_result
(** Execute and classify one faulty run on a fresh emulator. *)

val summaries_by_model :
  model list -> run_result list -> (model * Campaign.summary) list
(** Partition verdicts by site-name prefix and summarise each model's
    share with {!Campaign.summarize} (latencies in instructions). *)

val run :
  ?config:config ->
  ?obs:Obs.t ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  ?journal:string ->
  ?resume:bool ->
  ?prepared:prepared ->
  Sparc.Asm.program ->
  (model * Campaign.summary) list * run_result list
(** Full sequential campaign: golden run, site sampling, one faulty run
    per sampled site (restricted to [config.shard]).  [journal] /
    [resume] behave exactly as in {!Campaign.run} — journaled verdicts
    replay byte-identically (counted as [journal.replayed] on [obs]), a
    stale journal raises {!Journal.Rejected}.  [prepared] skips the
    golden run and sampling, reusing a {!prepare} result; it must have
    been built from the same program and config (shard aside) or the
    call raises [Invalid_argument].  Returns per-model summaries plus
    every verdict in model-major site order. *)

val run_parallel :
  ?config:config ->
  ?obs:Obs.t ->
  ?domains:int ->
  ?on_progress:(done_:int -> total:int -> unit) ->
  ?journal:string ->
  ?resume:bool ->
  ?prepared:prepared ->
  Sparc.Asm.program ->
  (model * Campaign.summary) list * run_result list
(** Like {!run}, over [domains] OCaml domains (default 4).  Verdicts,
    summaries and journal contents are byte-identical to the sequential
    engine's for any domain count; telemetry forks merge in spawn
    order. *)
