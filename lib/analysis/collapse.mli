(** Structural fault collapsing.

    Classic stuck-at collapsing adapted to the word-level netlist: a
    permanent fault on a fan-out-free node is observationally
    equivalent to a fault on its single reader whenever the reader's
    evaluator provably forwards (or complements, or is controlled by)
    the faulted bit.  The equivalences are established by {e exhaustive
    probing} of the reader's evaluator — evaluators are pure functions
    of their dependency values, so a complete truth table is a proof,
    not a heuristic — which keeps campaign summaries byte-identical
    when only class representatives are simulated.

    Three rules, each requiring the source node to be fan-out-free and
    not an observation point:

    - {b forward}: the reader is an identity buffer of equal width —
      stuck-at-0/1 and open-line faults map to the same bit of the
      reader, same model;
    - {b complement}: the reader is a bitwise inverter — stuck-at
      polarities swap, open-line maps to open-line (the frozen input
      bit pins the output to its own previous value);
    - {b controlling value}: the reader has a 1-bit output and forcing
      one source bit to [c] fixes the output at [k] for {e every}
      combination of the remaining input bits — stuck-at-[c] on the
      source bit maps to stuck-at-[k] on the output (AND/OR-style
      gates, the bread and butter of gate-level collapsing).

    A fourth rule handles the nodes the first three never can — 1-bit
    combinational nodes {e with} fan-out, the signature shape of a
    gate-level netlist (every XOR input, every mux select):

    - {b dominance}: with a post-dominator tree toward the observation
      boundary ([dom]), a stuck-at on a fanned-out source [s] maps to
      a stuck-at on its immediate post-dominator [d] whenever
      exhaustively evaluating the reconvergence region between them
      (forward BFS capped at 24 vertices, external inputs capped at
      [min 8 max_probe_bits] bits, registers/memories/read ports
      inside the region cut and treated as free externals) proves
      that forcing [s] forces [d] to a constant.  Soundness rests on
      post-dominance: all divergence between the two faulty circuits
      is confined to vertices whose every path to an exit crosses the
      constant [d].

    [Bit_flip] faults are never collapsed: an enable-hold register
    downstream can re-latch a flipped value and diverge from the
    equivalent-looking fault on the reader.  Chains resolve
    transitively (representative ids strictly increase, so resolution
    terminates). *)

module C = Rtl.Circuit

type t

val build :
  ?max_probe_bits:int -> ?dom:Dominator.t -> Graph.t -> keep:(C.signal -> bool) -> t
(** Scan every combinational node and record the fault equivalences
    its evaluator proves.  [keep] marks signals that must never be
    collapsed {e away} (observation points: a fault there is read
    directly by the environment).  [max_probe_bits] (default 12) caps
    the truth-table size per node at [2^max_probe_bits] evaluations;
    wider nodes are simply not collapsed — the pass trades coverage
    for exactness, never the reverse.  [dom] enables the dominance
    rule; it must be built over the same graph, with exits matching
    [keep]. *)

val resolve : t -> C.fault_site -> C.fault_model -> C.fault_site * C.fault_model
(** Follow the equivalence chain to its representative.  Returns the
    argument unchanged for unmapped sites, [Cell] sites and
    [Bit_flip]. *)

val mapped : t -> int
(** Number of (site, model) pairs with a recorded equivalence. *)
