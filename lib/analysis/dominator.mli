(** Post-dominator tree of a {!Graph} with respect to the observation
    boundary.

    A vertex [d] post-dominates [v] when every forward (data-flow)
    path from [v] to an exit passes through [d].  Structural fault
    collapsing keys on the {e immediate} post-dominator: a fault
    effect leaving [v] must traverse [ipdom v] before it can reach
    anything the environment observes, so under a local
    equivalence-check the two sites share a verdict.

    Built with the Cooper–Harvey–Kennedy iterative algorithm on the
    reversed graph, rooted at a virtual exit vertex. *)

module C = Rtl.Circuit

type t

val build : Graph.t -> exits:C.signal list -> t
(** [build g ~exits] computes the post-dominator tree toward the given
    observation points.  O(edges × tree depth) in the worst case; two
    or three sweeps in practice on netlist-shaped graphs. *)

val reachable : t -> Graph.vertex -> bool
(** Whether the vertex has any structural path to an exit (membership
    in the backward cone).  [ipdom] is [None] outside it. *)

val ipdom : t -> Graph.vertex -> Graph.vertex option
(** Immediate post-dominator.  [None] when the vertex is unreachable,
    or when its only post-dominator is the virtual root (its fault
    effects can reach the boundary along disjoint exits). *)

val dominated_counts : t -> int array
(** Per dense vertex index ({!Graph.vertex_index}): number of vertices
    whose immediate post-dominator it is — the fan-in of the
    post-dominator tree, a cheap collapsing-potential estimate. *)

val tree_size : t -> int
(** Reachable vertices (the tree's vertex count, virtual root
    excluded). *)
