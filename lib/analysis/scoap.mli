(** SCOAP-style testability metrics over a {!Graph}.

    Per signal bit, three saturating costs in the spirit of the
    classic SCOAP measures (Goldstein 1979), adapted to the word-level
    netlist:

    - [cc0]/[cc1] — {e controllability}: the cheapest way to drive the
      bit to 0/1, counted as the sum of input-bit controllabilities of
      a minimising assignment plus one per traversed level.  Primary
      inputs cost 1, a constant costs 1 at its value and {!inf}
      opposite, a register costs 1 at its reset value, memory read
      ports cost 2 (architectural state, one indirection).
    - [co] — {e observability}: the cheapest sensitised path from the
      bit to an observation point, counted as the destination's
      observability plus the controllability of the side inputs that
      hold the path open, plus one per level.  Observation points cost
      0; register enables and memory ports are traversed.

    Combinational cells with at most [max_probe_bits] input bits are
    characterised exactly by truth-table enumeration of their (pure)
    evaluators; wider nodes — operand packers, word-level muxes — fall
    back to single-bit flip probing around an all-zero baseline, which
    treats each discovered input→output bit wire as unconditional.
    The metrics are heuristic rankings, not guarantees: that is true
    of SCOAP itself. *)

module C = Rtl.Circuit

type t

val inf : int
(** Saturation value ([max_int / 4]): unreachable / unobservable. *)

val build : ?max_probe_bits:int -> Graph.t -> obs:C.signal list -> t
(** Fixpoint relaxation over the graph (forward for controllability,
    backward for observability), [obs] being the observation boundary.
    [max_probe_bits] (default 12) bounds per-node truth tables. *)

val cc0 : t -> C.signal -> int -> int

val cc1 : t -> C.signal -> int -> int

val co : t -> C.signal -> int -> int

val detectability : t -> C.fault_site -> C.fault_model -> int option
(** Static detectability of a fault: the cost of provoking and
    observing it — lower is easier.  Controllability enters
    {e log-damped} ([⌊log₂(cc+1)⌋]): raw cc sums grow multiplicatively
    through reconvergent arithmetic while real workloads activate deep
    faults about as easily as shallow ones, so undamped cc swamps the
    propagation term and inverts the ranking on the gate-level core.
    [Stuck_at_0] needs the bit driven to 1 and observed
    ([log₂ cc1 + co]); [Stuck_at_1] symmetric; [Open_line] needs both
    polarities exercised; [Bit_flip] only needs the flipped value seen
    ([co + 1]).  [None] for memory cell sites (no per-cell metric is
    computed). *)
