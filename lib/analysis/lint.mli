(** Netlist lint: structural diagnostics over an elaborated circuit.

    Rules and severities (the CI gate fails on [Error] only):

    - [undriven-input] ({e Error}): an input the environment does not
      drive but that can reach the observation boundary — it would
      read as a constant 0 forever.  Active only when [driven] is
      supplied.
    - [dead-node] ({e Warning}): a node nothing reads and nothing
      observes; it burns simulation work and injection budget for no
      behaviour.
    - [unobservable-node] ({e Warning}): a node with readers but no
      structural path to any observation point — faults there are
      silent by construction (the cone pruner skips them).  Active
      only when [observed] is supplied.
    - [constant-comb] ({e Warning}): a combinational node whose
      transitive sources are all constants; it settles to the same
      value every cycle and could be folded.
    - [width-truncation] ({e Info}): an evaluator that returns bits
      above the node's declared width on some probed input — the
      kernel masks them, which is often intended (carry-out of a
      behavioural adder) but worth surfacing.
    - [comb-depth] ({e Info}): a node whose combinational level
      exceeds [depth_limit] — a long settle chain, e.g. a gate-level
      ripple-carry path. *)

module C = Rtl.Circuit

type severity = Error | Warning | Info

type finding = {
  rule : string;
  severity : severity;
  subject : string;  (** hierarchical node name *)
  detail : string;
}

type report = {
  findings : finding list;  (** ordered by severity, then node id *)
  signals : int;
  memories : int;
  edges : int;
  max_depth : int;
  cone_size : int option;  (** [None] when [observed] was not given *)
}

val run :
  ?observed:C.signal list ->
  ?driven:C.signal list ->
  ?max_probe_bits:int ->
  ?depth_limit:int ->
  C.t ->
  report
(** Lint an elaborated circuit.  [observed] enables the cone-based
    rules, [driven] the undriven-input rule; [max_probe_bits]
    (default 12) bounds the per-node probing of the constant and
    truncation rules, [depth_limit] (default 32, above the behavioural
    Leon3's deepest chain but below the gate-level ripple-carry one)
    sets the [comb-depth] threshold. *)

val errors : report -> int

val severity_name : severity -> string

val to_json : report -> string
(** One compact JSON object: totals plus the findings array. *)

val pp : Format.formatter -> report -> unit
(** Human-readable listing, one finding per line, totals last. *)
