(** Dependency-graph extraction over an elaborated {!Rtl.Circuit}.

    The simulator executes an implicit graph: comb evaluators read
    their dependency slots, registers latch their [d]/[en] inputs,
    write ports move settled values into memories and read ports move
    memory content back into the netlist.  This module materialises
    that graph once — both adjacency directions, edge kinds, and
    topological levels of the combinational part — so static passes
    (cone-of-influence pruning, fault collapsing, lint) can run
    without touching the simulator. *)

module C = Rtl.Circuit

type edge_kind =
  | Comb_dep  (** dependency slot of a combinational evaluator *)
  | Reg_d  (** register next-value input *)
  | Reg_en  (** register write enable *)
  | Mem_we  (** write-port enable into a memory *)
  | Mem_addr  (** write-port address into a memory *)
  | Mem_data  (** write-port data into a memory *)
  | Mem_read  (** memory content into a read-port node *)

type vertex = Sig of C.signal | Mem of C.memory

type t

val build : C.t -> t
(** Extract the graph of an elaborated circuit.  O(nodes + edges). *)

val vertex_index : t -> vertex -> int
(** Dense packing of the vertex space: signals first (at their
    creation index), memories after.  Stable for the lifetime of the
    graph; passes that sweep flat arrays (dominators, SCOAP) key on
    it. *)

val vertex_of_index : t -> int -> vertex

val circuit : t -> C.t
val signal_count : t -> int
val memory_count : t -> int

val signal_handles : t -> C.signal array
(** Handle of every node, indexed by [(signal :> int)] — the reverse
    of the coercion, for passes that sweep dense arrays. *)

val memory_handles : t -> C.memory array

val edge_count : t -> int
(** Total dependency edges (dependency slots, register inputs, memory
    port connections), duplicates included. *)

val preds : t -> vertex -> (vertex * edge_kind) list
(** Fan-in edges, one entry per dependency slot (duplicates preserved:
    a comb reading the same node twice lists it twice). *)

val succs : t -> vertex -> (vertex * edge_kind) list

val fanout : t -> C.signal -> int
(** Number of {e distinct} sink vertices reading the node — the
    quantity fault collapsing keys on (a fan-out-free node has exactly
    one reader). *)

val level : t -> C.signal -> int
(** Combinational depth: inputs, constants, registers and memories are
    level 0; a comb node is one more than its deepest dependency (read
    ports count their memory as level 0).  This is the length of the
    longest settle-order evaluation chain feeding the node. *)

val max_level : t -> int

(** {2 Cone of influence}

    Backward reachability from the observation boundary, across all
    edge kinds — through registers, enables and memory ports alike,
    so membership is purely structural (no timing argument needed). *)

type cone

val backward_cone : t -> C.signal list -> cone
(** All vertices with a structural path to at least one of the given
    observation points (the points themselves included). *)

val cone_signal : cone -> C.signal -> bool
val cone_memory : cone -> C.memory -> bool

val cone_site : cone -> C.fault_site -> bool
(** Whether a fault site can influence the observation boundary:
    [Node] sites by their signal, [Cell] sites by their memory.  A
    site outside the cone is provably silent — the faulty value can
    never propagate to anything the environment reads. *)

val cone_size : cone -> int
(** Vertices inside the cone (signals + memories). *)

(** {2 Differential replay schedule} *)

val replay_plan : t -> C.replay_plan
(** Project the graph into the levelized schedule
    {!Rtl.Circuit.replay_start} evaluates dirty cones with:
    per-node combinational fanout ([Comb_dep] sinks, deduplicated),
    combinational levels, and each memory's read-port nodes.  Valid
    for any circuit built by the same deterministic construction. *)
