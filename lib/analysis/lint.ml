module C = Rtl.Circuit

type severity = Error | Warning | Info

type finding = { rule : string; severity : severity; subject : string; detail : string }

type report = {
  findings : finding list;
  signals : int;
  memories : int;
  edges : int;
  max_depth : int;
  cone_size : int option;
}

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let run ?observed ?driven ?(max_probe_bits = 12) ?(depth_limit = 32) circuit =
  let g = Graph.build circuit in
  let nsigs = Graph.signal_count g in
  let handles = Graph.signal_handles g in
  let cone = Option.map (Graph.backward_cone g) observed in
  let member l =
    let a = Array.make nsigs false in
    List.iter (fun s -> a.((s : C.signal :> int)) <- true) l;
    a
  in
  let observed_set = member (Option.value observed ~default:[]) in
  let driven_set = Option.map member driven in
  let findings = ref [] in
  let report id rule severity detail =
    let subject = C.signal_name circuit handles.(id) in
    findings := (severity_rank severity, id, { rule; severity; subject; detail }) :: !findings
  in
  let scratch = Array.make nsigs 0 in
  (* Constant propagation in creation order: comb dependencies always
     predate the node, so one sweep reaches the fixpoint. *)
  let constv = Array.make nsigs None in
  Array.iteri
    (fun id s ->
      let in_cone = match cone with Some c -> Graph.cone_signal c s | None -> true in
      (match C.node_view circuit s with
      | C.V_input -> (
          match driven_set with
          | Some d when (not d.(id)) && in_cone ->
              report id "undriven-input" Error
                "input is never driven by the environment but reaches the observation \
                 boundary"
          | Some _ | None -> ())
      | C.V_const v -> constv.(id) <- Some v
      | C.V_comb deps when C.read_port_memory circuit s = None -> (
          let w = C.signal_width circuit s in
          let mask = (1 lsl w) - 1 in
          let dd = List.sort_uniq compare (Array.to_list deps) in
          (* constant-comb: all transitive sources are constants *)
          let dep_consts =
            List.map (fun d -> constv.((d : C.signal :> int))) dd
          in
          if List.for_all Option.is_some dep_consts then begin
            try
              List.iter
                (fun d ->
                  scratch.((d : C.signal :> int)) <-
                    Option.get constv.((d : C.signal :> int)))
                dd;
              let v = C.probe_comb circuit s scratch land mask in
              constv.(id) <- Some v;
              report id "constant-comb" Warning (Printf.sprintf "always %d" v)
            with _ -> ()
          end;
          (* width-truncation: probe the {all-zeros, all-ones} corner
             combinations for bits above the declared width *)
          let ndd = List.length dd in
          if ndd >= 1 && ndd <= max 1 (max_probe_bits / 2) then begin
            try
              let dd_arr = Array.of_list dd in
              let truncated = ref None in
              for combo = 0 to (1 lsl ndd) - 1 do
                Array.iteri
                  (fun i d ->
                    let wd = C.signal_width circuit d in
                    scratch.((d : C.signal :> int)) <-
                      (if (combo lsr i) land 1 = 0 then 0 else (1 lsl wd) - 1))
                  dd_arr;
                let r = C.probe_comb circuit s scratch in
                if r land lnot mask <> 0 && !truncated = None then truncated := Some r
              done;
              match !truncated with
              | Some r ->
                  report id "width-truncation" Info
                    (Printf.sprintf "evaluator returned %#x, truncated to %d bits" r w)
              | None -> ()
            with _ -> ()
          end;
          (* comb-depth: settle-chain outliers *)
          let lvl = Graph.level g s in
          if lvl > depth_limit then
            report id "comb-depth" Info
              (Printf.sprintf "combinational level %d exceeds limit %d" lvl depth_limit)
          )
      | C.V_comb _ | C.V_register _ -> ());
      (* dead / unobservable apply to every node kind *)
      if not observed_set.(id) then
        if Graph.succs g (Graph.Sig s) = [] then
          report id "dead-node" Warning "no reader and not an observation point"
        else if not in_cone then
          report id "unobservable-node" Warning
            "no structural path to any observation point (faults here are silent)")
    handles;
  let ordered =
    List.map
      (fun (_, _, f) -> f)
      (List.sort compare (List.rev !findings))
  in
  { findings = ordered;
    signals = nsigs;
    memories = Graph.memory_count g;
    edges = Graph.edge_count g;
    max_depth = Graph.max_level g;
    cone_size = Option.map Graph.cone_size cone }

let count sev r = List.length (List.filter (fun f -> f.severity = sev) r.findings)

let errors r = count Error r

let to_json r =
  let open Obs.Json in
  to_string
    (Obj
       [ ("signals", Int r.signals);
         ("memories", Int r.memories);
         ("edges", Int r.edges);
         ("max_depth", Int r.max_depth);
         ("cone_size", match r.cone_size with Some n -> Int n | None -> Null);
         ("errors", Int (count Error r));
         ("warnings", Int (count Warning r));
         ("infos", Int (count Info r));
         ("findings",
          List
            (List.map
               (fun f ->
                 Obj
                   [ ("rule", Str f.rule);
                     ("severity", Str (severity_name f.severity));
                     ("subject", Str f.subject);
                     ("detail", Str f.detail) ])
               r.findings)) ])

let pp fmt r =
  List.iter
    (fun f ->
      Format.fprintf fmt "%s: %s: %s — %s@." (severity_name f.severity) f.rule f.subject
        f.detail)
    r.findings;
  Format.fprintf fmt "%d signals, %d memories, %d edges, max depth %d%s@."
    r.signals r.memories r.edges r.max_depth
    (match r.cone_size with
    | Some n -> Printf.sprintf ", cone %d" n
    | None -> "");
  Format.fprintf fmt "%d errors, %d warnings, %d infos@." (count Error r)
    (count Warning r) (count Info r)
