module C = Rtl.Circuit

type edge_kind = Comb_dep | Reg_d | Reg_en | Mem_we | Mem_addr | Mem_data | Mem_read

type vertex = Sig of C.signal | Mem of C.memory

(* Vertices are packed into one dense index space: signals first (at
   their creation index), memories after.  All per-vertex state lives
   in flat arrays. *)
type t = {
  circuit : C.t;
  nsigs : int;
  nmems : int;
  sig_handles : C.signal array;
  mem_handles : C.memory array;
  succ : (int * edge_kind) list array;
  pred : (int * edge_kind) list array;
  fanout : int array;  (* per signal: distinct sink vertices *)
  levels : int array;  (* per signal: comb depth, non-comb = 0 *)
  max_level : int;
}

let si (s : C.signal) = (s :> int)

let mi (m : C.memory) = (m :> int)

let vertex_index g = function Sig s -> si s | Mem m -> mi m + g.nsigs

let vertex_of_index g i = if i < g.nsigs then Sig g.sig_handles.(i) else Mem g.mem_handles.(i - g.nsigs)

let build circuit =
  let sig_handles = Array.of_list (List.map (fun (_, s, _) -> s) (C.signals circuit)) in
  let mem_handles =
    Array.of_list (List.map (fun (_, m, _, _) -> m) (C.memories circuit))
  in
  let nsigs = Array.length sig_handles in
  let nmems = Array.length mem_handles in
  let nverts = nsigs + nmems in
  let succ = Array.make nverts [] in
  let pred = Array.make nverts [] in
  let add src dst kind =
    succ.(src) <- (dst, kind) :: succ.(src);
    pred.(dst) <- (src, kind) :: pred.(dst)
  in
  Array.iteri
    (fun i s ->
      match C.node_view circuit s with
      | C.V_input | C.V_const _ -> ()
      | C.V_comb deps ->
          Array.iter (fun d -> add (si d) i Comb_dep) deps;
          Option.iter
            (fun m -> add (nsigs + mi m) i Mem_read)
            (C.read_port_memory circuit s)
      | C.V_register { d; en; _ } ->
          add (si d) i Reg_d;
          Option.iter (fun e -> add (si e) i Reg_en) en)
    sig_handles;
  Array.iteri
    (fun j m ->
      List.iter
        (fun (we, addr, data) ->
          add (si we) (nsigs + j) Mem_we;
          add (si addr) (nsigs + j) Mem_addr;
          add (si data) (nsigs + j) Mem_data)
        (C.write_ports circuit m))
    mem_handles;
  let fanout =
    Array.init nsigs (fun i ->
        List.length (List.sort_uniq compare (List.map fst succ.(i))))
  in
  (* Comb dependencies always predate the comb node (handles are
     creation order), so one creation-order sweep computes levels. *)
  let levels = Array.make nsigs 0 in
  let max_level = ref 0 in
  Array.iteri
    (fun i s ->
      match C.node_view circuit s with
      | C.V_comb deps ->
          let deepest = Array.fold_left (fun acc d -> max acc levels.(si d)) 0 deps in
          levels.(i) <- deepest + 1;
          if levels.(i) > !max_level then max_level := levels.(i)
      | C.V_input | C.V_const _ | C.V_register _ -> ())
    sig_handles;
  { circuit; nsigs; nmems; sig_handles; mem_handles; succ; pred; fanout; levels;
    max_level = !max_level }

let circuit g = g.circuit

let signal_count g = g.nsigs

let memory_count g = g.nmems

let signal_handles g = g.sig_handles

let memory_handles g = g.mem_handles

let edge_count g = Array.fold_left (fun n l -> n + List.length l) 0 g.pred

let edges_of g arr v =
  List.rev_map (fun (i, k) -> (vertex_of_index g i, k)) arr.(vertex_index g v)

let preds g v = edges_of g g.pred v

let succs g v = edges_of g g.succ v

let fanout g s = g.fanout.(si s)

let level g s = g.levels.(si s)

let max_level g = g.max_level

type cone = { in_sig : bool array; in_mem : bool array; size : int }

let backward_cone g roots =
  let visited = Array.make (g.nsigs + g.nmems) false in
  let stack = ref [] in
  let push i =
    if not visited.(i) then begin
      visited.(i) <- true;
      stack := i :: !stack
    end
  in
  List.iter (fun s -> push (si s)) roots;
  let rec walk () =
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        List.iter (fun (u, _) -> push u) g.pred.(v);
        walk ()
  in
  walk ();
  let size = Array.fold_left (fun n b -> if b then n + 1 else n) 0 visited in
  { in_sig = Array.sub visited 0 g.nsigs;
    in_mem = Array.sub visited g.nsigs g.nmems;
    size }

let cone_signal cone s = cone.in_sig.(si s)

let cone_memory cone m = cone.in_mem.(mi m)

let cone_site cone = function
  | C.Node (s, _) -> cone_signal cone s
  | C.Cell (m, _, _) -> cone_memory cone m

let cone_size cone = cone.size

(* The differential engine's schedule: per-node comb fanout, comb
   levels, and each memory's read ports — straight projections of the
   edge lists above into the dense arrays the replay hot loop wants. *)
let replay_plan g =
  let comb_sinks succs =
    Array.of_list
      (List.sort_uniq compare
         (List.filter_map
            (fun (j, k) -> match k with Comb_dep -> Some j | _ -> None)
            succs))
  in
  let read_ports succs =
    Array.of_list
      (List.sort_uniq compare
         (List.filter_map
            (fun (j, k) -> match k with Mem_read -> Some j | _ -> None)
            succs))
  in
  { C.rp_fanout = Array.init g.nsigs (fun i -> comb_sinks g.succ.(i));
    rp_level = Array.copy g.levels;
    rp_max_level = g.max_level;
    rp_mem_readers = Array.init g.nmems (fun j -> read_ports g.succ.(g.nsigs + j)) }
