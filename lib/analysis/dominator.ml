module C = Rtl.Circuit

(* Post-dominator tree of the dependency graph with respect to the
   observation boundary: [ipdom v] is the unique vertex every forward
   (data-flow) path from [v] to an exit passes through first.

   Computed as a dominator tree of the reversed graph rooted at a
   virtual exit node, with the Cooper–Harvey–Kennedy iterative
   algorithm: engineered for the exact shape we have (a mostly-DAG
   netlist with a few register-crossing cycles), it converges in two
   or three passes over the reverse post-order. *)

type t = {
  graph : Graph.t;
  nverts : int;
  (* reachability from the virtual root along reversed edges — i.e.
     membership in the backward cone of the exits; vertices outside
     it have no path to any observation point *)
  reach : bool array;
  (* immediate dominator in the reversed graph, indexed by dense
     vertex index; the virtual root is index [nverts] and is its own
     idom; unreachable vertices hold [-1] *)
  idom : int array;
}

let dedup l = List.sort_uniq compare l

let build (g : Graph.t) ~(exits : C.signal list) =
  let nverts = Graph.signal_count g + Graph.memory_count g in
  let root = nverts in
  let vi v = Graph.vertex_index g v in
  let exit_idx = dedup (List.map (fun s -> vi (Graph.Sig s)) exits) in
  let is_exit = Array.make nverts false in
  List.iter (fun i -> is_exit.(i) <- true) exit_idx;
  (* Adjacency in the reversed graph, deduplicated: successors are the
     forward predecessors (for the root-first DFS), predecessors are
     the forward successors (for the idom intersection). *)
  let rsucc =
    Array.init nverts (fun i ->
        dedup (List.map (fun (u, _) -> vi u) (Graph.preds g (Graph.vertex_of_index g i))))
  in
  let rpred =
    Array.init nverts (fun i ->
        dedup (List.map (fun (u, _) -> vi u) (Graph.succs g (Graph.vertex_of_index g i))))
  in
  (* Depth-first post-order from the virtual root; reversed it is the
     RPO the iteration sweeps.  Iterative, two-phase stack (enter /
     exit), because netlist cones are deep enough to overflow the
     OCaml stack on a recursive walk. *)
  let reach = Array.make (nverts + 1) false in
  let post = ref [] in
  let stack = ref [ (root, false) ] in
  reach.(root) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, expanded) :: rest ->
        stack := rest;
        if expanded then post := v :: !post
        else begin
          stack := (v, true) :: !stack;
          let next = if v = root then exit_idx else rsucc.(v) in
          List.iter
            (fun u ->
              if not reach.(u) then begin
                reach.(u) <- true;
                stack := (u, false) :: !stack
              end)
            next
        end
  done;
  (* finished vertices are prepended, so [!post] is the reverse
     post-order already (root first) *)
  let rpo = Array.of_list !post in
  let rpo_num = Array.make (nverts + 1) max_int in
  Array.iteri (fun n v -> rpo_num.(v) <- n) rpo;
  let idom = Array.make (nverts + 1) (-1) in
  idom.(root) <- root;
  let rec intersect f1 f2 =
    if f1 = f2 then f1
    else if rpo_num.(f1) > rpo_num.(f2) then intersect idom.(f1) f2
    else intersect f1 idom.(f2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        if v <> root then begin
          let preds = if is_exit.(v) then root :: rpred.(v) else rpred.(v) in
          let new_idom =
            List.fold_left
              (fun acc p ->
                if p <= nverts && reach.(p) && idom.(p) >= 0 then
                  match acc with None -> Some p | Some a -> Some (intersect a p)
                else acc)
              None preds
          in
          match new_idom with
          | Some d when idom.(v) <> d ->
              idom.(v) <- d;
              changed := true
          | Some _ | None -> ()
        end)
      rpo
  done;
  { graph = g; nverts; reach = Array.sub reach 0 nverts; idom }

let reachable t v = t.reach.(Graph.vertex_index t.graph v)

let ipdom t v =
  let i = Graph.vertex_index t.graph v in
  if not t.reach.(i) then None
  else
    let d = t.idom.(i) in
    if d < 0 || d >= t.nverts then None else Some (Graph.vertex_of_index t.graph d)

let dominated_counts t =
  (* Children counts of the post-dominator tree: for every reachable
     non-root vertex, credit its immediate post-dominator. *)
  let counts = Array.make t.nverts 0 in
  Array.iteri
    (fun i d -> if t.reach.(i) && d >= 0 && d < t.nverts then counts.(d) <- counts.(d) + 1)
    (Array.sub t.idom 0 t.nverts);
  counts

let tree_size t =
  let n = ref 0 in
  Array.iter (fun b -> if b then incr n) t.reach;
  !n
