module C = Rtl.Circuit

type t = { map : (C.fault_site * C.fault_model, C.fault_site * C.fault_model) Hashtbl.t }

let sa = function 0 -> C.Stuck_at_0 | _ -> C.Stuck_at_1

(* All probing writes into one scratch array indexed by node id; the
   evaluator only reads its dependency slots, so stale entries from
   earlier nodes are harmless. *)

let analyse_unary c g map scratch ~keep ~max_probe_bits o d =
  let wo = C.signal_width c o and wd = C.signal_width c d in
  if wo = wd && wo <= max_probe_bits && (not (keep d)) && Graph.fanout g d = 1 then begin
    let mask = (1 lsl wo) - 1 in
    let idd = (d :> int) in
    let is_fwd = ref true and is_inv = ref true in
    let x = ref 0 in
    while (!is_fwd || !is_inv) && !x <= mask do
      scratch.(idd) <- !x;
      let r = C.probe_comb c o scratch land mask in
      if r <> !x then is_fwd := false;
      if r <> lnot !x land mask then is_inv := false;
      incr x
    done;
    if !is_fwd then
      for b = 0 to wo - 1 do
        List.iter
          (fun m -> Hashtbl.replace map (C.Node (d, b), m) (C.Node (o, b), m))
          [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ]
      done
    else if !is_inv then
      for b = 0 to wo - 1 do
        Hashtbl.replace map (C.Node (d, b), C.Stuck_at_0) (C.Node (o, b), C.Stuck_at_1);
        Hashtbl.replace map (C.Node (d, b), C.Stuck_at_1) (C.Node (o, b), C.Stuck_at_0);
        Hashtbl.replace map (C.Node (d, b), C.Open_line) (C.Node (o, b), C.Open_line)
      done
  end

let analyse_controlling c g map scratch ~keep ~max_probe_bits o dd =
  let dd = Array.of_list dd in
  let widths = Array.map (C.signal_width c) dd in
  let total_bits = Array.fold_left ( + ) 0 widths in
  if total_bits <= max_probe_bits then begin
    let nd = Array.length dd in
    (* seen.(i).(b).(v): bitmask of output values observed over the
       full truth table restricted to dep [i] bit [b] = [v].  A mask
       of exactly {0} or {1} is a controlling-value proof. *)
    let seen = Array.init nd (fun i -> Array.make_matrix widths.(i) 2 0) in
    for assignment = 0 to (1 lsl total_bits) - 1 do
      let off = ref 0 in
      for i = 0 to nd - 1 do
        scratch.((dd.(i) :> int)) <- (assignment lsr !off) land ((1 lsl widths.(i)) - 1);
        off := !off + widths.(i)
      done;
      let r = C.probe_comb c o scratch land 1 in
      let off = ref 0 in
      for i = 0 to nd - 1 do
        let v = (assignment lsr !off) land ((1 lsl widths.(i)) - 1) in
        for b = 0 to widths.(i) - 1 do
          let bitv = (v lsr b) land 1 in
          seen.(i).(b).(bitv) <- seen.(i).(b).(bitv) lor (1 lsl r)
        done;
        off := !off + widths.(i)
      done
    done;
    Array.iteri
      (fun i d ->
        if (not (keep d)) && Graph.fanout g d = 1 then
          for b = 0 to widths.(i) - 1 do
            for forced = 0 to 1 do
              match seen.(i).(b).(forced) with
              | 1 -> Hashtbl.replace map (C.Node (d, b), sa forced) (C.Node (o, 0), C.Stuck_at_0)
              | 2 -> Hashtbl.replace map (C.Node (d, b), sa forced) (C.Node (o, 0), C.Stuck_at_1)
              | _ -> ()
            done
          done)
      dd
  end

(* Dominance collapsing: [s] is a 1-bit comb node with fan-out (the
   classic rules above never fire on it), [d] its immediate
   post-dominator.  Every path from [s] to the observation boundary
   passes through [d]; if forcing [s] to a constant provably forces
   [d] to a constant [k] for every assignment of the region's external
   inputs, then stuck-at on [s] is observationally stuck-at-[k] on
   [d] — all divergence between the two faulty circuits is confined
   to vertices whose every exit path crosses the (constant) [d].

   The reconvergence region is gathered by forward BFS from [s],
   stopping at [d]; register / memory / read-port vertices inside it
   are cut edges (their influence re-enters, if at all, as free
   external inputs, which only weakens the proof), and the proof is an
   exhaustive evaluation of the region's truth table restricted to
   the forced [s]. *)

let analyse_dominance c g dom map scratch ~keep ~max_region ~max_ext_bits s =
  let is_comb v = match C.node_view c v with C.V_comb _ -> true | _ -> false in
  if C.signal_width c s = 1 && (not (keep s)) && Graph.fanout g s >= 2 && is_comb s
  then
    match Dominator.ipdom dom (Graph.Sig s) with
    | Some (Graph.Sig d)
      when (d :> int) <> (s :> int)
           && C.signal_width c d = 1 && is_comb d
           && C.read_port_memory c d = None -> (
        try
          let interior = Hashtbl.create 16 in
          let ok = ref true in
          let queue = Queue.create () in
          let visit v = Queue.add v queue in
          List.iter (fun (v, _) -> visit v) (Graph.succs g (Graph.Sig s));
          while !ok && not (Queue.is_empty queue) do
            match Queue.pop queue with
            | Graph.Mem _ -> ()  (* cut: re-enters as an external, if at all *)
            | Graph.Sig u ->
                if (u :> int) <> (d :> int) && not (Hashtbl.mem interior (u :> int))
                then
                  if keep u then ok := false
                  else if is_comb u && C.read_port_memory c u = None then begin
                    Hashtbl.replace interior (u :> int) u;
                    if Hashtbl.length interior > max_region then ok := false
                    else List.iter (fun (v, _) -> visit v) (Graph.succs g (Graph.Sig u))
                  end
                  (* registers and read ports cut the walk, like memories *)
          done;
          if !ok then begin
            (* Evaluation order: interior then [d], by creation id —
               comb dependencies always predate their reader. *)
            let order =
              List.sort compare (d :: Hashtbl.fold (fun _ u acc -> u :: acc) interior [])
            in
            let in_region (u : C.signal) =
              (u :> int) = (s :> int) || Hashtbl.mem interior (u :> int)
            in
            let externals = Hashtbl.create 16 in
            List.iter
              (fun u ->
                match C.node_view c u with
                | C.V_comb deps ->
                    Array.iter
                      (fun (dep : C.signal) ->
                        if not (in_region dep) && not (Hashtbl.mem externals (dep :> int))
                        then Hashtbl.replace externals (dep :> int) dep)
                      deps
                | _ -> ())
              order;
            (* Constants keep their value; everything else is a free
               input of the truth table. *)
            let free = ref [] and free_bits = ref 0 in
            Hashtbl.iter
              (fun _ dep ->
                match C.node_view c dep with
                | C.V_const v -> scratch.((dep :> int)) <- v
                | _ ->
                    free := dep :: !free;
                    free_bits := !free_bits + C.signal_width c dep)
              externals;
            if !free_bits <= max_ext_bits then begin
              let free = Array.of_list !free in
              for forced = 0 to 1 do
                scratch.((s :> int)) <- forced;
                let seen = ref 0 in
                let assignment = ref 0 in
                (* early exit: one counterexample pair refutes
                   constancy, and most candidates are refuted within a
                   handful of assignments *)
                while !seen <> 3 && !assignment < 1 lsl !free_bits do
                  let off = ref 0 in
                  Array.iter
                    (fun dep ->
                      let w = C.signal_width c dep in
                      scratch.((dep :> int)) <- (!assignment lsr !off) land ((1 lsl w) - 1);
                      off := !off + w)
                    free;
                  List.iter
                    (fun (u : C.signal) ->
                      scratch.((u :> int)) <-
                        C.probe_comb c u scratch
                        land ((1 lsl C.signal_width c u) - 1))
                    order;
                  seen := !seen lor (1 lsl (scratch.((d :> int)) land 1));
                  incr assignment
                done;
                match !seen with
                | 1 -> Hashtbl.replace map (C.Node (s, 0), sa forced) (C.Node (d, 0), C.Stuck_at_0)
                | 2 -> Hashtbl.replace map (C.Node (s, 0), sa forced) (C.Node (d, 0), C.Stuck_at_1)
                | _ -> ()
              done
            end
          end
        with _ -> ())
    | Some (Graph.Sig _ | Graph.Mem _) | None -> ()

let build ?(max_probe_bits = 12) ?dom g ~keep =
  let c = Graph.circuit g in
  let scratch = Array.make (Graph.signal_count g) 0 in
  let map = Hashtbl.create 256 in
  Array.iter
    (fun o ->
      match C.node_view c o with
      | C.V_comb deps when C.read_port_memory c o = None -> (
          (* An evaluator that raises on some probe input proves
             nothing; skip the node rather than crash the pass. *)
          try
            let dd = List.sort_uniq compare (Array.to_list deps) in
            (match dd with
            | [ d ] -> analyse_unary c g map scratch ~keep ~max_probe_bits o d
            | [] | _ :: _ :: _ -> ());
            if C.signal_width c o = 1 && dd <> [] then
              analyse_controlling c g map scratch ~keep ~max_probe_bits o dd
          with _ -> ())
      | C.V_comb _ | C.V_input | C.V_const _ | C.V_register _ -> ())
    (Graph.signal_handles g);
  (match dom with
  | None -> ()
  | Some dom ->
      let max_ext_bits = min 8 max_probe_bits in
      Array.iter
        (fun s ->
          analyse_dominance c g dom map scratch ~keep ~max_region:24 ~max_ext_bits s)
        (Graph.signal_handles g));
  { map }

let rec resolve t site model =
  match Hashtbl.find_opt t.map (site, model) with
  | Some (site', model') -> resolve t site' model'
  | None -> (site, model)

let mapped t = Hashtbl.length t.map
