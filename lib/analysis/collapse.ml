module C = Rtl.Circuit

type t = { map : (C.fault_site * C.fault_model, C.fault_site * C.fault_model) Hashtbl.t }

let sa = function 0 -> C.Stuck_at_0 | _ -> C.Stuck_at_1

(* All probing writes into one scratch array indexed by node id; the
   evaluator only reads its dependency slots, so stale entries from
   earlier nodes are harmless. *)

let analyse_unary c g map scratch ~keep ~max_probe_bits o d =
  let wo = C.signal_width c o and wd = C.signal_width c d in
  if wo = wd && wo <= max_probe_bits && (not (keep d)) && Graph.fanout g d = 1 then begin
    let mask = (1 lsl wo) - 1 in
    let idd = (d :> int) in
    let is_fwd = ref true and is_inv = ref true in
    let x = ref 0 in
    while (!is_fwd || !is_inv) && !x <= mask do
      scratch.(idd) <- !x;
      let r = C.probe_comb c o scratch land mask in
      if r <> !x then is_fwd := false;
      if r <> lnot !x land mask then is_inv := false;
      incr x
    done;
    if !is_fwd then
      for b = 0 to wo - 1 do
        List.iter
          (fun m -> Hashtbl.replace map (C.Node (d, b), m) (C.Node (o, b), m))
          [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ]
      done
    else if !is_inv then
      for b = 0 to wo - 1 do
        Hashtbl.replace map (C.Node (d, b), C.Stuck_at_0) (C.Node (o, b), C.Stuck_at_1);
        Hashtbl.replace map (C.Node (d, b), C.Stuck_at_1) (C.Node (o, b), C.Stuck_at_0);
        Hashtbl.replace map (C.Node (d, b), C.Open_line) (C.Node (o, b), C.Open_line)
      done
  end

let analyse_controlling c g map scratch ~keep ~max_probe_bits o dd =
  let dd = Array.of_list dd in
  let widths = Array.map (C.signal_width c) dd in
  let total_bits = Array.fold_left ( + ) 0 widths in
  if total_bits <= max_probe_bits then begin
    let nd = Array.length dd in
    (* seen.(i).(b).(v): bitmask of output values observed over the
       full truth table restricted to dep [i] bit [b] = [v].  A mask
       of exactly {0} or {1} is a controlling-value proof. *)
    let seen = Array.init nd (fun i -> Array.make_matrix widths.(i) 2 0) in
    for assignment = 0 to (1 lsl total_bits) - 1 do
      let off = ref 0 in
      for i = 0 to nd - 1 do
        scratch.((dd.(i) :> int)) <- (assignment lsr !off) land ((1 lsl widths.(i)) - 1);
        off := !off + widths.(i)
      done;
      let r = C.probe_comb c o scratch land 1 in
      let off = ref 0 in
      for i = 0 to nd - 1 do
        let v = (assignment lsr !off) land ((1 lsl widths.(i)) - 1) in
        for b = 0 to widths.(i) - 1 do
          let bitv = (v lsr b) land 1 in
          seen.(i).(b).(bitv) <- seen.(i).(b).(bitv) lor (1 lsl r)
        done;
        off := !off + widths.(i)
      done
    done;
    Array.iteri
      (fun i d ->
        if (not (keep d)) && Graph.fanout g d = 1 then
          for b = 0 to widths.(i) - 1 do
            for forced = 0 to 1 do
              match seen.(i).(b).(forced) with
              | 1 -> Hashtbl.replace map (C.Node (d, b), sa forced) (C.Node (o, 0), C.Stuck_at_0)
              | 2 -> Hashtbl.replace map (C.Node (d, b), sa forced) (C.Node (o, 0), C.Stuck_at_1)
              | _ -> ()
            done
          done)
      dd
  end

let build ?(max_probe_bits = 12) g ~keep =
  let c = Graph.circuit g in
  let scratch = Array.make (Graph.signal_count g) 0 in
  let map = Hashtbl.create 256 in
  Array.iter
    (fun o ->
      match C.node_view c o with
      | C.V_comb deps when C.read_port_memory c o = None -> (
          (* An evaluator that raises on some probe input proves
             nothing; skip the node rather than crash the pass. *)
          try
            let dd = List.sort_uniq compare (Array.to_list deps) in
            (match dd with
            | [ d ] -> analyse_unary c g map scratch ~keep ~max_probe_bits o d
            | [] | _ :: _ :: _ -> ());
            if C.signal_width c o = 1 && dd <> [] then
              analyse_controlling c g map scratch ~keep ~max_probe_bits o dd
          with _ -> ())
      | C.V_comb _ | C.V_input | C.V_const _ | C.V_register _ -> ())
    (Graph.signal_handles g);
  { map }

let rec resolve t site model =
  match Hashtbl.find_opt t.map (site, model) with
  | Some (site', model') -> resolve t site' model'
  | None -> (site, model)

let mapped t = Hashtbl.length t.map
