module C = Rtl.Circuit

(* Costs saturate well below [max_int] so sums never wrap. *)
let inf = max_int / 4

let sat a b = let s = a + b in if s >= inf then inf else s

type t = {
  nsigs : int;
  cc0 : int array array;  (* per signal id, per bit *)
  cc1 : int array array;
  co : int array array;
}

(* Relax-to-fixpoint plumbing: every metric starts at [inf] and only
   ever decreases, so sweeping until no array changes terminates. *)
let relax arr i b v changed = if v < arr.(i).(b) then begin arr.(i).(b) <- v; changed := true end

let build ?(max_probe_bits = 12) (g : Graph.t) ~(obs : C.signal list) =
  let c = Graph.circuit g in
  let nsigs = Graph.signal_count g in
  let nmems = Graph.memory_count g in
  let sigs = Graph.signal_handles g in
  let mems = Graph.memory_handles g in
  let width = Array.init nsigs (fun i -> C.signal_width c sigs.(i)) in
  let cc0 = Array.init nsigs (fun i -> Array.make width.(i) inf) in
  let cc1 = Array.init nsigs (fun i -> Array.make width.(i) inf) in
  let co = Array.init nsigs (fun i -> Array.make width.(i) inf) in
  let cc v = if v = 0 then cc0 else cc1 in
  let scratch = Array.make nsigs 0 in
  let si (s : C.signal) = (s :> int) in
  (* Deduplicated dependency layout of a comb node: (signal, width)
     pairs plus the total bit count, for truth-table enumeration. *)
  let dep_layout deps =
    let dd = List.sort_uniq compare (Array.to_list deps) in
    let dd = Array.of_list dd in
    let ws = Array.map (fun d -> width.(si d)) dd in
    (dd, ws, Array.fold_left ( + ) 0 ws)
  in
  let write_assignment dd ws assignment =
    let off = ref 0 in
    Array.iteri
      (fun i d ->
        scratch.(si d) <- (assignment lsr !off) land ((1 lsl ws.(i)) - 1);
        off := !off + ws.(i))
      dd
  in
  (* Cost of an input assignment: the sum of per-bit controllabilities
     at the values the assignment fixes. *)
  let assignment_cost dd ws assignment =
    let cost = ref 0 and off = ref 0 in
    Array.iteri
      (fun i d ->
        for b = 0 to ws.(i) - 1 do
          let v = (assignment lsr (!off + b)) land 1 in
          cost := sat !cost (cc v).(si d).(b)
        done;
        off := !off + ws.(i))
      dd;
    !cost
  in
  (* Wiring discovery for nodes too wide to enumerate (operand packers,
     word-level muxes): probe an all-zero baseline, flip one input bit
     at a time, and treat every toggled output bit as an unconditional
     wire.  An approximation — the sensitisation may be conditional on
     the other inputs — but it is what keeps the behavioural-named
     packer bits of the gate-level elaboration transparent. *)
  let flip_pairs o deps =
    let mask = if width.(si o) >= 63 then -1 else (1 lsl width.(si o)) - 1 in
    let dd, ws, _ = dep_layout deps in
    try
      Array.iter (fun d -> scratch.(si d) <- 0) dd;
      let base = C.probe_comb c o scratch land mask in
      let pairs = ref [] in
      Array.iteri
        (fun i d ->
          for b = 0 to ws.(i) - 1 do
            scratch.(si d) <- 1 lsl b;
            let diff = C.probe_comb c o scratch land mask lxor base in
            scratch.(si d) <- 0;
            for ob = 0 to width.(si o) - 1 do
              if (diff lsr ob) land 1 = 1 then
                pairs := (d, b, ob, (base lsr ob) land 1) :: !pairs
            done
          done)
        dd;
      Some (dd, ws, base, !pairs)
    with _ -> None
  in
  (* ---- controllability: forward relaxation to fixpoint ---- *)
  Array.iteri
    (fun i s ->
      match C.node_view c s with
      | C.V_input ->
          Array.fill cc0.(i) 0 width.(i) 1;
          Array.fill cc1.(i) 0 width.(i) 1
      | C.V_const v ->
          for b = 0 to width.(i) - 1 do
            (cc ((v lsr b) land 1)).(i).(b) <- 1
          done
      | C.V_comb _ when C.read_port_memory c s <> None ->
          (* memory content: architecturally controllable, one level
             deeper than a primary input *)
          Array.fill cc0.(i) 0 width.(i) 2;
          Array.fill cc1.(i) 0 width.(i) 2
      | C.V_comb _ | C.V_register _ -> ())
    sigs;
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < 100 do
    changed := false;
    incr sweeps;
    Array.iteri
      (fun i s ->
        match C.node_view c s with
        | C.V_input | C.V_const _ -> ()
        | C.V_register { d; en; init } ->
            let en_cost = match en with None -> 0 | Some e -> cc1.(si e).(0) in
            for b = 0 to width.(i) - 1 do
              let iv = (init lsr b) land 1 in
              relax (cc iv) i b 1 changed;
              for v = 0 to 1 do
                relax (cc v) i b (sat (cc v).(si d).(b) (sat en_cost 1)) changed
              done
            done
        | C.V_comb _ when C.read_port_memory c s <> None -> ()
        | C.V_comb deps -> (
            let dd, ws, total = dep_layout deps in
            if total <= max_probe_bits && total > 0 then begin
              try
                let mask = (1 lsl width.(i)) - 1 in
                for assignment = 0 to (1 lsl total) - 1 do
                  let cost = assignment_cost dd ws assignment in
                  if cost < inf then begin
                    write_assignment dd ws assignment;
                    let out = C.probe_comb c s scratch land mask in
                    for ob = 0 to width.(i) - 1 do
                      relax (cc ((out lsr ob) land 1)) i ob (sat cost 1) changed
                    done
                  end
                done
              with _ -> ()
            end
            else
              match flip_pairs s deps with
              | Some (dd, _, _, pairs) ->
                  List.iter
                    (fun ((d : C.signal), b, ob, b0) ->
                      (* input bit 0 at the baseline yields output [b0],
                         input bit 1 its complement *)
                      relax (cc b0) i ob (sat cc0.(si d).(b) 1) changed;
                      relax (cc (1 - b0)) i ob (sat cc1.(si d).(b) 1) changed)
                    pairs;
                  (* every output bit additionally gets the
                     cheapest-input bound: the zero-baseline flip only
                     explores one corner of the node's behaviour, and a
                     value unreachable there may be cheap under other
                     input combinations *)
                  let m =
                    lazy
                      (Array.fold_left
                         (fun acc (d : C.signal) ->
                           let acc = ref acc in
                           for b = 0 to width.(si d) - 1 do
                             acc := min !acc (min cc0.(si d).(b) cc1.(si d).(b))
                           done;
                           !acc)
                         inf dd)
                  in
                  for ob = 0 to width.(i) - 1 do
                    relax cc0 i ob (sat (Lazy.force m) 1) changed;
                    relax cc1 i ob (sat (Lazy.force m) 1) changed
                  done
              | None -> ()))
      sigs
  done;
  (* ---- observability: backward relaxation to fixpoint ---- *)
  List.iter (fun s -> Array.fill co.(si s) 0 width.(si s) 0) obs;
  let co_mem = Array.make nmems inf in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps < 100 do
    changed := false;
    incr sweeps;
    for i = nsigs - 1 downto 0 do
      let s = sigs.(i) in
      match C.node_view c s with
      | C.V_input | C.V_const _ -> ()
      | C.V_register { d; en; init = _ } ->
          let en_cost = match en with None -> 0 | Some e -> cc1.(si e).(0) in
          let min_co = Array.fold_left min inf co.(i) in
          for b = 0 to width.(i) - 1 do
            relax co (si d) b (sat co.(i).(b) (sat en_cost 1)) changed
          done;
          Option.iter (fun (e : C.signal) -> relax co (si e) 0 (sat min_co 1) changed) en
      | C.V_comb deps -> (
          (match C.read_port_memory c s with
          | Some m ->
              (* content observability: through the cheapest read bit *)
              let min_co = Array.fold_left min inf co.(i) in
              let v = sat min_co 1 in
              let mi = (m :> int) in
              if v < co_mem.(mi) then begin co_mem.(mi) <- v; changed := true end
          | None -> ());
          let dd, ws, total = dep_layout deps in
          if total <= max_probe_bits && total > 0 && C.read_port_memory c s = None
          then begin
            try
              let mask = (1 lsl width.(i)) - 1 in
              let outs = Array.make (1 lsl total) 0 in
              for assignment = 0 to (1 lsl total) - 1 do
                write_assignment dd ws assignment;
                outs.(assignment) <- C.probe_comb c s scratch land mask
              done;
              for assignment = 0 to (1 lsl total) - 1 do
                let off = ref 0 in
                Array.iteri
                  (fun di d ->
                    for b = 0 to ws.(di) - 1 do
                      let pos = !off + b in
                      let diff = outs.(assignment) lxor outs.(assignment lxor (1 lsl pos)) in
                      if diff <> 0 then begin
                        (* cost of holding the other inputs at this
                           sensitising assignment *)
                        let others = ref 0 in
                        let off2 = ref 0 in
                        Array.iteri
                          (fun dj d' ->
                            for b' = 0 to ws.(dj) - 1 do
                              let pos' = !off2 + b' in
                              if pos' <> pos then
                                others :=
                                  sat !others
                                    (cc ((assignment lsr pos') land 1)).(si d').(b')
                            done;
                            off2 := !off2 + ws.(dj))
                          dd;
                        if !others < inf then
                          for ob = 0 to width.(i) - 1 do
                            if (diff lsr ob) land 1 = 1 then
                              relax co (si d) b (sat co.(i).(ob) (sat !others 1)) changed
                          done
                      end
                    done;
                    off := !off + ws.(di))
                  dd
              done
            with _ -> ()
          end
          else
            match flip_pairs s deps with
            | Some (dd, ws, _, pairs) ->
                List.iter
                  (fun ((d : C.signal), b, ob, _) ->
                    relax co (si d) b (sat co.(i).(ob) 1) changed)
                  pairs;
                (* every dep bit additionally gets a coarse bound
                   through the node's cheapest output with one extra
                   level for the (unknown) side conditions: the
                   zero-baseline flip only explores one corner of the
                   node's behaviour, and a path closed there may be
                   wide open under the values the workload drives *)
                let min_co = Array.fold_left min inf co.(i) in
                Array.iteri
                  (fun di (d : C.signal) ->
                    for b = 0 to ws.(di) - 1 do
                      relax co (si d) b (sat min_co 2) changed
                    done)
                  dd
            | None -> ())
    done;
    (* memory write ports: data/enable/address observable through the
       memory's content observability *)
    Array.iteri
      (fun mi m ->
        if co_mem.(mi) < inf then
          List.iter
            (fun ((we : C.signal), (addr : C.signal), (data : C.signal)) ->
              let v = sat co_mem.(mi) 1 in
              relax co (si we) 0 v changed;
              for b = 0 to width.(si addr) - 1 do relax co (si addr) b v changed done;
              for b = 0 to width.(si data) - 1 do relax co (si data) b v changed done)
            (C.write_ports c m))
      mems
  done;
  { nsigs; cc0; cc1; co }

let check t s b =
  let i = (s : C.signal :> int) in
  if i < 0 || i >= t.nsigs || b < 0 || b >= Array.length t.cc0.(i) then
    invalid_arg "Scoap: bit out of range"

let cc0 t s b = check t s b; t.cc0.((s : C.signal :> int)).(b)

let cc1 t s b = check t s b; t.cc1.((s : C.signal :> int)).(b)

let co t s b = check t s b; t.co.((s : C.signal :> int)).(b)

(* Controllability enters the detectability score logarithmically.
   The raw cc sums grow multiplicatively through reconvergent
   arithmetic (a ripple-carry bit near the top of the adder costs
   thousands), yet a workload activates such faults about as easily as
   shallow ones — what it cannot shortcut is the propagation path.
   Damping cc keeps its ordering while letting co dominate, which is
   what the campaign-verdict rank correlation rewards on both
   elaborations. *)
let damp c =
  if c >= inf then inf
  else begin
    let r = ref 0 and v = ref (c + 1) in
    while !v > 1 do incr r; v := !v lsr 1 done;
    !r
  end

let detectability t site model =
  match (site : C.fault_site) with
  | C.Cell _ -> None
  | C.Node (s, b) ->
      let i = (s :> int) in
      if i >= t.nsigs || b >= Array.length t.cc0.(i) then None
      else
        let c0 = t.cc0.(i).(b) and c1 = t.cc1.(i).(b) and o = t.co.(i).(b) in
        Some
          (match (model : C.fault_model) with
          | C.Stuck_at_0 -> sat (damp c1) o
          | C.Stuck_at_1 -> sat (damp c0) o
          | C.Open_line -> sat (sat (damp c0) (damp c1)) o
          | C.Bit_flip -> sat o 1)
