module Isa = Sparc.Isa
module Asm = Sparc.Asm
module Memory = Sparc.Memory
module Units = Sparc.Units
module Bus_event = Sparc.Bus_event

(** Instruction set simulator: functional emulator plus coarse timing.

    The functional emulator keeps the full architectural state
    (windowed registers, condition codes, PC, memory) and interprets
    machine words fetched from memory — the same encoded image the RTL
    system executes.  The timing side charges per-class latencies and
    I/D-cache penalties so cycle counts have the right order of
    magnitude; it never affects functional results.

    This is the cheap engine of the paper: fault injection happens in
    the RTL model, while the ISS supplies the instruction-grain
    information (counts, diversity, unit usage) that the correlation
    consumes. *)

type trap =
  | Misaligned_access of int
  | Division_by_zero
  | Illegal_instruction of int  (** the undecodable word *)

type stop_reason =
  | Exited of int  (** store to the exit port; payload is the exit code *)
  | Instruction_limit
  | Trapped of trap

type latencies = {
  alu : int;
  shift : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch_taken : int;  (** includes pipeline refill *)
  branch_untaken : int;
  call : int;
  jmpl : int;
  save_restore : int;
  sethi : int;
}

val default_latencies : latencies

type config = {
  nwindows : int;
  latencies : latencies;
  icache : Cache.config option;
  dcache : Cache.config option;
  max_instructions : int;
  record_reads : bool;  (** also record load bus events *)
}

val default_config : config

type t

type outcome = Running | Stopped of stop_reason

val create : ?config:config -> Asm.program -> t
(** Loads the program image into a fresh memory and points the PC at
    its entry. *)

val step : t -> outcome
(** Execute one instruction. Stepping a stopped emulator returns the
    same stop again without effect. *)

val run : t -> stop_reason
(** Step until stopped. *)

(** {2 State access} *)

val pc : t -> int
val cycles : t -> int
val instructions : t -> int
val icc : t -> Isa.icc
val cwp : t -> int
val reg : t -> Isa.reg -> int
(** Read an architectural register of the {e current} window. *)

val set_reg : t -> Isa.reg -> int -> unit
val memory : t -> Memory.t
val events : t -> Bus_event.t list
(** Off-core bus events in program order. *)

val opcode_histogram : t -> (Isa.opcode * int) list
(** Executed opcodes with non-zero counts. *)

val diversity : t -> int
(** Number of distinct opcodes executed so far (the paper's metric). *)

val unit_accesses : t -> (Units.t * int) list
(** Per-functional-unit dynamic access counts, derived from the opcode
    histogram via {!Units.used_by}. *)

val icache_stats : t -> Cache.stats option
val dcache_stats : t -> Cache.stats option

(** {2 Fault-injection hooks}

    Instruction-grain corruption primitives for ISS-level campaigns
    ({!Iss_campaign} in [lib/fault]).  They mutate architectural state
    directly; classification against a golden run is the caller's
    job. *)

val regfile_slots : t -> int
(** Size of the flat register-file slot space: 8 globals (slot 0 is
    the hardwired g0 cell — corrupting it is architecturally masked)
    followed by the [16 * nwindows] windowed registers. *)

val flip_regfile_bit : t -> slot:int -> bit:int -> unit
(** Invert one bit of one physical register-file slot. *)

val flip_memory_bit : t -> addr:int -> bit:int -> unit
(** Invert one bit of the memory word containing [addr] (the address
    is word-aligned down). *)

val corrupt_next_fetch : t -> bit:int -> unit
(** XOR the given bit into the {e next} fetched instruction word.  The
    corrupted word bypasses the decode cache (read and insert) and the
    mask clears itself after one fetch, so exactly one dynamic
    instruction is affected. *)

val set_event_hook : t -> (Bus_event.t -> unit) option -> unit
(** Install a callback invoked synchronously on every recorded bus
    event — the cheap lockstep-observation channel.  The callback may
    raise to abort the run; the exception propagates out of
    {!step}/{!run}. *)

(** {2 One-shot convenience} *)

type result = {
  stop : stop_reason;
  cycles : int;
  instructions : int;
  histogram : (Isa.opcode * int) list;
  diversity : int;
  unit_accesses : (Units.t * int) list;
  writes : Bus_event.t list;  (** write events only, in order *)
  events : Bus_event.t list;  (** all recorded events *)
  memory_instructions : int;  (** dynamic loads + stores *)
}

val execute : ?config:config -> Asm.program -> result
(** Load, run to completion and summarise. *)

val pp_stop : Format.formatter -> stop_reason -> unit
