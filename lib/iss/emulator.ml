module Isa = Sparc.Isa
module Asm = Sparc.Asm
module Memory = Sparc.Memory
module Layout = Sparc.Layout
module Units = Sparc.Units
module Encode = Sparc.Encode
module Bus_event = Sparc.Bus_event

type trap =
  | Misaligned_access of int
  | Division_by_zero
  | Illegal_instruction of int

type stop_reason = Exited of int | Instruction_limit | Trapped of trap

type latencies = {
  alu : int;
  shift : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch_taken : int;
  branch_untaken : int;
  call : int;
  jmpl : int;
  save_restore : int;
  sethi : int;
}

let default_latencies =
  { alu = 1; shift = 1; mul = 4; div = 18; load = 2; store = 2; branch_taken = 3;
    branch_untaken = 1; call = 2; jmpl = 3; save_restore = 1; sethi = 1 }

type config = {
  nwindows : int;
  latencies : latencies;
  icache : Cache.config option;
  dcache : Cache.config option;
  max_instructions : int;
  record_reads : bool;
}

let default_config =
  { nwindows = 8; latencies = default_latencies; icache = Some Cache.default_icache;
    dcache = Some Cache.default_dcache; max_instructions = 2_000_000; record_reads = true }

type outcome = Running | Stopped of stop_reason

type t = {
  config : config;
  mem : Memory.t;
  globals : int array;  (* 8 entries *)
  windowed : int array;  (* 16 * nwindows: outs then locals per window *)
  mutable cwp : int;
  mutable iccs : Isa.icc;
  mutable pc_ : int;
  mutable cycles_ : int;
  mutable ninstr : int;
  mutable stopped : stop_reason option;
  counts : int array;  (* indexed by Isa.opcode_index *)
  mutable events_rev : Bus_event.t list;
  icache : Cache.t option;
  dcache : Cache.t option;
  decode_cache : (int, Isa.instr) Hashtbl.t;
  mutable fetch_xor : int;  (* one-shot XOR mask on the next fetched word *)
  mutable on_event : (Bus_event.t -> unit) option;
}

let create ?(config = default_config) prog =
  let mem = Memory.create () in
  Asm.load prog mem;
  { config;
    mem;
    globals = Array.make 8 0;
    windowed = Array.make (16 * config.nwindows) 0;
    cwp = 0;
    iccs = Isa.icc_zero;
    pc_ = prog.Asm.entry;
    cycles_ = 0;
    ninstr = 0;
    stopped = None;
    counts = Array.make Isa.num_opcodes 0;
    events_rev = [];
    icache = Option.map Cache.create config.icache;
    dcache = Option.map Cache.create config.dcache;
    decode_cache = Hashtbl.create 1024;
    fetch_xor = 0;
    on_event = None }

(* Window mapping: register 8+i (out) of window w lives at slot w*16+i;
   register 16+i (local) at w*16+8+i; register 24+i (in) is the out of
   the adjacent window, slot ((w+1) mod nw)*16+i.  SAVE decrements CWP. *)
let slot t w r =
  if r < 16 then (16 * w) + (r - 8)
  else if r < 24 then (16 * w) + 8 + (r - 16)
  else (16 * ((w + 1) mod t.config.nwindows)) + (r - 24)

let reg_in_window t w r =
  if r = 0 then 0
  else if r < 8 then t.globals.(r)
  else t.windowed.(slot t w r)

let set_reg_in_window t w r v =
  if r = 0 then ()
  else if r < 8 then t.globals.(r) <- Bitops.of_int v
  else t.windowed.(slot t w r) <- Bitops.of_int v

let reg t r = reg_in_window t t.cwp r

let set_reg t r v = set_reg_in_window t t.cwp r v

let operand_value t = function
  | Isa.Reg r -> reg t r
  | Isa.Imm i -> Bitops.of_int i

let pc t = t.pc_
let cycles t = t.cycles_
let instructions t = t.ninstr
let icc t = t.iccs
let cwp t = t.cwp
let memory t = t.mem
let events t = List.rev t.events_rev

let record t ev =
  t.events_rev <- ev :: t.events_rev;
  match t.on_event with Some f -> f ev | None -> ()

let set_event_hook t hook = t.on_event <- hook

(* Architectural register file as one flat slot space: globals first
   (slot 0 is the hardwired g0 cell — corrupting it is architecturally
   masked, like flipping a tied-zero net), then the windowed file. *)
let regfile_slots t = 8 + Array.length t.windowed

let flip_regfile_bit t ~slot ~bit =
  let mask = 1 lsl bit in
  if slot < 8 then t.globals.(slot) <- Bitops.of_int (t.globals.(slot) lxor mask)
  else
    let i = slot - 8 in
    t.windowed.(i) <- Bitops.of_int (t.windowed.(i) lxor mask)

let flip_memory_bit t ~addr ~bit =
  let addr = addr land lnot 3 in
  let v = Memory.load_word t.mem addr in
  Memory.store_word t.mem addr (Bitops.of_int (v lxor (1 lsl bit)))

let corrupt_next_fetch t ~bit = t.fetch_xor <- t.fetch_xor lor (1 lsl bit)

let opcode_histogram t =
  List.filter_map
    (fun op ->
      let c = t.counts.(Isa.opcode_index op) in
      if c > 0 then Some (op, c) else None)
    Isa.all_opcodes

let diversity t = List.length (opcode_histogram t)

let unit_accesses t =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (op, c) ->
      List.iter
        (fun u ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt acc u) in
          Hashtbl.replace acc u (prev + c))
        (Units.used_by op))
    (opcode_histogram t);
  List.filter_map
    (fun u -> Option.map (fun c -> (u, c)) (Hashtbl.find_opt acc u))
    Units.all

let icache_stats t = Option.map Cache.stats t.icache
let dcache_stats t = Option.map Cache.stats t.dcache

let set_icc_logic t result =
  t.iccs <-
    { n = Bitops.is_negative result; z = result = 0; v = false; c = false }

let set_icc_arith t result ~c ~v =
  t.iccs <- { n = Bitops.is_negative result; z = result = 0; v; c }

let charge t n = t.cycles_ <- t.cycles_ + n

let charge_cache cache_opt t addr ~write =
  match cache_opt with
  | Some cache -> charge t (Cache.access cache addr ~write)
  | None -> ()

exception Trap of trap

let exec_alu t op rs1 op2 rd =
  let lat = t.config.latencies in
  let a = reg t rs1 in
  let b = operand_value t op2 in
  match op with
  | Isa.Add ->
      set_reg t rd (Bitops.add a b);
      charge t lat.alu
  | Isa.Addcc ->
      let r, c, v = Bitops.add_full a b 0 in
      set_reg t rd r;
      set_icc_arith t r ~c ~v;
      charge t lat.alu
  | Isa.Addx ->
      let cin = if t.iccs.c then 1 else 0 in
      let r, _, _ = Bitops.add_full a b cin in
      set_reg t rd r;
      charge t lat.alu
  | Isa.Addxcc ->
      let cin = if t.iccs.c then 1 else 0 in
      let r, c, v = Bitops.add_full a b cin in
      set_reg t rd r;
      set_icc_arith t r ~c ~v;
      charge t lat.alu
  | Isa.Sub ->
      set_reg t rd (Bitops.sub a b);
      charge t lat.alu
  | Isa.Subcc ->
      let r, c, v = Bitops.sub_full a b 0 in
      set_reg t rd r;
      set_icc_arith t r ~c ~v;
      charge t lat.alu
  | Isa.Subx ->
      let bin = if t.iccs.c then 1 else 0 in
      let r, _, _ = Bitops.sub_full a b bin in
      set_reg t rd r;
      charge t lat.alu
  | Isa.Subxcc ->
      let bin = if t.iccs.c then 1 else 0 in
      let r, c, v = Bitops.sub_full a b bin in
      set_reg t rd r;
      set_icc_arith t r ~c ~v;
      charge t lat.alu
  | Isa.And | Isa.Andcc ->
      let r = a land b in
      set_reg t rd r;
      if Isa.writes_icc op then set_icc_logic t r;
      charge t lat.alu
  | Isa.Andn | Isa.Andncc ->
      let r = a land Bitops.of_int (lnot b) in
      set_reg t rd r;
      if Isa.writes_icc op then set_icc_logic t r;
      charge t lat.alu
  | Isa.Or | Isa.Orcc ->
      let r = a lor b in
      set_reg t rd r;
      if Isa.writes_icc op then set_icc_logic t r;
      charge t lat.alu
  | Isa.Orn | Isa.Orncc ->
      let r = a lor Bitops.of_int (lnot b) in
      set_reg t rd r;
      if Isa.writes_icc op then set_icc_logic t r;
      charge t lat.alu
  | Isa.Xor | Isa.Xorcc ->
      let r = a lxor b in
      set_reg t rd r;
      if Isa.writes_icc op then set_icc_logic t r;
      charge t lat.alu
  | Isa.Xnor | Isa.Xnorcc ->
      let r = Bitops.of_int (lnot (a lxor b)) in
      set_reg t rd r;
      if Isa.writes_icc op then set_icc_logic t r;
      charge t lat.alu
  | Isa.Sll ->
      set_reg t rd (Bitops.shl a b);
      charge t lat.shift
  | Isa.Srl ->
      set_reg t rd (Bitops.shr a b);
      charge t lat.shift
  | Isa.Sra ->
      set_reg t rd (Bitops.sar a b);
      charge t lat.shift
  | Isa.Umul | Isa.Umulcc ->
      let _, lo = Bitops.mul_full ~signed:false a b in
      set_reg t rd lo;
      if Isa.writes_icc op then set_icc_logic t lo;
      charge t lat.mul
  | Isa.Smul | Isa.Smulcc ->
      let _, lo = Bitops.mul_full ~signed:true a b in
      set_reg t rd lo;
      if Isa.writes_icc op then set_icc_logic t lo;
      charge t lat.mul
  | Isa.Udiv -> (
      (* 32/32 division: the Y register is not modelled (DESIGN.md). *)
      match Bitops.div32 ~signed:false ~hi:0 ~lo:a b with
      | None -> raise (Trap Division_by_zero)
      | Some (q, _) ->
          set_reg t rd q;
          charge t lat.div)
  | Isa.Sdiv -> (
      let hi = if Bitops.is_negative a then 0xFFFF_FFFF else 0 in
      match Bitops.div32 ~signed:true ~hi ~lo:a b with
      | None -> raise (Trap Division_by_zero)
      | Some (q, _) ->
          set_reg t rd q;
          charge t lat.div)
  | Isa.Save ->
      let sum = Bitops.add a b in
      t.cwp <- (t.cwp + t.config.nwindows - 1) mod t.config.nwindows;
      set_reg t rd sum;
      charge t lat.save_restore
  | Isa.Restore ->
      let sum = Bitops.add a b in
      t.cwp <- (t.cwp + 1) mod t.config.nwindows;
      set_reg t rd sum;
      charge t lat.save_restore
  | Isa.Jmpl ->
      let target = Bitops.add a b in
      if target land 3 <> 0 then raise (Trap (Misaligned_access target));
      set_reg t rd t.pc_;
      t.pc_ <- target;
      charge t lat.jmpl
  | Isa.Ld | Isa.Ldub | Isa.Ldsb | Isa.Lduh | Isa.Ldsh | Isa.St | Isa.Stb | Isa.Sth
  | Isa.Sethi | Isa.Call
  | Isa.Ba | Isa.Bn | Isa.Bne | Isa.Be | Isa.Bg | Isa.Ble | Isa.Bge | Isa.Bl
  | Isa.Bgu | Isa.Bleu | Isa.Bcc | Isa.Bcs | Isa.Bpos | Isa.Bneg | Isa.Bvc | Isa.Bvs ->
      assert false

let exec_mem t op rs1 op2 rd =
  let lat = t.config.latencies in
  let ea = Bitops.add (reg t rs1) (operand_value t op2) in
  let mis addr = raise (Trap (Misaligned_access addr)) in
  charge_cache t.dcache t ea ~write:(Isa.is_store op);
  match op with
  | Isa.Ld ->
      if ea land 3 <> 0 then mis ea;
      if t.config.record_reads then record t (Bus_event.Read { addr = ea; size = Word });
      set_reg t rd (Memory.load_word t.mem ea);
      charge t lat.load
  | Isa.Ldub ->
      if t.config.record_reads then record t (Bus_event.Read { addr = ea; size = Byte });
      set_reg t rd (Memory.load_byte t.mem ea);
      charge t lat.load
  | Isa.Ldsb ->
      if t.config.record_reads then record t (Bus_event.Read { addr = ea; size = Byte });
      set_reg t rd (Bitops.sext ~bits:8 (Memory.load_byte t.mem ea));
      charge t lat.load
  | Isa.Lduh ->
      if ea land 1 <> 0 then mis ea;
      if t.config.record_reads then record t (Bus_event.Read { addr = ea; size = Half });
      set_reg t rd (Memory.load_half t.mem ea);
      charge t lat.load
  | Isa.Ldsh ->
      if ea land 1 <> 0 then mis ea;
      if t.config.record_reads then record t (Bus_event.Read { addr = ea; size = Half });
      set_reg t rd (Bitops.sext ~bits:16 (Memory.load_half t.mem ea));
      charge t lat.load
  | Isa.St ->
      if ea land 3 <> 0 then mis ea;
      let v = reg t rd in
      record t (Bus_event.Write { addr = ea; size = Word; value = v });
      if Layout.is_exit_store ea then t.stopped <- Some (Exited v)
      else Memory.store_word t.mem ea v;
      charge t lat.store
  | Isa.Stb ->
      let v = reg t rd land 0xFF in
      record t (Bus_event.Write { addr = ea; size = Byte; value = v });
      Memory.store_byte t.mem ea v;
      charge t lat.store
  | Isa.Sth ->
      if ea land 1 <> 0 then mis ea;
      let v = reg t rd land 0xFFFF in
      record t (Bus_event.Write { addr = ea; size = Half; value = v });
      Memory.store_half t.mem ea v;
      charge t lat.store
  | Isa.Add | Isa.Addcc | Isa.Addx | Isa.Addxcc | Isa.Sub | Isa.Subcc | Isa.Subx
  | Isa.Subxcc | Isa.And | Isa.Andcc | Isa.Andn | Isa.Andncc | Isa.Or | Isa.Orcc
  | Isa.Orn | Isa.Orncc | Isa.Xor | Isa.Xorcc | Isa.Xnor | Isa.Xnorcc
  | Isa.Sll | Isa.Srl | Isa.Sra | Isa.Umul | Isa.Umulcc | Isa.Smul | Isa.Smulcc
  | Isa.Udiv | Isa.Sdiv | Isa.Save | Isa.Restore | Isa.Jmpl | Isa.Sethi | Isa.Call
  | Isa.Ba | Isa.Bn | Isa.Bne | Isa.Be | Isa.Bg | Isa.Ble | Isa.Bge | Isa.Bl
  | Isa.Bgu | Isa.Bleu | Isa.Bcc | Isa.Bcs | Isa.Bpos | Isa.Bneg | Isa.Bvc | Isa.Bvs ->
      assert false

let fetch_decode t =
  let addr = t.pc_ in
  if addr land 3 <> 0 then raise (Trap (Misaligned_access addr));
  charge_cache t.icache t addr ~write:false;
  if t.fetch_xor <> 0 then begin
    (* Corrupted fetch: bypass the decode cache entirely (read and
       insert), decode the XORed word, and clear the one-shot mask. *)
    let w = Memory.load_word t.mem addr lxor t.fetch_xor in
    t.fetch_xor <- 0;
    match Encode.decode w with
    | Some i -> i
    | None -> raise (Trap (Illegal_instruction w))
  end
  else
    match Hashtbl.find_opt t.decode_cache addr with
    | Some i -> i
    | None -> (
        let w = Memory.load_word t.mem addr in
        match Encode.decode w with
        | Some i ->
            Hashtbl.add t.decode_cache addr i;
            i
        | None -> raise (Trap (Illegal_instruction w)))

let step t =
  match t.stopped with
  | Some r -> Stopped r
  | None -> (
      if t.ninstr >= t.config.max_instructions then begin
        t.stopped <- Some Instruction_limit;
        Stopped Instruction_limit
      end
      else
        try
          let instr = fetch_decode t in
          let lat = t.config.latencies in
          t.counts.(Isa.opcode_index (Isa.opcode_of_instr instr)) <-
            t.counts.(Isa.opcode_index (Isa.opcode_of_instr instr)) + 1;
          t.ninstr <- t.ninstr + 1;
          let next_pc = Bitops.add t.pc_ 4 in
          (match instr with
          | Isa.Alu { op = Isa.Jmpl; rs1; op2; rd } ->
              (* Jmpl sets the PC itself. *)
              exec_alu t Isa.Jmpl rs1 op2 rd
          | Isa.Alu { op; rs1; op2; rd } ->
              exec_alu t op rs1 op2 rd;
              t.pc_ <- next_pc
          | Isa.Mem { op; rs1; op2; rd } ->
              exec_mem t op rs1 op2 rd;
              t.pc_ <- next_pc
          | Isa.Sethi_i { imm22; rd } ->
              set_reg t rd (Bitops.of_int (imm22 lsl 10));
              charge t lat.sethi;
              t.pc_ <- next_pc
          | Isa.Branch_i { op; disp22 } ->
              if Isa.cond_holds op t.iccs then begin
                t.pc_ <- Bitops.add t.pc_ (4 * disp22);
                charge t lat.branch_taken
              end
              else begin
                t.pc_ <- next_pc;
                charge t lat.branch_untaken
              end
          | Isa.Call_i { disp30 } ->
              set_reg t Isa.o7 t.pc_;
              t.pc_ <- Bitops.add t.pc_ (4 * disp30);
              charge t lat.call);
          match t.stopped with Some r -> Stopped r | None -> Running
        with
        | Trap tr ->
            t.stopped <- Some (Trapped tr);
            Stopped (Trapped tr)
        | Memory.Misaligned addr ->
            t.stopped <- Some (Trapped (Misaligned_access addr));
            Stopped (Trapped (Misaligned_access addr)))

let run t =
  let rec go () = match step t with Running -> go () | Stopped r -> r in
  go ()

type result = {
  stop : stop_reason;
  cycles : int;
  instructions : int;
  histogram : (Isa.opcode * int) list;
  diversity : int;
  unit_accesses : (Units.t * int) list;
  writes : Bus_event.t list;
  events : Bus_event.t list;
  memory_instructions : int;
}

let execute ?config prog =
  let t = create ?config prog in
  let stop = run t in
  let histogram = opcode_histogram t in
  let memory_instructions =
    List.fold_left
      (fun acc (op, c) -> if Isa.is_mem op then acc + c else acc)
      0 histogram
  in
  let evs = events t in
  { stop;
    cycles = t.cycles_;
    instructions = t.ninstr;
    histogram;
    diversity = List.length histogram;
    unit_accesses = unit_accesses t;
    writes = List.filter Bus_event.is_write evs;
    events = evs;
    memory_instructions }

let pp_stop fmt = function
  | Exited code -> Format.fprintf fmt "exited(%d)" code
  | Instruction_limit -> Format.fprintf fmt "instruction-limit"
  | Trapped (Misaligned_access a) -> Format.fprintf fmt "trap:misaligned(0x%08x)" a
  | Trapped Division_by_zero -> Format.fprintf fmt "trap:zero-divide"
  | Trapped (Illegal_instruction w) -> Format.fprintf fmt "trap:illegal(0x%08x)" w
