(** Plain-text tables for experiment output (and CSV for plotting). *)

type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make : title:string -> header:string list -> ?notes:string list -> string list list -> t

val render : Format.formatter -> t -> unit
(** Boxed, column-aligned ASCII rendering. *)

val to_string : t -> string

val to_csv : t -> string
(** Header + rows, comma-separated with minimal quoting. *)

val cell_float : float -> string
(** Two-decimal rendering used across experiment tables. *)

val cell_pct : float -> string
(** ["12.3%"] from a 0-100 value. *)

val cell_ci : lower:float -> upper:float -> float -> string
(** ["12.3% [10.1, 14.9]"] — a percentage point estimate with its
    confidence bounds, all on the 0-100 scale. *)
