type t = {
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~header ?(notes = []) rows =
  List.iter (fun r -> assert (List.length r = List.length header)) rows;
  { title; header; rows; notes }

let widths t =
  let all = t.header :: t.rows in
  let ncols = List.length t.header in
  List.init ncols (fun i ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)

let render fmt t =
  let ws = widths t in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line ch =
    Format.fprintf fmt "+%s+@."
      (String.concat "+" (List.map (fun w -> String.make (w + 2) ch) ws))
  in
  let row cells =
    Format.fprintf fmt "|%s|@."
      (String.concat "|" (List.map2 (fun c w -> " " ^ pad c w ^ " ") cells ws))
  in
  Format.fprintf fmt "== %s ==@." t.title;
  line '-';
  row t.header;
  line '=';
  List.iter row t.rows;
  line '-';
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) t.notes

let to_string t = Format.asprintf "%a" render t

let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map quote cells) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"

let cell_float f = Printf.sprintf "%.2f" f

let cell_pct f = Printf.sprintf "%.1f%%" f

let cell_ci ~lower ~upper f =
  Printf.sprintf "%.1f%% [%.1f, %.1f]" f lower upper
