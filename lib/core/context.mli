(** Shared experiment context: one elaborated RTL system, one ISS
    configuration, campaign settings, and a memo of campaign results so
    experiments that need the same (workload, block) pair — e.g.
    Fig. 5 and Fig. 7 — pay for it once. *)

module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection
module Iss_campaign = Fault_injection.Iss_campaign

type t

type trim_stats = {
  injections : int;
  skipped : int;  (** dynamic activation prefilter *)
  early_exits : int;  (** convergence early exits *)
  pruned : int;  (** cone-of-influence static pruning *)
  collapsed : int;  (** collapse-class verdict replication *)
}
(** Running totals over every campaign this context has executed
    (memoised hits are not double-counted); a projection of the
    context's telemetry counters. *)

val create :
  ?samples:int ->
  ?seed:int ->
  ?trim:bool ->
  ?static:bool ->
  ?event:bool ->
  ?batch:bool ->
  ?tail:bool ->
  ?gate:bool ->
  ?obs:Obs.t ->
  unit ->
  t
(** [samples] is the per-(workload, block) injection sample size
    (default 250; the [RICV_SAMPLES] environment variable, when set,
    overrides the default).  [trim] enables trimmed campaign execution
    (default true; set [RICV_TRIM=0] to disable without code changes —
    results are identical either way, only the time changes).
    [static] likewise enables netlist static analysis (cone pruning +
    fault collapsing; default true, [RICV_STATIC=0] to disable — also
    result-identical).  [event] enables event-driven differential
    simulation of the faulty runs against the golden trace (default
    true, [RICV_EVENT=0] to disable — also result-identical).
    [batch] enables bit-parallel fault batching, packing up to 63
    faulty machines into the bit-lanes of one circuit per pass
    (default true, [RICV_BATCH=0] to disable — also
    result-identical).  [tail] enables the watchdog-tail machinery for
    batch-ejected hang candidates — dense bit-parallel advance past
    trace end, per-lane cycle-proof hang classification and
    lane→scalar state transplant (default true, [RICV_TAIL=0] to
    disable — also result-identical).  [gate] selects the gate-level
    elaboration of
    the IU datapath ({!Leon3.Core.params.gate_level}; default false,
    set [RICV_GATE=1] to opt in — verdicts at the observation
    boundary are identical, but the injection-site population grows
    by an order of magnitude, so sampled campaigns draw from a
    different pool).  [obs]
    is the telemetry collector every campaign reports into; the
    default is a fresh in-memory aggregator (pass one built with a
    sink to stream JSONL trace events). *)

val samples : t -> int

val trim : t -> bool

val static : t -> bool

val event : t -> bool

val batch : t -> bool

val tail : t -> bool

val gate : t -> bool

val obs : t -> Obs.t
(** The context's collector: per-phase span totals, injection/outcome
    counters and latency histograms accumulated across campaigns. *)

val trim_stats : t -> trim_stats

val system : t -> Leon3.System.t

val core : t -> Leon3.Core.t

val clock_mhz : int
(** Nominal Leon3 clock used to convert cycles to microseconds (50). *)

val us_of_cycles : int -> float

val campaign :
  t ->
  key:string ->
  ?models:Rtl.Circuit.fault_model list ->
  Sparc.Asm.program ->
  Injection.target ->
  (Rtl.Circuit.fault_model * Campaign.summary) list
(** Memoised campaign run.  [key] must uniquely identify the workload
    variant (name, iterations, dataset); results are cached per
    (key, target, models). *)

val iss_campaign :
  t ->
  key:string ->
  Sparc.Asm.program ->
  (Iss_campaign.model * Campaign.summary) list
(** Memoised ISS-level campaign ({!Iss_campaign.run}) with the
    context's sample size (per ISS model) and seed. *)

val golden : t -> key:string -> Sparc.Asm.program -> Campaign.golden
(** Memoised fault-free RTL run. *)
