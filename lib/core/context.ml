module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection
module Iss_campaign = Fault_injection.Iss_campaign

type trim_stats = {
  injections : int;
  skipped : int;
  early_exits : int;
  pruned : int;
  collapsed : int;
}

type t = {
  sys : Leon3.System.t;
  samples_ : int;
  seed : int;
  trim_ : bool;
  static_ : bool;
  event_ : bool;
  batch_ : bool;
  tail_ : bool;
  gate_ : bool;
  obs_ : Obs.t;
  campaigns :
    (string * string * string, (Rtl.Circuit.fault_model * Campaign.summary) list)
    Hashtbl.t;
  goldens : (string, Campaign.golden) Hashtbl.t;
  iss_campaigns :
    (string, (Iss_campaign.model * Campaign.summary) list) Hashtbl.t;
}

let default_samples () =
  match Sys.getenv_opt "RICV_SAMPLES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | Some _ | None -> 250)
  | None -> 250

let default_trim () =
  match Sys.getenv_opt "RICV_TRIM" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let default_static () =
  match Sys.getenv_opt "RICV_STATIC" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let default_event () =
  match Sys.getenv_opt "RICV_EVENT" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let default_batch () =
  match Sys.getenv_opt "RICV_BATCH" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let default_tail () =
  match Sys.getenv_opt "RICV_TAIL" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let default_gate () =
  match Sys.getenv_opt "RICV_GATE" with
  | Some ("0" | "false" | "no" | "off") | None -> false
  | Some _ -> true

let create ?samples ?(seed = 7) ?trim ?static ?event ?batch ?tail ?gate ?obs () =
  let samples_ = match samples with Some n -> n | None -> default_samples () in
  let trim_ = match trim with Some b -> b | None -> default_trim () in
  let static_ = match static with Some b -> b | None -> default_static () in
  let event_ = match event with Some b -> b | None -> default_event () in
  let batch_ = match batch with Some b -> b | None -> default_batch () in
  let tail_ = match tail with Some b -> b | None -> default_tail () in
  let gate_ = match gate with Some b -> b | None -> default_gate () in
  let params =
    { Leon3.Core.default_params with Leon3.Core.gate_level = gate_ }
  in
  (* The context always aggregates (counters replace the old bespoke
     trim_stats plumbing); pass a sink-equipped collector to also
     stream JSONL trace events. *)
  let obs_ = match obs with Some o -> o | None -> Obs.create () in
  { sys = Leon3.System.create ~params ();
    samples_;
    seed;
    trim_;
    static_;
    event_;
    batch_;
    tail_;
    gate_;
    obs_;
    campaigns = Hashtbl.create 64;
    goldens = Hashtbl.create 64;
    iss_campaigns = Hashtbl.create 64 }

let samples t = t.samples_

let trim t = t.trim_

let static t = t.static_

let event t = t.event_

let batch t = t.batch_

let tail t = t.tail_

let gate t = t.gate_

let obs t = t.obs_

let trim_stats t =
  { injections = Obs.counter t.obs_ "injections";
    skipped = Obs.counter t.obs_ "prefiltered";
    early_exits = Obs.counter t.obs_ "early_exits";
    pruned = Obs.counter t.obs_ "static.pruned";
    collapsed = Obs.counter t.obs_ "static.collapsed" }

let system t = t.sys

let core t = Leon3.System.core t.sys

let clock_mhz = 50

let us_of_cycles cycles = float_of_int cycles /. float_of_int clock_mhz

let target_key = Injection.target_name

let models_key models =
  String.concat "+" (List.map Rtl.Circuit.fault_model_name models)

let campaign t ~key ?(models = Campaign.default_config.Campaign.models) prog target =
  let memo_key = (key, target_key target, models_key models) in
  match Hashtbl.find_opt t.campaigns memo_key with
  | Some r -> r
  | None ->
      let config =
        { Campaign.default_config with
          Campaign.models;
          sample_size = Some t.samples_;
          seed = t.seed;
          trim = t.trim_;
          static = t.static_;
          event = t.event_;
          batch = t.batch_;
          tail = t.tail_ }
      in
      let summaries, _ = Campaign.run ~config ~obs:t.obs_ t.sys prog target in
      Hashtbl.add t.campaigns memo_key summaries;
      summaries

let iss_campaign t ~key prog =
  match Hashtbl.find_opt t.iss_campaigns key with
  | Some r -> r
  | None ->
      let config =
        { Iss_campaign.default_config with
          Iss_campaign.samples_per_model = t.samples_;
          seed = t.seed }
      in
      let summaries, _ = Iss_campaign.run ~config ~obs:t.obs_ prog in
      Hashtbl.add t.iss_campaigns key summaries;
      summaries

let golden t ~key prog =
  match Hashtbl.find_opt t.goldens key with
  | Some g -> g
  | None ->
      let g = Campaign.golden_run ~obs:t.obs_ t.sys prog ~max_cycles:5_000_000 in
      Hashtbl.add t.goldens key g;
      g
