module T = Report.Table
module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection
module Suite = Workloads.Suite
module C = Rtl.Circuit

let prog_of (e : Suite.entry) ~iterations ~dataset =
  e.Suite.build ~iterations ~dataset

let key_of (e : Suite.entry) ~iterations ~dataset =
  Printf.sprintf "%s#i%d#d%d" e.Suite.name iterations dataset

let pf_of model summaries = Campaign.pf_percent (List.assoc model summaries)

(* ---- Table 1 ---- *)

type table1_row = {
  t1_name : string;
  t1_kind : string;
  t1_total : int;
  t1_iu : int;
  t1_memory : int;
  t1_diversity : int;
}

let table1 ?(iterations_factor = 20) () =
  let rows =
    List.map
      (fun e ->
        let iterations = e.Suite.default_iterations * iterations_factor in
        let prog = prog_of e ~iterations ~dataset:0 in
        let info = Diversity.Metric.of_program prog in
        { t1_name = e.Suite.name;
          t1_kind = Suite.kind_name e.Suite.kind;
          t1_total = info.Diversity.Metric.instructions;
          t1_iu = info.Diversity.Metric.iu_instructions;
          t1_memory = info.Diversity.Metric.memory_instructions;
          t1_diversity = info.Diversity.Metric.diversity })
      Suite.table1_set
  in
  let table =
    T.make ~title:"Table 1: benchmarks characterization"
      ~header:[ "benchmark"; "kind"; "total"; "integer unit"; "memory"; "diversity" ]
      ~notes:
        [ "dynamic instruction counts from the ISS functional emulator";
          Printf.sprintf "characterisation runs use %dx the campaign iterations"
            iterations_factor ]
      (List.map
         (fun r ->
           [ r.t1_name; r.t1_kind; string_of_int r.t1_total; string_of_int r.t1_iu;
             string_of_int r.t1_memory; string_of_int r.t1_diversity ])
         rows)
  in
  (rows, table)

(* ---- Figure 3 ---- *)

type fig3_point = { f3_subset : string; f3_member : string; f3_pf : float }

let figure3 ctx =
  let run_subset subset_name build members =
    List.map
      (fun member ->
        let prog = build member in
        let key = Printf.sprintf "excerpt-%s-%s" subset_name member in
        let summaries =
          Context.campaign ctx ~key ~models:[ C.Stuck_at_1 ] prog Injection.Iu
        in
        { f3_subset = subset_name; f3_member = member; f3_pf = pf_of C.Stuck_at_1 summaries })
      members
  in
  let points =
    run_subset "A(8 types)" Workloads.Excerpts.subset_a Workloads.Excerpts.subset_a_members
    @ run_subset "B(11 types)" Workloads.Excerpts.subset_b
        Workloads.Excerpts.subset_b_members
  in
  let table =
    T.make ~title:"Figure 3: input-data variation on benchmark excerpts (SA1 @ IU)"
      ~header:[ "subset"; "excerpt"; "% propagated faults" ]
      ~notes:
        [ "identical code within a subset; only the input dataset differs";
          "paper: spread within a subset stays within a few percentage points" ]
      (List.map (fun p -> [ p.f3_subset; p.f3_member; T.cell_pct p.f3_pf ]) points)
  in
  (points, table)

(* ---- Figure 4 ---- *)

type fig4_row = {
  f4_iterations : int;
  f4_pf : float;
  f4_max_latency_cycles : int;
  f4_max_latency_us : float;
}

let figure4 ctx =
  let e = Suite.find "rspeed" in
  let rows =
    List.map
      (fun iterations ->
        let prog = prog_of e ~iterations ~dataset:0 in
        let key = key_of e ~iterations ~dataset:0 in
        let summaries =
          Context.campaign ctx ~key ~models:[ C.Stuck_at_1 ] prog Injection.Iu
        in
        let s = List.assoc C.Stuck_at_1 summaries in
        { f4_iterations = iterations;
          f4_pf = Campaign.pf_percent s;
          f4_max_latency_cycles = s.Campaign.max_latency;
          f4_max_latency_us = Context.us_of_cycles s.Campaign.max_latency })
      [ 2; 4; 10 ]
  in
  let table =
    T.make ~title:"Figure 4: rspeed with 2/4/10 iterations (SA1 @ IU)"
      ~header:[ "run"; "% propagated faults"; "max latency (cycles)"; "max latency (us)" ]
      ~notes:
        [ "paper: Pf constant across iterations; max detection latency grows";
          Printf.sprintf "microseconds at the nominal %d MHz Leon3 clock" Context.clock_mhz ]
      (List.map
         (fun r ->
           [ Printf.sprintf "rspeed%d" r.f4_iterations; T.cell_pct r.f4_pf;
             string_of_int r.f4_max_latency_cycles; T.cell_float r.f4_max_latency_us ])
         rows)
  in
  (rows, table)

(* ---- Figures 5 and 6 ---- *)

type fig56_row = { f5_name : string; f5_sa1 : float; f5_sa0 : float; f5_open : float }

let figure56 ctx target =
  List.map
    (fun e ->
      let iterations = e.Suite.default_iterations in
      let prog = prog_of e ~iterations ~dataset:0 in
      let key = key_of e ~iterations ~dataset:0 in
      let summaries = Context.campaign ctx ~key prog target in
      { f5_name = e.Suite.name;
        f5_sa1 = pf_of C.Stuck_at_1 summaries;
        f5_sa0 = pf_of C.Stuck_at_0 summaries;
        f5_open = pf_of C.Open_line summaries })
    Suite.table1_set

let fig56_table ~title rows =
  T.make ~title ~header:[ "benchmark"; "stuck-at-1"; "stuck-at-0"; "open line" ]
    ~notes:
      [ "automotive benchmarks cluster; synthetics (membench/intbench) sit lower" ]
    (List.map
       (fun r ->
         [ r.f5_name; T.cell_pct r.f5_sa1; T.cell_pct r.f5_sa0; T.cell_pct r.f5_open ])
       rows)

let figure5 ctx =
  let rows = figure56 ctx Injection.Iu in
  (rows, fig56_table ~title:"Figure 5: fault injection at IU nodes" rows)

let figure6 ctx =
  let rows = figure56 ctx Injection.Cmem in
  (rows, fig56_table ~title:"Figure 6: fault injection at CMEM nodes" rows)

(* ---- Figure 7 ---- *)

type fig7_result = {
  f7_points : (string * int * float) list;
  f7_fit : Stats.Regression.fit;
}

let figure7 ctx =
  let workload_points =
    List.map
      (fun e ->
        let iterations = e.Suite.default_iterations in
        let prog = prog_of e ~iterations ~dataset:0 in
        let key = key_of e ~iterations ~dataset:0 in
        let info = Diversity.Metric.of_program prog in
        let summaries =
          Context.campaign ctx ~key ~models:[ C.Stuck_at_1 ] prog Injection.Iu
        in
        (e.Suite.name, info.Diversity.Metric.diversity, pf_of C.Stuck_at_1 summaries))
      Suite.all
  in
  (* Excerpt subsets contribute one point each, folding in the Pf of
     all three datasets as the paper does. *)
  let excerpt_point name build members =
    let pfs =
      List.map
        (fun member ->
          let prog = build member in
          let key = Printf.sprintf "excerpt-%s-%s" name member in
          let summaries =
            Context.campaign ctx ~key ~models:[ C.Stuck_at_1 ] prog Injection.Iu
          in
          pf_of C.Stuck_at_1 summaries)
        members
    in
    let diversity =
      (Diversity.Metric.of_program (build (List.hd members))).Diversity.Metric.diversity
    in
    let mean = List.fold_left ( +. ) 0. pfs /. float_of_int (List.length pfs) in
    (name, diversity, mean)
  in
  let points =
    workload_points
    @ [ excerpt_point "excerpt-A" Workloads.Excerpts.subset_a
          Workloads.Excerpts.subset_a_members;
        excerpt_point "excerpt-B" Workloads.Excerpts.subset_b
          Workloads.Excerpts.subset_b_members ]
  in
  let fit =
    Stats.Regression.log_fit
      (List.map (fun (_, d, pf) -> (float_of_int d, pf)) points)
  in
  let table =
    T.make ~title:"Figure 7: propagated faults vs instruction diversity (SA1 @ IU)"
      ~header:[ "workload"; "diversity"; "% propagated faults" ]
      ~notes:
        [ Printf.sprintf "log fit: Pf%% = %.3f * ln(D) %+.3f, R^2 = %.4f"
            fit.Stats.Regression.slope fit.Stats.Regression.intercept
            fit.Stats.Regression.r_squared;
          "paper: Pf = 8.38*ln(x) - 1.91 (in %), R^2 = 0.9246" ]
      (List.map
         (fun (name, d, pf) -> [ name; string_of_int d; T.cell_pct pf ])
         points)
  in
  ({ f7_points = points; f7_fit = fit }, table)

(* ---- Correlate: ISS-predicted vs RTL-measured Pf (extended Fig. 7) ---- *)

type correlate_row = {
  co_name : string;
  co_diversity : int;
  co_iss : Stats.Binomial.interval;  (** ISS-measured Pf, all models pooled *)
  co_rtl : Stats.Binomial.interval;  (** RTL-measured Pf, SA1 @ IU *)
  co_pred : Stats.Binomial.interval;  (** LOWO prediction from the ISS fit *)
  co_fit_break : bool;
}

type correlate_result = {
  co_rows : correlate_row list;
  co_iss_analysis : Diversity.Correlate.analysis;
      (** RTL Pf against the ISS-measured Pf (linear) *)
  co_div_analysis : Diversity.Correlate.analysis;
      (** RTL Pf against ln(diversity) — the hardened figure-7 fit *)
}

let correlate ctx =
  let points =
    List.map
      (fun e ->
        let iterations = e.Suite.default_iterations in
        let prog = prog_of e ~iterations ~dataset:0 in
        let key = key_of e ~iterations ~dataset:0 in
        let info = Diversity.Metric.of_program prog in
        let rtl =
          List.assoc C.Stuck_at_1
            (Context.campaign ctx ~key ~models:[ C.Stuck_at_1 ] prog Injection.Iu)
        in
        let iss = Context.iss_campaign ctx ~key prog in
        let iss_k =
          List.fold_left (fun a (_, s) -> a + s.Campaign.failures) 0 iss
        in
        let iss_n =
          List.fold_left (fun a (_, s) -> a + s.Campaign.injections) 0 iss
        in
        (e.Suite.name, info.Diversity.Metric.diversity, iss_k, iss_n, rtl))
      Suite.all
  in
  let rtl_sample ~x (name, _, _, _, (rtl : Campaign.summary)) =
    { Diversity.Correlate.label = name;
      x;
      k = rtl.Campaign.failures;
      n = rtl.Campaign.injections }
  in
  let iss_analysis =
    Diversity.Correlate.analyze
      (List.map
         (fun ((_, _, iss_k, iss_n, _) as p) ->
           rtl_sample ~x:(float_of_int iss_k /. float_of_int iss_n) p)
         points)
  in
  let div_analysis =
    Diversity.Correlate.analyze ~log:true
      (List.map
         (fun ((_, d, _, _, _) as p) -> rtl_sample ~x:(float_of_int d) p)
         points)
  in
  let iss_ci (_, _, iss_k, iss_n, _) = Stats.Binomial.wilson ~k:iss_k ~n:iss_n () in
  let rows =
    List.map2
      (fun ((name, d, _, _, _) as p) (row : Diversity.Correlate.row) ->
        { co_name = name;
          co_diversity = d;
          co_iss = iss_ci p;
          co_rtl = row.Diversity.Correlate.measured;
          co_pred = row.Diversity.Correlate.predicted;
          co_fit_break = row.Diversity.Correlate.fit_break })
      points iss_analysis.Diversity.Correlate.rows
  in
  let pct (i : Stats.Binomial.interval) =
    T.cell_ci ~lower:(100. *. i.Stats.Binomial.lower)
      ~upper:(100. *. i.Stats.Binomial.upper)
      (100. *. i.Stats.Binomial.p_hat)
  in
  let broken_note (a : Diversity.Correlate.analysis) =
    match a.Diversity.Correlate.broken with
    | [] -> "fit-break: none (every measured CI overlaps its LOWO prediction CI)"
    | names -> "fit-break: " ^ String.concat ", " names
  in
  let fit_note what (a : Diversity.Correlate.analysis) =
    Printf.sprintf
      "%s: slope %.3f, intercept %.3f, in-sample R^2 %.4f; LOWO R^2 %.4f, \
       held-out RMSE %.4f"
      what a.Diversity.Correlate.fit.Stats.Regression.slope
      a.Diversity.Correlate.fit.Stats.Regression.intercept
      a.Diversity.Correlate.fit.Stats.Regression.r_squared
      a.Diversity.Correlate.loo_r_squared a.Diversity.Correlate.rmse
  in
  let iss_table =
    T.make
      ~title:
        "Correlate: ISS-predicted vs RTL-measured Pf per workload (SA1 @ IU, \
         95% Wilson CIs)"
      ~header:
        [ "workload"; "D"; "ISS Pf (reg+mem+op)"; "RTL Pf (measured)";
          "LOWO prediction"; "fit-break" ]
      ~notes:
        [ fit_note "RTL Pf ~ ISS Pf (linear)" iss_analysis;
          broken_note iss_analysis;
          "ISS Pf pools the reg-flip/mem-flip/op-flip campaigns; predictions \
           are leave-one-workload-out, Wilson-banded at the RTL sample size" ]
      (List.map
         (fun r ->
           [ r.co_name; string_of_int r.co_diversity; pct r.co_iss; pct r.co_rtl;
             pct r.co_pred; (if r.co_fit_break then "BREAK" else "ok") ])
         rows)
  in
  let div_table =
    T.make
      ~title:"Correlate: hardened figure-7 ln(D) fit (LOWO cross-validation)"
      ~header:
        [ "workload"; "D"; "RTL Pf (measured)"; "LOWO ln-fit prediction";
          "fit-break" ]
      ~notes:
        [ fit_note "RTL Pf ~ ln(D)" div_analysis;
          broken_note div_analysis;
          "paper: Pf = 8.38*ln(x) - 1.91 (in %), in-sample R^2 = 0.9246" ]
      (List.map2
         (fun (name, d, _, _, _) (row : Diversity.Correlate.row) ->
           [ name; string_of_int d;
             pct row.Diversity.Correlate.measured;
             pct row.Diversity.Correlate.predicted;
             (if row.Diversity.Correlate.fit_break then "BREAK" else "ok") ])
         points div_analysis.Diversity.Correlate.rows)
  in
  ({ co_rows = rows; co_iss_analysis = iss_analysis; co_div_analysis = div_analysis },
   [ iss_table; div_table ])

(* ---- Simulation time ---- *)

type sim_time_result = {
  st_iss_ips : float;
  st_rtl_ips : float;
  st_speedup : float;
  st_paper_rtl_hours : float;
  st_extrapolated_iss_hours : float;
}

let sim_time ?(repeats = 3) () =
  let e = Suite.find "ttsprk" in
  let prog = prog_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
  let time f =
    let t0 = Unix.gettimeofday () in
    let units = ref 0 in
    for _ = 1 to repeats do
      units := !units + f ()
    done;
    (float_of_int !units, Unix.gettimeofday () -. t0)
  in
  let iss_instrs, iss_dt =
    time (fun () ->
        let r = Iss.Emulator.execute prog in
        r.Iss.Emulator.instructions)
  in
  let sys = Leon3.System.create () in
  let rtl_instrs, rtl_dt =
    time (fun () ->
        Leon3.System.load sys prog;
        (match Leon3.System.run sys ~max_cycles:5_000_000 with
        | Leon3.System.Exited _ -> ()
        | Leon3.System.Trapped _ | Leon3.System.Cycle_limit | Leon3.System.Aborted ->
            failwith "sim_time: RTL run did not exit");
        Leon3.System.instructions sys)
  in
  let iss_ips = iss_instrs /. iss_dt in
  let rtl_ips = rtl_instrs /. rtl_dt in
  let speedup = iss_ips /. rtl_ips in
  let paper_hours = 25_478. in
  let result =
    { st_iss_ips = iss_ips;
      st_rtl_ips = rtl_ips;
      st_speedup = speedup;
      st_paper_rtl_hours = paper_hours;
      st_extrapolated_iss_hours = paper_hours /. speedup }
  in
  let table =
    T.make ~title:"Simulation time: ISS vs RTL"
      ~header:[ "engine"; "simulated instr/s"; "relative" ]
      ~notes:
        [ Printf.sprintf
            "paper: 25,478 h of RTL campaigns vs <300 h on an ISS (~85x); \
             extrapolating our ratio, the same RTL campaign costs %.0f ISS-hours"
            result.st_extrapolated_iss_hours ]
      [ [ "ISS (functional)"; Printf.sprintf "%.0f" iss_ips; T.cell_float speedup ];
        [ "RTL (netlist)"; Printf.sprintf "%.0f" rtl_ips; "1.00" ] ]
  in
  (result, table)

(* ---- Ablations (DESIGN.md section 5) ---- *)

let ablation_observation ctx =
  let e = Suite.find "ttsprk" in
  let prog = prog_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
  let run ~compare_reads =
    let config =
      { Campaign.default_config with
        Campaign.models = [ C.Stuck_at_1 ];
        sample_size = Some (Context.samples ctx);
        compare_reads }
    in
    let summaries, _ = Campaign.run ~config (Context.system ctx) prog Injection.Iu in
    Campaign.pf_percent (List.assoc C.Stuck_at_1 summaries)
  in
  let writes_only = run ~compare_reads:false in
  let with_reads = run ~compare_reads:true in
  T.make ~title:"Ablation: failure-observation point (ttsprk, SA1 @ IU)"
    ~header:[ "observation"; "% propagated faults" ]
    ~notes:
      [ "the paper observes writes only (light-lockstep); comparing reads too \
         makes address-only corruptions count as failures" ]
    [ [ "off-core writes (paper)"; T.cell_pct writes_only ];
      [ "writes + reads"; T.cell_pct with_reads ] ]

let ablation_sampling ctx =
  let e = Suite.find "ttsprk" in
  let prog = prog_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
  let pf_at n seed =
    let config =
      { Campaign.default_config with
        Campaign.models = [ C.Stuck_at_1 ];
        sample_size = Some n;
        seed }
    in
    let summaries, _ = Campaign.run ~config (Context.system ctx) prog Injection.Iu in
    Campaign.pf_percent (List.assoc C.Stuck_at_1 summaries)
  in
  let sizes = [ 50; 100; 200; 400 ] in
  let rows =
    List.map
      (fun n ->
        let pfs = List.map (pf_at n) [ 11; 23; 37 ] in
        let s = Stats.Summary.of_list pfs in
        [ string_of_int n; T.cell_pct s.Stats.Summary.mean;
          T.cell_float s.Stats.Summary.stddev ])
      sizes
  in
  T.make ~title:"Ablation: injection-site sampling (ttsprk, SA1 @ IU)"
    ~header:[ "sites sampled"; "mean Pf over 3 seeds"; "std dev (pp)" ]
    ~notes:[ "stratified-uniform sampling converges well before exhaustion" ]
    rows

let ablation_predictor ctx =
  let f7, _ = figure7 ctx in
  let predictor = Diversity.Predictor.of_core (Context.core ctx) in
  (* Excerpt subsets are left out: the predictor needs per-unit usage
     from a suite entry, and the suite points already span the range. *)
  let infos =
    List.filter_map
      (fun (name, _, pf) ->
        match List.find_opt (fun e -> e.Suite.name = name) Suite.all with
        | Some e ->
            let info =
              Diversity.Metric.of_program
                (prog_of e ~iterations:e.Suite.default_iterations ~dataset:0)
            in
            Some (info, pf)
        | None -> None)
      f7.f7_points
  in
  let score_points =
    List.map
      (fun (info, pf) -> (Diversity.Predictor.utilisation_score predictor info, pf))
      infos
  in
  let eq1_fit = Stats.Regression.linear score_points in
  (* AVF (Mukherjee et al.) needs the full def-use stream; include it
     as the related-work baseline predictor. *)
  let avf_points =
    List.filter_map
      (fun (name, _, pf) ->
        match List.find_opt (fun e -> e.Suite.name = name) Suite.all with
        | Some e ->
            let r =
              Diversity.Avf.of_program
                (prog_of e ~iterations:e.Suite.default_iterations ~dataset:0)
            in
            Some (r.Diversity.Avf.avf, pf)
        | None -> None)
      f7.f7_points
  in
  let avf_fit = Stats.Regression.linear avf_points in
  T.make ~title:"Ablation: ISS-side predictors of RTL Pf"
    ~header:[ "predictor"; "R^2" ]
    ~notes:
      [ "Eq.(1): Pf ~ sum_m alpha_m * (D_m / capacity_m), alpha from RTL node counts";
        "AVF needs the full def-use stream; diversity needs only the opcode set" ]
    [ [ "ln(diversity) (Fig. 7)";
        T.cell_float f7.f7_fit.Stats.Regression.r_squared ];
      [ "Eq.(1) utilisation score"; T.cell_float eq1_fit.Stats.Regression.r_squared ];
      [ "register-file AVF (related work)";
        T.cell_float avf_fit.Stats.Regression.r_squared ] ]

(* Per-unit failure probabilities: the decomposition behind Eq. (1).
   For one workload, inject into each functional unit's own nodes and
   put the measured Pf_m next to the unit's area weight alpha_m and
   per-unit diversity D_m. *)
type unit_row = {
  u_unit : Sparc.Units.t;
  u_alpha : float;
  u_capacity : int;
  u_rich_diversity : int;  (** D_m of the rich workload (ttsprk) *)
  u_rich_pf : float;
  u_narrow_diversity : int;  (** D_m of the narrow workload (membench) *)
  u_narrow_pf : float;
}

let units ctx =
  let measure name =
    let e = Suite.find name in
    let prog = prog_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
    let info = Diversity.Metric.of_program prog in
    let sample = min 100 (Context.samples ctx) in
    let pf u =
      let config =
        { Campaign.default_config with
          Campaign.models = [ C.Stuck_at_1 ];
          sample_size = Some sample }
      in
      let summaries, _ =
        Campaign.run ~config (Context.system ctx) prog (Injection.Unit_of u)
      in
      Campaign.pf_percent (List.assoc C.Stuck_at_1 summaries)
    in
    (info, pf)
  in
  let rich_info, rich_pf = measure "ttsprk" in
  let narrow_info, narrow_pf = measure "membench" in
  let predictor = Diversity.Predictor.of_core (Context.core ctx) in
  let alphas = Diversity.Predictor.alpha predictor in
  let d_of (info : Diversity.Metric.info) u =
    Option.value ~default:0 (List.assoc_opt u info.Diversity.Metric.per_unit)
  in
  let rows =
    List.filter_map
      (fun u ->
        if Injection.sites (Context.core ctx) (Injection.Unit_of u) = [] then None
        else
          Some
            { u_unit = u;
              u_alpha = List.assoc u alphas;
              u_capacity = Diversity.Metric.unit_capacity u;
              u_rich_diversity = d_of rich_info u;
              u_rich_pf = rich_pf u;
              u_narrow_diversity = d_of narrow_info u;
              u_narrow_pf = narrow_pf u })
      Sparc.Units.all
  in
  let table =
    T.make
      ~title:"Per-unit decomposition (SA1): the pieces of Eq. (1), rich vs narrow workload"
      ~header:
        [ "unit"; "alpha"; "cap"; "ttsprk D_m"; "ttsprk Pf_m"; "membench D_m";
          "membench Pf_m" ]
      ~notes:
        [ "alpha_m from injectable-bit counts of the elaborated netlist";
          "unit node pools exclude memory cells here (signals only)";
          "units a workload never exercises collapse towards silent (membench \
           column: shifter/mul/div/branch-rich rows)" ]
      (List.map
         (fun r ->
           [ Sparc.Units.name r.u_unit;
             Printf.sprintf "%.3f" r.u_alpha;
             string_of_int r.u_capacity;
             string_of_int r.u_rich_diversity;
             T.cell_pct r.u_rich_pf;
             string_of_int r.u_narrow_diversity;
             T.cell_pct r.u_narrow_pf ])
         rows)
  in
  (rows, table)

let ablation_transient ctx =
  let e = Suite.find "ttsprk" in
  let prog = prog_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
  let key = key_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
  let permanent =
    pf_of C.Stuck_at_1
      (Context.campaign ctx ~key ~models:[ C.Stuck_at_1 ] prog Injection.Iu)
  in
  let transient =
    Campaign.pf_percent
      (Campaign.run_transient ~sample:(Context.samples ctx) (Context.system ctx) prog
         Injection.Iu)
  in
  T.make ~title:"Extension: transient faults (ttsprk @ IU) — the paper's future work"
    ~header:[ "fault class"; "% propagated faults" ]
    ~notes:
      [ "single-event upsets: one-cycle bit inversions at random instants";
        "transients propagate far less often, which is why the paper argues \
         permanent models are the tractable choice for SBT-style campaigns" ]
    [ [ "permanent stuck-at-1"; T.cell_pct permanent ];
      [ "transient bit-flip (1 cycle)"; T.cell_pct transient ] ]

let ablation_gate_level ctx =
  (* The paper's opening contrast: gate-level injection is the more
     detailed and more expensive granularity RTL is traded against.
     Re-elaborate the machine with the EX adder as a gate network and
     compare adder-targeted campaigns at both granularities. *)
  let e = Suite.find "ttsprk" in
  let prog = prog_of e ~iterations:e.Suite.default_iterations ~dataset:0 in
  let sample = min 150 (Context.samples ctx) in
  let measure sys target_prefix =
    let config =
      { Campaign.default_config with
        Campaign.models = [ C.Stuck_at_1 ];
        sample_size = Some sample }
    in
    let summaries, _ = Campaign.run ~config sys prog (Injection.Prefix target_prefix) in
    (* The simulation-cost axis: fault-free wall time per run (faulty
       runs abort early on mismatch, which would hide the gate tax). *)
    let t0 = Unix.gettimeofday () in
    let runs = 5 in
    for _ = 1 to runs do
      ignore (Campaign.golden_run sys prog ~max_cycles:5_000_000)
    done;
    let per_run = (Unix.gettimeofday () -. t0) /. float_of_int runs in
    let core = Leon3.System.core sys in
    let pool = List.length (Injection.sites core (Injection.Prefix target_prefix)) in
    (Campaign.pf_percent (List.assoc C.Stuck_at_1 summaries), pool, per_run)
  in
  let rtl_pf, rtl_pool, rtl_dt = measure (Context.system ctx) "iu.ex.adder." in
  let gate_sys =
    Leon3.System.create
      ~params:{ Leon3.Core.default_params with Leon3.Core.gate_level_adder = true }
      ()
  in
  let gate_pf, gate_pool, gate_dt = measure gate_sys "iu.ex.adder." in
  T.make ~title:"Extension: RTL vs gate-level adder injection (ttsprk, SA1)"
    ~header:[ "granularity"; "adder sites"; "Pf"; "sim time / run" ]
    ~notes:
      [ "the gate netlist multiplies the injection surface and the per-cycle \
         simulation cost, for a Pf in the same band — the accuracy/cost \
         trade-off of the paper's section 2" ]
    [ [ "RTL (behavioural nodes)"; string_of_int rtl_pool; T.cell_pct rtl_pf;
        Printf.sprintf "%.0f ms" (1000. *. rtl_dt) ];
      [ "gate-level (ripple-carry)"; string_of_int gate_pool; T.cell_pct gate_pf;
        Printf.sprintf "%.0f ms" (1000. *. gate_dt) ] ]

let all_ids =
  [ "table1"; "figure3"; "figure4"; "figure5"; "figure6"; "figure7"; "correlate";
    "units"; "simtime"; "ablation" ]

let run ctx = function
  | "table1" ->
      let _, t = table1 () in
      [ t ]
  | "figure3" ->
      let _, t = figure3 ctx in
      [ t ]
  | "figure4" ->
      let _, t = figure4 ctx in
      [ t ]
  | "figure5" ->
      let _, t = figure5 ctx in
      [ t ]
  | "figure6" ->
      let _, t = figure6 ctx in
      [ t ]
  | "figure7" ->
      let _, t = figure7 ctx in
      [ t ]
  | "correlate" ->
      let _, ts = correlate ctx in
      ts
  | "units" ->
      let _, t = units ctx in
      [ t ]
  | "simtime" ->
      let _, t = sim_time () in
      [ t ]
  | "ablation" ->
      [ ablation_observation ctx; ablation_sampling ctx; ablation_predictor ctx;
        ablation_transient ctx; ablation_gate_level ctx ]
  | id -> invalid_arg ("Experiments.run: unknown experiment " ^ id)
