(** Reproduction of every table and figure of the paper's evaluation
    (DESIGN.md carries the per-experiment index).  Each function
    returns the measured data plus a printable table; absolute numbers
    differ from the paper (different RTL substrate, scaled-down
    workloads) but the shapes are the claims under test:

    - {!table1}: benchmark characterisation (counts and diversity);
    - {!figure3}: input-data variation on fixed-code excerpts is small;
    - {!figure4}: Pf flat across iteration counts, latency grows;
    - {!figure5}/{!figure6}: Pf per fault model at IU/CMEM nodes —
      automotive benchmarks cluster, synthetics sit lower;
    - {!figure7}: Pf correlates with diversity, log fit with high R²;
    - {!sim_time}: the ISS-vs-RTL simulation-cost gap;
    - the [ablation_*] functions cover DESIGN.md §5. *)

module T = Report.Table
module Campaign = Fault_injection.Campaign

type table1_row = {
  t1_name : string;
  t1_kind : string;
  t1_total : int;
  t1_iu : int;
  t1_memory : int;
  t1_diversity : int;
}

val table1 : ?iterations_factor:int -> unit -> table1_row list * T.t
(** ISS characterisation of the six Table-1 benchmarks, at
    [iterations_factor] (default 20) times the campaign iteration
    count, as the paper characterises full runs. *)

type fig3_point = { f3_subset : string; f3_member : string; f3_pf : float }

val figure3 : Context.t -> fig3_point list * T.t
(** Stuck-at-1 @ IU on the two excerpt subsets x three datasets. *)

type fig4_row = {
  f4_iterations : int;
  f4_pf : float;
  f4_max_latency_cycles : int;
  f4_max_latency_us : float;
}

val figure4 : Context.t -> fig4_row list * T.t
(** rspeed with 2, 4 and 10 iterations, stuck-at-1 @ IU. *)

type fig56_row = { f5_name : string; f5_sa1 : float; f5_sa0 : float; f5_open : float }

val figure5 : Context.t -> fig56_row list * T.t
(** All six main benchmarks, three fault models, IU nodes. *)

val figure6 : Context.t -> fig56_row list * T.t
(** Same at CMEM nodes. *)

type fig7_result = {
  f7_points : (string * int * float) list;  (** workload, diversity, Pf% *)
  f7_fit : Stats.Regression.fit;  (** Pf% = slope*ln(D) + intercept *)
}

val figure7 : Context.t -> fig7_result * T.t
(** Diversity vs Pf (stuck-at-1 @ IU) over the ten workloads plus the
    two excerpt subsets, with the paper's logarithmic fit and R². *)

type correlate_row = {
  co_name : string;
  co_diversity : int;
  co_iss : Stats.Binomial.interval;
      (** ISS-measured Pf, reg/mem/op campaigns pooled *)
  co_rtl : Stats.Binomial.interval;  (** RTL-measured Pf, SA1 @ IU *)
  co_pred : Stats.Binomial.interval;
      (** leave-one-workload-out prediction from the ISS fit *)
  co_fit_break : bool;  (** measured and predicted CIs are disjoint *)
}

type correlate_result = {
  co_rows : correlate_row list;
  co_iss_analysis : Diversity.Correlate.analysis;
      (** RTL Pf against the ISS-measured Pf (linear) *)
  co_div_analysis : Diversity.Correlate.analysis;
      (** RTL Pf against ln(diversity) — the hardened figure-7 fit *)
}

val correlate : Context.t -> correlate_result * T.t list
(** End-to-end test of the paper's correlation claim: per workload, the
    cheap ISS campaign's pooled Pf predicts the RTL campaign's measured
    Pf; both carry Wilson CIs, predictions are leave-one-workload-out,
    and CI-disjoint residuals raise an explicit fit-break flag.  Two
    tables: the ISS↔RTL correlation and the hardened ln(D) fit. *)

type unit_row = {
  u_unit : Sparc.Units.t;
  u_alpha : float;  (** area weight from the netlist *)
  u_capacity : int;  (** instruction types that can exercise the unit *)
  u_rich_diversity : int;  (** D_m of the rich workload (ttsprk) *)
  u_rich_pf : float;  (** measured Pf_m, stuck-at-1, unit signals only *)
  u_narrow_diversity : int;  (** D_m of the narrow workload (membench) *)
  u_narrow_pf : float;
}

val units : Context.t -> unit_row list * T.t
(** Per-functional-unit decomposition of Pf, contrasting a rich and a
    narrow workload — the measured counterpart of every term in
    Eq. (1). *)

type sim_time_result = {
  st_iss_ips : float;  (** simulated instructions per wall second, ISS *)
  st_rtl_ips : float;
  st_speedup : float;
  st_paper_rtl_hours : float;
  st_extrapolated_iss_hours : float;
}

val sim_time : ?repeats:int -> unit -> sim_time_result * T.t
(** Measure both engines on the same workload and extrapolate the
    paper's 25,478-hour RTL campaign to ISS cost. *)

val ablation_observation : Context.t -> T.t
(** Failure-observation point: writes-only (the paper's light-lockstep)
    vs writes+reads. *)

val ablation_sampling : Context.t -> T.t
(** Pf estimate as a function of the injection sample size. *)

val ablation_predictor : Context.t -> T.t
(** Eq. (1) area-weighted utilisation predictor vs the plain ln(D)
    fit on the Fig. 7 data. *)

val ablation_transient : Context.t -> T.t
(** The paper's future work: single-event-upset (transient bit-flip)
    propagation vs the permanent stuck-at-1 baseline. *)

val ablation_gate_level : Context.t -> T.t
(** RTL vs gate-level injection granularity on the EX adder: site
    count, Pf and campaign cost at both abstraction levels. *)

val all_ids : string list
(** Experiment selectors understood by {!run}: ["table1"; "figure3";
    ...; "simtime"; "ablation"]. *)

val run : Context.t -> string -> T.t list
(** Run one experiment by id and return its tables.  Raises
    [Invalid_argument] on an unknown id. *)
