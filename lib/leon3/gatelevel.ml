(* Gate-level lowering of the Leon3 IU datapath.

   Each function here rebuilds one behavioural comb node (or a group
   of them) as a NAND/NOR/NOT/MUX network over 1-bit wires — the
   substrate the paper's elaborated-VHDL injection population lives
   at.  The load-bearing invariant is *name preservation*: every
   behavioural node keeps its name, width and value function in the
   gate-level elaboration — rewired as a packer over the gate bits or
   as a buffer of a gate output — so the gate-level injection pool is
   a superset of the behavioural pool by site name, and a name-matched
   fault injected into either elaboration produces the same observable
   run.  Every lowered function is bit-exact against its behavioural
   evaluator over the full input space, including the behavioural
   quirks (undefined subops fall through exactly as the if-chains
   do). *)

module C = Rtl.Circuit

let sp = Printf.sprintf

(* ---- derived cells (NAND/NOR/NOT compositions) ----
   Each derived cell names its root node [name]; internal nodes get
   [name] plus a suffix, so a behavioural node name can be given to
   the root and survive into the gate-level pool. *)

let and2 c name a b = C.gate_not c name (C.gate_nand c (name ^ "_n") a b)

let or2 c name a b = C.gate_not c name (C.gate_nor c (name ^ "_n") a b)

(* XOR as the classic 4-NAND composition. *)
let xor2 c name a b =
  let nab = C.gate_nand c (name ^ "_g") a b in
  let x1 = C.gate_nand c (name ^ "_a") a nab in
  let x2 = C.gate_nand c (name ^ "_b") b nab in
  C.gate_nand c name x1 x2

(* Balanced binary reduction; the root carries [name]. *)
let tree op c name = function
  | [] -> invalid_arg "Gatelevel.tree: empty"
  | [ x ] -> C.gate_buf c name x
  | xs ->
      let level = ref 0 in
      let rec go = function
        | [ a; b ] -> op c name a b
        | xs ->
            let i = ref 0 in
            let rec pair = function
              | a :: b :: tl ->
                  let nm = sp "%s_t%d_%d" name !level !i in
                  incr i;
                  op c nm a b :: pair tl
              | tl -> tl
            in
            let next = pair xs in
            incr level;
            go next
      in
      go xs

let or_tree c name xs = tree or2 c name xs

let and_tree c name xs = tree and2 c name xs

(* Bit taps and packers: the word <-> wire boundary.  A tap extracts
   one bit of a word-level node; a packer is the behavioural-named
   word rebuilt from its gate bits. *)

let taps c base w s =
  Array.init w (fun i -> C.comb1 c (sp "%s%d" base i) 1 s (fun v -> (v lsr i) land 1))

let pack c name bits =
  C.combn c name (Array.length bits) bits (fun vs ->
      let v = ref 0 in
      for i = Array.length bits - 1 downto 0 do
        v := (!v lsl 1) lor (vs.(i) land 1)
      done;
      !v)

(* Ripple-carry adder over bit arrays: propagate/sum XORs plus the
   majority carry as NAND-NAND two-level logic, extending the naming
   of the PR-ablation adder (p%d / s%d / ng%d / np%d / c%d). *)
let ripple c ?(prefix = "") a b cin =
  let carry = ref cin in
  let sum =
    Array.init 32 (fun i ->
        let p = xor2 c (sp "%sp%d" prefix i) a.(i) b.(i) in
        let s = xor2 c (sp "%ss%d" prefix i) p !carry in
        let ng = C.gate_nand c (sp "%sng%d" prefix i) a.(i) b.(i) in
        let np = C.gate_nand c (sp "%snp%d" prefix i) p !carry in
        carry := C.gate_nand c (sp "%sc%d" prefix i) ng np;
        s)
  in
  (sum, !carry)

(* ---- shared operand fabric ----
   Bit taps of the EX operands and control fields, built once under
   "iu.gates.alu" and shared by every lowered unit. *)

type ops = {
  op1b : C.signal array;  (* ra_op1 bits *)
  op2b : C.signal array;  (* ra_op2 bits *)
  subb : C.signal array;  (* subop_s bits *)
  unitb : C.signal array; (* unit_s bits *)
  iccb : C.signal array;  (* icc bits, [c; v; z; n] LSB first *)
}

let operand_taps c ~ra_op1 ~ra_op2 ~subop_s ~unit_s ~icc =
  { op1b = taps c "op1b" 32 ra_op1;
    op2b = taps c "op2b" 32 ra_op2;
    subb = taps c "subb" 3 subop_s;
    unitb = taps c "unitb" 3 unit_s;
    iccb = taps c "iccb" 4 icc }

(* ---- fetch: pc_mis comparator and the pc+4 incrementer ----
   Called inside the "iu.fe" scope; returns (pc_mis, pc_inc, pc bit
   taps).  The taps are reused by the branch adder and the writeback
   mux. *)

let fetch c ~pc =
  let pcb, pm, inc_bits =
    C.scoped c "gates" (fun () ->
        let pcb = taps c "pcb" 32 pc in
        let pm = or2 c "pcmis" pcb.(0) pcb.(1) in
        (* pc + 4: bits 0..1 pass through, increment chain from bit 2
           (carry-in 1 realised as s2 = NOT pc2, carry2 = pc2). *)
        let bits = Array.make 32 pcb.(0) in
        bits.(1) <- pcb.(1);
        bits.(2) <- C.gate_not c "inc_s2" pcb.(2);
        let carry = ref pcb.(2) in
        for i = 3 to 31 do
          bits.(i) <- xor2 c (sp "inc_s%d" i) pcb.(i) !carry;
          if i < 31 then carry := and2 c (sp "inc_c%d" i) pcb.(i) !carry
        done;
        (pcb, pm, bits))
  in
  let pc_mis = C.gate_buf c "pc_mis" pm in
  let pc_inc = pack c "pc_inc" inc_bits in
  (pc_mis, pc_inc, pcb)

(* ---- decode: a PLA generated from the opcode table ----

   One AND term per valid opcode row — 33 format-3 ALU rows, 8
   format-3 memory rows, 16 branch conditions, SETHI and CALL — each
   probing [Ctl.decode] on a canonical instruction word for its output
   pattern, then one OR plane per ctl bit.  [Encode.decode] reads only
   op / op2f / bit 29 / cond / op3 / i / the asi-zero field, so terms
   over exactly those bits reproduce it over all 2^32 words; format-3
   terms share an [op2_ok = i OR (bits 12:5 = 0)] guard, and the
   use_imm plane gets the (term AND i) products since i is the only
   bit that distinguishes the register and immediate variants of a
   row. *)

type term = {
  t_name : string;
  t_bits : (int * int) list; (* (ir bit, required value) *)
  t_f3 : bool;               (* format 3: guarded by op2_ok *)
  t_ctl : int;               (* Ctl.decode of a canonical i=0 word *)
}

let bits_of v w lo = List.init w (fun k -> (lo + k, (v lsr k) land 1))

let opcode_terms () =
  let f3 pref op op3 =
    let w = (op lsl 30) lor (op3 lsl 19) in
    let ctl = Ctl.decode w in
    if ctl land (1 lsl Ctl.b_valid) = 0 then None
    else
      Some
        { t_name = sp "%s%02x" pref op3;
          t_bits = bits_of op 2 30 @ bits_of op3 6 19;
          t_f3 = true;
          t_ctl = ctl; }
  in
  let row pref op = List.filter_map (fun op3 -> f3 pref op op3) (List.init 64 Fun.id) in
  let alu = row "a" 2 and mem = row "m" 3 in
  let br =
    List.init 16 (fun cond ->
        let w = (cond lsl 25) lor (0b010 lsl 22) in
        { t_name = sp "b%x" cond;
          t_bits = bits_of 0 2 30 @ [ (29, 0) ] @ bits_of cond 4 25 @ bits_of 0b010 3 22;
          t_f3 = false;
          t_ctl = Ctl.decode w; })
  in
  let sethi =
    { t_name = "sethi";
      t_bits = bits_of 0 2 30 @ bits_of 0b100 3 22;
      t_f3 = false;
      t_ctl = Ctl.decode (0b100 lsl 22); }
  in
  let call =
    { t_name = "call";
      t_bits = bits_of 1 2 30;
      t_f3 = false;
      t_ctl = Ctl.decode (1 lsl 30); }
  in
  (alu, mem, br, sethi, call)

(* Called inside the "iu.de" scope; returns the (ctl, imm) packers
   with their behavioural names. *)
let decode c ~ir =
  let ctl_bits, imm_bits =
    C.scoped c "gates" (fun () ->
        let irb = taps c "irb" 32 ir in
        let irn = Array.make 32 None in
        let lit (bit, v) =
          if v = 1 then irb.(bit)
          else
            match irn.(bit) with
            | Some s -> s
            | None ->
                let s = C.gate_not c (sp "irn%d" bit) irb.(bit) in
                irn.(bit) <- Some s;
                s
        in
        let asi_any = or_tree c "asi_any" (List.init 8 (fun k -> irb.(5 + k))) in
        let asi_zero = C.gate_not c "asi_zero" asi_any in
        let op2_ok = or2 c "op2_ok" irb.(13) asi_zero in
        let term_out t =
          let lits = List.map lit t.t_bits in
          let lits = if t.t_f3 then op2_ok :: lits else lits in
          and_tree c (sp "t_%s" t.t_name) lits
        in
        let alu, mem, br, sethi, call = opcode_terms () in
        let outs_of = List.map (fun t -> (t, term_out t)) in
        let alu_o = outs_of alu and mem_o = outs_of mem and br_o = outs_of br in
        let sethi_o = term_out sethi and call_o = term_out call in
        let outs = alu_o @ mem_o @ br_o @ [ (sethi, sethi_o); (call, call_o) ] in
        let alu_any = or_tree c "alu_any" (List.map snd alu_o) in
        let mem_any = or_tree c "mem_any" (List.map snd mem_o) in
        let br_any = or_tree c "br_any" (List.map snd br_o) in
        let f3_any = or2 c "f3_any" alu_any mem_any in
        let sel_simm = and2 c "sel_simm" f3_any irb.(13) in
        let zero = C.const c "dzero" 1 0 in
        (* ctl OR planes *)
        let plane j =
          if j = Ctl.b_valid then
            or_tree c (sp "ctl%d" j) [ f3_any; br_any; sethi_o; call_o ]
          else
            let static =
              List.filter_map
                (fun (t, o) -> if t.t_ctl land (1 lsl j) <> 0 then Some o else None)
                outs
            in
            let extra =
              if j = Ctl.b_use_imm then
                List.filter_map
                  (fun (t, o) ->
                    if t.t_f3 then Some (and2 c (sp "ti_%s" t.t_name) o irb.(13))
                    else None)
                  outs
              else []
            in
            match static @ extra with
            | [] -> zero
            | xs -> or_tree c (sp "ctl%d" j) xs
        in
        let ctl_bits = Array.init Ctl.width plane in
        (* imm OR-of-AND planes, one per format, muxed by the shared
           format selects.  Exactly one select is high on a valid word
           (the terms are mutually exclusive), so OR-of-AND is exact;
           on an invalid word every select is 0 and imm = 0, matching
           the behavioural [Ctl.imm_of]. *)
        let imm_bit i =
          let parts = ref [] in
          let add tag sel src =
            parts := and2 c (sp "im%s%d" tag i) sel src :: !parts
          in
          if i >= 2 then add "c" call_o irb.(i - 2);       (* disp30 << 2 *)
          if i >= 10 then add "h" sethi_o irb.(i - 10);    (* imm22 << 10 *)
          if i >= 2 then add "b" br_any irb.(min (i - 2) 21); (* sext(disp22) << 2 *)
          add "s" sel_simm irb.(min i 12);                 (* sext13 *)
          match !parts with
          | [ x ] -> C.gate_buf c (sp "imm%d" i) x
          | xs -> or_tree c (sp "imm%d" i) xs
        in
        (ctl_bits, Array.init 32 imm_bit))
  in
  (pack c "ctl" ctl_bits, pack c "imm" imm_bits)

(* ---- operand select mux ----
   Called under "iu.gates.operand"; the "op2_mux" packer itself is
   created by the caller inside "iu.ra" to keep the behavioural name.
   Returns (de_imm bit taps, selected-operand bits). *)

let op2_mux c ~use_imm ~de_imm ~rdb =
  let immb = taps c "immb" 32 de_imm in
  let rdbb = taps c "rdbb" 32 rdb in
  let bits =
    Array.init 32 (fun i -> C.gate_mux c (sp "op2m%d" i) ~sel:use_imm immb.(i) rdbb.(i))
  in
  (immb, bits)

(* ---- EX adder: b_eff / cin / ripple sum / flags ----
   Called inside "iu.ex.adder".  The subtract mask is s0 AND NOT s2 —
   exactly the behavioural [s = sub || s = subx] over the 3-bit subop
   space (s = 5 or 7 must not invert, matching the if-chain). *)

(* Every behavioural-named boundary node (the [b_eff]/[cin]/[sum]/...
   packers and buffers) must stay {e in-path}: downstream gates consume
   bit taps of the packer, never the raw gate bits behind it —
   otherwise a fault armed on the behavioural name would be a dead end
   in the gate elaboration and verdict equivalence would break. *)
let adder c ops =
  let sub_mask, cin_g =
    C.scoped c "gates" (fun () ->
        let s0 = ops.subb.(0) and s1 = ops.subb.(1) and s2 = ops.subb.(2) in
        let ns2 = C.gate_not c "ns2" s2 in
        let sub_mask = and2 c "sub_mask" s0 ns2 in
        (* carry-in: sub -> 1, addx -> C, subx -> NOT C, else 0 *)
        let cx = xor2 c "cin_x" s0 ops.iccb.(0) in
        let cm = C.gate_mux c "cin_m" ~sel:s1 cx s0 in
        (sub_mask, and2 c "cin_g" cm ns2))
  in
  let cin = C.gate_buf c "cin" cin_g in
  let beff_bits =
    C.scoped c "gates" (fun () ->
        Array.init 32 (fun i -> xor2 c (sp "be%d" i) ops.op2b.(i) sub_mask))
  in
  let b_eff = pack c "b_eff" beff_bits in
  let beb, sum_bits, carry_g =
    C.scoped c "gates" (fun () ->
        let beb = taps c "beb" 32 b_eff in
        let sum_bits, carry_g = ripple c ops.op1b beb cin in
        (beb, sum_bits, carry_g))
  in
  let sum = pack c "sum" sum_bits in
  let carry = C.gate_buf c "carry" carry_g in
  let sumt, fc_g, fv_g =
    C.scoped c "gates" (fun () ->
        let sumt = taps c "sumt" 32 sum in
        let fc_g = xor2 c "flagc" carry sub_mask in
        let vab = xor2 c "v_ab" ops.op1b.(31) beb.(31) in
        let vnab = C.gate_not c "v_nab" vab in
        let var = xor2 c "v_ar" ops.op1b.(31) sumt.(31) in
        (sumt, fc_g, and2 c "flagv" vnab var))
  in
  let flag_c = C.gate_buf c "flag_c" fc_g in
  let flag_v = C.gate_buf c "flag_v" fv_g in
  (sum, sumt, flag_c, flag_v)

(* ---- EX logic unit ----  Called inside "iu.ex.logic". *)

let logic c ops =
  let bits =
    C.scoped c "gates" (fun () ->
        let s0 = ops.subb.(0) and s1 = ops.subb.(1) and s2 = ops.subb.(2) in
        (* within the s2 = 1 half: xor only for subop exactly 4; 5, 6
           and 7 all fall through to the behavioural else (xnor) *)
        let s01 = or2 c "s01" s0 s1 in
        Array.init 32 (fun i ->
            let a = ops.op1b.(i) and b = ops.op2b.(i) in
            let nb = C.gate_not c (sp "nb%d" i) b in
            let andv = and2 c (sp "and%d" i) a b in
            let andnv = and2 c (sp "andn%d" i) a nb in
            let orv = or2 c (sp "or%d" i) a b in
            let ornv = or2 c (sp "orn%d" i) a nb in
            let xorv = xor2 c (sp "xor%d" i) a b in
            let xnorv = C.gate_not c (sp "xnor%d" i) xorv in
            let lo_and = C.gate_mux c (sp "ml0_%d" i) ~sel:s0 andnv andv in
            let lo_or = C.gate_mux c (sp "ml1_%d" i) ~sel:s0 ornv orv in
            let lo = C.gate_mux c (sp "ml2_%d" i) ~sel:s1 lo_or lo_and in
            let hi = C.gate_mux c (sp "mh%d" i) ~sel:s01 xnorv xorv in
            C.gate_mux c (sp "mo%d" i) ~sel:s2 hi lo))
  in
  let res = pack c "result" bits in
  (res, C.scoped c "gates" (fun () -> taps c "lres" 32 res))

(* ---- EX barrel shifter ----
   Called inside "iu.ex.shift" after the behavioural shcnt slice.  A
   5-stage left barrel with the reverse-in/reverse-out trick for right
   shifts; fill = arith AND a31 (srl fills 0, sra fills the sign, sll
   fills 0 because arith is 0).  Subop decode matches the behavioural
   if-chain: 0 -> sll, 1 -> srl, everything else -> sra. *)

let shift c ops ~shcnt =
  let bits =
    C.scoped c "gates" (fun () ->
        let nb = taps c "n" 5 shcnt in
        let s0 = ops.subb.(0) and s1 = ops.subb.(1) and s2 = ops.subb.(2) in
        let n12 = C.gate_nor c "n12" s1 s2 in
        let ns0 = C.gate_not c "ns0" s0 in
        let left = and2 c "left" ns0 n12 in
        let srl = and2 c "srl" s0 n12 in
        let arith = C.gate_nor c "arith" left srl in
        let right = C.gate_not c "right" left in
        let fill = and2 c "fill" arith ops.op1b.(31) in
        let cur =
          ref
            (Array.init 32 (fun i ->
                 C.gate_mux c (sp "rin%d" i) ~sel:right ops.op1b.(31 - i) ops.op1b.(i)))
        in
        for k = 0 to 4 do
          let shn = 1 lsl k in
          cur :=
            Array.init 32 (fun i ->
                let shifted = if i >= shn then !cur.(i - shn) else fill in
                C.gate_mux c (sp "st%d_%d" k i) ~sel:nb.(k) shifted !cur.(i))
        done;
        Array.init 32 (fun i ->
            C.gate_mux c (sp "rout%d" i) ~sel:right !cur.(31 - i) !cur.(i)))
  in
  let res = pack c "result" bits in
  (res, C.scoped c "gates" (fun () -> taps c "sres" 32 res))

(* ---- result mux and condition codes ----
   Called under "iu.gates.alu" (after the unit results exist); the
   "result_mux" / "icc_next" packers are created by the caller inside
   "iu.ex".  One-hot unit decode plus a per-bit mux chain; unknown
   unit codes (5..7) fall through to the adder, as behaviourally. *)

let result_mux c ops ~sum_bits ~logic_bits ~shift_bits ~mul_res ~div_res =
  let mulb = taps c "mulb" 32 mul_res in
  let divb = taps c "divb" 32 div_res in
  let u0 = ops.unitb.(0) and u1 = ops.unitb.(1) and u2 = ops.unitb.(2) in
  let nu0 = C.gate_not c "nu0" u0 in
  let nu1 = C.gate_not c "nu1" u1 in
  let nu2 = C.gate_not c "nu2" u2 in
  let sel2 nm a b g = and2 c nm (and2 c (nm ^ "_a") a b) g in
  let sel_logic = sel2 "sel_logic" u0 nu1 nu2 in
  let sel_shift = sel2 "sel_shift" nu0 u1 nu2 in
  let sel_mul = sel2 "sel_mul" u0 u1 nu2 in
  let sel_div = sel2 "sel_div" nu0 nu1 u2 in
  Array.init 32 (fun i ->
      let m3 = C.gate_mux c (sp "rm3_%d" i) ~sel:sel_div divb.(i) sum_bits.(i) in
      let m2 = C.gate_mux c (sp "rm2_%d" i) ~sel:sel_mul mulb.(i) m3 in
      let m1 = C.gate_mux c (sp "rm1_%d" i) ~sel:sel_shift shift_bits.(i) m2 in
      C.gate_mux c (sp "rm0_%d" i) ~sel:sel_logic logic_bits.(i) m1)

(* icc_next bits [c; v; z; n] LSB first: Z is a NOR tree over the
   result bits, N is the sign bit, V/C gate through unit = adder.
   Consumes the packed ["result_mux"] word (via taps) so faults on it
   reach the condition codes, as they do behaviourally. *)
let icc_next c ops ~ex_result ~flag_c ~flag_v =
  let resb = taps c "resb" 32 ex_result in
  let zor = or_tree c "z_or" (Array.to_list resb) in
  let z = C.gate_not c "z_f" zor in
  let u01 = or2 c "u01" ops.unitb.(0) ops.unitb.(1) in
  let is_adder = C.gate_nor c "is_adder" u01 ops.unitb.(2) in
  let v = and2 c "v_sel" flag_v is_adder in
  let cf = and2 c "c_sel" flag_c is_adder in
  let n = C.gate_buf c "n_f" resb.(31) in
  [| cf; v; z; n |]

(* ---- branch unit ----
   Called inside "iu.ex.branch".  Returns (cond_ok, taken, next_pc,
   jmpl_mis gate) — the caller buffers jmpl_mis under its behavioural
   name in the "iu.ex" scope. *)

let branch c ops ~cond_s ~is_branch ~is_call ~is_jmpl ~pcb ~immb ~sum_bits ~pc_inc =
  let cond_g, bt_bits =
    C.scoped c "gates" (fun () ->
        let cb = taps c "condb" 4 cond_s in
        let n = ops.iccb.(3) and z = ops.iccb.(2) and v = ops.iccb.(1)
        and cfl = ops.iccb.(0) in
        let zero = C.const c "bzero" 1 0 in
        let nxv = xor2 c "nxv" n v in
        let zonv = or2 c "zonv" z nxv in
        let coz = or2 c "coz" cfl z in
        (* 8:1 mux over cond[2:0]: never/z/z|n^v/n^v/c|z/c/n/v *)
        let m00 = C.gate_mux c "cm00" ~sel:cb.(0) z zero in
        let m01 = C.gate_mux c "cm01" ~sel:cb.(0) nxv zonv in
        let m10 = C.gate_mux c "cm10" ~sel:cb.(0) cfl coz in
        let m11 = C.gate_mux c "cm11" ~sel:cb.(0) v n in
        let m0 = C.gate_mux c "cm0" ~sel:cb.(1) m01 m00 in
        let m1 = C.gate_mux c "cm1" ~sel:cb.(1) m11 m10 in
        let base = C.gate_mux c "cbase" ~sel:cb.(2) m1 m0 in
        let cond_g = xor2 c "condx" base cb.(3) in
        let bt_bits, _ = ripple c ~prefix:"bt_" pcb immb zero in
        (cond_g, bt_bits))
  in
  let cond_ok = C.gate_buf c "cond_ok" cond_g in
  let taken = and2 c "taken" is_branch cond_ok in
  let br_target = pack c "br_target" bt_bits in
  let np_bits, jm_g =
    C.scoped c "gates" (fun () ->
        let btb = taps c "btb" 32 br_target in
        let pib = taps c "pib" 32 pc_inc in
        let ct = or2 c "ct" is_call taken in
        let np_bits =
          Array.init 32 (fun i ->
              let m = C.gate_mux c (sp "np1_%d" i) ~sel:ct btb.(i) pib.(i) in
              C.gate_mux c (sp "np0_%d" i) ~sel:is_jmpl sum_bits.(i) m)
        in
        let jlow = or2 c "jm_low" sum_bits.(0) sum_bits.(1) in
        (np_bits, and2 c "jm_and" is_jmpl jlow))
  in
  let next_pc = pack c "next_pc" np_bits in
  (next_pc, jm_g)

(* ---- writeback data mux ----  Called inside "iu.wb". *)

let wb_data c ~is_load ~is_call ~is_jmpl ~is_sethi ~me_load ~pcb ~immb ~ex_result_r =
  let bits =
    C.scoped c "gates" (fun () ->
        let ldb = taps c "ldb" 32 me_load in
        let resb = taps c "resb" 32 ex_result_r in
        let cj = or2 c "cj" is_call is_jmpl in
        Array.init 32 (fun i ->
            let m2 = C.gate_mux c (sp "wbm2_%d" i) ~sel:is_sethi immb.(i) resb.(i) in
            let m1 = C.gate_mux c (sp "wbm1_%d" i) ~sel:cj pcb.(i) m2 in
            C.gate_mux c (sp "wbm0_%d" i) ~sel:is_load ldb.(i) m1))
  in
  pack c "wb_data" bits
