module C = Rtl.Circuit
module Asm = Sparc.Asm
module Memory = Sparc.Memory
module Layout = Sparc.Layout
module Bus_event = Sparc.Bus_event

type stop_reason = Exited of int | Trapped of int | Cycle_limit | Aborted

(* Per-bus-port driver state: [-1] idle, otherwise cycles until the
   acknowledge is presented. *)
type port_driver = {
  ports : Cache_block.ports;
  read_only : bool;
  mutable countdown : int;
  mutable ready_out : bool;  (* we asserted ready for the current cycle *)
}

type t = {
  core : Core.t;
  mem_latency : int;
  iport : port_driver;
  dport : port_driver;
  mutable mem : Memory.t;
  mutable events_rev : Bus_event.t list;
  mutable n_events : int;  (* length of events_rev *)
  mutable n_writes : int;  (* write events among them *)
  mutable stopped : stop_reason option;
  mutable abort : bool;
  mutable obs : Obs.t;
}

let create ?params ?(mem_latency = 1) () =
  let core = Core.build ?params () in
  { core;
    mem_latency;
    iport = { ports = core.icache; read_only = true; countdown = -1; ready_out = false };
    dport = { ports = core.dcache; read_only = false; countdown = -1; ready_out = false };
    mem = Memory.create ();
    events_rev = [];
    n_events = 0;
    n_writes = 0;
    stopped = None;
    abort = false;
    obs = Obs.null }

let core t = t.core

let mem_latency t = t.mem_latency

let set_obs t obs = t.obs <- obs

let obs t = t.obs

let circuit t = t.core.Core.circuit

let set_hang_cone t on = C.enable_observed_cone (circuit t) on

let load t prog =
  assert (prog.Asm.entry = Core.default_params.reset_pc || prog.Asm.entry <> 0);
  C.reset (circuit t);
  t.mem <- Memory.create ();
  Asm.load prog t.mem;
  t.events_rev <- [];
  t.n_events <- 0;
  t.n_writes <- 0;
  t.stopped <- None;
  t.abort <- false;
  t.iport.countdown <- -1;
  t.iport.ready_out <- false;
  t.dport.countdown <- -1;
  t.dport.ready_out <- false;
  C.set_input (circuit t) t.core.Core.icache.bus_ready 0;
  C.set_input (circuit t) t.core.Core.dcache.bus_ready 0;
  C.settle (circuit t)

let record t ev on_event =
  t.events_rev <- ev :: t.events_rev;
  t.n_events <- t.n_events + 1;
  if Bus_event.is_write ev then t.n_writes <- t.n_writes + 1;
  match on_event with
  | Some f -> if not (f ev) then t.abort <- true
  | None -> ()

let size_of_code = function 0 -> Bus_event.Byte | 1 -> Bus_event.Half | _ -> Bus_event.Word

(* Inspect a port's settled request, advance its countdown, and return
   the (ready, rdata) pair to present next cycle. *)
let drive_port t p on_event =
  let c = circuit t in
  let req = C.value c p.ports.bus_req in
  if p.ready_out then begin
    (* Transaction acknowledged during the current cycle. *)
    p.ready_out <- false;
    p.countdown <- -1;
    (0, 0)
  end
  else if req = 0 then begin
    p.countdown <- -1;
    (0, 0)
  end
  else begin
    if p.countdown < 0 then p.countdown <- t.mem_latency;
    p.countdown <- p.countdown - 1;
    if p.countdown > 0 then (0, 0)
    else begin
      let addr = C.value c p.ports.bus_addr in
      let we = C.value c p.ports.bus_we in
      p.ready_out <- true;
      if we <> 0 && not p.read_only then begin
        let size_code = C.value c p.ports.bus_size in
        let value = C.value c p.ports.bus_wdata in
        let size = size_of_code size_code in
        record t (Bus_event.Write { addr; size; value }) on_event;
        if Layout.is_exit_store addr then t.stopped <- Some (Exited value)
        else begin
          (* A fault inside the core can defeat its own alignment check
             and push a misaligned address onto the bus; the memory
             controller truncates like real hardware would (the raw
             address is already recorded, so lockstep still sees the
             divergence). *)
          match size with
          | Bus_event.Byte -> Memory.store_byte t.mem addr value
          | Bus_event.Half -> Memory.store_half t.mem (addr land lnot 1) value
          | Bus_event.Word -> Memory.store_word t.mem (addr land lnot 3) value
        end;
        (1, 0)
      end
      else begin
        let word = Memory.load_word t.mem (addr land lnot 3) in
        if not p.read_only then
          record t (Bus_event.Read { addr; size = Bus_event.Word }) on_event;
        (1, word)
      end
    end
  end

let step_with t on_event =
  let c = circuit t in
  let i_ready, i_rdata = drive_port t t.iport on_event in
  let d_ready, d_rdata = drive_port t t.dport on_event in
  C.clock c;
  C.set_input c t.core.Core.icache.bus_ready i_ready;
  C.set_input c t.core.Core.icache.bus_rdata i_rdata;
  C.set_input c t.core.Core.dcache.bus_ready d_ready;
  C.set_input c t.core.Core.dcache.bus_rdata d_rdata;
  C.settle c

let step t = step_with t None

(* [run_segment] pauses (returns [None]) once the cycle counter
   reaches [until_cycle]; terminal conditions return [Some reason] and
   latch as before.  The pause point is between steps, i.e. at a
   settled state — exactly the point {!checkpoint} captures, so a
   paused run can be compared against golden checkpoints.

   [detect_loops] arms cycle-proof hang detection: a run that is going
   to exhaust its cycle budget almost always spins in a short state
   loop (the core wedged, or bouncing between a handful of stall
   states).  A {!Rtl.Cycle} Brent detector fingerprints the complete
   machine state — circuit nodes, memories, write count and both
   bus-driver states — every 4th cycle against an anchor refreshed on
   a doubling schedule, and confirms every fingerprint match with an
   exact [same_state] comparison before reporting (a hash collision is
   never a proof).  A confirmed match with no bus WRITE recorded in
   between is a proof of periodicity: main memory only changes through
   writes, reads are pure (a spin-wait hang keeps reading, so
   requiring an event-free window would miss it), the port drivers are
   part of the compared state, and an armed permanent fault is a pure
   function of the circuit state — so the machine will replay the same
   write-free window forever and can never exit, trap or write again.
   The early [Cycle_limit] is therefore exactly the verdict a full run
   to [max_cycles] would return.  Caveat: [on_event] must be
   insensitive to reads (the campaign only arms [detect_loops] with
   its write-only lockstep comparison) — a read-comparing observer
   consumes its reference stream, which is not part of the compared
   state. *)
let run_segment_raw ?on_event ?(detect_loops = false) t ~until_cycle ~max_cycles =
  let c = circuit t in
  let det =
    if not detect_loops then None
    else
      let mix h x = ((h lxor x) * 0x100000001B3) lxor (h lsr 17) in
      Some
        (Rtl.Cycle.create ~first:256 ~stride:4
           ~hash:(fun () ->
             mix
               (mix
                  (mix
                     (mix (mix (C.content_hash c) t.n_writes) t.iport.countdown)
                     (Bool.to_int t.iport.ready_out))
                  t.dport.countdown)
               (Bool.to_int t.dport.ready_out))
           ~capture:(fun () ->
             ( C.snapshot c, t.n_writes, t.iport.countdown, t.iport.ready_out,
               t.dport.countdown, t.dport.ready_out ))
           ~confirm:(fun (s, wr, icd, iro, dcd, dro) ->
             t.n_writes = wr && t.iport.countdown = icd && t.iport.ready_out = iro
             && t.dport.countdown = dcd && t.dport.ready_out = dro && C.same_state c s)
           ())
  in
  let loop_check () =
    match det with
    | None -> false
    | Some d -> (
        match Rtl.Cycle.observe d ~cycle:(C.cycle c) with
        | Some period ->
            if Obs.enabled t.obs then begin
              Obs.incr t.obs "tail.cycle_proofs";
              Obs.observe t.obs "tail.cycle_length" (float_of_int period);
              Obs.incr t.obs ~by:(max_cycles - C.cycle c) "tail.cycles_saved"
            end;
            true
        | None -> false)
  in
  let rec go () =
    match t.stopped with
    | Some r -> Some r
    | None ->
        if t.abort then begin
          t.stopped <- Some Aborted;
          Some Aborted
        end
        else if C.value c t.core.Core.halted <> 0 then begin
          let r = Trapped (C.value c t.core.Core.trap_code) in
          t.stopped <- Some r;
          Some r
        end
        else if C.cycle c >= max_cycles || (detect_loops && loop_check ()) then begin
          t.stopped <- Some Cycle_limit;
          Some Cycle_limit
        end
        else if C.cycle c >= until_cycle then None
        else begin
          step_with t on_event;
          go ()
        end
  in
  go ()

let run_segment ?on_event ?detect_loops t ~until_cycle ~max_cycles =
  if not (Obs.enabled t.obs) then
    run_segment_raw ?on_event ?detect_loops t ~until_cycle ~max_cycles
  else begin
    let c = circuit t in
    let c0 = C.cycle c and i0 = C.value c t.core.Core.instret in
    let r = run_segment_raw ?on_event ?detect_loops t ~until_cycle ~max_cycles in
    Obs.incr t.obs ~by:(C.cycle c - c0) "rtl.cycles";
    Obs.incr t.obs ~by:(C.value c t.core.Core.instret - i0) "rtl.instructions";
    r
  end

let run ?on_event ?detect_loops t ~max_cycles =
  match run_segment ?on_event ?detect_loops t ~until_cycle:max_int ~max_cycles with
  | Some r -> r
  | None -> assert false (* until_cycle = max_int never pauses first *)

(* --- checkpoints (trimmed campaign execution) --- *)

type checkpoint = {
  ck_cycle : int;
  ck_circuit : C.snapshot;
  ck_mem : Memory.t;
  ck_hash : int;
  ck_iport : int * bool;  (* countdown, ready_out *)
  ck_dport : int * bool;
  ck_events : int;
  ck_writes : int;
}

let checkpoint t =
  { ck_cycle = C.cycle (circuit t);
    ck_circuit = C.snapshot (circuit t);
    ck_mem = Memory.copy t.mem;
    ck_hash = C.state_hash (circuit t) lxor Memory.hash t.mem;
    ck_iport = (t.iport.countdown, t.iport.ready_out);
    ck_dport = (t.dport.countdown, t.dport.ready_out);
    ck_events = t.n_events;
    ck_writes = t.n_writes }

let restore_checkpoint t ck =
  C.restore (circuit t) ck.ck_circuit;
  t.mem <- Memory.copy ck.ck_mem;
  t.events_rev <- [];
  t.n_events <- ck.ck_events;
  t.n_writes <- ck.ck_writes;
  t.stopped <- None;
  t.abort <- false;
  (let cd, ro = ck.ck_iport in
   t.iport.countdown <- cd;
   t.iport.ready_out <- ro);
  let cd, ro = ck.ck_dport in
  t.dport.countdown <- cd;
  t.dport.ready_out <- ro

let matches_checkpoint t ck =
  C.cycle (circuit t) = ck.ck_cycle
  && (t.iport.countdown, t.iport.ready_out) = ck.ck_iport
  && (t.dport.countdown, t.dport.ready_out) = ck.ck_dport
  && (match C.replay_converged (circuit t) with
     (* O(dirty): an empty dirty set + empty mem diff against the
        golden trace the checkpoint came from is exact state equality *)
     | Some converged -> converged
     | None -> C.state_equal (circuit t) ck.ck_circuit)
  && Memory.equal t.mem ck.ck_mem

(* --- lane -> scalar transplant (batch tail hand-off) --- *)

let transplant t tp ~mem ~iport:(icd, iro) ~dport:(dcd, dro) ~events_rev ~n_events
    ~n_writes =
  C.transplant (circuit t) tp;
  t.mem <- mem;
  t.events_rev <- events_rev;
  t.n_events <- n_events;
  t.n_writes <- n_writes;
  t.stopped <- None;
  t.abort <- false;
  t.iport.countdown <- icd;
  t.iport.ready_out <- iro;
  t.dport.countdown <- dcd;
  t.dport.ready_out <- dro

let checkpoint_cycle ck = ck.ck_cycle
let checkpoint_events ck = ck.ck_events
let checkpoint_writes ck = ck.ck_writes
let checkpoint_hash ck = ck.ck_hash

let stop t = t.stopped

let cycles t = C.cycle (circuit t)

let instructions t = C.value (circuit t) t.core.Core.instret

let events t = List.rev t.events_rev

let writes t = List.filter Bus_event.is_write (events t)

let memory t = t.mem

let reg t r =
  let c = circuit t in
  if r = 0 then 0
  else
    let cwp = C.value c t.core.Core.cwp in
    C.mem_read c t.core.Core.regfile
      (Core.regfile_slot ~nwindows:t.core.Core.nwindows ~cwp r)

let pp_stop fmt = function
  | Exited code -> Format.fprintf fmt "exited(%d)" code
  | Trapped code -> Format.fprintf fmt "trap(%d)" code
  | Cycle_limit -> Format.fprintf fmt "cycle-limit"
  | Aborted -> Format.fprintf fmt "aborted"
