(** Leon3-class microcontroller RTL model.

    A SPARC v8 integer unit built as a synthesisable-style netlist on
    the {!Rtl.Circuit} kernel: program counter and fetch, decode,
    windowed register file, adder/logic/shifter/multiplier/divider
    execution units with condition codes, load/store unit, exception
    stage and writeback, plus structural instruction and data caches
    (the CMEM block).  The instruction lifecycle walks the seven Leon3
    stage names FE DE RA EX ME XC WB as a multi-cycle sequencer; DESIGN.md
    discusses why dropping instruction overlap is sound for the
    paper's permanent-fault scope.

    Hierarchical scopes double as the paper's functional units:
    ["iu.fe"], ["iu.de"], ["iu.ctrl"], ["iu.regfile"], ["iu.ra"],
    ["iu.ex.adder"], ["iu.ex.logic"], ["iu.ex.shift"], ["iu.ex.mul"],
    ["iu.ex.div"], ["iu.ex.branch"], ["iu.ex"], ["iu.me"], ["iu.xc"],
    ["iu.wb"], ["cmem.icache"], ["cmem.dcache"]. *)

module C = Rtl.Circuit

(** FSM state encoding (3 bits). *)

val st_fe : int
val st_de : int
val st_ra : int
val st_ex : int
val st_me : int
val st_xc : int
val st_wb : int
val st_halt : int

(** Trap codes as latched in [iu.xc.trap_code]. *)

val trap_none : int
val trap_illegal : int
val trap_misaligned : int
val trap_div0 : int

type t = {
  circuit : C.t;
  nwindows : int;
  state : C.signal;
  pc : C.signal;
  ir : C.signal;
  halted : C.signal;  (** 1 when the sequencer reached HALT (trap taken) *)
  trap_code : C.signal;
  instret : C.signal;  (** retired-instruction counter *)
  icc : C.signal;
  cwp : C.signal;
  icache : Cache_block.ports;
  dcache : Cache_block.ports;
  regfile : C.memory;
}

type params = {
  nwindows_p : int;
  icache_lines : int;
  dcache_lines : int;
  words_per_line : int;
  reset_pc : int;
  gate_level_adder : bool;
      (** elaborate the EX adder as a ripple-carry gate network
          (~130 extra 1-bit nodes under [iu.ex.adder.gates]) instead of
          behavioural nodes — the finer, slower injection granularity
          the paper contrasts RTL against *)
  gate_level : bool;
      (** elaborate the full IU datapath — decode PLA, ALU, barrel
          shifter, condition-code logic, branch and the
          operand/result/writeback mux trees — as a NAND/NOR/NOT/MUX
          netlist (see {!Gatelevel}), multiplying the injection-site
          population by more than an order of magnitude.  Every
          behavioural node name survives as a packer or buffer over the
          gate bits, so name-addressed faults exist in both
          elaborations.  Gate innards live under nested [gates] scopes
          ([iu.fe.gates], [iu.de.gates], [iu.ex.*.gates]) plus the
          cross-unit [iu.gates.operand] and [iu.gates.alu] scopes.
          Subsumes [gate_level_adder]. *)
}

val default_params : params

val build : ?params:params -> unit -> t
(** Construct and {e elaborate} the full microcontroller circuit. *)

val regfile_slot : nwindows:int -> cwp:int -> int -> int
(** Physical register-file index of architectural register [r] in
    window [cwp]; shared with tests to cross-check the ISS mapping. *)

val observation_points : t -> C.signal list
(** The off-core failure boundary: every signal the simulation
    environment reads — bus request/command/payload of both cache
    ports, [halted], [trap_code] and [instret].  A fault with no
    structural path to any of these is provably silent (the
    environment's [bus_ready]/[bus_rdata] responses are a function of
    this history plus the memory image). *)

val environment_inputs : t -> C.signal list
(** The inputs the environment drives: [bus_ready]/[bus_rdata] of both
    cache ports.  These are the only externally driven nodes, which is
    what the lint pass checks with its undriven-input rule. *)
