module C = Rtl.Circuit
module Layout = Sparc.Layout

let st_fe = 0
let st_de = 1
let st_ra = 2
let st_ex = 3
let st_me = 4
let st_xc = 5
let st_wb = 6
let st_halt = 7

let trap_none = 0
let trap_illegal = 1
let trap_misaligned = 2
let trap_div0 = 3

type t = {
  circuit : C.t;
  nwindows : int;
  state : C.signal;
  pc : C.signal;
  ir : C.signal;
  halted : C.signal;
  trap_code : C.signal;
  instret : C.signal;
  icc : C.signal;
  cwp : C.signal;
  icache : Cache_block.ports;
  dcache : Cache_block.ports;
  regfile : C.memory;
}

type params = {
  nwindows_p : int;
  icache_lines : int;
  dcache_lines : int;
  words_per_line : int;
  reset_pc : int;
  gate_level_adder : bool;
      (** elaborate the EX adder as a ripple-carry gate network instead
          of one behavioural node per signal — the gate-level
          granularity the paper contrasts RTL against *)
  gate_level : bool;
      (** elaborate the full IU datapath — decode PLA, ALU, barrel
          shifter, condition codes, branch and mux trees — as a
          NAND/NOR/NOT/MUX netlist ({!Gatelevel}), with every
          behavioural node name preserved as a packer or buffer over
          the gate bits.  Subsumes [gate_level_adder]. *)
}

let default_params =
  { nwindows_p = 8; icache_lines = 64; dcache_lines = 64; words_per_line = 4;
    reset_pc = Layout.text_base; gate_level_adder = false; gate_level = false }

let regfile_slot ~nwindows ~cwp r =
  if r < 8 then r
  else
    8
    +
    if r < 16 then (16 * cwp) + (r - 8)
    else if r < 24 then (16 * cwp) + 8 + (r - 16)
    else (16 * ((cwp + 1) mod nwindows)) + (r - 24)

let flag_of ctl b = (ctl lsr b) land 1

let field_of ctl (lo, w) = (ctl lsr lo) land ((1 lsl w) - 1)

(* SPARC Bicc condition evaluation from the 4-bit cond code and the
   packed icc [n z v c]. *)
let cond_eval cond icc =
  let n = (icc lsr 3) land 1 = 1
  and z = (icc lsr 2) land 1 = 1
  and v = (icc lsr 1) land 1 = 1
  and c = icc land 1 = 1 in
  let base =
    match cond land 7 with
    | 0 -> false (* never *)
    | 1 -> z
    | 2 -> z || n <> v
    | 3 -> n <> v
    | 4 -> c || z
    | 5 -> c
    | 6 -> n
    | _ -> v
  in
  Util.bit1 (if cond land 8 <> 0 then not base else base)

let build ?(params = default_params) () =
  let nw = params.nwindows_p in
  let c = C.create "leon3" in
  let cwp_bits =
    let rec go b = if 1 lsl b >= nw then b else go (b + 1) in
    max 1 (go 1)
  in
  (* [iu name f] builds nodes under the scope ["iu.<name>"]. *)
  let iu name f = C.scoped c "iu" (fun () -> C.scoped c name f) in

  (* ---- registers on feedback paths ---- *)
  let state = iu "ctrl" (fun () -> C.reg c "state" ~width:3 ~init:st_fe ()) in
  let pc = iu "fe" (fun () -> C.reg c "pc" ~width:32 ~init:params.reset_pc ()) in
  let trap_pending, trap_code =
    iu "xc" (fun () ->
        (C.reg c "trap_pending" ~width:1 (), C.reg c "trap_code" ~width:2 ()))
  in
  let icc, cwp, ex_count =
    iu "ex" (fun () ->
        ( C.reg c "icc" ~width:4 (),
          C.reg c "cwp" ~width:cwp_bits (),
          C.reg c "ex_count" ~width:5 () ))
  in

  (* ---- sequencer stage decodes ---- *)
  let in_fe, in_de, in_ra, in_ex, in_me, in_wb =
    iu "ctrl" (fun () ->
        ( Util.eq_const c "in_fe" state st_fe,
          Util.eq_const c "in_de" state st_de,
          Util.eq_const c "in_ra" state st_ra,
          Util.eq_const c "in_ex" state st_ex,
          Util.eq_const c "in_me" state st_me,
          Util.eq_const c "in_wb" state st_wb ))
  in

  (* ---- fetch ---- *)
  let pc_mis, pc_inc, ireq, pcb =
    iu "fe" (fun () ->
        let pc_mis, pc_inc, pcb =
          if not params.gate_level then
            ( C.comb1 c "pc_mis" 1 pc (fun p -> Util.bit1 (p land 3 <> 0)),
              C.comb1 c "pc_inc" 32 pc (fun p -> p + 4),
              [||] )
          else Gatelevel.fetch c ~pc
        in
        let no_mis = Util.not1 c "no_mis" pc_mis in
        let ireq = Util.and2 c "ireq" in_fe no_mis in
        (pc_mis, pc_inc, ireq, pcb))
  in
  let zero1 = C.const c "zero1" 1 0 in
  let zero32 = C.const c "zero32" 32 0 in
  let size_word = C.const c "size_w" 2 2 in

  let icache =
    Cache_block.build c ~scope:"cmem.icache" ~lines:params.icache_lines
      ~words_per_line:params.words_per_line ~with_store:false ~req:ireq ~we:zero1 ~addr:pc
      ~wdata:zero32 ~size:size_word
  in

  (* ---- decode ---- *)
  let ( ir, dec_valid, de_imm, de_rd, de_rs1, de_rs2,
        is_load, is_store, is_branch, is_call, is_sethi, is_jmpl, is_save, is_restore,
        wreg, cc_en, use_imm, load_signed, is_mul_s, is_div_s, unit_s, subop_s, size_s,
        cond_s ) =
    iu "de" (fun () ->
        let ir = C.reg c "ir" ~width:32 () in
        let ir_en = Util.and2 c "ir_en" in_fe icache.ready in
        C.connect c ir ~en:ir_en ~d:icache.rdata ();
        let ctl, imm =
          if not params.gate_level then
            ( C.comb1 c "ctl" Ctl.width ir Ctl.decode,
              C.comb1 c "imm" 32 ir Ctl.imm_of )
          else Gatelevel.decode c ~ir
        in
        let rd_raw = Util.slice c "rd_raw" ir ~hi:29 ~lo:25 in
        (* CALL has no rd field; its link register is architecturally %o7. *)
        let rd =
          C.comb2 c "rd" 5 ir rd_raw (fun w r ->
              if (w lsr 30) land 3 = 1 then 15 else r)
        in
        let rs1 = Util.slice c "rs1" ir ~hi:18 ~lo:14 in
        let rs2 = Util.slice c "rs2" ir ~hi:4 ~lo:0 in
        let de_ctl = C.reg c "de_ctl" ~width:Ctl.width () in
        let de_imm = C.reg c "de_imm" ~width:32 () in
        let de_rd = C.reg c "de_rd" ~width:5 () in
        let de_rs1 = C.reg c "de_rs1" ~width:5 () in
        let de_rs2 = C.reg c "de_rs2" ~width:5 () in
        C.connect c de_ctl ~en:in_de ~d:ctl ();
        C.connect c de_imm ~en:in_de ~d:imm ();
        C.connect c de_rd ~en:in_de ~d:rd ();
        C.connect c de_rs1 ~en:in_de ~d:rs1 ();
        C.connect c de_rs2 ~en:in_de ~d:rs2 ();
        let dec_valid = C.comb1 c "dec_valid" 1 ctl (fun v -> flag_of v Ctl.b_valid) in
        let fl name b = C.comb1 c name 1 de_ctl (fun v -> flag_of v b) in
        let fd name f = C.comb1 c name (snd f) de_ctl (fun v -> field_of v f) in
        ( ir, dec_valid, de_imm, de_rd, de_rs1, de_rs2,
          fl "is_load" Ctl.b_is_load, fl "is_store" Ctl.b_is_store,
          fl "is_branch" Ctl.b_is_branch, fl "is_call" Ctl.b_is_call,
          fl "is_sethi" Ctl.b_is_sethi, fl "is_jmpl" Ctl.b_is_jmpl,
          fl "is_save" Ctl.b_is_save, fl "is_restore" Ctl.b_is_restore,
          fl "wreg" Ctl.b_wreg, fl "cc_en" Ctl.b_cc_en, fl "use_imm" Ctl.b_use_imm,
          fl "load_signed" Ctl.b_load_signed, fl "is_mul" Ctl.b_is_mul,
          fl "is_div" Ctl.b_is_div, fd "unit_sel" Ctl.f_unit, fd "subop" Ctl.f_subop,
          fd "size" Ctl.f_size, fd "cond" Ctl.f_cond ))
  in

  (* ---- register file ---- *)
  let regfile, rda, rdb, rdc =
    iu "regfile" (fun () ->
        let regfile = C.memory c "regs" ~words:(8 + (16 * nw)) ~width:32 in
        let map name ridx =
          C.comb2 c name 8 cwp ridx (fun w r -> regfile_slot ~nwindows:nw ~cwp:w r)
        in
        let addr_a = map "addr_a" de_rs1 in
        let addr_b = map "addr_b" de_rs2 in
        let addr_c = map "addr_c" de_rd in
        let port_a = C.read_port c "port_a" regfile addr_a in
        let port_b = C.read_port c "port_b" regfile addr_b in
        let port_c = C.read_port c "port_c" regfile addr_c in
        let z name ridx port =
          C.comb2 c name 32 ridx port (fun r v -> if r = 0 then 0 else v)
        in
        (regfile, z "rda" de_rs1 port_a, z "rdb" de_rs2 port_b, z "rdc" de_rd port_c))
  in

  (* ---- operand latch (RA) ---- *)
  (* Gate mode: the operand-select fabric lives in its own cross-unit
     scope so its sites attribute to the register-file unit. *)
  let gl_operand =
    if not params.gate_level then None
    else
      Some
        (C.scoped c "iu" (fun () ->
             C.scoped c "gates" (fun () ->
                 C.scoped c "operand" (fun () ->
                     Gatelevel.op2_mux c ~use_imm ~de_imm ~rdb))))
  in
  let ra_op1, ra_op2, ra_st =
    iu "ra" (fun () ->
        let op2_mux =
          match gl_operand with
          | None -> Util.mux2 c "op2_mux" 32 ~sel:use_imm de_imm rdb
          | Some (_, bits) -> Gatelevel.pack c "op2_mux" bits
        in
        let ra_op1 = C.reg c "ra_op1" ~width:32 () in
        let ra_op2 = C.reg c "ra_op2" ~width:32 () in
        let ra_st = C.reg c "ra_st" ~width:32 () in
        C.connect c ra_op1 ~en:in_ra ~d:rda ();
        C.connect c ra_op2 ~en:in_ra ~d:op2_mux ();
        C.connect c ra_st ~en:in_ra ~d:rdc ();
        (ra_op1, ra_op2, ra_st))
  in

  (* ---- execute ---- *)
  (* Gate mode: shared bit taps of the EX operands and control fields,
     in a cross-unit scope attributed to the ALU. *)
  let gl_ops =
    if not params.gate_level then None
    else
      Some
        (C.scoped c "iu" (fun () ->
             C.scoped c "gates" (fun () ->
                 C.scoped c "alu" (fun () ->
                     Gatelevel.operand_taps c ~ra_op1 ~ra_op2 ~subop_s ~unit_s
                       ~icc))))
  in
  let sum, sum_bits, flag_c, flag_v =
    iu "ex" (fun () ->
        C.scoped c "adder" (fun () ->
            match gl_ops with
            | Some ops -> Gatelevel.adder c ops
            | None ->
              let b_eff =
                C.comb2 c "b_eff" 32 subop_s ra_op2 (fun s b ->
                    if s = Ctl.sub_sub || s = Ctl.sub_subx then b lxor 0xFFFF_FFFF else b)
              in
              let cin =
                C.comb2 c "cin" 1 subop_s icc (fun s ic ->
                    let cflag = ic land 1 in
                    if s = Ctl.sub_sub then 1
                    else if s = Ctl.sub_addx then cflag
                    else if s = Ctl.sub_subx then 1 - cflag
                    else 0)
              in
              let sum, carry =
                if not params.gate_level_adder then
                  ( C.comb3 c "sum" 32 ra_op1 b_eff cin (fun a b ci -> a + b + ci),
                    C.comb3 c "carry" 1 ra_op1 b_eff cin (fun a b ci ->
                        Util.bit1 (a + b + ci > 0xFFFF_FFFF)) )
                else
                  (* Ripple-carry gate network: a propagate xor and a
                     sum xor per bit, with the majority carry realised
                     as NAND-NAND two-level logic the way standard
                     cells implement AND-OR — every gate output is its
                     own injection node. *)
                  C.scoped c "gates" (fun () ->
                      let carry = ref cin in
                      let sum_bits =
                        Array.init 32 (fun i ->
                            let p =
                              C.comb2 c (Printf.sprintf "p%d" i) 1 ra_op1 b_eff
                                (fun a b -> ((a lsr i) lxor (b lsr i)) land 1)
                            in
                            let s =
                              C.comb2 c (Printf.sprintf "s%d" i) 1 p !carry
                                (fun pv cv -> pv lxor cv)
                            in
                            (* generate and propagate NAND terms *)
                            let ng =
                              C.comb2 c (Printf.sprintf "ng%d" i) 1 ra_op1 b_eff
                                (fun a b -> 1 - ((a lsr i) land (b lsr i) land 1))
                            in
                            let np =
                              C.comb2 c (Printf.sprintf "np%d" i) 1 p !carry
                                (fun pv cv -> 1 - (pv land cv))
                            in
                            let cout =
                              C.comb2 c (Printf.sprintf "c%d" i) 1 ng np
                                (fun x y -> 1 - (x land y))
                            in
                            carry := cout;
                            s)
                      in
                      let sum =
                        C.combn c "sum" 32 sum_bits (fun vs ->
                            let v = ref 0 in
                            for i = 31 downto 0 do
                              v := (!v lsl 1) lor vs.(i)
                            done;
                            !v)
                      in
                      (sum, !carry))
              in
              let flag_c =
                C.comb2 c "flag_c" 1 subop_s carry (fun s co ->
                    if s = Ctl.sub_sub || s = Ctl.sub_subx then 1 - co else co)
              in
              let flag_v =
                C.comb3 c "flag_v" 1 ra_op1 b_eff sum (fun a b r ->
                    Util.bit1 (lnot (a lxor b) land (a lxor r) land 0x8000_0000 <> 0))
              in
              (sum, [||], flag_c, flag_v)))
  in
  let logic_res, logic_bits =
    iu "ex" (fun () ->
        C.scoped c "logic" (fun () ->
            match gl_ops with
            | Some ops -> Gatelevel.logic c ops
            | None ->
                ( C.comb3 c "result" 32 subop_s ra_op1 ra_op2 (fun s a b ->
                      if s = Ctl.sub_and then a land b
                      else if s = Ctl.sub_andn then a land lnot b
                      else if s = Ctl.sub_or then a lor b
                      else if s = Ctl.sub_orn then a lor lnot b
                      else if s = Ctl.sub_xor then a lxor b
                      else lnot (a lxor b)),
                  [||] )))
  in
  let shift_res, shift_bits =
    iu "ex" (fun () ->
        C.scoped c "shift" (fun () ->
            let shcnt = Util.slice c "shcnt" ra_op2 ~hi:4 ~lo:0 in
            match gl_ops with
            | Some ops -> Gatelevel.shift c ops ~shcnt
            | None ->
                ( C.comb3 c "result" 32 subop_s ra_op1 shcnt (fun s a n ->
                      if s = Ctl.sub_sll then a lsl n
                      else if s = Ctl.sub_srl then a lsr n
                      else Bitops.sar a n),
                  [||] )))
  in
  let mul_res, mul_hi =
    iu "ex" (fun () ->
        C.scoped c "mul" (fun () ->
              let pp name b_lo =
                C.comb2 c name 32 ra_op1 ra_op2 (fun a b ->
                    ((a * ((b lsr b_lo) land 0xFF)) land 0xFFFF_FFFF) lsl b_lo)
              in
              let pp0 = pp "pp0" 0 in
              let pp1 = pp "pp1" 8 in
              let pp2 = pp "pp2" 16 in
              let pp3 = pp "pp3" 24 in
              let sum01 = C.comb2 c "sum01" 32 pp0 pp1 (fun a b -> a + b) in
              let sum23 = C.comb2 c "sum23" 32 pp2 pp3 (fun a b -> a + b) in
              let product = C.comb2 c "product" 32 sum01 sum23 (fun a b -> a + b) in
              (* High word, kept in the Y state register as on real SPARC. *)
              let hi =
                C.comb3 c "product_hi" 32 subop_s ra_op1 ra_op2 (fun s a b ->
                    let signed = s = Ctl.sub_smul in
                    fst (Bitops.mul_full ~signed a b))
              in
              (product, hi)))
  in
  let div_res, div_zero =
    iu "ex" (fun () ->
        C.scoped c "div" (fun () ->
              let div_zero =
                C.comb2 c "div_zero" 1 is_div_s ra_op2 (fun d b ->
                    Util.bit1 (d <> 0 && b = 0))
              in
              let q =
                C.comb3 c "quotient" 32 subop_s ra_op1 ra_op2 (fun s a b ->
                    if b = 0 then 0
                    else if s = Ctl.sub_sdiv then begin
                      let hi = if Bitops.is_negative a then 0xFFFF_FFFF else 0 in
                      match Bitops.div32 ~signed:true ~hi ~lo:a b with
                      | Some (v, _) -> v
                      | None -> 0
                    end
                    else
                      match Bitops.div32 ~signed:false ~hi:0 ~lo:a b with
                      | Some (v, _) -> v
                      | None -> 0)
              in
              (q, div_zero)))
  in
  (* Gate mode: result-select and condition-code gate networks, in the
     same cross-unit ALU scope as the operand taps. *)
  let gl_result =
    match gl_ops with
    | None -> None
    | Some ops ->
        Some
          (C.scoped c "iu" (fun () ->
               C.scoped c "gates" (fun () ->
                   C.scoped c "alu" (fun () ->
                       Gatelevel.result_mux c ops ~sum_bits ~logic_bits
                         ~shift_bits ~mul_res ~div_res))))
  in
  (* The packed result word is created under its behavioural name
     first, so the condition-code gates can consume taps of it — a
     fault on [result_mux] must reach the icc as it does
     behaviourally. *)
  let gl_ex_result =
    match gl_result with
    | None -> None
    | Some bits -> Some (iu "ex" (fun () -> Gatelevel.pack c "result_mux" bits))
  in
  let gl_icc =
    match (gl_ops, gl_ex_result) with
    | Some ops, Some res ->
        Some
          (C.scoped c "iu" (fun () ->
               C.scoped c "gates" (fun () ->
                   C.scoped c "alu" (fun () ->
                       Gatelevel.icc_next c ops ~ex_result:res ~flag_c ~flag_v))))
    | _ -> None
  in
  let ex_result_r, ex_next_pc_r, ex_adv, jmpl_mis =
    iu "ex" (fun () ->
        let ex_result =
          match gl_ex_result with
          | Some res -> res
          | None ->
              C.combn c "result_mux" 32
                [| unit_s; sum; logic_res; shift_res; mul_res; div_res |]
                (fun vs ->
                  let u = vs.(0) in
                  if u = Ctl.unit_logic then vs.(2)
                  else if u = Ctl.unit_shift then vs.(3)
                  else if u = Ctl.unit_mul then vs.(4)
                  else if u = Ctl.unit_div then vs.(5)
                  else vs.(1))
        in
        let icc_next =
          match gl_icc with
          | Some bits -> Gatelevel.pack c "icc_next" bits
          | None ->
              C.combn c "icc_next" 4
                [| unit_s; ex_result; flag_c; flag_v |]
                (fun vs ->
                  let r = vs.(1) in
                  let n = (r lsr 31) land 1 in
                  let z = Util.bit1 (r = 0) in
                  let v, cf =
                    if vs.(0) = Ctl.unit_adder then (vs.(3), vs.(2)) else (0, 0)
                  in
                  (n lsl 3) lor (z lsl 2) lor (v lsl 1) lor cf)
        in
        let next_pc, gl_jm =
          C.scoped c "branch" (fun () ->
              match gl_ops with
              | Some ops ->
                  let immb, _ = Option.get gl_operand in
                  let np, jm =
                    Gatelevel.branch c ops ~cond_s ~is_branch ~is_call ~is_jmpl
                      ~pcb ~immb ~sum_bits ~pc_inc
                  in
                  (np, Some jm)
              | None ->
                  let cond_ok = C.comb2 c "cond_ok" 1 cond_s icc cond_eval in
                  let taken = Util.and2 c "taken" is_branch cond_ok in
                  let br_target =
                    C.comb2 c "br_target" 32 pc de_imm (fun p d -> p + d)
                  in
                  ( C.combn c "next_pc" 32
                      [| is_jmpl; is_call; taken; sum; br_target; pc_inc |]
                      (fun vs ->
                        if vs.(0) <> 0 then vs.(3)
                        else if vs.(1) <> 0 || vs.(2) <> 0 then vs.(4)
                        else vs.(5)),
                    None ))
        in
        let jmpl_mis =
          match gl_jm with
          | Some g -> C.gate_buf c "jmpl_mis" g
          | None ->
              C.comb2 c "jmpl_mis" 1 is_jmpl sum (fun j s ->
                  j land Util.bit1 (s land 3 <> 0))
        in
        let latency =
          C.comb1 c "latency" 5 unit_s (fun u ->
              if u = Ctl.unit_mul then 3 else if u = Ctl.unit_div then 17 else 0)
        in
        let ex_count_next =
          C.comb4 c "ex_count_next" 5 in_ra in_ex ex_count latency (fun ra ex cnt lat ->
              if ra <> 0 then lat else if ex <> 0 && cnt > 0 then cnt - 1 else cnt)
        in
        C.connect c ex_count ~d:ex_count_next ();
        let ex_done = Util.eq_const c "ex_done" ex_count 0 in
        let ex_adv = Util.and2 c "ex_adv" in_ex ex_done in
        let ex_result_r = C.reg c "ex_result_r" ~width:32 () in
        let ex_next_pc_r = C.reg c "ex_next_pc_r" ~width:32 () in
        C.connect c ex_result_r ~en:ex_adv ~d:ex_result ();
        C.connect c ex_next_pc_r ~en:ex_adv ~d:next_pc ();
        let icc_en = Util.and2 c "icc_en" ex_adv cc_en in
        C.connect c icc ~en:icc_en ~d:icc_next ();
        let cwp_next =
          C.comb3 c "cwp_next" cwp_bits cwp is_save is_restore (fun w sv rs ->
              if sv <> 0 then (w + nw - 1) mod nw
              else if rs <> 0 then (w + 1) mod nw
              else w)
        in
        let win_op = Util.or2 c "win_op" is_save is_restore in
        let cwp_en = Util.and2 c "cwp_en" ex_adv win_op in
        C.connect c cwp ~en:cwp_en ~d:cwp_next ();
        (ex_result_r, ex_next_pc_r, ex_adv, jmpl_mis))
  in

  (* ---- memory stage (LSU side) ---- *)
  let mem_mis, st_value, dreq =
    iu "me" (fun () ->
        let is_mem = Util.or2 c "is_mem" is_load is_store in
        let mem_mis =
          C.comb3 c "mem_mis" 1 is_mem size_s ex_result_r (fun m sz ea ->
              if m = 0 then 0
              else if sz = 2 then Util.bit1 (ea land 3 <> 0)
              else if sz = 1 then Util.bit1 (ea land 1 <> 0)
              else 0)
        in
        let st_value =
          C.comb2 c "st_value" 32 size_s ra_st (fun sz v ->
              if sz = 0 then v land 0xFF else if sz = 1 then v land 0xFFFF else v)
        in
        let dreq =
          C.combn c "dreq" 1
            [| in_me; is_load; is_store; mem_mis; trap_pending |]
            (fun vs ->
              if vs.(0) = 0 || vs.(3) <> 0 then 0
              else if vs.(1) <> 0 then 1
              else if vs.(2) <> 0 && vs.(4) = 0 then 1
              else 0)
        in
        (mem_mis, st_value, dreq))
  in

  let dcache =
    Cache_block.build c ~scope:"cmem.dcache" ~lines:params.dcache_lines
      ~words_per_line:params.words_per_line ~with_store:true ~req:dreq ~we:is_store
      ~addr:ex_result_r ~wdata:st_value ~size:size_s
  in

  let me_load, me_done =
    iu "me" (fun () ->
        let ld_value =
          C.comb4 c "ld_value" 32 dcache.rdata ex_result_r size_s load_signed
            (fun w ea sz sg ->
              if sz = 2 then w
              else if sz = 1 then begin
                let v = (w lsr (8 * (2 - (ea land 2)))) land 0xFFFF in
                if sg <> 0 then Bitops.sext ~bits:16 v else v
              end
              else begin
                let v = (w lsr (8 * (3 - (ea land 3)))) land 0xFF in
                if sg <> 0 then Bitops.sext ~bits:8 v else v
              end)
        in
        let me_load = C.reg c "me_load" ~width:32 () in
        let ld_en =
          C.comb3 c "ld_en" 1 in_me dcache.ready is_load (fun a b d -> a land b land d)
        in
        C.connect c me_load ~en:ld_en ~d:ld_value ();
        let me_done =
          C.comb2 c "me_done" 1 dreq dcache.ready (fun r rdy -> if r = 0 then 1 else rdy)
        in
        (me_load, me_done))
  in

  (* ---- exception stage ---- *)
  let first_trap, trap_code_new =
    iu "xc" (fun () ->
      let trap_fe = Util.and2 c "trap_fe" in_fe pc_mis in
      let no_valid = Util.not1 c "no_valid" dec_valid in
      let trap_de = Util.and2 c "trap_de" in_de no_valid in
      let trap_ex =
        C.comb3 c "trap_ex" 1 ex_adv jmpl_mis div_zero (fun adv jm dz ->
            adv land (jm lor dz))
      in
      let trap_me = Util.and2 c "trap_me" in_me mem_mis in
      let trap_new =
        C.comb4 c "trap_new" 1 trap_fe trap_de trap_ex trap_me (fun a b cc d ->
            a lor b lor cc lor d)
      in
      let trap_code_new =
        C.combn c "trap_code_new" 2
          [| trap_de; trap_ex; div_zero |]
          (fun vs ->
            if vs.(0) <> 0 then trap_illegal
            else if vs.(1) <> 0 && vs.(2) <> 0 then trap_div0
            else trap_misaligned)
      in
      let pending_next =
        C.comb2 c "pending_next" 1 trap_pending trap_new (fun p n -> p lor n)
      in
      C.connect c trap_pending ~d:pending_next ();
      let first_trap =
        C.comb2 c "first_trap" 1 trap_new trap_pending (fun n p -> n land (p lxor 1))
      in
      C.connect c trap_code ~en:first_trap ~d:trap_code_new ();
      (first_trap, trap_code_new))
  in

  (* ---- supervisor state registers (State REGS of the paper's IU
     figure): mostly quiescent during benchmarks, like real silicon ---- *)
  iu "state" (fun () ->
      let y = C.reg c "y" ~width:32 () in
      let y_en = Util.and2 c "y_en" ex_adv is_mul_s in
      C.connect c y ~en:y_en ~d:mul_hi ();
      let wim = C.reg c "wim" ~width:8 ~init:1 () in
      C.connect c wim ~d:wim ();
      let tbr = C.reg c "tbr" ~width:32 () in
      let tbr_next =
        C.comb1 c "tbr_next" 32 trap_code_new (fun tc -> 0x40 lor (tc lsl 4))
      in
      C.connect c tbr ~en:first_trap ~d:tbr_next ();
      let psr_misc = C.reg c "psr_misc" ~width:12 ~init:0x0E0 () in
      C.connect c psr_misc ~d:psr_misc ());

  (* ---- writeback ---- *)
  let instret =
    iu "wb" (fun () ->
        let wb_data =
          match gl_operand with
          | Some (immb, _) ->
              Gatelevel.wb_data c ~is_load ~is_call ~is_jmpl ~is_sethi ~me_load
                ~pcb ~immb ~ex_result_r
          | None ->
              C.combn c "wb_data" 32
                [| is_load; is_call; is_jmpl; is_sethi; me_load; pc; de_imm;
                   ex_result_r |]
                (fun vs ->
                  if vs.(0) <> 0 then vs.(4)
                  else if vs.(1) <> 0 || vs.(2) <> 0 then vs.(5)
                  else if vs.(3) <> 0 then vs.(6)
                  else vs.(7))
        in
        let wb_we =
          C.comb3 c "wb_we" 1 in_wb wreg de_rd (fun w en rd ->
              w land en land Util.bit1 (rd <> 0))
        in
        let wb_addr =
          C.comb2 c "wb_addr" 8 cwp de_rd (fun w r -> regfile_slot ~nwindows:nw ~cwp:w r)
        in
        C.write_port c regfile ~we:wb_we ~addr:wb_addr ~data:wb_data;
        C.connect c pc ~en:in_wb ~d:ex_next_pc_r ();
        let instret = C.reg c "instret" ~width:32 () in
        let instret_next = C.comb1 c "instret_next" 32 instret (fun v -> v + 1) in
        C.connect c instret ~en:in_wb ~d:instret_next ();
        instret)
  in

  (* ---- sequencer next-state ---- *)
  let halted =
    iu "ctrl" (fun () ->
        let state_next =
          C.combn c "state_next" 3
            [| state; pc_mis; icache.ready; dec_valid; ex_count; me_done; trap_pending |]
            (fun vs ->
              let st = vs.(0) in
              if st = st_fe then begin
                if vs.(1) <> 0 then st_xc else if vs.(2) <> 0 then st_de else st_fe
              end
              else if st = st_de then if vs.(3) = 0 then st_xc else st_ra
              else if st = st_ra then st_ex
              else if st = st_ex then if vs.(4) = 0 then st_me else st_ex
              else if st = st_me then if vs.(5) <> 0 then st_xc else st_me
              else if st = st_xc then if vs.(6) <> 0 then st_halt else st_wb
              else if st = st_wb then st_fe
              else st_halt)
        in
        C.connect c state ~d:state_next ();
        Util.eq_const c "halted" state st_halt)
  in

  C.elaborate c;
  (* Recurrence cone for cycle-proof hang detection: the failure
     boundary below minus [instret] — the retired-instruction counter
     keeps counting in a wedged core (the sequencer still walks its
     states), so including it would make the state aperiodic and mask
     every real hang loop.  It feeds nothing but itself, so excluding
     it is sound: a cone-state recurrence still fixes the observable
     future. *)
  C.set_observed_cone c
    (List.concat_map
       (fun (p : Cache_block.ports) ->
         [ p.bus_req; p.bus_we; p.bus_addr; p.bus_wdata; p.bus_size ])
       [ icache; dcache ]
    @ [ halted; trap_code ]);
  { circuit = c; nwindows = nw; state; pc; ir; halted; trap_code; instret; icc; cwp;
    icache; dcache; regfile }

(* The off-core failure boundary: exactly the signals the simulation
   loop reads each cycle — the bus request/command/payload of both
   cache ports (System.drive_port), the sequencer's halt flag and trap
   code (run loop), and the retired-instruction counter (accounting).
   The bus_ready/bus_rdata responses the environment drives back are a
   deterministic function of this history and the memory image, so a
   fault with no structural path to any of these signals cannot
   perturb the observable run. *)
let observation_points t =
  let cache (p : Cache_block.ports) =
    [ p.bus_req; p.bus_we; p.bus_addr; p.bus_wdata; p.bus_size ]
  in
  cache t.icache @ cache t.dcache @ [ t.halted; t.trap_code; t.instret ]

let environment_inputs t =
  [ t.icache.bus_ready; t.icache.bus_rdata; t.dcache.bus_ready; t.dcache.bus_rdata ]
