(** Complete RTL system: the {!Core} microcontroller plus its off-core
    environment — main memory behind the bus, the exit port, and the
    bus-transaction driver.  This is the machine the fault-injection
    campaigns run: everything inside {!Core} is injectable, everything
    in here is the (fault-free) outside world.

    The circuit is elaborated once per {!create}; each {!load} resets
    it and installs a fresh memory image, so one [t] is reused across
    thousands of campaign runs. *)

module Asm = Sparc.Asm
module Memory = Sparc.Memory
module Bus_event = Sparc.Bus_event

type stop_reason =
  | Exited of int  (** store to the exit port; payload is the exit code *)
  | Trapped of int  (** core reached HALT; payload is the trap code *)
  | Cycle_limit
  | Aborted  (** the [on_event] callback requested an early stop *)

type t

val create : ?params:Core.params -> ?mem_latency:int -> unit -> t
(** Build and elaborate the system.  [mem_latency] is the number of
    cycles between a bus request and its acknowledgement (default 1). *)

val core : t -> Core.t

val mem_latency : t -> int
(** The bus latency the system was built with (cycles between request
    and acknowledgement). *)

val set_obs : t -> Obs.t -> unit
(** Attach a telemetry collector: every {!run}/{!run_segment} call
    then adds the cycles and instructions it simulated to the
    [rtl.cycles] / [rtl.instructions] counters.  Default {!Obs.null}
    (no cost). *)

val obs : t -> Obs.t

val set_hang_cone : t -> bool -> unit
(** Gate the observed-cone restriction of cycle-proof hang detection
    ({!Rtl.Circuit.enable_observed_cone}); on by default.  Off, the
    detector compares full state — inert on this core, whose
    free-running retired-instruction counter never recurs — which is
    the legacy watchdog behaviour the tail A/B measures against. *)

val load : t -> Asm.program -> unit
(** Reset the circuit, clear recorded events and install the program
    image.  The program must be linked at the core's reset PC. *)

val step : t -> unit
(** Advance one clock cycle (drive bus responses, clock, settle). *)

val run :
  ?on_event:(Bus_event.t -> bool) -> ?detect_loops:bool -> t -> max_cycles:int ->
  stop_reason
(** Step until the program exits, the core traps, [max_cycles] clocks
    have elapsed, or [on_event] returns [false] for a bus event
    (events are delivered in order, writes and reads alike).
    [detect_loops] (default false) arms hang-loop detection: when the
    machine provably re-enters an earlier state with no bus event in
    between, the run returns [Cycle_limit] immediately — the exact
    verdict a full run to [max_cycles] would produce, at a fraction of
    the cost.  Intended for runs already suspected to hang (e.g. lanes
    the bit-parallel batch engine ejects); the default path is
    untouched. *)

val run_segment :
  ?on_event:(Bus_event.t -> bool) -> ?detect_loops:bool -> t -> until_cycle:int ->
  max_cycles:int -> stop_reason option
(** Like {!run} but pauses once the cycle counter reaches
    [until_cycle], returning [None]; the run can then be inspected
    (e.g. compared against a golden {!checkpoint}) and resumed with
    another [run_segment] or {!run} call.  Terminal outcomes return
    [Some reason] and latch exactly as {!run} does. *)

val stop : t -> stop_reason option

(** {2 Checkpoints}

    A checkpoint freezes everything a resumed run needs: the circuit's
    sequential state, the main-memory image, the bus-driver state and
    the event counters.  Golden-run checkpoints let a faulty run (a)
    start at the last checkpoint before its injection instant instead
    of cycle 0 and (b) stop as soon as its state re-converges with the
    golden state after the fault expires — both without changing any
    verdict.  Checkpoints transfer between systems built with the same
    parameters (deterministic elaboration). *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the current state (must be between steps, which is any
    point from the caller's perspective). *)

val restore_checkpoint : t -> checkpoint -> unit
(** Rewind (or fast-forward) the system to the checkpointed state.
    The recorded-event list is cleared — {!events} afterwards returns
    only events recorded since the restore — but the event {e counts}
    continue from the checkpoint's, so comparator bookkeeping stays
    aligned with a full run. *)

val matches_checkpoint : t -> checkpoint -> bool
(** Exact state equality between the live system and a checkpoint:
    cycle counter, bus drivers, every circuit node and memory word.
    For a deterministic circuit this implies identical futures.  When
    the circuit is in differential replay ({!Rtl.Circuit.replay_start})
    the circuit-state comparison is the O(dirty) convergence check
    instead of the O(n) sweep — sound only when the checkpoint was
    taken from the same golden run the armed trace records, which is
    how the campaign engine uses it. *)

(** {2 Lane → scalar transplant}

    When the bit-parallel batch engine runs out of golden trace with a
    lane still live, the lane's state can be transplanted here and the
    run continued {e from trace end} instead of restarting from cycle
    0.  The transplant overwrites everything a resumed run depends on:
    circuit state and armed fault (via {!Rtl.Circuit.transplant}), the
    main-memory image, both bus-driver states and the event/write
    counters.  The resulting state is already settled. *)

val transplant :
  t ->
  Rtl.Circuit.transplant ->
  mem:Memory.t ->
  iport:int * bool ->
  dport:int * bool ->
  events_rev:Bus_event.t list ->
  n_events:int ->
  n_writes:int ->
  unit

val checkpoint_cycle : checkpoint -> int
val checkpoint_events : checkpoint -> int
(** Bus events recorded up to the checkpoint (reads and writes). *)

val checkpoint_writes : checkpoint -> int
val checkpoint_hash : checkpoint -> int
(** Fingerprint of circuit + memory state (diagnostics). *)

val cycles : t -> int

val instructions : t -> int
(** Value of the retired-instruction counter. *)

val events : t -> Bus_event.t list
(** All off-core bus events so far, in order (data-side only;
    instruction fetches are not recorded). *)

val writes : t -> Bus_event.t list

val memory : t -> Memory.t
(** The main-memory image behind the bus. *)

val reg : t -> int -> int
(** Architectural register of the current window (backdoor, for
    differential testing against the ISS). *)

val pp_stop : Format.formatter -> stop_reason -> unit
