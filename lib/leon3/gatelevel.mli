(** Gate-level lowering of the Leon3 IU datapath.

    Rebuilds the EX-stage functional units, the decode PLA, the fetch
    incrementer and the operand / result / writeback mux trees as
    NAND/NOR/NOT/MUX networks over 1-bit wires, multiplying the
    injection-site population toward the elaborated-netlist density
    the paper's campaigns run at.

    The invariant every function here maintains is {e name
    preservation}: each behavioural node keeps its name, width and
    value function in the gate-level elaboration — rebuilt as a packer
    over the gate bits or as a buffer of a gate output — so the
    gate-level pool is a superset of the behavioural pool by site
    name, and a fault injected by name into either elaboration
    perturbs the same function. *)

module C = Rtl.Circuit

(** {1 Generic gate combinators} *)

val and2 : C.t -> string -> C.signal -> C.signal -> C.signal

val or2 : C.t -> string -> C.signal -> C.signal -> C.signal

val xor2 : C.t -> string -> C.signal -> C.signal -> C.signal
(** Four-NAND composition; the root node carries the given name. *)

val or_tree : C.t -> string -> C.signal list -> C.signal

val and_tree : C.t -> string -> C.signal list -> C.signal

val taps : C.t -> string -> int -> C.signal -> C.signal array
(** [taps c base w s] extracts bits [base0 .. base{w-1}] of [s]. *)

val pack : C.t -> string -> C.signal array -> C.signal
(** Rebuild a word from its bits, LSB first — the behavioural-named
    boundary node of each lowered network. *)

val ripple :
  C.t -> ?prefix:string -> C.signal array -> C.signal array -> C.signal ->
  C.signal array * C.signal
(** 32-bit ripple-carry adder over bit arrays; returns (sum bits,
    carry out).  Node names extend the PR-2 ablation adder's
    [p%d]/[s%d]/[ng%d]/[np%d]/[c%d] convention, with [prefix]
    prepended. *)

(** {1 Shared EX operand taps} *)

type ops = {
  op1b : C.signal array;
  op2b : C.signal array;
  subb : C.signal array;
  unitb : C.signal array;
  iccb : C.signal array;  (** [c; v; z; n], LSB first *)
}

val operand_taps :
  C.t -> ra_op1:C.signal -> ra_op2:C.signal -> subop_s:C.signal ->
  unit_s:C.signal -> icc:C.signal -> ops

(** {1 Lowered units}

    Each is called inside the scope its behavioural counterpart lives
    in; gate innards go into a nested ["gates"] scope. *)

val fetch : C.t -> pc:C.signal -> C.signal * C.signal * C.signal array
(** [(pc_mis, pc_inc, pc bit taps)] — misalignment comparator and the
    pc+4 incrementer. *)

val decode : C.t -> ir:C.signal -> C.signal * C.signal
(** [(ctl, imm)] — a PLA with one AND term per valid opcode row
    (probed from {!Ctl.decode} on canonical words) and one OR plane
    per control bit, exact against the behavioural decoder over all
    2{^32} instruction words. *)

val op2_mux :
  C.t -> use_imm:C.signal -> de_imm:C.signal -> rdb:C.signal ->
  C.signal array * C.signal array
(** [(de_imm bit taps, selected-operand bits)]; the caller packs the
    behavioural ["op2_mux"] name. *)

val adder :
  C.t -> ops -> C.signal * C.signal array * C.signal * C.signal
(** [(sum, sum bits, flag_c, flag_v)] — subtract mask, carry-in
    select, ripple core and overflow/carry flag gates. *)

val logic : C.t -> ops -> C.signal * C.signal array

val shift : C.t -> ops -> shcnt:C.signal -> C.signal * C.signal array
(** Five-stage left barrel shifter with reverse-in/reverse-out for
    right shifts and an arithmetic fill gate. *)

val result_mux :
  C.t -> ops -> sum_bits:C.signal array -> logic_bits:C.signal array ->
  shift_bits:C.signal array -> mul_res:C.signal -> div_res:C.signal ->
  C.signal array
(** One-hot unit decode plus a per-bit mux chain; unknown unit codes
    fall through to the adder, as behaviourally. *)

val icc_next :
  C.t -> ops -> ex_result:C.signal -> flag_c:C.signal ->
  flag_v:C.signal -> C.signal array
(** Condition-code bits [c; v; z; n] LSB first: Z as a NOR tree over
    taps of the packed result word, V/C gated by unit = adder. *)

val branch :
  C.t -> ops -> cond_s:C.signal -> is_branch:C.signal -> is_call:C.signal ->
  is_jmpl:C.signal -> pcb:C.signal array -> immb:C.signal array ->
  sum_bits:C.signal array -> pc_inc:C.signal -> C.signal * C.signal
(** [(next_pc, jmpl_mis gate)] — condition mux tree, branch-target
    ripple adder and the next-pc select chain.  The caller buffers the
    jmpl_mis gate under its behavioural name. *)

val wb_data :
  C.t -> is_load:C.signal -> is_call:C.signal -> is_jmpl:C.signal ->
  is_sethi:C.signal -> me_load:C.signal -> pcb:C.signal array ->
  immb:C.signal array -> ex_result_r:C.signal -> C.signal
