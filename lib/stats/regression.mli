(** Least-squares fitting used for the diversity/Pf correlation (paper
    Fig. 7 reports [Pf = 0.0838 ln(x) - 0.0191] with [R² = 0.9246]). *)

type fit = {
  slope : float;  (** coefficient of the regressor *)
  intercept : float;
  r_squared : float;  (** coefficient of determination on the fitted data *)
  n : int;  (** number of points used *)
}

val linear : (float * float) list -> fit
(** [linear points] fits [y = slope * x + intercept] by ordinary least
    squares.  Raises [Invalid_argument] with fewer than two distinct
    x-values.  A degenerate fit (constant [y], no variance to explain)
    reports [r_squared = 0.], not [1.]. *)

val log_fit : (float * float) list -> fit
(** [log_fit points] fits [y = slope * ln x + intercept].  Points with
    non-positive [x] are dropped before fitting; raises
    [Invalid_argument] when fewer than two positive-[x] points
    remain. *)

val predict : fit -> float -> float
(** [predict fit x] evaluates a {!linear} fit at [x]. *)

val predict_log : fit -> float -> float
(** [predict_log fit x] evaluates a {!log_fit} at [x > 0]. *)

val pearson : (float * float) list -> float
(** [pearson points] is the sample correlation coefficient. *)

val ranks : float array -> float array
(** Fractional ranks (1-based); ties receive the average of the
    positions they span. *)

val spearman : (float * float) list -> float
(** Spearman rank correlation: {!pearson} over the {!ranks} of each
    coordinate.  Robust to monotone-but-nonlinear relationships —
    exactly the claim a static detectability predictor makes about
    measured failure behaviour.  Returns [0.] when either coordinate
    is constant (all tied). *)

(** {2 Cross-validation} *)

type loo = {
  predictions : float array;
      (** per-point prediction from the fit {e excluding} that point,
          in input order *)
  residuals : float array;  (** [y - prediction], in input order *)
  r_squared : float;
      (** out-of-sample R² over the held-out predictions; {e can be
          negative} when the fit predicts worse than the mean — that is
          the overfitting signal, and it is not clamped *)
  rmse : float;  (** root-mean-square held-out residual *)
}

val leave_one_out : ?log:bool -> (float * float) list -> loo
(** Leave-one-out cross-validation of {!linear} (or, with [log],
    {!log_fit}): each point is predicted by the fit over the remaining
    points.  Raises [Invalid_argument] with fewer than three points, or
    when any fold is degenerate (propagated from the underlying
    fit). *)
