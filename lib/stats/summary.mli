(** Descriptive statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
}

val of_list : float list -> t
(** [of_list xs] summarises a non-empty sample.  Raises
    [Invalid_argument] on the empty list. *)

val of_array : float array -> t

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile ([0 <= p <= 100]) using
    linear interpolation on the sorted copy of [xs] (ordered with
    [Float.compare]).  Raises [Invalid_argument] on an empty sample,
    [p] out of range, or a NaN in the sample — NaN has no rank, so it
    is rejected rather than silently mis-sorted. *)

val ratio : num:int -> den:int -> float
(** [ratio ~num ~den] is [num /. den], or [0.] when [den = 0] — the
    guarded division used for fault-to-failure percentages. *)

val pp : Format.formatter -> t -> unit
