(** Binomial proportion confidence intervals (Wilson score).

    Every Pf a campaign reports is an estimate [k/n] from [n] sampled
    injections; the Wilson score interval puts honest error bars on it.
    Unlike the normal (Wald) approximation it behaves at the edges the
    campaigns actually hit — [k = 0] gives a lower bound of exactly 0,
    [k = n] an upper bound of exactly 1, and tiny [n] still yields a
    proper (wide) interval instead of a degenerate point. *)

type interval = {
  p_hat : float;  (** the point estimate [k/n] *)
  lower : float;
  upper : float;
  n : int;
  k : int;
  z : float;  (** the critical value the bounds were computed with *)
}

val wilson : ?z:float -> k:int -> n:int -> unit -> interval
(** Wilson score interval for [k] successes in [n] trials.  [z]
    defaults to 1.96 (95% coverage).  Raises [Invalid_argument] when
    [n <= 0], [k] is outside [0, n], or [z <= 0]. *)

val of_rate : ?z:float -> p:float -> n:int -> unit -> interval
(** Wilson interval for a rate [p] that would have been observed over
    [n] trials: [k = round (p * n)], clamped into [0, n].  Used to put
    a comparable band on a {e predicted} Pf. *)

val disjoint : interval -> interval -> bool
(** The two intervals share no point — the CI-disjoint residual test
    behind the fit-break flag. *)

val width : interval -> float

val contains : interval -> float -> bool

val to_string : interval -> string
