type fit = { slope : float; intercept : float; r_squared : float; n : int }

let sums points =
  List.fold_left
    (fun (n, sx, sy, sxx, sxy, syy) (x, y) ->
      (n + 1, sx +. x, sy +. y, sxx +. (x *. x), sxy +. (x *. y), syy +. (y *. y)))
    (0, 0., 0., 0., 0., 0.)
    points

let linear points =
  let n, sx, sy, sxx, sxy, syy = sums points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Regression.linear: degenerate x values";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let ss_tot = syy -. (sy *. sy /. nf) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        acc +. (e *. e))
      0. points
  in
  (* A constant y has no variance to explain: the fit predicts it
     trivially, which is 0% explanatory power, not 100%. *)
  let r_squared = if ss_tot < 1e-12 then 0. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared; n }

let log_fit points =
  (* Non-positive x has no logarithm: drop those points rather than
     poisoning the fit with -inf/nan.  Fewer than two usable points is
     still the caller's error. *)
  let log_points =
    List.filter_map (fun (x, y) -> if x > 0. then Some (log x, y) else None) points
  in
  if List.length log_points < 2 then
    invalid_arg "Regression.log_fit: x must be positive";
  linear log_points

let predict fit x = (fit.slope *. x) +. fit.intercept

let predict_log fit x =
  if x <= 0. then invalid_arg "Regression.predict_log: x must be positive";
  (fit.slope *. log x) +. fit.intercept

type loo = {
  predictions : float array;
  residuals : float array;
  r_squared : float;
  rmse : float;
}

let leave_one_out ?(log = false) points =
  let arr = Array.of_list points in
  let n = Array.length arr in
  if n < 3 then invalid_arg "Regression.leave_one_out: need at least three points";
  let predictions =
    Array.mapi
      (fun i (x, _) ->
        let rest =
          List.filteri (fun j _ -> j <> i) points
        in
        if log then predict_log (log_fit rest) x else predict (linear rest) x)
      arr
  in
  let residuals = Array.mapi (fun i (_, y) -> y -. predictions.(i)) arr in
  let sy = Array.fold_left (fun acc (_, y) -> acc +. y) 0. arr in
  let mean_y = sy /. float_of_int n in
  let ss_tot =
    Array.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) *. (y -. mean_y))) 0. arr
  in
  let ss_res = Array.fold_left (fun acc r -> acc +. (r *. r)) 0. residuals in
  (* Out-of-sample R² genuinely can go negative (the fit predicts worse
     than the mean) — that is the signal, don't clamp it away. *)
  let r_squared = if ss_tot < 1e-12 then 0. else 1. -. (ss_res /. ss_tot) in
  let rmse = sqrt (ss_res /. float_of_int n) in
  { predictions; residuals; r_squared; rmse }

let pearson points =
  let n, sx, sy, sxx, sxy, syy = sums points in
  if n < 2 then invalid_arg "Regression.pearson: need at least two points";
  let nf = float_of_int n in
  let cov = sxy -. (sx *. sy /. nf) in
  let vx = sxx -. (sx *. sx /. nf) in
  let vy = syy -. (sy *. sy /. nf) in
  if vx < 1e-12 || vy < 1e-12 then 0. else cov /. sqrt (vx *. vy)

let ranks values =
  (* NaN admits no rank: polymorphic sort would leave it wherever the
     comparison happened to place it and [=] tie-detection never
     matches it, silently scrambling the permutation — the same class
     of bug [Summary.percentile] already rejects. *)
  if Array.exists Float.is_nan values then
    invalid_arg "Regression.ranks: NaN in input";
  let n = Array.length values in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare values.(i) values.(j)) order;
  let r = Array.make n 0. in
  (* ties share the average of the positions they span (fractional
     ranks), so equal values contribute identically *)
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && Float.compare values.(order.(!j + 1)) values.(order.(!i)) = 0
    do
      incr j
    done;
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do r.(order.(k)) <- avg done;
    i := !j + 1
  done;
  r

let spearman points =
  if List.length points < 2 then
    invalid_arg "Regression.spearman: need at least two points";
  let xs = Array.of_list (List.map fst points) in
  let ys = Array.of_list (List.map snd points) in
  let rx = ranks xs and ry = ranks ys in
  pearson (Array.to_list (Array.map2 (fun a b -> (a, b)) rx ry))
