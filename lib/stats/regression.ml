type fit = { slope : float; intercept : float; r_squared : float; n : int }

let sums points =
  List.fold_left
    (fun (n, sx, sy, sxx, sxy, syy) (x, y) ->
      (n + 1, sx +. x, sy +. y, sxx +. (x *. x), sxy +. (x *. y), syy +. (y *. y)))
    (0, 0., 0., 0., 0., 0.)
    points

let linear points =
  let n, sx, sy, sxx, sxy, syy = sums points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let nf = float_of_int n in
  let denom = (nf *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Regression.linear: degenerate x values";
  let slope = ((nf *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. nf in
  let ss_tot = syy -. (sy *. sy /. nf) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        acc +. (e *. e))
      0. points
  in
  (* A constant y has no variance to explain: the fit predicts it
     trivially, which is 0% explanatory power, not 100%. *)
  let r_squared = if ss_tot < 1e-12 then 0. else 1. -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared; n }

let log_fit points =
  (* Non-positive x has no logarithm: drop those points rather than
     poisoning the fit with -inf/nan.  Fewer than two usable points is
     still the caller's error. *)
  let log_points =
    List.filter_map (fun (x, y) -> if x > 0. then Some (log x, y) else None) points
  in
  if List.length log_points < 2 then
    invalid_arg "Regression.log_fit: x must be positive";
  linear log_points

let predict fit x = (fit.slope *. x) +. fit.intercept

let predict_log fit x =
  if x <= 0. then invalid_arg "Regression.predict_log: x must be positive";
  (fit.slope *. log x) +. fit.intercept

let pearson points =
  let n, sx, sy, sxx, sxy, syy = sums points in
  if n < 2 then invalid_arg "Regression.pearson: need at least two points";
  let nf = float_of_int n in
  let cov = sxy -. (sx *. sy /. nf) in
  let vx = sxx -. (sx *. sx /. nf) in
  let vy = syy -. (sy *. sy /. nf) in
  if vx < 1e-12 || vy < 1e-12 then 0. else cov /. sqrt (vx *. vy)
