type t = { n : int; mean : float; stddev : float; min : float; max : float }

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let sum = Array.fold_left ( +. ) 0. xs in
  let mean = sum /. float_of_int n in
  let sq_dev = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs in
  let stddev = if n < 2 then 0. else sqrt (sq_dev /. float_of_int (n - 1)) in
  let min = Array.fold_left Float.min xs.(0) xs in
  let max = Array.fold_left Float.max xs.(0) xs in
  { n; mean; stddev; min; max }

let of_list xs = of_array (Array.of_list xs)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  if Array.exists Float.is_nan xs then
    invalid_arg "Summary.percentile: NaN in sample";
  let sorted = Array.copy xs in
  (* Float.compare, not polymorphic compare: the latter is both slower
     and orders boxed floats through an unspecified total order on
     NaN. *)
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let ratio ~num ~den = if den = 0 then 0. else float_of_int num /. float_of_int den

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" t.n t.mean t.stddev t.min t.max
