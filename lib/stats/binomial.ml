type interval = {
  p_hat : float;
  lower : float;
  upper : float;
  n : int;
  k : int;
  z : float;
}

let wilson ?(z = 1.96) ~k ~n () =
  if n <= 0 then invalid_arg "Binomial.wilson: n must be positive";
  if k < 0 || k > n then invalid_arg "Binomial.wilson: k out of [0, n]";
  if z <= 0. then invalid_arg "Binomial.wilson: z must be positive";
  let nf = float_of_int n in
  let p_hat = float_of_int k /. nf in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. nf) in
  let center = (p_hat +. (z2 /. (2. *. nf))) /. denom in
  let half =
    z /. denom
    *. sqrt (((p_hat *. (1. -. p_hat)) /. nf) +. (z2 /. (4. *. nf *. nf)))
  in
  let clamp x = if x < 0. then 0. else if x > 1. then 1. else x in
  (* At the boundary counts the Wilson bound is exactly the boundary
     (algebraically center = half there); pin it so k = 0 / k = n
     intervals are [0, u] / [l, 1] without float residue. *)
  let lower = if k = 0 then 0. else clamp (center -. half) in
  let upper = if k = n then 1. else clamp (center +. half) in
  { p_hat; lower; upper; n; k; z }

let of_rate ?z ~p ~n () =
  let k = int_of_float (Float.round (p *. float_of_int n)) in
  let k = if k < 0 then 0 else if k > n then n else k in
  wilson ?z ~k ~n ()

let disjoint a b = a.upper < b.lower || b.upper < a.lower

let width i = i.upper -. i.lower

let contains i p = i.lower <= p && p <= i.upper

let to_string i =
  Printf.sprintf "%.4f [%.4f, %.4f] (k=%d n=%d z=%.2f)" i.p_hat i.lower i.upper
    i.k i.n i.z
