(* Benchmark harness: regenerates every table and figure of the paper
   (DESIGN.md section 4) and, under the [micro] selector, runs a
   Bechamel microbenchmark per experiment measuring its engine-side
   primitive.

   Usage:
     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- figure5      -- one experiment
     dune exec bench/main.exe -- micro        -- Bechamel suite
     dune exec bench/main.exe -- static       -- figure-5 static on/off A-B
     dune exec bench/main.exe -- event        -- figure-5 differential on/off A-B
     dune exec bench/main.exe -- journal      -- direct vs resume vs 4-shard-merge A/B
     dune exec bench/main.exe -- batch        -- figure-5 bit-parallel batching on/off A-B
     dune exec bench/main.exe -- iss          -- ISS vs RTL campaign cost ratio
   The RICV_SAMPLES environment variable scales campaign sample sizes
   (default 250); RICV_TRIM=0 disables trimmed campaign execution,
   RICV_STATIC=0 disables netlist static analysis and RICV_EVENT=0
   disables event-driven differential simulation (identical results
   either way, full simulation cost).  The [static] selector runs
   figure 5 twice — static pruning+collapsing on, then off — checks
   the rendered tables are byte-identical and emits a
   BENCH_static.json line with both wall clocks; [event] does the same
   A/B for the differential engine and emits BENCH_event.json with
   both wall clocks and the faulty-run comb-evaluation ratio. *)

module Experiments = Correlation.Experiments
module Context = Correlation.Context

let print_tables tables = List.iter (Report.Table.render Format.std_formatter) tables

let write_csv ~dir ~id tables =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iteri
    (fun i table ->
      let suffix = if i = 0 then "" else Printf.sprintf "-%d" i in
      let path = Filename.concat dir (id ^ suffix ^ ".csv") in
      let oc = open_out path in
      output_string oc (Report.Table.to_csv table);
      close_out oc)
    tables

let run_experiments ?csv_dir ids =
  (* One collector feeds every per-experiment span and every campaign
     counter; the end-of-run metrics (the BENCH_*.json numbers) are
     derived from it rather than from hand-rolled timers.  RICV_TRACE
     streams the same events as a JSONL file. *)
  let sink, close_sink =
    match Sys.getenv_opt "RICV_TRACE" with
    | Some path ->
        let sink, close = Obs.file_sink path in
        (Some sink, close)
    | None -> (None, fun () -> ())
  in
  let obs = match sink with Some sink -> Obs.create ~sink () | None -> Obs.create () in
  let ctx = Context.create ~obs () in
  Format.printf "injection sample size per (workload, block): %d@."
    (Context.samples ctx);
  Format.printf "trimmed execution: %s (RICV_TRIM=0 disables)@."
    (if Context.trim ctx then "on" else "off");
  List.iter
    (fun id ->
      Format.printf "@.";
      let tables = Obs.span obs ("experiment." ^ id) (fun () -> Experiments.run ctx id) in
      print_tables tables;
      (match csv_dir with Some dir -> write_csv ~dir ~id tables | None -> ());
      Format.printf "  [%s took %.1fs]@." id (Obs.span_total obs ("experiment." ^ id)))
    ids;
  let st = Context.trim_stats ctx in
  if st.Context.injections > 0 then
    Format.printf
      "@.trim totals: %d injections, %d prefiltered (%.1f%%), %d cone-pruned, \
       %d collapsed, %d early-exited@."
      st.Context.injections st.Context.skipped
      (100. *. float_of_int st.Context.skipped /. float_of_int st.Context.injections)
      st.Context.pruned st.Context.collapsed st.Context.early_exits;
  let wall =
    List.fold_left (fun acc id -> acc +. Obs.span_total obs ("experiment." ^ id)) 0. ids
  in
  Format.printf "@.metrics: %s@."
    (Obs.Json.to_string
       (Obs.Json.Obj
          [ ("injections_total", Obs.Json.Int st.Context.injections);
            ("prefiltered", Obs.Json.Int st.Context.skipped);
            ("early_exited", Obs.Json.Int st.Context.early_exits);
            ("cone_pruned", Obs.Json.Int st.Context.pruned);
            ("collapsed", Obs.Json.Int st.Context.collapsed);
            ("rtl_cycles", Obs.Json.Int (Obs.counter obs "rtl.cycles"));
            ("cycles_saved", Obs.Json.Int (Obs.counter obs "cycles.saved"));
            ("wall_seconds", Obs.Json.Float wall) ]));
  Obs.flush obs;
  close_sink ()

(* ---- static analysis A/B: figure 5 with cone pruning + fault
   collapsing on vs. off, same samples and seed.  The rendered tables
   must be byte-identical (the static passes are exact); the emitted
   BENCH_static.json line records both wall clocks and how many
   injections each mechanism classified. ---- *)

let render_tables tables =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter (Report.Table.render fmt) tables;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let run_static () =
  let run ~gate ~static =
    let obs = Obs.create () in
    let ctx = Context.create ~gate ~static ~obs () in
    let t0 = Unix.gettimeofday () in
    let tables = Experiments.run ctx "figure5" in
    let wall = Unix.gettimeofday () -. t0 in
    (tables, wall, obs, Context.trim_stats ctx, Context.samples ctx)
  in
  (* per-phase breakdown of the static pass itself (graph extraction,
     post-dominator tree, collapse probing), plus end-to-end injection
     throughput — a single wall clock hides where the pass spends and
     what the campaign gets back *)
  let phases obs =
    [ ("graph_seconds", Obs.span_total obs "static.graph");
      ("dominator_seconds", Obs.span_total obs "static.dominator");
      ("collapse_seconds", Obs.span_total obs "static.collapse") ]
  in
  let ab ~gate label =
    Format.printf "figure 5 (%s), static analysis on:@.@." label;
    let tables_on, wall_on, obs_on, st_on, samples = run ~gate ~static:true in
    print_tables tables_on;
    Format.printf "  [%.1fs]@.@.figure 5 (%s), static analysis off:@.@." wall_on label;
    let tables_off, wall_off, _, st_off, _ = run ~gate ~static:false in
    print_tables tables_off;
    Format.printf "  [%.1fs]@." wall_off;
    let identical = render_tables tables_on = render_tables tables_off in
    let ips wall st =
      if wall > 0. then float_of_int st.Context.injections /. wall else 0.
    in
    let open Obs.Json in
    let json =
      Obj
        [ ("samples", Int samples);
          ( "static",
            Obj
              ([ ("wall_seconds", Float wall_on);
                 ("injections_per_second", Float (ips wall_on st_on));
                 ("injections", Int st_on.Context.injections);
                 ("prefiltered", Int st_on.Context.skipped);
                 ("pruned", Int st_on.Context.pruned);
                 ("collapsed", Int st_on.Context.collapsed) ]
              @ List.map (fun (k, v) -> (k, Float v)) (phases obs_on)) );
          ( "full",
            Obj
              [ ("wall_seconds", Float wall_off);
                ("injections_per_second", Float (ips wall_off st_off));
                ("injections", Int st_off.Context.injections);
                ("prefiltered", Int st_off.Context.skipped) ] );
          ("speedup", Float (if wall_on > 0. then wall_off /. wall_on else 1.));
          ("tables_identical", Bool identical) ]
    in
    if not identical then begin
      Format.printf "@.";
      prerr_endline (label ^ ": static/full figure-5 tables differ");
      exit 1
    end;
    json
  in
  let behavioural = ab ~gate:false "behavioural" in
  Format.printf "@.";
  let gate = ab ~gate:true "gate-level" in
  let open Obs.Json in
  Format.printf "@.BENCH_static.json: %s@."
    (to_string
       (Obj
          [ ("experiment", Str "figure5");
            ("behavioural", behavioural);
            ("gate_level", gate) ]))

(* ---- differential simulation A/B: figure 5 with the event-driven
   engine on vs. off, same samples and seed.  The rendered tables must
   be byte-identical (the replay is exact); BENCH_event.json records
   both wall clocks and the faulty-run comb-evaluation ratio
   (diff.nodes_evaluated / diff.golden_evaluated). ---- *)

let run_event () =
  let run ~event =
    let obs = Obs.create () in
    let ctx = Context.create ~event ~obs () in
    let t0 = Unix.gettimeofday () in
    let tables = Experiments.run ctx "figure5" in
    let wall = Unix.gettimeofday () -. t0 in
    (tables, wall, obs, Context.samples ctx)
  in
  Format.printf "figure 5, differential simulation on:@.@.";
  let tables_on, wall_on, obs_on, samples = run ~event:true in
  print_tables tables_on;
  Format.printf "  [%.1fs]@.@.figure 5, differential simulation off:@.@." wall_on;
  let tables_off, wall_off, _, _ = run ~event:false in
  print_tables tables_off;
  Format.printf "  [%.1fs]@." wall_off;
  let identical = render_tables tables_on = render_tables tables_off in
  let evaluated = Obs.counter obs_on "diff.nodes_evaluated" in
  let dense = Obs.counter obs_on "diff.golden_evaluated" in
  let ratio = if dense > 0 then float_of_int evaluated /. float_of_int dense else 0. in
  let open Obs.Json in
  Format.printf "@.BENCH_event.json: %s@."
    (to_string
       (Obj
          [ ("experiment", Str "figure5");
            ("samples", Int samples);
            ( "event",
              Obj
                [ ("wall_seconds", Float wall_on);
                  ("nodes_evaluated", Int evaluated);
                  ("golden_evaluated", Int dense);
                  ("eval_ratio", Float ratio) ] );
            ("full", Obj [ ("wall_seconds", Float wall_off) ]);
            ("speedup", Float (if wall_on > 0. then wall_off /. wall_on else 1.));
            ("tables_identical", Bool identical) ]));
  if not identical then begin
    prerr_endline "event/full figure-5 tables differ";
    exit 1
  end

(* ---- batch A/B: figure 5 with bit-parallel fault batching on vs.
   off, same samples and seed.  The batch engine packs the golden
   machine and up to 63 faulty machines into bit-lanes of one native
   int per netlist node and settles them change-driven against the
   golden trace; verdicts are byte-identical to the scalar engine by
   construction, and the rendered tables are asserted to be.
   BENCH_batch.json records both wall clocks, the pass/lane/ejection
   counts and the mean lane occupancy. ---- *)

let run_batch () =
  let run ~batch =
    let obs = Obs.create () in
    let ctx = Context.create ~batch ~obs () in
    let t0 = Unix.gettimeofday () in
    let tables = Experiments.run ctx "figure5" in
    let wall = Unix.gettimeofday () -. t0 in
    (tables, wall, obs, Context.samples ctx)
  in
  Format.printf "figure 5, bit-parallel batching on:@.@.";
  let tables_on, wall_on, obs_on, samples = run ~batch:true in
  print_tables tables_on;
  Format.printf "  [%.1fs]@.@.figure 5, bit-parallel batching off:@.@." wall_on;
  let tables_off, wall_off, _, _ = run ~batch:false in
  print_tables tables_off;
  Format.printf "  [%.1fs]@." wall_off;
  let identical = render_tables tables_on = render_tables tables_off in
  let passes = Obs.counter obs_on "batch.passes" in
  let lanes = Obs.counter obs_on "batch.lanes" in
  let ejected = Obs.counter obs_on "batch.ejected" in
  let occupancy =
    match Obs.histogram obs_on "batch.occupancy" with
    | Some h when h.Obs.count > 0 -> h.Obs.sum /. float_of_int h.Obs.count
    | Some _ | None -> 0.
  in
  let open Obs.Json in
  Format.printf "@.BENCH_batch.json: %s@."
    (to_string
       (Obj
          [ ("experiment", Str "figure5");
            ("samples", Int samples);
            ( "batch",
              Obj
                [ ("wall_seconds", Float wall_on);
                  ("passes", Int passes);
                  ("lanes", Int lanes);
                  ("ejected", Int ejected);
                  ("mean_occupancy", Float occupancy) ] );
            ("scalar", Obj [ ("wall_seconds", Float wall_off) ]);
            ("speedup", Float (if wall_on > 0. then wall_off /. wall_on else 1.));
            ("tables_identical", Bool identical) ]));
  if not identical then begin
    prerr_endline "batch/scalar figure-5 tables differ";
    exit 1
  end

(* ---- tail A/B: figure 5 with the watchdog-tail machinery on vs.
   off, batching on in both runs, same samples and seed.  With the
   tail off, batch-ejected hang candidates restart from cycle 0 in a
   scalar circuit and burn the full watchdog budget; with it on they
   advance together in dense bit-parallel mode past trace end, retire
   early via per-lane cycle proofs, and any lone survivor is
   transplanted — not restarted — into the scalar circuit.  Verdict
   tables are byte-identical by construction and asserted to be.
   BENCH_tail.json records both wall clocks plus the tail
   decomposition: watchdog cycles burned vs. proven away, transplant
   prefix cycles saved, dense-tail occupancy, and the hang-candidate
   watchdog share of wall-clock before and after. ---- *)

let run_tail () =
  let run ~tail =
    let obs = Obs.create () in
    let ctx = Context.create ~batch:true ~tail ~obs () in
    let t0 = Unix.gettimeofday () in
    let tables = Experiments.run ctx "figure5" in
    let wall = Unix.gettimeofday () -. t0 in
    (tables, wall, obs, Context.samples ctx)
  in
  Format.printf "figure 5, watchdog tail on:@.@.";
  let tables_on, wall_on, obs_on, samples = run ~tail:true in
  print_tables tables_on;
  Format.printf "  [%.1fs]@.@.figure 5, watchdog tail off:@.@." wall_on;
  let tables_off, wall_off, obs_off, _ = run ~tail:false in
  print_tables tables_off;
  Format.printf "  [%.1fs]@." wall_off;
  let identical = render_tables tables_on = render_tables tables_off in
  let mean obs name =
    match Obs.histogram obs name with
    | Some h when h.Obs.count > 0 -> h.Obs.sum /. float_of_int h.Obs.count
    | Some _ | None -> 0.
  in
  let watchdog obs wall =
    let s = Obs.span_total obs "tail.watchdog" +. Obs.span_total obs "tail.dense" in
    (s, if wall > 0. then s /. wall else 0.)
  in
  let wd_on, share_on = watchdog obs_on wall_on in
  let wd_off, share_off = watchdog obs_off wall_off in
  let open Obs.Json in
  Format.printf "@.BENCH_tail.json: %s@."
    (to_string
       (Obj
          [ ("experiment", Str "figure5");
            ("samples", Int samples);
            ( "tail",
              Obj
                [ ("wall_seconds", Float wall_on);
                  ("ejected", Int (Obs.counter obs_on "batch.ejected"));
                  ("cycle_proofs", Int (Obs.counter obs_on "tail.cycle_proofs"));
                  ("transplants", Int (Obs.counter obs_on "tail.transplants"));
                  ( "watchdog_cycles_saved",
                    Int (Obs.counter obs_on "tail.cycles_saved") );
                  ( "transplant_prefix_cycles_saved",
                    Int (Obs.counter obs_on "tail.prefix_saved") );
                  ("mean_cycle_length", Float (mean obs_on "tail.cycle_length"));
                  ("mean_occupancy", Float (mean obs_on "tail.occupancy"));
                  ("dense_seconds", Float (Obs.span_total obs_on "tail.dense"));
                  ("watchdog_seconds", Float wd_on);
                  ("watchdog_share", Float share_on) ] );
            ( "no_tail",
              Obj
                [ ("wall_seconds", Float wall_off);
                  ("ejected", Int (Obs.counter obs_off "batch.ejected"));
                  ("watchdog_seconds", Float wd_off);
                  ("watchdog_share", Float share_off) ] );
            ("speedup", Float (if wall_on > 0. then wall_off /. wall_on else 1.));
            ("tables_identical", Bool identical) ]));
  if not identical then begin
    prerr_endline "tail/no-tail figure-5 tables differ";
    exit 1
  end

(* ---- journal A/B: one campaign three ways — direct, killed-and-
   resumed, and 4-shard-merged — asserting all three verdict tables
   are byte-identical and emitting BENCH_journal.json with the wall
   clocks.  This is the durability counterpart of the paper's cost
   table: a 25,478-hour campaign is only realistic if partial work
   survives pre-emption and distributes over machines. ---- *)

let run_journal () =
  let module FC = Fault_injection.Campaign in
  let module FJ = Fault_injection.Journal in
  let samples =
    match Sys.getenv_opt "RICV_SAMPLES" with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | Some _ | None -> 250)
    | None -> 250
  in
  let entry = Workloads.Suite.find "rspeed" in
  let prog = entry.Workloads.Suite.build ~iterations:1 ~dataset:0 in
  let target = Fault_injection.Injection.Iu in
  let config shard = { FC.default_config with FC.sample_size = Some samples; shard } in
  let sys = Leon3.System.create () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let tmp () =
    let p = Filename.temp_file "ricv_bench_journal" ".jsonl" in
    Sys.remove p;
    p
  in
  Format.printf "journal A/B: rspeed, %d sites, target iu@." samples;
  let (_, results0), wall_direct = time (fun () -> FC.run ~config:(config (1, 1)) sys prog target) in
  Format.printf "direct:         %d verdicts in %.1fs@." (List.length results0) wall_direct;
  (* kill-and-resume: journal a full run, truncate it to half the
     verdicts plus a torn tail, resume from the stub *)
  let jpath = tmp () in
  let shard_paths = List.init 4 (fun _ -> tmp ()) in
  Fun.protect ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) (jpath :: shard_paths))
  @@ fun () ->
  ignore (FC.run ~config:(config (1, 1)) ~journal:jpath sys prog target);
  let lines = In_channel.with_open_text jpath In_channel.input_lines in
  let keep = 1 + (List.length results0 / 2) in
  let oc = open_out jpath in
  List.iteri (fun i l -> if i < keep then (output_string oc l; output_char oc '\n')) lines;
  output_string oc {|{"type":"verdict","i":0,"site":"torn|};
  close_out oc;
  let obs = Obs.create () in
  let (_, resumed), wall_resume =
    time (fun () -> FC.run ~config:(config (1, 1)) ~obs ~journal:jpath ~resume:true sys prog target)
  in
  let replayed = Obs.counter obs "journal.replayed" in
  let resume_identical = resumed = results0 in
  Format.printf "kill-and-resume: %d replayed + %d resimulated in %.1fs (%s)@." replayed
    (List.length resumed - replayed) wall_resume
    (if resume_identical then "identical" else "DIFFERS");
  (* 4 shards, journaled, merged *)
  let wall_shards =
    List.fold_left ( +. ) 0.
      (List.mapi
         (fun k path ->
           let _, wall =
             time (fun () -> FC.run ~config:(config (k + 1, 4)) ~journal:path sys prog target)
           in
           wall)
         shard_paths)
  in
  let loaded =
    List.map
      (fun p ->
        match FJ.load p with
        | Ok j -> j
        | Error m -> prerr_endline m; exit 1)
      shard_paths
  in
  let merged =
    match FJ.merge loaded with
    | Ok (_, merged) -> merged
    | Error m -> prerr_endline m; exit 1
  in
  let merge_identical = merged = results0 in
  Format.printf "4-shard merge:  %d verdicts in %.1fs total (%s)@." (List.length merged)
    wall_shards
    (if merge_identical then "identical" else "DIFFERS");
  let open Obs.Json in
  Format.printf "@.BENCH_journal.json: %s@."
    (to_string
       (Obj
          [ ("workload", Str "rspeed");
            ("samples", Int samples);
            ("verdicts", Int (List.length results0));
            ("direct", Obj [ ("wall_seconds", Float wall_direct) ]);
            ( "resume",
              Obj
                [ ("wall_seconds", Float wall_resume);
                  ("replayed", Int replayed);
                  ("identical", Bool resume_identical) ] );
            ( "shards",
              Obj
                [ ("count", Int 4);
                  ("wall_seconds_total", Float wall_shards);
                  ("identical", Bool merge_identical) ] ) ]));
  if not (resume_identical && merge_identical) then begin
    prerr_endline "journaled/sharded verdict tables differ from the direct run";
    exit 1
  end

(* ---- ISS vs RTL campaign cost: the paper's 85x argument, measured.
   Runs the figure-5 suite through both engines at the same sample
   size — the instruction-grain ISS campaign (reg/mem/op bit flips)
   and the RTL stuck-at campaign at IU nodes — and emits
   BENCH_iss.json with per-injection wall clocks and their ratio.
   The RTL side runs with every acceleration layer on (trim, static,
   event, batch), so the measured ratio is a conservative floor on
   the paper's ISS-vs-plain-RTL 85x. ---- *)

let run_iss () =
  let module FC = Fault_injection.Campaign in
  let module IC = Fault_injection.Iss_campaign in
  let samples =
    match Sys.getenv_opt "RICV_SAMPLES" with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | Some _ | None -> 250)
    | None -> 250
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sys = Leon3.System.create () in
  Format.printf "ISS vs RTL campaign cost: figure-5 suite, %d sites per model@.@." samples;
  let rows =
    List.map
      (fun e ->
        let prog =
          e.Workloads.Suite.build ~iterations:e.Workloads.Suite.default_iterations
            ~dataset:0
        in
        let obs = Obs.create () in
        let iss_config = { IC.default_config with IC.samples_per_model = samples } in
        let (iss_summaries, _), iss_wall =
          time (fun () -> IC.run ~config:iss_config ~obs prog)
        in
        let iss_inj =
          List.fold_left (fun a (_, s) -> a + s.FC.injections) 0 iss_summaries
        in
        let iss_instructions = Obs.counter obs "iss.instructions" in
        let rtl_config = { FC.default_config with FC.sample_size = Some samples } in
        let (rtl_summaries, _), rtl_wall =
          time (fun () ->
              FC.run ~config:rtl_config ~obs sys prog Fault_injection.Injection.Iu)
        in
        let rtl_inj =
          List.fold_left (fun a (_, s) -> a + s.FC.injections) 0 rtl_summaries
        in
        let ratio =
          if iss_wall > 0. && iss_inj > 0 && rtl_inj > 0 then
            rtl_wall /. float_of_int rtl_inj /. (iss_wall /. float_of_int iss_inj)
          else 0.
        in
        Format.printf
          "%-10s iss %5d inj %6.2fs (%5.2f ms/inj)   rtl %5d inj %6.1fs \
           (%6.1f ms/inj)   ratio %5.1fx@."
          e.Workloads.Suite.name iss_inj iss_wall
          (if iss_inj = 0 then 0. else 1000. *. iss_wall /. float_of_int iss_inj)
          rtl_inj rtl_wall
          (if rtl_inj = 0 then 0. else 1000. *. rtl_wall /. float_of_int rtl_inj)
          ratio;
        (e.Workloads.Suite.name, iss_inj, iss_wall, iss_instructions, rtl_inj, rtl_wall))
      Workloads.Suite.table1_set
  in
  let iss_inj = List.fold_left (fun a (_, i, _, _, _, _) -> a + i) 0 rows in
  let iss_wall = List.fold_left (fun a (_, _, w, _, _, _) -> a +. w) 0. rows in
  let iss_instructions = List.fold_left (fun a (_, _, _, n, _, _) -> a + n) 0 rows in
  let rtl_inj = List.fold_left (fun a (_, _, _, _, i, _) -> a + i) 0 rows in
  let rtl_wall = List.fold_left (fun a (_, _, _, _, _, w) -> a +. w) 0. rows in
  let per_injection_ratio =
    if iss_wall > 0. && iss_inj > 0 && rtl_inj > 0 then
      rtl_wall /. float_of_int rtl_inj /. (iss_wall /. float_of_int iss_inj)
    else 0.
  in
  Format.printf "@.totals: iss %.2fs / %d inj, rtl %.1fs / %d inj, ratio %.1fx \
                 (paper: 85x vs plain RTL)@."
    iss_wall iss_inj rtl_wall rtl_inj per_injection_ratio;
  let open Obs.Json in
  Format.printf "@.BENCH_iss.json: %s@."
    (to_string
       (Obj
          [ ("experiment", Str "iss-vs-rtl");
            ("suite", Str "figure5");
            ("samples", Int samples);
            ( "workloads",
              List
                (List.map
                   (fun (name, ii, iw, _, ri, rw) ->
                     Obj
                       [ ("name", Str name);
                         ("iss_injections", Int ii);
                         ("iss_wall_seconds", Float iw);
                         ("rtl_injections", Int ri);
                         ("rtl_wall_seconds", Float rw) ])
                   rows) );
            ( "iss",
              Obj
                [ ("wall_seconds", Float iss_wall);
                  ("injections", Int iss_inj);
                  ("instructions", Int iss_instructions) ] );
            ("rtl", Obj [ ("wall_seconds", Float rtl_wall); ("injections", Int rtl_inj) ]);
            ("per_injection_ratio", Float per_injection_ratio);
            ("paper_ratio", Float 85.);
            ( "notes",
              Str
                "RTL side runs with trim/static/event/batch acceleration on; the \
                 ratio is a floor on the paper's ISS-vs-plain-RTL 85x" ) ]))

(* ---- Campaign service: golden-trace cache economics.  A repeat
   submission to `ricv serve` must pay a hash lookup instead of the
   golden RTL simulation + static analysis a cold preparation costs,
   and must run zero further golden cycles.  Measures both sides and
   the warm-vs-cold campaign wall clock, asserting the warm verdict
   table stays byte-identical. ---- *)

let run_serve () =
  let module P = Serve.Protocol in
  let module FC = Fault_injection.Campaign in
  let module Journal = Fault_injection.Journal in
  let samples =
    match Sys.getenv_opt "RICV_SAMPLES" with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | Some _ | None -> 250)
    | None -> 250
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let spec =
    { (P.default_spec ~engine:P.Rtl ~workload:"rspeed") with
      P.iterations = Some 1;
      samples }
  in
  let prog =
    (Workloads.Suite.find "rspeed").Workloads.Suite.build ~iterations:1 ~dataset:0
  in
  let config = { FC.default_config with FC.sample_size = Some samples } in
  let target = Fault_injection.Injection.Iu in
  let sys = Leon3.System.create () in
  let obs = Obs.create () in
  let cache = Serve.Cache.create ~obs () in
  let key = Serve.Cache.key ~prog_hash:(Journal.hash_program prog) spec in
  let build () = Serve.Cache.Rtl_prepared (FC.prepare ~config ~obs sys prog target) in
  Format.printf "campaign service golden-trace cache: rspeed, %d sites@.@." samples;
  let (_, hit0), wall_miss = time (fun () -> Serve.Cache.find_or_build cache ~key ~build) in
  let golden_miss = Obs.span_count obs "golden" in
  (* one lookup is sub-microsecond: average over a batch *)
  let lookups = 1000 in
  let (v, hit1), wall_hits = time (fun () ->
      let r = ref (Serve.Cache.find_or_build cache ~key ~build) in
      for _ = 2 to lookups do
        r := Serve.Cache.find_or_build cache ~key ~build
      done;
      !r)
  in
  let wall_hit = wall_hits /. float_of_int lookups in
  let golden_hit = Obs.span_count obs "golden" - golden_miss in
  let prepared =
    match v with Serve.Cache.Rtl_prepared p -> p | Serve.Cache.Iss_prepared _ -> assert false
  in
  Format.printf
    "prepare (miss)  %8.3fs  (%d golden run%s)@.lookup  (hit)   %8.2fus per lookup \
     (%d golden runs over %d lookups)@."
    wall_miss golden_miss
    (if golden_miss = 1 then "" else "s")
    (1e6 *. wall_hit) golden_hit lookups;
  let (cold_summaries, _), wall_cold = time (fun () -> FC.run ~config sys prog target) in
  let (warm_summaries, _), wall_warm =
    time (fun () -> FC.run ~config ~prepared sys prog target)
  in
  let identical = cold_summaries = warm_summaries in
  Format.printf
    "campaign cold   %8.3fs@.campaign warm   %8.3fs  (prepared from cache, identical %b)@."
    wall_cold wall_warm identical;
  let open Obs.Json in
  Format.printf "@.BENCH_serve.json: %s@."
    (to_string
       (Obj
          [ ("experiment", Str "serve-cache");
            ("workload", Str "rspeed");
            ("samples", Int samples);
            ( "prepare",
              Obj
                [ ("wall_seconds", Float wall_miss);
                  ("golden_runs", Int golden_miss) ] );
            ( "cache_hit",
              Obj
                [ ("wall_seconds", Float wall_hit); ("golden_runs", Int golden_hit) ] );
            ( "campaign",
              Obj
                [ ("cold_wall_seconds", Float wall_cold);
                  ("warm_wall_seconds", Float wall_warm);
                  ("identical", Bool identical) ] );
            ( "prepare_speedup",
              Float (if wall_hit > 0. then wall_miss /. wall_hit else 0.) ) ]));
  if hit0 || not hit1 || golden_hit <> 0 || not identical then begin
    prerr_endline
      "serve cache invariants violated (miss/hit sequence, golden-run count or \
       warm-table identity)";
    exit 1
  end

(* ---- Bechamel microbenchmarks: one per table/figure, measuring the
   dominant engine primitive behind that experiment. ---- *)

let micro_tests () =
  let open Bechamel in
  let entry name = Workloads.Suite.find name in
  let prog_of e =
    e.Workloads.Suite.build ~iterations:e.Workloads.Suite.default_iterations ~dataset:0
  in
  let ttsprk = prog_of (entry "ttsprk") in
  let rspeed = prog_of (entry "rspeed") in
  let sys = Leon3.System.create () in
  let golden = Fault_injection.Campaign.golden_run sys ttsprk ~max_cycles:5_000_000 in
  let sites =
    Array.of_list
      (Fault_injection.Injection.sites (Leon3.System.core sys)
         Fault_injection.Injection.Iu)
  in
  let rng = Stats.Rng.create 99 in
  let fault_run () =
    let site = sites.(Stats.Rng.int rng (Array.length sites)) in
    ignore
      (Fault_injection.Campaign.run_one sys ttsprk golden site Rtl.Circuit.Stuck_at_1)
  in
  let excerpt = Workloads.Excerpts.subset_a "a2time" in
  [ Test.make ~name:"table1/iss-characterisation" (Staged.stage (fun () ->
        ignore (Diversity.Metric.of_program ttsprk)));
    Test.make ~name:"figure3/excerpt-golden-rtl" (Staged.stage (fun () ->
        Leon3.System.load sys excerpt;
        ignore (Leon3.System.run sys ~max_cycles:1_000_000)));
    Test.make ~name:"figure4/rspeed-iss" (Staged.stage (fun () ->
        ignore (Iss.Emulator.execute rspeed)));
    Test.make ~name:"figure5/iu-fault-run" (Staged.stage fault_run);
    Test.make ~name:"figure6/cmem-golden-rtl" (Staged.stage (fun () ->
        Leon3.System.load sys ttsprk;
        ignore (Leon3.System.run sys ~max_cycles:5_000_000)));
    Test.make ~name:"figure7/log-fit" (Staged.stage (fun () ->
        ignore
          (Stats.Regression.log_fit
             [ (8., 10.); (11., 14.); (20., 16.); (47., 30.); (50., 31.); (54., 33.) ])));
    Test.make ~name:"simtime/iss-run" (Staged.stage (fun () ->
        ignore (Iss.Emulator.execute ttsprk))) ]

let run_micro () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) () in
  let suite =
    Test.make_grouped ~name:"experiments" ~fmt:"%s %s" (micro_tests ())
  in
  let raw = Benchmark.all cfg instances suite in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let analyzed = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Format.printf "%-34s %s: %.0f ns/run@." test name est
          | Some [] | None -> Format.printf "%-34s %s: (no estimate)@." test name)
        tbl)
    analyzed

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let csv_dir, args =
    match args with
    | "csv" :: rest -> (Some "results", rest)
    | _ -> (None, args)
  in
  match args with
  | [] -> run_experiments ?csv_dir Experiments.all_ids
  | [ "micro" ] -> run_micro ()
  | [ "static" ] -> run_static ()
  | [ "event" ] -> run_event ()
  | [ "journal" ] -> run_journal ()
  | [ "batch" ] -> run_batch ()
  | [ "tail" ] -> run_tail ()
  | [ "iss" ] -> run_iss ()
  | [ "serve" ] -> run_serve ()
  | ids when List.for_all (fun id -> List.mem id Experiments.all_ids) ids ->
      run_experiments ?csv_dir ids
  | _ ->
      prerr_endline
        ("usage: main.exe [csv] [micro | static | event | journal | batch | tail | iss | serve | "
        ^ String.concat " | " Experiments.all_ids ^ " ...]");
      exit 2
