lib/report/table.ml: Format List Printf String
