module C = Rtl.Circuit

let bit1 b = if b then 1 else 0

let not1 c nm a = C.comb1 c nm 1 a (fun x -> x lxor 1)

let and2 c nm a b = C.comb2 c nm 1 a b (fun x y -> x land y)

let or2 c nm a b = C.comb2 c nm 1 a b (fun x y -> x lor y)

let eq_const c nm a k = C.comb1 c nm 1 a (fun x -> bit1 (x = k))

let mux2 c nm width ~sel a b = C.comb3 c nm width sel a b (fun s x y -> if s <> 0 then x else y)

let slice c nm a ~hi ~lo = C.comb1 c nm (hi - lo + 1) a (fun x -> Bitops.bits ~hi ~lo x)
