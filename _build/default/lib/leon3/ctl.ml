module Isa = Sparc.Isa
module Encode = Sparc.Encode

let width = 27

let b_valid = 0
let b_is_load = 1
let b_is_store = 2
let b_is_branch = 3
let b_is_call = 4
let b_is_sethi = 5
let b_is_jmpl = 6
let b_is_save = 7
let b_is_restore = 8
let b_wreg = 9
let b_cc_en = 10
let b_use_imm = 11
let b_load_signed = 12
let b_is_mul = 13
let b_is_div = 14

let f_unit = (15, 3)
let f_subop = (18, 3)
let f_size = (21, 2)
let f_cond = (23, 4)

let unit_adder = 0
let unit_logic = 1
let unit_shift = 2
let unit_mul = 3
let unit_div = 4

let sub_add = 0
let sub_sub = 1
let sub_addx = 2
let sub_subx = 3
let sub_and = 0
let sub_andn = 1
let sub_or = 2
let sub_orn = 3
let sub_xor = 4
let sub_xnor = 5
let sub_sll = 0
let sub_srl = 1
let sub_sra = 2
let sub_umul = 0
let sub_smul = 1
let sub_udiv = 0
let sub_sdiv = 1

let flag b = 1 lsl b

let field (lo, _) v = v lsl lo

let unit_subop (op : Isa.opcode) =
  match op with
  | Add | Addcc -> (unit_adder, sub_add)
  | Addx | Addxcc -> (unit_adder, sub_addx)
  | Sub | Subcc -> (unit_adder, sub_sub)
  | Subx | Subxcc -> (unit_adder, sub_subx)
  | And | Andcc -> (unit_logic, sub_and)
  | Andn | Andncc -> (unit_logic, sub_andn)
  | Or | Orcc -> (unit_logic, sub_or)
  | Orn | Orncc -> (unit_logic, sub_orn)
  | Xor | Xorcc -> (unit_logic, sub_xor)
  | Xnor | Xnorcc -> (unit_logic, sub_xnor)
  | Sll -> (unit_shift, sub_sll)
  | Srl -> (unit_shift, sub_srl)
  | Sra -> (unit_shift, sub_sra)
  | Umul | Umulcc -> (unit_mul, sub_umul)
  | Smul | Smulcc -> (unit_mul, sub_smul)
  | Udiv -> (unit_div, sub_udiv)
  | Sdiv -> (unit_div, sub_sdiv)
  | Save | Restore | Jmpl
  | Ld | Ldub | Ldsb | Lduh | Ldsh | St | Stb | Sth ->
      (unit_adder, sub_add)
  | Sethi | Call
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs ->
      (unit_adder, sub_add)

let size_of (op : Isa.opcode) =
  match op with
  | Ldub | Ldsb | Stb -> 0
  | Lduh | Ldsh | Sth -> 1
  | Ld | St -> 2
  | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc | Udiv | Sdiv
  | Save | Restore | Jmpl | Sethi | Call
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs ->
      2

let decode word =
  match Encode.decode word with
  | None -> 0
  | Some instr -> (
      let op = Isa.opcode_of_instr instr in
      let base = flag b_valid in
      match instr with
      | Isa.Alu { op2; _ } ->
          let u, s = unit_subop op in
          let use_imm = match op2 with Isa.Imm _ -> flag b_use_imm | Isa.Reg _ -> 0 in
          base lor flag b_wreg lor use_imm
          lor (if Isa.writes_icc op then flag b_cc_en else 0)
          lor (if op = Isa.Jmpl then flag b_is_jmpl else 0)
          lor (if op = Isa.Save then flag b_is_save else 0)
          lor (if op = Isa.Restore then flag b_is_restore else 0)
          lor (if u = unit_mul then flag b_is_mul else 0)
          lor (if u = unit_div then flag b_is_div else 0)
          lor field f_unit u lor field f_subop s lor field f_size 2
      | Isa.Mem { op2; _ } ->
          let use_imm = match op2 with Isa.Imm _ -> flag b_use_imm | Isa.Reg _ -> 0 in
          let signed = match op with Isa.Ldsb | Isa.Ldsh -> flag b_load_signed | _ -> 0 in
          base lor use_imm lor signed
          lor (if Isa.is_load op then flag b_is_load lor flag b_wreg else flag b_is_store)
          lor field f_unit unit_adder lor field f_subop sub_add
          lor field f_size (size_of op)
      | Isa.Sethi_i _ ->
          base lor flag b_is_sethi lor flag b_wreg lor flag b_use_imm lor field f_size 2
      | Isa.Branch_i _ ->
          base lor flag b_is_branch lor field f_cond (Encode.cond_code op)
          lor field f_size 2
      | Isa.Call_i _ -> base lor flag b_is_call lor flag b_wreg lor field f_size 2)

let imm_of word =
  match Encode.decode word with
  | None -> 0
  | Some instr -> (
      match instr with
      | Isa.Alu { op2; _ } | Isa.Mem { op2; _ } -> (
          match op2 with Isa.Imm i -> Bitops.of_int i | Isa.Reg _ -> 0)
      | Isa.Sethi_i { imm22; _ } -> Bitops.of_int (imm22 lsl 10)
      | Isa.Branch_i { disp22; _ } -> Bitops.of_int (disp22 * 4)
      | Isa.Call_i { disp30 } -> Bitops.of_int (disp30 * 4))
