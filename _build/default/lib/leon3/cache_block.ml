module C = Rtl.Circuit

type ports = {
  ready : C.signal;
  rdata : C.signal;
  hit : C.signal;
  bus_req : C.signal;
  bus_we : C.signal;
  bus_addr : C.signal;
  bus_wdata : C.signal;
  bus_size : C.signal;
  bus_ready : C.signal;
  bus_rdata : C.signal;
  tag_mem : C.memory;
  data_mem : C.memory;
}

let log2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  assert (n > 0 && n land (n - 1) = 0);
  go 0 n

let st_idle = 0
let st_fill = 1
let st_write = 2

let build c ~scope ~lines ~words_per_line ~with_store ~req ~we ~addr ~wdata ~size =
  C.scoped c scope (fun () ->
      let offset_bits = log2 words_per_line in
      let index_bits = log2 lines in
      let tag_lo = 2 + offset_bits + index_bits in
      let tag_bits = 32 - tag_lo in
      let line_bytes = words_per_line * 4 in

      let tag_mem = C.memory c "tags" ~words:lines ~width:(tag_bits + 1) in
      let data_mem = C.memory c "data" ~words:(lines * words_per_line) ~width:32 in

      let state = C.reg c "state" ~width:2 ~init:st_idle () in
      let fill_cnt = C.reg c "fill_cnt" ~width:(offset_bits + 1) () in

      let bus_ready = C.input c "bus_ready" 1 in
      let bus_rdata = C.input c "bus_rdata" 32 in

      let index = Util.slice c "index" addr ~hi:(tag_lo - 1) ~lo:(2 + offset_bits) in
      let word_in_line = Util.slice c "word_off" addr ~hi:(2 + offset_bits - 1) ~lo:2 in
      let tag = Util.slice c "tag" addr ~hi:31 ~lo:tag_lo in

      let tag_rd = C.read_port c "tag_rd" tag_mem index in
      let hit =
        C.comb2 c "hit" 1 tag_rd tag (fun entry t ->
            Util.bit1 (entry lsr tag_bits <> 0 && entry land ((1 lsl tag_bits) - 1) = t))
      in
      let data_idx =
        C.comb2 c "data_idx" (index_bits + offset_bits) index word_in_line (fun i w ->
            (i lsl offset_bits) lor w)
      in
      let rdata = C.read_port c "data_rd" data_mem data_idx in

      let in_idle = Util.eq_const c "in_idle" state st_idle in
      let in_fill = Util.eq_const c "in_fill" state st_fill in
      let in_write = Util.eq_const c "in_write" state st_write in

      let last_word = Util.eq_const c "last_word" fill_cnt (words_per_line - 1) in

      (* FSM next-state *)
      let state_next =
        C.combn c "state_next" 2
          [| state; req; we; hit; bus_ready; fill_cnt |]
          (fun vs ->
            let st = vs.(0) and rq = vs.(1) and w = vs.(2) in
            let h = vs.(3) and rdy = vs.(4) and cnt = vs.(5) in
            if st = st_idle then begin
              if rq <> 0 && w <> 0 && with_store then st_write
              else if rq <> 0 && w = 0 && h = 0 then st_fill
              else st_idle
            end
            else if st = st_fill then begin
              if rdy <> 0 && cnt = words_per_line - 1 then st_idle else st_fill
            end
            else if st = st_write then if rdy <> 0 then st_idle else st_write
            else st_idle)
      in
      C.connect c state ~d:state_next ();

      let fill_cnt_next =
        C.comb3 c "fill_cnt_next" (offset_bits + 1) state fill_cnt bus_ready (fun st cnt rdy ->
            if st = st_idle then 0 else if st = st_fill && rdy <> 0 then cnt + 1 else cnt)
      in
      C.connect c fill_cnt ~d:fill_cnt_next ();

      (* Line base address for refills. *)
      let line_base =
        C.comb1 c "line_base" 32 addr (fun a -> a land lnot (line_bytes - 1))
      in
      let fill_addr =
        C.comb2 c "fill_addr" 32 line_base fill_cnt (fun base cnt -> base + (cnt lsl 2))
      in

      (* Fill write port into the data array. *)
      let fill_we = Util.and2 c "fill_we" in_fill bus_ready in
      let fill_idx =
        C.comb2 c "fill_idx" (index_bits + offset_bits) index fill_cnt (fun i cnt ->
            (i lsl offset_bits) lor (cnt land (words_per_line - 1)))
      in
      C.write_port c data_mem ~we:fill_we ~addr:fill_idx ~data:bus_rdata;

      (* Tag update once the last word lands. *)
      let tag_we =
        C.comb3 c "tag_we" 1 in_fill bus_ready last_word (fun f r l -> f land r land l)
      in
      let tag_wdata =
        C.comb1 c "tag_wdata" (tag_bits + 1) tag (fun t -> (1 lsl tag_bits) lor t)
      in
      C.write_port c tag_mem ~we:tag_we ~addr:index ~data:tag_wdata;

      (* Store path: write-through to the bus, write-around on miss. *)
      if with_store then begin
        let merged =
          C.combn c "st_merge" 32
            [| rdata; wdata; size; addr |]
            (fun vs ->
              let old = vs.(0) and v = vs.(1) and sz = vs.(2) and a = vs.(3) in
              match sz with
              | 2 -> v
              | 1 ->
                  let sh = 8 * (2 - (a land 2)) in
                  old land lnot (0xFFFF lsl sh) lor ((v land 0xFFFF) lsl sh)
              | _ ->
                  let sh = 8 * (3 - (a land 3)) in
                  old land lnot (0xFF lsl sh) lor ((v land 0xFF) lsl sh))
        in
        let st_upd_we =
          C.comb3 c "st_upd_we" 1 in_write bus_ready hit (fun w r h -> w land r land h)
        in
        C.write_port c data_mem ~we:st_upd_we ~addr:data_idx ~data:merged
      end;

      (* Bus port towards the environment. *)
      let bus_req = Util.or2 c "bus_req" in_fill in_write in
      let bus_we = C.comb1 c "bus_we" 1 in_write Fun.id in
      let bus_addr = Util.mux2 c "bus_addr" 32 ~sel:in_write addr fill_addr in
      let bus_wdata = C.comb1 c "bus_wdata" 32 wdata Fun.id in
      let bus_size = Util.mux2 c "bus_size" 2 ~sel:in_write size (C.const c "size_word" 2 2) in

      (* Load ready: an idle-state hit.  Store ready: bus acknowledge. *)
      let load_ready =
        C.comb4 c "load_ready" 1 in_idle req we hit (fun idle r w h ->
            idle land r land (w lxor 1) land h)
      in
      let store_ready = Util.and2 c "store_ready" in_write bus_ready in
      let ready = Util.or2 c "ready" load_ready store_ready in

      { ready; rdata; hit; bus_req; bus_we; bus_addr; bus_wdata; bus_size; bus_ready;
        bus_rdata; tag_mem; data_mem })
