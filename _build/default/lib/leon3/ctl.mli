(** Packed decode control word.

    The decode stage condenses an instruction word into a single
    27-bit control word (one RTL node, like a microcoded control bus),
    from which the later stages slice individual lines.  Field layout:

    {v
    bit 0   valid        bit 9   wreg          [17:15] unit
    bit 1   is_load      bit 10  cc_en         [20:18] subop
    bit 2   is_store     bit 11  use_imm       [22:21] size
    bit 3   is_branch    bit 12  load_signed   [26:23] cond
    bit 4   is_call      bit 13  is_mul
    bit 5   is_sethi     bit 14  is_div
    bit 6   is_jmpl
    bit 7   is_save
    bit 8   is_restore
    v} *)

val width : int

(** Flag bit numbers. *)

val b_valid : int
val b_is_load : int
val b_is_store : int
val b_is_branch : int
val b_is_call : int
val b_is_sethi : int
val b_is_jmpl : int
val b_is_save : int
val b_is_restore : int
val b_wreg : int
val b_cc_en : int
val b_use_imm : int
val b_load_signed : int
val b_is_mul : int
val b_is_div : int

(** Multi-bit field positions [(lo, width)]. *)

val f_unit : int * int
val f_subop : int * int
val f_size : int * int
val f_cond : int * int

(** Execution-unit select values. *)

val unit_adder : int
val unit_logic : int
val unit_shift : int
val unit_mul : int
val unit_div : int

(** Sub-operation values. *)

val sub_add : int
val sub_sub : int
val sub_addx : int
val sub_subx : int
val sub_and : int
val sub_andn : int
val sub_or : int
val sub_orn : int
val sub_xor : int
val sub_xnor : int
val sub_sll : int
val sub_srl : int
val sub_sra : int
val sub_umul : int
val sub_smul : int
val sub_udiv : int
val sub_sdiv : int

val decode : int -> int
(** [decode word] is the control word for an instruction word (built on
    {!Sparc.Encode.decode}, so the two engines can never disagree);
    an unsupported word yields a control word with [valid = 0]. *)

val imm_of : int -> int
(** The 32-bit immediate datapath value for an instruction word:
    [simm13] for ALU/memory forms, [imm22 << 10] for SETHI, the
    sign-extended {e byte} displacement for branches and calls. *)
