(** Small combinational builders shared by the Leon3 model blocks. *)

module C = Rtl.Circuit

val bit1 : bool -> int
(** [bit1 b] is 1 or 0. *)

val not1 : C.t -> string -> C.signal -> C.signal
val and2 : C.t -> string -> C.signal -> C.signal -> C.signal
val or2 : C.t -> string -> C.signal -> C.signal -> C.signal

val eq_const : C.t -> string -> C.signal -> int -> C.signal
(** 1-bit equality with a constant. *)

val mux2 : C.t -> string -> int -> sel:C.signal -> C.signal -> C.signal -> C.signal
(** [mux2 c name width ~sel a b] is [sel ? a : b]. *)

val slice : C.t -> string -> C.signal -> hi:int -> lo:int -> C.signal
(** Bit-field extraction node. *)
