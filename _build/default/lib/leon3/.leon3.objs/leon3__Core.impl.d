lib/leon3/core.ml: Array Bitops Cache_block Ctl Printf Rtl Sparc Util
