lib/leon3/util.ml: Bitops Rtl
