lib/leon3/cache_block.ml: Array Fun Rtl Util
