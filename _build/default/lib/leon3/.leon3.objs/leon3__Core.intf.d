lib/leon3/core.mli: Cache_block Rtl
