lib/leon3/ctl.mli:
