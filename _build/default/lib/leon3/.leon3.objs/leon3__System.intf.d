lib/leon3/system.mli: Core Format Sparc
