lib/leon3/system.ml: Cache_block Core Format List Rtl Sparc
