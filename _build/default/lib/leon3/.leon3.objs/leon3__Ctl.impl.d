lib/leon3/ctl.ml: Bitops Sparc
