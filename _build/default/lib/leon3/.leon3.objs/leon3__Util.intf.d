lib/leon3/util.mli: Rtl
