lib/leon3/cache_block.mli: Rtl
