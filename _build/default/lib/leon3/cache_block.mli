(** Structural direct-mapped cache (the CMEM fault-injection target).

    Tag, valid and data bits live in kernel memories (injectable as
    cells); the controller FSM, comparators and merge datapath are
    ordinary nodes.  Misses fill a whole line from the bus, one word
    per bus transaction; the data cache is write-through
    (write-around on miss), so every store is off-core observable. *)

module C = Rtl.Circuit

type ports = {
  ready : C.signal;  (** request complete this cycle *)
  rdata : C.signal;  (** full word containing the requested address *)
  hit : C.signal;
  bus_req : C.signal;
  bus_we : C.signal;
  bus_addr : C.signal;
  bus_wdata : C.signal;
  bus_size : C.signal;
  bus_ready : C.signal;  (** input: to be driven by the environment *)
  bus_rdata : C.signal;  (** input: to be driven by the environment *)
  tag_mem : C.memory;
  data_mem : C.memory;
}

val build :
  C.t ->
  scope:string ->
  lines:int ->
  words_per_line:int ->
  with_store:bool ->
  req:C.signal ->
  we:C.signal ->
  addr:C.signal ->
  wdata:C.signal ->
  size:C.signal ->
  ports
(** Requesters must hold [req] (and the address) stable until [ready].
    [size] is 0/1/2 for byte/half/word; [wdata] is the raw (unshifted)
    store value as it travels on the bus. *)
