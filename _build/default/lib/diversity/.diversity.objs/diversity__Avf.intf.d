lib/diversity/avf.mli: Iss Sparc
