lib/diversity/metric.mli: Iss Sparc
