lib/diversity/predictor.ml: Fault_injection List Metric Sparc Stats
