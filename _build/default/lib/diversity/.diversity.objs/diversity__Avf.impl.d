lib/diversity/avf.ml: Array Iss Leon3 List Sparc
