lib/diversity/predictor.mli: Leon3 Metric Sparc
