lib/diversity/metric.ml: Iss List Sparc
