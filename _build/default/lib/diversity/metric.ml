module Isa = Sparc.Isa
module Units = Sparc.Units

type info = {
  workload : string;
  instructions : int;
  iu_instructions : int;
  memory_instructions : int;
  diversity : int;
  per_unit : (Units.t * int) list;
  histogram : (Isa.opcode * int) list;
}

let of_histogram ~workload histogram =
  let instructions = List.fold_left (fun acc (_, c) -> acc + c) 0 histogram in
  let memory_instructions =
    List.fold_left (fun acc (op, c) -> if Isa.is_mem op then acc + c else acc) 0 histogram
  in
  (* Every instruction flows through the integer pipeline except pure
     control ones that retire without touching an execution unit; in
     the Leon3 all instructions use all pipeline stages, so IU usage is
     the total minus nothing — the paper's Table 1 shows Total and
     Integer Unit within a few instructions of each other (the delta
     being boot/exit overhead we count too). *)
  let iu_instructions = instructions in
  let used = List.map fst histogram in
  let per_unit =
    List.map
      (fun u ->
        let d =
          List.length (List.filter (fun op -> List.mem u (Units.used_by op)) used)
        in
        (u, d))
      Units.all
  in
  { workload;
    instructions;
    iu_instructions;
    memory_instructions;
    diversity = List.length used;
    per_unit;
    histogram }

let of_program ?config prog =
  let r = Iss.Emulator.execute ?config prog in
  of_histogram ~workload:prog.Sparc.Asm.name r.Iss.Emulator.histogram

let unit_capacity u =
  List.length (List.filter (fun op -> List.mem u (Units.used_by op)) Isa.all_opcodes)
