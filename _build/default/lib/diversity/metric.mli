(** The paper's instruction-diversity metric.

    Diversity is the number of {e unique instruction types} (opcodes)
    a workload executes; it proxies the processor area the workload
    exercises under the assumption that each type makes uniform use of
    the functional units it touches.  Being a set cardinality it is
    independent of instruction order — the property that makes it
    usable for permanent-fault correlation. *)

module Isa = Sparc.Isa
module Units = Sparc.Units

type info = {
  workload : string;
  instructions : int;  (** dynamic total *)
  iu_instructions : int;  (** instructions exercising the integer unit *)
  memory_instructions : int;  (** dynamic loads + stores *)
  diversity : int;  (** unique opcodes — the paper's metric *)
  per_unit : (Units.t * int) list;  (** [D_m]: unique types touching unit m *)
  histogram : (Isa.opcode * int) list;
}

val of_histogram : workload:string -> (Isa.opcode * int) list -> info
(** Compute every field from an opcode histogram (the counts are the
    only ISS information the metric needs). *)

val of_program : ?config:Iss.Emulator.config -> Sparc.Asm.program -> info
(** Run the program on the ISS and measure. *)

val unit_capacity : Units.t -> int
(** Number of instruction types of the ISA that can exercise the unit
    (the denominator of the per-unit utilisation). *)
