module I = Sparc.Isa
module E = Iss.Emulator

type result = {
  avf : float;
  live_reg_cycles : int;
  total_reg_cycles : int;
  reads : int;
  writes : int;
}

let nwindows = 8

let nregs = 8 + (16 * nwindows)

(* Architectural registers read and written by one instruction
   (register operands only; %g0 is hardwired and never ACE). *)
let defs_uses (instr : I.instr) =
  match instr with
  | I.Alu { op; rs1; op2; rd } ->
      ignore op;
      let uses = rs1 :: (match op2 with I.Reg r -> [ r ] | I.Imm _ -> []) in
      (uses, [ rd ])
  | I.Mem { op; rs1; op2; rd } ->
      let addr_uses = rs1 :: (match op2 with I.Reg r -> [ r ] | I.Imm _ -> []) in
      if I.is_store op then (rd :: addr_uses, []) else (addr_uses, [ rd ])
  | I.Sethi_i { rd; _ } -> ([], [ rd ])
  | I.Branch_i _ -> ([], [])
  | I.Call_i _ -> ([], [ I.o7 ])

let of_program ?config prog =
  let t = E.create ?config prog in
  let last_write = Array.make nregs (-1) in
  (* -1: never written *)
  let last_credit = Array.make nregs 0 in
  let live = ref 0 in
  let reads = ref 0 in
  let writes = ref 0 in
  let slot cwp r = Leon3.Core.regfile_slot ~nwindows ~cwp r in
  let credit_read cycle s =
    if s <> 0 && last_write.(s) >= 0 then begin
      let from = max last_write.(s) last_credit.(s) in
      if cycle > from then begin
        live := !live + (cycle - from);
        last_credit.(s) <- cycle
      end
    end
  in
  let rec go () =
    let pc = E.pc t in
    let word = Sparc.Memory.load_word (E.memory t) pc in
    let instr = Sparc.Encode.decode word in
    let cwp_before = E.cwp t in
    match E.step t with
    | E.Stopped _ -> ()
    | E.Running ->
        (match instr with
        | Some instr ->
            let cycle = E.cycles t in
            let uses, defs = defs_uses instr in
            (* SAVE reads in the old window, writes in the new one;
               RESTORE symmetrically — use the right cwp for each. *)
            let cwp_after = E.cwp t in
            List.iter
              (fun r ->
                incr reads;
                credit_read cycle (slot cwp_before r))
              uses;
            List.iter
              (fun r ->
                if r <> 0 then begin
                  incr writes;
                  let s = slot cwp_after r in
                  last_write.(s) <- cycle;
                  last_credit.(s) <- cycle
                end)
              defs
        | None -> ());
        go ()
  in
  go ();
  let total = nregs * max 1 (E.cycles t) in
  { avf = float_of_int !live /. float_of_int total;
    live_reg_cycles = !live;
    total_reg_cycles = total;
    reads = !reads;
    writes = !writes }
