(** Architectural vulnerability factor (AVF) of the register file,
    estimated from an ISS run — the related-work metric the paper
    contrasts with (Mukherjee et al., MICRO 2003).

    A register-file bit is ACE (required for architecturally correct
    execution) between a write and the last read of that value; the
    AVF is the ACE fraction over all register-cycles.  Computing it
    needs the full dynamic def-use stream — strictly more information
    than the instruction-type histogram diversity needs, which is the
    paper's efficiency argument for diversity. *)

type result = {
  avf : float;  (** ACE register-cycles / total register-cycles, in [0,1] *)
  live_reg_cycles : int;
  total_reg_cycles : int;
  reads : int;  (** dynamic register reads observed *)
  writes : int;  (** dynamic register writes observed *)
}

val of_program : ?config:Iss.Emulator.config -> Sparc.Asm.program -> result
(** Run the program on the ISS, tracking def-use liveness of the
    windowed register file. *)
