(** ISS-side failure-probability prediction (the paper's Eq. 1).

    [Pf = sum_m alpha_m * Pf_m] — the per-unit failure probabilities
    weighted by the fraction of injectable area each unit occupies.
    The area weights come from the {e actual} RTL netlist (injectable
    bits per unit), which is exactly the heterogeneous-detail
    correction the paper introduces [alpha_m]; the per-unit term is
    estimated from the ISS as the unit's instruction-type utilisation
    [D_m / capacity_m]. *)

module Units = Sparc.Units

type t

val of_core : Leon3.Core.t -> t
(** Derive the area weights from a built RTL model. *)

val alpha : t -> (Units.t * float) list
(** The [alpha_m] weights (they sum to 1). *)

val utilisation_score : t -> Metric.info -> float
(** [sum_m alpha_m * (D_m / capacity_m)] — a dimensionless utilisation
    in [0, 1] that should rank workloads like their RTL [Pf] does. *)

val calibrate : t -> (Metric.info * float) list -> float * float
(** [calibrate t observations] least-squares fits
    [pf = a * score + b] over [(info, measured pf)] pairs and returns
    [(a, b)]. *)

val predict : t -> a:float -> b:float -> Metric.info -> float
(** Apply a calibrated affine map to a workload's utilisation score. *)
