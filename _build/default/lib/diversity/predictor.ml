module Units = Sparc.Units

type t = { alpha : (Units.t * float) list }

let of_core core =
  let pools = Fault_injection.Injection.pool_sizes core in
  let total = float_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 pools) in
  assert (total > 0.);
  { alpha = List.map (fun (u, n) -> (u, float_of_int n /. total)) pools }

let alpha t = t.alpha

let utilisation_score t (info : Metric.info) =
  List.fold_left
    (fun acc (u, a) ->
      let d =
        match List.assoc_opt u info.Metric.per_unit with Some d -> d | None -> 0
      in
      let cap = Metric.unit_capacity u in
      if cap = 0 then acc else acc +. (a *. (float_of_int d /. float_of_int cap)))
    0. t.alpha

let calibrate t observations =
  let points =
    List.map (fun (info, pf) -> (utilisation_score t info, pf)) observations
  in
  let fit = Stats.Regression.linear points in
  (fit.Stats.Regression.slope, fit.Stats.Regression.intercept)

let predict t ~a ~b info = (a *. utilisation_score t info) +. b
