type watched = {
  signal : Circuit.signal;
  code : string;
  width : int;
  mutable last : int;
}

type t = {
  out : out_channel;
  circuit : Circuit.t;
  watched : watched list;
  mutable first_sample : bool;
}

(* Compact printable id codes: '!' .. '~' positional encoding. *)
let code_of_index i =
  let base = 94 and first = 33 in
  let buf = Buffer.create 4 in
  let rec go i =
    Buffer.add_char buf (Char.chr (first + (i mod base)));
    if i >= base then go ((i / base) - 1)
  in
  go i;
  Buffer.contents buf

let create ~out ?(prefix = "") ?(timescale = "1ns") circuit =
  Printf.fprintf out "$date reproduction run $end\n";
  Printf.fprintf out "$version iss-rtl-correlation rtl kernel $end\n";
  Printf.fprintf out "$timescale %s $end\n" timescale;
  Printf.fprintf out "$scope module %s $end\n" (Circuit.name circuit);
  let watched =
    List.filteri (fun _ _ -> true) (Circuit.signals circuit)
    |> List.filter (fun (nm, _, _) -> String.starts_with ~prefix nm)
    |> List.mapi (fun i (nm, signal, width) ->
           let code = code_of_index i in
           (* dots are hierarchy separators; VCD wants flat names here *)
           let flat = String.map (fun c -> if c = '.' then '_' else c) nm in
           Printf.fprintf out "$var wire %d %s %s $end\n" width code flat;
           { signal; code; width; last = -1 })
  in
  Printf.fprintf out "$upscope $end\n$enddefinitions $end\n";
  { out; circuit; watched; first_sample = true }

let emit t w v =
  if w.width = 1 then Printf.fprintf t.out "%d%s\n" (v land 1) w.code
  else begin
    output_char t.out 'b';
    for bit = w.width - 1 downto 0 do
      output_char t.out (if (v lsr bit) land 1 = 1 then '1' else '0')
    done;
    Printf.fprintf t.out " %s\n" w.code
  end

let sample t =
  Printf.fprintf t.out "#%d\n" (Circuit.cycle t.circuit);
  List.iter
    (fun w ->
      let v = Circuit.value t.circuit w.signal in
      if t.first_sample || v <> w.last then begin
        emit t w v;
        w.last <- v
      end)
    t.watched;
  t.first_sample <- false

let close t =
  Printf.fprintf t.out "#%d\n" (Circuit.cycle t.circuit + 1);
  flush t.out

let trace_run ~path ?prefix circuit ~cycles ~step =
  let out = open_out path in
  let t = create ~out ?prefix circuit in
  (try
     sample t;
     for _ = 1 to cycles do
       step ();
       sample t
     done;
     close t
   with e ->
     close_out out;
     raise e);
  close_out out
