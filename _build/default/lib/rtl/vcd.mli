(** Value-change-dump (IEEE 1364 VCD) tracing for {!Circuit}
    simulations — open the result in GTKWave next to a campaign log to
    see exactly how an injected fault walks through the netlist.

    Usage: create a tracer over an elaborated circuit (optionally
    restricted to a hierarchy prefix), then call {!sample} once per
    settled cycle and {!close} at the end. *)

type t

val create :
  out:out_channel -> ?prefix:string -> ?timescale:string -> Circuit.t -> t
(** [create ~out circuit] writes the VCD header for every signal whose
    hierarchical name starts with [prefix] (default: all).
    [timescale] defaults to ["1ns"]. *)

val sample : t -> unit
(** Record the current settled values at the circuit's current cycle
    (only changed signals are emitted, per the format). *)

val close : t -> unit
(** Flush the final timestamp.  The channel is not closed. *)

val trace_run :
  path:string -> ?prefix:string -> Circuit.t -> cycles:int -> step:(unit -> unit) -> unit
(** Convenience: open [path], sample, call [step] (one full clock+settle),
    repeat [cycles] times, close. *)
