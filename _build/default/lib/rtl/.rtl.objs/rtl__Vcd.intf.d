lib/rtl/vcd.mli: Circuit
