lib/rtl/vcd.ml: Buffer Char Circuit List Printf String
