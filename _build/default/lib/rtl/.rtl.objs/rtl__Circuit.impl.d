lib/rtl/circuit.ml: Array Bitops Fun List Printf Seq String
