lib/rtl/circuit.mli:
