lib/workloads/aifirf.mli: Sparc
