lib/workloads/tblook.mli: Sparc
