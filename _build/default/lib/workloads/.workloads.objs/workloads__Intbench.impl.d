lib/workloads/intbench.ml: Bitops Common Sparc
