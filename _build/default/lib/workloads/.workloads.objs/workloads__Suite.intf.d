lib/workloads/suite.mli: Sparc
