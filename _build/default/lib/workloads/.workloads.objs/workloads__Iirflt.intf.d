lib/workloads/iirflt.mli: Sparc
