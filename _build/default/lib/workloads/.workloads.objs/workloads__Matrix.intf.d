lib/workloads/matrix.mli: Sparc
