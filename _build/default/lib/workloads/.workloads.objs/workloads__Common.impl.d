lib/workloads/common.ml: Array Sparc Stats
