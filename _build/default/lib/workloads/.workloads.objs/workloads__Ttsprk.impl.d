lib/workloads/ttsprk.ml: Common Sparc
