lib/workloads/excerpts.ml: Bitops Common Sparc
