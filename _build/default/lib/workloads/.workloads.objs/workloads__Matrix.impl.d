lib/workloads/matrix.ml: Common Sparc
