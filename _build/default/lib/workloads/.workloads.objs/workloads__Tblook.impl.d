lib/workloads/tblook.ml: Common Sparc
