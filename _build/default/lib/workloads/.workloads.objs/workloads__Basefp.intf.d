lib/workloads/basefp.mli: Sparc
