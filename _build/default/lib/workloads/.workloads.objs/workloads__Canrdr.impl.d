lib/workloads/canrdr.ml: Array Bitops Common Sparc
