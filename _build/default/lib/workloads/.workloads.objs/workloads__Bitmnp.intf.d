lib/workloads/bitmnp.mli: Sparc
