lib/workloads/membench.ml: Bitops Common Sparc
