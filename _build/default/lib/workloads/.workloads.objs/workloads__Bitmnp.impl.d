lib/workloads/bitmnp.ml: Common Sparc
