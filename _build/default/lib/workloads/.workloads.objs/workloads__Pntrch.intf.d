lib/workloads/pntrch.mli: Sparc
