lib/workloads/rspeed.mli: Sparc
