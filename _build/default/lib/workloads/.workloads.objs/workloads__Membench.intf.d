lib/workloads/membench.mli: Sparc
