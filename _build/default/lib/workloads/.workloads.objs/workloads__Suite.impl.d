lib/workloads/suite.ml: A2time Aifirf Basefp Bitmnp Canrdr Iirflt Intbench List Matrix Membench Pntrch Puwmod Rspeed Sparc Tblook Ttsprk
