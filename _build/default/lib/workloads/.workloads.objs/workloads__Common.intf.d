lib/workloads/common.mli: Sparc
