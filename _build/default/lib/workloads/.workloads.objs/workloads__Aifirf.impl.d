lib/workloads/aifirf.ml: Common Sparc
