lib/workloads/excerpts.mli: Sparc
