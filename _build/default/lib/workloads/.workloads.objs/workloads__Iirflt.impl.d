lib/workloads/iirflt.ml: Common Sparc
