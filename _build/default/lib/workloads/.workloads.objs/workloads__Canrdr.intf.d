lib/workloads/canrdr.mli: Sparc
