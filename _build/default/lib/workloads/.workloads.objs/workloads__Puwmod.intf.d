lib/workloads/puwmod.mli: Sparc
