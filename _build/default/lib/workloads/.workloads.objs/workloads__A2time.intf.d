lib/workloads/a2time.mli: Sparc
