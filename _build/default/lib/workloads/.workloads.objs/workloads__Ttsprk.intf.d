lib/workloads/ttsprk.mli: Sparc
