lib/workloads/intbench.mli: Sparc
