lib/workloads/a2time.ml: Array Common Sparc
