lib/workloads/rspeed.ml: Common Sparc
