lib/workloads/pntrch.ml: Array Common Sparc Stats
