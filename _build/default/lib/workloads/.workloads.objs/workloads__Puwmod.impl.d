lib/workloads/puwmod.ml: Common Sparc
