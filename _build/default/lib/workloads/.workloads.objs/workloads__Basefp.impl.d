lib/workloads/basefp.ml: Common Sparc
