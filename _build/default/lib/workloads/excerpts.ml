(** Benchmark excerpts for the paper's Fig. 3 input-data study.

    Each subset is one program — the initialisation phase where input
    data is read and allocated in memory — run under three different
    datasets (named after the benchmarks the paper drew them from):
    "all three applications within a subset have identical code and the
    only difference among them comes from the different input data".
    Subset A uses exactly 8 instruction types; subset B adds byte
    loads, shifts and xors for 11. *)

module A = Sparc.Asm
module I = Sparc.Isa

let n_words = 48

let passes = 6

type richness = Plain8 | Rich11

let build ~richness ~seed ~lo ~hi =
  let name = match richness with Plain8 -> "excerpt8" | Rich11 -> "excerpt11" in
  let b = A.create ~name () in
  let input = Common.gen_words ~seed ~n:n_words ~lo ~hi in
  A.prologue b;
  A.set32 b passes I.l5;
  A.label b "pass_loop";
  A.load_label b "exc_in" I.l0;
  A.load_label b "exc_work" I.l1;
  (* Resident sensor block: eight registers hold the head of the
     dataset for the whole pass and are echoed to the work area.
     Faults in their register-file cells are silent exactly when the
     dataset already drives the faulted bit to the stuck value — the
     data-dependent component Fig. 3 measures. *)
  for i = 0 to 7 do
    A.ld b I.Ld I.l0 (Imm (4 * i)) (I.o0 + i)
  done;
  for i = 0 to 7 do
    A.st b I.St (I.o0 + i) I.l1 (Imm (4 * ((2 * n_words) + i)))
  done;
  A.set32 b n_words I.l2;
  A.mov b (Imm 0) I.l6;
  (* running sum: its carry chains make fault propagation depend on
     the dataset's value range *)
  A.label b "copy_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  (match richness with
  | Plain8 -> ()
  | Rich11 ->
      A.ld b I.Ldub I.l0 (Imm 2) I.l4;
      A.op3 b I.Sll I.l4 (Imm 8) I.l4;
      A.op3 b I.Xor I.l3 (Reg I.l4) I.l3);
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l6 (Reg I.l3) I.l6;
  A.st b I.St I.l6 I.l1 (Imm (4 * n_words));
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "copy_loop";
  A.op3 b I.Subcc I.l5 (Imm 1) I.l5;
  A.branch b I.Bne "pass_loop";
  A.branch b I.Ba "exc_end";
  A.label b "exc_end";
  A.halt b I.l6;
  A.data_label b "exc_in";
  A.words b input;
  A.data_label b "exc_work";
  A.space_words b ((2 * n_words) + 16);
  A.assemble b

(* Dataset seeds keyed by the benchmark whose input the paper used. *)
let subset_a_members = [ "a2time"; "ttsprk"; "bitmnp" ]

let subset_b_members = [ "rspeed"; "tblook"; "basefp" ]

(* Seed and value range of each member's dataset — the ranges mirror
   the donor benchmark's input domain (angles, RPMs, raw bitmap words,
   pulse periods, table probes, soft-float mantissas), so the datasets
   genuinely exercise different datapath bit widths. *)
let dataset_of_member name =
  match name with
  | "a2time" -> (2101, 1, 39_000)
  | "ttsprk" -> (2102, 600, 9_500)
  | "bitmnp" -> (2103, 1, Bitops.mask32)
  | "rspeed" -> (2201, 200, 4_000)
  | "tblook" -> (2202, 1, 2_000)
  | "basefp" -> (2203, 3, 0xFFFFF)
  | _ -> invalid_arg ("Excerpts.dataset_of_member: unknown member " ^ name)

let subset_a member =
  let seed, lo, hi = dataset_of_member member in
  build ~richness:Plain8 ~seed ~lo ~hi

let subset_b member =
  let seed, lo, hi = dataset_of_member member in
  build ~richness:Rich11 ~seed ~lo ~hi
