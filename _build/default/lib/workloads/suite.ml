module A = Sparc.Asm

type kind = Automotive | Synthetic

type entry = {
  name : string;
  kind : kind;
  default_iterations : int;
  build : iterations:int -> dataset:int -> A.program;
}

let entry name kind default_iterations f =
  { name;
    kind;
    default_iterations;
    build = (fun ~iterations ~dataset -> f ?iterations:(Some iterations) ?dataset:(Some dataset) ()) }

let all =
  [ entry "a2time" Automotive 2 A2time.program;
    entry "puwmod" Automotive 2 Puwmod.program;
    entry "canrdr" Automotive 2 Canrdr.program;
    entry "ttsprk" Automotive 2 Ttsprk.program;
    entry "rspeed" Automotive 2 Rspeed.program;
    entry "tblook" Automotive 2 Tblook.program;
    entry "basefp" Automotive 2 Basefp.program;
    entry "bitmnp" Automotive 2 Bitmnp.program;
    entry "aifirf" Automotive 2 Aifirf.program;
    entry "iirflt" Automotive 2 Iirflt.program;
    entry "pntrch" Automotive 2 Pntrch.program;
    entry "matrix" Automotive 2 Matrix.program;
    entry "membench" Synthetic 6 Membench.program;
    entry "intbench" Synthetic 2 Intbench.program ]

let find name = List.find (fun e -> e.name = name) all

let table1_set =
  List.map find [ "puwmod"; "canrdr"; "ttsprk"; "rspeed"; "membench"; "intbench" ]

let automotive = List.filter (fun e -> e.kind = Automotive) all

let synthetic = List.filter (fun e -> e.kind = Synthetic) all

let names = List.map (fun e -> e.name) all

let kind_name = function Automotive -> "automotive" | Synthetic -> "synthetic"
