(** Registry of every workload in the study. *)

module A = Sparc.Asm

type kind = Automotive | Synthetic

type entry = {
  name : string;
  kind : kind;
  default_iterations : int;
  build : iterations:int -> dataset:int -> A.program;
}

val all : entry list
(** The eight EEMBC-like automotive kernels plus the two synthetics. *)

val table1_set : entry list
(** The six benchmarks of the paper's Table 1: puwmod, canrdr, ttsprk,
    rspeed, membench, intbench. *)

val automotive : entry list

val synthetic : entry list

val find : string -> entry
(** Raises [Not_found]. *)

val names : string list

val kind_name : kind -> string
