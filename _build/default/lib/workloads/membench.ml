(** Synthetic memory-intensive benchmark ("membench" of the paper's
    Table 1): a narrow-opcode copy/accumulate sweep designed to stress
    load/store traffic while keeping instruction diversity low
    (~18 types), to pull the diversity axis of Fig. 7 down. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "membench"

let n_words = 48

let program ?(iterations = 6) ?(dataset = 0) () =
  let b = A.create ~name () in
  let input = Common.gen_words ~seed:(1001 + dataset) ~n:n_words ~lo:1 ~hi:Bitops.mask32 in
  A.prologue b;
  A.set32 b iterations I.l6;
  A.label b "mb_iter";
  A.load_label b "mb_src" I.l0;
  A.load_label b "mb_dst" I.l1;
  A.set32 b n_words I.l2;
  A.mov b (Imm 0) I.l3;
  A.label b "mb_loop";
  (* word copy + running sum *)
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  A.op3 b I.Add I.l3 (Reg I.o0) I.l3;
  A.st b I.St I.o0 I.l1 (Imm 0);
  (* byte echo of the low byte *)
  A.ld b I.Ldub I.l0 (Imm 3) I.o1;
  A.st b I.Stb I.o1 I.l1 (Imm 3);
  (* halfword swap of the upper half *)
  A.ld b I.Lduh I.l0 (Imm 0) I.o2;
  A.st b I.Sth I.o2 I.l1 (Imm 0);
  (* masked fold of the tail pointer distance *)
  A.op3 b I.Sub I.l1 (Reg I.l0) I.o3;
  A.op3 b I.And I.o3 (Imm 0xFC) I.o3;
  A.op3 b I.Srl I.o0 (Imm 16) I.o4;
  A.op3 b I.Add I.l3 (Reg I.o4) I.l3;
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "mb_loop";
  A.op3 b I.Subcc I.l6 (Imm 1) I.l6;
  A.branch b I.Bne "mb_iter";
  A.set32 b Sparc.Layout.result_base I.l4;
  A.st b I.St I.l3 I.l4 (Imm 0);
  A.halt b I.l3;
  A.data_label b "mb_src";
  A.words b input;
  A.data_label b "mb_dst";
  A.space_words b n_words;
  A.assemble b
