(** Tooth-to-spark advance computation (EEMBC Autobench [ttsprk01]).

    Per tooth event: interpolate the spark-advance table between load
    and RPM breakpoints, clamp the advance, derive the dwell window
    with bit masks and accumulate diagnostics.  The paper pairs this
    benchmark with [puwmod] as the two execute the same instruction
    {e types} in a different order — the kernel deliberately draws
    from the same opcode palette. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "ttsprk"

let n_events = 14

let table_size = 8

let init b =
  (* Clamp raw RPM samples into the table's domain. *)
  A.load_label b "tts_in" I.l0;
  A.load_label b "tts_work" I.l1;
  A.set32 b n_events I.l2;
  A.set32 b 7999 I.l4;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.cmp b I.l3 (Reg I.l4);
  A.branch b I.Bleu "init_ok";
  A.mov b (Reg I.l4) I.l3;
  A.label b "init_ok";
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "tts_work" I.l0;
  A.load_label b "tts_table" I.l1;
  A.set32 b n_events I.l2;
  A.mov b (Imm 0) I.l3;
  (* advance accumulator *)
  A.mov b (Imm 0) I.l4;
  (* clamp count *)
  A.mov b (Imm 0) I.l5;
  (* dwell mask shadow *)
  A.label b "tts_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  (* rpm *)
  (* table cell: idx = rpm / 1000, frac = (rpm % 1000) scaled *)
  A.set32 b 1000 I.o1;
  A.op3 b I.Udiv I.o0 (Reg I.o1) I.o2;
  A.op3 b I.Umul I.o2 (Reg I.o1) I.o3;
  A.op3 b I.Sub I.o0 (Reg I.o3) I.o3;
  (* residual rpm *)
  A.cmp b I.o2 (Imm (table_size - 1));
  A.branch b I.Bl "tts_idx_ok";
  A.mov b (Imm (table_size - 2)) I.o2;
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.label b "tts_idx_ok";
  (* interpolate adv = t[i] + (t[i+1]-t[i]) * frac / 1000, signed *)
  A.op3 b I.Sll I.o2 (Imm 2) I.o4;
  A.op3 b I.Add I.l1 (Reg I.o4) I.o4;
  A.ld b I.Ld I.o4 (Imm 0) I.o5;
  A.ld b I.Ld I.o4 (Imm 4) I.o4;
  A.op3 b I.Sub I.o4 (Reg I.o5) I.o4;
  A.op3 b I.Smul I.o4 (Reg I.o3) I.o4;
  A.op3 b I.Sdiv I.o4 (Reg I.o1) I.o4;
  A.op3 b I.Addcc I.o5 (Reg I.o4) I.o5;
  (* negative advance is clamped (retard limit) *)
  A.branch b I.Bpos "tts_pos";
  A.mov b (Imm 0) I.o5;
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.label b "tts_pos";
  A.op3 b I.Addcc I.l3 (Reg I.o5) I.l3;
  A.op3 b I.Addx I.l3 (Imm 0) I.l3;
  (* dwell window mask from the tooth parity *)
  A.op3 b I.Andcc I.o0 (Imm 1) I.g0;
  A.branch b I.Be "tts_even";
  A.op3 b I.Or I.l5 (Imm 0x11) I.l5;
  A.op3 b I.Xnor I.l5 (Imm 0) I.o3;
  A.branch b I.Ba "tts_mask_done";
  A.label b "tts_even";
  A.op3 b I.Andn I.l5 (Imm 0x10) I.l5;
  A.op3 b I.Xorcc I.l5 (Imm 0) I.o3;
  A.branch b I.Bvc "tts_mask_done";
  A.mov b (Imm 0) I.l5;
  A.label b "tts_mask_done";
  (* publish per-event dwell byte *)
  A.load_label b "tts_port" I.o4;
  A.st b I.Stb I.l5 I.o4 (Imm 0);
  A.st b I.Sth I.o5 I.o4 (Imm 2);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "tts_loop";
  A.op3 b I.Sra I.l3 (Imm 2) I.o0;
  A.op3 b I.Srl I.l3 (Imm 16) I.o1;
  Common.store_result b ~index:0 ~src:I.o0 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.o1 ~addr_tmp:I.o7;
  Common.store_result b ~index:2 ~src:I.l4 ~addr_tmp:I.o7

let data ~dataset b =
  let rpms = Common.gen_words ~seed:(401 + dataset) ~n:n_events ~lo:600 ~hi:9500 in
  let table = Common.gen_words ~seed:(402 + dataset) ~n:table_size ~lo:5 ~hi:350 in
  A.data_label b "tts_in";
  A.words b rpms;
  A.data_label b "tts_work";
  A.space_words b n_events;
  A.data_label b "tts_table";
  A.words b table;
  A.data_label b "tts_port";
  A.space_words b 1

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
