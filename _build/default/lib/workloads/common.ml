module A = Sparc.Asm
module I = Sparc.Isa
module Layout = Sparc.Layout

let result_words = 16

let store_result b ~index ~src ~addr_tmp =
  assert (index >= 0 && index < result_words);
  A.set32 b Layout.result_base addr_tmp;
  A.st b I.St src addr_tmp (Imm (4 * index))

(* CRC-16/CCITT lookup table, precomputed and shipped in the data
   section exactly as the EEMBC harness ships its CRC table. *)
let crc16_table =
  Array.init 256 (fun i ->
      let c = ref (i lsl 8) in
      for _ = 0 to 7 do
        c :=
          if !c land 0x8000 <> 0 then ((!c lsl 1) lxor 0x1021) land 0xFFFF
          else (!c lsl 1) land 0xFFFF
      done;
      !c)

let crc16_reference bytes =
  Array.fold_left
    (fun crc byte -> ((crc lsl 8) lxor crc16_table.(((crc lsr 8) lxor byte) land 0xFF)) land 0xFFFF)
    0 bytes

let emit_crc16 b ~prefix ~base ~bytes ~dst ~tmp:(ptr, byte, t) =
  let lbl s = prefix ^ "_" ^ s in
  A.set32 b base ptr;
  A.set32 b (base + bytes) I.g2;
  A.load_label b "crc16_tab" I.g1;
  A.set32 b 0xFFFF I.g3;
  A.mov b (Imm 0) dst;
  A.label b (lbl "byte_loop");
  A.ld b I.Ldub ptr (Imm 0) byte;
  A.op3 b I.Srl dst (Imm 8) t;
  A.op3 b I.Xor t (Reg byte) t;
  A.op3 b I.And t (Imm 0xFF) t;
  A.op3 b I.Sll t (Imm 2) t;
  A.op3 b I.Add I.g1 (Reg t) t;
  A.ld b I.Ld t (Imm 0) t;
  A.op3 b I.Sll dst (Imm 8) dst;
  A.op3 b I.Xor dst (Reg t) dst;
  A.op3 b I.And dst (Reg I.g3) dst;
  A.op3 b I.Add ptr (Imm 1) ptr;
  A.cmp b ptr (Reg I.g2);
  A.branch b I.Bl (lbl "byte_loop")

(* Result-summary pass, modelled on the EEMBC test harness's
   th_report: signed/unsigned extrema, a 64-bit accumulation, a scaled
   mean, sign statistics with saturation checks, and sub-word
   publication of the summary fields.  Besides being what a real
   harness does, it gives every automotive workload the wide common
   instruction-type base that compiled EEMBC binaries exhibit
   (Table 1 of the paper: diversity 47-48 across all four kernels). *)
let emit_stats b =
  let base = Layout.result_base in
  A.set32 b base I.l0;
  A.mov b (Imm (result_words - 4)) I.l1;
  A.set32 b 0x7FFFFFFF I.l2;
  (* signed min *)
  A.mov b (Imm 0) I.l3;
  (* unsigned max *)
  A.mov b (Imm 0) I.l4;
  (* sum lo *)
  A.mov b (Imm 0) I.l5;
  (* sum hi *)
  A.mov b (Imm 0) I.o5;
  (* negative-word count *)
  A.label b "stats_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  A.cmp b I.o0 (Reg I.l2);
  A.branch b I.Bge "stats_no_min";
  A.mov b (Reg I.o0) I.l2;
  A.label b "stats_no_min";
  A.cmp b I.o0 (Reg I.l3);
  A.branch b I.Bleu "stats_no_max";
  A.mov b (Reg I.o0) I.l3;
  A.label b "stats_no_max";
  A.op3 b I.Addcc I.l4 (Reg I.o0) I.l4;
  A.op3 b I.Addxcc I.l5 (Imm 0) I.l5;
  A.op3 b I.Orcc I.o0 (Imm 0) I.g0;
  A.branch b I.Bpos "stats_pos";
  A.op3 b I.Add I.o5 (Imm 1) I.o5;
  A.label b "stats_pos";
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "stats_loop";
  (* 64-bit range max-min with borrow chain and sign probe *)
  A.op3 b I.Subcc I.l3 (Reg I.l2) I.o0;
  A.op3 b I.Subx I.g0 (Imm 0) I.o1;
  A.op3 b I.Subxcc I.o1 (Imm 0) I.o1;
  A.branch b I.Bneg "stats_borrow";
  A.op3 b I.Xnor I.o0 (Imm 0) I.o2;
  A.branch b I.Ba "stats_mask_done";
  A.label b "stats_borrow";
  A.op3 b I.Orn I.g0 (Reg I.o0) I.o2;
  A.label b "stats_mask_done";
  A.op3 b I.Andn I.o2 (Imm 0xFF) I.o2;
  (* scaled mean of the sum *)
  A.op3 b I.Smul I.l4 (Imm 3) I.o3;
  A.op3 b I.Sdiv I.o3 (Imm (result_words - 4)) I.o3;
  A.op3 b I.Sra I.o3 (Imm 1) I.o3;
  (* saturating blend of mean and min *)
  A.op3 b I.Addcc I.o3 (Reg I.l2) I.o4;
  A.branch b I.Bvs "stats_sat";
  A.branch b I.Bvc "stats_sat_done";
  A.label b "stats_sat";
  A.set32 b 0x7FFFFFFF I.o4;
  A.label b "stats_sat_done";
  (* multiply-with-flags probes *)
  A.op3 b I.Umulcc I.o4 (Imm 5) I.g3;
  A.branch b I.Be "stats_zero";
  A.op3 b I.Smulcc I.o5 (Imm 7) I.g3;
  A.label b "stats_zero";
  (* classification compares exercising the remaining conditions *)
  A.cmp b I.o3 (Reg I.o5);
  A.branch b I.Bg "stats_g";
  A.op3 b I.Sub I.o3 (Imm 1) I.o3;
  A.label b "stats_g";
  A.cmp b I.o5 (Imm 3);
  A.branch b I.Ble "stats_le";
  A.op3 b I.Add I.o5 (Imm 1) I.o5;
  A.label b "stats_le";
  A.cmp b I.l3 (Reg I.o4);
  A.branch b I.Bgu "stats_gu";
  A.op3 b I.Xorcc I.l3 (Reg I.o4) I.g0;
  A.label b "stats_gu";
  A.op3 b I.Addcc I.l4 (Reg I.l3) I.g0;
  A.branch b I.Bcc "stats_cc";
  A.op3 b I.Add I.l5 (Imm 1) I.l5;
  A.label b "stats_cc";
  A.op3 b I.Addcc I.l4 (Reg I.l3) I.g0;
  A.branch b I.Bcs "stats_cs";
  A.op3 b I.Add I.l5 (Imm 2) I.l5;
  A.label b "stats_cs";
  A.branch b I.Bn "stats_never";
  A.label b "stats_never";
  (* sub-word publication and read-back folding *)
  A.set32 b (base + 40) I.l6;
  A.st b I.Sth I.o3 I.l6 (Imm 0);
  A.st b I.Stb I.o5 I.l6 (Imm 2);
  A.ld b I.Ldsh I.l6 (Imm 0) I.o0;
  A.ld b I.Ldsb I.l6 (Imm 2) I.o1;
  A.ld b I.Lduh I.l6 (Imm 0) I.o2;
  A.op3 b I.Xor I.o0 (Reg I.o1) I.o0;
  A.op3 b I.Or I.o0 (Reg I.o2) I.o0;
  (* publish the summary words *)
  A.st b I.St I.l2 I.l6 (Imm 4);
  A.st b I.St I.l3 I.l6 (Imm 8);
  A.st b I.St I.l4 I.l6 (Imm 12);
  A.st b I.St I.o0 I.l6 (Imm 16)

let standard ~name ~iterations ~init ~kernel ~data =
  let b = A.create ~name () in
  A.prologue b;
  init b;
  A.set32 b iterations I.l6;
  A.label b "harness_loop";
  A.mov b (Reg I.l6) I.o0;
  A.call b "kernel_fn";
  A.op3 b I.Subcc I.l6 (Imm 1) I.l6;
  A.branch b I.Bne "harness_loop";
  emit_stats b;
  emit_crc16 b ~prefix:"harness_crc" ~base:Layout.result_base
    ~bytes:(4 * (result_words - 1)) ~dst:I.l0 ~tmp:(I.l1, I.l2, I.l3);
  A.set32 b Layout.result_base I.l4;
  A.st b I.St I.l0 I.l4 (Imm (4 * (result_words - 1)));
  A.halt b I.l0;
  A.label b "kernel_fn";
  A.op3 b I.Save I.sp (Imm (-96)) I.sp;
  kernel b;
  A.op3 b I.Restore I.g0 (Imm 0) I.g0;
  A.ret b;
  data b;
  A.data_label b "crc16_tab";
  A.words b crc16_table;
  A.assemble b

let gen_words ~seed ~n ~lo ~hi =
  let rng = Stats.Rng.create seed in
  Array.init n (fun _ -> Stats.Rng.range rng ~lo ~hi)
