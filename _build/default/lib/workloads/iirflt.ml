(** IIR filter (EEMBC Autobench [iirflt01]).

    A cascaded biquad (direct form I) over a pressure-sensor stream:
    two feedback and two feedforward taps per section in Q12, with the
    state carried in memory between samples — heavier on loads/stores
    than the FIR, as the EEMBC original is. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "iirflt"

let n_samples = 24

let init b =
  (* Scale raw samples into Q12 and clear the filter state. *)
  A.load_label b "iir_in" I.l0;
  A.load_label b "iir_work" I.l1;
  A.set32 b n_samples I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.op3 b I.Sll I.l3 (Imm 2) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop";
  A.load_label b "iir_state" I.l4;
  A.st b I.St I.g0 I.l4 (Imm 0);
  A.st b I.St I.g0 I.l4 (Imm 4);
  A.st b I.St I.g0 I.l4 (Imm 8);
  A.st b I.St I.g0 I.l4 (Imm 12)

(* y = (b0*x + b1*x1 - a1*y1 - a2*y2) >> 12, state in memory *)
let kernel b =
  A.load_label b "iir_work" I.l0;
  A.load_label b "iir_state" I.l1;
  A.set32 b n_samples I.l2;
  A.mov b (Imm 0) I.l3;
  (* output accumulator *)
  A.mov b (Imm 0) I.l5;
  (* limit-cycle guard count *)
  A.label b "iir_n";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  (* x *)
  (* feedforward *)
  A.op3 b I.Smul I.o0 (Imm 1638) I.o1;
  (* b0 = 0.4 Q12 *)
  A.ld b I.Ld I.l1 (Imm 0) I.o2;
  (* x1 *)
  A.op3 b I.Smul I.o2 (Imm 819) I.o3;
  (* b1 = 0.2 Q12 *)
  A.op3 b I.Add I.o1 (Reg I.o3) I.o1;
  (* feedback *)
  A.ld b I.Ld I.l1 (Imm 8) I.o3;
  (* y1 *)
  A.op3 b I.Smul I.o3 (Imm 1229) I.o4;
  (* a1 = 0.3 Q12 *)
  A.op3 b I.Sub I.o1 (Reg I.o4) I.o1;
  A.ld b I.Ld I.l1 (Imm 12) I.o4;
  (* y2 *)
  A.op3 b I.Smul I.o4 (Imm 410) I.o5;
  (* a2 = 0.1 Q12 *)
  A.op3 b I.Subcc I.o1 (Reg I.o5) I.o1;
  A.op3 b I.Sra I.o1 (Imm 12) I.o1;
  (* limit-cycle guard: tiny negative outputs snap to zero *)
  A.branch b I.Bpos "iir_pos";
  A.op3 b I.Subcc I.o1 (Imm (-4)) I.g0;
  A.branch b I.Bl "iir_pos";
  A.mov b (Imm 0) I.o1;
  A.op3 b I.Add I.l5 (Imm 1) I.l5;
  A.label b "iir_pos";
  (* rotate state: x1 <- x, y2 <- y1, y1 <- y *)
  A.st b I.St I.o0 I.l1 (Imm 0);
  A.st b I.St I.o3 I.l1 (Imm 12);
  A.st b I.St I.o1 I.l1 (Imm 8);
  A.op3 b I.Add I.l3 (Reg I.o1) I.l3;
  A.st b I.St I.o1 I.l0 (Imm 0);
  (* in-place output *)
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "iir_n";
  Common.store_result b ~index:0 ~src:I.l3 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l5 ~addr_tmp:I.o7

let data ~dataset b =
  let samples = Common.gen_words ~seed:(1301 + dataset) ~n:n_samples ~lo:1 ~hi:1023 in
  A.data_label b "iir_in";
  A.words b samples;
  A.data_label b "iir_work";
  A.space_words b n_samples;
  A.data_label b "iir_state";
  A.space_words b 4

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
