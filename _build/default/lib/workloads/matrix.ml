(** Matrix arithmetic (EEMBC Autobench [matrix01]).

    Fixed-point matrix work on a 6x6 operand set: multiply, add a
    bias matrix, and fold the trace and column checksums — the dense
    multiply/accumulate inner loops of model-based control code. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "matrix"

let dim = 6

let words = dim * dim

let init b =
  (* Narrow the raw operands to signed Q8-ish range. *)
  A.load_label b "mat_in" I.l0;
  A.load_label b "mat_a" I.l1;
  A.set32 b (2 * words) I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.op3 b I.And I.l3 (Imm 0x1FF) I.l3;
  A.op3 b I.Sub I.l3 (Imm 0x100) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "mat_a" I.l0;
  A.load_label b "mat_b" I.l1;
  A.load_label b "mat_c" I.l2;
  A.mov b (Imm 0) I.l3;
  (* i *)
  A.label b "mat_i";
  A.mov b (Imm 0) I.l4;
  (* j *)
  A.label b "mat_j";
  A.mov b (Imm 0) I.o0;
  (* acc *)
  A.mov b (Imm 0) I.o1;
  (* k *)
  A.label b "mat_k";
  (* a[i][k] *)
  A.op3 b I.Umul I.l3 (Imm (4 * dim)) I.o2;
  A.op3 b I.Sll I.o1 (Imm 2) I.o3;
  A.op3 b I.Add I.o2 (Reg I.o3) I.o2;
  A.op3 b I.Add I.l0 (Reg I.o2) I.o2;
  A.ld b I.Ld I.o2 (Imm 0) I.o2;
  (* b[k][j] *)
  A.op3 b I.Umul I.o1 (Imm (4 * dim)) I.o3;
  A.op3 b I.Sll I.l4 (Imm 2) I.o4;
  A.op3 b I.Add I.o3 (Reg I.o4) I.o3;
  A.op3 b I.Add I.l1 (Reg I.o3) I.o3;
  A.ld b I.Ld I.o3 (Imm 0) I.o3;
  A.op3 b I.Smul I.o2 (Reg I.o3) I.o2;
  A.op3 b I.Add I.o0 (Reg I.o2) I.o0;
  A.op3 b I.Add I.o1 (Imm 1) I.o1;
  A.cmp b I.o1 (Imm dim);
  A.branch b I.Bl "mat_k";
  (* c[i][j] = acc >> 8 *)
  A.op3 b I.Sra I.o0 (Imm 8) I.o0;
  A.op3 b I.Umul I.l3 (Imm (4 * dim)) I.o2;
  A.op3 b I.Sll I.l4 (Imm 2) I.o3;
  A.op3 b I.Add I.o2 (Reg I.o3) I.o2;
  A.op3 b I.Add I.l2 (Reg I.o2) I.o2;
  A.st b I.St I.o0 I.o2 (Imm 0);
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.cmp b I.l4 (Imm dim);
  A.branch b I.Bl "mat_j";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.cmp b I.l3 (Imm dim);
  A.branch b I.Bl "mat_i";
  (* trace of c *)
  A.mov b (Imm 0) I.o0;
  A.mov b (Imm 0) I.o1;
  A.label b "mat_trace";
  A.op3 b I.Umul I.o1 (Imm ((4 * dim) + 4)) I.o2;
  A.op3 b I.Add I.l2 (Reg I.o2) I.o2;
  A.ld b I.Ld I.o2 (Imm 0) I.o2;
  A.op3 b I.Add I.o0 (Reg I.o2) I.o0;
  A.op3 b I.Add I.o1 (Imm 1) I.o1;
  A.cmp b I.o1 (Imm dim);
  A.branch b I.Bl "mat_trace";
  Common.store_result b ~index:0 ~src:I.o0 ~addr_tmp:I.o7

let data ~dataset b =
  let raw = Common.gen_words ~seed:(1501 + dataset) ~n:(2 * words) ~lo:0 ~hi:0xFFFF in
  A.data_label b "mat_in";
  A.words b raw;
  A.data_label b "mat_a";
  A.space_words b words;
  A.data_label b "mat_b";
  A.space_words b words;
  A.data_label b "mat_c";
  A.space_words b words

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
