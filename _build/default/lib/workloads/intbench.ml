(** Synthetic integer-intensive benchmark ("intbench" of the paper's
    Table 1): a register-resident mixing loop with almost no memory
    traffic (Table 1 reports 19 memory instructions out of 2621) and
    modest diversity (~20 types). *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "intbench"

let rounds = 120

let program ?(iterations = 2) ?(dataset = 0) () =
  let b = A.create ~name () in
  let seeds = Common.gen_words ~seed:(1101 + dataset) ~n:4 ~lo:1 ~hi:Bitops.mask32 in
  A.prologue b;
  A.set32 b iterations I.l6;
  A.label b "ib_iter";
  (* seed the mixer registers from the data section (the only loads) *)
  A.load_label b "ib_seed" I.l0;
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  A.ld b I.Ld I.l0 (Imm 4) I.o1;
  A.ld b I.Ld I.l0 (Imm 8) I.o2;
  A.ld b I.Ld I.l0 (Imm 12) I.o3;
  A.set32 b rounds I.l1;
  A.label b "ib_round";
  (* xorshift-flavoured integer mixing *)
  A.op3 b I.Sll I.o0 (Imm 13) I.o4;
  A.op3 b I.Xor I.o0 (Reg I.o4) I.o0;
  A.op3 b I.Srl I.o0 (Imm 17) I.o4;
  A.op3 b I.Xor I.o0 (Reg I.o4) I.o0;
  A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
  A.op3 b I.Sub I.o1 (Reg I.o2) I.o1;
  A.op3 b I.Umul I.o2 (Imm 37) I.o2;
  A.op3 b I.And I.o2 (Reg I.o3) I.o5;
  A.op3 b I.Or I.o3 (Reg I.o0) I.o3;
  A.op3 b I.Xor I.o3 (Reg I.o5) I.o3;
  (* 64-bit accumulate and signed scaling of the mix *)
  A.op3 b I.Addcc I.o4 (Reg I.o3) I.o4;
  A.op3 b I.Addx I.o5 (Imm 0) I.o5;
  A.op3 b I.Sra I.o4 (Imm 1) I.o4;
  A.op3 b I.Andcc I.o4 (Imm 7) I.g0;
  A.branch b I.Be "ib_even";
  A.op3 b I.Orcc I.o5 (Imm 1) I.o5;
  A.label b "ib_even";
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "ib_round";
  A.op3 b I.Subcc I.l6 (Imm 1) I.l6;
  A.branch b I.Bne "ib_iter";
  A.op3 b I.Xor I.o0 (Reg I.o1) I.o0;
  A.op3 b I.Xor I.o0 (Reg I.o2) I.o0;
  A.op3 b I.Xor I.o0 (Reg I.o3) I.o0;
  A.set32 b Sparc.Layout.result_base I.l4;
  A.st b I.St I.o0 I.l4 (Imm 0);
  A.halt b I.o0;
  A.data_label b "ib_seed";
  A.words b seeds;
  A.assemble b
