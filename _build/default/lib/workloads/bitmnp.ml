(** Bit manipulation (EEMBC Autobench [bitmnp01]).

    Renders "needle" segments into a packed monochrome bitmap: per
    command, compute the word index and bit mask, set/clear/toggle the
    pixel run, then count the lit pixels of the touched word (software
    popcount) and fold a display parity — dense logical/shift traffic
    over byte-addressed video memory. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "bitmnp"

let n_commands = 20

let bitmap_words = 16

let init b =
  (* Clear the bitmap and draw the static dial outline (every 5th bit
     of the first row), byte by byte as display drivers do. *)
  A.load_label b "bmp_map" I.l0;
  A.set32 b (bitmap_words * 4) I.l1;
  A.mov b (Imm 0) I.l2;
  A.label b "init_clear";
  A.op3 b I.Add I.l0 (Reg I.l2) I.l3;
  A.st b I.Stb I.g0 I.l3 (Imm 0);
  A.op3 b I.Add I.l2 (Imm 1) I.l2;
  A.cmp b I.l2 (Reg I.l1);
  A.branch b I.Bl "init_clear";
  A.set32 b 0x21084210 I.l4;
  A.st b I.St I.l4 I.l0 (Imm 0)

let kernel b =
  A.load_label b "bmp_cmds" I.l0;
  A.load_label b "bmp_map" I.l1;
  A.set32 b n_commands I.l2;
  A.mov b (Imm 0) I.l3;
  (* lit-pixel accumulator *)
  A.mov b (Imm 0) I.l4;
  (* parity *)
  A.label b "bmp_cmd";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  (* command: [pos:9][op:2] *)
  A.op3 b I.Srl I.o0 (Imm 2) I.o1;
  A.set32 b (bitmap_words * 32 - 1) I.o2;
  A.op3 b I.And I.o1 (Reg I.o2) I.o1;
  (* pixel position *)
  A.op3 b I.And I.o0 (Imm 3) I.o0;
  (* operation *)
  A.op3 b I.Srl I.o1 (Imm 5) I.o2;
  (* word index *)
  A.op3 b I.And I.o1 (Imm 31) I.o3;
  A.mov b (Imm 1) I.o4;
  A.op3 b I.Sll I.o4 (Reg I.o3) I.o4;
  (* bit mask *)
  A.op3 b I.Sll I.o2 (Imm 2) I.o2;
  A.op3 b I.Add I.l1 (Reg I.o2) I.o2;
  (* word address *)
  A.ld b I.Ld I.o2 (Imm 0) I.o5;
  (* op 0: set, 1: clear, 2: toggle, 3: test-and-set-if-clear *)
  A.cmp b I.o0 (Imm 1);
  A.branch b I.Bl "bmp_set";
  A.branch b I.Be "bmp_clear";
  A.cmp b I.o0 (Imm 2);
  A.branch b I.Be "bmp_toggle";
  (* test-and-set *)
  A.op3 b I.Andcc I.o5 (Reg I.o4) I.g0;
  A.branch b I.Bne "bmp_write";
  A.op3 b I.Or I.o5 (Reg I.o4) I.o5;
  A.branch b I.Ba "bmp_write";
  A.label b "bmp_set";
  A.op3 b I.Or I.o5 (Reg I.o4) I.o5;
  A.branch b I.Ba "bmp_write";
  A.label b "bmp_clear";
  A.op3 b I.Andn I.o5 (Reg I.o4) I.o5;
  A.branch b I.Ba "bmp_write";
  A.label b "bmp_toggle";
  A.op3 b I.Xor I.o5 (Reg I.o4) I.o5;
  A.label b "bmp_write";
  A.st b I.St I.o5 I.o2 (Imm 0);
  (* popcount of the touched word *)
  A.mov b (Imm 0) I.o3;
  A.label b "bmp_pop";
  A.op3 b I.Andcc I.o5 (Imm 1) I.g0;
  A.branch b I.Be "bmp_pop_z";
  A.op3 b I.Add I.o3 (Imm 1) I.o3;
  A.label b "bmp_pop_z";
  A.op3 b I.Srl I.o5 (Imm 1) I.o5;
  A.op3 b I.Orcc I.o5 (Imm 0) I.g0;
  A.branch b I.Bne "bmp_pop";
  A.op3 b I.Add I.l3 (Reg I.o3) I.l3;
  A.op3 b I.Xor I.l4 (Reg I.o3) I.l4;
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "bmp_cmd";
  Common.store_result b ~index:0 ~src:I.l3 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l4 ~addr_tmp:I.o7

let data ~dataset b =
  let cmds = Common.gen_words ~seed:(901 + dataset) ~n:n_commands ~lo:0 ~hi:0x7FF in
  A.data_label b "bmp_cmds";
  A.words b cmds;
  A.data_label b "bmp_map";
  A.space_words b bitmap_words

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
