(** Benchmark excerpts for the paper's Fig. 3 input-data study.

    Each subset is one program — the initialisation phase where input
    data is read and allocated — run under three datasets named after
    the benchmarks the paper drew them from.  Subset A uses exactly 8
    instruction types; subset B exactly 11. *)

val n_words : int
(** Words copied per pass. *)

val passes : int
(** Init passes per run. *)

val subset_a_members : string list
(** ["a2time"; "ttsprk"; "bitmnp"]. *)

val subset_b_members : string list
(** ["rspeed"; "tblook"; "basefp"]. *)

val subset_a : string -> Sparc.Asm.program
(** [subset_a member] builds the 8-type excerpt with that member's
    dataset.  Raises [Invalid_argument] on an unknown member. *)

val subset_b : string -> Sparc.Asm.program
(** The 11-type variant. *)
