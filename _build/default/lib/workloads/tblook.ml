(** Table lookup and interpolation (EEMBC Autobench [tblook01]).

    Classic sensor-linearisation kernel: binary-search a monotone
    breakpoint table for each probe value, then linearly interpolate
    between the bracketing entries with signed arithmetic. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "tblook"

let n_probes = 18

let table_size = 16

let init b =
  (* Build a monotone breakpoint table by prefix-summing the seeds. *)
  A.load_label b "tbl_seed" I.l0;
  A.load_label b "tbl_x" I.l1;
  A.set32 b table_size I.l2;
  A.mov b (Imm 0) I.l3;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l4;
  A.op3 b I.And I.l4 (Imm 0xFF) I.l4;
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.op3 b I.Add I.l3 (Reg I.l4) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "tbl_probes" I.l0;
  A.set32 b n_probes I.l1;
  A.mov b (Imm 0) I.l2;
  (* interpolated sum *)
  A.mov b (Imm 0) I.l3;
  (* out-of-range count *)
  A.label b "tbl_probe";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  (* binary search for the bracketing index: lo in o1, hi in o2 *)
  A.mov b (Imm 0) I.o1;
  A.mov b (Imm (table_size - 1)) I.o2;
  A.label b "tbl_search";
  A.op3 b I.Sub I.o2 (Reg I.o1) I.o3;
  A.cmp b I.o3 (Imm 1);
  A.branch b I.Bleu "tbl_found";
  A.op3 b I.Add I.o1 (Reg I.o2) I.o3;
  A.op3 b I.Srl I.o3 (Imm 1) I.o3;
  (* mid *)
  A.load_label b "tbl_x" I.o4;
  A.op3 b I.Sll I.o3 (Imm 2) I.o5;
  A.op3 b I.Add I.o4 (Reg I.o5) I.o4;
  A.ld b I.Ld I.o4 (Imm 0) I.o4;
  A.cmp b I.o0 (Reg I.o4);
  A.branch b I.Bl "tbl_go_left";
  A.mov b (Reg I.o3) I.o1;
  A.branch b I.Ba "tbl_search";
  A.label b "tbl_go_left";
  A.mov b (Reg I.o3) I.o2;
  A.branch b I.Ba "tbl_search";
  A.label b "tbl_found";
  (* y = y0 + (x - x0) * (y1 - y0) / (x1 - x0), all signed *)
  A.load_label b "tbl_x" I.o3;
  A.op3 b I.Sll I.o1 (Imm 2) I.o4;
  A.op3 b I.Add I.o3 (Reg I.o4) I.o3;
  A.ld b I.Ld I.o3 (Imm 0) I.o4;
  (* x0 *)
  A.ld b I.Ld I.o3 (Imm 4) I.o5;
  (* x1 *)
  A.op3 b I.Sub I.o0 (Reg I.o4) I.o0;
  (* x - x0 *)
  A.op3 b I.Subcc I.o5 (Reg I.o4) I.o5;
  (* x1 - x0, guaranteed > 0 *)
  A.branch b I.Bne "tbl_dx_ok";
  A.mov b (Imm 1) I.o5;
  A.label b "tbl_dx_ok";
  (* y table is x>>1 + idx*3: derive y0,y1 arithmetically (no second
     table in memory keeps the kernel's loads focused on the search) *)
  A.op3 b I.Sra I.o4 (Imm 1) I.o4;
  A.op3 b I.Smul I.o0 (Imm 3) I.o0;
  A.op3 b I.Sdiv I.o0 (Reg I.o5) I.o0;
  A.op3 b I.Addcc I.o4 (Reg I.o0) I.o4;
  A.branch b I.Bvc "tbl_no_ovf";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.mov b (Imm 0) I.o4;
  A.label b "tbl_no_ovf";
  A.op3 b I.Add I.l2 (Reg I.o4) I.l2;
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "tbl_probe";
  Common.store_result b ~index:0 ~src:I.l2 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l3 ~addr_tmp:I.o7

let data ~dataset b =
  let seeds = Common.gen_words ~seed:(701 + dataset) ~n:table_size ~lo:1 ~hi:0xFFFF in
  let probes = Common.gen_words ~seed:(702 + dataset) ~n:n_probes ~lo:1 ~hi:2000 in
  A.data_label b "tbl_seed";
  A.words b seeds;
  A.data_label b "tbl_x";
  A.space_words b table_size;
  A.data_label b "tbl_probes";
  A.words b probes

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
