(** Pointer chase (EEMBC Autobench [pntrch01]).

    Token search through a linked structure: follow a chain of nodes
    laid out pseudo-randomly in memory, matching each node's token
    against a target and counting hops — load-latency bound, cache
    unfriendly, as the EEMBC original. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "pntrch"

let n_nodes = 24

(* Node layout: word 0 = next-node address, word 1 = token. *)
let init b =
  (* Link the nodes into a permutation chain derived from the token
     seeds, terminating back at node 0. *)
  A.load_label b "ptr_nodes" I.l0;
  A.load_label b "ptr_perm" I.l1;
  A.set32 b n_nodes I.l2;
  A.mov b (Reg I.l0) I.l3;
  (* current node *)
  A.label b "init_loop";
  A.ld b I.Ld I.l1 (Imm 0) I.l4;
  (* successor index *)
  A.op3 b I.Sll I.l4 (Imm 3) I.l4;
  (* *8 bytes per node *)
  A.op3 b I.Add I.l0 (Reg I.l4) I.l4;
  A.st b I.St I.l4 I.l3 (Imm 0);
  A.mov b (Reg I.l4) I.l3;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "ptr_nodes" I.l0;
  A.load_label b "ptr_targets" I.l1;
  A.mov b (Imm 0) I.l2;
  (* found count *)
  A.mov b (Imm 0) I.l3;
  (* hop count *)
  A.mov b (Imm 4) I.l4;
  (* searches to run *)
  A.label b "ptr_search";
  A.ld b I.Ld I.l1 (Imm 0) I.o0;
  (* target token *)
  A.mov b (Reg I.l0) I.o1;
  (* cursor *)
  A.set32 b (2 * n_nodes) I.o2;
  (* hop budget *)
  A.label b "ptr_hop";
  A.ld b I.Ld I.o1 (Imm 4) I.o3;
  (* token *)
  A.op3 b I.Xorcc I.o3 (Reg I.o0) I.g0;
  A.branch b I.Be "ptr_found";
  A.ld b I.Ld I.o1 (Imm 0) I.o1;
  (* follow next *)
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.op3 b I.Subcc I.o2 (Imm 1) I.o2;
  A.branch b I.Bne "ptr_hop";
  A.branch b I.Ba "ptr_next";
  A.label b "ptr_found";
  A.op3 b I.Add I.l2 (Imm 1) I.l2;
  A.label b "ptr_next";
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l4 (Imm 1) I.l4;
  A.branch b I.Bne "ptr_search";
  Common.store_result b ~index:0 ~src:I.l2 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l3 ~addr_tmp:I.o7

let data ~dataset b =
  let rng = Stats.Rng.create (1401 + dataset) in
  (* a single-cycle permutation so every search can reach every node *)
  let perm = Array.init n_nodes (fun i -> i) in
  Stats.Rng.shuffle rng perm;
  let succ = Array.make n_nodes 0 in
  for i = 0 to n_nodes - 1 do
    succ.(perm.(i)) <- perm.((i + 1) mod n_nodes)
  done;
  let tokens = Common.gen_words ~seed:(1402 + dataset) ~n:n_nodes ~lo:1 ~hi:0xFFFF in
  A.data_label b "ptr_nodes";
  for i = 0 to n_nodes - 1 do
    A.word b 0;
    (* next pointer, filled by init *)
    A.word b tokens.(i)
  done;
  A.data_label b "ptr_perm";
  A.words b succ;
  A.data_label b "ptr_targets";
  (* two guaranteed hits, two probable misses *)
  A.words b [| tokens.(3); tokens.(n_nodes - 1); 0x1_0000 land 0xFFFF lor 0x3; 0x7 |]

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
