(** Pulse-width modulation (EEMBC Autobench [puwmod01]).

    Generates PWM duty cycles for a command table: per command, the
    duty count is derived from the commanded torque, the carrier
    counter is swept over one period, and the output port bit pattern
    is built with set/clear/toggle masks, counting edges, exactly the
    bit-banging structure of the EEMBC kernel. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "puwmod"

let n_commands = 16

let period = 64

let init b =
  (* Scale raw torque commands into duty counts in [1, period]. *)
  A.load_label b "puw_in" I.l0;
  A.load_label b "puw_duty" I.l1;
  A.set32 b n_commands I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.op3 b I.Umul I.l3 (Imm period) I.l3;
  A.set32 b 1000 I.l4;
  A.op3 b I.Udiv I.l3 (Reg I.l4) I.l3;
  A.op3 b I.Orcc I.l3 (Imm 0) I.g0;
  A.branch b I.Bne "init_nz";
  A.mov b (Imm 1) I.l3;
  A.label b "init_nz";
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "puw_duty" I.l0;
  A.set32 b n_commands I.l1;
  A.mov b (Imm 0) I.l2;
  (* port shadow *)
  A.mov b (Imm 0) I.l3;
  (* edge count *)
  A.mov b (Imm 0) I.l4;
  (* high-time accumulator *)
  A.label b "puw_cmd";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  (* duty count *)
  A.mov b (Imm 0) I.o1;
  (* carrier counter *)
  A.label b "puw_carrier";
  A.cmp b I.o1 (Reg I.o0);
  A.branch b I.Bcc "puw_low";
  (* high phase: set bit 3, clear bit 5, accumulate high time *)
  A.op3 b I.Or I.l2 (Imm 8) I.o2;
  A.op3 b I.Andn I.o2 (Imm 32) I.o2;
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.branch b I.Ba "puw_apply";
  A.label b "puw_low";
  (* low phase: clear bit 3, set bit 5 *)
  A.op3 b I.Andn I.l2 (Imm 8) I.o2;
  A.op3 b I.Or I.o2 (Imm 32) I.o2;
  A.label b "puw_apply";
  (* edge detection: did any port bit change? *)
  A.op3 b I.Xorcc I.o2 (Reg I.l2) I.g0;
  A.branch b I.Be "puw_no_edge";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.label b "puw_no_edge";
  A.mov b (Reg I.o2) I.l2;
  A.op3 b I.Add I.o1 (Imm 4) I.o1;
  (* carrier step of 4 keeps dynamic counts tractable *)
  A.cmp b I.o1 (Imm period);
  A.branch b I.Bl "puw_carrier";
  (* write the final port byte of this command to the port register *)
  A.load_label b "puw_port" I.o3;
  A.st b I.Stb I.l2 I.o3 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "puw_cmd";
  (* dither check: signed parity of high time, toggles with xnor mask *)
  A.op3 b I.Sra I.l4 (Imm 3) I.o4;
  A.op3 b I.Xnor I.o4 (Imm 0) I.o5;
  A.op3 b I.Subcc I.o5 (Imm (-1)) I.g0;
  A.branch b I.Bvc "puw_no_ovf";
  A.mov b (Imm 0) I.o5;
  A.label b "puw_no_ovf";
  Common.store_result b ~index:0 ~src:I.l3 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l4 ~addr_tmp:I.o7;
  Common.store_result b ~index:2 ~src:I.o5 ~addr_tmp:I.o7

let data ~dataset b =
  let torques = Common.gen_words ~seed:(301 + dataset) ~n:n_commands ~lo:50 ~hi:999 in
  A.data_label b "puw_in";
  A.words b torques;
  A.data_label b "puw_duty";
  A.space_words b n_commands;
  A.data_label b "puw_port";
  A.space_words b 1

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
