(** Road-speed calculation (EEMBC Autobench [rspeed01]).

    Converts wheel-pulse periods into road speed with a constant
    numerator division, applies an exponential moving-average filter
    and a hysteresis classifier into speed bands, counting band
    transitions — the paper's Fig. 4 iteration study runs this
    workload with 2, 4 and 10 iterations. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "rspeed"

let n_pulses = 20

let speed_k = 360_000 (* distance constant: speed = k / period *)

let init b =
  (* Bound the pulse periods away from zero (stalled-wheel guard). *)
  A.load_label b "rsp_in" I.l0;
  A.load_label b "rsp_work" I.l1;
  A.set32 b n_pulses I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.op3 b I.Orcc I.l3 (Imm 0) I.g0;
  A.branch b I.Bne "init_nz";
  A.mov b (Imm 1) I.l3;
  A.label b "init_nz";
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "rsp_work" I.l0;
  A.set32 b n_pulses I.l1;
  A.mov b (Imm 0) I.l2;
  (* filtered speed *)
  A.mov b (Imm 0) I.l3;
  (* current band *)
  A.mov b (Imm 0) I.l4;
  (* band transition count *)
  A.mov b (Imm 0) I.l5;
  (* top-speed latch *)
  A.label b "rsp_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  A.set32 b speed_k I.o1;
  A.op3 b I.Udiv I.o1 (Reg I.o0) I.o2;
  (* raw speed *)
  (* EMA filter: f += (raw - f) >> 2, signed *)
  A.op3 b I.Sub I.o2 (Reg I.l2) I.o3;
  A.op3 b I.Sra I.o3 (Imm 2) I.o3;
  A.op3 b I.Addcc I.l2 (Reg I.o3) I.l2;
  A.branch b I.Bpos "rsp_nonneg";
  A.mov b (Imm 0) I.l2;
  A.label b "rsp_nonneg";
  (* track the top speed with an unsigned compare *)
  A.cmp b I.l5 (Reg I.l2);
  A.branch b I.Bgu "rsp_no_top";
  A.mov b (Reg I.l2) I.l5;
  A.label b "rsp_no_top";
  (* hysteresis bands at 300/600/900 with an 8-count dead zone *)
  A.op3 b I.Umul I.l3 (Imm 300) I.o4;
  A.op3 b I.Add I.o4 (Imm 8) I.o4;
  A.cmp b I.l2 (Reg I.o4);
  A.branch b I.Bleu "rsp_no_up";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.branch b I.Ba "rsp_band_done";
  A.label b "rsp_no_up";
  A.op3 b I.Subcc I.o4 (Imm 316) I.o4;
  A.branch b I.Bneg "rsp_band_done";
  A.cmp b I.l2 (Reg I.o4);
  A.branch b I.Bcc "rsp_band_done";
  A.op3 b I.Subcc I.l3 (Imm 1) I.l3;
  A.branch b I.Bpos "rsp_down_ok";
  A.mov b (Imm 0) I.l3;
  A.label b "rsp_down_ok";
  A.op3 b I.Add I.l4 (Imm 1) I.l4;
  A.label b "rsp_band_done";
  (* publish the band byte to the dashboard port *)
  A.load_label b "rsp_port" I.o5;
  A.st b I.Stb I.l3 I.o5 (Imm 0);
  A.st b I.Sth I.l2 I.o5 (Imm 2);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "rsp_loop";
  Common.store_result b ~index:0 ~src:I.l2 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l4 ~addr_tmp:I.o7;
  Common.store_result b ~index:2 ~src:I.l5 ~addr_tmp:I.o7

let data ~dataset b =
  let periods = Common.gen_words ~seed:(601 + dataset) ~n:n_pulses ~lo:200 ~hi:4000 in
  A.data_label b "rsp_in";
  A.words b periods;
  A.data_label b "rsp_work";
  A.space_words b n_pulses;
  A.data_label b "rsp_port";
  A.space_words b 1

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
