(** CAN remote data request handling (EEMBC Autobench [canrdr01]).

    Walks a queue of received CAN frames: extract the 11-bit identifier
    from the packed header, match it against the acceptance-filter
    table, copy the matched frame's payload bytes to the reply buffer,
    and keep RTR/error statistics — byte-grain traffic with heavy bit
    slicing, as in the EEMBC original. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "canrdr"

let n_frames = 12

let n_filters = 6

let payload_bytes = 8

let init b =
  (* Build the acceptance filter table from the seed words. *)
  A.load_label b "can_seed" I.l0;
  A.load_label b "can_filters" I.l1;
  A.set32 b n_filters I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.op3 b I.Srl I.l3 (Imm 5) I.l3;
  A.op3 b I.And I.l3 (Imm 0x7FF) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "can_frames" I.l0;
  A.set32 b n_frames I.l1;
  A.mov b (Imm 0) I.l2;
  (* matched count *)
  A.mov b (Imm 0) I.l3;
  (* rtr count *)
  A.mov b (Imm 0) I.l4;
  (* stuff-bit estimate accumulator *)
  A.label b "can_frame";
  (* header: [id:11][rtr:1][dlc:4] in the low 16 bits *)
  A.ld b I.Lduh I.l0 (Imm 0) I.o0;
  A.op3 b I.Srl I.o0 (Imm 5) I.o1;
  A.op3 b I.And I.o1 (Imm 0x7FF) I.o1;
  (* id *)
  A.op3 b I.Andcc I.o0 (Imm 0x10) I.g0;
  A.branch b I.Be "can_not_rtr";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.label b "can_not_rtr";
  (* filter scan *)
  A.load_label b "can_filters" I.o2;
  A.mov b (Imm n_filters) I.o3;
  A.label b "can_filter";
  A.ld b I.Ld I.o2 (Imm 0) I.o4;
  A.op3 b I.Xorcc I.o4 (Reg I.o1) I.g0;
  A.branch b I.Be "can_match";
  A.op3 b I.Add I.o2 (Imm 4) I.o2;
  A.op3 b I.Subcc I.o3 (Imm 1) I.o3;
  A.branch b I.Bne "can_filter";
  A.branch b I.Ba "can_next";
  A.label b "can_match";
  A.op3 b I.Add I.l2 (Imm 1) I.l2;
  (* copy payload bytes into the reply buffer, xor-folding a parity *)
  A.load_label b "can_reply" I.o2;
  A.mov b (Imm 0) I.o3;
  A.mov b (Imm 0) I.o5;
  A.label b "can_copy";
  A.op3 b I.Add I.l0 (Reg I.o3) I.o4;
  A.ld b I.Ldub I.o4 (Imm 4) I.o4;
  A.op3 b I.Xor I.o5 (Reg I.o4) I.o5;
  A.op3 b I.Add I.o2 (Reg I.o3) I.g3;
  A.st b I.Stb I.o4 I.g3 (Imm 0);
  A.op3 b I.Add I.o3 (Imm 1) I.o3;
  A.cmp b I.o3 (Imm payload_bytes);
  A.branch b I.Bl "can_copy";
  (* stuff-bit estimate: count 1-runs via shifted self-ands (signed mul
     mixes the parity in, as the reference model's CRC seed does) *)
  A.op3 b I.Smul I.o5 (Imm 31) I.o5;
  A.op3 b I.Sra I.o5 (Imm 3) I.o5;
  A.op3 b I.Addcc I.l4 (Reg I.o5) I.l4;
  A.branch b I.Bcc "can_no_carry";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.label b "can_no_carry";
  A.label b "can_next";
  A.op3 b I.Add I.l0 (Imm 16) I.l0;
  (* frame record: 4-byte header + 8 payload + pad *)
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "can_frame";
  (* reply status halfword *)
  A.load_label b "can_reply" I.o2;
  A.op3 b I.Sll I.l2 (Imm 8) I.o0;
  A.op3 b I.Or I.o0 (Reg I.l3) I.o0;
  A.st b I.Sth I.o0 I.o2 (Imm 8);
  Common.store_result b ~index:0 ~src:I.l2 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l3 ~addr_tmp:I.o7;
  Common.store_result b ~index:2 ~src:I.l4 ~addr_tmp:I.o7

let data ~dataset b =
  let seeds = Common.gen_words ~seed:(501 + dataset) ~n:n_filters ~lo:1 ~hi:0xFFFF in
  (* Frame records: header word + two payload words + pad word. *)
  let headers = Common.gen_words ~seed:(502 + dataset) ~n:n_frames ~lo:1 ~hi:0xFFFF in
  let payloads = Common.gen_words ~seed:(503 + dataset) ~n:(2 * n_frames) ~lo:0 ~hi:Bitops.mask32 in
  A.data_label b "can_seed";
  A.words b seeds;
  A.data_label b "can_frames";
  for i = 0 to n_frames - 1 do
    (* Make some identifiers actually match the filter table. *)
    let header =
      if i mod 3 = 0 then ((seeds.(i mod n_filters) lsr 5) land 0x7FF) lsl 5
      else headers.(i)
    in
    A.word b (header lsl 16 lor (header land 0xFFFF));
    A.word b payloads.(2 * i);
    A.word b payloads.((2 * i) + 1);
    A.word b 0
  done;
  A.data_label b "can_filters";
  A.space_words b n_filters;
  A.data_label b "can_reply";
  A.space_words b 4

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
