(** Angle-to-time conversion (EEMBC Autobench [a2time01]).

    Converts crankshaft tooth-wheel angle samples into firing delay
    times: per sample, locate the tooth, compute the residual angle,
    scale it by the measured rotation period and accumulate the 64-bit
    total, counting out-of-window samples and saturating the per-sample
    delay as real ignition controllers do. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "a2time"

let n_samples = 24

let tooth_angle = 1500 (* hundredths of a degree per tooth *)

let init b =
  (* Allocation phase: copy the raw angle samples into the working
     buffer, clamping to a full revolution. *)
  A.load_label b "a2time_in" I.l0;
  A.load_label b "a2time_work" I.l1;
  A.set32 b n_samples I.l2;
  A.set32 b 36000 I.l4;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.cmp b I.l3 (Reg I.l4);
  A.branch b I.Bleu "init_ok";
  A.mov b (Reg I.l4) I.l3;
  A.label b "init_ok";
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "a2time_work" I.l0;
  A.load_label b "a2time_periods" I.l1;
  A.set32 b n_samples I.l2;
  A.mov b (Imm 0) I.l3;
  (* acc lo *)
  A.mov b (Imm 0) I.l4;
  (* acc hi *)
  A.mov b (Imm 0) I.l5;
  (* out-of-window count *)
  A.mov b (Imm 0) I.l6;
  (* saturation count *)
  A.label b "a2_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  (* tooth index and residual angle within the tooth *)
  A.op3 b I.Udiv I.o0 (Imm tooth_angle) I.o1;
  A.op3 b I.Umul I.o1 (Imm tooth_angle) I.o2;
  A.op3 b I.Sub I.o0 (Reg I.o2) I.o3;
  (* delay = residual * period / tooth_angle, with period a 16-bit sensor *)
  A.ld b I.Lduh I.l1 (Imm 0) I.o4;
  A.op3 b I.Umul I.o3 (Reg I.o4) I.o5;
  A.op3 b I.Udiv I.o5 (Imm tooth_angle) I.o5;
  (* saturate the per-sample delay at 0x7FFF (ignition hardware limit) *)
  A.set32 b 0x7FFF I.o2;
  A.cmp b I.o5 (Reg I.o2);
  A.branch b I.Bleu "a2_no_sat";
  A.mov b (Reg I.o2) I.o5;
  A.op3 b I.Add I.l6 (Imm 1) I.l6;
  A.label b "a2_no_sat";
  (* 64-bit accumulate *)
  A.op3 b I.Addcc I.l3 (Reg I.o5) I.l3;
  A.op3 b I.Addx I.l4 (Imm 0) I.l4;
  (* out-of-window detection: tooth index beyond the wheel *)
  A.cmp b I.o1 (Imm 20);
  A.branch b I.Bleu "a2_in_window";
  A.op3 b I.Add I.l5 (Imm 1) I.l5;
  A.label b "a2_in_window";
  (* signed drift check on the residual: negative after centring? *)
  A.op3 b I.Subcc I.o3 (Imm (tooth_angle / 2)) I.o0;
  A.branch b I.Bneg "a2_low_half";
  A.op3 b I.Xorcc I.o1 (Imm 7) I.g0;
  A.branch b I.Bne "a2_half_done";
  A.st b I.Sth I.o5 I.l1 (Imm 2);
  A.branch b I.Ba "a2_half_done";
  A.label b "a2_low_half";
  A.op3 b I.Sra I.o3 (Imm 1) I.o3;
  A.label b "a2_half_done";
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 2) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "a2_loop";
  (* publish: accumulator, overflow word, window misses, saturations *)
  A.op3 b I.Srl I.l3 (Imm 4) I.o0;
  Common.store_result b ~index:0 ~src:I.o0 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l4 ~addr_tmp:I.o7;
  Common.store_result b ~index:2 ~src:I.l5 ~addr_tmp:I.o7;
  Common.store_result b ~index:3 ~src:I.l6 ~addr_tmp:I.o7

let data ~dataset b =
  let angles = Common.gen_words ~seed:(101 + dataset) ~n:n_samples ~lo:1 ~hi:39000 in
  let periods = Common.gen_words ~seed:(201 + dataset) ~n:n_samples ~lo:100 ~hi:60000 in
  A.data_label b "a2time_in";
  A.words b angles;
  A.data_label b "a2time_work";
  A.space_words b n_samples;
  A.data_label b "a2time_periods";
  (* halfword array, packed two per word, big-endian *)
  let packed =
    Array.init ((n_samples + 1) / 2) (fun i ->
        let hi = periods.(2 * i) land 0xFFFF in
        let lo = if (2 * i) + 1 < n_samples then periods.((2 * i) + 1) land 0xFFFF else 0 in
        (hi lsl 16) lor lo)
  in
  A.words b packed

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
