(** Synthetic memory-intensive benchmark (paper Table 1) — see the .ml for the algorithm notes. *)

val name : string

val program : ?iterations:int -> ?dataset:int -> unit -> Sparc.Asm.program
(** Assemble the workload. [iterations] scales the kernel loop;
    [dataset] selects the deterministic input data. *)
