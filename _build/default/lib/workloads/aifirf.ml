(** FIR filter (EEMBC Autobench [aifirf01]).

    The classic automotive signal-conditioning kernel: a 16-tap
    direct-form FIR over a sensor sample stream, Q12 coefficients,
    with output saturation and an energy accumulator. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "aifirf"

let taps = 8

let n_samples = 28

let init b =
  (* Centre the raw samples around zero (DC removal, as the EEMBC
     kernel's setup does). *)
  A.load_label b "fir_in" I.l0;
  A.load_label b "fir_work" I.l1;
  A.set32 b n_samples I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.op3 b I.Sub I.l3 (Imm 2048) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "fir_work" I.l0;
  A.load_label b "fir_coef" I.l1;
  A.set32 b (n_samples - taps) I.l2;
  A.mov b (Imm 0) I.l3;
  (* energy accumulator lo *)
  A.mov b (Imm 0) I.l4;
  (* energy accumulator hi *)
  A.mov b (Imm 0) I.l5;
  (* saturation count *)
  A.label b "fir_n";
  A.mov b (Imm 0) I.o0;
  (* y *)
  A.mov b (Imm 0) I.o1;
  (* k *)
  A.label b "fir_k";
  A.op3 b I.Sll I.o1 (Imm 2) I.o2;
  A.op3 b I.Add I.l0 (Reg I.o2) I.o3;
  A.ld b I.Ld I.o3 (Imm 0) I.o3;
  A.op3 b I.Add I.l1 (Reg I.o2) I.o4;
  A.ld b I.Ld I.o4 (Imm 0) I.o4;
  A.op3 b I.Smul I.o3 (Reg I.o4) I.o3;
  A.op3 b I.Sra I.o3 (Imm 12) I.o3;
  (* Q12 *)
  A.op3 b I.Addcc I.o0 (Reg I.o3) I.o0;
  A.branch b I.Bvc "fir_no_sat";
  A.set32 b 0x7FFF_FFFF I.o0;
  A.op3 b I.Add I.l5 (Imm 1) I.l5;
  A.label b "fir_no_sat";
  A.op3 b I.Add I.o1 (Imm 1) I.o1;
  A.cmp b I.o1 (Imm taps);
  A.branch b I.Bl "fir_k";
  (* publish the sample and accumulate |y| into the energy estimate *)
  A.load_label b "fir_out" I.o2;
  A.st b I.Sth I.o0 I.o2 (Imm 0);
  A.op3 b I.Orcc I.o0 (Imm 0) I.g0;
  A.branch b I.Bpos "fir_abs_done";
  A.op3 b I.Sub I.g0 (Reg I.o0) I.o0;
  A.label b "fir_abs_done";
  A.op3 b I.Addcc I.l3 (Reg I.o0) I.l3;
  A.op3 b I.Addx I.l4 (Imm 0) I.l4;
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "fir_n";
  Common.store_result b ~index:0 ~src:I.l3 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l4 ~addr_tmp:I.o7;
  Common.store_result b ~index:2 ~src:I.l5 ~addr_tmp:I.o7

let data ~dataset b =
  let samples = Common.gen_words ~seed:(1201 + dataset) ~n:n_samples ~lo:0 ~hi:4095 in
  let coefs = Common.gen_words ~seed:(1202 + dataset) ~n:taps ~lo:1 ~hi:8191 in
  A.data_label b "fir_in";
  A.words b samples;
  A.data_label b "fir_work";
  A.space_words b n_samples;
  A.data_label b "fir_coef";
  A.words b coefs;
  A.data_label b "fir_out";
  A.space_words b 1

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
