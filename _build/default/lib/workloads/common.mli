(** Shared workload harness, mirroring the EEMBC Autobench test-harness
    structure: a top-level iteration driver calls the kernel once per
    iteration (through a register window), a result-summary pass
    publishes extrema/mean/sign statistics, and a table-driven CRC-16
    over the result region seals the run — so every benchmark's
    outcome is off-core observable even when a fault corrupts only
    intermediate state. *)

module A = Sparc.Asm
module I = Sparc.Isa

val result_words : int
(** Size of the result region each kernel may publish into (starting
    at {!Sparc.Layout.result_base}).  Kernels own slots 0-7; the
    harness summary uses slots 10-14 and the CRC lands in the last. *)

val standard :
  name:string ->
  iterations:int ->
  init:(A.t -> unit) ->
  kernel:(A.t -> unit) ->
  data:(A.t -> unit) ->
  A.program
(** [standard ~name ~iterations ~init ~kernel ~data] assembles:
    prologue; [init] (runs once — the benchmark's data-allocation
    phase); an iteration loop calling the kernel function; the summary
    and CRC-16 epilogues; exit.  [kernel] is emitted inside a
    [save]/[restore] window and may use %i, %l, %o and %g1-%g3
    registers freely ([%i0] receives the iteration index, counting
    down).  [data] emits the data section (the CRC table is appended
    automatically). *)

val emit_stats : A.t -> unit
(** The harness summary pass over the result region (exposed for the
    [custom_benchmark] example); clobbers %l0-%l6, %o0-%o5, %g3. *)

val emit_crc16 :
  A.t ->
  prefix:string ->
  base:int ->
  bytes:int ->
  dst:I.reg ->
  tmp:I.reg * I.reg * I.reg ->
  unit
(** Emit a table-driven CRC-16/CCITT loop over [bytes] bytes starting
    at absolute address [base], leaving the checksum in [dst].
    Requires the harness data section (the [crc16_tab] label).
    [prefix] namespaces the internal labels; the three [tmp] registers
    and %g1-%g3 are clobbered. *)

val crc16_table : int array
(** The 256-entry CRC-16/CCITT table shipped in every program's data
    section. *)

val crc16_reference : int array -> int
(** Host-side CRC over a byte array — lets tests predict the checksum
    a fault-free run must publish. *)

val store_result : A.t -> index:int -> src:I.reg -> addr_tmp:I.reg -> unit
(** Store a word into slot [index] of the result region. *)

val gen_words : seed:int -> n:int -> lo:int -> hi:int -> int array
(** Deterministic input-data generation for a dataset: [n] uniform
    values in \[lo, hi\] (inclusive). *)
