(** Basic "floating-point" automotive kernel (EEMBC Autobench
    [basefp01]), here in Q16.16 fixed point: the paper's study targets
    the integer unit only, and on an FPU-less Leon3 configuration FP
    arithmetic is exactly this kind of soft multi-word integer code.

    Per sample: Q16.16 multiply built from four 16x16 partial products,
    a Newton-style reciprocal refinement step, and range reduction —
    shift/add/carry heavy, as soft-float is. *)

module A = Sparc.Asm
module I = Sparc.Isa

let name = "basefp"

let n_samples = 10

let init b =
  (* Normalise raw samples into Q16.16 in [1.0, 2.0): find the leading
     bit by shifting, the soft-float normalisation idiom. *)
  A.load_label b "bfp_in" I.l0;
  A.load_label b "bfp_work" I.l1;
  A.set32 b n_samples I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.set32 b 0x10000 I.l4;
  A.label b "init_norm";
  A.cmp b I.l3 (Reg I.l4);
  A.branch b I.Bcc "init_done_norm";
  A.op3 b I.Sll I.l3 (Imm 1) I.l3;
  A.branch b I.Ba "init_norm";
  A.label b "init_done_norm";
  A.set32 b 0x1FFFF I.l4;
  A.op3 b I.And I.l3 (Reg I.l4) I.l3;
  A.set32 b 0x10000 I.l4;
  A.op3 b I.Or I.l3 (Reg I.l4) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

(* Q16.16 multiply o0*o1 -> o0 using 16-bit halves (umul gives the low
   32 bits only, as the paper's Leon3 sees architecturally). *)
let emit_qmul b =
  A.op3 b I.Srl I.o0 (Imm 16) I.o2;
  (* ah *)
  A.set32 b 0xFFFF I.o5;
  A.op3 b I.And I.o0 (Reg I.o5) I.o3;
  (* al *)
  A.op3 b I.Srl I.o1 (Imm 16) I.o4;
  (* bh *)
  A.op3 b I.And I.o1 (Reg I.o5) I.o5;
  (* bl *)
  A.op3 b I.Umul I.o2 (Reg I.o4) I.g3;
  (* ah*bh *)
  A.op3 b I.Sll I.g3 (Imm 16) I.g3;
  A.op3 b I.Umul I.o2 (Reg I.o5) I.o2;
  (* ah*bl *)
  A.op3 b I.Umul I.o3 (Reg I.o4) I.o4;
  (* al*bh *)
  A.op3 b I.Umul I.o3 (Reg I.o5) I.o3;
  (* al*bl *)
  A.op3 b I.Srl I.o3 (Imm 16) I.o3;
  A.op3 b I.Addcc I.o2 (Reg I.o4) I.o2;
  A.op3 b I.Addx I.o2 (Imm 0) I.o2;
  A.op3 b I.Add I.o2 (Reg I.o3) I.o2;
  A.op3 b I.Add I.g3 (Reg I.o2) I.o0

let kernel b =
  A.load_label b "bfp_work" I.l0;
  A.set32 b n_samples I.l1;
  A.mov b (Imm 0) I.l2;
  (* product accumulator *)
  A.mov b (Imm 0) I.l3;
  (* exponent-underflow count *)
  A.label b "bfp_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.o0;
  A.mov b (Reg I.o0) I.l4;
  (* x *)
  (* y = x * x (Q16.16) *)
  A.mov b (Reg I.o0) I.o1;
  emit_qmul b;
  A.mov b (Reg I.o0) I.l5;
  (* one Newton step of reciprocal: r = r*(2 - x*r), seed r = 1.0 *)
  A.set32 b 0x8000 I.o1;
  (* r0 = 0.5 *)
  A.mov b (Reg I.l4) I.o0;
  emit_qmul b;
  (* x*r *)
  A.set32 b 0x20000 I.o1;
  A.op3 b I.Subcc I.o1 (Reg I.o0) I.o0;
  (* 2 - x*r *)
  A.branch b I.Bpos "bfp_pos";
  A.mov b (Imm 0) I.o0;
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.label b "bfp_pos";
  A.set32 b 0x8000 I.o1;
  emit_qmul b;
  (* r1 *)
  (* blend: acc += (y >> 2) + r1, detecting unsigned wrap *)
  A.op3 b I.Srl I.l5 (Imm 2) I.o2;
  A.op3 b I.Add I.o0 (Reg I.o2) I.o0;
  A.op3 b I.Addcc I.l2 (Reg I.o0) I.l2;
  A.branch b I.Bcs "bfp_wrap";
  A.branch b I.Ba "bfp_no_wrap";
  A.label b "bfp_wrap";
  A.op3 b I.Add I.l3 (Imm 1) I.l3;
  A.label b "bfp_no_wrap";
  A.st b I.St I.o0 I.l0 (Imm 0);
  (* write back refined value *)
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l1 (Imm 1) I.l1;
  A.branch b I.Bne "bfp_loop";
  Common.store_result b ~index:0 ~src:I.l2 ~addr_tmp:I.o7;
  Common.store_result b ~index:1 ~src:I.l3 ~addr_tmp:I.o7

let data ~dataset b =
  let samples = Common.gen_words ~seed:(801 + dataset) ~n:n_samples ~lo:3 ~hi:0xFFFFF in
  A.data_label b "bfp_in";
  A.words b samples;
  A.data_label b "bfp_work";
  A.space_words b n_samples

let program ?(iterations = 2) ?(dataset = 0) () =
  Common.standard ~name ~iterations ~init ~kernel ~data:(data ~dataset)
