(** Shared experiment context: one elaborated RTL system, one ISS
    configuration, campaign settings, and a memo of campaign results so
    experiments that need the same (workload, block) pair — e.g.
    Fig. 5 and Fig. 7 — pay for it once. *)

module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection

type t

val create : ?samples:int -> ?seed:int -> unit -> t
(** [samples] is the per-(workload, block) injection sample size
    (default 250; the [RICV_SAMPLES] environment variable, when set,
    overrides the default). *)

val samples : t -> int

val system : t -> Leon3.System.t

val core : t -> Leon3.Core.t

val clock_mhz : int
(** Nominal Leon3 clock used to convert cycles to microseconds (50). *)

val us_of_cycles : int -> float

val campaign :
  t ->
  key:string ->
  ?models:Rtl.Circuit.fault_model list ->
  Sparc.Asm.program ->
  Injection.target ->
  (Rtl.Circuit.fault_model * Campaign.summary) list
(** Memoised campaign run.  [key] must uniquely identify the workload
    variant (name, iterations, dataset); results are cached per
    (key, target, models). *)

val golden : t -> key:string -> Sparc.Asm.program -> Campaign.golden
(** Memoised fault-free RTL run. *)
