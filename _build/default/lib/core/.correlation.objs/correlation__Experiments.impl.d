lib/core/experiments.ml: Context Diversity Fault_injection Iss Leon3 List Option Printf Report Rtl Sparc Stats Unix Workloads
