lib/core/context.mli: Fault_injection Leon3 Rtl Sparc
