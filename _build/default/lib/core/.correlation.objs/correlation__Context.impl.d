lib/core/context.ml: Fault_injection Hashtbl Leon3 List Rtl Sparc String Sys
