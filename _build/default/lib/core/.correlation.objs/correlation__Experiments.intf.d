lib/core/experiments.mli: Context Fault_injection Report Sparc Stats
