lib/fault/campaign.ml: Array Atomic Domain Injection Leon3 List Printf Rtl Sparc Stats
