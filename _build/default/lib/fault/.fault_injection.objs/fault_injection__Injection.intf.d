lib/fault/injection.mli: Leon3 Rtl Sparc
