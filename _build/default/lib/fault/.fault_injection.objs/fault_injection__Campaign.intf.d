lib/fault/campaign.mli: Injection Leon3 Rtl Sparc
