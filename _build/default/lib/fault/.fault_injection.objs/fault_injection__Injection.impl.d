lib/fault/injection.ml: Hashtbl Leon3 List Option Printf Rtl Sparc String
