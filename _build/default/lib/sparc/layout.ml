let text_base = 0x0000_1000
let data_base = 0x0001_0000
let stack_top = 0x0003_FF00
let exit_addr = 0xFFFF_0000
let result_base = 0x0002_0000
let is_exit_store addr = addr = exit_addr
