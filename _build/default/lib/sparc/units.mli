(** Functional-unit taxonomy of the modelled microcontroller.

    The diversity metric of the paper is computed per functional unit
    ([D_m]): from the ISS instruction stream we count, for each unit,
    how many distinct instruction types exercise it.  The same taxonomy
    names the hierarchical groups of the RTL model, which is how the
    area weights [alpha_m] of Eq. (1) are derived from real node
    counts. *)

type t =
  | Fetch        (** PC generation and instruction fetch datapath *)
  | Decode       (** instruction register and decode logic *)
  | Regfile      (** windowed register file, ports and address logic *)
  | Adder        (** ALU add/subtract datapath incl. condition codes *)
  | Logic_unit   (** ALU bitwise datapath *)
  | Shifter      (** barrel shifter *)
  | Multiplier
  | Divider
  | Branch_unit  (** condition evaluation and branch target adder *)
  | Load_store   (** memory-stage address/data path *)
  | Writeback    (** result mux and write-port path *)
  | Exception_unit  (** XC-stage trap detection *)
  | Icache       (** CMEM: instruction cache tag/data/control *)
  | Dcache       (** CMEM: data cache tag/data/control *)

val all : t list

val name : t -> string

val of_name : string -> t option

val iu_units : t list
(** The units making up the integer unit (everything but the caches). *)

val cmem_units : t list
(** The units making up the cache memory block. *)

val used_by : Isa.opcode -> t list
(** [used_by op] is the set of units instruction type [op] exercises
    when it flows down the pipeline.  Every opcode uses [Fetch],
    [Decode], [Icache] and [Writeback]; the rest depends on the type. *)

val pp : Format.formatter -> t -> unit
