type reg = int

type operand = Reg of reg | Imm of int

type opcode =
  | Add | Addcc | Addx | Addxcc
  | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc
  | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc
  | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc
  | Udiv | Sdiv
  | Save | Restore | Jmpl
  | Ld | Ldub | Ldsb | Lduh | Ldsh
  | St | Stb | Sth
  | Sethi
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs
  | Call

type instr =
  | Alu of { op : opcode; rs1 : reg; op2 : operand; rd : reg }
  | Mem of { op : opcode; rs1 : reg; op2 : operand; rd : reg }
  | Sethi_i of { imm22 : int; rd : reg }
  | Branch_i of { op : opcode; disp22 : int }
  | Call_i of { disp30 : int }

type icc = { n : bool; z : bool; v : bool; c : bool }

let icc_zero = { n = false; z = false; v = false; c = false }

let icc_of_word w =
  { n = w land 8 <> 0; z = w land 4 <> 0; v = w land 2 <> 0; c = w land 1 <> 0 }

let icc_to_word { n; z; v; c } =
  (if n then 8 else 0) lor (if z then 4 else 0) lor (if v then 2 else 0)
  lor if c then 1 else 0

let opcode_of_instr = function
  | Alu { op; _ } | Mem { op; _ } | Branch_i { op; _ } -> op
  | Sethi_i _ -> Sethi
  | Call_i _ -> Call

let all_opcodes =
  [ Add; Addcc; Addx; Addxcc; Sub; Subcc; Subx; Subxcc;
    And; Andcc; Andn; Andncc; Or; Orcc; Orn; Orncc;
    Xor; Xorcc; Xnor; Xnorcc;
    Sll; Srl; Sra;
    Umul; Umulcc; Smul; Smulcc; Udiv; Sdiv;
    Save; Restore; Jmpl;
    Ld; Ldub; Ldsb; Lduh; Ldsh; St; Stb; Sth;
    Sethi;
    Ba; Bn; Bne; Be; Bg; Ble; Bge; Bl;
    Bgu; Bleu; Bcc; Bcs; Bpos; Bneg; Bvc; Bvs;
    Call ]

let num_opcodes = List.length all_opcodes

let opcode_table = Array.of_list all_opcodes

let index_table =
  let h = Hashtbl.create 64 in
  List.iteri (fun i op -> Hashtbl.add h op i) all_opcodes;
  h

let opcode_index op = Hashtbl.find index_table op

let opcode_of_index i = opcode_table.(i)

let mnemonic = function
  | Add -> "add" | Addcc -> "addcc" | Addx -> "addx" | Addxcc -> "addxcc"
  | Sub -> "sub" | Subcc -> "subcc" | Subx -> "subx" | Subxcc -> "subxcc"
  | And -> "and" | Andcc -> "andcc" | Andn -> "andn" | Andncc -> "andncc"
  | Or -> "or" | Orcc -> "orcc" | Orn -> "orn" | Orncc -> "orncc"
  | Xor -> "xor" | Xorcc -> "xorcc" | Xnor -> "xnor" | Xnorcc -> "xnorcc"
  | Sll -> "sll" | Srl -> "srl" | Sra -> "sra"
  | Umul -> "umul" | Umulcc -> "umulcc" | Smul -> "smul" | Smulcc -> "smulcc"
  | Udiv -> "udiv" | Sdiv -> "sdiv"
  | Save -> "save" | Restore -> "restore" | Jmpl -> "jmpl"
  | Ld -> "ld" | Ldub -> "ldub" | Ldsb -> "ldsb" | Lduh -> "lduh" | Ldsh -> "ldsh"
  | St -> "st" | Stb -> "stb" | Sth -> "sth"
  | Sethi -> "sethi"
  | Ba -> "ba" | Bn -> "bn" | Bne -> "bne" | Be -> "be"
  | Bg -> "bg" | Ble -> "ble" | Bge -> "bge" | Bl -> "bl"
  | Bgu -> "bgu" | Bleu -> "bleu" | Bcc -> "bcc" | Bcs -> "bcs"
  | Bpos -> "bpos" | Bneg -> "bneg" | Bvc -> "bvc" | Bvs -> "bvs"
  | Call -> "call"

let opcode_of_mnemonic s =
  List.find_opt (fun op -> mnemonic op = s) all_opcodes

let is_branch = function
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs -> true
  | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc | Udiv | Sdiv
  | Save | Restore | Jmpl
  | Ld | Ldub | Ldsb | Lduh | Ldsh | St | Stb | Sth
  | Sethi | Call -> false

let is_load = function
  | Ld | Ldub | Ldsb | Lduh | Ldsh -> true
  | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc | Udiv | Sdiv
  | Save | Restore | Jmpl | St | Stb | Sth | Sethi
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs | Call -> false

let is_store = function
  | St | Stb | Sth -> true
  | Ld | Ldub | Ldsb | Lduh | Ldsh
  | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc | Udiv | Sdiv
  | Save | Restore | Jmpl | Sethi
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs | Call -> false

let is_mem op = is_load op || is_store op

let writes_icc = function
  | Addcc | Addxcc | Subcc | Subxcc | Andcc | Andncc | Orcc | Orncc
  | Xorcc | Xnorcc | Umulcc | Smulcc -> true
  | Add | Addx | Sub | Subx | And | Andn | Or | Orn | Xor | Xnor
  | Sll | Srl | Sra | Umul | Smul | Udiv | Sdiv
  | Save | Restore | Jmpl
  | Ld | Ldub | Ldsb | Lduh | Ldsh | St | Stb | Sth | Sethi
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs | Call -> false

let cond_holds op { n; z; v; c } =
  match op with
  | Ba -> true
  | Bn -> false
  | Bne -> not z
  | Be -> z
  | Bg -> not (z || n <> v)
  | Ble -> z || n <> v
  | Bge -> not (n <> v)
  | Bl -> n <> v
  | Bgu -> not (c || z)
  | Bleu -> c || z
  | Bcc -> not c
  | Bcs -> c
  | Bpos -> not n
  | Bneg -> n
  | Bvc -> not v
  | Bvs -> v
  | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc | Udiv | Sdiv
  | Save | Restore | Jmpl
  | Ld | Ldub | Ldsb | Lduh | Ldsh | St | Stb | Sth
  | Sethi | Call ->
      invalid_arg "Isa.cond_holds: not a branch opcode"

let nop = Sethi_i { imm22 = 0; rd = 0 }

let g0 = 0 and g1 = 1 and g2 = 2 and g3 = 3
and g4 = 4 and g5 = 5 and g6 = 6 and g7 = 7
let o0 = 8 and o1 = 9 and o2 = 10 and o3 = 11
and o4 = 12 and o5 = 13 and sp = 14 and o7 = 15
let l0 = 16 and l1 = 17 and l2 = 18 and l3 = 19
and l4 = 20 and l5 = 21 and l6 = 22 and l7 = 23
let i0 = 24 and i1 = 25 and i2 = 26 and i3 = 27
and i4 = 28 and i5 = 29 and fp = 30 and i7 = 31

let reg_name r =
  assert (r >= 0 && r < 32);
  if r = 14 then "%sp"
  else if r = 30 then "%fp"
  else
    let group = [| 'g'; 'o'; 'l'; 'i' |].(r / 8) in
    Printf.sprintf "%%%c%d" group (r mod 8)

let pp_operand fmt = function
  | Reg r -> Format.pp_print_string fmt (reg_name r)
  | Imm i -> Format.pp_print_int fmt i

let pp_instr fmt = function
  | Alu { op; rs1; op2; rd } ->
      Format.fprintf fmt "%s %s, %a, %s" (mnemonic op) (reg_name rs1) pp_operand op2
        (reg_name rd)
  | Mem { op; rs1; op2; rd } when is_store op ->
      Format.fprintf fmt "%s %s, [%s + %a]" (mnemonic op) (reg_name rd) (reg_name rs1)
        pp_operand op2
  | Mem { op; rs1; op2; rd } ->
      Format.fprintf fmt "%s [%s + %a], %s" (mnemonic op) (reg_name rs1) pp_operand op2
        (reg_name rd)
  | Sethi_i { imm22; rd } -> Format.fprintf fmt "sethi 0x%x, %s" imm22 (reg_name rd)
  | Branch_i { op; disp22 } -> Format.fprintf fmt "%s .%+d" (mnemonic op) disp22
  | Call_i { disp30 } -> Format.fprintf fmt "call .%+d" disp30

let instr_to_string i = Format.asprintf "%a" pp_instr i
