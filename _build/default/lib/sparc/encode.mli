(** Binary encoding of the instruction subset, following the SPARC v8
    instruction formats (the annul bit and ASI field are always zero).

    Both simulation engines fetch 32-bit words from memory and decode
    them with {!decode}, so the encoding is the single source of truth
    for what a program is. *)

exception Invalid_instruction of int
(** Raised by {!decode_exn} on a word outside the supported subset. *)

val encode : Isa.instr -> int
(** [encode i] is the 32-bit machine word for [i].  Raises
    [Invalid_argument] when a field is out of range (e.g. an immediate
    beyond simm13). *)

val decode : int -> Isa.instr option
(** [decode w] decodes a machine word, or [None] if the word is not a
    valid instruction of the subset. *)

val decode_exn : int -> Isa.instr
(** Like {!decode} but raises {!Invalid_instruction}. *)

val op3_of_opcode : Isa.opcode -> int
(** The 6-bit [op3] field for format-3 opcodes; raises
    [Invalid_argument] for format-1/2 opcodes. *)

val cond_code : Isa.opcode -> int
(** The 4-bit condition field of a [Bicc] opcode. *)
