exception Invalid_instruction of int

let op3_of_opcode : Isa.opcode -> int = function
  | Add -> 0x00 | And -> 0x01 | Or -> 0x02 | Xor -> 0x03
  | Sub -> 0x04 | Andn -> 0x05 | Orn -> 0x06 | Xnor -> 0x07
  | Addx -> 0x08 | Umul -> 0x0A | Smul -> 0x0B | Subx -> 0x0C
  | Udiv -> 0x0E | Sdiv -> 0x0F
  | Addcc -> 0x10 | Andcc -> 0x11 | Orcc -> 0x12 | Xorcc -> 0x13
  | Subcc -> 0x14 | Andncc -> 0x15 | Orncc -> 0x16 | Xnorcc -> 0x17
  | Addxcc -> 0x18 | Umulcc -> 0x1A | Smulcc -> 0x1B | Subxcc -> 0x1C
  | Sll -> 0x25 | Srl -> 0x26 | Sra -> 0x27
  | Jmpl -> 0x38 | Save -> 0x3C | Restore -> 0x3D
  | Ld -> 0x00 | Ldub -> 0x01 | Lduh -> 0x02 | Ldsb -> 0x09 | Ldsh -> 0x0A
  | St -> 0x04 | Stb -> 0x05 | Sth -> 0x06
  | Sethi | Call
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs ->
      invalid_arg "Encode.op3_of_opcode: not a format-3 opcode"

let cond_code : Isa.opcode -> int = function
  | Bn -> 0x0 | Be -> 0x1 | Ble -> 0x2 | Bl -> 0x3
  | Bleu -> 0x4 | Bcs -> 0x5 | Bneg -> 0x6 | Bvs -> 0x7
  | Ba -> 0x8 | Bne -> 0x9 | Bg -> 0xA | Bge -> 0xB
  | Bgu -> 0xC | Bcc -> 0xD | Bpos -> 0xE | Bvc -> 0xF
  | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc | Udiv | Sdiv
  | Save | Restore | Jmpl
  | Ld | Ldub | Ldsb | Lduh | Ldsh | St | Stb | Sth
  | Sethi | Call ->
      invalid_arg "Encode.cond_code: not a branch opcode"

let check_reg r = if r < 0 || r > 31 then invalid_arg "Encode: register out of range"

let encode_operand2 (op2 : Isa.operand) =
  match op2 with
  | Reg rs2 ->
      check_reg rs2;
      rs2
  | Imm imm ->
      if imm < -4096 || imm > 4095 then invalid_arg "Encode: immediate beyond simm13";
      (1 lsl 13) lor (imm land 0x1FFF)

let f3 ~op ~rd ~op3 ~rs1 ~op2 =
  check_reg rd;
  check_reg rs1;
  (op lsl 30) lor (rd lsl 25) lor (op3 lsl 19) lor (rs1 lsl 14) lor encode_operand2 op2

let encode (i : Isa.instr) =
  match i with
  | Alu { op; rs1; op2; rd } -> f3 ~op:0b10 ~rd ~op3:(op3_of_opcode op) ~rs1 ~op2
  | Mem { op; rs1; op2; rd } -> f3 ~op:0b11 ~rd ~op3:(op3_of_opcode op) ~rs1 ~op2
  | Sethi_i { imm22; rd } ->
      check_reg rd;
      if imm22 < 0 || imm22 > 0x3F_FFFF then invalid_arg "Encode: imm22 out of range";
      (rd lsl 25) lor (0b100 lsl 22) lor imm22
  | Branch_i { op; disp22 } ->
      if disp22 < -(1 lsl 21) || disp22 >= 1 lsl 21 then
        invalid_arg "Encode: disp22 out of range";
      (cond_code op lsl 25) lor (0b010 lsl 22) lor (disp22 land 0x3F_FFFF)
  | Call_i { disp30 } ->
      if disp30 < -(1 lsl 29) || disp30 >= 1 lsl 29 then
        invalid_arg "Encode: disp30 out of range";
      (0b01 lsl 30) lor (disp30 land 0x3FFF_FFFF)

let branch_of_cond = function
  | 0x0 -> Isa.Bn | 0x1 -> Isa.Be | 0x2 -> Isa.Ble | 0x3 -> Isa.Bl
  | 0x4 -> Isa.Bleu | 0x5 -> Isa.Bcs | 0x6 -> Isa.Bneg | 0x7 -> Isa.Bvs
  | 0x8 -> Isa.Ba | 0x9 -> Isa.Bne | 0xA -> Isa.Bg | 0xB -> Isa.Bge
  | 0xC -> Isa.Bgu | 0xD -> Isa.Bcc | 0xE -> Isa.Bpos | 0xF -> Isa.Bvc
  | _ -> assert false

let alu_of_op3 = function
  | 0x00 -> Some Isa.Add | 0x01 -> Some Isa.And | 0x02 -> Some Isa.Or
  | 0x03 -> Some Isa.Xor | 0x04 -> Some Isa.Sub | 0x05 -> Some Isa.Andn
  | 0x06 -> Some Isa.Orn | 0x07 -> Some Isa.Xnor | 0x08 -> Some Isa.Addx
  | 0x0A -> Some Isa.Umul | 0x0B -> Some Isa.Smul | 0x0C -> Some Isa.Subx
  | 0x0E -> Some Isa.Udiv | 0x0F -> Some Isa.Sdiv
  | 0x10 -> Some Isa.Addcc | 0x11 -> Some Isa.Andcc | 0x12 -> Some Isa.Orcc
  | 0x13 -> Some Isa.Xorcc | 0x14 -> Some Isa.Subcc | 0x15 -> Some Isa.Andncc
  | 0x16 -> Some Isa.Orncc | 0x17 -> Some Isa.Xnorcc | 0x18 -> Some Isa.Addxcc
  | 0x1A -> Some Isa.Umulcc | 0x1B -> Some Isa.Smulcc | 0x1C -> Some Isa.Subxcc
  | 0x25 -> Some Isa.Sll | 0x26 -> Some Isa.Srl | 0x27 -> Some Isa.Sra
  | 0x38 -> Some Isa.Jmpl | 0x3C -> Some Isa.Save | 0x3D -> Some Isa.Restore
  | _ -> None

let mem_of_op3 = function
  | 0x00 -> Some Isa.Ld | 0x01 -> Some Isa.Ldub | 0x02 -> Some Isa.Lduh
  | 0x09 -> Some Isa.Ldsb | 0x0A -> Some Isa.Ldsh
  | 0x04 -> Some Isa.St | 0x05 -> Some Isa.Stb | 0x06 -> Some Isa.Sth
  | _ -> None

(* Strict decoding: the subset never emits the annul bit or a non-zero
   ASI field, so words carrying them are rejected rather than silently
   normalised — keeping encode/decode a bijection on the subset. *)
let decode_operand2 w : Isa.operand option =
  if Bitops.bit 13 w = 1 then Some (Imm (Bitops.to_signed (Bitops.sext ~bits:13 w)))
  else if Bitops.bits ~hi:12 ~lo:5 w <> 0 then None
  else Some (Reg (Bitops.bits ~hi:4 ~lo:0 w))

let decode w =
  let w = Bitops.of_int w in
  match Bitops.bits ~hi:31 ~lo:30 w with
  | 0b01 ->
      let disp30 = Bitops.to_signed (Bitops.sext ~bits:30 w) in
      Some (Isa.Call_i { disp30 })
  | 0b00 -> (
      match Bitops.bits ~hi:24 ~lo:22 w with
      | 0b100 ->
          Some (Isa.Sethi_i { imm22 = Bitops.bits ~hi:21 ~lo:0 w; rd = Bitops.bits ~hi:29 ~lo:25 w })
      | 0b010 ->
          if Bitops.bit 29 w = 1 then None
            (* annul bit unsupported *)
          else
            let op = branch_of_cond (Bitops.bits ~hi:28 ~lo:25 w) in
            let disp22 = Bitops.to_signed (Bitops.sext ~bits:22 w) in
            Some (Isa.Branch_i { op; disp22 })
      | _ -> None)
  | 0b10 -> (
      match (alu_of_op3 (Bitops.bits ~hi:24 ~lo:19 w), decode_operand2 w) with
      | Some op, Some op2 ->
          Some
            (Isa.Alu
               { op;
                 rd = Bitops.bits ~hi:29 ~lo:25 w;
                 rs1 = Bitops.bits ~hi:18 ~lo:14 w;
                 op2 })
      | Some _, None | None, Some _ | None, None -> None)
  | 0b11 -> (
      match (mem_of_op3 (Bitops.bits ~hi:24 ~lo:19 w), decode_operand2 w) with
      | Some op, Some op2 ->
          Some
            (Isa.Mem
               { op;
                 rd = Bitops.bits ~hi:29 ~lo:25 w;
                 rs1 = Bitops.bits ~hi:18 ~lo:14 w;
                 op2 })
      | Some _, None | None, Some _ | None, None -> None)
  | _ -> assert false

let decode_exn w =
  match decode w with Some i -> i | None -> raise (Invalid_instruction w)
