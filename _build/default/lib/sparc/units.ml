type t =
  | Fetch
  | Decode
  | Regfile
  | Adder
  | Logic_unit
  | Shifter
  | Multiplier
  | Divider
  | Branch_unit
  | Load_store
  | Writeback
  | Exception_unit
  | Icache
  | Dcache

let all =
  [ Fetch; Decode; Regfile; Adder; Logic_unit; Shifter; Multiplier; Divider;
    Branch_unit; Load_store; Writeback; Exception_unit; Icache; Dcache ]

let name = function
  | Fetch -> "fetch"
  | Decode -> "decode"
  | Regfile -> "regfile"
  | Adder -> "adder"
  | Logic_unit -> "logic"
  | Shifter -> "shifter"
  | Multiplier -> "mul"
  | Divider -> "div"
  | Branch_unit -> "branch"
  | Load_store -> "lsu"
  | Writeback -> "writeback"
  | Exception_unit -> "exception"
  | Icache -> "icache"
  | Dcache -> "dcache"

let of_name s = List.find_opt (fun u -> name u = s) all

let iu_units =
  [ Fetch; Decode; Regfile; Adder; Logic_unit; Shifter; Multiplier; Divider;
    Branch_unit; Load_store; Writeback; Exception_unit ]

let cmem_units = [ Icache; Dcache ]

(* Every instruction flows through fetch, decode and the I-cache; the
   writeback mux is likewise always clocked.  The rest follows the
   datapath each instruction class actually steers. *)
let used_by (op : Isa.opcode) =
  let common = [ Fetch; Decode; Icache; Writeback ] in
  let specific =
    match op with
    | Add | Addcc | Addx | Addxcc | Sub | Subcc | Subx | Subxcc ->
        [ Regfile; Adder; Exception_unit ]
    | And | Andcc | Andn | Andncc | Or | Orcc | Orn | Orncc
    | Xor | Xorcc | Xnor | Xnorcc ->
        [ Regfile; Logic_unit; Exception_unit ]
    | Sll | Srl | Sra -> [ Regfile; Shifter; Exception_unit ]
    | Umul | Umulcc | Smul | Smulcc -> [ Regfile; Multiplier; Exception_unit ]
    | Udiv | Sdiv -> [ Regfile; Divider; Exception_unit ]
    | Save | Restore -> [ Regfile; Adder; Exception_unit ]
    | Jmpl -> [ Regfile; Adder; Branch_unit; Exception_unit ]
    | Ld | Ldub | Ldsb | Lduh | Ldsh ->
        [ Regfile; Adder; Load_store; Dcache; Exception_unit ]
    | St | Stb | Sth -> [ Regfile; Adder; Load_store; Dcache; Exception_unit ]
    | Sethi -> [ Regfile ]
    | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
    | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs ->
        [ Branch_unit ]
    | Call -> [ Regfile; Branch_unit ]
  in
  common @ specific

let pp fmt u = Format.pp_print_string fmt (name u)
