type size = Byte | Half | Word

type t =
  | Write of { addr : int; size : size; value : int }
  | Read of { addr : int; size : size }

let is_write = function Write _ -> true | Read _ -> false

let size_bytes = function Byte -> 1 | Half -> 2 | Word -> 4

let equal (a : t) (b : t) = a = b

let size_letter = function Byte -> 'b' | Half -> 'h' | Word -> 'w'

let pp fmt = function
  | Write { addr; size; value } ->
      Format.fprintf fmt "W%c %08x <- %08x" (size_letter size) addr value
  | Read { addr; size } -> Format.fprintf fmt "R%c %08x" (size_letter size) addr

let to_string e = Format.asprintf "%a" pp e
