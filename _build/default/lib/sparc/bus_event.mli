(** Off-core bus activity.

    Light-lockstep microcontrollers (Infineon AURIX, ST SPC56XL) compare
    cores at the off-core boundary; following the paper we classify a
    fault as a failure when the sequence of memory {e writes} diverges
    from the golden run.  Reads are also recorded so the stricter
    compare-reads policy can be studied as an ablation. *)

type size = Byte | Half | Word

type t =
  | Write of { addr : int; size : size; value : int }
  | Read of { addr : int; size : size }

val is_write : t -> bool

val size_bytes : size -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
