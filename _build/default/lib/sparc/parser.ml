exception Parse_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let register_of_string s =
  let named =
    [ ("%sp", Isa.sp); ("%fp", Isa.fp) ]
  in
  match List.assoc_opt (String.lowercase_ascii s) named with
  | Some r -> Some r
  | None ->
      if String.length s < 3 || s.[0] <> '%' then None
      else
        let group = Char.lowercase_ascii s.[1] in
        let num = String.sub s 2 (String.length s - 2) in
        match (group, int_of_string_opt num) with
        | _, None -> None
        | 'g', Some n when n < 8 -> Some n
        | 'o', Some n when n < 8 -> Some (8 + n)
        | 'l', Some n when n < 8 -> Some (16 + n)
        | 'i', Some n when n < 8 -> Some (24 + n)
        | 'r', Some n when n < 32 -> Some n
        | _, Some _ -> None

(* ---- lexing: split a statement into label / mnemonic / operand text ---- *)

let strip_comment line =
  let cut ch s = match String.index_opt s ch with Some i -> String.sub s 0 i | None -> s in
  cut '!' (cut '#' line)

let split_label stmt =
  match String.index_opt stmt ':' with
  | Some i
    when String.for_all
           (fun c -> c = '_' || c = '.' || Char.lowercase_ascii c <> Char.uppercase_ascii c
                     || (c >= '0' && c <= '9'))
           (String.trim (String.sub stmt 0 i)) ->
      ( Some (String.trim (String.sub stmt 0 i)),
        String.sub stmt (i + 1) (String.length stmt - i - 1) )
  | Some _ | None -> (None, stmt)

let split_operands text =
  (* commas separate operands; brackets group an address expression *)
  let ops = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' ->
          incr depth;
          Buffer.add_char buf c
      | ']' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          ops := Buffer.contents buf :: !ops;
          Buffer.clear buf
      | _ -> Buffer.add_char buf c)
    text;
  if Buffer.length buf > 0 || !ops <> [] then ops := Buffer.contents buf :: !ops;
  List.rev_map String.trim !ops

let parse_int ~line s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" s

let parse_operand2 ~line s : Isa.operand =
  match register_of_string (String.trim s) with
  | Some r -> Reg r
  | None -> Imm (parse_int ~line s)

let parse_reg ~line s =
  match register_of_string (String.trim s) with
  | Some r -> r
  | None -> fail line "expected a register, got %S" s

(* "[%rs1]", "[%rs1 + 4]", "[%rs1 - 4]", "[%rs1 + %rs2]" *)
let parse_address ~line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line "expected an address like [%%reg + off], got %S" s
  else begin
    let inner = String.trim (String.sub s 1 (n - 2)) in
    let split_at op =
      (* find the operator outside the leading register *)
      match String.index_opt inner op with
      | Some i when i > 0 ->
          Some
            ( String.trim (String.sub inner 0 i),
              String.trim (String.sub inner (i + 1) (String.length inner - i - 1)) )
      | Some _ | None -> None
    in
    match split_at '+' with
    | Some (base, off) -> (parse_reg ~line base, parse_operand2 ~line off)
    | None -> (
        match split_at '-' with
        | Some (base, off) -> (parse_reg ~line base, Isa.Imm (-parse_int ~line off))
        | None -> (parse_reg ~line inner, Isa.Imm 0))
  end

(* ---- statement dispatch ---- *)

type section = Text | Data

let branch_target b ~line s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '.' && (s.[1] = '+' || s.[1] = '-') then
    `Disp (parse_int ~line (String.sub s 1 (String.length s - 1)))
  else begin
    ignore b;
    `Label s
  end

let emit_statement b ~line ~section mnemonic operands =
  let module A = Asm in
  let op2 () =
    match operands with
    | [ a; bb; c ] -> (parse_reg ~line a, parse_operand2 ~line bb, parse_reg ~line c)
    | _ -> fail line "%s expects 3 operands" mnemonic
  in
  match (section, mnemonic) with
  | Data, _ -> fail line "instruction %S in .data section" mnemonic
  | Text, "nop" -> A.nop b
  | Text, "ret" -> A.ret b
  | Text, "prologue" -> A.prologue b
  | Text, "halt" -> (
      match operands with
      | [ r ] -> A.halt b (parse_reg ~line r)
      | _ -> fail line "halt expects 1 register")
  | Text, "set" -> (
      match operands with
      | [ v; rd ] -> (
          let rd = parse_reg ~line rd in
          match int_of_string_opt (String.trim v) with
          | Some value -> A.set32 b value rd
          | None -> A.load_label b (String.trim v) rd)
      | _ -> fail line "set expects 2 operands")
  | Text, "mov" -> (
      match operands with
      | [ src; rd ] -> A.mov b (parse_operand2 ~line src) (parse_reg ~line rd)
      | _ -> fail line "mov expects 2 operands")
  | Text, "cmp" -> (
      match operands with
      | [ rs1; o ] -> A.cmp b (parse_reg ~line rs1) (parse_operand2 ~line o)
      | _ -> fail line "cmp expects 2 operands")
  | Text, "sethi" -> (
      match operands with
      | [ v; rd ] -> A.sethi b (parse_int ~line v) (parse_reg ~line rd)
      | _ -> fail line "sethi expects 2 operands")
  | Text, "call" -> (
      match operands with
      | [ target ] -> (
          match branch_target b ~line target with
          | `Label l -> A.call b l
          | `Disp d -> A.emit b (Isa.Call_i { disp30 = d }))
      | _ -> fail line "call expects a target")
  | Text, "jmpl" -> (
      match operands with
      | [ addr; rd ] ->
          let rs1, off =
            if String.length (String.trim addr) > 0 && (String.trim addr).[0] = '[' then
              parse_address ~line addr
            else
              match String.index_opt addr '+' with
              | Some i ->
                  ( parse_reg ~line (String.sub addr 0 i),
                    parse_operand2 ~line
                      (String.sub addr (i + 1) (String.length addr - i - 1)) )
              | None -> (parse_reg ~line addr, Isa.Imm 0)
          in
          A.emit b (Isa.Alu { op = Isa.Jmpl; rs1; op2 = off; rd = parse_reg ~line rd })
      | _ -> fail line "jmpl expects address, rd")
  | Text, m -> (
      match Isa.opcode_of_mnemonic m with
      | None -> fail line "unknown mnemonic %S" m
      | Some op when Isa.is_branch op -> (
          match operands with
          | [ target ] -> (
              match branch_target b ~line target with
              | `Label l -> A.branch b op l
              | `Disp d -> A.emit b (Isa.Branch_i { op; disp22 = d }))
          | _ -> fail line "%s expects a target" m)
      | Some op when Isa.is_load op -> (
          match operands with
          | [ addr; rd ] ->
              let rs1, off = parse_address ~line addr in
              A.ld b op rs1 off (parse_reg ~line rd)
          | _ -> fail line "%s expects [address], rd" m)
      | Some op when Isa.is_store op -> (
          match operands with
          | [ src; addr ] ->
              let rs1, off = parse_address ~line addr in
              A.st b op (parse_reg ~line src) rs1 off
          | _ -> fail line "%s expects rd, [address]" m)
      | Some Isa.Sethi | Some Isa.Call -> fail line "%s handled above" m
      | Some op -> (
          match op2 () with rs1, o, rd -> A.op3 b op rs1 o rd))

let parse_lines ?(name = "asm") lines =
  let b = Asm.create ~name () in
  let section = ref Text in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let stmt = String.trim (strip_comment raw) in
      if stmt <> "" then begin
        let label, rest = split_label stmt in
        (match label with
        | Some l -> (
            match !section with
            | Text -> Asm.label b l
            | Data -> Asm.data_label b l)
        | None -> ());
        let rest = String.trim rest in
        if rest <> "" then begin
          if rest.[0] = '.' then begin
            (* directive *)
            let directive, args =
              match String.index_opt rest ' ' with
              | Some i ->
                  ( String.sub rest 0 i,
                    String.trim (String.sub rest (i + 1) (String.length rest - i - 1)) )
              | None -> (rest, "")
            in
            match directive with
            | ".text" -> section := Text
            | ".data" -> section := Data
            | ".word" ->
                if !section <> Data then fail line ".word outside .data";
                List.iter
                  (fun w -> Asm.word b (parse_int ~line w))
                  (split_operands args)
            | ".space" ->
                if !section <> Data then fail line ".space outside .data";
                Asm.space_words b (parse_int ~line args)
            | d -> fail line "unknown directive %S" d
          end
          else begin
            let mnemonic, args =
              match String.index_opt rest ' ' with
              | Some i ->
                  ( String.lowercase_ascii (String.sub rest 0 i),
                    String.sub rest (i + 1) (String.length rest - i - 1) )
              | None -> (String.lowercase_ascii rest, "")
            in
            emit_statement b ~line ~section:!section mnemonic (split_operands args)
          end
        end
      end)
    lines;
  Asm.assemble b

let parse_string ?name source = parse_lines ?name (String.split_on_char '\n' source)
