(** Two-pass assembler with a small embedded DSL.

    Workloads are written against this module: emit instructions and
    pseudo-instructions into a builder, place labelled data words, then
    {!assemble} into a relocated {!program} that both simulation
    engines load.  All pseudo-instructions expand to a fixed number of
    machine instructions so label addresses are known in one sizing
    pass. *)

type program = {
  name : string;
  text_base : int;
  code : int array;  (** encoded instruction words, in address order *)
  instrs : Isa.instr array;  (** the same instructions, decoded *)
  data : (int * int array) list;  (** data segments: base address, words *)
  entry : int;
  symbols : (string * int) list;  (** label -> absolute address *)
}

type t
(** Builder state. *)

exception Unknown_label of string
exception Duplicate_label of string

val create : ?name:string -> ?text_base:int -> ?data_base:int -> unit -> t

val label : t -> string -> unit
(** Define a code label at the current text position. *)

val emit : t -> Isa.instr -> unit

(** {2 Instruction helpers} *)

val op3 : t -> Isa.opcode -> Isa.reg -> Isa.operand -> Isa.reg -> unit
(** [op3 b op rs1 op2 rd] emits an ALU-format instruction. *)

val ld : t -> Isa.opcode -> Isa.reg -> Isa.operand -> Isa.reg -> unit
(** [ld b op base off rd] emits a load ([op] must be a load opcode). *)

val st : t -> Isa.opcode -> Isa.reg -> Isa.reg -> Isa.operand -> unit
(** [st b op src base off] emits a store ([op] must be a store opcode). *)

val sethi : t -> int -> Isa.reg -> unit
val nop : t -> unit

val mov : t -> Isa.operand -> Isa.reg -> unit
(** [or %g0, op2, rd]. *)

val cmp : t -> Isa.reg -> Isa.operand -> unit
(** [subcc rs1, op2, %g0]. *)

val branch : t -> Isa.opcode -> string -> unit
(** Symbolic branch to a code label. *)

val call : t -> string -> unit
(** Symbolic call; return address (address of the call) goes to %o7. *)

val ret : t -> unit
(** [jmpl %o7 + 4, %g0] — return past the call (no delay slots). *)

val set32 : t -> int -> Isa.reg -> unit
(** Load an arbitrary 32-bit constant: expands to [sethi] + [or]
    (always two instructions). *)

val load_label : t -> string -> Isa.reg -> unit
(** Load the absolute address of a (code or data) label: [sethi %hi]
    + [or %lo], always two instructions. *)

val prologue : t -> unit
(** Standard entry: set %sp to the stack top and %g7 to the exit port
    address (three instructions: set32 + mov). *)

val halt : t -> Isa.reg -> unit
(** Store the given register to the exit port (requires {!prologue}'s
    %g7 convention). *)

(** {2 Data section} *)

val data_label : t -> string -> unit
(** Define a data label at the current data position. *)

val word : t -> int -> unit
val words : t -> int array -> unit
val space_words : t -> int -> unit
(** Reserve zero-initialised words. *)

(** {2 Assembly} *)

val here : t -> int
(** Current text address (for manual displacement checks in tests). *)

val assemble : t -> program
(** Resolve labels and encode.  Raises {!Unknown_label} on undefined
    references and {!Duplicate_label} at definition time. *)

val load : program -> Memory.t -> unit
(** Write code and data segments into a memory image. *)

val disassemble : program -> string list
(** One line per instruction, ["<addr>: <mnemonic ...>"] — useful in
    error messages and example output. *)
