(** SPARC v8 integer instruction set (subset used by this study).

    The subset covers the whole integer pipeline of a Leon3-class
    microcontroller: arithmetic and logic with and without condition-code
    update, tagged add/sub with carry, shifts, multiply/divide, the full
    [Bicc] branch family (one instruction type per condition, as the
    paper's diversity metric counts mnemonics), byte/half/word loads and
    stores, [SETHI], [CALL]/[JMPL] and register-window [SAVE]/[RESTORE].

    Deviations from full SPARC v8, shared by the ISS and the RTL model and
    recorded in DESIGN.md: no branch delay slots, no annul bit, no traps
    other than alignment/zero-divide run termination, no FPU/ASR/ASI. *)

type reg = int
(** Architectural register index 0..31 within the current window:
    0-7 = %g, 8-15 = %o, 16-23 = %l, 24-31 = %i. *)

type operand =
  | Reg of reg
  | Imm of int  (** signed 13-bit immediate, -4096..4095 *)

type opcode =
  (* Format 3 op=10: arithmetic and logic *)
  | Add | Addcc | Addx | Addxcc
  | Sub | Subcc | Subx | Subxcc
  | And | Andcc | Andn | Andncc
  | Or | Orcc | Orn | Orncc
  | Xor | Xorcc | Xnor | Xnorcc
  | Sll | Srl | Sra
  | Umul | Umulcc | Smul | Smulcc
  | Udiv | Sdiv
  | Save | Restore | Jmpl
  (* Format 3 op=11: memory *)
  | Ld | Ldub | Ldsb | Lduh | Ldsh
  | St | Stb | Sth
  (* Format 2 *)
  | Sethi
  | Ba | Bn | Bne | Be | Bg | Ble | Bge | Bl
  | Bgu | Bleu | Bcc | Bcs | Bpos | Bneg | Bvc | Bvs
  (* Format 1 *)
  | Call

type instr =
  | Alu of { op : opcode; rs1 : reg; op2 : operand; rd : reg }
      (** arithmetic, logic, shift, mul/div, SAVE, RESTORE, JMPL *)
  | Mem of { op : opcode; rs1 : reg; op2 : operand; rd : reg }
      (** loads and stores; effective address is [rs1 + op2] *)
  | Sethi_i of { imm22 : int; rd : reg }
  | Branch_i of { op : opcode; disp22 : int }
      (** [disp22] is a signed word displacement relative to the branch *)
  | Call_i of { disp30 : int }
      (** signed word displacement relative to the call *)

type icc = { n : bool; z : bool; v : bool; c : bool }
(** Integer condition codes. *)

val icc_zero : icc
val icc_of_word : int -> icc
val icc_to_word : icc -> int
(** 4-bit packing, [n:3 z:2 v:1 c:0], as in the PSR icc field. *)

val opcode_of_instr : instr -> opcode

val all_opcodes : opcode list
(** Every opcode of the subset, in a fixed order (58 entries). *)

val num_opcodes : int
(** [List.length all_opcodes]. *)

val opcode_index : opcode -> int
(** Position of the opcode in {!all_opcodes}; a stable dense index for
    histogram arrays. *)

val opcode_of_index : int -> opcode

val mnemonic : opcode -> string

val opcode_of_mnemonic : string -> opcode option

val is_branch : opcode -> bool
val is_load : opcode -> bool
val is_store : opcode -> bool
val is_mem : opcode -> bool
(** [is_mem op] holds for loads and stores. *)

val writes_icc : opcode -> bool
(** Does the opcode update the integer condition codes? *)

val cond_holds : opcode -> icc -> bool
(** [cond_holds b icc] evaluates branch opcode [b]'s condition.
    Raises [Invalid_argument] if [b] is not a branch. *)

val nop : instr
(** [SETHI 0, %g0]. *)

val pp_instr : Format.formatter -> instr -> unit
(** Disassembly-style rendering, e.g. ["add %o0, 4, %o1"]. *)

val instr_to_string : instr -> string

(** Register aliases. *)

val g0 : reg
val g1 : reg
val g2 : reg
val g3 : reg
val g4 : reg
val g5 : reg
val g6 : reg
val g7 : reg
val o0 : reg
val o1 : reg
val o2 : reg
val o3 : reg
val o4 : reg
val o5 : reg
val sp : reg (* %o6 *)
val o7 : reg
val l0 : reg
val l1 : reg
val l2 : reg
val l3 : reg
val l4 : reg
val l5 : reg
val l6 : reg
val l7 : reg
val i0 : reg
val i1 : reg
val i2 : reg
val i3 : reg
val i4 : reg
val i5 : reg
val fp : reg (* %i6 *)
val i7 : reg

val reg_name : reg -> string
(** ["%g0"] .. ["%i7"], with %o6/%i6 rendered as %sp/%fp. *)
