(** Text front-end for the assembler: parse SPARC assembly source into
    an {!Asm.program}.

    Accepted syntax (one statement per line, ['!'] or ['#'] comments):

    {v
            .text                 ! optional section directives
    start:  set   0x20000, %o0    ! pseudo: 32-bit constant or label
            mov   5, %o1
    loop:   subcc %o1, 1, %o1
            bne   loop
            st    %o1, [%o0 + 4]
            ld    [%o0], %o2
            call  fn
            ret
            nop
            .data
    tbl:    .word 1, 2, 0xff      ! data words
    buf:    .space 4              ! zero words
    v}

    Mnemonics are those of {!Isa.mnemonic}; [set]/[mov]/[cmp]/[ret]/
    [nop] pseudo-instructions expand as in the {!Asm} DSL.  Branch
    targets are labels or ['.'-relative] word displacements ([.+2]),
    which makes {!Asm.disassemble} output re-parseable. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Asm.program
(** Parse and assemble a whole source text.  Raises {!Parse_error}
    with a 1-based line number, or the {!Asm} exceptions for label
    errors. *)

val parse_lines : ?name:string -> string list -> Asm.program

val register_of_string : string -> Isa.reg option
(** ["%o3"], ["%sp"], ["%fp"], ["%r17"] forms. *)
