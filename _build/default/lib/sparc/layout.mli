(** Memory map shared by the assembler, the ISS and the RTL system.

    The map mimics a small microcontroller: code and data in on-chip
    RAM, an "exit port" in I/O space whose write terminates the run
    (the store is still off-core observable, like any other store). *)

val text_base : int
(** Default base address of the code section. *)

val data_base : int
(** Default base address of the data section. *)

val stack_top : int
(** Initial %sp value (grows down). *)

val exit_addr : int
(** A word store to this address terminates the program; the stored
    value is the exit code. *)

val result_base : int
(** Conventional base address where benchmarks store their published
    results (a plain RAM region; listed here for readability only). *)

val is_exit_store : int -> bool
(** [is_exit_store addr] recognises the exit port. *)
