lib/sparc/isa.mli: Format
