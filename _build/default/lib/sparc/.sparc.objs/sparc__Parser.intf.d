lib/sparc/parser.mli: Asm Isa
