lib/sparc/units.mli: Format Isa
