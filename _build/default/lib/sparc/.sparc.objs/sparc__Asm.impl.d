lib/sparc/asm.ml: Array Bitops Encode Hashtbl Isa Layout List Memory Printf
