lib/sparc/parser.ml: Asm Buffer Char Isa List Printf String
