lib/sparc/units.ml: Format Isa List
