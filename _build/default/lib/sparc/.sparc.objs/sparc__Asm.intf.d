lib/sparc/asm.mli: Isa Memory
