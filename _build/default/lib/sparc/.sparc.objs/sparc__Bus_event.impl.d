lib/sparc/bus_event.ml: Format
