lib/sparc/encode.ml: Bitops Isa
