lib/sparc/memory.ml: Array Hashtbl
