lib/sparc/layout.ml:
