lib/sparc/memory.mli:
