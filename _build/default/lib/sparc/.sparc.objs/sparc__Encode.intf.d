lib/sparc/encode.mli: Isa
