lib/sparc/bus_event.mli: Format
