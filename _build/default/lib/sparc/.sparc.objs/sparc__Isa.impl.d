lib/sparc/isa.ml: Array Format Hashtbl List Printf
