lib/sparc/layout.mli:
