type program = {
  name : string;
  text_base : int;
  code : int array;
  instrs : Isa.instr array;
  data : (int * int array) list;
  entry : int;
  symbols : (string * int) list;
}

(* Each slot is exactly one machine instruction; pseudo-instructions
   push a fixed count of slots so addresses are known immediately. *)
type slot =
  | Ready of Isa.instr
  | Branch_fix of Isa.opcode * string
  | Call_fix of string
  | Hi22_fix of string * Isa.reg
  | Lo10_fix of string * Isa.reg

type t = {
  name : string;
  text_base : int;
  data_base : int;
  mutable slots : slot list;  (* reversed *)
  mutable text_len : int;     (* in instructions *)
  mutable data_words : int list;  (* reversed *)
  mutable data_len : int;     (* in words *)
  labels : (string, int) Hashtbl.t;  (* absolute addresses *)
}

exception Unknown_label of string
exception Duplicate_label of string

let create ?(name = "prog") ?(text_base = Layout.text_base) ?(data_base = Layout.data_base)
    () =
  { name; text_base; data_base; slots = []; text_len = 0; data_words = []; data_len = 0;
    labels = Hashtbl.create 64 }

let define_label b lbl addr =
  if Hashtbl.mem b.labels lbl then raise (Duplicate_label lbl);
  Hashtbl.add b.labels lbl addr

let here b = b.text_base + (4 * b.text_len)

let label b lbl = define_label b lbl (here b)

let push b slot =
  b.slots <- slot :: b.slots;
  b.text_len <- b.text_len + 1

let emit b i = push b (Ready i)

let op3 b op rs1 op2 rd =
  assert (not (Isa.is_mem op || Isa.is_branch op || op = Isa.Sethi || op = Isa.Call));
  emit b (Isa.Alu { op; rs1; op2; rd })

let ld b op rs1 op2 rd =
  assert (Isa.is_load op);
  emit b (Isa.Mem { op; rs1; op2; rd })

let st b op src rs1 op2 =
  assert (Isa.is_store op);
  emit b (Isa.Mem { op; rs1; op2; rd = src })

let sethi b imm22 rd = emit b (Isa.Sethi_i { imm22; rd })

let nop b = emit b Isa.nop

let mov b op2 rd = op3 b Isa.Or Isa.g0 op2 rd

let cmp b rs1 op2 = op3 b Isa.Subcc rs1 op2 Isa.g0

let branch b op lbl =
  assert (Isa.is_branch op);
  push b (Branch_fix (op, lbl))

let call b lbl = push b (Call_fix lbl)

let ret b = emit b (Isa.Alu { op = Isa.Jmpl; rs1 = Isa.o7; op2 = Imm 4; rd = Isa.g0 })

let set32 b value rd =
  let value = Bitops.of_int value in
  sethi b (value lsr 10) rd;
  op3 b Isa.Or rd (Imm (value land 0x3FF)) rd

let load_label b lbl rd =
  push b (Hi22_fix (lbl, rd));
  push b (Lo10_fix (lbl, rd))

let prologue b =
  set32 b Layout.stack_top Isa.sp;
  (* %g7 holds the exit-port address for the whole run (halt convention). *)
  set32 b Layout.exit_addr Isa.g7

let halt b code_reg = st b Isa.St code_reg Isa.g7 (Imm 0)

let data_here b = b.data_base + (4 * b.data_len)

let data_label b lbl = define_label b lbl (data_here b)

let word b v =
  b.data_words <- Bitops.of_int v :: b.data_words;
  b.data_len <- b.data_len + 1

let words b vs = Array.iter (word b) vs

let space_words b n =
  for _ = 1 to n do
    word b 0
  done

let lookup b lbl =
  match Hashtbl.find_opt b.labels lbl with
  | Some a -> a
  | None -> raise (Unknown_label lbl)

let resolve b index slot =
  let pc = b.text_base + (4 * index) in
  match slot with
  | Ready i -> i
  | Branch_fix (op, lbl) ->
      let disp22 = (lookup b lbl - pc) asr 2 in
      Isa.Branch_i { op; disp22 }
  | Call_fix lbl ->
      let disp30 = (lookup b lbl - pc) asr 2 in
      Isa.Call_i { disp30 }
  | Hi22_fix (lbl, rd) -> Isa.Sethi_i { imm22 = lookup b lbl lsr 10; rd }
  | Lo10_fix (lbl, rd) ->
      Isa.Alu { op = Isa.Or; rs1 = rd; op2 = Imm (lookup b lbl land 0x3FF); rd }

let assemble b =
  let slots = Array.of_list (List.rev b.slots) in
  let instrs = Array.mapi (resolve b) slots in
  let code = Array.map Encode.encode instrs in
  let data_words = Array.of_list (List.rev b.data_words) in
  let data = if Array.length data_words = 0 then [] else [ (b.data_base, data_words) ] in
  let symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.labels [] in
  { name = b.name; text_base = b.text_base; code; instrs; data; entry = b.text_base;
    symbols = List.sort compare symbols }

let load (prog : program) mem =
  Memory.blit_words mem prog.text_base prog.code;
  List.iter (fun (base, ws) -> Memory.blit_words mem base ws) prog.data

let disassemble (prog : program) =
  Array.to_list
    (Array.mapi
       (fun i instr ->
         Printf.sprintf "%08x: %s" (prog.text_base + (4 * i)) (Isa.instr_to_string instr))
       prog.instrs)
