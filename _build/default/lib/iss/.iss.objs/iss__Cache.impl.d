lib/iss/cache.ml: Array
