lib/iss/emulator.mli: Cache Format Sparc
