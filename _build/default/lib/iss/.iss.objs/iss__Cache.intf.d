lib/iss/cache.mli:
