lib/iss/emulator.ml: Array Bitops Cache Format Hashtbl List Option Sparc
