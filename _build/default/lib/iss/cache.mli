(** Direct-mapped cache model for the ISS {e timing simulator}.

    The ISS functional emulator never needs caches for correctness;
    this model only contributes hit/miss counts and cycle penalties, so
    that reported ISS cycle counts resemble the real pipeline's.  The
    RTL system has its own structural cache (the CMEM fault-injection
    target); this one is deliberately simple. *)

type config = {
  lines : int;  (** number of lines, a power of two *)
  words_per_line : int;  (** line size in 32-bit words, a power of two *)
  miss_penalty : int;  (** extra cycles charged per miss *)
  write_through_cost : int;  (** extra cycles charged per store *)
}

val default_icache : config
val default_dcache : config

type stats = { hits : int; misses : int; stores : int }

type t

val create : config -> t

val reset : t -> unit

val access : t -> int -> write:bool -> int
(** [access cache addr ~write] simulates one access to byte address
    [addr] and returns the cycle penalty beyond the base latency.
    Stores allocate on miss (the line is fetched first) and add the
    write-through cost. *)

val stats : t -> stats
