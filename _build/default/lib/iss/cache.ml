type config = {
  lines : int;
  words_per_line : int;
  miss_penalty : int;
  write_through_cost : int;
}

let default_icache = { lines = 64; words_per_line = 4; miss_penalty = 6; write_through_cost = 0 }
let default_dcache = { lines = 64; words_per_line = 4; miss_penalty = 6; write_through_cost = 1 }

type stats = { hits : int; misses : int; stores : int }

type t = {
  config : config;
  tags : int array;  (* -1 = invalid *)
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create config =
  assert (is_pow2 config.lines && is_pow2 config.words_per_line);
  { config; tags = Array.make config.lines (-1); hits = 0; misses = 0; stores = 0 }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  t.hits <- 0;
  t.misses <- 0;
  t.stores <- 0

let access t addr ~write =
  let line_bytes = t.config.words_per_line * 4 in
  let block = addr / line_bytes in
  let index = block land (t.config.lines - 1) in
  let tag = block / t.config.lines in
  let penalty =
    if t.tags.(index) = tag then begin
      t.hits <- t.hits + 1;
      0
    end
    else begin
      t.misses <- t.misses + 1;
      t.tags.(index) <- tag;
      t.config.miss_penalty
    end
  in
  if write then begin
    t.stores <- t.stores + 1;
    penalty + t.config.write_through_cost
  end
  else penalty

let stats t = { hits = t.hits; misses = t.misses; stores = t.stores }
