(** 32-bit word arithmetic on OCaml native integers.

    Throughout the simulator, 32-bit machine words are represented as
    OCaml [int] values constrained to the range [0, 0xFFFF_FFFF].  All
    functions in this module take and return values in that canonical
    range; callers that construct values by other means should pass them
    through {!of_int} first. *)

val mask32 : int
(** [mask32] is [0xFFFF_FFFF]. *)

val of_int : int -> int
(** [of_int x] truncates [x] to its low 32 bits (canonical form). *)

val to_signed : int -> int
(** [to_signed w] interprets the 32-bit word [w] as a two's-complement
    signed integer in the range [-2{^31}, 2{^31}-1]. *)

val of_int32 : int32 -> int
(** [of_int32 x] converts an [int32] to a canonical 32-bit word. *)

val to_int32 : int -> int32
(** [to_int32 w] converts a canonical word to [int32] (two's complement). *)

val add : int -> int -> int
(** [add a b] is [(a + b)] mod 2{^32}. *)

val sub : int -> int -> int
(** [sub a b] is [(a - b)] mod 2{^32}. *)

val neg : int -> int
(** [neg a] is two's complement negation mod 2{^32}. *)

val add_full : int -> int -> int -> int * bool * bool
(** [add_full a b carry_in] is [(result, carry_out, signed_overflow)] of
    the 32-bit addition [a + b + carry_in] where [carry_in] is 0 or 1. *)

val sub_full : int -> int -> int -> int * bool * bool
(** [sub_full a b borrow_in] is [(result, borrow_out, signed_overflow)]
    of the 32-bit subtraction [a - b - borrow_in].  The borrow flag
    matches the SPARC carry convention for [SUBcc]. *)

val mul_full : signed:bool -> int -> int -> int * int
(** [mul_full ~signed a b] is [(hi, lo)], the 64-bit product of the two
    32-bit operands split into high and low words. *)

val div32 : signed:bool -> hi:int -> lo:int -> int -> (int * bool) option
(** [div32 ~signed ~hi ~lo d] divides the 64-bit value [hi::lo] by the
    32-bit divisor [d], as SPARC [UDIV]/[SDIV] do.  Returns [None] on
    division by zero, and otherwise [Some (quotient, overflowed)] where
    the quotient is clamped to 32 bits when [overflowed] is set. *)

val shl : int -> int -> int
(** [shl w n] shifts left by [n land 31]. *)

val shr : int -> int -> int
(** [shr w n] logical right shift by [n land 31]. *)

val sar : int -> int -> int
(** [sar w n] arithmetic right shift by [n land 31]. *)

val sext : bits:int -> int -> int
(** [sext ~bits x] sign-extends the low [bits] bits of [x] to a canonical
    32-bit word. *)

val bit : int -> int -> int
(** [bit i w] is bit [i] of [w] (0 or 1). *)

val bits : hi:int -> lo:int -> int -> int
(** [bits ~hi ~lo w] extracts the inclusive bit field [hi..lo]. *)

val set_bit : int -> int -> int
(** [set_bit i w] is [w] with bit [i] forced to 1. *)

val clear_bit : int -> int -> int
(** [clear_bit i w] is [w] with bit [i] forced to 0. *)

val update_bit : int -> bool -> int -> int
(** [update_bit i v w] is [w] with bit [i] set to [v]. *)

val popcount : int -> int
(** [popcount w] is the number of set bits in the canonical word [w]. *)

val is_negative : int -> bool
(** [is_negative w] tests the sign bit (bit 31). *)

val ult : int -> int -> bool
(** [ult a b] is the unsigned 32-bit comparison [a < b]. *)

val slt : int -> int -> bool
(** [slt a b] is the signed 32-bit comparison [a < b]. *)

val pp_hex : Format.formatter -> int -> unit
(** [pp_hex fmt w] prints [w] as [0x%08x]. *)

val to_hex : int -> string
(** [to_hex w] formats [w] as an 8-digit hexadecimal string. *)
