let mask32 = 0xFFFF_FFFF

let of_int x = x land mask32

let to_signed w = if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let of_int32 x = Int32.to_int x land mask32

let to_int32 w = Int32.of_int (to_signed w)

let add a b = (a + b) land mask32

let sub a b = (a - b) land mask32

let neg a = (0 - a) land mask32

let is_negative w = w land 0x8000_0000 <> 0

let add_full a b carry_in =
  let wide = a + b + carry_in in
  let result = wide land mask32 in
  let carry = wide > mask32 in
  (* Signed overflow: operands share a sign that differs from the result's. *)
  let overflow = lnot (a lxor b) land (a lxor result) land 0x8000_0000 <> 0 in
  (result, carry, overflow)

let sub_full a b borrow_in =
  let wide = a - b - borrow_in in
  let result = wide land mask32 in
  let borrow = wide < 0 in
  let overflow = (a lxor b) land (a lxor result) land 0x8000_0000 <> 0 in
  (result, borrow, overflow)

let mul_full ~signed a b =
  let sa = if signed then to_signed a else a in
  let sb = if signed then to_signed b else b in
  let prod = Int64.mul (Int64.of_int sa) (Int64.of_int sb) in
  let lo = Int64.to_int (Int64.logand prod 0xFFFF_FFFFL) in
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical prod 32) 0xFFFF_FFFFL) in
  (hi, lo)

let div32 ~signed ~hi ~lo d =
  if d = 0 then None
  else
    let dividend = Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo) in
    if signed then
      let quotient = Int64.div dividend (Int64.of_int (to_signed d)) in
      if Int64.compare quotient 0x7FFF_FFFFL > 0 then Some (0x7FFF_FFFF, true)
      else if Int64.compare quotient (-0x8000_0000L) < 0 then Some (0x8000_0000, true)
      else Some (Int64.to_int quotient land mask32, false)
    else
      let quotient = Int64.unsigned_div dividend (Int64.of_int d) in
      if Int64.unsigned_compare quotient 0xFFFF_FFFFL > 0 then Some (mask32, true)
      else Some (Int64.to_int quotient land mask32, false)

let shl w n = (w lsl (n land 31)) land mask32

let shr w n = (w land mask32) lsr (n land 31)

let sar w n =
  let n = n land 31 in
  (to_signed w asr n) land mask32

let sext ~bits x =
  assert (bits >= 1 && bits <= 32);
  let sign = 1 lsl (bits - 1) in
  let v = x land ((1 lsl bits) - 1) in
  ((v lxor sign) - sign) land mask32

let bit i w = (w lsr i) land 1

let bits ~hi ~lo w = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let set_bit i w = w lor (1 lsl i)

let clear_bit i w = w land lnot (1 lsl i) land mask32

let update_bit i v w = if v then set_bit i w else clear_bit i w

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
  go 0 (w land mask32)

let ult a b = a land mask32 < b land mask32

let slt a b = to_signed a < to_signed b

let pp_hex fmt w = Format.fprintf fmt "0x%08x" (w land mask32)

let to_hex w = Printf.sprintf "%08x" (w land mask32)
