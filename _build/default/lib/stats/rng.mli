(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic choice in the repository — workload input data,
    injection-point sampling, injection instants — draws from an
    explicitly seeded {!t}, so experiments are reproducible bit for
    bit. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy rng] duplicates the state so two streams can diverge. *)

val next64 : t -> int64
(** [next64 rng] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int rng n] draws uniformly from [0, n-1].  [n] must be positive. *)

val word32 : t -> int
(** [word32 rng] draws a uniform canonical 32-bit word. *)

val bool : t -> bool
(** [bool rng] draws a fair coin. *)

val float : t -> float
(** [float rng] draws uniformly from [0, 1). *)

val range : t -> lo:int -> hi:int -> int
(** [range rng ~lo ~hi] draws uniformly from the inclusive range. *)

val shuffle : t -> 'a array -> unit
(** [shuffle rng a] permutes [a] in place (Fisher-Yates). *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement rng k a] draws [min k (Array.length a)]
    distinct elements, preserving no particular order. *)

val split : t -> t
(** [split rng] derives an independent child generator, advancing the
    parent. *)
