lib/stats/regression.mli:
