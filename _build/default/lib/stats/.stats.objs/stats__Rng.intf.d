lib/stats/rng.mli:
