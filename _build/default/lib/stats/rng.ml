type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy rng = { state = rng.state }

let next64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  mix64 rng.state

let word32 rng = Int64.to_int (Int64.shift_right_logical (next64 rng) 32) land 0xFFFF_FFFF

let float rng =
  let top53 = Int64.to_int (Int64.shift_right_logical (next64 rng) 11) in
  Stdlib.float_of_int top53 *. 0x1.0p-53

let int rng n =
  assert (n > 0);
  (* Rejection-free modulo is fine here: n is always tiny next to 2^62. *)
  let raw = Int64.to_int (Int64.shift_right_logical (next64 rng) 2) in
  raw mod n

let bool rng = Int64.logand (next64 rng) 1L = 1L

let range rng ~lo ~hi =
  assert (hi >= lo);
  lo + int rng (hi - lo + 1)

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement rng k a =
  let n = Array.length a in
  if k >= n then Array.copy a
  else begin
    let pool = Array.copy a in
    (* Partial Fisher-Yates: settle the first k slots only. *)
    for i = 0 to k - 1 do
      let j = range rng ~lo:i ~hi:(n - 1) in
      let tmp = pool.(i) in
      pool.(i) <- pool.(j);
      pool.(j) <- tmp
    done;
    Array.sub pool 0 k
  end

let split rng = { state = mix64 (next64 rng) }
