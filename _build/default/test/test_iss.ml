(* Semantic unit tests for the instruction set simulator: every opcode
   class, condition codes, register windows, traps and timing. *)

module A = Sparc.Asm
module I = Sparc.Isa
module E = Iss.Emulator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Run a fragment: the body is emitted after a prologue, then halt. *)
let run_fragment body =
  let b = A.create ~name:"fragment" () in
  A.prologue b;
  body b;
  A.halt b I.g0;
  let t = E.create (A.assemble b) in
  match E.run t with
  | E.Exited _ -> t
  | s -> Alcotest.failf "fragment did not exit: %a" E.pp_stop s

let run_expect_trap body =
  let b = A.create ~name:"fragment" () in
  A.prologue b;
  body b;
  A.halt b I.g0;
  let t = E.create (A.assemble b) in
  match E.run t with
  | E.Trapped trap -> trap
  | s -> Alcotest.failf "expected a trap, got %a" E.pp_stop s

let reg = E.reg

(* ---- arithmetic ---- *)

let test_add_sub () =
  let t =
    run_fragment (fun b ->
        A.mov b (Imm 100) I.o0;
        A.op3 b I.Add I.o0 (Imm 23) I.o1;
        A.op3 b I.Sub I.o1 (Imm 200) I.o2;
        A.op3 b I.Add I.o1 (Reg I.o1) I.o3)
  in
  check_int "add" 123 (reg t I.o1);
  check_int "sub wraps" (Bitops.of_int (-77)) (reg t I.o2);
  check_int "reg operand" 246 (reg t I.o3)

let test_addx_subx_chain () =
  (* 64-bit add: 0xFFFFFFFF + 1 with carry into the high word *)
  let t =
    run_fragment (fun b ->
        A.set32 b 0xFFFF_FFFF I.o0;
        A.mov b (Imm 0) I.o1;
        A.op3 b I.Addcc I.o0 (Imm 1) I.o2;
        A.op3 b I.Addx I.o1 (Imm 0) I.o3)
  in
  check_int "low word" 0 (reg t I.o2);
  check_int "carry propagated" 1 (reg t I.o3)

let test_icc_flags () =
  let t =
    run_fragment (fun b ->
        A.op3 b I.Subcc I.g0 (Imm 1) I.g0)
  in
  let icc = E.icc t in
  check_bool "n" true icc.I.n;
  check_bool "z" false icc.I.z;
  check_bool "c (borrow)" true icc.I.c;
  let t = run_fragment (fun b -> A.op3 b I.Subcc I.g0 (Imm 0) I.g0) in
  check_bool "zero sets z" true (E.icc t).I.z

let test_logic_ops () =
  let t =
    run_fragment (fun b ->
        A.set32 b 0xFF00_FF00 I.o0;
        A.set32 b 0x0F0F_0F0F I.o1;
        A.op3 b I.And I.o0 (Reg I.o1) I.o2;
        A.op3 b I.Or I.o0 (Reg I.o1) I.o3;
        A.op3 b I.Xor I.o0 (Reg I.o1) I.o4;
        A.op3 b I.Andn I.o0 (Reg I.o1) I.o5;
        A.op3 b I.Xnor I.o0 (Reg I.o1) I.l0;
        A.op3 b I.Orn I.o0 (Reg I.o1) I.l1)
  in
  check_int "and" 0x0F000F00 (reg t I.o2);
  check_int "or" 0xFF0FFF0F (reg t I.o3);
  check_int "xor" 0xF00FF00F (reg t I.o4);
  check_int "andn" 0xF000F000 (reg t I.o5);
  check_int "xnor" 0x0FF00FF0 (reg t I.l0);
  check_int "orn" 0xFFF0FFF0 (reg t I.l1)

let test_shifts () =
  let t =
    run_fragment (fun b ->
        A.set32 b 0x8000_0001 I.o0;
        A.op3 b I.Sll I.o0 (Imm 4) I.o1;
        A.op3 b I.Srl I.o0 (Imm 4) I.o2;
        A.op3 b I.Sra I.o0 (Imm 4) I.o3;
        A.mov b (Imm 36) I.o4;
        (* shift count is mod 32 *)
        A.op3 b I.Sll I.o0 (Reg I.o4) I.o5)
  in
  check_int "sll" 0x0000_0010 (reg t I.o1);
  check_int "srl" 0x0800_0000 (reg t I.o2);
  check_int "sra" 0xF800_0000 (reg t I.o3);
  check_int "count mod 32" 0x0000_0010 (reg t I.o5)

let test_mul_div () =
  let t =
    run_fragment (fun b ->
        A.set32 b 100000 I.o0;
        A.op3 b I.Umul I.o0 (Reg I.o0) I.o1;
        (* 10^10 mod 2^32 *)
        A.mov b (Imm (-6)) I.o2;
        A.op3 b I.Smul I.o2 (Imm 7) I.o3;
        A.set32 b 1000 I.o4;
        A.op3 b I.Udiv I.o1 (Reg I.o4) I.o5;
        A.mov b (Imm (-100)) I.l0;
        A.op3 b I.Sdiv I.l0 (Imm 7) I.l1)
  in
  check_int "umul low" (10_000_000_000 land Bitops.mask32) (reg t I.o1);
  check_int "smul" (Bitops.of_int (-42)) (reg t I.o3);
  check_int "udiv" ((10_000_000_000 land Bitops.mask32) / 1000) (reg t I.o5);
  check_int "sdiv" (Bitops.of_int (-14)) (reg t I.l1)

(* ---- memory ---- *)

let test_loads_stores () =
  let t =
    run_fragment (fun b ->
        A.set32 b 0x0002_0000 I.o0;
        A.set32 b 0x1234_5678 I.o1;
        A.st b I.St I.o1 I.o0 (Imm 0);
        A.ld b I.Ld I.o0 (Imm 0) I.o2;
        A.ld b I.Ldub I.o0 (Imm 0) I.o3;
        A.ld b I.Ldsb I.o0 (Imm 0) I.o4;
        A.ld b I.Lduh I.o0 (Imm 2) I.o5;
        A.ld b I.Ldsh I.o0 (Imm 2) I.l0;
        A.set32 b 0xFFFF_89AB I.l1;
        A.st b I.Sth I.l1 I.o0 (Imm 0);
        A.ld b I.Lduh I.o0 (Imm 0) I.l2;
        A.ld b I.Ldsh I.o0 (Imm 0) I.l3;
        A.st b I.Stb I.l1 I.o0 (Imm 3);
        A.ld b I.Ldsb I.o0 (Imm 3) I.l4)
  in
  check_int "ld" 0x1234_5678 (reg t I.o2);
  check_int "ldub" 0x12 (reg t I.o3);
  check_int "ldsb positive" 0x12 (reg t I.o4);
  check_int "lduh" 0x5678 (reg t I.o5);
  check_int "ldsh positive" 0x5678 (reg t I.l0);
  check_int "sth + lduh" 0x89AB (reg t I.l2);
  check_int "ldsh negative" (Bitops.of_int (-0x7655)) (reg t I.l3);
  check_int "stb + ldsb negative" (Bitops.of_int (-0x55)) (reg t I.l4)

let test_g0_semantics () =
  let t =
    run_fragment (fun b ->
        A.op3 b I.Add I.g0 (Imm 99) I.g0;
        (* write discarded *)
        A.op3 b I.Add I.g0 (Imm 7) I.o0)
  in
  check_int "g0 reads zero" 7 (reg t I.o0);
  check_int "g0 stays zero" 0 (reg t I.g0)

(* ---- control flow ---- *)

let test_branches_taken_untaken () =
  let t =
    run_fragment (fun b ->
        A.mov b (Imm 0) I.o0;
        A.cmp b I.g0 (Imm 0);
        A.branch b I.Be "taken";
        A.op3 b I.Add I.o0 (Imm 100) I.o0;
        (* skipped *)
        A.label b "taken";
        A.op3 b I.Add I.o0 (Imm 1) I.o0;
        A.cmp b I.g0 (Imm 1);
        A.branch b I.Be "nottaken";
        A.op3 b I.Add I.o0 (Imm 10) I.o0;
        A.label b "nottaken")
  in
  check_int "paths" 11 (reg t I.o0)

let test_call_ret () =
  let t =
    run_fragment (fun b ->
        A.mov b (Imm 5) I.o0;
        A.call b "double";
        A.op3 b I.Add I.o0 (Imm 1) I.o1;
        A.branch b I.Ba "end";
        A.label b "double";
        A.op3 b I.Add I.o0 (Reg I.o0) I.o0;
        A.ret b;
        A.label b "end")
  in
  check_int "call/ret" 11 (reg t I.o1)

let test_register_windows () =
  let t =
    run_fragment (fun b ->
        A.mov b (Imm 41) I.o0;
        A.mov b (Imm 17) I.l0;
        A.call b "fn";
        A.branch b I.Ba "end";
        A.label b "fn";
        A.op3 b I.Save I.sp (Imm (-96)) I.sp;
        (* caller's %o0 is now %i0; locals are fresh *)
        A.op3 b I.Add I.i0 (Imm 1) I.i0;
        A.mov b (Imm 999) I.l0;
        A.op3 b I.Restore I.g0 (Imm 0) I.g0;
        A.ret b;
        A.label b "end")
  in
  check_int "out visible as in, modified" 42 (reg t I.o0);
  check_int "locals are per-window" 17 (reg t I.l0);
  check_int "cwp restored" 0 (E.cwp t)

let test_save_restore_sum () =
  let t =
    run_fragment (fun b ->
        A.mov b (Imm 1000) I.o1;
        A.op3 b I.Save I.sp (Imm (-96)) I.sp;
        (* save computes with the OLD window's %sp, writes NEW window *)
        A.op3 b I.Restore I.g0 (Imm 5) I.o2)
  in
  (* restore result lands in the restored (original) window *)
  check_int "restore writes old window" 5 (reg t I.o2)

let test_window_wraparound () =
  (* 8 nested saves wrap the 8-window file; the 9th would clobber, but
     8 saves + 8 restores must round-trip. *)
  let t =
    run_fragment (fun b ->
        A.mov b (Imm 123) I.l0;
        for _ = 1 to 8 do
          A.op3 b I.Save I.sp (Imm (-96)) I.sp
        done;
        for _ = 1 to 8 do
          A.op3 b I.Restore I.g0 (Imm 0) I.g0
        done)
  in
  check_int "locals survive full rotation" 123 (reg t I.l0)

(* ---- traps ---- *)

let test_trap_misaligned_load () =
  match
    run_expect_trap (fun b ->
        A.set32 b 0x0002_0001 I.o0;
        A.ld b I.Ld I.o0 (Imm 0) I.o1)
  with
  | E.Misaligned_access a -> check_int "address" 0x0002_0001 a
  | E.Division_by_zero | E.Illegal_instruction _ -> Alcotest.fail "wrong trap"

let test_trap_division_by_zero () =
  match
    run_expect_trap (fun b ->
        A.mov b (Imm 5) I.o0;
        A.op3 b I.Udiv I.o0 (Imm 0) I.o1)
  with
  | E.Division_by_zero -> ()
  | E.Misaligned_access _ | E.Illegal_instruction _ -> Alcotest.fail "wrong trap"

let test_trap_illegal_instruction () =
  (* jump into the data section *)
  match
    run_expect_trap (fun b ->
        A.data_label b "junk";
        A.word b 0xFFFF_FFFF;
        A.load_label b "junk" I.o0;
        A.emit b (I.Alu { op = I.Jmpl; rs1 = I.o0; op2 = I.Imm 0; rd = I.g0 }))
  with
  | E.Illegal_instruction w -> check_int "word" 0xFFFF_FFFF w
  | E.Misaligned_access _ | E.Division_by_zero -> Alcotest.fail "wrong trap"

let test_instruction_limit () =
  let b = A.create () in
  A.label b "spin";
  A.branch b I.Ba "spin";
  let config = { E.default_config with E.max_instructions = 100 } in
  let t = E.create ~config (A.assemble b) in
  (match E.run t with
  | E.Instruction_limit -> ()
  | s -> Alcotest.failf "expected limit, got %a" E.pp_stop s);
  check_int "stopped at limit" 100 (E.instructions t)

(* ---- accounting ---- *)

let test_histogram_and_diversity () =
  let t =
    run_fragment (fun b ->
        A.op3 b I.Add I.g0 (Imm 1) I.o0;
        A.op3 b I.Add I.o0 (Imm 1) I.o0;
        A.op3 b I.Umul I.o0 (Imm 3) I.o1)
  in
  let hist = E.opcode_histogram t in
  check_int "adds counted" 2 (List.assoc I.Add hist);
  check_int "umul counted" 1 (List.assoc I.Umul hist);
  (* prologue/halt add sethi, or, st *)
  check_bool "diversity counts types" true (E.diversity t >= 5)

let test_write_events () =
  let t =
    run_fragment (fun b ->
        A.set32 b 0x0002_0000 I.o0;
        A.mov b (Imm 7) I.o1;
        A.st b I.St I.o1 I.o0 (Imm 0);
        A.st b I.Stb I.o1 I.o0 (Imm 4))
  in
  let writes = List.filter Sparc.Bus_event.is_write (E.events t) in
  (* two explicit stores + the exit-port store *)
  check_int "three writes" 3 (List.length writes);
  match writes with
  | [ Sparc.Bus_event.Write w1; Sparc.Bus_event.Write w2; Sparc.Bus_event.Write w3 ] ->
      check_int "first addr" 0x0002_0000 w1.addr;
      check_bool "byte size" true (w2.size = Sparc.Bus_event.Byte);
      check_int "exit port" Sparc.Layout.exit_addr w3.addr
  | _ -> Alcotest.fail "unexpected event shapes"

let test_cycles_monotonic () =
  let t =
    run_fragment (fun b ->
        A.op3 b I.Udiv I.g0 (Imm 1) I.o0;
        A.op3 b I.Add I.g0 (Imm 1) I.o1)
  in
  check_bool "cycles > instructions (div is slow)" true (E.cycles t > E.instructions t)

let test_unit_accesses () =
  let t =
    run_fragment (fun b ->
        A.op3 b I.Umul I.g0 (Imm 3) I.o0)
  in
  let accesses = E.unit_accesses t in
  check_bool "multiplier accessed" true
    (List.mem_assoc Sparc.Units.Multiplier accesses);
  check_bool "divider untouched" false (List.mem_assoc Sparc.Units.Divider accesses);
  (* fetch access count equals instruction count *)
  check_int "fetch = instructions" (E.instructions t)
    (List.assoc Sparc.Units.Fetch accesses)

let suite =
  ( "iss",
    [ Alcotest.test_case "add/sub" `Quick test_add_sub;
      Alcotest.test_case "addx carry chain" `Quick test_addx_subx_chain;
      Alcotest.test_case "icc flags" `Quick test_icc_flags;
      Alcotest.test_case "logic ops" `Quick test_logic_ops;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "mul/div" `Quick test_mul_div;
      Alcotest.test_case "loads/stores" `Quick test_loads_stores;
      Alcotest.test_case "g0 semantics" `Quick test_g0_semantics;
      Alcotest.test_case "branches" `Quick test_branches_taken_untaken;
      Alcotest.test_case "call/ret" `Quick test_call_ret;
      Alcotest.test_case "register windows" `Quick test_register_windows;
      Alcotest.test_case "save/restore result" `Quick test_save_restore_sum;
      Alcotest.test_case "window wraparound" `Quick test_window_wraparound;
      Alcotest.test_case "trap: misaligned" `Quick test_trap_misaligned_load;
      Alcotest.test_case "trap: zero divide" `Quick test_trap_division_by_zero;
      Alcotest.test_case "trap: illegal" `Quick test_trap_illegal_instruction;
      Alcotest.test_case "instruction limit" `Quick test_instruction_limit;
      Alcotest.test_case "histogram" `Quick test_histogram_and_diversity;
      Alcotest.test_case "write events" `Quick test_write_events;
      Alcotest.test_case "cycle accounting" `Quick test_cycles_monotonic;
      Alcotest.test_case "unit accesses" `Quick test_unit_accesses ] )
