(* Tests for the Leon3-class RTL model, centred on differential
   equivalence with the ISS: same programs, same architectural results,
   same off-core write streams. *)

module A = Sparc.Asm
module I = Sparc.Isa
module E = Iss.Emulator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One shared system: elaboration is expensive, reset is cheap. *)
let shared_sys = lazy (Leon3.System.create ())

let run_rtl prog =
  let sys = Lazy.force shared_sys in
  Leon3.System.load sys prog;
  let stop = Leon3.System.run sys ~max_cycles:5_000_000 in
  (sys, stop)

let assemble body =
  let b = A.create ~name:"t" () in
  A.prologue b;
  body b;
  A.halt b I.g0;
  A.assemble b

let differential prog =
  let iss = E.execute prog in
  let sys, stop = run_rtl prog in
  (match (iss.E.stop, stop) with
  | E.Exited a, Leon3.System.Exited b ->
      check_int ("exit code of " ^ prog.A.name) a b
  | E.Trapped _, Leon3.System.Trapped _ -> ()
  | _ ->
      Alcotest.failf "stop reasons differ on %s: iss=%a rtl=%a" prog.A.name E.pp_stop
        iss.E.stop Leon3.System.pp_stop stop);
  let ws_iss = iss.E.writes in
  let ws_rtl = Leon3.System.writes sys in
  check_int ("write count of " ^ prog.A.name) (List.length ws_iss) (List.length ws_rtl);
  List.iteri
    (fun i (a, b) ->
      if not (Sparc.Bus_event.equal a b) then
        Alcotest.failf "%s write %d differs: iss=%s rtl=%s" prog.A.name i
          (Sparc.Bus_event.to_string a) (Sparc.Bus_event.to_string b))
    (List.combine ws_iss ws_rtl)

let test_diff_registers () =
  (* After the same fragment, every architectural register of the
     current window must agree between the engines. *)
  let prog =
    assemble (fun b ->
        A.set32 b 0x1234_5678 I.o0;
        A.op3 b I.Umul I.o0 (Imm 97) I.o1;
        A.op3 b I.Sdiv I.o1 (Imm 13) I.o2;
        A.op3 b I.Sra I.o1 (Imm 7) I.o3;
        A.op3 b I.Subcc I.o2 (Reg I.o3) I.o4;
        A.op3 b I.Addx I.o4 (Imm 1) I.o5)
  in
  let iss = E.create prog in
  (match E.run iss with E.Exited _ -> () | s -> Alcotest.failf "iss: %a" E.pp_stop s);
  let sys, _ = run_rtl prog in
  for r = 0 to 31 do
    check_int (Printf.sprintf "reg %s" (I.reg_name r)) (E.reg iss r)
      (Leon3.System.reg sys r)
  done

let test_regfile_slot_matches_iss_window_map () =
  (* The RTL address mapping must be the same function the ISS uses:
     verified structurally for all windows and registers. *)
  let nwindows = 8 in
  for cwp = 0 to nwindows - 1 do
    (* outs of window w are ins of window (w-1+nw) mod nw *)
    for i = 0 to 7 do
      let out_slot = Leon3.Core.regfile_slot ~nwindows ~cwp (8 + i) in
      let ins_slot =
        Leon3.Core.regfile_slot ~nwindows ~cwp:((cwp + nwindows - 1) mod nwindows) (24 + i)
      in
      check_int "window overlap" out_slot ins_slot
    done;
    (* globals are shared *)
    for g = 0 to 7 do
      check_int "globals fixed" g (Leon3.Core.regfile_slot ~nwindows ~cwp g)
    done
  done

let test_trap_equivalence_misaligned () =
  let prog =
    assemble (fun b ->
        A.set32 b 0x0002_0002 I.o0;
        A.ld b I.Ld I.o0 (Imm 0) I.o1)
  in
  let iss = E.execute prog in
  let _, stop = run_rtl prog in
  (match (iss.E.stop, stop) with
  | E.Trapped (E.Misaligned_access _), Leon3.System.Trapped code ->
      check_int "trap code" Leon3.Core.trap_misaligned code
  | _ -> Alcotest.fail "expected misaligned traps on both engines")

let test_trap_equivalence_div0 () =
  let prog =
    assemble (fun b ->
        A.mov b (Imm 1) I.o0;
        A.op3 b I.Sdiv I.o0 (Imm 0) I.o1)
  in
  let iss = E.execute prog in
  let _, stop = run_rtl prog in
  match (iss.E.stop, stop) with
  | E.Trapped E.Division_by_zero, Leon3.System.Trapped code ->
      check_int "trap code" Leon3.Core.trap_div0 code
  | _ -> Alcotest.fail "expected zero-divide traps on both engines"

let test_trap_equivalence_illegal () =
  let prog =
    assemble (fun b ->
        A.data_label b "junk";
        A.word b 0xFFFF_FFFF;
        A.load_label b "junk" I.o0;
        A.emit b (I.Alu { op = I.Jmpl; rs1 = I.o0; op2 = I.Imm 0; rd = I.g0 }))
  in
  let iss = E.execute prog in
  let _, stop = run_rtl prog in
  match (iss.E.stop, stop) with
  | E.Trapped (E.Illegal_instruction _), Leon3.System.Trapped code ->
      check_int "trap code" Leon3.Core.trap_illegal code
  | _ -> Alcotest.fail "expected illegal-instruction traps on both engines"

let test_all_workloads_differential () =
  List.iter
    (fun e ->
      let prog =
        e.Workloads.Suite.build ~iterations:e.Workloads.Suite.default_iterations
          ~dataset:1
      in
      differential prog)
    Workloads.Suite.all

let test_excerpts_differential () =
  List.iter
    (fun m -> differential (Workloads.Excerpts.subset_a m))
    Workloads.Excerpts.subset_a_members;
  List.iter
    (fun m -> differential (Workloads.Excerpts.subset_b m))
    Workloads.Excerpts.subset_b_members

let test_instret_counts_retired () =
  let prog = assemble (fun b -> A.nop b; A.nop b; A.nop b) in
  let iss = E.execute prog in
  let sys, _ = run_rtl prog in
  (* RTL does not retire the final (exit-store) instruction: the run
     stops when the write reaches the bus, one instruction earlier. *)
  check_int "instret" (iss.E.instructions - 1) (Leon3.System.instructions sys)

let test_cache_behaviour_visible () =
  (* A loop touching memory beyond the D-cache capacity must still
     produce the exact ISS write stream (write-through, no allocation
     subtleties leak into architecture). *)
  let prog =
    assemble (fun b ->
        A.set32 b 0x0002_0000 I.o0;
        A.set32 b 200 I.o1;
        (* > 64 lines * 16B of D-cache *)
        A.label b "wloop";
        A.st b I.St I.o1 I.o0 (Imm 0);
        A.ld b I.Ld I.o0 (Imm 0) I.o2;
        A.op3 b I.Add I.o0 (Imm 64) I.o0;
        A.op3 b I.Subcc I.o1 (Imm 1) I.o1;
        A.branch b I.Bne "wloop")
  in
  differential prog

(* Random straight-line differential programs: seed registers with
   random values, apply random ALU/memory instructions, publish
   everything. *)
let gen_program =
  let open QCheck2.Gen in
  let value = map (fun x -> x land Bitops.mask32) (int_bound max_int) in
  let reg = int_range 8 15 in
  (* %o0..%o7 *)
  let safe_alu_op =
    oneofl
      [ I.Add; I.Addcc; I.Addx; I.Addxcc; I.Sub; I.Subcc; I.Subx; I.Subxcc; I.And;
        I.Andcc; I.Andn; I.Or; I.Orcc; I.Orn; I.Xor; I.Xorcc; I.Xnor; I.Sll; I.Srl;
        I.Sra; I.Umul; I.Smul; I.Umulcc; I.Smulcc ]
  in
  let alu_instr =
    map3
      (fun op (rs1, rd) op2 -> `Alu (op, rs1, op2, rd))
      safe_alu_op (pair reg reg)
      (oneof [ map (fun r -> I.Reg r) reg; map (fun i -> I.Imm (i - 2048)) (int_bound 4095) ])
  in
  let mem_instr =
    (* word-aligned offsets within a private scratch area *)
    map3
      (fun st (slot, rd) ld_kind ->
        `Mem (st, slot * 4, rd, ld_kind))
      bool (pair (int_bound 31) reg) (int_bound 2)
  in
  let div_instr =
    map2 (fun (rs1, rd) signed -> `Div (rs1, rd, signed)) (pair reg reg) bool
  in
  pair (list_size (int_range 5 40) (oneof [ alu_instr; alu_instr; mem_instr; div_instr ]))
    (list_repeat 8 value)

let build_random (ops, seeds) =
  let b = A.create ~name:"random" () in
  A.prologue b;
  (* scratch area pointer in %l0, away from code/data *)
  A.set32 b 0x0002_8000 I.l0;
  List.iteri (fun i v -> A.set32 b v (8 + i)) seeds;
  List.iter
    (fun op ->
      match op with
      | `Alu (op, rs1, op2, rd) -> A.op3 b op rs1 op2 rd
      | `Mem (is_store, off, r, ld_kind) ->
          if is_store then A.st b I.St r I.l0 (Imm off)
          else
            let lop = match ld_kind with 0 -> I.Ld | 1 -> I.Ldub | _ -> I.Ldsh in
            let off = if lop = I.Ld then off else off land lnot 1 in
            A.ld b lop I.l0 (Imm off) r
      | `Div (rs1, rd, signed) ->
          (* force a non-zero divisor to stay trap-free *)
          A.op3 b I.Or rs1 (Imm 1) I.l1;
          A.op3 b (if signed then I.Sdiv else I.Udiv) rs1 (Reg I.l1) rd)
    ops;
  (* publish all eight %o registers *)
  A.set32 b Sparc.Layout.result_base I.l2;
  for i = 0 to 7 do
    A.st b I.St (8 + i) I.l2 (Imm (4 * i))
  done;
  A.halt b I.g0;
  A.assemble b

let prop_random_differential =
  QCheck2.Test.make ~name:"random straight-line programs agree" ~count:60 gen_program
    (fun case ->
      let prog = build_random case in
      let iss = E.execute prog in
      let sys = Lazy.force shared_sys in
      Leon3.System.load sys prog;
      let stop = Leon3.System.run sys ~max_cycles:2_000_000 in
      match (iss.E.stop, stop) with
      | E.Exited a, Leon3.System.Exited b ->
          a = b
          && List.length iss.E.writes = List.length (Leon3.System.writes sys)
          && List.for_all2 Sparc.Bus_event.equal iss.E.writes (Leon3.System.writes sys)
      | _ -> false)

let test_gate_level_adder_equivalent () =
  (* The gate-level elaboration must be architecturally identical. *)
  let prog =
    assemble (fun b ->
        A.set32 b 0x89AB_CDEF I.o0;
        A.op3 b I.Addcc I.o0 (Reg I.o0) I.o1;
        A.op3 b I.Addx I.o1 (Imm 0) I.o2;
        A.op3 b I.Subcc I.o1 (Reg I.o0) I.o3;
        A.op3 b I.Subx I.o3 (Imm 5) I.o4;
        A.set32 b Sparc.Layout.result_base I.o5;
        A.st b I.St I.o1 I.o5 (Imm 0);
        A.st b I.St I.o2 I.o5 (Imm 4);
        A.st b I.St I.o3 I.o5 (Imm 8);
        A.st b I.St I.o4 I.o5 (Imm 12))
  in
  let gate_sys =
    Leon3.System.create
      ~params:{ Leon3.Core.default_params with Leon3.Core.gate_level_adder = true }
      ()
  in
  Leon3.System.load gate_sys prog;
  (match Leon3.System.run gate_sys ~max_cycles:1_000_000 with
  | Leon3.System.Exited _ -> ()
  | s -> Alcotest.failf "gate-level run failed: %a" Leon3.System.pp_stop s);
  let iss = E.execute prog in
  check_bool "gate-level write stream matches the ISS" true
    (List.for_all2 Sparc.Bus_event.equal iss.E.writes (Leon3.System.writes gate_sys));
  (* and it really is a bigger netlist *)
  let plain = Leon3.Core.build () in
  let gate = Leon3.System.core gate_sys in
  check_bool "more nodes at gate level" true
    (Rtl.Circuit.node_count gate.Leon3.Core.circuit
    > Rtl.Circuit.node_count plain.Leon3.Core.circuit + 90)

let test_cache_size_affects_timing_not_results () =
  (* Shrinking the caches must slow the machine down without changing
     anything architectural. *)
  let e = Workloads.Suite.find "tblook" in
  let prog = e.Workloads.Suite.build ~iterations:2 ~dataset:0 in
  let run params =
    let sys = Leon3.System.create ?params () in
    Leon3.System.load sys prog;
    match Leon3.System.run sys ~max_cycles:5_000_000 with
    | Leon3.System.Exited _ -> (Leon3.System.cycles sys, Leon3.System.writes sys)
    | s -> Alcotest.failf "run failed: %a" Leon3.System.pp_stop s
  in
  let big_cycles, big_writes = run None in
  let tiny =
    { Leon3.Core.default_params with
      Leon3.Core.icache_lines = 2;
      dcache_lines = 2 }
  in
  let tiny_cycles, tiny_writes = run (Some tiny) in
  check_bool "tiny caches are slower" true (tiny_cycles > big_cycles);
  check_bool "same write stream" true
    (List.for_all2 Sparc.Bus_event.equal big_writes tiny_writes)

(* The packed control word must agree with the ISA predicates for
   every instruction the encoder can produce. *)
let gen_word =
  QCheck2.Gen.map (fun x -> x land Bitops.mask32) (QCheck2.Gen.int_bound max_int)

let prop_ctl_consistent_with_isa =
  QCheck2.Test.make ~name:"control word agrees with ISA predicates" ~count:2000 gen_word
    (fun w ->
      let ctl = Leon3.Ctl.decode w in
      let flag b = (ctl lsr b) land 1 = 1 in
      match Sparc.Encode.decode w with
      | None -> ctl land 1 = 0 (* invalid => valid bit clear *)
      | Some instr ->
          let op = I.opcode_of_instr instr in
          flag Leon3.Ctl.b_valid
          && flag Leon3.Ctl.b_is_load = I.is_load op
          && flag Leon3.Ctl.b_is_store = I.is_store op
          && flag Leon3.Ctl.b_is_branch = I.is_branch op
          && flag Leon3.Ctl.b_cc_en = I.writes_icc op
          && flag Leon3.Ctl.b_is_call = (op = I.Call)
          && flag Leon3.Ctl.b_is_jmpl = (op = I.Jmpl)
          && flag Leon3.Ctl.b_is_save = (op = I.Save)
          && flag Leon3.Ctl.b_is_restore = (op = I.Restore)
          && flag Leon3.Ctl.b_is_sethi = (op = I.Sethi))

let prop_ctl_imm_matches_decode =
  QCheck2.Test.make ~name:"imm datapath value matches the instruction" ~count:2000
    gen_word (fun w ->
      match Sparc.Encode.decode w with
      | None -> Leon3.Ctl.imm_of w = 0
      | Some (I.Alu { op2 = I.Imm i; _ }) | Some (I.Mem { op2 = I.Imm i; _ }) ->
          Leon3.Ctl.imm_of w = Bitops.of_int i
      | Some (I.Sethi_i { imm22; _ }) -> Leon3.Ctl.imm_of w = imm22 lsl 10
      | Some (I.Branch_i { disp22; _ }) -> Leon3.Ctl.imm_of w = Bitops.of_int (disp22 * 4)
      | Some (I.Call_i { disp30 }) -> Leon3.Ctl.imm_of w = Bitops.of_int (disp30 * 4)
      | Some (I.Alu { op2 = I.Reg _; _ }) | Some (I.Mem { op2 = I.Reg _; _ }) ->
          Leon3.Ctl.imm_of w = 0)

let suite =
  ( "leon3",
    [ Alcotest.test_case "register-level equivalence" `Quick test_diff_registers;
      Alcotest.test_case "regfile window mapping" `Quick test_regfile_slot_matches_iss_window_map;
      Alcotest.test_case "trap: misaligned" `Quick test_trap_equivalence_misaligned;
      Alcotest.test_case "trap: zero divide" `Quick test_trap_equivalence_div0;
      Alcotest.test_case "trap: illegal" `Quick test_trap_equivalence_illegal;
      Alcotest.test_case "all workloads differential" `Slow test_all_workloads_differential;
      Alcotest.test_case "excerpts differential" `Slow test_excerpts_differential;
      Alcotest.test_case "instret" `Quick test_instret_counts_retired;
      Alcotest.test_case "cache thrashing stays exact" `Quick test_cache_behaviour_visible;
      Alcotest.test_case "cache size is timing-only" `Quick
        test_cache_size_affects_timing_not_results;
      Alcotest.test_case "gate-level adder equivalent" `Quick
        test_gate_level_adder_equivalent ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_random_differential; prop_ctl_consistent_with_isa;
          prop_ctl_imm_matches_decode ] )
