test/test_fault.ml: Alcotest Array Fault_injection Lazy Leon3 List Rtl Sparc String
