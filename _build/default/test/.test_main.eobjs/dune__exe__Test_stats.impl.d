test/test_stats.ml: Alcotest Array Fun List QCheck2 QCheck_alcotest Stats
