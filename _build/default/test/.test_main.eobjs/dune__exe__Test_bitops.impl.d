test/test_bitops.ml: Alcotest Bitops Int64 List QCheck2 QCheck_alcotest
