test/test_rtl.ml: Alcotest Array Filename In_channel List Rtl String Sys
