test/test_iss.ml: Alcotest Bitops Iss List Sparc
