test/test_correlation.ml: Alcotest Correlation Fault_injection Lazy List Report Rtl Stats String Unix Workloads
