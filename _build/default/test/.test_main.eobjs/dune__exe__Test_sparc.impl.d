test/test_sparc.ml: Alcotest Array Bitops Iss List QCheck2 QCheck_alcotest Sparc String
