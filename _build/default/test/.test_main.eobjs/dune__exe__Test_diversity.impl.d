test/test_diversity.ml: Alcotest Diversity Lazy Leon3 List QCheck2 QCheck_alcotest Sparc
