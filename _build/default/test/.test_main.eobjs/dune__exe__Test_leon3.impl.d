test/test_leon3.ml: Alcotest Bitops Iss Lazy Leon3 List Printf QCheck2 QCheck_alcotest Rtl Sparc Workloads
