(* Tests for the workload suite: every program assembles, terminates
   cleanly on the ISS, has the intended diversity profile, and reacts
   to its parameters. *)

module E = Iss.Emulator
module I = Sparc.Isa
module Suite = Workloads.Suite

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?(iterations = None) ?(dataset = 0) name =
  let e = Suite.find name in
  let iterations =
    match iterations with Some n -> n | None -> e.Suite.default_iterations
  in
  E.execute (e.Suite.build ~iterations ~dataset)

let test_all_terminate () =
  List.iter
    (fun e ->
      let r = run e.Suite.name in
      match r.E.stop with
      | E.Exited _ -> ()
      | s -> Alcotest.failf "%s did not exit: %a" e.Suite.name E.pp_stop s)
    Suite.all

let test_registry () =
  check_int "fourteen workloads" 14 (List.length Suite.all);
  check_int "table1 set" 6 (List.length Suite.table1_set);
  check_int "automotive" 12 (List.length Suite.automotive);
  check_int "synthetic" 2 (List.length Suite.synthetic);
  check_bool "find" true ((Suite.find "rspeed").Suite.name = "rspeed");
  check_bool "names unique" true
    (List.length (List.sort_uniq compare Suite.names) = List.length Suite.names)

let test_diversity_profile () =
  (* The paper's Table 1 pattern: automotive benchmarks cluster at high
     diversity, synthetics sit far below. *)
  List.iter
    (fun e ->
      let r = run e.Suite.name in
      match e.Suite.kind with
      | Suite.Automotive ->
          check_bool
            (Printf.sprintf "%s diversity %d in automotive band" e.Suite.name r.E.diversity)
            true
            (r.E.diversity >= 45 && r.E.diversity <= 58)
      | Suite.Synthetic ->
          check_bool
            (Printf.sprintf "%s diversity %d in synthetic band" e.Suite.name r.E.diversity)
            true
            (r.E.diversity >= 8 && r.E.diversity <= 25))
    Suite.all

let test_paired_diversity_puwmod_ttsprk () =
  (* The paper uses puwmod/ttsprk as an order-vs-types control pair:
     their type sets must be nearly identical. *)
  let a = run "puwmod" and b = run "ttsprk" in
  let set r = List.map fst r.E.histogram in
  let diff =
    List.length (List.filter (fun op -> not (List.mem op (set b))) (set a))
    + List.length (List.filter (fun op -> not (List.mem op (set a))) (set b))
  in
  check_bool "type sets nearly identical" true (diff <= 8)

let test_intbench_memory_starved () =
  let r = run "intbench" in
  check_bool "almost no memory instructions" true
    (r.E.memory_instructions * 50 < r.E.instructions)

let test_membench_memory_heavy () =
  let r = run "membench" in
  check_bool "memory instructions dominate" true
    (r.E.memory_instructions * 3 > r.E.instructions)

let test_iterations_scale_work () =
  let r2 = run ~iterations:(Some 2) "rspeed" in
  let r4 = run ~iterations:(Some 4) "rspeed" in
  check_bool "more iterations, more instructions" true
    (r4.E.instructions > r2.E.instructions);
  (* kernel work is roughly linear in iterations *)
  let delta = r4.E.instructions - r2.E.instructions in
  check_bool "delta is twice the kernel cost" true (delta > 1000)

let test_datasets_change_data_not_code () =
  let e = Suite.find "canrdr" in
  let p0 = e.Suite.build ~iterations:2 ~dataset:0 in
  let p1 = e.Suite.build ~iterations:2 ~dataset:1 in
  check_bool "same code" true (p0.Sparc.Asm.code = p1.Sparc.Asm.code);
  check_bool "different data" true (p0.Sparc.Asm.data <> p1.Sparc.Asm.data)

let test_results_published () =
  (* Every automotive workload must write into the result region and
     publish a final CRC (slot result_words-1). *)
  let crc_addr =
    Sparc.Layout.result_base + (4 * (Workloads.Common.result_words - 1))
  in
  List.iter
    (fun e ->
      let r = run e.Suite.name in
      let wrote_crc =
        List.exists
          (function
            | Sparc.Bus_event.Write { addr; _ } -> addr = crc_addr
            | Sparc.Bus_event.Read _ -> false)
          r.E.writes
      in
      check_bool (e.Suite.name ^ " publishes a CRC") true wrote_crc)
    Suite.automotive

let test_crc_reference_matches () =
  (* The harness's in-guest CRC equals the host-side reference over the
     final result-region bytes. *)
  let e = Suite.find "tblook" in
  let prog = e.Suite.build ~iterations:2 ~dataset:0 in
  let t = E.create prog in
  (match E.run t with E.Exited _ -> () | s -> Alcotest.failf "%a" E.pp_stop s);
  let mem = E.memory t in
  let n_bytes = 4 * (Workloads.Common.result_words - 1) in
  let bytes =
    Array.init n_bytes (fun i ->
        Sparc.Memory.load_byte mem (Sparc.Layout.result_base + i))
  in
  let expected = Workloads.Common.crc16_reference bytes in
  let crc_addr =
    Sparc.Layout.result_base + (4 * (Workloads.Common.result_words - 1))
  in
  check_int "crc matches host reference" expected (Sparc.Memory.load_word mem crc_addr)

let test_excerpt_type_counts () =
  let div prog = (E.execute prog).E.diversity in
  List.iter
    (fun m ->
      check_int ("subset A diversity: " ^ m) 8 (div (Workloads.Excerpts.subset_a m)))
    Workloads.Excerpts.subset_a_members;
  List.iter
    (fun m ->
      check_int ("subset B diversity: " ^ m) 11 (div (Workloads.Excerpts.subset_b m)))
    Workloads.Excerpts.subset_b_members

let test_excerpt_identical_code () =
  let progs = List.map Workloads.Excerpts.subset_a Workloads.Excerpts.subset_a_members in
  match progs with
  | p :: rest ->
      List.iter
        (fun p' -> check_bool "identical code" true (p.Sparc.Asm.code = p'.Sparc.Asm.code))
        rest
  | [] -> Alcotest.fail "no members"

let test_excerpt_unknown_member_rejected () =
  Alcotest.check_raises "unknown member"
    (Invalid_argument "Excerpts.dataset_of_member: unknown member nope") (fun () ->
      ignore (Workloads.Excerpts.subset_a "nope"))

let test_gen_words_bounds () =
  let ws = Workloads.Common.gen_words ~seed:1 ~n:500 ~lo:10 ~hi:20 in
  check_int "count" 500 (Array.length ws);
  Array.iter (fun w -> check_bool "bounded" true (w >= 10 && w <= 20)) ws;
  let ws' = Workloads.Common.gen_words ~seed:1 ~n:500 ~lo:10 ~hi:20 in
  check_bool "deterministic" true (ws = ws')

let suite =
  ( "workloads",
    [ Alcotest.test_case "all terminate" `Slow test_all_terminate;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "diversity profile" `Slow test_diversity_profile;
      Alcotest.test_case "puwmod/ttsprk pair" `Quick test_paired_diversity_puwmod_ttsprk;
      Alcotest.test_case "intbench starved of memory" `Quick test_intbench_memory_starved;
      Alcotest.test_case "membench memory-heavy" `Quick test_membench_memory_heavy;
      Alcotest.test_case "iterations scale" `Quick test_iterations_scale_work;
      Alcotest.test_case "datasets vary data only" `Quick test_datasets_change_data_not_code;
      Alcotest.test_case "results published" `Slow test_results_published;
      Alcotest.test_case "guest CRC = host CRC" `Quick test_crc_reference_matches;
      Alcotest.test_case "excerpt type counts" `Quick test_excerpt_type_counts;
      Alcotest.test_case "excerpt identical code" `Quick test_excerpt_identical_code;
      Alcotest.test_case "excerpt bad member" `Quick test_excerpt_unknown_member_rejected;
      Alcotest.test_case "gen_words" `Quick test_gen_words_bounds ] )
