(* Unit and property tests for the 32-bit word arithmetic layer. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_of_int () =
  check_int "truncates" 0x2345_6789 (Bitops.of_int 0x1_2345_6789);
  check_int "identity" 42 (Bitops.of_int 42);
  check_int "negative wraps" 0xFFFF_FFFF (Bitops.of_int (-1))

let test_signedness () =
  check_int "positive" 5 (Bitops.to_signed 5);
  check_int "minus one" (-1) (Bitops.to_signed 0xFFFF_FFFF);
  check_int "int32 min" (-0x8000_0000) (Bitops.to_signed 0x8000_0000);
  check_bool "negative" true (Bitops.is_negative 0x8000_0000);
  check_bool "positive" false (Bitops.is_negative 0x7FFF_FFFF)

let test_int32_roundtrip () =
  List.iter
    (fun w -> check_int "roundtrip" w (Bitops.of_int32 (Bitops.to_int32 w)))
    [ 0; 1; 0x7FFF_FFFF; 0x8000_0000; 0xFFFF_FFFF; 0xDEAD_BEEF ]

let test_add_full () =
  let r, c, v = Bitops.add_full 0xFFFF_FFFF 1 0 in
  check_int "wrap result" 0 r;
  check_bool "carry out" true c;
  check_bool "no overflow" false v;
  let r, c, v = Bitops.add_full 0x7FFF_FFFF 1 0 in
  check_int "result" 0x8000_0000 r;
  check_bool "no carry" false c;
  check_bool "signed overflow" true v;
  let r, c, _ = Bitops.add_full 1 1 1 in
  check_int "carry in" 3 r;
  check_bool "no carry out" false c

let test_sub_full () =
  let r, borrow, v = Bitops.sub_full 0 1 0 in
  check_int "wrap" 0xFFFF_FFFF r;
  check_bool "borrow" true borrow;
  check_bool "no ovf" false v;
  let r, borrow, v = Bitops.sub_full 0x8000_0000 1 0 in
  check_int "result" 0x7FFF_FFFF r;
  check_bool "no borrow" false borrow;
  check_bool "overflow" true v;
  let r, _, _ = Bitops.sub_full 5 3 1 in
  check_int "borrow in" 1 r

let test_mul_full () =
  let hi, lo = Bitops.mul_full ~signed:false 0xFFFF_FFFF 0xFFFF_FFFF in
  check_int "u hi" 0xFFFF_FFFE hi;
  check_int "u lo" 1 lo;
  let hi, lo = Bitops.mul_full ~signed:true 0xFFFF_FFFF 0xFFFF_FFFF in
  (* (-1) * (-1) = 1 *)
  check_int "s hi" 0 hi;
  check_int "s lo" 1 lo;
  let hi, lo = Bitops.mul_full ~signed:true 0xFFFF_FFFE 3 in
  (* -2 * 3 = -6 *)
  check_int "neg hi" 0xFFFF_FFFF hi;
  check_int "neg lo" 0xFFFF_FFFA lo

let test_div32 () =
  (match Bitops.div32 ~signed:false ~hi:0 ~lo:100 7 with
  | Some (q, ovf) ->
      check_int "100/7" 14 q;
      check_bool "no ovf" false ovf
  | None -> Alcotest.fail "unexpected zero divide");
  check_bool "divide by zero" true (Bitops.div32 ~signed:false ~hi:0 ~lo:5 0 = None);
  (match Bitops.div32 ~signed:true ~hi:0xFFFF_FFFF ~lo:0xFFFF_FFF6 2 with
  | Some (q, _) -> check_int "-10/2" 0xFFFF_FFFB q
  | None -> Alcotest.fail "unexpected zero divide");
  (* unsigned overflow clamps: (2^32 * 16) / 2 > 2^32-1 *)
  (match Bitops.div32 ~signed:false ~hi:16 ~lo:0 2 with
  | Some (q, ovf) ->
      check_int "clamped" 0xFFFF_FFFF q;
      check_bool "overflowed" true ovf
  | None -> Alcotest.fail "unexpected zero divide")

let test_shifts () =
  check_int "shl" 0x8000_0000 (Bitops.shl 1 31);
  check_int "shl masks count" 2 (Bitops.shl 1 33);
  check_int "shr" 1 (Bitops.shr 0x8000_0000 31);
  check_int "sar sign" 0xFFFF_FFFF (Bitops.sar 0x8000_0000 31);
  check_int "sar positive" 0x0800_0000 (Bitops.sar 0x1000_0000 1)

let test_sext () =
  check_int "byte positive" 0x7F (Bitops.sext ~bits:8 0x7F);
  check_int "byte negative" 0xFFFF_FF80 (Bitops.sext ~bits:8 0x80);
  check_int "simm13" 0xFFFF_F000 (Bitops.sext ~bits:13 0x1000);
  check_int "full width" 0xDEAD_BEEF (Bitops.sext ~bits:32 0xDEAD_BEEF)

let test_fields () =
  check_int "bits" 0xD (Bitops.bits ~hi:15 ~lo:12 0xDEAD);
  check_int "bit" 1 (Bitops.bit 31 0x8000_0000);
  check_int "set" 0b101 (Bitops.set_bit 2 0b001);
  check_int "clear" 0b001 (Bitops.clear_bit 2 0b101);
  check_int "update true" 0b100 (Bitops.update_bit 2 true 0);
  check_int "update false" 0 (Bitops.update_bit 2 false 0b100);
  check_int "popcount" 8 (Bitops.popcount 0xFF);
  check_int "popcount full" 32 (Bitops.popcount 0xFFFF_FFFF)

let test_compare () =
  check_bool "ult" true (Bitops.ult 1 0xFFFF_FFFF);
  check_bool "slt opposite" true (Bitops.slt 0xFFFF_FFFF 1);
  check_bool "ult false" false (Bitops.ult 0xFFFF_FFFF 1);
  check_bool "slt false" false (Bitops.slt 1 0xFFFF_FFFF)

(* Properties: agreement with Int64 reference arithmetic. *)

let gen_word = QCheck2.Gen.(map (fun x -> x land Bitops.mask32) (int_bound max_int))

let prop_add_matches_int64 =
  QCheck2.Test.make ~name:"add matches Int64" ~count:500
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) ->
      let expected =
        Int64.to_int (Int64.logand (Int64.add (Int64.of_int a) (Int64.of_int b)) 0xFFFF_FFFFL)
      in
      Bitops.add a b = expected)

let prop_sub_neg =
  QCheck2.Test.make ~name:"a - b = a + (-b)" ~count:500
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) -> Bitops.sub a b = Bitops.add a (Bitops.neg b))

let prop_mul_low_sign_invariant =
  QCheck2.Test.make ~name:"signed/unsigned mul agree on low word" ~count:500
    QCheck2.Gen.(pair gen_word gen_word)
    (fun (a, b) ->
      snd (Bitops.mul_full ~signed:true a b) = snd (Bitops.mul_full ~signed:false a b))

let prop_sext_idempotent =
  QCheck2.Test.make ~name:"sext idempotent" ~count:500
    QCheck2.Gen.(pair (int_range 1 32) gen_word)
    (fun (bits, x) ->
      let once = Bitops.sext ~bits x in
      Bitops.sext ~bits once = once)

let prop_shift_inverse =
  QCheck2.Test.make ~name:"shr inverts shl on low bits" ~count:500
    QCheck2.Gen.(pair (int_bound 31) gen_word)
    (fun (n, x) ->
      let low = x land ((1 lsl (32 - n)) - 1) in
      Bitops.shr (Bitops.shl low n) n = low)

let suite =
  ( "bitops",
    [ Alcotest.test_case "of_int" `Quick test_of_int;
      Alcotest.test_case "signedness" `Quick test_signedness;
      Alcotest.test_case "int32 roundtrip" `Quick test_int32_roundtrip;
      Alcotest.test_case "add_full" `Quick test_add_full;
      Alcotest.test_case "sub_full" `Quick test_sub_full;
      Alcotest.test_case "mul_full" `Quick test_mul_full;
      Alcotest.test_case "div32" `Quick test_div32;
      Alcotest.test_case "shifts" `Quick test_shifts;
      Alcotest.test_case "sext" `Quick test_sext;
      Alcotest.test_case "fields" `Quick test_fields;
      Alcotest.test_case "compare" `Quick test_compare ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_add_matches_int64; prop_sub_neg; prop_mul_low_sign_invariant;
          prop_sext_idempotent; prop_shift_inverse ] )
