(* Tests for the table renderer. *)

module T = Report.Table

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let sample =
  T.make ~title:"demo" ~header:[ "name"; "value" ]
    ~notes:[ "a note" ]
    [ [ "alpha"; "1" ]; [ "beta, with comma"; "2" ] ]

let test_render_contains_cells () =
  let s = T.to_string sample in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "title" true (contains "== demo ==");
  check_bool "header" true (contains "name");
  check_bool "cell" true (contains "alpha");
  check_bool "note" true (contains "note: a note")

let test_columns_aligned () =
  let s = T.to_string sample in
  let lines = String.split_on_char '\n' s in
  let pipe_lines = List.filter (fun l -> String.length l > 0 && l.[0] = '|') lines in
  let width = String.length (List.hd pipe_lines) in
  List.iter
    (fun l -> Alcotest.(check int) "equal widths" width (String.length l))
    pipe_lines

let test_csv () =
  check_string "csv quoting"
    "name,value\nalpha,1\n\"beta, with comma\",2\n"
    (T.to_csv sample)

let test_cells () =
  check_string "float" "3.14" (T.cell_float 3.14159);
  check_string "pct" "12.3%" (T.cell_pct 12.34)

let test_mismatched_row_rejected () =
  match T.make ~title:"t" ~header:[ "a" ] [ [ "1"; "2" ] ] with
  | _ -> Alcotest.fail "expected an assertion failure"
  | exception Assert_failure _ -> ()

let suite =
  ( "report",
    [ Alcotest.test_case "render" `Quick test_render_contains_cells;
      Alcotest.test_case "alignment" `Quick test_columns_aligned;
      Alcotest.test_case "csv" `Quick test_csv;
      Alcotest.test_case "cells" `Quick test_cells;
      Alcotest.test_case "bad row" `Quick test_mismatched_row_rejected ] )
