(* Diversity analysis: compute the paper's instruction-diversity metric
   for every workload from ISS runs alone (no RTL involved), derive the
   Eq. (1) area-weighted utilisation score, and rank the workloads the
   way their RTL failure probability ranks them.

     dune exec examples/diversity_analysis.exe *)

let () =
  let core = Leon3.Core.build () in
  let predictor = Diversity.Predictor.of_core core in

  print_endline "area weights alpha_m from the RTL netlist (injectable bits):";
  List.iter
    (fun (u, a) -> Printf.printf "  %-10s %5.1f%%\n" (Sparc.Units.name u) (100. *. a))
    (Diversity.Predictor.alpha predictor);

  let infos =
    List.map
      (fun e ->
        let prog =
          e.Workloads.Suite.build ~iterations:e.Workloads.Suite.default_iterations
            ~dataset:0
        in
        Diversity.Metric.of_program prog)
      Workloads.Suite.all
  in
  print_endline "\nper-workload diversity and Eq.(1) utilisation score:";
  Printf.printf "  %-10s %6s %6s %8s %8s\n" "workload" "instrs" "mem" "diversity" "score";
  let scored =
    List.map
      (fun info ->
        (info, Diversity.Predictor.utilisation_score predictor info))
      infos
  in
  List.iter
    (fun ((info : Diversity.Metric.info), score) ->
      Printf.printf "  %-10s %6d %6d %8d %8.3f\n" info.Diversity.Metric.workload
        info.Diversity.Metric.instructions info.Diversity.Metric.memory_instructions
        info.Diversity.Metric.diversity score)
    scored;

  (* The paper's key observation, checkable without any RTL campaign:
     automotive workloads cluster at high diversity, synthetics sit
     well below, so any Pf that grows with exercised area must separate
     the two groups. *)
  let mean sel xs = List.fold_left (fun a x -> a +. sel x) 0. xs /. float (List.length xs) in
  let is_auto (info, _) =
    match Workloads.Suite.find info.Diversity.Metric.workload with
    | e -> e.Workloads.Suite.kind = Workloads.Suite.Automotive
  in
  let auto, synth = List.partition is_auto scored in
  Printf.printf "\nmean diversity: automotive %.1f vs synthetic %.1f\n"
    (mean (fun (i, _) -> float i.Diversity.Metric.diversity) auto)
    (mean (fun (i, _) -> float i.Diversity.Metric.diversity) synth);
  Printf.printf "mean Eq.(1) score: automotive %.3f vs synthetic %.3f\n"
    (mean snd auto) (mean snd synth);
  assert (mean snd auto > mean snd synth);
  print_endline "diversity analysis OK"
