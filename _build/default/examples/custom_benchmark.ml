(* Bring your own workload: write a kernel against the harness used by
   the built-in EEMBC-like suite, then put it through the full
   pipeline — ISS characterisation, RTL golden run, a stuck-at-1
   campaign, and a prediction from the Fig. 7 logarithmic fit.

     dune exec examples/custom_benchmark.exe *)

module A = Sparc.Asm
module I = Sparc.Isa
module Campaign = Fault_injection.Campaign

(* A little FIR filter: y[n] = sum_k h[k] * x[n-k], Q8 coefficients. *)
let taps = 4

let n_samples = 24

let init b =
  (* Copy the raw samples into the delay line's backing store. *)
  A.load_label b "fir_x" I.l0;
  A.load_label b "fir_work" I.l1;
  A.set32 b n_samples I.l2;
  A.label b "init_loop";
  A.ld b I.Ld I.l0 (Imm 0) I.l3;
  A.st b I.St I.l3 I.l1 (Imm 0);
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Add I.l1 (Imm 4) I.l1;
  A.op3 b I.Subcc I.l2 (Imm 1) I.l2;
  A.branch b I.Bne "init_loop"

let kernel b =
  A.load_label b "fir_work" I.l0;
  A.load_label b "fir_h" I.l1;
  A.mov b (Imm 0) I.l2;
  (* output accumulator *)
  A.set32 b (n_samples - taps) I.l3;
  A.label b "fir_n";
  A.mov b (Imm 0) I.o0;
  (* y *)
  A.mov b (Imm 0) I.o1;
  (* k *)
  A.label b "fir_k";
  A.op3 b I.Sll I.o1 (Imm 2) I.o2;
  A.op3 b I.Add I.l0 (Reg I.o2) I.o3;
  A.ld b I.Ld I.o3 (Imm 0) I.o3;
  A.op3 b I.Add I.l1 (Reg I.o2) I.o4;
  A.ld b I.Ld I.o4 (Imm 0) I.o4;
  A.op3 b I.Smul I.o3 (Reg I.o4) I.o3;
  A.op3 b I.Sra I.o3 (Imm 8) I.o3;
  A.op3 b I.Add I.o0 (Reg I.o3) I.o0;
  A.op3 b I.Add I.o1 (Imm 1) I.o1;
  A.cmp b I.o1 (Imm taps);
  A.branch b I.Bl "fir_k";
  A.op3 b I.Add I.l2 (Reg I.o0) I.l2;
  A.op3 b I.Add I.l0 (Imm 4) I.l0;
  A.op3 b I.Subcc I.l3 (Imm 1) I.l3;
  A.branch b I.Bne "fir_n";
  Workloads.Common.store_result b ~index:0 ~src:I.l2 ~addr_tmp:I.o7

let data b =
  A.data_label b "fir_x";
  A.words b (Workloads.Common.gen_words ~seed:4242 ~n:n_samples ~lo:1 ~hi:4000);
  A.data_label b "fir_h";
  A.words b [| 64; 128; 48; 16 |];
  A.data_label b "fir_work";
  A.space_words b n_samples

let () =
  let prog = Workloads.Common.standard ~name:"fir" ~iterations:2 ~init ~kernel ~data in

  (* ISS characterisation. *)
  let info = Diversity.Metric.of_program prog in
  Printf.printf "fir: %d instructions, %d memory, diversity %d\n"
    info.Diversity.Metric.instructions info.Diversity.Metric.memory_instructions
    info.Diversity.Metric.diversity;

  (* RTL campaign, stuck-at-1 at the integer unit. *)
  let sys = Leon3.System.create () in
  let config =
    { Campaign.default_config with
      Campaign.models = [ Rtl.Circuit.Stuck_at_1 ];
      sample_size = Some 300 }
  in
  let summaries, _ = Campaign.run ~config sys prog Fault_injection.Injection.Iu in
  let measured = Campaign.pf_percent (List.assoc Rtl.Circuit.Stuck_at_1 summaries) in
  Printf.printf "measured Pf (SA1 @ IU): %.1f%%\n" measured;

  (* Compare with the diversity fit from the built-in suite (a small
     sample keeps this example quick; expect a loose but same-ballpark
     agreement). *)
  let ctx = Correlation.Context.create ~samples:120 () in
  let f7, _ = Correlation.Experiments.figure7 ctx in
  let predicted =
    Stats.Regression.predict_log f7.Correlation.Experiments.f7_fit
      (float_of_int info.Diversity.Metric.diversity)
  in
  Printf.printf "Fig.7 fit predicts %.1f%% at diversity %d (R^2 %.2f)\n" predicted
    info.Diversity.Metric.diversity
    f7.Correlation.Experiments.f7_fit.Stats.Regression.r_squared;
  print_endline "custom benchmark OK"
