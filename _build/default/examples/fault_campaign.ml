(* Fault-injection campaign walkthrough: inject permanent faults into
   the integer unit while running an automotive workload, and break the
   verdicts down by failure mode and by functional unit.

     dune exec examples/fault_campaign.exe *)

module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection

let () =
  let entry = Workloads.Suite.find "canrdr" in
  let prog = entry.Workloads.Suite.build ~iterations:2 ~dataset:0 in
  let sys = Leon3.System.create () in

  (* Golden (fault-free) reference. *)
  let golden = Campaign.golden_run sys prog ~max_cycles:5_000_000 in
  Printf.printf "golden run: %d instructions, %d cycles, %d off-core writes\n"
    golden.Campaign.instructions golden.Campaign.cycles
    (Array.length golden.Campaign.writes);

  (* One hand-picked fault: stuck-at-1 on bit 12 of the ALU adder
     output, active from cycle 0.  Watch it become a failure. *)
  let core = Leon3.System.core sys in
  let sites = Injection.sites core (Injection.Unit_of Sparc.Units.Adder) in
  let site = List.hd sites in
  let r = Campaign.run_one sys prog golden site Rtl.Circuit.Stuck_at_1 in
  Printf.printf "\nsingle injection at %s: %s\n" r.Campaign.site_name
    (match r.Campaign.outcome with
    | Campaign.Silent -> "silent (latent fault)"
    | Campaign.Failure (Campaign.Wrong_write i) ->
        Printf.sprintf "failure — write #%d diverged" i
    | Campaign.Failure (Campaign.Missing_writes n) ->
        Printf.sprintf "failure — exited after only %d matching writes" n
    | Campaign.Failure (Campaign.Trap code) -> Printf.sprintf "failure — trap %d" code
    | Campaign.Failure Campaign.Hang -> "failure — watchdog hang");

  (* A whole campaign: 300 sampled IU sites x three fault models. *)
  let config =
    { Campaign.default_config with Campaign.sample_size = Some 300 }
  in
  let summaries, results = Campaign.run ~config sys prog Injection.Iu in
  print_endline "\ncampaign summaries (IU):";
  List.iter
    (fun (model, s) ->
      Printf.printf "  %-11s Pf = %5.1f%%  (wrong %d / missing %d / trap %d / hang %d)\n"
        (Rtl.Circuit.fault_model_name model)
        (Campaign.pf_percent s) s.Campaign.wrong_writes s.Campaign.missing_writes
        s.Campaign.traps s.Campaign.hangs)
    summaries;

  (* Attribute stuck-at-1 failures to functional units. *)
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (r : Campaign.run_result) ->
      if r.Campaign.model = Rtl.Circuit.Stuck_at_1 then
        match Injection.unit_of_site_name r.Campaign.site_name with
        | Some u ->
            let fails, total =
              Option.value ~default:(0, 0) (Hashtbl.find_opt tally u)
            in
            let f = if r.Campaign.outcome = Campaign.Silent then 0 else 1 in
            Hashtbl.replace tally u (fails + f, total + 1)
        | None -> ())
    results;
  print_endline "\nstuck-at-1 failures by functional unit:";
  List.iter
    (fun u ->
      match Hashtbl.find_opt tally u with
      | Some (fails, total) when total > 0 ->
          Printf.printf "  %-10s %3d/%-3d (%.0f%%)\n" (Sparc.Units.name u) fails total
            (100. *. float_of_int fails /. float_of_int total)
      | Some _ | None -> ())
    Sparc.Units.all
