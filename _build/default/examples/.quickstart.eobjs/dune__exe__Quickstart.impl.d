examples/quickstart.ml: Format Iss Leon3 List Sparc
