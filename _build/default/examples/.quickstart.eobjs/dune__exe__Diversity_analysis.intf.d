examples/diversity_analysis.mli:
