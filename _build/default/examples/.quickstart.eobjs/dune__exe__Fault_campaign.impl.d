examples/fault_campaign.ml: Array Fault_injection Hashtbl Leon3 List Option Printf Rtl Sparc Workloads
