examples/custom_benchmark.ml: Correlation Diversity Fault_injection Leon3 List Printf Rtl Sparc Stats Workloads
