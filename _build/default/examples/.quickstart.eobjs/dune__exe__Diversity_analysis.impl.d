examples/diversity_analysis.ml: Diversity Leon3 List Printf Sparc Workloads
