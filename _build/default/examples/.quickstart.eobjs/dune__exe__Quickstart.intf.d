examples/quickstart.mli:
