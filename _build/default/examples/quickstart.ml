(* Quickstart: write a SPARC program with the assembler DSL, run it on
   both simulation engines and check they observe the same off-core
   write stream — the property every fault-injection verdict in this
   repository rests on.

     dune exec examples/quickstart.exe *)

module A = Sparc.Asm
module I = Sparc.Isa

(* Sum the squares 1..n and publish the result. *)
let program n =
  let b = A.create ~name:"sum-of-squares" () in
  A.prologue b;
  A.mov b (Imm 0) I.o0;
  (* accumulator *)
  A.mov b (Imm 1) I.o1;
  (* k *)
  A.label b "loop";
  A.op3 b I.Umul I.o1 (Reg I.o1) I.o2;
  A.op3 b I.Add I.o0 (Reg I.o2) I.o0;
  A.op3 b I.Add I.o1 (Imm 1) I.o1;
  A.cmp b I.o1 (Imm n);
  A.branch b I.Bleu "loop";
  A.set32 b Sparc.Layout.result_base I.o3;
  A.st b I.St I.o0 I.o3 (Imm 0);
  A.halt b I.o0;
  A.assemble b

let () =
  let prog = program 10 in
  print_endline "-- disassembly --";
  List.iter print_endline (A.disassemble prog);

  (* Engine 1: the instruction set simulator. *)
  let iss = Iss.Emulator.execute prog in
  Format.printf "@.ISS: %a after %d instructions, %d cycles, diversity %d@."
    Iss.Emulator.pp_stop iss.Iss.Emulator.stop iss.Iss.Emulator.instructions
    iss.Iss.Emulator.cycles iss.Iss.Emulator.diversity;

  (* Engine 2: the Leon3-class RTL netlist. *)
  let sys = Leon3.System.create () in
  Leon3.System.load sys prog;
  let stop = Leon3.System.run sys ~max_cycles:1_000_000 in
  Format.printf "RTL: %a after %d instructions, %d cycles@." Leon3.System.pp_stop stop
    (Leon3.System.instructions sys) (Leon3.System.cycles sys);

  (* The correlation invariant: identical off-core write streams. *)
  let ws_iss = iss.Iss.Emulator.writes in
  let ws_rtl = Leon3.System.writes sys in
  assert (List.length ws_iss = List.length ws_rtl);
  List.iter2
    (fun a b -> assert (Sparc.Bus_event.equal a b))
    ws_iss ws_rtl;
  Format.printf "@.off-core writes agree (%d events):@." (List.length ws_iss);
  List.iter (fun e -> print_endline ("  " ^ Sparc.Bus_event.to_string e)) ws_iss;
  (* 1^2 + ... + 10^2 = 385 *)
  (match ws_iss with
  | Sparc.Bus_event.Write { value; _ } :: _ -> assert (value = 385)
  | _ -> assert false);
  print_endline "quickstart OK"
