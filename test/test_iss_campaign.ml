(* Tests for ISS-level fault campaigns: verdict determinism across
   domain counts and journal resume, shard merging through the shared
   journal, and the site-name model partition.  The CI seed sweep
   reruns this suite under several RICV_TEST_SEED values — every
   property here must hold for any sampling seed. *)

module A = Sparc.Asm
module I = Sparc.Isa
module Campaign = Fault_injection.Campaign
module Journal = Fault_injection.Journal
module IC = Fault_injection.Iss_campaign

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let seed =
  match Sys.getenv_opt "RICV_TEST_SEED" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 7)
  | None -> 7

(* Sums 0..7 into a data word and exits with the sum; has a data
   segment so mem-flip sites land in real workload state. *)
let small_prog =
  lazy
    (let b = A.create ~name:"iss-small" () in
     A.prologue b;
     A.mov b (Imm 0) I.o0;
     A.mov b (Imm 0) I.o1;
     A.label b "loop";
     A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
     A.op3 b I.Add I.o1 (Imm 1) I.o1;
     A.cmp b I.o1 (Imm 8);
     A.branch b I.Bne "loop";
     A.set32 b Sparc.Layout.result_base I.o2;
     A.st b I.St I.o0 I.o2 (Imm 0);
     A.halt b I.o0;
     A.assemble b)

let config ?(samples = 12) ?(shard = (1, 1)) () =
  { IC.default_config with IC.samples_per_model = samples; seed; shard }

let full_verdict (r : Journal.run_result) =
  (r.Journal.site_name, r.Journal.model, r.Journal.outcome, r.Journal.detect_cycle,
   r.Journal.inject_cycle, r.Journal.sim)

let temp_journal () =
  let path = Filename.temp_file "ricv_iss_journal" ".jsonl" in
  Sys.remove path;
  path

let with_journal f =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* ---- golden run and site sampling ---- *)

let test_golden_run () =
  let g = IC.golden_run (Lazy.force small_prog) in
  check_bool "ran" true (g.IC.instructions > 0);
  check_bool "writes observed" true (Array.length g.IC.writes > 0);
  check_int "exit code is the sum" 28 g.IC.exit_code

let test_sample_sites_deterministic () =
  let prog = Lazy.force small_prog in
  let g = IC.golden_run prog in
  let sites1 = IC.sample_sites ~config:(config ()) g prog in
  let sites2 = IC.sample_sites ~config:(config ()) g prog in
  check_bool "same seed, same sites" true (sites1 = sites2);
  check_int "model-major, samples per model" (3 * 12) (Array.length sites1);
  Array.iter
    (fun (s : IC.site) ->
      check_bool ("site name carries the model: " ^ s.IC.site_name) true
        (IC.model_of_site_name s.IC.site_name = Some s.IC.smodel);
      check_bool "injection instant inside the golden run" true
        (s.IC.index >= 0 && s.IC.index < g.IC.instructions))
    sites1;
  (* a different seed moves the sample (the fingerprint hash sees it) *)
  let other =
    IC.sample_sites ~config:{ (config ()) with IC.seed = seed + 1 } g prog
  in
  check_bool "seed sensitivity" true (sites1 <> other)

let test_model_of_site_name_rejects_rtl () =
  check_bool "rtl site names are not ISS sites" true
    (IC.model_of_site_name "iu.ex_alu_result[3]" = None);
  check_bool "plain names rejected" true (IC.model_of_site_name "reg[1.2]@3" = None)

(* ---- campaign determinism ---- *)

let test_campaign_runs_all_models () =
  let summaries, results = IC.run ~config:(config ()) (Lazy.force small_prog) in
  check_int "verdict per site" (3 * 12) (List.length results);
  check_int "one summary per model" 3 (List.length summaries);
  List.iter
    (fun (m, (s : Campaign.summary)) ->
      check_int ("injections for " ^ IC.model_name m) 12 s.Campaign.injections)
    summaries;
  (* every verdict partitions back to exactly one ISS model *)
  List.iter
    (fun (r : Journal.run_result) ->
      check_bool ("verdict has an ISS model: " ^ r.Journal.site_name) true
        (IC.model_of_site_name r.Journal.site_name <> None);
      check_bool "recorded under bit-flip" true (r.Journal.model = Rtl.Circuit.Bit_flip))
    results

let test_parallel_equals_sequential () =
  let prog = Lazy.force small_prog in
  let s_seq, r_seq = IC.run ~config:(config ()) prog in
  let s_par, r_par = IC.run_parallel ~config:(config ()) ~domains:4 prog in
  check_int "verdict count" (List.length r_seq) (List.length r_par);
  List.iter2
    (fun a b ->
      check_bool ("verdicts equal: " ^ a.Journal.site_name) true
        (full_verdict a = full_verdict b))
    r_seq r_par;
  check_bool "summaries equal" true (s_seq = s_par)

let prop_parallel_matches_sequential =
  (* the engines agree for any sample size and domain count *)
  QCheck2.Test.make ~name:"iss parallel engine matches sequential" ~count:8
    QCheck2.Gen.(pair (int_range 1 6) (int_range 2 5))
    (fun (samples, domains) ->
      let prog = Lazy.force small_prog in
      let _, r_seq = IC.run ~config:(config ~samples ()) prog in
      let _, r_par = IC.run_parallel ~config:(config ~samples ()) ~domains prog in
      List.length r_seq = List.length r_par
      && List.for_all2 (fun a b -> full_verdict a = full_verdict b) r_seq r_par)

(* ---- journaling: kill, resume, shard, merge ---- *)

let test_journal_kill_and_resume () =
  let prog = Lazy.force small_prog in
  let summaries0, results0 = IC.run ~config:(config ()) prog in
  with_journal @@ fun path ->
  let _ = IC.run ~config:(config ()) ~journal:path prog in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  check_int "journal holds every verdict" (1 + List.length results0) (List.length lines);
  (* kill mid-campaign: keep half the verdicts plus a torn tail *)
  let keep = 1 + (List.length results0 / 2) in
  let oc = open_out path in
  List.iteri (fun i l -> if i < keep then (output_string oc l; output_char oc '\n')) lines;
  output_string oc {|{"type":"verdict","i":99,"site":"torn|};
  close_out oc;
  let obs = Obs.create () in
  let summaries1, results1 = IC.run ~config:(config ()) ~obs ~journal:path ~resume:true prog in
  check_int "replayed the surviving verdicts" (keep - 1)
    (Obs.counter obs "journal.replayed");
  List.iter2
    (fun r0 r1 ->
      check_bool ("verdict " ^ r0.Journal.site_name) true
        (full_verdict r0 = full_verdict r1))
    results0 results1;
  check_bool "summaries identical" true (summaries0 = summaries1);
  (* parallel resume over the same journal is also byte-identical *)
  let _, results2 =
    IC.run_parallel ~config:(config ()) ~domains:3 ~journal:path ~resume:true prog
  in
  List.iter2
    (fun r0 r2 -> check_bool "parallel resume stable" true (full_verdict r0 = full_verdict r2))
    results0 results2

let test_stale_journal_rejected () =
  let prog = Lazy.force small_prog in
  with_journal @@ fun path ->
  let _ = IC.run ~config:(config ()) ~journal:path prog in
  (* different sampling seed: the fingerprint must refuse to resume *)
  check_bool "stale journal raises Rejected" true
    (match
       IC.run ~config:{ (config ()) with IC.seed = seed + 1 } ~journal:path
         ~resume:true prog
     with
    | _ -> false
    | exception Journal.Rejected _ -> true)

let test_shard_merge_equals_direct () =
  let prog = Lazy.force small_prog in
  let summaries0, results0 = IC.run ~config:(config ()) prog in
  let n = 3 in
  let journals =
    List.init n (fun k ->
        let path = temp_journal () in
        let _ = IC.run ~config:(config ~shard:(k + 1, n) ()) ~journal:path prog in
        path)
  in
  Fun.protect ~finally:(fun () -> List.iter Sys.remove journals) @@ fun () ->
  let loaded =
    List.map
      (fun p -> match Journal.load p with Ok j -> j | Error m -> Alcotest.fail m)
      journals
  in
  match Journal.merge loaded with
  | Error msg -> Alcotest.fail msg
  | Ok (fp, merged) ->
      check_bool "iss journal target" true (fp.Journal.target = IC.target_name);
      check_int "merged count" (List.length results0) (List.length merged);
      List.iter2
        (fun r0 rm ->
          check_bool ("merged verdict " ^ r0.Journal.site_name) true
            (full_verdict r0 = full_verdict rm))
        results0 merged;
      (* the model partition of the merged verdicts reproduces the
         direct run's per-model summaries *)
      check_bool "partitioned summaries equal direct" true
        (IC.summaries_by_model IC.all_models merged = summaries0);
      (* incomplete shard sets stay rejected through the shared journal *)
      check_bool "incomplete set rejected" true
        (match Journal.merge [ List.hd loaded ] with Ok _ -> false | Error _ -> true)

let suite =
  ( "iss-campaign",
    [ Alcotest.test_case "golden run" `Quick test_golden_run;
      Alcotest.test_case "site sampling" `Quick test_sample_sites_deterministic;
      Alcotest.test_case "rtl site names rejected" `Quick test_model_of_site_name_rejects_rtl;
      Alcotest.test_case "all models run" `Quick test_campaign_runs_all_models;
      Alcotest.test_case "parallel = sequential" `Slow test_parallel_equals_sequential;
      Alcotest.test_case "kill and resume" `Slow test_journal_kill_and_resume;
      Alcotest.test_case "stale journal rejected" `Quick test_stale_journal_rejected;
      Alcotest.test_case "shard merge = direct" `Slow test_shard_merge_equals_direct ]
    @ [ QCheck_alcotest.to_alcotest prop_parallel_matches_sequential ] )
