(* Tests for the deterministic RNG, regressions and summaries. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Stats.Rng.create 42 and b = Stats.Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Stats.Rng.word32 a) (Stats.Rng.word32 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Stats.Rng.word32 a = Stats.Rng.word32 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Stats.Rng.create 9 in
  ignore (Stats.Rng.word32 a);
  let b = Stats.Rng.copy a in
  check_int "copy continues identically" (Stats.Rng.word32 a) (Stats.Rng.word32 b)

let test_rng_range () =
  let rng = Stats.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Stats.Rng.range rng ~lo:10 ~hi:20 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 20)
  done

let test_sample_without_replacement () =
  let rng = Stats.Rng.create 11 in
  let pool = Array.init 100 Fun.id in
  let sample = Stats.Rng.sample_without_replacement rng 30 pool in
  check_int "size" 30 (Array.length sample);
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  for i = 1 to 29 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  let all = Stats.Rng.sample_without_replacement rng 1000 pool in
  check_int "clamped to pool" 100 (Array.length all)

let test_linear_regression () =
  (* y = 2x + 1, exactly *)
  let fit = Stats.Regression.linear [ (0., 1.); (1., 3.); (2., 5.); (3., 7.) ] in
  check_float "slope" 2. fit.Stats.Regression.slope;
  check_float "intercept" 1. fit.Stats.Regression.intercept;
  check_float "r2" 1. fit.Stats.Regression.r_squared;
  check_float "predict" 9. (Stats.Regression.predict fit 4.)

let test_log_fit () =
  (* y = 3 ln x + 2 *)
  let points = List.map (fun x -> (x, (3. *. log x) +. 2.)) [ 1.; 2.; 5.; 10.; 20. ] in
  let fit = Stats.Regression.log_fit points in
  check_float "slope" 3. fit.Stats.Regression.slope;
  check_float "intercept" 2. fit.Stats.Regression.intercept;
  check_float "predict_log" ((3. *. log 7.) +. 2.) (Stats.Regression.predict_log fit 7.)

let test_regression_errors () =
  Alcotest.check_raises "too few points" (Invalid_argument "Regression.linear: need at least two points")
    (fun () -> ignore (Stats.Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Regression.linear: degenerate x values")
    (fun () -> ignore (Stats.Regression.linear [ (1., 1.); (1., 2.) ]));
  Alcotest.check_raises "log of non-positive" (Invalid_argument "Regression.log_fit: x must be positive")
    (fun () -> ignore (Stats.Regression.log_fit [ (0., 1.); (1., 2.) ]))

let test_degenerate_r2 () =
  (* Constant y: nothing to explain, so the fit must not claim a
     perfect R² (it used to report 1.). *)
  let fit = Stats.Regression.linear [ (0., 5.); (1., 5.); (2., 5.) ] in
  check_float "slope" 0. fit.Stats.Regression.slope;
  check_float "intercept" 5. fit.Stats.Regression.intercept;
  check_float "degenerate r2 is 0" 0. fit.Stats.Regression.r_squared

let test_log_fit_filters_nonpositive () =
  (* Non-positive x carries no log-domain information; the fit must
     equal the one over the positive points alone. *)
  let positive = List.map (fun x -> (x, (3. *. log x) +. 2.)) [ 1.; 2.; 5.; 10. ] in
  let noisy = (0., 99.) :: (-3., -7.) :: positive in
  let fit = Stats.Regression.log_fit noisy in
  let clean = Stats.Regression.log_fit positive in
  check_int "n counts only positive x" clean.Stats.Regression.n fit.Stats.Regression.n;
  check_float "slope" clean.Stats.Regression.slope fit.Stats.Regression.slope;
  check_float "intercept" clean.Stats.Regression.intercept fit.Stats.Regression.intercept

let test_pearson () =
  let r = Stats.Regression.pearson [ (1., 2.); (2., 4.); (3., 6.) ] in
  check_float "perfect correlation" 1. r;
  let r = Stats.Regression.pearson [ (1., 6.); (2., 4.); (3., 2.) ] in
  check_float "perfect anticorrelation" (-1.) r

let test_summary () =
  let s = Stats.Summary.of_list [ 1.; 2.; 3.; 4. ] in
  check_int "n" 4 s.Stats.Summary.n;
  check_float "mean" 2.5 s.Stats.Summary.mean;
  check_float "min" 1. s.Stats.Summary.min;
  check_float "max" 4. s.Stats.Summary.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.290994449 s.Stats.Summary.stddev

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.Summary.percentile xs 50.);
  check_float "p0" 1. (Stats.Summary.percentile xs 0.);
  check_float "p100" 5. (Stats.Summary.percentile xs 100.);
  check_float "interpolated" 1.4 (Stats.Summary.percentile xs 10.)

let test_percentile_nan () =
  (* NaN has no rank: polymorphic compare used to sort it arbitrarily
     and return garbage quantiles; now the sample is rejected. *)
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Summary.percentile: NaN in sample")
    (fun () -> ignore (Stats.Summary.percentile [| 1.; Float.nan; 3. |] 50.));
  (* negative zero must not confuse the ordering *)
  check_float "signed zeros" 0. (Stats.Summary.percentile [| 0.; -0.; 0. |] 50.)

let test_ratio () =
  check_float "guarded zero" 0. (Stats.Summary.ratio ~num:3 ~den:0);
  check_float "plain" 0.75 (Stats.Summary.ratio ~num:3 ~den:4)

let prop_fit_recovers_line =
  QCheck2.Test.make ~name:"linear fit recovers exact lines" ~count:200
    QCheck2.Gen.(triple (float_range (-50.) 50.) (float_range (-50.) 50.) (int_range 3 20))
    (fun (a, b, n) ->
      let points = List.init n (fun i -> (float_of_int i, (a *. float_of_int i) +. b)) in
      match Stats.Regression.linear points with
      | fit ->
          abs_float (fit.Stats.Regression.slope -. a) < 1e-6
          && abs_float (fit.Stats.Regression.intercept -. b) < 1e-6
      | exception Invalid_argument _ -> false)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck2.Gen.(pair (int_bound 1000) (list_size (int_range 0 50) (int_bound 100)))
    (fun (seed, xs) ->
      let rng = Stats.Rng.create seed in
      let arr = Array.of_list xs in
      Stats.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let suite =
  ( "stats",
    [ Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "rng range" `Quick test_rng_range;
      Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
      Alcotest.test_case "linear regression" `Quick test_linear_regression;
      Alcotest.test_case "log fit" `Quick test_log_fit;
      Alcotest.test_case "regression errors" `Quick test_regression_errors;
      Alcotest.test_case "degenerate r2" `Quick test_degenerate_r2;
      Alcotest.test_case "log fit filters" `Quick test_log_fit_filters_nonpositive;
      Alcotest.test_case "pearson" `Quick test_pearson;
      Alcotest.test_case "summary" `Quick test_summary;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "percentile nan" `Quick test_percentile_nan;
      Alcotest.test_case "ratio" `Quick test_ratio ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_fit_recovers_line; prop_shuffle_preserves_multiset ] )
