(* Tests for the deterministic RNG, regressions and summaries. *)

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Stats.Rng.create 42 and b = Stats.Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Stats.Rng.word32 a) (Stats.Rng.word32 b)
  done

let test_rng_seed_sensitivity () =
  let a = Stats.Rng.create 1 and b = Stats.Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Stats.Rng.word32 a = Stats.Rng.word32 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_copy () =
  let a = Stats.Rng.create 9 in
  ignore (Stats.Rng.word32 a);
  let b = Stats.Rng.copy a in
  check_int "copy continues identically" (Stats.Rng.word32 a) (Stats.Rng.word32 b)

let test_rng_range () =
  let rng = Stats.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Stats.Rng.range rng ~lo:10 ~hi:20 in
    Alcotest.(check bool) "in range" true (v >= 10 && v <= 20)
  done

let test_sample_without_replacement () =
  let rng = Stats.Rng.create 11 in
  let pool = Array.init 100 Fun.id in
  let sample = Stats.Rng.sample_without_replacement rng 30 pool in
  check_int "size" 30 (Array.length sample);
  let sorted = Array.copy sample in
  Array.sort compare sorted;
  for i = 1 to 29 do
    Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
  done;
  let all = Stats.Rng.sample_without_replacement rng 1000 pool in
  check_int "clamped to pool" 100 (Array.length all)

let test_linear_regression () =
  (* y = 2x + 1, exactly *)
  let fit = Stats.Regression.linear [ (0., 1.); (1., 3.); (2., 5.); (3., 7.) ] in
  check_float "slope" 2. fit.Stats.Regression.slope;
  check_float "intercept" 1. fit.Stats.Regression.intercept;
  check_float "r2" 1. fit.Stats.Regression.r_squared;
  check_float "predict" 9. (Stats.Regression.predict fit 4.)

let test_log_fit () =
  (* y = 3 ln x + 2 *)
  let points = List.map (fun x -> (x, (3. *. log x) +. 2.)) [ 1.; 2.; 5.; 10.; 20. ] in
  let fit = Stats.Regression.log_fit points in
  check_float "slope" 3. fit.Stats.Regression.slope;
  check_float "intercept" 2. fit.Stats.Regression.intercept;
  check_float "predict_log" ((3. *. log 7.) +. 2.) (Stats.Regression.predict_log fit 7.)

let test_regression_errors () =
  Alcotest.check_raises "too few points" (Invalid_argument "Regression.linear: need at least two points")
    (fun () -> ignore (Stats.Regression.linear [ (1., 1.) ]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Regression.linear: degenerate x values")
    (fun () -> ignore (Stats.Regression.linear [ (1., 1.); (1., 2.) ]));
  Alcotest.check_raises "log of non-positive" (Invalid_argument "Regression.log_fit: x must be positive")
    (fun () -> ignore (Stats.Regression.log_fit [ (0., 1.); (1., 2.) ]))

let test_degenerate_r2 () =
  (* Constant y: nothing to explain, so the fit must not claim a
     perfect R² (it used to report 1.). *)
  let fit = Stats.Regression.linear [ (0., 5.); (1., 5.); (2., 5.) ] in
  check_float "slope" 0. fit.Stats.Regression.slope;
  check_float "intercept" 5. fit.Stats.Regression.intercept;
  check_float "degenerate r2 is 0" 0. fit.Stats.Regression.r_squared

let test_log_fit_filters_nonpositive () =
  (* Non-positive x carries no log-domain information; the fit must
     equal the one over the positive points alone. *)
  let positive = List.map (fun x -> (x, (3. *. log x) +. 2.)) [ 1.; 2.; 5.; 10. ] in
  let noisy = (0., 99.) :: (-3., -7.) :: positive in
  let fit = Stats.Regression.log_fit noisy in
  let clean = Stats.Regression.log_fit positive in
  check_int "n counts only positive x" clean.Stats.Regression.n fit.Stats.Regression.n;
  check_float "slope" clean.Stats.Regression.slope fit.Stats.Regression.slope;
  check_float "intercept" clean.Stats.Regression.intercept fit.Stats.Regression.intercept

let test_pearson () =
  let r = Stats.Regression.pearson [ (1., 2.); (2., 4.); (3., 6.) ] in
  check_float "perfect correlation" 1. r;
  let r = Stats.Regression.pearson [ (1., 6.); (2., 4.); (3., 2.) ] in
  check_float "perfect anticorrelation" (-1.) r

let test_ranks_and_spearman () =
  (* fractional ranks: ties share the average of the positions they
     span *)
  Alcotest.(check (array (float 1e-9)))
    "ties average" [| 1.5; 1.5; 3.; 4. |]
    (Stats.Regression.ranks [| 5.; 5.; 7.; 9. |]);
  (* monotone but non-linear: pearson < 1, spearman exactly 1 *)
  let curved = List.map (fun x -> (x, x *. x *. x)) [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "monotone gives rho=1" 1. (Stats.Regression.spearman curved);
  check_float "reversed gives rho=-1" (-1.)
    (Stats.Regression.spearman (List.map (fun (x, y) -> (x, -.y)) curved));
  (* a constant coordinate carries no ordering information *)
  check_float "constant y" 0. (Stats.Regression.spearman [ (1., 2.); (3., 2.); (5., 2.) ]);
  (* binary outcome against a score, the predictor-validation shape:
     scores [1;2;3;4], outcomes [1;1;0;0] — low score = detected *)
  let r = Stats.Regression.spearman [ (1., 1.); (2., 1.); (3., 0.); (4., 0.) ] in
  Alcotest.(check bool) "binary outcome anticorrelates" true (r < -0.8)

let test_ranks_nan () =
  (* NaN admits no rank: polymorphic sort used to place it arbitrarily
     and silently skew every downstream rho; now it is rejected *)
  Alcotest.check_raises "ranks rejects NaN" (Invalid_argument "Regression.ranks: NaN in input")
    (fun () -> ignore (Stats.Regression.ranks [| 1.; Float.nan; 3. |]));
  Alcotest.check_raises "spearman rejects NaN x"
    (Invalid_argument "Regression.ranks: NaN in input") (fun () ->
      ignore (Stats.Regression.spearman [ (1., 1.); (Float.nan, 2.); (3., 3.) ]));
  Alcotest.check_raises "spearman rejects NaN y"
    (Invalid_argument "Regression.ranks: NaN in input") (fun () ->
      ignore (Stats.Regression.spearman [ (1., 1.); (2., Float.nan); (3., 3.) ]));
  (* signed zeros are equal, not adjacent distinct values *)
  Alcotest.(check (array (float 1e-9)))
    "signed zeros tie" [| 1.5; 1.5; 3. |]
    (Stats.Regression.ranks [| 0.; -0.; 1. |]);
  (* infinities order correctly under Float.compare *)
  Alcotest.(check (array (float 1e-9)))
    "infinities ranked" [| 2.; 1.; 3. |]
    (Stats.Regression.ranks [| 0.; Float.neg_infinity; Float.infinity |])

let test_summary () =
  let s = Stats.Summary.of_list [ 1.; 2.; 3.; 4. ] in
  check_int "n" 4 s.Stats.Summary.n;
  check_float "mean" 2.5 s.Stats.Summary.mean;
  check_float "min" 1. s.Stats.Summary.min;
  check_float "max" 4. s.Stats.Summary.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.290994449 s.Stats.Summary.stddev

let test_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.Summary.percentile xs 50.);
  check_float "p0" 1. (Stats.Summary.percentile xs 0.);
  check_float "p100" 5. (Stats.Summary.percentile xs 100.);
  check_float "interpolated" 1.4 (Stats.Summary.percentile xs 10.)

let test_percentile_nan () =
  (* NaN has no rank: polymorphic compare used to sort it arbitrarily
     and return garbage quantiles; now the sample is rejected. *)
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Summary.percentile: NaN in sample")
    (fun () -> ignore (Stats.Summary.percentile [| 1.; Float.nan; 3. |] 50.));
  (* negative zero must not confuse the ordering *)
  check_float "signed zeros" 0. (Stats.Summary.percentile [| 0.; -0.; 0. |] 50.)

let test_ratio () =
  check_float "guarded zero" 0. (Stats.Summary.ratio ~num:3 ~den:0);
  check_float "plain" 0.75 (Stats.Summary.ratio ~num:3 ~den:4)

(* ---- Wilson score intervals ---- *)

let check_float4 = Alcotest.(check (float 1e-4))

let test_wilson_fixtures () =
  (* hand-computed at z = 1.96: center (p + z^2/2n)/(1 + z^2/n),
     half-width z/(1 + z^2/n) * sqrt(p(1-p)/n + z^2/4n^2) *)
  let ci = Stats.Binomial.wilson ~k:5 ~n:10 () in
  check_float "p_hat" 0.5 ci.Stats.Binomial.p_hat;
  check_float4 "lower (5/10)" 0.236589 ci.Stats.Binomial.lower;
  check_float4 "upper (5/10)" 0.763411 ci.Stats.Binomial.upper;
  Alcotest.(check bool) "contains p_hat" true (Stats.Binomial.contains ci 0.5)

let test_wilson_edges () =
  (* k = 0: the lower bound is exactly 0, the upper is z^2/(n + z^2)
     scaled — at n = 1, 3.8416/4.8416 *)
  let zero = Stats.Binomial.wilson ~k:0 ~n:1 () in
  check_float "k=0 lower" 0. zero.Stats.Binomial.lower;
  check_float4 "k=0 n=1 upper" 0.793456 zero.Stats.Binomial.upper;
  (* k = n mirrors it *)
  let one = Stats.Binomial.wilson ~k:1 ~n:1 () in
  check_float4 "k=n lower" 0.206544 one.Stats.Binomial.lower;
  check_float "k=n upper" 1. one.Stats.Binomial.upper;
  (* the interval never escapes [0, 1] even at extreme z *)
  let wide = Stats.Binomial.wilson ~z:10. ~k:1 ~n:2 () in
  Alcotest.(check bool) "clamped" true
    (wide.Stats.Binomial.lower >= 0. && wide.Stats.Binomial.upper <= 1.)

let test_wilson_errors () =
  List.iter
    (fun (k, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "k=%d n=%d rejected" k n)
        true
        (match Stats.Binomial.wilson ~k ~n () with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ (0, 0); (0, -1); (-1, 10); (11, 10) ];
  Alcotest.(check bool) "z <= 0 rejected" true
    (match Stats.Binomial.wilson ~z:0. ~k:1 ~n:2 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_wilson_of_rate_and_disjoint () =
  let a = Stats.Binomial.of_rate ~p:0.5 ~n:10 () in
  let b = Stats.Binomial.wilson ~k:5 ~n:10 () in
  check_float "of_rate rounds to k" b.Stats.Binomial.lower a.Stats.Binomial.lower;
  (* rates outside [0,1] clamp to the boundary counts *)
  let lo = Stats.Binomial.of_rate ~p:(-0.3) ~n:10 () in
  check_int "negative rate clamps to k=0" 0 lo.Stats.Binomial.k;
  let hi = Stats.Binomial.of_rate ~p:1.7 ~n:10 () in
  check_int "excess rate clamps to k=n" 10 hi.Stats.Binomial.k;
  let c = Stats.Binomial.wilson ~k:99 ~n:100 () in
  Alcotest.(check bool) "far intervals disjoint" true (Stats.Binomial.disjoint a c);
  Alcotest.(check bool) "disjoint symmetric" true (Stats.Binomial.disjoint c a);
  Alcotest.(check bool) "overlapping not disjoint" false (Stats.Binomial.disjoint a b)

(* ---- leave-one-out cross-validation ---- *)

let test_loo_exact_line () =
  (* every fold of an exact line recovers the line: held-out residuals
     vanish and the cross-validated R² is 1 *)
  let points = List.init 6 (fun i -> (float_of_int i, (2. *. float_of_int i) +. 1.)) in
  let loo = Stats.Regression.leave_one_out points in
  check_float "r2" 1. loo.Stats.Regression.r_squared;
  check_float "rmse" 0. loo.Stats.Regression.rmse;
  Array.iter (fun r -> check_float "residual" 0. r) loo.Stats.Regression.residuals

let test_loo_exact_log () =
  let points = List.map (fun x -> (x, (3. *. log x) +. 2.)) [ 1.; 2.; 5.; 10.; 20. ] in
  let loo = Stats.Regression.leave_one_out ~log:true points in
  check_float "log r2" 1. loo.Stats.Regression.r_squared;
  check_float "log rmse" 0. loo.Stats.Regression.rmse

let test_loo_overfit_negative_r2 () =
  (* a zig-zag no line explains: each fold's fit points away from the
     held-out y, so cross-validated predictions are worse than the
     mean — R² must go negative, not clamp at 0 *)
  let loo = Stats.Regression.leave_one_out [ (0., 0.); (1., 1.); (2., 0.) ] in
  Alcotest.(check bool) "negative r2 preserved" true
    (loo.Stats.Regression.r_squared < 0.)

let test_loo_errors () =
  Alcotest.(check bool) "needs three points" true
    (match Stats.Regression.leave_one_out [ (0., 0.); (1., 1.) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_wilson_sane =
  QCheck2.Test.make ~name:"wilson interval is ordered, bounded and covers p_hat"
    ~count:500
    QCheck2.Gen.(pair (int_bound 200) (int_range 1 200))
    (fun (k0, n) ->
      let k = min k0 n in
      let ci = Stats.Binomial.wilson ~k ~n () in
      ci.Stats.Binomial.lower >= 0.
      && ci.Stats.Binomial.upper <= 1.
      && ci.Stats.Binomial.lower <= ci.Stats.Binomial.p_hat +. 1e-12
      && ci.Stats.Binomial.p_hat <= ci.Stats.Binomial.upper +. 1e-12
      && (k > 0 || ci.Stats.Binomial.lower = 0.)
      && (k < n || ci.Stats.Binomial.upper = 1.))

let prop_fit_recovers_line =
  QCheck2.Test.make ~name:"linear fit recovers exact lines" ~count:200
    QCheck2.Gen.(triple (float_range (-50.) 50.) (float_range (-50.) 50.) (int_range 3 20))
    (fun (a, b, n) ->
      let points = List.init n (fun i -> (float_of_int i, (a *. float_of_int i) +. b)) in
      match Stats.Regression.linear points with
      | fit ->
          abs_float (fit.Stats.Regression.slope -. a) < 1e-6
          && abs_float (fit.Stats.Regression.intercept -. b) < 1e-6
      | exception Invalid_argument _ -> false)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck2.Gen.(pair (int_bound 1000) (list_size (int_range 0 50) (int_bound 100)))
    (fun (seed, xs) ->
      let rng = Stats.Rng.create seed in
      let arr = Array.of_list xs in
      Stats.Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

let suite =
  ( "stats",
    [ Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
      Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
      Alcotest.test_case "rng copy" `Quick test_rng_copy;
      Alcotest.test_case "rng range" `Quick test_rng_range;
      Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
      Alcotest.test_case "linear regression" `Quick test_linear_regression;
      Alcotest.test_case "log fit" `Quick test_log_fit;
      Alcotest.test_case "regression errors" `Quick test_regression_errors;
      Alcotest.test_case "degenerate r2" `Quick test_degenerate_r2;
      Alcotest.test_case "log fit filters" `Quick test_log_fit_filters_nonpositive;
      Alcotest.test_case "pearson" `Quick test_pearson;
      Alcotest.test_case "ranks and spearman" `Quick test_ranks_and_spearman;
      Alcotest.test_case "ranks reject NaN" `Quick test_ranks_nan;
      Alcotest.test_case "summary" `Quick test_summary;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "percentile nan" `Quick test_percentile_nan;
      Alcotest.test_case "ratio" `Quick test_ratio;
      Alcotest.test_case "wilson fixtures" `Quick test_wilson_fixtures;
      Alcotest.test_case "wilson edges" `Quick test_wilson_edges;
      Alcotest.test_case "wilson errors" `Quick test_wilson_errors;
      Alcotest.test_case "wilson of_rate/disjoint" `Quick test_wilson_of_rate_and_disjoint;
      Alcotest.test_case "loo exact line" `Quick test_loo_exact_line;
      Alcotest.test_case "loo exact log" `Quick test_loo_exact_log;
      Alcotest.test_case "loo overfit r2" `Quick test_loo_overfit_negative_r2;
      Alcotest.test_case "loo errors" `Quick test_loo_errors ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_wilson_sane; prop_fit_recovers_line; prop_shuffle_preserves_multiset ] )
