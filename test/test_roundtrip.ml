(* Property-based round trips through the two program
   representations: Encode (binary) and the Parser (text).

   encode/decode is a strict bijection on the supported subset, and
   [Isa.pp_instr] output is accepted by [Sparc.Parser] — except Jmpl,
   whose printed 3-operand form differs from the parser's
   "jmpl address, rd" syntax. *)

module I = Sparc.Isa
module A = Sparc.Asm
module Encode = Sparc.Encode
module Parser = Sparc.Parser

(* Format-3 ALU-shaped opcodes (everything that is not a memory op,
   branch, sethi or call) — includes Save/Restore/Jmpl. *)
let alu_ops =
  List.filter
    (fun op ->
      (not (I.is_branch op)) && (not (I.is_mem op)) && op <> I.Sethi && op <> I.Call)
    I.all_opcodes

let mem_ops = List.filter I.is_mem I.all_opcodes
let branch_ops = List.filter I.is_branch I.all_opcodes

(* Random instructions with every field kept inside its encoded range:
   registers 0..31, simm13 -4096..4095, imm22 22 bits, disp22/disp30
   sign-extended 22/30-bit word displacements. *)
let gen_instr =
  let open QCheck2.Gen in
  let reg = int_bound 31 in
  let operand =
    oneof
      [ map (fun r -> I.Reg r) reg; map (fun i -> I.Imm i) (int_range (-4096) 4095) ]
  in
  let alu =
    map3
      (fun op (rs1, rd) op2 -> I.Alu { op; rs1; op2; rd })
      (oneofl alu_ops) (pair reg reg) operand
  in
  let mem =
    map3
      (fun op (rs1, rd) op2 -> I.Mem { op; rs1; op2; rd })
      (oneofl mem_ops) (pair reg reg) operand
  in
  let sethi = map2 (fun imm22 rd -> I.Sethi_i { imm22; rd }) (int_bound 0x3F_FFFF) reg in
  let branch =
    map2
      (fun op disp22 -> I.Branch_i { op; disp22 })
      (oneofl branch_ops)
      (int_range (-0x20_0000) 0x1F_FFFF)
  in
  let call = map (fun disp30 -> I.Call_i { disp30 }) (int_range (-0x2000_0000) 0x1FFF_FFFF) in
  frequency [ (3, alu); (2, mem); (1, sethi); (2, branch); (1, call) ]

let prop_encode_decode_identity =
  QCheck2.Test.make ~name:"decode (encode i) = i" ~count:500 ~print:I.instr_to_string
    gen_instr (fun i ->
      let w = Encode.encode i in
      w land Bitops.mask32 = w && Encode.decode w = Some i)

let prop_print_parse_identity =
  QCheck2.Test.make ~name:"parse (print i) = i" ~count:300 ~print:I.instr_to_string
    gen_instr (fun i ->
      match i with
      | I.Alu { op = I.Jmpl; _ } -> true (* printed form is not parser syntax *)
      | _ ->
          let prog = Parser.parse_lines [ I.instr_to_string i ] in
          Array.length prog.A.instrs = 1 && prog.A.instrs.(0) = i)

(* Directed encode failures: out-of-range fields must be rejected, not
   silently truncated. *)
let test_encode_rejects_out_of_range () =
  let bad =
    [ I.Alu { op = I.Add; rs1 = 0; op2 = I.Imm 4096; rd = 1 };
      I.Alu { op = I.Add; rs1 = 0; op2 = I.Imm (-4097); rd = 1 };
      I.Sethi_i { imm22 = 0x40_0000; rd = 1 };
      I.Branch_i { op = I.Ba; disp22 = 0x20_0000 };
      I.Call_i { disp30 = 0x2000_0000 } ]
  in
  List.iter
    (fun i ->
      match Encode.encode i with
      | exception Invalid_argument _ -> ()
      | w -> Alcotest.failf "accepted %s as 0x%x" (I.instr_to_string i) w)
    bad

(* And a decode failure: a word outside the subset yields None. *)
let test_decode_rejects_invalid () =
  Alcotest.(check bool) "all-ones word invalid" true (Encode.decode 0xFFFF_FFFF = None)

let suite =
  ( "roundtrip",
    [ Alcotest.test_case "encode rejects out-of-range" `Quick
        test_encode_rejects_out_of_range;
      Alcotest.test_case "decode rejects invalid" `Quick test_decode_rejects_invalid ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_encode_decode_identity; prop_print_parse_identity ] )
