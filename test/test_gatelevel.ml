(* Behavioural vs gate-level elaboration equivalence.

   The gate-level elaboration must be a pure refinement: every
   behavioural node name survives (as a packer or buffer over the gate
   bits) with the same width and, cycle for cycle, the same value — so
   workload runs, write streams, exit codes and name-addressed fault
   verdicts are byte-identical between the two elaborations. *)

module A = Sparc.Asm
module I = Sparc.Isa
module C = Rtl.Circuit
module G = Leon3.Gatelevel
module Ctl = Leon3.Ctl
module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let gate_params = { Leon3.Core.default_params with Leon3.Core.gate_level = true }

let behav_sys = lazy (Leon3.System.create ())

let gate_sys = lazy (Leon3.System.create ~params:gate_params ())

(* ---- decode PLA exactness ---- *)

(* A bare rig: the PLA alone over an input word, outside the core. *)
let decode_rig =
  lazy
    (let c = C.create "rig" in
     let w = C.input c "w" 32 in
     let ctl, imm = G.decode c ~ir:w in
     C.elaborate c;
     (c, w, ctl, imm))

let check_decode_word word =
  let c, w, ctl, imm = Lazy.force decode_rig in
  C.set_input c w word;
  C.settle c;
  check_int (Printf.sprintf "ctl of %08x" word) (Ctl.decode word) (C.value c ctl);
  check_int (Printf.sprintf "imm of %08x" word) (Ctl.imm_of word) (C.value c imm)

let test_decode_pla_field_sweep () =
  (* Every format-3 row (valid and invalid op3 alike) with and without
     the immediate bit, with zero and non-zero ASI fields, and with
     operand-field patterns exercising every literal of the AND
     terms. *)
  List.iter
    (fun op ->
      for op3 = 0 to 63 do
        List.iter
          (fun low ->
            check_decode_word
              ((op lsl 30) lor (5 lsl 25) lor (op3 lsl 19) lor (3 lsl 14) lor low))
          [ 0; 7; (1 lsl 13) lor 0x1FFF; (1 lsl 13) lor 0x0AAA; 3 lsl 5 ]
      done)
    [ 2; 3 ];
  (* branches: every condition, both annul-bit values, and every op2f
     slot of format 0 (only 010 and 100 decode) *)
  for cond = 0 to 15 do
    List.iter
      (fun a ->
        check_decode_word ((a lsl 29) lor (cond lsl 25) lor (0b010 lsl 22) lor 0x155);
        check_decode_word
          ((a lsl 29) lor (cond lsl 25) lor (0b010 lsl 22) lor 0x3F_FC00))
      [ 0; 1 ]
  done;
  for op2f = 0 to 7 do
    check_decode_word ((9 lsl 25) lor (op2f lsl 22) lor 0x2A_AAAA)
  done;
  (* sethi and call payload patterns *)
  check_decode_word ((0b100 lsl 22) lor 0x3F_FFFF);
  check_decode_word ((31 lsl 25) lor (0b100 lsl 22));
  check_decode_word (1 lsl 30);
  check_decode_word ((1 lsl 30) lor 0x3FFF_FFFF);
  check_decode_word 0xFFFF_FFFF;
  check_decode_word 0

let prop_decode_pla_random_words =
  QCheck2.Test.make ~name:"decode PLA = Ctl.decode on random words" ~count:2000
    QCheck2.Gen.(map (fun x -> x land 0xFFFF_FFFF) (int_bound max_int))
    (fun word ->
      let c, w, ctl, imm = Lazy.force decode_rig in
      C.set_input c w word;
      C.settle c;
      Ctl.decode word = C.value c ctl && Ctl.imm_of word = C.value c imm)

(* ---- state-for-state workload equivalence ---- *)

let run_both prog =
  let run sys =
    Leon3.System.load sys prog;
    let stop = Leon3.System.run sys ~max_cycles:5_000_000 in
    (stop, sys)
  in
  let stop_b, sys_b = run (Lazy.force behav_sys) in
  let stop_g, sys_g = run (Lazy.force gate_sys) in
  ((stop_b, sys_b), (stop_g, sys_g))

let check_same_run name ((stop_b, sys_b), (stop_g, sys_g)) =
  check_bool (name ^ ": stop reason") true (stop_b = stop_g);
  check_int (name ^ ": cycles") (Leon3.System.cycles sys_b)
    (Leon3.System.cycles sys_g);
  check_int (name ^ ": instructions")
    (Leon3.System.instructions sys_b)
    (Leon3.System.instructions sys_g);
  check_bool (name ^ ": event stream") true
    (Leon3.System.events sys_b = Leon3.System.events sys_g);
  check_bool (name ^ ": write stream") true
    (Leon3.System.writes sys_b = Leon3.System.writes sys_g);
  let core_b = Leon3.System.core sys_b and core_g = Leon3.System.core sys_g in
  let v (core : Leon3.Core.t) s = C.value core.Leon3.Core.circuit s in
  check_int (name ^ ": pc") (v core_b core_b.pc) (v core_g core_g.pc);
  check_int (name ^ ": icc") (v core_b core_b.icc) (v core_g core_g.icc);
  check_int (name ^ ": cwp") (v core_b core_b.cwp) (v core_g core_g.cwp);
  for r = 0 to 31 do
    check_int
      (Printf.sprintf "%s: r%d" name r)
      (Leon3.System.reg sys_b r) (Leon3.System.reg sys_g r)
  done

let test_figure5_workloads_equivalent () =
  List.iter
    (fun (e : Workloads.Suite.entry) ->
      let prog = e.Workloads.Suite.build ~iterations:1 ~dataset:0 in
      check_same_run e.Workloads.Suite.name (run_both prog))
    Workloads.Suite.table1_set

(* ---- name-matched fault verdict equivalence ---- *)

let small_prog =
  lazy
    (let b = A.create ~name:"small" () in
     A.prologue b;
     A.mov b (Imm 0) I.o0;
     A.mov b (Imm 0) I.o1;
     A.label b "loop";
     A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
     A.op3 b I.Add I.o1 (Imm 1) I.o1;
     A.cmp b I.o1 (Imm 8);
     A.branch b I.Bne "loop";
     A.set32 b Sparc.Layout.result_base I.o2;
     A.st b I.St I.o0 I.o2 (Imm 0);
     A.halt b I.o0;
     A.assemble b)

let shared_site_names =
  (* behavioural nodes of every lowered network, by name — present in
     both pools, so the same fault can be armed in both elaborations *)
  [ "iu.de.ctl[0]"; "iu.de.ctl[11]"; "iu.de.imm[2]"; "iu.ra.op2_mux[0]";
    "iu.ex.adder.sum[0]"; "iu.ex.adder.sum[31]"; "iu.ex.adder.flag_c[0]";
    "iu.ex.logic.result[5]"; "iu.ex.shift.result[1]"; "iu.ex.result_mux[7]";
    "iu.ex.icc_next[2]"; "iu.ex.branch.next_pc[2]"; "iu.wb.wb_data[16]";
    "iu.fe.pc_inc[4]" ]

let test_verdicts_match_across_elaborations () =
  let prog = Lazy.force small_prog in
  let verdicts sys =
    let core = Leon3.System.core sys in
    let pool = Injection.sites ~include_cells:false core Injection.Iu in
    let golden = Campaign.golden_run sys prog ~max_cycles:200_000 in
    List.map
      (fun name ->
        let site =
          match
            List.find_opt (fun s -> s.Injection.site_name = name) pool
          with
          | Some s -> s
          | None -> Alcotest.failf "site %s missing from pool" name
        in
        List.map
          (fun model ->
            let r = Campaign.run_one sys prog golden site model in
            (name, model, r.Campaign.outcome))
          [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ])
      shared_site_names
  in
  let vb = verdicts (Lazy.force behav_sys) in
  let vg = verdicts (Lazy.force gate_sys) in
  List.iter2
    (fun rb rg ->
      List.iter2
        (fun (name, model, ob) (name', _, og) ->
          check_bool (name ^ " name match") true (name = name');
          check_bool
            (Printf.sprintf "%s/%s verdict" name (C.fault_model_name model))
            true (ob = og))
        rb rg)
    vb vg

(* ---- injection-site population density ---- *)

let lowered_names =
  [ "iu.fe.pc_mis"; "iu.fe.pc_inc"; "iu.de.ctl"; "iu.de.imm"; "iu.ra.op2_mux";
    "iu.ex.adder.b_eff"; "iu.ex.adder.cin"; "iu.ex.adder.sum";
    "iu.ex.adder.carry"; "iu.ex.adder.flag_c"; "iu.ex.adder.flag_v";
    "iu.ex.logic.result"; "iu.ex.shift.result"; "iu.ex.result_mux";
    "iu.ex.icc_next"; "iu.ex.branch.cond_ok"; "iu.ex.branch.taken";
    "iu.ex.branch.br_target"; "iu.ex.branch.next_pc"; "iu.ex.jmpl_mis";
    "iu.wb.wb_data" ]

let stem name = match String.index_opt name '[' with
  | Some i -> String.sub name 0 i
  | None -> name

let test_population_density () =
  let pool sys =
    Injection.sites ~include_cells:false (Leon3.System.core sys) Injection.Iu
  in
  let behav = pool (Lazy.force behav_sys) in
  let gate = pool (Lazy.force gate_sys) in
  let nb = List.length behav and ng = List.length gate in
  (* name preservation: the behavioural pool embeds in the gate pool *)
  let gate_names = Hashtbl.create 4096 in
  List.iter (fun s -> Hashtbl.replace gate_names s.Injection.site_name ()) gate;
  List.iter
    (fun s ->
      check_bool (s.Injection.site_name ^ " preserved") true
        (Hashtbl.mem gate_names s.Injection.site_name))
    behav;
  (* the lowered datapath population grows >= 10x: all new gate sites
     belong to networks that replace the lowered behavioural nodes *)
  let lowered_bits =
    List.length
      (List.filter
         (fun s -> List.mem (stem s.Injection.site_name) lowered_names)
         behav)
  in
  let gate_lowered = lowered_bits + (ng - nb) in
  check_bool
    (Printf.sprintf "lowered datapath >= 10x (%d -> %d)" lowered_bits gate_lowered)
    true
    (gate_lowered >= 10 * lowered_bits);
  (* and the whole-IU pool grows several-fold *)
  check_bool (Printf.sprintf "iu pool >= 3x (%d -> %d)" nb ng) true (ng >= 3 * nb)

let suite =
  ( "gatelevel",
    [ Alcotest.test_case "decode PLA field sweep" `Quick test_decode_pla_field_sweep;
      QCheck_alcotest.to_alcotest prop_decode_pla_random_words;
      Alcotest.test_case "population density" `Quick test_population_density;
      Alcotest.test_case "figure-5 workloads state-for-state" `Slow
        test_figure5_workloads_equivalent;
      Alcotest.test_case "verdicts match across elaborations" `Slow
        test_verdicts_match_across_elaborations ] )
