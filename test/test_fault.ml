(* Tests for injection-point enumeration and the campaign engine. *)

module A = Sparc.Asm
module I = Sparc.Isa
module C = Rtl.Circuit
module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let shared_sys = lazy (Leon3.System.create ())

let small_prog =
  lazy
    (let b = A.create ~name:"small" () in
     A.prologue b;
     A.mov b (Imm 0) I.o0;
     A.mov b (Imm 0) I.o1;
     A.label b "loop";
     A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
     A.op3 b I.Add I.o1 (Imm 1) I.o1;
     A.cmp b I.o1 (Imm 8);
     A.branch b I.Bne "loop";
     A.set32 b Sparc.Layout.result_base I.o2;
     A.st b I.St I.o0 I.o2 (Imm 0);
     A.halt b I.o0;
     A.assemble b)

(* ---- site enumeration ---- *)

let test_pools_nonempty () =
  let core = Leon3.System.core (Lazy.force shared_sys) in
  let iu = Injection.sites core Injection.Iu in
  let cmem = Injection.sites core Injection.Cmem in
  check_bool "iu pool large" true (List.length iu > 1000);
  check_bool "cmem pool large" true (List.length cmem > 1000);
  let iu_sig = Injection.sites ~include_cells:false core Injection.Iu in
  check_bool "cells add sites" true (List.length iu > List.length iu_sig)

let test_unit_attribution_roundtrip () =
  (* Every enumerated site must attribute back to the unit whose pool
     it came from, for every unit — the prefix table and the site
     enumeration share one source of truth. *)
  let roundtrip core =
    List.iter
      (fun u ->
        let sites = Injection.sites core (Injection.Unit_of u) in
        check_bool (Sparc.Units.name u ^ " pool non-empty") true (sites <> []);
        List.iter
          (fun s ->
            match Injection.unit_of_site_name s.Injection.site_name with
            | Some u' when u' = u -> ()
            | Some u' ->
                Alcotest.failf "%s attributed to %s, expected %s"
                  s.Injection.site_name (Sparc.Units.name u') (Sparc.Units.name u)
            | None -> Alcotest.failf "%s attributed to no unit" s.Injection.site_name)
          sites)
      Sparc.Units.all
  in
  roundtrip (Leon3.System.core (Lazy.force shared_sys));
  (* the gate-level elaboration adds iu.ex.adder.gates.* sites, which
     must still attribute to the adder *)
  let gate_core =
    Leon3.Core.build
      ~params:{ Leon3.Core.default_params with Leon3.Core.gate_level_adder = true }
      ()
  in
  roundtrip gate_core;
  let gate_sites = Injection.sites gate_core (Injection.Unit_of Sparc.Units.Adder) in
  check_bool "gate network enumerated" true
    (List.exists
       (fun s -> String.starts_with ~prefix:"iu.ex.adder.gates." s.Injection.site_name)
       gate_sites);
  (* the full gate-level elaboration adds per-unit gates.* subtrees
     plus the cross-unit iu.gates.{operand,alu} scopes; every site
     must still attribute to its unit, and the cross-unit scopes must
     be enumerated with their owning unit's pool *)
  let full_gate_core =
    Leon3.Core.build
      ~params:{ Leon3.Core.default_params with Leon3.Core.gate_level = true }
      ()
  in
  roundtrip full_gate_core;
  let has prefix =
    List.exists (fun s -> String.starts_with ~prefix s.Injection.site_name)
  in
  let adder_sites =
    Injection.sites full_gate_core (Injection.Unit_of Sparc.Units.Adder)
  in
  check_bool "alu cross-unit gates in adder pool" true
    (has "iu.gates.alu." adder_sites);
  let rf_sites =
    Injection.sites full_gate_core (Injection.Unit_of Sparc.Units.Regfile)
  in
  check_bool "operand fabric in regfile pool" true
    (has "iu.gates.operand." rf_sites);
  check_bool "alu tap attribution" true
    (Injection.unit_of_site_name "iu.gates.alu.op1b17[0]"
    = Some Sparc.Units.Adder);
  check_bool "operand mux attribution" true
    (Injection.unit_of_site_name "iu.gates.operand.op2m3[0]"
    = Some Sparc.Units.Regfile);
  check_bool "decode PLA term attribution" true
    (Injection.unit_of_site_name "iu.de.gates.t_a00[0]" = Some Sparc.Units.Decode);
  (* memory cells attribute through their array suffixes *)
  check_bool "regfile cell" true
    (Injection.unit_of_site_name "iu.regfile.regs[5][31]" = Some Sparc.Units.Regfile);
  (* names outside every registered prefix attribute to nothing *)
  check_bool "unknown prefix" true (Injection.unit_of_site_name "zz.mystery[0]" = None);
  check_bool "empty name" true (Injection.unit_of_site_name "" = None)

let test_pool_sizes_cover_everything () =
  let core = Leon3.System.core (Lazy.force shared_sys) in
  let sizes = Injection.pool_sizes core in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 sizes in
  let iu = List.length (Injection.sites core Injection.Iu) in
  let cmem = List.length (Injection.sites core Injection.Cmem) in
  check_int "per-unit sizes sum to the two blocks" (iu + cmem) total;
  (* the register file (with its cells) must dominate the IU, like a
     real windowed file dominates an integer unit's bit count *)
  check_bool "regfile biggest IU unit" true
    (List.assoc Sparc.Units.Regfile sizes > List.assoc Sparc.Units.Adder sizes)

(* ---- golden runs ---- *)

let test_golden_run () =
  let sys = Lazy.force shared_sys in
  let golden = Campaign.golden_run sys (Lazy.force small_prog) ~max_cycles:100_000 in
  check_bool "has writes" true (Array.length golden.Campaign.writes >= 2);
  check_bool "cycles positive" true (golden.Campaign.cycles > 0);
  (* golden of a hanging program is a workload bug, not a result *)
  let b = A.create ~name:"hang" () in
  A.label b "spin";
  A.branch b I.Ba "spin";
  let hang = A.assemble b in
  Alcotest.check_raises "hanging golden rejected"
    (Failure "golden run hit the cycle limit") (fun () ->
      ignore (Campaign.golden_run sys hang ~max_cycles:2_000))

(* ---- single runs ---- *)

let find_site core name =
  let sites = Injection.sites core Injection.Iu in
  List.find (fun s -> s.Injection.site_name = name) sites

let test_fault_on_pc_fails () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let golden = Campaign.golden_run sys prog ~max_cycles:100_000 in
  let site = find_site (Leon3.System.core sys) "iu.fe.pc[2]" in
  let r = Campaign.run_one sys prog golden site C.Stuck_at_1 in
  check_bool "pc fault is a failure" true (r.Campaign.outcome <> Campaign.Silent)

let test_fault_on_divider_is_silent_without_div () =
  (* The small program never divides: faults inside the divider's
     quotient datapath cannot reach the outputs. *)
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let golden = Campaign.golden_run sys prog ~max_cycles:100_000 in
  let core = Leon3.System.core sys in
  let sites = Injection.sites core (Injection.Unit_of Sparc.Units.Divider) in
  let quotient_sites =
    List.filter
      (fun s ->
        String.length s.Injection.site_name >= 19
        && String.sub s.Injection.site_name 0 19 = "iu.ex.div.quotient[")
      sites
  in
  check_bool "quotient bits exist" true (List.length quotient_sites = 32);
  List.iter
    (fun site ->
      let r = Campaign.run_one sys prog golden site C.Stuck_at_1 in
      check_bool ("silent: " ^ site.Injection.site_name) true
        (r.Campaign.outcome = Campaign.Silent))
    quotient_sites

let test_latency_measured_on_failures () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let golden = Campaign.golden_run sys prog ~max_cycles:100_000 in
  let site = find_site (Leon3.System.core sys) "iu.fe.pc[2]" in
  let r = Campaign.run_one sys prog golden site C.Stuck_at_1 in
  match (r.Campaign.outcome, r.Campaign.detect_cycle) with
  | Campaign.Failure _, Some cyc -> check_bool "latency positive" true (cyc > 0)
  | Campaign.Failure _, None -> Alcotest.fail "failure without detect cycle"
  | Campaign.Silent, _ -> Alcotest.fail "expected a failure"

let test_injection_instant_honoured () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let golden = Campaign.golden_run sys prog ~max_cycles:100_000 in
  (* injecting after the program finished is necessarily silent *)
  let site = find_site (Leon3.System.core sys) "iu.fe.pc[2]" in
  let r =
    Campaign.run_one sys prog golden ~inject_cycle:(golden.Campaign.cycles + 1000) site
      C.Stuck_at_1
  in
  check_bool "late injection silent" true (r.Campaign.outcome = Campaign.Silent)

(* ---- summaries and campaign ---- *)

let test_summarize () =
  let mk ?(sim = Campaign.Simulated) outcome detect_cycle =
    { Campaign.site_name = "s"; model = C.Stuck_at_1; outcome; detect_cycle;
      inject_cycle = 0; sim }
  in
  let results =
    [ mk Campaign.Silent None;
      mk ~sim:Campaign.Prefiltered Campaign.Silent None;
      mk ~sim:(Campaign.Converged 512) Campaign.Silent None;
      mk (Campaign.Failure (Campaign.Wrong_write 3)) (Some 100);
      mk (Campaign.Failure (Campaign.Trap 2)) (Some 50);
      mk (Campaign.Failure Campaign.Hang) (Some 9999) ]
  in
  let s = Campaign.summarize results in
  check_int "injections" 6 s.Campaign.injections;
  check_int "failures" 3 s.Campaign.failures;
  Alcotest.(check (float 1e-9)) "pf" 0.5 s.Campaign.pf;
  check_int "wrong writes" 1 s.Campaign.wrong_writes;
  check_int "traps" 1 s.Campaign.traps;
  check_int "hangs" 1 s.Campaign.hangs;
  check_int "skipped" 1 s.Campaign.skipped;
  check_int "early exits" 1 s.Campaign.early_exits;
  (* hang latency excluded: max over {100, 50} *)
  check_int "max latency" 100 s.Campaign.max_latency

let test_summarize_empty () =
  let s = Campaign.summarize [] in
  check_int "injections" 0 s.Campaign.injections;
  check_int "failures" 0 s.Campaign.failures;
  Alcotest.(check (float 1e-9)) "pf" 0. s.Campaign.pf;
  check_int "skipped" 0 s.Campaign.skipped;
  check_int "early exits" 0 s.Campaign.early_exits;
  check_int "max latency" 0 s.Campaign.max_latency;
  Alcotest.(check (float 1e-9)) "mean latency" 0. s.Campaign.mean_latency

let test_summarize_all_hangs () =
  (* Hang latencies are excluded from the latency statistics: a
     campaign of only hangs has failures but no measured latency. *)
  let mk i =
    { Campaign.site_name = Printf.sprintf "s%d" i; model = C.Stuck_at_1;
      outcome = Campaign.Failure Campaign.Hang; detect_cycle = Some 9999;
      inject_cycle = 0; sim = Campaign.Simulated }
  in
  let s = Campaign.summarize (List.init 5 mk) in
  check_int "injections" 5 s.Campaign.injections;
  check_int "failures" 5 s.Campaign.failures;
  check_int "hangs" 5 s.Campaign.hangs;
  Alcotest.(check (float 1e-9)) "pf" 1. s.Campaign.pf;
  check_int "max latency" 0 s.Campaign.max_latency;
  Alcotest.(check (float 1e-9)) "mean latency" 0. s.Campaign.mean_latency

let test_summarize_sim_status_counts () =
  let mk ~sim i =
    { Campaign.site_name = Printf.sprintf "s%d" i; model = C.Stuck_at_1;
      outcome = Campaign.Silent; detect_cycle = None; inject_cycle = 0; sim }
  in
  let results =
    List.init 3 (mk ~sim:Campaign.Prefiltered)
    @ List.init 2 (fun i -> mk ~sim:(Campaign.Converged (i * 100)) i)
    @ List.init 4 (mk ~sim:Campaign.Simulated)
  in
  let s = Campaign.summarize results in
  check_int "injections" 9 s.Campaign.injections;
  check_int "skipped counts prefiltered" 3 s.Campaign.skipped;
  check_int "early exits counts converged" 2 s.Campaign.early_exits;
  check_int "no failures" 0 s.Campaign.failures

let test_campaign_end_to_end () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_1; C.Stuck_at_0 ];
      sample_size = Some 40 }
  in
  let progress = ref 0 in
  let summaries, results =
    Campaign.run ~config ~on_progress:(fun ~done_:_ ~total:_ -> incr progress) sys prog
      Injection.Iu
  in
  check_int "two models" 2 (List.length summaries);
  check_int "results = 2 * sample" 80 (List.length results);
  check_int "progress calls" 80 !progress;
  List.iter
    (fun (_, s) ->
      check_int "per-model injections" 40 s.Campaign.injections;
      check_bool "pf in range" true (s.Campaign.pf >= 0. && s.Campaign.pf <= 1.))
    summaries;
  (* determinism: same config, same results *)
  let summaries', _ = Campaign.run ~config sys prog Injection.Iu in
  List.iter2
    (fun (m, s) (m', s') ->
      check_bool "model order" true (m = m');
      check_int "deterministic failures" s.Campaign.failures s'.Campaign.failures)
    summaries summaries'

let test_parallel_matches_sequential () =
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_1; C.Open_line ];
      sample_size = Some 30 }
  in
  let seq_summaries, seq_results =
    Campaign.run ~config (Lazy.force shared_sys) prog Injection.Iu
  in
  let par_summaries, par_results =
    Campaign.run_parallel ~config ~domains:2 (fun () -> Leon3.System.create ()) prog
      Injection.Iu
  in
  List.iter2
    (fun (m, s) (m', s') ->
      check_bool "model" true (m = m');
      check_int "failures equal" s.Campaign.failures s'.Campaign.failures;
      check_int "injections equal" s.Campaign.injections s'.Campaign.injections)
    seq_summaries par_summaries;
  (* per-run verdicts are identical, order included *)
  check_int "result count" (List.length seq_results) (List.length par_results);
  let key (r : Campaign.run_result) = (r.Campaign.site_name, r.Campaign.model, r.Campaign.outcome) in
  check_bool "verdicts identical" true
    (List.sort compare (List.map key seq_results)
    = List.sort compare (List.map key par_results))

let test_transient_campaign () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let s = Campaign.run_transient ~sample:60 ~seed:3 sys prog Injection.Iu in
  check_int "sampled" 60 s.Campaign.injections;
  check_bool "pf bounded" true (s.Campaign.pf >= 0. && s.Campaign.pf <= 1.);
  (* transients must propagate no more often than permanent SA1 *)
  let golden = Campaign.golden_run sys prog ~max_cycles:100_000 in
  let config =
    { Campaign.default_config with
      Campaign.models = [ Rtl.Circuit.Stuck_at_1 ];
      sample_size = Some 60;
      seed = 3 }
  in
  ignore golden;
  let summaries, _ = Campaign.run ~config sys prog Injection.Iu in
  let permanent = List.assoc Rtl.Circuit.Stuck_at_1 summaries in
  check_bool "transient <= permanent" true (s.Campaign.pf <= permanent.Campaign.pf)

let test_campaign_same_sites_across_models () =
  (* The same sampled sites are used for every model (paired design). *)
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_1; C.Open_line ];
      sample_size = Some 25 }
  in
  let _, results = Campaign.run ~config sys prog Injection.Iu in
  let names_of model =
    List.filter_map
      (fun (r : Campaign.run_result) ->
        if r.Campaign.model = model then Some r.Campaign.site_name else None)
      results
  in
  Alcotest.(check (list string))
    "paired sites"
    (names_of C.Stuck_at_1)
    (names_of C.Open_line)

(* ---- trimmed execution ---- *)

(* Verdict-relevant projection of a result: everything except the
   [sim] status, which is the only field trimming may legitimately
   change. *)
let verdict (r : Campaign.run_result) =
  (r.Campaign.site_name, r.Campaign.model, r.Campaign.outcome, r.Campaign.detect_cycle,
   r.Campaign.inject_cycle)

let core_summary (s : Campaign.summary) =
  (s.Campaign.injections, s.Campaign.failures, s.Campaign.pf, s.Campaign.wrong_writes,
   s.Campaign.missing_writes, s.Campaign.traps, s.Campaign.hangs,
   s.Campaign.max_latency, s.Campaign.mean_latency)

let test_trim_matches_untrimmed () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let base =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ];
      sample_size = Some 40 }
  in
  let sum_t, res_t = Campaign.run ~config:{ base with Campaign.trim = true } sys prog Injection.Iu in
  let sum_u, res_u = Campaign.run ~config:{ base with Campaign.trim = false } sys prog Injection.Iu in
  (* byte-identical verdicts, result for result *)
  check_int "result count" (List.length res_u) (List.length res_t);
  List.iter2
    (fun rt ru ->
      check_bool ("verdict: " ^ rt.Campaign.site_name) true (verdict rt = verdict ru))
    res_t res_u;
  List.iter2
    (fun (m, st) (m', su) ->
      check_bool "model order" true (m = m');
      check_bool "summary core fields identical" true (core_summary st = core_summary su);
      check_int "untrimmed skips nothing" 0 su.Campaign.skipped;
      check_int "untrimmed never exits early" 0 su.Campaign.early_exits)
    sum_t sum_u;
  (* trimming must actually pay: >= 20% of this workload's injections
     are provably never-activating and classified without simulation *)
  let total = List.fold_left (fun a (_, s) -> a + s.Campaign.injections) 0 sum_t in
  let skipped = List.fold_left (fun a (_, s) -> a + s.Campaign.skipped) 0 sum_t in
  check_bool
    (Printf.sprintf "prefilter skips >= 20%% (%d/%d)" skipped total)
    true
    (skipped * 5 >= total)

let test_parallel_domain_count_irrelevant () =
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_1; C.Open_line ];
      sample_size = Some 30 }
  in
  let sum1, res1 =
    Campaign.run_parallel ~config ~domains:1 (fun () -> Leon3.System.create ()) prog
      Injection.Iu
  in
  let sum4, res4 =
    Campaign.run_parallel ~config ~domains:4 (fun () -> Leon3.System.create ()) prog
      Injection.Iu
  in
  (* result-for-result, order included: sharding must not reorder *)
  check_int "result count" (List.length res1) (List.length res4);
  List.iter2
    (fun r1 r4 ->
      check_bool ("identical result: " ^ r1.Campaign.site_name) true
        (verdict r1 = verdict r4 && r1.Campaign.sim = r4.Campaign.sim))
    res1 res4;
  List.iter2
    (fun (m, s1) (m', s4) ->
      check_bool "model order" true (m = m');
      check_bool "summaries identical" true
        (core_summary s1 = core_summary s4
        && s1.Campaign.skipped = s4.Campaign.skipped
        && s1.Campaign.early_exits = s4.Campaign.early_exits))
    sum1 sum4

let test_parallel_progress_reporting () =
  (* run_parallel must report progress like run does: one callback per
     injection, reaching done_ = total exactly once at the end.
     Callbacks arrive concurrently, so record them atomically. *)
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_1 ];
      sample_size = Some 30 }
  in
  let seq_calls = ref 0 and seq_final = ref (-1) in
  ignore
    (Campaign.run ~config
       ~on_progress:(fun ~done_ ~total ->
         incr seq_calls;
         if done_ = total then seq_final := done_)
       (Lazy.force shared_sys) prog Injection.Iu);
  let par_calls = Atomic.make 0 and par_final = Atomic.make (-1) in
  ignore
    (Campaign.run_parallel ~config ~domains:3
       ~on_progress:(fun ~done_ ~total ->
         Atomic.incr par_calls;
         if done_ = total then Atomic.set par_final done_)
       (fun () -> Leon3.System.create ())
       prog Injection.Iu);
  check_int "sequential calls = injections" 30 !seq_calls;
  check_int "parallel calls = injections" 30 (Atomic.get par_calls);
  check_int "both reach the same final total" !seq_final (Atomic.get par_final)

let obs_counter_names =
  [ "injections"; "prefiltered"; "early_exits"; "simulated"; "rtl.cycles";
    "cycles.saved" ]

let snapshot obs = List.map (fun n -> (n, Obs.counter obs n)) obs_counter_names

let test_obs_counters_domain_invariant () =
  (* Telemetry counters are facts about the campaign, not about its
     schedule: sequential, domains=1 and domains=4 must agree on every
     counter. *)
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_1; C.Open_line ];
      sample_size = Some 30 }
  in
  let obs_seq = Obs.create () in
  ignore (Campaign.run ~config ~obs:obs_seq (Lazy.force shared_sys) prog Injection.Iu);
  let run_par domains =
    let obs = Obs.create () in
    ignore
      (Campaign.run_parallel ~config ~obs ~domains
         (fun () -> Leon3.System.create ())
         prog Injection.Iu);
    obs
  in
  let obs1 = run_par 1 and obs4 = run_par 4 in
  check_bool "injections recorded" true (Obs.counter obs_seq "injections" = 60);
  Alcotest.(check (list (pair string int)))
    "sequential = domains:1" (snapshot obs_seq) (snapshot obs1);
  Alcotest.(check (list (pair string int)))
    "domains:1 = domains:4" (snapshot obs1) (snapshot obs4);
  (* phase spans exist on every path *)
  check_bool "golden span" true (Obs.span_total obs4 "golden" >= 0.);
  check_int "one golden per parallel run" 1 (Obs.span_count obs4 "golden");
  check_int "one sampling pass" 1 (Obs.span_count obs4 "site_sampling")

let test_transient_trim_equivalence () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let s_t = Campaign.run_transient ~sample:60 ~seed:11 ~trim:true ~checkpoint_every:64 sys prog Injection.Iu in
  let s_u = Campaign.run_transient ~sample:60 ~seed:11 ~trim:false sys prog Injection.Iu in
  check_bool "verdict summary identical" true (core_summary s_t = core_summary s_u);
  check_int "bit flips never prefiltered" 0 s_t.Campaign.skipped;
  check_bool "some runs early-exit on convergence" true (s_t.Campaign.early_exits > 0);
  check_int "untrimmed never exits early" 0 s_u.Campaign.early_exits

(* ---- static netlist analysis: pruning + collapsing ---- *)

let full_summary (s : Campaign.summary) =
  (core_summary s, s.Campaign.skipped, s.Campaign.early_exits)

let test_static_matches_full_on_figure5_workloads () =
  (* The acceptance property of the static passes: on every figure-5
     workload, campaign results with cone pruning + collapsing on are
     byte-identical (verdict for verdict, summary for summary — the
     skipped count included) to full simulation. *)
  let sys = Lazy.force shared_sys in
  let base =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ];
      sample_size = Some 10 }
  in
  List.iter
    (fun e ->
      let prog = e.Workloads.Suite.build ~iterations:1 ~dataset:0 in
      let wl = e.Workloads.Suite.name in
      let sum_s, res_s =
        Campaign.run ~config:{ base with Campaign.static = true } sys prog Injection.Iu
      in
      let sum_f, res_f =
        Campaign.run ~config:{ base with Campaign.static = false } sys prog Injection.Iu
      in
      check_int (wl ^ ": result count") (List.length res_f) (List.length res_s);
      List.iter2
        (fun rs rf ->
          check_bool (wl ^ ": verdict " ^ rs.Campaign.site_name) true
            (verdict rs = verdict rf))
        res_s res_f;
      List.iter2
        (fun (m, ss) (m', sf) ->
          check_bool (wl ^ ": model order") true (m = m');
          check_bool (wl ^ ": summaries identical") true
            (full_summary ss = full_summary sf);
          (* full simulation never classifies statically *)
          check_int (wl ^ ": full has no pruned") 0 sf.Campaign.pruned;
          check_int (wl ^ ": full has no collapsed") 0 sf.Campaign.collapsed)
        sum_s sum_f)
    Workloads.Suite.table1_set

let test_gate_level_campaign_collapses () =
  (* On the gate-level adder network the collapser must actually take
     over work: some sampled faults simulate only a class
     representative, and the verdicts still match full simulation. *)
  let params = { Leon3.Core.default_params with Leon3.Core.gate_level_adder = true } in
  let sys = Leon3.System.create ~params () in
  let prog = Lazy.force small_prog in
  let base =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_0; C.Stuck_at_1 ];
      sample_size = Some 60 }
  in
  let sum_s, res_s =
    Campaign.run ~config:{ base with Campaign.static = true } sys prog
      (Injection.Unit_of Sparc.Units.Adder)
  in
  let sum_f, res_f =
    Campaign.run ~config:{ base with Campaign.static = false } sys prog
      (Injection.Unit_of Sparc.Units.Adder)
  in
  List.iter2
    (fun rs rf ->
      check_bool ("verdict " ^ rs.Campaign.site_name) true (verdict rs = verdict rf))
    res_s res_f;
  List.iter2
    (fun (_, ss) (_, sf) ->
      check_bool "summaries identical" true (full_summary ss = full_summary sf))
    sum_s sum_f;
  let collapsed = List.fold_left (fun a (_, s) -> a + s.Campaign.collapsed) 0 sum_s in
  check_bool
    (Printf.sprintf "collapsing fired (%d)" collapsed)
    true (collapsed > 0);
  (* a follower result names its class representative *)
  check_bool "followers reference their leader" true
    (List.exists
       (fun r -> match r.Campaign.sim with Campaign.Collapsed _ -> true | _ -> false)
       res_s)

let test_cone_pruned_faults_are_silent () =
  (* Sites the cone analysis prunes are reported as their own class
     and are always Silent with no latency. *)
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let config =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ];
      sample_size = Some 300 }
  in
  let _, results = Campaign.run ~config sys prog Injection.Iu in
  let pruned =
    List.filter (fun r -> r.Campaign.sim = Campaign.Pruned) results
  in
  List.iter
    (fun r ->
      check_bool ("pruned is silent: " ^ r.Campaign.site_name) true
        (r.Campaign.outcome = Campaign.Silent && r.Campaign.detect_cycle = None))
    pruned

let suite =
  ( "fault_injection",
    [ Alcotest.test_case "pools non-empty" `Quick test_pools_nonempty;
      Alcotest.test_case "unit attribution" `Quick test_unit_attribution_roundtrip;
      Alcotest.test_case "pool sizes" `Quick test_pool_sizes_cover_everything;
      Alcotest.test_case "golden run" `Quick test_golden_run;
      Alcotest.test_case "pc fault fails" `Quick test_fault_on_pc_fails;
      Alcotest.test_case "unused divider silent" `Slow test_fault_on_divider_is_silent_without_div;
      Alcotest.test_case "latency measured" `Quick test_latency_measured_on_failures;
      Alcotest.test_case "injection instant" `Quick test_injection_instant_honoured;
      Alcotest.test_case "summarize" `Quick test_summarize;
      Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
      Alcotest.test_case "summarize all hangs" `Quick test_summarize_all_hangs;
      Alcotest.test_case "summarize sim statuses" `Quick test_summarize_sim_status_counts;
      Alcotest.test_case "campaign end-to-end" `Slow test_campaign_end_to_end;
      Alcotest.test_case "parallel = sequential" `Slow test_parallel_matches_sequential;
      Alcotest.test_case "transient campaign" `Slow test_transient_campaign;
      Alcotest.test_case "paired sites" `Quick test_campaign_same_sites_across_models;
      Alcotest.test_case "trim = untrimmed" `Slow test_trim_matches_untrimmed;
      Alcotest.test_case "domains 1 = domains 4" `Slow test_parallel_domain_count_irrelevant;
      Alcotest.test_case "parallel progress reporting" `Slow test_parallel_progress_reporting;
      Alcotest.test_case "obs counters domain-invariant" `Slow test_obs_counters_domain_invariant;
      Alcotest.test_case "transient trim equivalence" `Slow test_transient_trim_equivalence;
      Alcotest.test_case "static = full on figure-5 workloads" `Slow
        test_static_matches_full_on_figure5_workloads;
      Alcotest.test_case "gate-level collapsing" `Slow test_gate_level_campaign_collapses;
      Alcotest.test_case "cone-pruned faults silent" `Slow
        test_cone_pruned_faults_are_silent ] )
