(* Tests for the persistent campaign journal: round-trip, crash
   resume, fingerprint binding and shard merging. *)

module A = Sparc.Asm
module I = Sparc.Isa
module C = Rtl.Circuit
module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection
module Journal = Fault_injection.Journal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let shared_sys = lazy (Leon3.System.create ())

let small_prog =
  lazy
    (let b = A.create ~name:"small" () in
     A.prologue b;
     A.mov b (Imm 0) I.o0;
     A.mov b (Imm 0) I.o1;
     A.label b "loop";
     A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
     A.op3 b I.Add I.o1 (Imm 1) I.o1;
     A.cmp b I.o1 (Imm 8);
     A.branch b I.Bne "loop";
     A.set32 b Sparc.Layout.result_base I.o2;
     A.st b I.St I.o0 I.o2 (Imm 0);
     A.halt b I.o0;
     A.assemble b)

let temp_journal () =
  let path = Filename.temp_file "ricv_journal" ".jsonl" in
  Sys.remove path;
  path

let with_journal f =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let config ?(shard = (1, 1)) ?(models = [ C.Stuck_at_1; C.Open_line ]) () =
  { Campaign.default_config with Campaign.models; sample_size = Some 30; shard }

(* Verdicts must survive the journal byte-identically: every field,
   the sim status included. *)
let full_verdict (r : Campaign.run_result) =
  (r.Campaign.site_name, r.Campaign.model, r.Campaign.outcome, r.Campaign.detect_cycle,
   r.Campaign.inject_cycle, r.Campaign.sim)

let sample_fingerprint ?(shard = (1, 1)) () =
  { Journal.workload = "unit-test";
    prog_hash = 0x1234;
    netlist_hash = 0x5678;
    target = "iu";
    models = [ "stuck-at-1"; "open-line" ];
    sample_size = Some 30;
    include_cells = true;
    inject_cycle = 0;
    hang_factor = 4;
    compare_reads = false;
    seed = 7;
    total_sites = 30;
    shard }

(* ---- record round-trip ---- *)

let test_roundtrip () =
  with_journal @@ fun path ->
  let fp = sample_fingerprint () in
  let mk site_name model outcome detect_cycle sim =
    { Journal.site_name; model; outcome; detect_cycle; inject_cycle = 0; sim }
  in
  (* one verdict per outcome/sim constructor *)
  let results =
    [ (0, mk "a[0]" C.Stuck_at_1 Journal.Silent None Journal.Simulated);
      (1, mk "b[1]" C.Open_line (Journal.Failure (Journal.Wrong_write 3)) (Some 41)
           Journal.Prefiltered);
      (2, mk "c[2]" C.Stuck_at_0 (Journal.Failure (Journal.Missing_writes 2)) None
           (Journal.Converged 512));
      (3, mk "d[3]" C.Bit_flip (Journal.Failure (Journal.Trap 9)) (Some 5) Journal.Pruned);
      (4, mk "e[4]" C.Stuck_at_1 (Journal.Failure Journal.Hang) (Some 999)
           (Journal.Collapsed "leader[7]")) ]
  in
  let w = Journal.create ~fsync_every:2 path fp in
  List.iter (fun (index, r) -> Journal.append w ~index r) results;
  Journal.close w;
  Journal.close w;
  (* idempotent *)
  match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok (fp', entries) ->
      check_bool "fingerprint round-trips" true (Journal.full_mismatch fp fp' = None);
      check_int "entry count" (List.length results) (List.length entries);
      List.iter2
        (fun (index, r) e ->
          check_int "index" index e.Journal.index;
          check_bool ("verdict " ^ r.Journal.site_name) true
            (full_verdict e.Journal.result = full_verdict r))
        results entries

let test_torn_tail_dropped () =
  with_journal @@ fun path ->
  let fp = sample_fingerprint () in
  let w = Journal.create path fp in
  Journal.append w ~index:0
    { Journal.site_name = "a[0]"; model = C.Stuck_at_1; outcome = Journal.Silent;
      detect_cycle = None; inject_cycle = 0; sim = Journal.Simulated };
  Journal.close w;
  (* crash mid-append: an unterminated, truncated record at the tail *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc {|{"type":"verdict","i":1,"site":"b[|};
  close_out oc;
  (match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok (_, entries) -> check_int "torn tail dropped" 1 (List.length entries));
  (* the same garbage in the middle of the file is corruption, not a crash *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "\n{\"type\":\"verdict\",\"i\":2}\n";
  close_out oc;
  check_bool "garbage mid-file rejected" true
    (match Journal.load path with Ok _ -> false | Error _ -> true)

let test_fingerprint_mismatch () =
  with_journal @@ fun path ->
  let fp = sample_fingerprint () in
  let w = Journal.create path fp in
  Journal.close w;
  let stale = { fp with Journal.seed = 8 } in
  (match Journal.open_resume path stale with
  | Ok _ -> Alcotest.fail "stale journal accepted"
  | Error msg ->
      check_bool ("mismatch names the field: " ^ msg) true
        (String.length msg > 0
        &&
        let lower = String.lowercase_ascii msg in
        let has needle =
          let nl = String.length needle and ll = String.length lower in
          let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
          go 0
        in
        has "seed"));
  (* shard spec is part of the resume identity *)
  let other_shard = { fp with Journal.shard = (2, 4) } in
  check_bool "shard mismatch rejected" true
    (match Journal.open_resume path other_shard with Ok _ -> false | Error _ -> true);
  (* but not of the merge identity *)
  check_bool "base identity ignores shard" true
    (Journal.base_mismatch fp other_shard = None)

let test_stale_tmp_debris () =
  (* a kill between [create tmp] and [rename tmp path] leaves a .tmp
     next to the journal; open_resume must clear it, not trip over it *)
  with_journal @@ fun path ->
  let tmp = path ^ ".tmp" in
  let fp = sample_fingerprint () in
  let verdict site =
    { Journal.site_name = site; model = C.Stuck_at_1; outcome = Journal.Silent;
      detect_cycle = None; inject_cycle = 0; sim = Journal.Simulated }
  in
  let w = Journal.create path fp in
  Journal.append w ~index:0 (verdict "a[0]");
  Journal.close w;
  Out_channel.with_open_text tmp (fun oc -> output_string oc "{\"type\":\"torn");
  (match Journal.open_resume path fp with
  | Error msg -> Alcotest.fail msg
  | Ok (w, entries) ->
      check_int "survivors replayed" 1 (List.length entries);
      check_bool "debris removed" false (Sys.file_exists tmp);
      Journal.append w ~index:1 (verdict "b[1]");
      Journal.close w);
  (match Journal.load path with
  | Error msg -> Alcotest.fail msg
  | Ok (_, entries) -> check_int "append after resume persists" 2 (List.length entries));
  (* debris with no journal at all: a fresh one is created cleanly *)
  Sys.remove path;
  Out_channel.with_open_text tmp (fun oc -> output_string oc "{\"type\":\"torn");
  (match Journal.open_resume path fp with
  | Error msg -> Alcotest.fail msg
  | Ok (w, entries) ->
      check_int "fresh journal is empty" 0 (List.length entries);
      check_bool "debris removed before create" false (Sys.file_exists tmp);
      Journal.close w);
  if Sys.file_exists tmp then Sys.remove tmp

(* ---- campaign integration ---- *)

let direct_run ?shard ?journal ?(resume = false) ?obs () =
  let sys = Lazy.force shared_sys in
  Campaign.run ~config:(config ?shard ()) ?obs ?journal ~resume sys
    (Lazy.force small_prog) Injection.Iu

let test_campaign_journal_resume () =
  let summaries0, results0 = direct_run () in
  with_journal @@ fun path ->
  (* full journaled run, then truncate to simulate a kill: header,
     half the verdicts, and a torn tail *)
  let _ = direct_run ~journal:path () in
  let lines = In_channel.with_open_text path In_channel.input_lines in
  check_int "journal holds every verdict" (1 + List.length results0) (List.length lines);
  let keep = 1 + (List.length results0 / 2) in
  let oc = open_out path in
  List.iteri (fun i l -> if i < keep then (output_string oc l; output_char oc '\n')) lines;
  output_string oc {|{"type":"verdict","i":99,"site":"torn|};
  close_out oc;
  let obs = Obs.create () in
  let summaries1, results1 = direct_run ~journal:path ~resume:true ~obs () in
  check_int "replayed the surviving verdicts" (keep - 1)
    (Obs.counter obs "journal.replayed");
  check_int "result count" (List.length results0) (List.length results1);
  List.iter2
    (fun r0 r1 ->
      check_bool ("verdict " ^ r0.Campaign.site_name) true
        (full_verdict r0 = full_verdict r1))
    results0 results1;
  List.iter2
    (fun (m0, s0) (m1, s1) ->
      check_bool "model order" true (m0 = m1);
      check_bool "summaries identical" true (s0 = s1))
    summaries0 summaries1;
  (* the resumed journal is complete: resuming again replays everything
     and never builds the golden run *)
  let obs2 = Obs.create () in
  let _, results2 = direct_run ~journal:path ~resume:true ~obs:obs2 () in
  check_int "everything replayed" (List.length results0)
    (Obs.counter obs2 "journal.replayed");
  check_int "no golden run on a complete journal" 0 (Obs.span_count obs2 "golden");
  List.iter2
    (fun r0 r2 -> check_bool "stable" true (full_verdict r0 = full_verdict r2))
    results0 results2

let test_campaign_rejects_stale_journal () =
  with_journal @@ fun path ->
  let _ = direct_run ~journal:path () in
  (* same journal, different workload: must refuse to resume *)
  let b = A.create ~name:"other" () in
  A.prologue b;
  A.mov b (Imm 3) I.o0;
  A.set32 b Sparc.Layout.result_base I.o2;
  A.st b I.St I.o0 I.o2 (Imm 0);
  A.halt b I.o0;
  let other = A.assemble b in
  let sys = Lazy.force shared_sys in
  check_bool "stale journal raises Rejected" true
    (match Campaign.run ~config:(config ()) ~journal:path ~resume:true sys other Injection.Iu with
    | _ -> false
    | exception Journal.Rejected _ -> true);
  (* without --resume an existing journal is simply overwritten *)
  let summaries, _ = Campaign.run ~config:(config ()) ~journal:path sys other Injection.Iu in
  check_bool "fresh run overwrites" true (summaries <> [])

let test_shard_merge_equals_direct () =
  let _, results0 = direct_run () in
  let summaries0, _ = direct_run () in
  let n = 4 in
  let journals =
    List.init n (fun k ->
        let path = temp_journal () in
        let _ = direct_run ~shard:(k + 1, n) ~journal:path () in
        path)
  in
  Fun.protect ~finally:(fun () -> List.iter Sys.remove journals) @@ fun () ->
  let loaded =
    List.map
      (fun p -> match Journal.load p with Ok j -> j | Error m -> Alcotest.fail m)
      journals
  in
  (* shards are disjoint and covering *)
  let sizes = List.map (fun (_, es) -> List.length es) loaded in
  check_int "shard verdicts cover the campaign" (List.length results0)
    (List.fold_left ( + ) 0 sizes);
  match Journal.merge loaded with
  | Error msg -> Alcotest.fail msg
  | Ok (fp, merged) ->
      check_bool "merged fingerprint is unsharded" true (fp.Journal.shard = (1, 1));
      check_int "merged count" (List.length results0) (List.length merged);
      (* byte-identical to the direct run, order included *)
      List.iter2
        (fun r0 rm ->
          check_bool ("merged verdict " ^ r0.Campaign.site_name) true
            (full_verdict r0 = full_verdict rm))
        results0 merged;
      let models = List.filter_map Journal.model_of_name fp.Journal.models in
      check_int "models survive the header" 2 (List.length models);
      List.iter2
        (fun (m0, s0) m ->
          check_bool "model order" true (m0 = m);
          let s =
            Campaign.summarize (List.filter (fun r -> r.Journal.model = m) merged)
          in
          check_bool "merged summary equals direct" true (s = s0))
        summaries0 models;
      (* merging a duplicated shard or an incomplete set is rejected *)
      let shard1 = List.nth loaded 0 in
      check_bool "duplicate shard rejected" true
        (match Journal.merge [ shard1; shard1 ] with Ok _ -> false | Error _ -> true);
      check_bool "incomplete set rejected" true
        (match Journal.merge [ shard1 ] with Ok _ -> false | Error _ -> true)

let test_sharded_parallel_engine () =
  (* the parallel engine, sharded and journaled, produces the same
     shard journal as the sequential engine *)
  with_journal @@ fun seq_path ->
  with_journal @@ fun par_path ->
  let _, seq = direct_run ~shard:(2, 3) ~journal:seq_path () in
  let _, par =
    Campaign.run_parallel ~config:(config ~shard:(2, 3) ()) ~domains:3 ~journal:par_path
      (fun () -> Leon3.System.create ())
      (Lazy.force small_prog) Injection.Iu
  in
  check_int "result count" (List.length seq) (List.length par);
  List.iter2
    (fun a b -> check_bool "verdicts equal" true (full_verdict a = full_verdict b))
    seq par;
  match (Journal.load seq_path, Journal.load par_path) with
  | Ok (fa, ea), Ok (fb, eb) ->
      check_bool "fingerprints equal" true (Journal.full_mismatch fa fb = None);
      check_int "journal sizes equal" (List.length ea) (List.length eb);
      let key e = (e.Journal.index, full_verdict e.Journal.result) in
      check_bool "journal contents equal" true
        (List.sort compare (List.map key ea) = List.sort compare (List.map key eb))
  | Error m, _ | _, Error m -> Alcotest.fail m

let test_invalid_shard_rejected () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  List.iter
    (fun shard ->
      check_bool
        (Printf.sprintf "shard %d/%d rejected" (fst shard) (snd shard))
        true
        (match Campaign.run ~config:(config ~shard ()) sys prog Injection.Iu with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ (0, 4); (5, 4); (1, 0); (-1, 2) ]

let test_parallel_exception_propagates () =
  (* a worker's exception must surface as itself, not as a
     missing-result failure *)
  let prog = Lazy.force small_prog in
  let hits = Atomic.make 0 in
  check_bool "original exception re-raised" true
    (match
       Campaign.run_parallel ~config:(config ())
         ~domains:2
         ~on_progress:(fun ~done_:_ ~total:_ ->
           if Atomic.fetch_and_add hits 1 = 3 then raise Exit)
         (fun () -> Leon3.System.create ())
         prog Injection.Iu
     with
    | _ -> false
    | exception Exit -> true
    | exception _ -> false)

let suite =
  ( "journal",
    [ Alcotest.test_case "record round-trip" `Quick test_roundtrip;
      Alcotest.test_case "torn tail dropped" `Quick test_torn_tail_dropped;
      Alcotest.test_case "fingerprint mismatch" `Quick test_fingerprint_mismatch;
      Alcotest.test_case "stale tmp debris" `Quick test_stale_tmp_debris;
      Alcotest.test_case "kill and resume" `Slow test_campaign_journal_resume;
      Alcotest.test_case "stale journal rejected" `Slow test_campaign_rejects_stale_journal;
      Alcotest.test_case "shard merge = direct" `Slow test_shard_merge_equals_direct;
      Alcotest.test_case "sharded parallel engine" `Slow test_sharded_parallel_engine;
      Alcotest.test_case "invalid shard rejected" `Quick test_invalid_shard_rejected;
      Alcotest.test_case "worker exception propagates" `Slow
        test_parallel_exception_propagates ] )
