(* Property-based ISS <-> RTL differential testing: random
   straight-line SPARC ALU/memory programs run through both engines
   must agree on the full architectural state — final register file,
   data memory, off-core write stream, and exit code.  This is the
   property-test form of the paper's correlation methodology: any
   divergence is a simulator bug, not a program property. *)

module A = Sparc.Asm
module I = Sparc.Isa
module E = Iss.Emulator

let shared_sys = lazy (Leon3.System.create ())

(* Random straight-line programs: seed the %o registers, apply a
   random mix of ALU ops (register and immediate forms), loads and
   stores of every width into a private scratch area, and trap-free
   divisions; then publish every %o register so nothing is dead. *)
let gen_case =
  let open QCheck2.Gen in
  let value = map (fun x -> x land Bitops.mask32) (int_bound max_int) in
  let reg = int_range 8 15 in
  (* %o0..%o7 *)
  let alu_op =
    oneofl
      [ I.Add; I.Addcc; I.Addx; I.Addxcc; I.Sub; I.Subcc; I.Subx; I.Subxcc;
        I.And; I.Andcc; I.Andn; I.Andncc; I.Or; I.Orcc; I.Orn; I.Orncc;
        I.Xor; I.Xorcc; I.Xnor; I.Xnorcc; I.Sll; I.Srl; I.Sra;
        I.Umul; I.Umulcc; I.Smul; I.Smulcc ]
  in
  let operand =
    oneof [ map (fun r -> I.Reg r) reg; map (fun i -> I.Imm (i - 2048)) (int_bound 4095) ]
  in
  let alu = map3 (fun op (rs1, rd) op2 -> `Alu (op, rs1, op2, rd)) alu_op (pair reg reg) operand in
  let store =
    map3 (fun (slot, rs) width () -> `Store (slot * 4, rs, width))
      (pair (int_bound 31) reg) (int_bound 2) unit
  in
  let load =
    map3 (fun (slot, rd) kind () -> `Load (slot * 4, rd, kind))
      (pair (int_bound 31) reg) (int_bound 4) unit
  in
  let div = map2 (fun (rs1, rd) signed -> `Div (rs1, rd, signed)) (pair reg reg) bool in
  pair
    (list_size (int_range 5 50) (frequency [ (4, alu); (2, store); (2, load); (1, div) ]))
    (list_repeat 8 value)

let build (ops, seeds) =
  let b = A.create ~name:"diff" () in
  A.prologue b;
  A.set32 b 0x0002_8000 I.l0;
  (* scratch base *)
  List.iteri (fun i v -> A.set32 b v (8 + i)) seeds;
  List.iter
    (fun op ->
      match op with
      | `Alu (op, rs1, op2, rd) -> A.op3 b op rs1 op2 rd
      | `Store (off, rs, width) ->
          let sop, off =
            match width with
            | 0 -> (I.St, off)
            | 1 -> (I.Stb, off)
            | _ -> (I.Sth, off land lnot 1)
          in
          A.st b sop rs I.l0 (Imm off)
      | `Load (off, rd, kind) ->
          let lop, off =
            match kind with
            | 0 -> (I.Ld, off)
            | 1 -> (I.Ldub, off)
            | 2 -> (I.Ldsb, off)
            | 3 -> (I.Lduh, off land lnot 1)
            | _ -> (I.Ldsh, off land lnot 1)
          in
          A.ld b lop I.l0 (Imm off) rd
      | `Div (rs1, rd, signed) ->
          A.op3 b I.Or rs1 (Imm 1) I.l1;
          A.op3 b (if signed then I.Sdiv else I.Udiv) rs1 (Reg I.l1) rd)
    ops;
  A.set32 b Sparc.Layout.result_base I.l2;
  for i = 0 to 7 do
    A.st b I.St (8 + i) I.l2 (Imm (4 * i))
  done;
  A.halt b I.g0;
  A.assemble b

(* Run one case through both engines and return a failure description,
   or None when every architectural observable agrees. *)
let compare_engines prog =
  let iss = E.create prog in
  let iss_stop = E.run iss in
  let sys = Lazy.force shared_sys in
  Leon3.System.load sys prog;
  let rtl_stop = Leon3.System.run sys ~max_cycles:2_000_000 in
  match (iss_stop, rtl_stop) with
  | E.Exited a, Leon3.System.Exited b when a <> b ->
      Some (Printf.sprintf "exit codes differ: iss=%d rtl=%d" a b)
  | E.Exited _, Leon3.System.Exited _ ->
      let bad = ref None in
      for r = 31 downto 0 do
        let vi = E.reg iss r and vr = Leon3.System.reg sys r in
        if vi <> vr then
          bad :=
            Some
              (Printf.sprintf "register %s differs: iss=0x%x rtl=0x%x" (I.reg_name r)
                 vi vr)
      done;
      (match !bad with
      | Some _ as b -> b
      | None ->
          let wi = List.filter Sparc.Bus_event.is_write (E.events iss)
          and wr = Leon3.System.writes sys in
          if List.length wi <> List.length wr then
            Some
              (Printf.sprintf "write counts differ: iss=%d rtl=%d" (List.length wi)
                 (List.length wr))
          else if not (List.for_all2 Sparc.Bus_event.equal wi wr) then
            Some "write streams differ"
          else if not (Sparc.Memory.equal (E.memory iss) (Leon3.System.memory sys))
          then Some "final memories differ"
          else None)
  | _ ->
      Some
        (Format.asprintf "stop reasons differ: iss=%a rtl=%a" E.pp_stop iss_stop
           Leon3.System.pp_stop rtl_stop)

let prop_full_state_agrees =
  QCheck2.Test.make ~name:"iss/rtl full architectural state agrees" ~count:120
    ~print:(fun case ->
      let prog = build case in
      let fail = Option.value ~default:"(agrees?)" (compare_engines prog) in
      fail ^ "\n" ^ String.concat "\n"
        (Array.to_list (Array.map I.instr_to_string prog.A.instrs)))
    gen_case
    (fun case -> compare_engines (build case) = None)

(* A directed sanity case so a broken harness fails loudly even if the
   generator shrinks everything away. *)
let test_known_case () =
  let prog =
    build
      ( [ `Alu (I.Umulcc, 8, I.Reg 9, 10); `Store (12, 10, 0); `Load (12, 11, 2);
          `Div (10, 12, true); `Alu (I.Subxcc, 11, I.Imm (-1), 13) ],
        [ 0xDEAD_BEEF; 0x7FFF_FFFF; 3; 0; 0xFFFF_FFFF; 42; 0x8000_0000; 1 ] )
  in
  match compare_engines prog with
  | None -> ()
  | Some msg -> Alcotest.fail msg

let suite =
  ( "differential",
    Alcotest.test_case "directed case" `Quick test_known_case
    :: List.map QCheck_alcotest.to_alcotest [ prop_full_state_agrees ] )
