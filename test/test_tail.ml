(* Tests for the watchdog-tail machinery: the Brent cycle detector
   (exact period, hash-collision rejection), the lane→scalar
   exhaustion-state transplant (state-for-state equal to a from-zero
   re-simulation advanced to trace end), and campaign verdict-table
   byte-equivalence with the tail engine on vs off. *)

module A = Sparc.Asm
module I = Sparc.Isa
module C = Rtl.Circuit
module Memory = Sparc.Memory
module Bus_event = Sparc.Bus_event
module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- the cycle detector on hand-built trajectories ---- *)

(* An oscillating fixture: a counter that ramps for [preamble] steps,
   then loops with period [p].  Stride 1 and an anchor inside the loop
   give detection at exactly one period past the anchor. *)
let test_cycle_exact_period () =
  List.iter
    (fun (preamble, p) ->
      let state = ref 0 in
      let value t = if t < preamble then t else preamble + ((t - preamble) mod p) in
      let det =
        Rtl.Cycle.create ~first:0 ~stride:1
          ~hash:(fun () -> !state * 0x9E3779B9)
          ~capture:(fun () -> !state)
          ~confirm:(fun s -> s = !state)
          ()
      in
      let proven = ref None in
      let t = ref 0 in
      (* the doubling schedule lands an anchor inside the loop by
         cycle 2*(preamble+p); one period later the match is proven *)
      while !proven = None && !t < (4 * (preamble + p)) + 64 do
        state := value !t;
        (match Rtl.Cycle.observe det ~cycle:!t with
        | Some period -> proven := Some period
        | None -> ());
        incr t
      done;
      match !proven with
      | None ->
          Alcotest.failf "no cycle proven (preamble %d, period %d)" preamble p
      | Some period ->
          check_int
            (Printf.sprintf "period (preamble %d, p %d)" preamble p)
            0 (period mod p);
          (* with stride 1 the first confirmed match is one minimal
             period past an in-loop anchor *)
          check_int
            (Printf.sprintf "minimal period (preamble %d, p %d)" preamble p)
            p period)
    [ (0, 1); (0, 5); (3, 7); (300, 4); (17, 60) ]

(* A colliding fixture: the fingerprint is constant but the state
   never repeats — every candidate must be rejected by the exact
   confirmation and no cycle may ever be reported. *)
let test_cycle_collisions_rejected () =
  let state = ref 0 in
  let det =
    Rtl.Cycle.create ~first:0 ~stride:1
      ~hash:(fun () -> 42)
      ~capture:(fun () -> !state)
      ~confirm:(fun s -> s = !state)
      ()
  in
  for t = 0 to 4096 do
    state := t;
    match Rtl.Cycle.observe det ~cycle:t with
    | Some period -> Alcotest.failf "false cycle of period %d at step %d" period t
    | None -> ()
  done;
  check_bool "candidates were submitted" true (Rtl.Cycle.candidates det > 0);
  check_bool "all candidates rejected as collisions" true
    (Rtl.Cycle.collisions det = Rtl.Cycle.candidates det);
  check_bool "fingerprints were computed" true (Rtl.Cycle.checks det > 4000)

(* ---- transplant = from-zero re-simulation at trace end ---- *)

let shared_sys = lazy (Leon3.System.create ())

let circuit sys = (Leon3.System.core sys).Leon3.Core.circuit

let small_prog =
  lazy
    (let b = A.create ~name:"tail-small" () in
     A.prologue b;
     A.mov b (Imm 0) I.o0;
     A.mov b (Imm 0) I.o1;
     A.label b "loop";
     A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
     A.op3 b I.Add I.o1 (Imm 1) I.o1;
     A.cmp b I.o1 (Imm 8);
     A.branch b I.Bne "loop";
     A.set32 b Sparc.Layout.result_base I.o2;
     A.st b I.St I.o0 I.o2 (Imm 0);
     A.halt b I.o0;
     A.assemble b)

let golden_setup =
  lazy
    (let sys = Lazy.force shared_sys in
     let prog = Lazy.force small_prog in
     let golden = Campaign.golden_run ~trace:true sys prog ~max_cycles:100_000 in
     let trace = Option.get golden.Campaign.trace in
     let sites =
       Array.of_list (Injection.sites (Leon3.System.core sys) Injection.Iu)
     in
     (golden, trace, sites))

let spec site model = { Batch.site; model; from_cycle = 0; duration = None }

(* Permanent faults that outlive the golden trace (the batch ejects
   them), discovered by sweeping full batches over the site pool with
   the tail engine off. *)
let ejecting_specs =
  lazy
    (let sys = Lazy.force shared_sys in
     let prog = Lazy.force small_prog in
     let golden, trace, sites = Lazy.force golden_setup in
     let max_cycles = (4 * golden.Campaign.cycles) + 2000 in
     let models = [| C.Stuck_at_0; C.Stuck_at_1; C.Open_line |] in
     let pool = ref [] in
     let stride = ref 0 in
     while !pool = [] && !stride < 8 do
       let specs =
         Array.init C.max_lanes (fun i ->
             let k = (i * 131) + (!stride * 977) in
             spec sites.(k mod Array.length sites).Injection.fault_site
               models.(i mod 3))
       in
       let outcomes, _ =
         Batch.run ~tail:false ~sys ~prog ~trace ~reference:golden.Campaign.writes
           ~max_cycles specs
       in
       Array.iteri
         (fun i o ->
           match o with
           | Batch.Ejected _ -> pool := specs.(i) :: !pool
           | Batch.Done _ -> ())
         outcomes;
       incr stride
     done;
     Array.of_list (List.rev !pool))

(* Eject one spec through the tail engine: a single-lane batch whose
   lane outlives the trace is always handed over as a transplant. *)
let eject_one sys prog golden trace ~max_cycles sp =
  let outcomes, _ =
    Batch.run ~tail:true ~sys ~prog ~trace ~reference:golden.Campaign.writes
      ~max_cycles [| sp |]
  in
  match outcomes.(0) with
  | Batch.Ejected (Some e) -> Some e
  | Batch.Ejected None -> Alcotest.fail "tail engine returned Ejected None"
  | Batch.Done _ -> None

let check_transplant_matches_rerun sp =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let golden, trace, _ = Lazy.force golden_setup in
  let c = circuit sys in
  let max_cycles = (4 * golden.Campaign.cycles) + 2000 in
  match eject_one sys prog golden trace ~max_cycles sp with
  | None -> ()  (* the tail engine itself retired the lane: no transplant *)
  | Some e ->
      let tc = C.transplant_cycle e.Batch.e_tp in
      (* from-zero re-simulation advanced to the transplant's cycle *)
      Leon3.System.load sys prog;
      C.inject c ~from_cycle:sp.Batch.from_cycle ?duration:sp.Batch.duration
        sp.Batch.site sp.Batch.model;
      (match
         Leon3.System.run_segment sys ~until_cycle:tc ~max_cycles:(max_cycles * 2)
       with
      | None -> ()
      | Some r ->
          Alcotest.failf "from-zero rerun stopped (%s) before trace end"
            (Format.asprintf "%a" Leon3.System.pp_stop r));
      C.clear_fault c;
      let snap = C.snapshot c in
      let rerun_mem = Memory.copy (Leon3.System.memory sys) in
      let rerun_events = Leon3.System.events sys in
      let rerun_stop =
        (* ... and on to its verdict, without loop detection, for the
           stop-reason comparison *)
        let stop = Leon3.System.run sys ~max_cycles in
        let cyc = Leon3.System.cycles sys in
        (stop, cyc)
      in
      (* the transplanted system must stand exactly where the re-run
         stood at trace end: registers, memories, cycle counter, main
         memory and the recorded event stream *)
      Leon3.System.transplant sys e.Batch.e_tp ~mem:e.Batch.e_mem
        ~iport:e.Batch.e_iport ~dport:e.Batch.e_dport
        ~events_rev:e.Batch.e_events_rev
        ~n_events:(List.length e.Batch.e_events_rev)
        ~n_writes:e.Batch.e_writes;
      check_bool "circuit state equal (registers + memories + cycle)" true
        (C.state_equal c snap);
      check_bool "main-memory image equal" true
        (Memory.equal (Leon3.System.memory sys) rerun_mem);
      check_bool "event stream equal" true
        (List.rev e.Batch.e_events_rev = rerun_events);
      check_int "write count equal" e.Batch.e_writes
        (List.length (List.filter Bus_event.is_write rerun_events));
      (* continuing the transplant reproduces the re-run's future *)
      let stop = Leon3.System.run sys ~max_cycles in
      let cyc = Leon3.System.cycles sys in
      C.clear_fault c;
      check_bool "stop reason equal" true ((stop, cyc) = rerun_stop)

let test_transplant_known_ejecting () =
  let pool = Lazy.force ejecting_specs in
  check_bool "ejecting specs exist" true (Array.length pool > 0);
  Array.iter check_transplant_matches_rerun
    (Array.sub pool 0 (min 3 (Array.length pool)))

let prop_transplant_matches_rerun =
  QCheck2.Test.make ~name:"transplant = from-zero rerun at trace end" ~count:12
    ~print:string_of_int
    QCheck2.Gen.(int_bound 100_000)
    (fun k ->
      let pool = Lazy.force ejecting_specs in
      if Array.length pool = 0 then QCheck2.Test.fail_report "no ejecting specs";
      check_transplant_matches_rerun pool.(k mod Array.length pool);
      true)

(* ---- campaign verdict tables byte-identical, tail on vs off ---- *)

let verdict (r : Campaign.run_result) =
  (r.Campaign.site_name, r.Campaign.model, r.Campaign.outcome, r.Campaign.detect_cycle,
   r.Campaign.inject_cycle)

let full_summary (s : Campaign.summary) =
  ( s.Campaign.injections, s.Campaign.failures, s.Campaign.pf, s.Campaign.wrong_writes,
    s.Campaign.missing_writes, s.Campaign.traps, s.Campaign.hangs,
    s.Campaign.max_latency, s.Campaign.mean_latency, s.Campaign.skipped,
    s.Campaign.early_exits )

let test_tail_campaign_equivalence () =
  let sys = Lazy.force shared_sys in
  let base =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ];
      sample_size = Some 40 }
  in
  let obs_on = Obs.create () in
  List.iter
    (fun e ->
      let prog = e.Workloads.Suite.build ~iterations:1 ~dataset:0 in
      let wl = e.Workloads.Suite.name in
      let sum_t, res_t =
        Campaign.run
          ~config:{ base with Campaign.tail = true }
          ~obs:obs_on sys prog Injection.Iu
      in
      let sum_o, res_o =
        Campaign.run ~config:{ base with Campaign.tail = false } sys prog Injection.Iu
      in
      check_int (wl ^ ": result count") (List.length res_o) (List.length res_t);
      List.iter2
        (fun rt ro ->
          check_bool (wl ^ ": verdict " ^ rt.Campaign.site_name) true
            (verdict rt = verdict ro))
        res_t res_o;
      List.iter2
        (fun (m, st) (m', so) ->
          check_bool (wl ^ ": model order") true (m = m');
          check_bool (wl ^ ": summaries identical") true
            (full_summary st = full_summary so))
        sum_t sum_o)
    Workloads.Suite.table1_set;
  (* whenever the batch ejected a lane, the tail machinery must have
     resolved it: by in-batch cycle proof or by transplant *)
  if Obs.counter obs_on "batch.ejected" > 0 then
    check_bool "ejections resolved by proof or transplant" true
      (Obs.counter obs_on "tail.cycle_proofs" + Obs.counter obs_on "tail.transplants"
      > 0)

(* ---- the observed cone: free-running accounting state outside the
   cone (the instret pattern) must not block a recurrence proof, and
   disabling the cone must restore the legacy full-state comparison ---- *)
let test_observed_cone () =
  let c = C.create "cone" in
  (* a 2-state oscillator drives the observable output; a free-running
     counter (never read by the output) accumulates forever *)
  let osc = C.reg c "osc" ~width:1 ~init:0 () in
  let ctr = C.reg c "ctr" ~width:16 ~init:0 () in
  let out = C.comb1 c "out" 1 osc (fun v -> v) in
  C.connect c osc ~d:(C.comb1 c "osc_n" 1 osc (fun v -> lnot v land 1)) ();
  C.connect c ctr ~d:(C.comb1 c "ctr_n" 16 ctr (fun v -> v + 1)) ();
  C.elaborate c;
  C.set_observed_cone c [ out ];
  C.settle c;
  let snap = C.snapshot c in
  let h0 = C.content_hash c in
  let step () =
    C.clock c;
    C.settle c
  in
  step ();
  step ();
  (* two steps later the oscillator has recurred but the counter has
     not: cone-restricted comparison proves the recurrence, the legacy
     full-state comparison must still see the counter move *)
  check_bool "cone: recurrence proven" true (C.same_state c snap);
  check_int "cone: hash recurs" h0 (C.content_hash c);
  C.enable_observed_cone c false;
  check_bool "no cone: counter blocks recurrence" false (C.same_state c snap);
  C.enable_observed_cone c true;
  check_bool "cone re-enabled: recurrence again" true (C.same_state c snap)

let suite =
  ( "tail",
    [ Alcotest.test_case "cycle detector: exact period" `Quick
        test_cycle_exact_period;
      Alcotest.test_case "observed cone: accounting state excluded" `Quick
        test_observed_cone;
      Alcotest.test_case "cycle detector: collisions rejected" `Quick
        test_cycle_collisions_rejected;
      Alcotest.test_case "transplant = from-zero rerun (known ejectors)" `Slow
        test_transplant_known_ejecting;
      Alcotest.test_case "tail campaign = no-tail campaign (figure 5)" `Slow
        test_tail_campaign_equivalence ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_transplant_matches_rerun ] )
