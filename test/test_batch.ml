(* Tests for bit-parallel fault batching (PPSFP): the compiled
   levelized plan must equal the graph-derived one, a batch of lanes
   must track independent scalar runs observable-for-observable
   (write streams, stop reasons, stop and mismatch cycles), and lane
   arming/retirement must behave per fault model. *)

module A = Sparc.Asm
module I = Sparc.Isa
module C = Rtl.Circuit
module Bus_event = Sparc.Bus_event
module Campaign = Fault_injection.Campaign
module Injection = Fault_injection.Injection

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let shared_sys = lazy (Leon3.System.create ())

let circuit sys = (Leon3.System.core sys).Leon3.Core.circuit

let small_prog =
  lazy
    (let b = A.create ~name:"small" () in
     A.prologue b;
     A.mov b (Imm 0) I.o0;
     A.mov b (Imm 0) I.o1;
     A.label b "loop";
     A.op3 b I.Add I.o0 (Reg I.o1) I.o0;
     A.op3 b I.Add I.o1 (Imm 1) I.o1;
     A.cmp b I.o1 (Imm 8);
     A.branch b I.Bne "loop";
     A.set32 b Sparc.Layout.result_base I.o2;
     A.st b I.St I.o0 I.o2 (Imm 0);
     A.halt b I.o0;
     A.assemble b)

let golden_setup =
  lazy
    (let sys = Lazy.force shared_sys in
     let prog = Lazy.force small_prog in
     let golden = Campaign.golden_run ~trace:true sys prog ~max_cycles:100_000 in
     let trace = Option.get golden.Campaign.trace in
     let sites =
       Array.of_list (Injection.sites (Leon3.System.core sys) Injection.Iu)
     in
     (golden, trace, sites))

(* ---- the compiled plan is the graph-derived plan ---- *)

let test_compiled_plan_matches_graph () =
  let sys = Lazy.force shared_sys in
  let c = circuit sys in
  let compiled = C.compiled_plan c in
  let from_graph = Analysis.Graph.replay_plan (Analysis.Graph.build c) in
  check_int "node count" (Array.length from_graph.C.rp_fanout)
    (Array.length compiled.C.rp_fanout);
  check_int "max level" from_graph.C.rp_max_level compiled.C.rp_max_level;
  check_bool "levels" true (from_graph.C.rp_level = compiled.C.rp_level);
  check_bool "fanout" true (from_graph.C.rp_fanout = compiled.C.rp_fanout);
  check_bool "mem readers" true (from_graph.C.rp_mem_readers = compiled.C.rp_mem_readers)

(* ---- batch runs track independent scalar runs ---- *)

(* Everything a verdict can depend on, per run. *)
type observed = {
  o_stop : Leon3.System.stop_reason;
  o_matched : int;
  o_stop_cycle : int;
  o_mismatch : int option;
  o_events : Bus_event.t list;
}

(* Scalar reference: the untrimmed [run_one] comparator, exposing the
   raw observables instead of a classified verdict. *)
let scalar_observe sys prog (golden : Campaign.golden) ~max_cycles
    (sp : Batch.spec) =
  let c = circuit sys in
  Leon3.System.load sys prog;
  C.inject c ~from_cycle:sp.Batch.from_cycle ?duration:sp.Batch.duration
    sp.Batch.site sp.Batch.model;
  let matched = ref 0 and mismatch = ref None in
  let reference = golden.Campaign.writes in
  let on_event ev =
    if not (Bus_event.is_write ev) then true
    else if
      !matched < Array.length reference && Bus_event.equal ev reference.(!matched)
    then begin
      incr matched;
      true
    end
    else begin
      mismatch := Some (Leon3.System.cycles sys);
      false
    end
  in
  let stop = Leon3.System.run ~on_event sys ~max_cycles in
  C.clear_fault c;
  { o_stop = stop;
    o_matched = !matched;
    o_stop_cycle = Leon3.System.cycles sys;
    o_mismatch = !mismatch;
    o_events = Leon3.System.events sys }

let observed_of_result (r : Batch.result) =
  { o_stop = r.Batch.stop;
    o_matched = r.Batch.matched;
    o_stop_cycle = r.Batch.stop_cycle;
    o_mismatch = r.Batch.mismatch_cycle;
    o_events = r.Batch.events }

let pp_observed o =
  Format.asprintf "%a matched=%d stop=%d mismatch=%s events=%d"
    Leon3.System.pp_stop o.o_stop o.o_matched o.o_stop_cycle
    (match o.o_mismatch with None -> "-" | Some c -> string_of_int c)
    (List.length o.o_events)

(* Continue an ejected lane on the scalar engine from its transplanted
   trace-end state, exposing the same raw observables as
   [scalar_observe] — every field must then equal the from-zero scalar
   run's, since the transplant hands over the exact state. *)
let continue_observe sys (golden : Campaign.golden) ~max_cycles (e : Batch.ejected) =
  let c = circuit sys in
  Leon3.System.transplant sys e.Batch.e_tp ~mem:e.Batch.e_mem ~iport:e.Batch.e_iport
    ~dport:e.Batch.e_dport ~events_rev:e.Batch.e_events_rev
    ~n_events:(List.length e.Batch.e_events_rev)
    ~n_writes:e.Batch.e_writes;
  let matched = ref e.Batch.e_matched and mismatch = ref e.Batch.e_mismatch in
  let reference = golden.Campaign.writes in
  let on_event ev =
    if not (Bus_event.is_write ev) then true
    else if
      !matched < Array.length reference && Bus_event.equal ev reference.(!matched)
    then begin
      incr matched;
      true
    end
    else begin
      mismatch := Some (Leon3.System.cycles sys);
      false
    end
  in
  let stop = Leon3.System.run ~on_event sys ~max_cycles in
  C.clear_fault c;
  { o_stop = stop;
    o_matched = !matched;
    o_stop_cycle = Leon3.System.cycles sys;
    o_mismatch = !mismatch;
    o_events = Leon3.System.events sys }

let batch_vs_scalar ?(tail = false) specs =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let golden, trace, _ = Lazy.force golden_setup in
  let max_cycles = (4 * golden.Campaign.cycles) + 2000 in
  let outcomes, _ =
    Batch.run ~tail ~sys ~prog ~trace ~reference:golden.Campaign.writes ~max_cycles
      specs
  in
  Array.iteri
    (fun i outcome ->
      let scalar () = scalar_observe sys prog golden ~max_cycles specs.(i) in
      match outcome with
      | Batch.Done r ->
          let b = observed_of_result r in
          let scalar = scalar () in
          if r.Batch.stop = Leon3.System.Cycle_limit && b.o_stop_cycle < max_cycles
          then begin
            (* cycle-proof retirement stops recording the moment
               periodicity is proven, so the raw stop cycle and event
               tail are shorter than the budget-exhausting scalar
               run's — but everything a verdict reads must agree *)
            check_bool (Printf.sprintf "lane %d: proof = scalar hang" i) true
              (scalar.o_stop = Leon3.System.Cycle_limit);
            check_int (Printf.sprintf "lane %d: matched" i) scalar.o_matched
              b.o_matched;
            check_bool (Printf.sprintf "lane %d: mismatch cycle" i) true
              (scalar.o_mismatch = b.o_mismatch)
          end
          else if b <> scalar then
            Alcotest.failf "lane %d: batch %s <> scalar %s" i (pp_observed b)
              (pp_observed scalar)
      | Batch.Ejected None ->
          (* only lanes that outlive the golden trace may be ejected *)
          check_bool
            (Printf.sprintf "lane %d ejected but scalar finished in-trace" i)
            true
            ((scalar ()).o_stop_cycle >= C.trace_cycles trace - 1)
      | Batch.Ejected (Some e) ->
          (* a transplanted continuation replays the exact scalar
             future: every observable matches, including the stop
             cycle and the full event stream *)
          let b = continue_observe sys golden ~max_cycles e in
          let scalar = scalar () in
          if b <> scalar then
            Alcotest.failf "lane %d: transplant %s <> scalar %s" i (pp_observed b)
              (pp_observed scalar))
    outcomes

let spec ?duration ?(from_cycle = 0) site model =
  { Batch.site; model; from_cycle; duration }

let full_occupancy_specs () =
  (* A mix of sites, models and injection cycles (many silent, some
     failing, some trapping, a few outliving the trace). *)
  let golden, _, sites = Lazy.force golden_setup in
  let models = [| C.Stuck_at_0; C.Stuck_at_1; C.Open_line; C.Bit_flip |] in
  Array.init C.max_lanes (fun i ->
      let site = sites.(i * 131 mod Array.length sites) in
      let from_cycle =
        if i mod 3 = 0 then 0 else i * 17 mod (golden.Campaign.cycles + 10)
      in
      let duration = if i mod 5 = 4 then Some ((i mod 3) + 1) else None in
      spec ?duration ~from_cycle site.Injection.fault_site models.(i mod 4))

let test_batch_full_occupancy () = batch_vs_scalar (full_occupancy_specs ())

let test_batch_tail_full_occupancy () =
  (* The same batch through the dense tail engine: trace-outliving
     lanes now come back as verdicts (byte-matching the scalar runs,
     modulo a cycle-proof's early stop cycle) or as transplants whose
     scalar continuation byte-matches the from-zero run. *)
  batch_vs_scalar ~tail:true (full_occupancy_specs ())

let test_batch_cell_faults () =
  let _, _, sites = Lazy.force golden_setup in
  let cells =
    Array.of_list
      (List.filter
         (fun s ->
           match s.Injection.fault_site with C.Cell _ -> true | C.Node _ -> false)
         (Array.to_list sites))
  in
  check_bool "cell sites exist" true (Array.length cells > 8);
  let specs =
    Array.init
      (min 16 (Array.length cells))
      (fun i ->
        let site = cells.(i * 37 mod Array.length cells) in
        let model =
          [| C.Stuck_at_0; C.Stuck_at_1; C.Bit_flip; C.Open_line |].(i mod 4)
        in
        spec site.Injection.fault_site model)
  in
  batch_vs_scalar specs

(* qcheck: random small batches equal per-lane scalar runs. *)
let gen_specs =
  let open QCheck2.Gen in
  let one =
    map3
      (fun si model (pct, duration) -> (si, model, pct, duration))
      (int_bound 100_000)
      (oneofl [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line; C.Bit_flip ])
      (pair (int_bound 99) (oneofl [ None; Some 1; Some 4 ]))
  in
  list_size (int_range 1 12) one

let print_specs l =
  String.concat "; "
    (List.map
       (fun (si, model, pct, duration) ->
         Printf.sprintf "site#%d %s at %d%% dur %s" si (C.fault_model_name model)
           pct
           (match duration with None -> "perm" | Some d -> string_of_int d))
       l)

let prop_batch_matches_scalar =
  QCheck2.Test.make ~name:"batch lanes = independent scalar runs" ~count:30
    ~print:print_specs gen_specs (fun l ->
      let golden, _, sites = Lazy.force golden_setup in
      let specs =
        Array.of_list
          (List.map
             (fun (si, model, pct, duration) ->
               let site = sites.(si mod Array.length sites) in
               spec ?duration
                 ~from_cycle:(golden.Campaign.cycles * pct / 100)
                 site.Injection.fault_site model)
             l)
      in
      batch_vs_scalar specs;
      true)

(* ---- campaign verdicts identical with batching on or off ---- *)

let verdict (r : Campaign.run_result) =
  (r.Campaign.site_name, r.Campaign.model, r.Campaign.outcome, r.Campaign.detect_cycle,
   r.Campaign.inject_cycle)

let full_summary (s : Campaign.summary) =
  ( s.Campaign.injections, s.Campaign.failures, s.Campaign.pf, s.Campaign.wrong_writes,
    s.Campaign.missing_writes, s.Campaign.traps, s.Campaign.hangs,
    s.Campaign.max_latency, s.Campaign.mean_latency, s.Campaign.skipped,
    s.Campaign.early_exits )

let test_batch_campaign_matches_scalar () =
  let sys = Lazy.force shared_sys in
  let base =
    { Campaign.default_config with
      Campaign.models = [ C.Stuck_at_0; C.Stuck_at_1; C.Open_line ];
      sample_size = Some 40 }
  in
  let obs_on = Obs.create () in
  List.iter
    (fun e ->
      let prog = e.Workloads.Suite.build ~iterations:1 ~dataset:0 in
      let wl = e.Workloads.Suite.name in
      let sum_b, res_b =
        Campaign.run ~config:{ base with Campaign.batch = true } ~obs:obs_on sys prog
          Injection.Iu
      in
      let sum_s, res_s =
        Campaign.run ~config:{ base with Campaign.batch = false } sys prog Injection.Iu
      in
      check_int (wl ^ ": result count") (List.length res_s) (List.length res_b);
      List.iter2
        (fun rb rs ->
          check_bool (wl ^ ": verdict " ^ rb.Campaign.site_name) true
            (verdict rb = verdict rs))
        res_b res_s;
      List.iter2
        (fun (m, sb) (m', ss) ->
          check_bool (wl ^ ": model order") true (m = m');
          check_bool (wl ^ ": summaries identical") true
            (full_summary sb = full_summary ss))
        sum_b sum_s)
    Workloads.Suite.table1_set;
  check_bool "batch passes happened" true (Obs.counter obs_on "batch.passes" > 0);
  check_bool "lanes retired in batch" true
    (Obs.counter obs_on "batch.lanes_retired" > 0)

(* ---- lane arming and early retirement ---- *)

let test_lane_masks_and_retirement () =
  (* Stuck-at/open-line/bit-flip lanes armed on one node diverge (or
     not) exactly per model semantics, and retiring a lane clears its
     divergence without disturbing the others. *)
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let _, trace, sites = Lazy.force golden_setup in
  let c = circuit sys in
  (* a node the program actually exercises: first IU node site *)
  let site =
    (Array.to_list sites
    |> List.find (fun s ->
           match s.Injection.fault_site with
           | C.Node _ -> true
           | C.Cell _ -> false))
      .Injection.fault_site
  in
  let node, bit = match site with C.Node (s, b) -> (s, b) | C.Cell _ -> assert false in
  Leon3.System.load sys prog;
  C.batch_start c trace;
  check_bool "armed" true (C.batch_armed c);
  check_int "no lanes yet" 0 (C.batch_active c);
  C.batch_arm c 0 site C.Stuck_at_0;
  C.batch_arm c 1 site C.Stuck_at_1;
  C.batch_arm c 2 site C.Open_line;
  C.batch_arm c 3 site C.Bit_flip;
  check_int "four lanes" 0b1111 (C.batch_active c);
  C.batch_settle c;
  let g = C.value c node in
  check_int "stuck-at-0 lane view" (g land lnot (1 lsl bit)) (C.batch_value c node 0);
  check_int "stuck-at-1 lane view" (g lor (1 lsl bit)) (C.batch_value c node 1);
  check_int "open-line lane view" (g land lnot (1 lsl bit)) (C.batch_value c node 2);
  check_int "bit-flip lane view" (g lxor (1 lsl bit)) (C.batch_value c node 3);
  (* scalar injection agrees on the transformed view *)
  C.batch_retire c 1;
  check_int "lane 1 retired" 0b1101 (C.batch_active c);
  check_int "retired lane reads golden" g (C.batch_value c node 1);
  check_int "lane 3 untouched by retirement" (g lxor (1 lsl bit))
    (C.batch_value c node 3);
  C.batch_retire c 0;
  C.batch_retire c 2;
  C.batch_retire c 3;
  check_int "all retired" 0 (C.batch_active c);
  let stats = C.batch_stop c in
  check_bool "disarmed" false (C.batch_armed c);
  check_bool "some lane evaluations happened" true (stats.C.bs_evals > 0)

let test_scalar_api_rejected_while_armed () =
  let sys = Lazy.force shared_sys in
  let prog = Lazy.force small_prog in
  let _, trace, _ = Lazy.force golden_setup in
  let c = circuit sys in
  Leon3.System.load sys prog;
  C.batch_start c trace;
  let rejected f = try f (); false with Invalid_argument _ -> true in
  check_bool "settle rejected" true (rejected (fun () -> C.settle c));
  check_bool "clock rejected" true (rejected (fun () -> C.clock c));
  check_bool "reset rejected" true (rejected (fun () -> C.reset c));
  ignore (C.batch_stop c);
  (* and the circuit is usable again after batch_stop + reload *)
  Leon3.System.load sys prog;
  C.settle c

let suite =
  ( "batch",
    [ Alcotest.test_case "compiled plan = graph replay plan" `Quick
        test_compiled_plan_matches_graph;
      Alcotest.test_case "full 63-lane batch = scalar runs" `Slow
        test_batch_full_occupancy;
      Alcotest.test_case "full 63-lane batch through the tail = scalar runs" `Slow
        test_batch_tail_full_occupancy;
      Alcotest.test_case "cell-fault lanes = scalar runs" `Slow
        test_batch_cell_faults;
      Alcotest.test_case "batch campaign = scalar campaign (figure 5)" `Slow
        test_batch_campaign_matches_scalar;
      Alcotest.test_case "lane masks per model + retirement" `Quick
        test_lane_masks_and_retirement;
      Alcotest.test_case "scalar API rejected while armed" `Quick
        test_scalar_api_rejected_while_armed ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_batch_matches_scalar ] )
