(* Tests for the ISA definition, encoder/decoder, assembler and memory. *)

module I = Sparc.Isa
module E = Sparc.Encode
module A = Sparc.Asm
module M = Sparc.Memory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- ISA ---- *)

let test_opcode_tables () =
  check_int "58 opcodes" 58 I.num_opcodes;
  List.iteri
    (fun i op ->
      check_int "index roundtrip" i (I.opcode_index op);
      check_bool "of_index roundtrip" true (I.opcode_of_index i = op))
    I.all_opcodes;
  List.iter
    (fun op ->
      match I.opcode_of_mnemonic (I.mnemonic op) with
      | Some op' -> check_bool "mnemonic roundtrip" true (op = op')
      | None -> Alcotest.fail ("mnemonic not found: " ^ I.mnemonic op))
    I.all_opcodes

let test_classification () =
  check_bool "branch" true (I.is_branch I.Bne);
  check_bool "call not branch" false (I.is_branch I.Call);
  check_bool "load" true (I.is_load I.Ldsh);
  check_bool "store" true (I.is_store I.Stb);
  check_bool "mem" true (I.is_mem I.Ld && I.is_mem I.St);
  check_bool "addcc writes icc" true (I.writes_icc I.Addcc);
  check_bool "add does not" false (I.writes_icc I.Add);
  check_bool "sll does not" false (I.writes_icc I.Sll)

let icc ~n ~z ~v ~c = { I.n; z; v; c }

let test_cond_holds () =
  let f = false and t = true in
  let cases =
    [ (I.Ba, icc ~n:f ~z:f ~v:f ~c:f, true);
      (I.Bn, icc ~n:t ~z:t ~v:t ~c:t, false);
      (I.Be, icc ~n:f ~z:t ~v:f ~c:f, true);
      (I.Bne, icc ~n:f ~z:t ~v:f ~c:f, false);
      (I.Bg, icc ~n:f ~z:f ~v:f ~c:f, true);
      (I.Bg, icc ~n:t ~z:f ~v:f ~c:f, false);
      (I.Ble, icc ~n:f ~z:t ~v:f ~c:f, true);
      (I.Bge, icc ~n:t ~z:f ~v:t ~c:f, true);
      (I.Bl, icc ~n:t ~z:f ~v:f ~c:f, true);
      (I.Bgu, icc ~n:f ~z:f ~v:f ~c:f, true);
      (I.Bgu, icc ~n:f ~z:f ~v:f ~c:t, false);
      (I.Bleu, icc ~n:f ~z:t ~v:f ~c:f, true);
      (I.Bcc, icc ~n:f ~z:f ~v:f ~c:f, true);
      (I.Bcs, icc ~n:f ~z:f ~v:f ~c:t, true);
      (I.Bpos, icc ~n:f ~z:f ~v:f ~c:f, true);
      (I.Bneg, icc ~n:t ~z:f ~v:f ~c:f, true);
      (I.Bvc, icc ~n:f ~z:f ~v:f ~c:f, true);
      (I.Bvs, icc ~n:f ~z:f ~v:t ~c:f, true) ]
  in
  List.iter
    (fun (op, flags, expected) ->
      check_bool (I.mnemonic op) expected (I.cond_holds op flags))
    cases;
  Alcotest.check_raises "non-branch rejected"
    (Invalid_argument "Isa.cond_holds: not a branch opcode") (fun () ->
      ignore (I.cond_holds I.Add I.icc_zero))

let test_icc_packing () =
  for w = 0 to 15 do
    check_int "pack/unpack" w (I.icc_to_word (I.icc_of_word w))
  done

let test_reg_names () =
  Alcotest.(check string) "g0" "%g0" (I.reg_name 0);
  Alcotest.(check string) "sp" "%sp" (I.reg_name I.sp);
  Alcotest.(check string) "fp" "%fp" (I.reg_name I.fp);
  Alcotest.(check string) "i7" "%i7" (I.reg_name 31);
  Alcotest.(check string) "l3" "%l3" (I.reg_name 19)

(* ---- encoding ---- *)

let test_encode_known_words () =
  (* Cross-checked against the SPARC v8 manual encodings. *)
  check_int "nop (sethi 0, %g0)" 0x0100_0000 (E.encode I.nop);
  check_int "add %o0, %o1, %o2"
    0x9402_0009
    (E.encode (I.Alu { op = I.Add; rs1 = I.o0; op2 = I.Reg I.o1; rd = I.o2 }));
  check_int "sub %o0, 1, %o0"
    0x9022_2001
    (E.encode (I.Alu { op = I.Sub; rs1 = I.o0; op2 = I.Imm 1; rd = I.o0 }));
  check_int "ld [%o0+4], %o1"
    0xD202_2004
    (E.encode (I.Mem { op = I.Ld; rs1 = I.o0; op2 = I.Imm 4; rd = I.o1 }));
  check_int "call .+8" 0x4000_0002 (E.encode (I.Call_i { disp30 = 2 }));
  check_int "be .-4" 0x02BF_FFFF (E.encode (I.Branch_i { op = I.Be; disp22 = -1 }))

let test_encode_range_checks () =
  let bad_imm () =
    ignore (E.encode (I.Alu { op = I.Add; rs1 = 0; op2 = I.Imm 5000; rd = 0 }))
  in
  Alcotest.check_raises "simm13 overflow"
    (Invalid_argument "Encode: immediate beyond simm13") bad_imm;
  Alcotest.check_raises "imm22 overflow" (Invalid_argument "Encode: imm22 out of range")
    (fun () -> ignore (E.encode (I.Sethi_i { imm22 = 0x400_0000; rd = 1 })))

let test_decode_invalid () =
  (* op=00 with op2=111 is unimplemented in the subset *)
  check_bool "invalid format2" true (E.decode 0x01C0_0000 = None);
  (* op=10 with an FPU op3 *)
  check_bool "invalid op3" true (E.decode 0x81A0_0000 = None)

let gen_instr =
  let open QCheck2.Gen in
  let reg = int_bound 31 in
  let operand =
    oneof [ map (fun r -> I.Reg r) reg; map (fun i -> I.Imm (i - 4096)) (int_bound 8191) ]
  in
  let alu_ops =
    [ I.Add; I.Addcc; I.Addx; I.Addxcc; I.Sub; I.Subcc; I.Subx; I.Subxcc; I.And;
      I.Andcc; I.Andn; I.Andncc; I.Or; I.Orcc; I.Orn; I.Orncc; I.Xor; I.Xorcc; I.Xnor;
      I.Xnorcc; I.Sll; I.Srl; I.Sra; I.Umul; I.Umulcc; I.Smul; I.Smulcc; I.Udiv;
      I.Sdiv; I.Save; I.Restore; I.Jmpl ]
  in
  let mem_ops = [ I.Ld; I.Ldub; I.Ldsb; I.Lduh; I.Ldsh; I.St; I.Stb; I.Sth ] in
  let branch_ops =
    [ I.Ba; I.Bn; I.Bne; I.Be; I.Bg; I.Ble; I.Bge; I.Bl; I.Bgu; I.Bleu; I.Bcc; I.Bcs;
      I.Bpos; I.Bneg; I.Bvc; I.Bvs ]
  in
  oneof
    [ map3 (fun op rs1 (op2, rd) -> I.Alu { op; rs1; op2; rd })
        (oneofl alu_ops) reg (pair operand reg);
      map3 (fun op rs1 (op2, rd) -> I.Mem { op; rs1; op2; rd })
        (oneofl mem_ops) reg (pair operand reg);
      map2 (fun imm22 rd -> I.Sethi_i { imm22; rd }) (int_bound 0x3F_FFFF) reg;
      map2 (fun op disp -> I.Branch_i { op; disp22 = disp - (1 lsl 20) })
        (oneofl branch_ops) (int_bound ((1 lsl 21) - 1));
      map (fun disp -> I.Call_i { disp30 = disp - (1 lsl 28) }) (int_bound ((1 lsl 29) - 1)) ]

let prop_encode_decode_roundtrip =
  QCheck2.Test.make ~name:"encode/decode roundtrip" ~count:2000 gen_instr (fun instr ->
      match E.decode (E.encode instr) with
      | Some instr' -> instr = instr'
      | None -> false)

let prop_decode_total =
  QCheck2.Test.make ~name:"decode never raises on arbitrary words" ~count:2000
    QCheck2.Gen.(map (fun x -> x land Bitops.mask32) (int_bound max_int))
    (fun w ->
      match E.decode w with
      | Some i -> E.encode i = w
      | None -> true)

(* ---- assembler ---- *)

let test_asm_labels_and_branches () =
  let b = A.create ~name:"t" () in
  A.label b "start";
  A.nop b;
  A.branch b I.Ba "start";
  A.call b "start";
  let prog = A.assemble b in
  (match prog.A.instrs.(1) with
  | I.Branch_i { disp22; _ } -> check_int "backward branch" (-1) disp22
  | _ -> Alcotest.fail "expected branch");
  (match prog.A.instrs.(2) with
  | I.Call_i { disp30 } -> check_int "backward call" (-2) disp30
  | _ -> Alcotest.fail "expected call");
  check_int "symbol" prog.A.text_base (List.assoc "start" prog.A.symbols)

let test_asm_unknown_label () =
  let b = A.create () in
  A.branch b I.Ba "nowhere";
  Alcotest.check_raises "unknown label" (A.Unknown_label "nowhere") (fun () ->
      ignore (A.assemble b))

let test_asm_duplicate_label () =
  let b = A.create () in
  A.label b "x";
  Alcotest.check_raises "duplicate label" (A.Duplicate_label "x") (fun () -> A.label b "x")

let test_asm_set32 () =
  let b = A.create () in
  A.set32 b 0xDEAD_BEEF I.o0;
  let prog = A.assemble b in
  check_int "two instructions" 2 (Array.length prog.A.instrs);
  (* simulate them by hand *)
  let v =
    match (prog.A.instrs.(0), prog.A.instrs.(1)) with
    | I.Sethi_i { imm22; _ }, I.Alu { op = I.Or; op2 = I.Imm lo; _ } ->
        (imm22 lsl 10) lor lo
    | _ -> Alcotest.fail "unexpected expansion"
  in
  check_int "value reconstructed" 0xDEAD_BEEF v

let test_asm_data_section () =
  let b = A.create () in
  A.nop b;
  A.data_label b "tbl";
  A.words b [| 1; 2; 3 |];
  A.data_label b "after";
  let prog = A.assemble b in
  let tbl = List.assoc "tbl" prog.A.symbols in
  let after = List.assoc "after" prog.A.symbols in
  check_int "12 bytes apart" 12 (after - tbl);
  let mem = M.create () in
  A.load prog mem;
  check_int "data loaded" 2 (M.load_word mem (tbl + 4))

(* ---- text parser ---- *)

let test_parser_registers () =
  check_bool "o3" true (Sparc.Parser.register_of_string "%o3" = Some I.o3);
  check_bool "sp" true (Sparc.Parser.register_of_string "%sp" = Some I.sp);
  check_bool "fp" true (Sparc.Parser.register_of_string "%fp" = Some I.fp);
  check_bool "r17" true (Sparc.Parser.register_of_string "%r17" = Some 17);
  check_bool "bad group" true (Sparc.Parser.register_of_string "%q1" = None);
  check_bool "out of range" true (Sparc.Parser.register_of_string "%o9" = None);
  check_bool "no percent" true (Sparc.Parser.register_of_string "o3" = None)

let test_parser_end_to_end () =
  let source =
    {|! compute 6! and publish it
        .text
        prologue
        mov   1, %o0
        mov   6, %o1
fact:   umul  %o0, %o1, %o0
        subcc %o1, 1, %o1
        bne   fact
        set   out, %o2
        st    %o0, [%o2]
        ld    [%o2], %o3          ! read back
        halt  %o3
        .data
out:    .word 0
pad:    .space 2
|}
  in
  let prog = Sparc.Parser.parse_string ~name:"fact" source in
  let t = Iss.Emulator.create prog in
  (match Iss.Emulator.run t with
  | Iss.Emulator.Exited code -> check_int "6! = 720" 720 code
  | s -> Alcotest.failf "parser program failed: %a" Iss.Emulator.pp_stop s);
  check_bool "labels resolved" true (List.mem_assoc "out" prog.A.symbols)

let test_parser_addressing_forms () =
  let prog =
    Sparc.Parser.parse_string
      "        mov 8, %o0\n        ld [%o0], %o1\n        ld [%o0 + 4], %o2\n\
      \        ld [%o0 - 4], %o3\n        ld [%o0 + %o1], %o4\n        st %o1, [%o0+8]\n"
  in
  check_int "six instructions" 6 (Array.length prog.A.instrs)
  (* mov expands to one or *)

let test_parser_errors () =
  let expect_error ~line source =
    match Sparc.Parser.parse_string source with
    | _ -> Alcotest.failf "expected a parse error on %S" source
    | exception Sparc.Parser.Parse_error e ->
        check_int ("line of " ^ source) line e.line
  in
  expect_error ~line:1 "frobnicate %o0, %o1, %o2";
  expect_error ~line:1 "add %o0, %o1";
  expect_error ~line:2 "nop\nld %o0, %o1";
  expect_error ~line:1 ".word 1";
  (* .word outside .data *)
  expect_error ~line:1 "set 1";
  expect_error ~line:1 "add %oX, 1, %o0"

let test_parser_reparses_disassembly () =
  (* Non-control-flow disassembly lines round-trip through the parser. *)
  let b = A.create () in
  A.op3 b I.Add I.o0 (Imm 5) I.o1;
  A.op3 b I.Xorcc I.l2 (Reg I.g3) I.o2;
  A.ld b I.Ldsh I.o0 (Imm 6) I.o3;
  A.st b I.Stb I.o3 I.o0 (Imm 1);
  A.emit b (I.Branch_i { op = I.Bgu; disp22 = -3 });
  let prog = A.assemble b in
  let text =
    String.concat "\n"
      (List.map
         (fun line ->
           (* strip the "address: " prefix *)
           match String.index_opt line ':' with
           | Some i -> String.sub line (i + 1) (String.length line - i - 1)
           | None -> line)
         (A.disassemble prog))
  in
  let prog' = Sparc.Parser.parse_string text in
  check_bool "same machine code" true (prog.A.code = prog'.A.code)

(* ---- memory ---- *)

let test_memory_endianness () =
  let mem = M.create () in
  M.store_word mem 0x100 0x11223344;
  (* SPARC is big-endian: byte 0 is the most significant *)
  check_int "byte 0" 0x11 (M.load_byte mem 0x100);
  check_int "byte 3" 0x44 (M.load_byte mem 0x103);
  check_int "half 0" 0x1122 (M.load_half mem 0x100);
  check_int "half 2" 0x3344 (M.load_half mem 0x102);
  M.store_byte mem 0x101 0xAB;
  check_int "byte store merges" 0x11AB3344 (M.load_word mem 0x100);
  M.store_half mem 0x102 0xCDEF;
  check_int "half store merges" 0x11ABCDEF (M.load_word mem 0x100)

let test_memory_alignment () =
  let mem = M.create () in
  Alcotest.check_raises "misaligned word" (M.Misaligned 0x102) (fun () ->
      ignore (M.load_word mem 0x102));
  Alcotest.check_raises "misaligned half" (M.Misaligned 0x101) (fun () ->
      ignore (M.load_half mem 0x101))

let test_memory_copy_isolation () =
  let a = M.create () in
  M.store_word a 0x40 7;
  let b = M.copy a in
  M.store_word b 0x40 9;
  check_int "original untouched" 7 (M.load_word a 0x40);
  check_int "copy updated" 9 (M.load_word b 0x40)

let test_memory_sparse_default () =
  let mem = M.create () in
  check_int "unwritten reads zero" 0 (M.load_word mem 0xFFFF_0000);
  let count = ref 0 in
  M.iter_nonzero mem (fun _ _ -> incr count);
  check_int "nothing recorded" 0 !count

let test_memory_hash_order_independent () =
  (* the hash folds per-page digests commutatively, so it must not
     depend on which page was touched first — it used to, because it
     folded Hashtbl.fold's bucket order *)
  let a = M.create () and b = M.create () in
  (* two addresses far enough apart to live on different pages, plus a
     third page touched only in one order *)
  let writes = [ (0x100, 7); (0x4_0000, 9); (0x10_0000, 3) ] in
  List.iter (fun (addr, v) -> M.store_word a addr v) writes;
  List.iter (fun (addr, v) -> M.store_word b addr v) (List.rev writes);
  check_bool "equal contents" true (M.equal a b);
  check_int "hash ignores insertion order" (M.hash a) (M.hash b);
  (* different contents still hash apart *)
  M.store_word b 0x100 8;
  check_bool "contents distinguish" true (M.hash a <> M.hash b);
  (* a page written then zeroed hashes like one never touched *)
  let c = M.create () in
  M.store_word c 0x8_0000 5;
  M.store_word c 0x8_0000 0;
  check_int "zeroed page = absent page" (M.hash (M.create ())) (M.hash c)

let prop_memory_byte_word_consistency =
  QCheck2.Test.make ~name:"word = concatenation of its four bytes" ~count:300
    QCheck2.Gen.(pair (map (fun a -> (a land 0xFFFF) * 4) (int_bound max_int))
                   (map (fun x -> x land Bitops.mask32) (int_bound max_int)))
    (fun (addr, w) ->
      let mem = M.create () in
      M.store_word mem addr w;
      let reassembled =
        (M.load_byte mem addr lsl 24)
        lor (M.load_byte mem (addr + 1) lsl 16)
        lor (M.load_byte mem (addr + 2) lsl 8)
        lor M.load_byte mem (addr + 3)
      in
      reassembled = w)

let suite =
  ( "sparc",
    [ Alcotest.test_case "opcode tables" `Quick test_opcode_tables;
      Alcotest.test_case "classification" `Quick test_classification;
      Alcotest.test_case "cond_holds" `Quick test_cond_holds;
      Alcotest.test_case "icc packing" `Quick test_icc_packing;
      Alcotest.test_case "register names" `Quick test_reg_names;
      Alcotest.test_case "known encodings" `Quick test_encode_known_words;
      Alcotest.test_case "encode range checks" `Quick test_encode_range_checks;
      Alcotest.test_case "decode invalid" `Quick test_decode_invalid;
      Alcotest.test_case "labels and branches" `Quick test_asm_labels_and_branches;
      Alcotest.test_case "unknown label" `Quick test_asm_unknown_label;
      Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
      Alcotest.test_case "set32 expansion" `Quick test_asm_set32;
      Alcotest.test_case "data section" `Quick test_asm_data_section;
      Alcotest.test_case "parser: registers" `Quick test_parser_registers;
      Alcotest.test_case "parser: end to end" `Quick test_parser_end_to_end;
      Alcotest.test_case "parser: addressing" `Quick test_parser_addressing_forms;
      Alcotest.test_case "parser: errors" `Quick test_parser_errors;
      Alcotest.test_case "parser: reparse disassembly" `Quick test_parser_reparses_disassembly;
      Alcotest.test_case "memory endianness" `Quick test_memory_endianness;
      Alcotest.test_case "memory alignment" `Quick test_memory_alignment;
      Alcotest.test_case "memory copy isolation" `Quick test_memory_copy_isolation;
      Alcotest.test_case "memory sparse default" `Quick test_memory_sparse_default;
      Alcotest.test_case "memory hash order independent" `Quick
        test_memory_hash_order_independent ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_encode_decode_roundtrip; prop_decode_total;
          prop_memory_byte_word_consistency ] )
